# Empty compiler generated dependencies file for perpos_fusion.
# This may be replaced when dependencies are built.
