file(REMOVE_RECURSE
  "CMakeFiles/perpos_fusion.dir/src/features.cpp.o"
  "CMakeFiles/perpos_fusion.dir/src/features.cpp.o.d"
  "CMakeFiles/perpos_fusion.dir/src/kalman_filter.cpp.o"
  "CMakeFiles/perpos_fusion.dir/src/kalman_filter.cpp.o.d"
  "CMakeFiles/perpos_fusion.dir/src/metrics.cpp.o"
  "CMakeFiles/perpos_fusion.dir/src/metrics.cpp.o.d"
  "CMakeFiles/perpos_fusion.dir/src/particle_filter.cpp.o"
  "CMakeFiles/perpos_fusion.dir/src/particle_filter.cpp.o.d"
  "CMakeFiles/perpos_fusion.dir/src/satellite_filter.cpp.o"
  "CMakeFiles/perpos_fusion.dir/src/satellite_filter.cpp.o.d"
  "CMakeFiles/perpos_fusion.dir/src/transport_mode.cpp.o"
  "CMakeFiles/perpos_fusion.dir/src/transport_mode.cpp.o.d"
  "libperpos_fusion.a"
  "libperpos_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perpos_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
