file(REMOVE_RECURSE
  "libperpos_fusion.a"
)
