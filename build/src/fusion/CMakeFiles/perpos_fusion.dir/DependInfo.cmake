
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fusion/src/features.cpp" "src/fusion/CMakeFiles/perpos_fusion.dir/src/features.cpp.o" "gcc" "src/fusion/CMakeFiles/perpos_fusion.dir/src/features.cpp.o.d"
  "/root/repo/src/fusion/src/kalman_filter.cpp" "src/fusion/CMakeFiles/perpos_fusion.dir/src/kalman_filter.cpp.o" "gcc" "src/fusion/CMakeFiles/perpos_fusion.dir/src/kalman_filter.cpp.o.d"
  "/root/repo/src/fusion/src/metrics.cpp" "src/fusion/CMakeFiles/perpos_fusion.dir/src/metrics.cpp.o" "gcc" "src/fusion/CMakeFiles/perpos_fusion.dir/src/metrics.cpp.o.d"
  "/root/repo/src/fusion/src/particle_filter.cpp" "src/fusion/CMakeFiles/perpos_fusion.dir/src/particle_filter.cpp.o" "gcc" "src/fusion/CMakeFiles/perpos_fusion.dir/src/particle_filter.cpp.o.d"
  "/root/repo/src/fusion/src/satellite_filter.cpp" "src/fusion/CMakeFiles/perpos_fusion.dir/src/satellite_filter.cpp.o" "gcc" "src/fusion/CMakeFiles/perpos_fusion.dir/src/satellite_filter.cpp.o.d"
  "/root/repo/src/fusion/src/transport_mode.cpp" "src/fusion/CMakeFiles/perpos_fusion.dir/src/transport_mode.cpp.o" "gcc" "src/fusion/CMakeFiles/perpos_fusion.dir/src/transport_mode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/perpos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nmea/CMakeFiles/perpos_nmea.dir/DependInfo.cmake"
  "/root/repo/build/src/locmodel/CMakeFiles/perpos_locmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/perpos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/perpos_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
