
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wifi/src/components.cpp" "src/wifi/CMakeFiles/perpos_wifi.dir/src/components.cpp.o" "gcc" "src/wifi/CMakeFiles/perpos_wifi.dir/src/components.cpp.o.d"
  "/root/repo/src/wifi/src/fingerprint.cpp" "src/wifi/CMakeFiles/perpos_wifi.dir/src/fingerprint.cpp.o" "gcc" "src/wifi/CMakeFiles/perpos_wifi.dir/src/fingerprint.cpp.o.d"
  "/root/repo/src/wifi/src/signal_model.cpp" "src/wifi/CMakeFiles/perpos_wifi.dir/src/signal_model.cpp.o" "gcc" "src/wifi/CMakeFiles/perpos_wifi.dir/src/signal_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/perpos_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/perpos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/locmodel/CMakeFiles/perpos_locmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/perpos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
