# Empty compiler generated dependencies file for perpos_wifi.
# This may be replaced when dependencies are built.
