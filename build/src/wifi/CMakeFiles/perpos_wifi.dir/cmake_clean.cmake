file(REMOVE_RECURSE
  "CMakeFiles/perpos_wifi.dir/src/components.cpp.o"
  "CMakeFiles/perpos_wifi.dir/src/components.cpp.o.d"
  "CMakeFiles/perpos_wifi.dir/src/fingerprint.cpp.o"
  "CMakeFiles/perpos_wifi.dir/src/fingerprint.cpp.o.d"
  "CMakeFiles/perpos_wifi.dir/src/signal_model.cpp.o"
  "CMakeFiles/perpos_wifi.dir/src/signal_model.cpp.o.d"
  "libperpos_wifi.a"
  "libperpos_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perpos_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
