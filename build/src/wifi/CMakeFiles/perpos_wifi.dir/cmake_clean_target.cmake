file(REMOVE_RECURSE
  "libperpos_wifi.a"
)
