file(REMOVE_RECURSE
  "CMakeFiles/perpos_sim.dir/src/network.cpp.o"
  "CMakeFiles/perpos_sim.dir/src/network.cpp.o.d"
  "CMakeFiles/perpos_sim.dir/src/random.cpp.o"
  "CMakeFiles/perpos_sim.dir/src/random.cpp.o.d"
  "CMakeFiles/perpos_sim.dir/src/scheduler.cpp.o"
  "CMakeFiles/perpos_sim.dir/src/scheduler.cpp.o.d"
  "libperpos_sim.a"
  "libperpos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perpos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
