file(REMOVE_RECURSE
  "libperpos_sim.a"
)
