# Empty compiler generated dependencies file for perpos_sim.
# This may be replaced when dependencies are built.
