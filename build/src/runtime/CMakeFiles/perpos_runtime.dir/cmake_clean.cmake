file(REMOVE_RECURSE
  "CMakeFiles/perpos_runtime.dir/src/assembler.cpp.o"
  "CMakeFiles/perpos_runtime.dir/src/assembler.cpp.o.d"
  "CMakeFiles/perpos_runtime.dir/src/bundle.cpp.o"
  "CMakeFiles/perpos_runtime.dir/src/bundle.cpp.o.d"
  "CMakeFiles/perpos_runtime.dir/src/config.cpp.o"
  "CMakeFiles/perpos_runtime.dir/src/config.cpp.o.d"
  "CMakeFiles/perpos_runtime.dir/src/distribution.cpp.o"
  "CMakeFiles/perpos_runtime.dir/src/distribution.cpp.o.d"
  "CMakeFiles/perpos_runtime.dir/src/payload_codec.cpp.o"
  "CMakeFiles/perpos_runtime.dir/src/payload_codec.cpp.o.d"
  "CMakeFiles/perpos_runtime.dir/src/registry.cpp.o"
  "CMakeFiles/perpos_runtime.dir/src/registry.cpp.o.d"
  "libperpos_runtime.a"
  "libperpos_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perpos_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
