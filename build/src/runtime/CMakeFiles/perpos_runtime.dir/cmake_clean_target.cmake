file(REMOVE_RECURSE
  "libperpos_runtime.a"
)
