
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/src/assembler.cpp" "src/runtime/CMakeFiles/perpos_runtime.dir/src/assembler.cpp.o" "gcc" "src/runtime/CMakeFiles/perpos_runtime.dir/src/assembler.cpp.o.d"
  "/root/repo/src/runtime/src/bundle.cpp" "src/runtime/CMakeFiles/perpos_runtime.dir/src/bundle.cpp.o" "gcc" "src/runtime/CMakeFiles/perpos_runtime.dir/src/bundle.cpp.o.d"
  "/root/repo/src/runtime/src/config.cpp" "src/runtime/CMakeFiles/perpos_runtime.dir/src/config.cpp.o" "gcc" "src/runtime/CMakeFiles/perpos_runtime.dir/src/config.cpp.o.d"
  "/root/repo/src/runtime/src/distribution.cpp" "src/runtime/CMakeFiles/perpos_runtime.dir/src/distribution.cpp.o" "gcc" "src/runtime/CMakeFiles/perpos_runtime.dir/src/distribution.cpp.o.d"
  "/root/repo/src/runtime/src/payload_codec.cpp" "src/runtime/CMakeFiles/perpos_runtime.dir/src/payload_codec.cpp.o" "gcc" "src/runtime/CMakeFiles/perpos_runtime.dir/src/payload_codec.cpp.o.d"
  "/root/repo/src/runtime/src/registry.cpp" "src/runtime/CMakeFiles/perpos_runtime.dir/src/registry.cpp.o" "gcc" "src/runtime/CMakeFiles/perpos_runtime.dir/src/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/perpos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/perpos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wifi/CMakeFiles/perpos_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/locmodel/CMakeFiles/perpos_locmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/perpos_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
