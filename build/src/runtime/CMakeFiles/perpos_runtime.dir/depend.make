# Empty dependencies file for perpos_runtime.
# This may be replaced when dependencies are built.
