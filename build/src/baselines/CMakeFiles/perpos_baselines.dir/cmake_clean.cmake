file(REMOVE_RECURSE
  "CMakeFiles/perpos_baselines.dir/src/location_stack.cpp.o"
  "CMakeFiles/perpos_baselines.dir/src/location_stack.cpp.o.d"
  "CMakeFiles/perpos_baselines.dir/src/middlewhere.cpp.o"
  "CMakeFiles/perpos_baselines.dir/src/middlewhere.cpp.o.d"
  "CMakeFiles/perpos_baselines.dir/src/posim.cpp.o"
  "CMakeFiles/perpos_baselines.dir/src/posim.cpp.o.d"
  "libperpos_baselines.a"
  "libperpos_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perpos_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
