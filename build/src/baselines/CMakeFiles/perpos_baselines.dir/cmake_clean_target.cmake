file(REMOVE_RECURSE
  "libperpos_baselines.a"
)
