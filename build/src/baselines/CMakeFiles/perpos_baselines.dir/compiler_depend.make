# Empty compiler generated dependencies file for perpos_baselines.
# This may be replaced when dependencies are built.
