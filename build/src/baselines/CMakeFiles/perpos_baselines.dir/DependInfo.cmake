
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/src/location_stack.cpp" "src/baselines/CMakeFiles/perpos_baselines.dir/src/location_stack.cpp.o" "gcc" "src/baselines/CMakeFiles/perpos_baselines.dir/src/location_stack.cpp.o.d"
  "/root/repo/src/baselines/src/middlewhere.cpp" "src/baselines/CMakeFiles/perpos_baselines.dir/src/middlewhere.cpp.o" "gcc" "src/baselines/CMakeFiles/perpos_baselines.dir/src/middlewhere.cpp.o.d"
  "/root/repo/src/baselines/src/posim.cpp" "src/baselines/CMakeFiles/perpos_baselines.dir/src/posim.cpp.o" "gcc" "src/baselines/CMakeFiles/perpos_baselines.dir/src/posim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/perpos_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/perpos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
