file(REMOVE_RECURSE
  "CMakeFiles/perpos_energy.dir/src/entracked.cpp.o"
  "CMakeFiles/perpos_energy.dir/src/entracked.cpp.o.d"
  "CMakeFiles/perpos_energy.dir/src/power_model.cpp.o"
  "CMakeFiles/perpos_energy.dir/src/power_model.cpp.o.d"
  "libperpos_energy.a"
  "libperpos_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perpos_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
