# Empty compiler generated dependencies file for perpos_energy.
# This may be replaced when dependencies are built.
