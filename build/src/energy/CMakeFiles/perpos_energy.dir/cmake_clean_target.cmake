file(REMOVE_RECURSE
  "libperpos_energy.a"
)
