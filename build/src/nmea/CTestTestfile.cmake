# CMake generated Testfile for 
# Source directory: /root/repo/src/nmea
# Build directory: /root/repo/build/src/nmea
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
