
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nmea/src/checksum.cpp" "src/nmea/CMakeFiles/perpos_nmea.dir/src/checksum.cpp.o" "gcc" "src/nmea/CMakeFiles/perpos_nmea.dir/src/checksum.cpp.o.d"
  "/root/repo/src/nmea/src/generate.cpp" "src/nmea/CMakeFiles/perpos_nmea.dir/src/generate.cpp.o" "gcc" "src/nmea/CMakeFiles/perpos_nmea.dir/src/generate.cpp.o.d"
  "/root/repo/src/nmea/src/parse.cpp" "src/nmea/CMakeFiles/perpos_nmea.dir/src/parse.cpp.o" "gcc" "src/nmea/CMakeFiles/perpos_nmea.dir/src/parse.cpp.o.d"
  "/root/repo/src/nmea/src/stream_parser.cpp" "src/nmea/CMakeFiles/perpos_nmea.dir/src/stream_parser.cpp.o" "gcc" "src/nmea/CMakeFiles/perpos_nmea.dir/src/stream_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/perpos_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
