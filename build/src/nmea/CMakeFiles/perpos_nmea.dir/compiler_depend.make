# Empty compiler generated dependencies file for perpos_nmea.
# This may be replaced when dependencies are built.
