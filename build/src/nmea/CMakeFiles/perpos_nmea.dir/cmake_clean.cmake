file(REMOVE_RECURSE
  "CMakeFiles/perpos_nmea.dir/src/checksum.cpp.o"
  "CMakeFiles/perpos_nmea.dir/src/checksum.cpp.o.d"
  "CMakeFiles/perpos_nmea.dir/src/generate.cpp.o"
  "CMakeFiles/perpos_nmea.dir/src/generate.cpp.o.d"
  "CMakeFiles/perpos_nmea.dir/src/parse.cpp.o"
  "CMakeFiles/perpos_nmea.dir/src/parse.cpp.o.d"
  "CMakeFiles/perpos_nmea.dir/src/stream_parser.cpp.o"
  "CMakeFiles/perpos_nmea.dir/src/stream_parser.cpp.o.d"
  "libperpos_nmea.a"
  "libperpos_nmea.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perpos_nmea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
