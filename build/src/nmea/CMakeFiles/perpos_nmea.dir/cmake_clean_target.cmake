file(REMOVE_RECURSE
  "libperpos_nmea.a"
)
