file(REMOVE_RECURSE
  "libperpos_geo.a"
)
