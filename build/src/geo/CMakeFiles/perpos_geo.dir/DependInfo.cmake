
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/src/bounding_box.cpp" "src/geo/CMakeFiles/perpos_geo.dir/src/bounding_box.cpp.o" "gcc" "src/geo/CMakeFiles/perpos_geo.dir/src/bounding_box.cpp.o.d"
  "/root/repo/src/geo/src/coordinates.cpp" "src/geo/CMakeFiles/perpos_geo.dir/src/coordinates.cpp.o" "gcc" "src/geo/CMakeFiles/perpos_geo.dir/src/coordinates.cpp.o.d"
  "/root/repo/src/geo/src/distance.cpp" "src/geo/CMakeFiles/perpos_geo.dir/src/distance.cpp.o" "gcc" "src/geo/CMakeFiles/perpos_geo.dir/src/distance.cpp.o.d"
  "/root/repo/src/geo/src/local_frame.cpp" "src/geo/CMakeFiles/perpos_geo.dir/src/local_frame.cpp.o" "gcc" "src/geo/CMakeFiles/perpos_geo.dir/src/local_frame.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
