# Empty dependencies file for perpos_geo.
# This may be replaced when dependencies are built.
