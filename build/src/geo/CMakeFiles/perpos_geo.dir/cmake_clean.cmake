file(REMOVE_RECURSE
  "CMakeFiles/perpos_geo.dir/src/bounding_box.cpp.o"
  "CMakeFiles/perpos_geo.dir/src/bounding_box.cpp.o.d"
  "CMakeFiles/perpos_geo.dir/src/coordinates.cpp.o"
  "CMakeFiles/perpos_geo.dir/src/coordinates.cpp.o.d"
  "CMakeFiles/perpos_geo.dir/src/distance.cpp.o"
  "CMakeFiles/perpos_geo.dir/src/distance.cpp.o.d"
  "CMakeFiles/perpos_geo.dir/src/local_frame.cpp.o"
  "CMakeFiles/perpos_geo.dir/src/local_frame.cpp.o.d"
  "libperpos_geo.a"
  "libperpos_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perpos_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
