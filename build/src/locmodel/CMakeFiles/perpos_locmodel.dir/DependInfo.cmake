
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/locmodel/src/building.cpp" "src/locmodel/CMakeFiles/perpos_locmodel.dir/src/building.cpp.o" "gcc" "src/locmodel/CMakeFiles/perpos_locmodel.dir/src/building.cpp.o.d"
  "/root/repo/src/locmodel/src/fixtures.cpp" "src/locmodel/CMakeFiles/perpos_locmodel.dir/src/fixtures.cpp.o" "gcc" "src/locmodel/CMakeFiles/perpos_locmodel.dir/src/fixtures.cpp.o.d"
  "/root/repo/src/locmodel/src/geometry.cpp" "src/locmodel/CMakeFiles/perpos_locmodel.dir/src/geometry.cpp.o" "gcc" "src/locmodel/CMakeFiles/perpos_locmodel.dir/src/geometry.cpp.o.d"
  "/root/repo/src/locmodel/src/resolver.cpp" "src/locmodel/CMakeFiles/perpos_locmodel.dir/src/resolver.cpp.o" "gcc" "src/locmodel/CMakeFiles/perpos_locmodel.dir/src/resolver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/perpos_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/perpos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/perpos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
