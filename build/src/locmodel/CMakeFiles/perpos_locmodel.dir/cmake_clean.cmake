file(REMOVE_RECURSE
  "CMakeFiles/perpos_locmodel.dir/src/building.cpp.o"
  "CMakeFiles/perpos_locmodel.dir/src/building.cpp.o.d"
  "CMakeFiles/perpos_locmodel.dir/src/fixtures.cpp.o"
  "CMakeFiles/perpos_locmodel.dir/src/fixtures.cpp.o.d"
  "CMakeFiles/perpos_locmodel.dir/src/geometry.cpp.o"
  "CMakeFiles/perpos_locmodel.dir/src/geometry.cpp.o.d"
  "CMakeFiles/perpos_locmodel.dir/src/resolver.cpp.o"
  "CMakeFiles/perpos_locmodel.dir/src/resolver.cpp.o.d"
  "libperpos_locmodel.a"
  "libperpos_locmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perpos_locmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
