# Empty compiler generated dependencies file for perpos_locmodel.
# This may be replaced when dependencies are built.
