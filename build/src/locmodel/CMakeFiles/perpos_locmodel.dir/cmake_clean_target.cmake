file(REMOVE_RECURSE
  "libperpos_locmodel.a"
)
