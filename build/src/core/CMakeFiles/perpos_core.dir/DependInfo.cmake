
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/src/channel.cpp" "src/core/CMakeFiles/perpos_core.dir/src/channel.cpp.o" "gcc" "src/core/CMakeFiles/perpos_core.dir/src/channel.cpp.o.d"
  "/root/repo/src/core/src/component.cpp" "src/core/CMakeFiles/perpos_core.dir/src/component.cpp.o" "gcc" "src/core/CMakeFiles/perpos_core.dir/src/component.cpp.o.d"
  "/root/repo/src/core/src/data_tree.cpp" "src/core/CMakeFiles/perpos_core.dir/src/data_tree.cpp.o" "gcc" "src/core/CMakeFiles/perpos_core.dir/src/data_tree.cpp.o.d"
  "/root/repo/src/core/src/data_types.cpp" "src/core/CMakeFiles/perpos_core.dir/src/data_types.cpp.o" "gcc" "src/core/CMakeFiles/perpos_core.dir/src/data_types.cpp.o.d"
  "/root/repo/src/core/src/feature.cpp" "src/core/CMakeFiles/perpos_core.dir/src/feature.cpp.o" "gcc" "src/core/CMakeFiles/perpos_core.dir/src/feature.cpp.o.d"
  "/root/repo/src/core/src/graph.cpp" "src/core/CMakeFiles/perpos_core.dir/src/graph.cpp.o" "gcc" "src/core/CMakeFiles/perpos_core.dir/src/graph.cpp.o.d"
  "/root/repo/src/core/src/graph_dump.cpp" "src/core/CMakeFiles/perpos_core.dir/src/graph_dump.cpp.o" "gcc" "src/core/CMakeFiles/perpos_core.dir/src/graph_dump.cpp.o.d"
  "/root/repo/src/core/src/payload.cpp" "src/core/CMakeFiles/perpos_core.dir/src/payload.cpp.o" "gcc" "src/core/CMakeFiles/perpos_core.dir/src/payload.cpp.o.d"
  "/root/repo/src/core/src/positioning.cpp" "src/core/CMakeFiles/perpos_core.dir/src/positioning.cpp.o" "gcc" "src/core/CMakeFiles/perpos_core.dir/src/positioning.cpp.o.d"
  "/root/repo/src/core/src/services.cpp" "src/core/CMakeFiles/perpos_core.dir/src/services.cpp.o" "gcc" "src/core/CMakeFiles/perpos_core.dir/src/services.cpp.o.d"
  "/root/repo/src/core/src/type_info.cpp" "src/core/CMakeFiles/perpos_core.dir/src/type_info.cpp.o" "gcc" "src/core/CMakeFiles/perpos_core.dir/src/type_info.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/perpos_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/perpos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
