# Empty dependencies file for perpos_core.
# This may be replaced when dependencies are built.
