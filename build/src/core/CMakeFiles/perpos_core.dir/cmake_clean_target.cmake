file(REMOVE_RECURSE
  "libperpos_core.a"
)
