file(REMOVE_RECURSE
  "CMakeFiles/perpos_core.dir/src/channel.cpp.o"
  "CMakeFiles/perpos_core.dir/src/channel.cpp.o.d"
  "CMakeFiles/perpos_core.dir/src/component.cpp.o"
  "CMakeFiles/perpos_core.dir/src/component.cpp.o.d"
  "CMakeFiles/perpos_core.dir/src/data_tree.cpp.o"
  "CMakeFiles/perpos_core.dir/src/data_tree.cpp.o.d"
  "CMakeFiles/perpos_core.dir/src/data_types.cpp.o"
  "CMakeFiles/perpos_core.dir/src/data_types.cpp.o.d"
  "CMakeFiles/perpos_core.dir/src/feature.cpp.o"
  "CMakeFiles/perpos_core.dir/src/feature.cpp.o.d"
  "CMakeFiles/perpos_core.dir/src/graph.cpp.o"
  "CMakeFiles/perpos_core.dir/src/graph.cpp.o.d"
  "CMakeFiles/perpos_core.dir/src/graph_dump.cpp.o"
  "CMakeFiles/perpos_core.dir/src/graph_dump.cpp.o.d"
  "CMakeFiles/perpos_core.dir/src/payload.cpp.o"
  "CMakeFiles/perpos_core.dir/src/payload.cpp.o.d"
  "CMakeFiles/perpos_core.dir/src/positioning.cpp.o"
  "CMakeFiles/perpos_core.dir/src/positioning.cpp.o.d"
  "CMakeFiles/perpos_core.dir/src/services.cpp.o"
  "CMakeFiles/perpos_core.dir/src/services.cpp.o.d"
  "CMakeFiles/perpos_core.dir/src/type_info.cpp.o"
  "CMakeFiles/perpos_core.dir/src/type_info.cpp.o.d"
  "libperpos_core.a"
  "libperpos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perpos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
