file(REMOVE_RECURSE
  "CMakeFiles/perpos_sensors.dir/src/emulator.cpp.o"
  "CMakeFiles/perpos_sensors.dir/src/emulator.cpp.o.d"
  "CMakeFiles/perpos_sensors.dir/src/gps_model.cpp.o"
  "CMakeFiles/perpos_sensors.dir/src/gps_model.cpp.o.d"
  "CMakeFiles/perpos_sensors.dir/src/gps_sensor.cpp.o"
  "CMakeFiles/perpos_sensors.dir/src/gps_sensor.cpp.o.d"
  "CMakeFiles/perpos_sensors.dir/src/pipeline_components.cpp.o"
  "CMakeFiles/perpos_sensors.dir/src/pipeline_components.cpp.o.d"
  "CMakeFiles/perpos_sensors.dir/src/trajectory.cpp.o"
  "CMakeFiles/perpos_sensors.dir/src/trajectory.cpp.o.d"
  "CMakeFiles/perpos_sensors.dir/src/wifi_scanner.cpp.o"
  "CMakeFiles/perpos_sensors.dir/src/wifi_scanner.cpp.o.d"
  "libperpos_sensors.a"
  "libperpos_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perpos_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
