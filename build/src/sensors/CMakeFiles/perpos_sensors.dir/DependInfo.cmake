
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensors/src/emulator.cpp" "src/sensors/CMakeFiles/perpos_sensors.dir/src/emulator.cpp.o" "gcc" "src/sensors/CMakeFiles/perpos_sensors.dir/src/emulator.cpp.o.d"
  "/root/repo/src/sensors/src/gps_model.cpp" "src/sensors/CMakeFiles/perpos_sensors.dir/src/gps_model.cpp.o" "gcc" "src/sensors/CMakeFiles/perpos_sensors.dir/src/gps_model.cpp.o.d"
  "/root/repo/src/sensors/src/gps_sensor.cpp" "src/sensors/CMakeFiles/perpos_sensors.dir/src/gps_sensor.cpp.o" "gcc" "src/sensors/CMakeFiles/perpos_sensors.dir/src/gps_sensor.cpp.o.d"
  "/root/repo/src/sensors/src/pipeline_components.cpp" "src/sensors/CMakeFiles/perpos_sensors.dir/src/pipeline_components.cpp.o" "gcc" "src/sensors/CMakeFiles/perpos_sensors.dir/src/pipeline_components.cpp.o.d"
  "/root/repo/src/sensors/src/trajectory.cpp" "src/sensors/CMakeFiles/perpos_sensors.dir/src/trajectory.cpp.o" "gcc" "src/sensors/CMakeFiles/perpos_sensors.dir/src/trajectory.cpp.o.d"
  "/root/repo/src/sensors/src/wifi_scanner.cpp" "src/sensors/CMakeFiles/perpos_sensors.dir/src/wifi_scanner.cpp.o" "gcc" "src/sensors/CMakeFiles/perpos_sensors.dir/src/wifi_scanner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/perpos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nmea/CMakeFiles/perpos_nmea.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/perpos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/perpos_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/locmodel/CMakeFiles/perpos_locmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/wifi/CMakeFiles/perpos_wifi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
