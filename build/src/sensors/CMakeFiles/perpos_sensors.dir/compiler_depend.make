# Empty compiler generated dependencies file for perpos_sensors.
# This may be replaced when dependencies are built.
