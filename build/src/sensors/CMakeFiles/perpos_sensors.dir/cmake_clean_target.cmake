file(REMOVE_RECURSE
  "libperpos_sensors.a"
)
