# Empty compiler generated dependencies file for test_operations.
# This may be replaced when dependencies are built.
