
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/test_integration.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/test_integration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/perpos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/perpos_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/nmea/CMakeFiles/perpos_nmea.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/perpos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/locmodel/CMakeFiles/perpos_locmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/wifi/CMakeFiles/perpos_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/perpos_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/perpos_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/perpos_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/perpos_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/perpos_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
