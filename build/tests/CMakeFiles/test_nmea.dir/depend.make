# Empty dependencies file for test_nmea.
# This may be replaced when dependencies are built.
