file(REMOVE_RECURSE
  "CMakeFiles/test_nmea.dir/test_nmea.cpp.o"
  "CMakeFiles/test_nmea.dir/test_nmea.cpp.o.d"
  "test_nmea"
  "test_nmea.pdb"
  "test_nmea[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nmea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
