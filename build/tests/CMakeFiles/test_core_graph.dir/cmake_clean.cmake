file(REMOVE_RECURSE
  "CMakeFiles/test_core_graph.dir/test_core_graph.cpp.o"
  "CMakeFiles/test_core_graph.dir/test_core_graph.cpp.o.d"
  "test_core_graph"
  "test_core_graph.pdb"
  "test_core_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
