file(REMOVE_RECURSE
  "CMakeFiles/test_core_positioning.dir/test_core_positioning.cpp.o"
  "CMakeFiles/test_core_positioning.dir/test_core_positioning.cpp.o.d"
  "test_core_positioning"
  "test_core_positioning.pdb"
  "test_core_positioning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_positioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
