# Empty dependencies file for test_core_positioning.
# This may be replaced when dependencies are built.
