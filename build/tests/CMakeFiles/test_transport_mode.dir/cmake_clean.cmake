file(REMOVE_RECURSE
  "CMakeFiles/test_transport_mode.dir/test_transport_mode.cpp.o"
  "CMakeFiles/test_transport_mode.dir/test_transport_mode.cpp.o.d"
  "test_transport_mode"
  "test_transport_mode.pdb"
  "test_transport_mode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
