# Empty dependencies file for test_transport_mode.
# This may be replaced when dependencies are built.
