file(REMOVE_RECURSE
  "CMakeFiles/test_core_channel.dir/test_core_channel.cpp.o"
  "CMakeFiles/test_core_channel.dir/test_core_channel.cpp.o.d"
  "test_core_channel"
  "test_core_channel.pdb"
  "test_core_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
