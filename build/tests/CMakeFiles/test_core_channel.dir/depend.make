# Empty dependencies file for test_core_channel.
# This may be replaced when dependencies are built.
