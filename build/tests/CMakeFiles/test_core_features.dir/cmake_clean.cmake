file(REMOVE_RECURSE
  "CMakeFiles/test_core_features.dir/test_core_features.cpp.o"
  "CMakeFiles/test_core_features.dir/test_core_features.cpp.o.d"
  "test_core_features"
  "test_core_features.pdb"
  "test_core_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
