file(REMOVE_RECURSE
  "CMakeFiles/test_locmodel.dir/test_locmodel.cpp.o"
  "CMakeFiles/test_locmodel.dir/test_locmodel.cpp.o.d"
  "test_locmodel"
  "test_locmodel.pdb"
  "test_locmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_locmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
