# Empty dependencies file for test_locmodel.
# This may be replaced when dependencies are built.
