# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_geo[1]_include.cmake")
include("/root/repo/build/tests/test_nmea[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_core_graph[1]_include.cmake")
include("/root/repo/build/tests/test_core_features[1]_include.cmake")
include("/root/repo/build/tests/test_core_channel[1]_include.cmake")
include("/root/repo/build/tests/test_core_positioning[1]_include.cmake")
include("/root/repo/build/tests/test_locmodel[1]_include.cmake")
include("/root/repo/build/tests/test_wifi[1]_include.cmake")
include("/root/repo/build/tests/test_sensors[1]_include.cmake")
include("/root/repo/build/tests/test_fusion[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_kalman[1]_include.cmake")
include("/root/repo/build/tests/test_transport_mode[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
include("/root/repo/build/tests/test_operations[1]_include.cmake")
include("/root/repo/build/tests/test_property_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_services[1]_include.cmake")
