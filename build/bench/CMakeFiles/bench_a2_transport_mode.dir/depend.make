# Empty dependencies file for bench_a2_transport_mode.
# This may be replaced when dependencies are built.
