file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_transport_mode.dir/bench_a2_transport_mode.cpp.o"
  "CMakeFiles/bench_a2_transport_mode.dir/bench_a2_transport_mode.cpp.o.d"
  "bench_a2_transport_mode"
  "bench_a2_transport_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_transport_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
