# Empty dependencies file for bench_e1_satellite_filter.
# This may be replaced when dependencies are built.
