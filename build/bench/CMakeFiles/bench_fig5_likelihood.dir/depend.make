# Empty dependencies file for bench_fig5_likelihood.
# This may be replaced when dependencies are built.
