file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_likelihood.dir/bench_fig5_likelihood.cpp.o"
  "CMakeFiles/bench_fig5_likelihood.dir/bench_fig5_likelihood.cpp.o.d"
  "bench_fig5_likelihood"
  "bench_fig5_likelihood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_likelihood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
