# Empty dependencies file for bench_o1_scalability.
# This may be replaced when dependencies are built.
