file(REMOVE_RECURSE
  "CMakeFiles/bench_o1_scalability.dir/bench_o1_scalability.cpp.o"
  "CMakeFiles/bench_o1_scalability.dir/bench_o1_scalability.cpp.o.d"
  "bench_o1_scalability"
  "bench_o1_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_o1_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
