# Empty dependencies file for bench_fig4_datatree.
# This may be replaced when dependencies are built.
