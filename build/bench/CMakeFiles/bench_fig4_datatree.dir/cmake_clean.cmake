file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_datatree.dir/bench_fig4_datatree.cpp.o"
  "CMakeFiles/bench_fig4_datatree.dir/bench_fig4_datatree.cpp.o.d"
  "bench_fig4_datatree"
  "bench_fig4_datatree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_datatree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
