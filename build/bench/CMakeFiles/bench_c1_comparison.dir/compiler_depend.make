# Empty compiler generated dependencies file for bench_c1_comparison.
# This may be replaced when dependencies are built.
