file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_comparison.dir/bench_c1_comparison.cpp.o"
  "CMakeFiles/bench_c1_comparison.dir/bench_c1_comparison.cpp.o.d"
  "bench_c1_comparison"
  "bench_c1_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
