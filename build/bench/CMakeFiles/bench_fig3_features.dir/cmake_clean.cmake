file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_features.dir/bench_fig3_features.cpp.o"
  "CMakeFiles/bench_fig3_features.dir/bench_fig3_features.cpp.o.d"
  "bench_fig3_features"
  "bench_fig3_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
