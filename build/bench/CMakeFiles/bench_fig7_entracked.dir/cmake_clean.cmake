file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_entracked.dir/bench_fig7_entracked.cpp.o"
  "CMakeFiles/bench_fig7_entracked.dir/bench_fig7_entracked.cpp.o.d"
  "bench_fig7_entracked"
  "bench_fig7_entracked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_entracked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
