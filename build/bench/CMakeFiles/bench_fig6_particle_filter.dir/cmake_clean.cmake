file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_particle_filter.dir/bench_fig6_particle_filter.cpp.o"
  "CMakeFiles/bench_fig6_particle_filter.dir/bench_fig6_particle_filter.cpp.o.d"
  "bench_fig6_particle_filter"
  "bench_fig6_particle_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_particle_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
