# Empty compiler generated dependencies file for bench_fig6_particle_filter.
# This may be replaced when dependencies are built.
