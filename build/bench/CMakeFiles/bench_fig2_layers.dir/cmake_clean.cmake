file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_layers.dir/bench_fig2_layers.cpp.o"
  "CMakeFiles/bench_fig2_layers.dir/bench_fig2_layers.cpp.o.d"
  "bench_fig2_layers"
  "bench_fig2_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
