file(REMOVE_RECURSE
  "CMakeFiles/infrastructure_viz.dir/infrastructure_viz.cpp.o"
  "CMakeFiles/infrastructure_viz.dir/infrastructure_viz.cpp.o.d"
  "infrastructure_viz"
  "infrastructure_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infrastructure_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
