# Empty dependencies file for infrastructure_viz.
# This may be replaced when dependencies are built.
