# Empty compiler generated dependencies file for satellite_filter.
# This may be replaced when dependencies are built.
