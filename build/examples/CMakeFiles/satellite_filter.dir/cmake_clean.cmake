file(REMOVE_RECURSE
  "CMakeFiles/satellite_filter.dir/satellite_filter.cpp.o"
  "CMakeFiles/satellite_filter.dir/satellite_filter.cpp.o.d"
  "satellite_filter"
  "satellite_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satellite_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
