# Empty compiler generated dependencies file for transport_mode_demo.
# This may be replaced when dependencies are built.
