file(REMOVE_RECURSE
  "CMakeFiles/transport_mode_demo.dir/transport_mode_demo.cpp.o"
  "CMakeFiles/transport_mode_demo.dir/transport_mode_demo.cpp.o.d"
  "transport_mode_demo"
  "transport_mode_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_mode_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
