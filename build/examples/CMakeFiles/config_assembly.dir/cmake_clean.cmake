file(REMOVE_RECURSE
  "CMakeFiles/config_assembly.dir/config_assembly.cpp.o"
  "CMakeFiles/config_assembly.dir/config_assembly.cpp.o.d"
  "config_assembly"
  "config_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
