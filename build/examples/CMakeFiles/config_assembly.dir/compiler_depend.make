# Empty compiler generated dependencies file for config_assembly.
# This may be replaced when dependencies are built.
