file(REMOVE_RECURSE
  "CMakeFiles/energy_tracking.dir/energy_tracking.cpp.o"
  "CMakeFiles/energy_tracking.dir/energy_tracking.cpp.o.d"
  "energy_tracking"
  "energy_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
