# Empty compiler generated dependencies file for energy_tracking.
# This may be replaced when dependencies are built.
