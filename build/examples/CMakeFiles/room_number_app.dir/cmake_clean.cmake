file(REMOVE_RECURSE
  "CMakeFiles/room_number_app.dir/room_number_app.cpp.o"
  "CMakeFiles/room_number_app.dir/room_number_app.cpp.o.d"
  "room_number_app"
  "room_number_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/room_number_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
