# Empty compiler generated dependencies file for room_number_app.
# This may be replaced when dependencies are built.
