// End-to-end integration tests reproducing the paper's scenarios:
//  * the Room Number Application of Fig. 1 (GPS outdoors, WiFi indoors),
//  * the three abstraction views of Fig. 2,
//  * the full E2 particle-filter configuration driven by replayed traces,
//  * the assembler-built pipeline (dynamic dependency resolution).

#include "perpos/core/channel.hpp"
#include "perpos/core/components.hpp"
#include "perpos/core/graph_dump.hpp"
#include "perpos/core/positioning.hpp"
#include "perpos/fusion/features.hpp"
#include "perpos/fusion/metrics.hpp"
#include "perpos/fusion/particle_filter.hpp"
#include "perpos/geo/distance.hpp"
#include "perpos/locmodel/fixtures.hpp"
#include "perpos/locmodel/resolver.hpp"
#include "perpos/runtime/assembler.hpp"
#include "perpos/runtime/bundle.hpp"
#include "perpos/runtime/distribution.hpp"
#include "perpos/sim/network.hpp"
#include "perpos/sensors/emulator.hpp"
#include "perpos/sensors/gps_sensor.hpp"
#include "perpos/sensors/pipeline_components.hpp"
#include "perpos/sensors/wifi_scanner.hpp"
#include "perpos/wifi/components.hpp"
#include "perpos/wifi/fingerprint.hpp"

#include <gtest/gtest.h>

namespace core = perpos::core;
namespace geo = perpos::geo;
namespace sim = perpos::sim;
namespace lm = perpos::locmodel;
namespace wifi = perpos::wifi;
namespace sensors = perpos::sensors;
namespace fusion = perpos::fusion;
namespace rt = perpos::runtime;

// The full Room Number Application environment: office building, WiFi
// infrastructure, fingerprint DB, indoor walk.
class RoomAppFixture : public ::testing::Test {
 protected:
  RoomAppFixture()
      : building(lm::make_office_building()),
        signal_model(wifi::office_access_points(), wifi::SignalModelConfig{},
                     &building),
        db(wifi::FingerprintDatabase::survey(signal_model, building, 2.0)),
        trajectory(sensors::office_walk()),
        graph(&scheduler.clock()),
        channels(graph),
        service(graph, channels) {}

  lm::Building building;
  wifi::SignalModel signal_model;
  wifi::FingerprintDatabase db;
  sensors::Trajectory trajectory;
  sim::Scheduler scheduler;
  sim::Random random{42};
  core::ProcessingGraph graph;
  core::ChannelManager channels;
  core::PositioningService service;
};

TEST_F(RoomAppFixture, Fig1RoomNumberApplication) {
  // WiFi pipeline: WiFi sensor -> WifiPositioner -> Resolver -> RoomFix.
  auto scanner = std::make_shared<sensors::WifiScanner>(
      scheduler, random, trajectory, signal_model);
  auto positioner = std::make_shared<wifi::WifiPositioner>(db);
  auto resolver = std::make_shared<lm::RoomResolver>(building);
  const auto wid = graph.add(scanner);
  const auto pid = graph.add(positioner);
  const auto rid = graph.add(resolver);
  graph.connect(wid, pid);
  graph.connect(pid, rid);
  service.advertise(rid, {"WiFi", 4.0, core::Criteria::Power::kLow});

  // GPS pipeline: GPS sensor -> Parser -> Interpreter -> PositionFix.
  auto gps = std::make_shared<sensors::GpsSensor>(
      scheduler, random, trajectory, building.frame(),
      sensors::GpsSensorConfig{}, &building);
  auto parser = std::make_shared<sensors::NmeaParser>();
  auto interpreter = std::make_shared<sensors::NmeaInterpreter>();
  const auto gid = graph.add(gps);
  const auto nid = graph.add(parser);
  const auto iid = graph.add(interpreter);
  graph.connect(gid, nid);
  graph.connect(nid, iid);
  service.advertise(iid, {"GPS", 8.0, core::Criteria::Power::kHigh});

  // The application requests both providers through the Positioning API.
  core::LocationProvider& room_provider =
      service.request_provider(core::Criteria::for_type<core::RoomFix>());
  core::Criteria gps_criteria;
  gps_criteria.technology = "GPS";
  core::LocationProvider& gps_provider =
      service.request_provider(gps_criteria);

  std::map<std::string, int> room_histogram;
  room_provider.add_sample_listener([&](const core::Sample& s) {
    if (const auto* r = s.payload.get<core::RoomFix>()) {
      if (!r->room.empty()) ++room_histogram[r->room];
    }
  });

  scanner->start();
  gps->start();
  scheduler.run_until(trajectory.duration());

  // The walk dwells in O-S2, the LAB and O-N3 — room-level positioning
  // must have seen all three.
  EXPECT_GT(room_histogram["O-S2"], 0);
  EXPECT_GT(room_histogram["LAB"], 0);
  EXPECT_GT(room_histogram["O-N3"], 0);
  // GPS indoors still produced some (degraded) fixes.
  EXPECT_TRUE(gps_provider.last_position().has_value());
  // Both views coexist on one middleware instance.
  EXPECT_GE(channels.channels().size(), 2u);
}

TEST_F(RoomAppFixture, Fig2ThreeAbstractionLevels) {
  // Build the Fig. 2 configuration: GPS chain and WiFi chain into a
  // particle filter, which feeds the application.
  auto gps = std::make_shared<sensors::GpsSensor>(
      scheduler, random, trajectory, building.frame(),
      sensors::GpsSensorConfig{}, &building);
  auto parser = std::make_shared<sensors::NmeaParser>();
  auto interpreter = std::make_shared<sensors::NmeaInterpreter>();
  auto scanner = std::make_shared<sensors::WifiScanner>(
      scheduler, random, trajectory, signal_model);
  auto positioner = std::make_shared<wifi::WifiPositioner>(db);
  auto togeo = std::make_shared<wifi::LocalToGeoConverter>(building);
  auto pf = std::make_shared<fusion::ParticleFilterComponent>(
      fusion::ParticleFilterConfig{}, random, building.frame(), &building);
  auto sink = std::make_shared<core::ApplicationSink>();

  const auto gid = graph.add(gps);
  const auto nid = graph.add(parser);
  const auto iid = graph.add(interpreter);
  const auto wid = graph.add(scanner);
  const auto pid = graph.add(positioner);
  const auto tid = graph.add(togeo);
  const auto fid = graph.add(pf);
  const auto zid = graph.add(sink);
  graph.connect(gid, nid);
  graph.connect(nid, iid);
  graph.connect(iid, fid);
  graph.connect(wid, pid);
  graph.connect(pid, tid);
  graph.connect(tid, fid);
  graph.connect(fid, zid);

  // PSL: the full tree.
  const std::string psl = core::dump_structure(graph);
  for (const char* kind : {"GPS", "Parser", "Interpreter", "WiFi",
                           "WifiPositioner", "LocalToGeo", "ParticleFilter",
                           "Application"}) {
    EXPECT_NE(psl.find(kind), std::string::npos) << kind;
  }

  // PCL: exactly three channels — GPS chain -> PF, WiFi chain -> PF,
  // PF -> application (Fig. 2 middle).
  const auto chans = channels.channels();
  ASSERT_EQ(chans.size(), 3u);
  int into_pf = 0, from_pf = 0;
  for (const core::Channel* c : chans) {
    if (c->sink() == fid) ++into_pf;
    if (c->source() == fid) ++from_pf;
  }
  EXPECT_EQ(into_pf, 2);
  EXPECT_EQ(from_pf, 1);

  // PL: the application sees one provider view on top.
  service.advertise(fid, {"Fusion", 3.0, core::Criteria::Power::kMedium});
  // (The sink above stands for the application; the provider API would
  // attach its own sink to the same producer.)
  core::LocationProvider& provider =
      service.request_provider(core::Criteria{});
  EXPECT_EQ(provider.advertisement().technology, "Fusion");

  gps->start();
  scanner->start();
  scheduler.run_until(sim::SimTime::from_seconds(30.0));
  EXPECT_TRUE(provider.last_position().has_value());
}

TEST_F(RoomAppFixture, E2ParticleFilterImprovesDegradedGps) {
  // Record an indoor GPS trace, then replay it through the emulator into
  // two configurations: raw pipeline vs pipeline + particle filter with
  // the HDOP likelihood feature and wall constraints — Fig. 6's claim is
  // that the filter refines the trace.
  sensors::GpsSensorConfig config;
  config.emit_gsa = false;
  config.model.degraded_fix_loss_prob = 0.1;  // Indoors but usable.
  auto gps = std::make_shared<sensors::GpsSensor>(
      scheduler, random, trajectory, building.frame(), config, &building);
  auto recorder = std::make_shared<sensors::TraceRecorderFeature>();
  const auto gid = graph.add(gps);
  graph.attach_feature(gid, recorder);
  gps->start();
  scheduler.run_until(trajectory.duration());
  gps->stop();
  ASSERT_GT(recorder->trace().size(), 50u);

  const auto run_config = [&](bool with_filter) {
    sim::Scheduler sched;
    sim::Random rng(7);
    core::ProcessingGraph g(&sched.clock());
    core::ChannelManager ch(g);
    auto emulator = std::make_shared<sensors::EmulatorSource>(
        sched, recorder->trace(), "GPS");
    auto parser = std::make_shared<sensors::NmeaParser>();
    auto interpreter = std::make_shared<sensors::NmeaInterpreter>();
    auto sink = std::make_shared<core::ApplicationSink>();
    const auto e = g.add(emulator);
    const auto p = g.add(parser);
    const auto i = g.add(interpreter);
    g.connect(e, p);
    g.connect(p, i);

    std::shared_ptr<fusion::ParticleFilterComponent> pf;
    if (with_filter) {
      g.attach_feature(p, std::make_shared<fusion::HdopFeature>());
      fusion::ParticleFilterConfig pfc;
      pfc.particle_count = 400;
      pf = std::make_shared<fusion::ParticleFilterComponent>(
          pfc, rng, building.frame(), &building);
      const auto f = g.add(pf);
      const auto z = g.add(sink);
      g.connect(i, f);
      g.connect(f, z);
      pf->set_channel_manager(&ch);
      core::Channel* channel = ch.channel_from_source(e);
      ch.attach_feature(*channel,
                        std::make_shared<fusion::HdopLikelihoodFeature>(
                            building.frame()));
    } else {
      const auto z = g.add(sink);
      g.connect(i, z);
    }

    std::vector<double> errors;
    sink->set_callback([&](const core::Sample& s) {
      const auto& fix = s.payload.as<core::PositionFix>();
      const geo::GeoPoint truth = building.frame().to_geodetic(
          trajectory.position_at(fix.timestamp));
      errors.push_back(geo::haversine_m(fix.position, truth));
    });
    emulator->start();
    sched.run_all();
    if (with_filter && pf) {
      EXPECT_GT(pf->feature_likelihood_updates(), 0u);
    }
    return fusion::compute_stats(errors);
  };

  const fusion::ErrorStats raw = run_config(false);
  const fusion::ErrorStats filtered = run_config(true);
  ASSERT_GT(raw.count, 20u);
  ASSERT_GT(filtered.count, 20u);
  // The headline claim: probabilistic tracking with building constraints
  // refines the degraded indoor trace.
  EXPECT_LT(filtered.rmse, raw.rmse);
  EXPECT_LT(filtered.p95, raw.p95);
}

TEST_F(RoomAppFixture, AssemblerBuildsRoomPipelineAutomatically) {
  // The paper's dynamic dependency resolution: contribute the components,
  // let the resolver wire RssiScan -> LocalPosition -> RoomFix -> app.
  rt::GraphAssembler assembler(graph);
  auto scanner = std::make_shared<sensors::WifiScanner>(
      scheduler, random, trajectory, signal_model);
  assembler.add("wifi-sensor", scanner);
  assembler.add("positioner", std::make_shared<wifi::WifiPositioner>(db));
  assembler.add("resolver", std::make_shared<lm::RoomResolver>(building));
  auto sink = std::make_shared<core::ApplicationSink>(
      "RoomApp",
      std::vector<core::InputRequirement>{core::require<core::RoomFix>()});
  assembler.add("app", sink);
  const auto report = assembler.resolve();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.edges.size(), 3u);

  scanner->start();
  scheduler.run_until(sim::SimTime::from_seconds(60.0));
  ASSERT_TRUE(sink->last().has_value());
  EXPECT_TRUE(sink->last()->payload.is<core::RoomFix>());
}

TEST_F(RoomAppFixture, DistributedWifiPipelineToleratesLoss) {
  // The WiFi pipeline split across device and server over a lossy link:
  // scans are dropped by the network, but every scan that arrives resolves
  // to a sane room — loss degrades availability, never correctness.
  sim::Network network(scheduler, random);
  rt::DistributedDeployment deployment(graph, network);
  const sim::HostId device = deployment.add_host("device");
  const sim::HostId server = deployment.add_host("server");
  network.set_link(device, server,
                   {sim::SimTime::from_millis(25), /*loss=*/0.3, {}});

  auto scanner = std::make_shared<sensors::WifiScanner>(
      scheduler, random, trajectory, signal_model,
      sim::SimTime::from_seconds(1.0));
  auto positioner = std::make_shared<wifi::WifiPositioner>(db);
  auto resolver = std::make_shared<lm::RoomResolver>(building);
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto sid = graph.add(scanner);
  const auto pid = graph.add(positioner);
  const auto rid = graph.add(resolver);
  const auto zid = graph.add(sink);
  graph.connect(sid, pid);
  graph.connect(pid, rid);
  graph.connect(rid, zid);
  deployment.assign(sid, device);
  deployment.assign(pid, server);
  deployment.assign(rid, server);
  deployment.assign(zid, server);
  deployment.deploy();

  int sane = 0, rooms = 0;
  sink->set_callback([&](const core::Sample& s) {
    const auto& fix = s.payload.as<core::RoomFix>();
    ++rooms;
    if (building.inside_footprint(fix.local)) ++sane;
  });

  scanner->start();
  scheduler.run_until(trajectory.duration());
  scanner->stop();      // Stop the self-rescheduling tick...
  scheduler.run_all();  // ...then flush in-flight deliveries.

  const auto& stats = network.stats(device, server);
  EXPECT_GT(stats.messages_dropped, 5u);        // The link really is lossy.
  EXPECT_GT(rooms, 10);                         // Most scans still arrive.
  EXPECT_LT(static_cast<std::uint64_t>(rooms), scanner->scans());
  EXPECT_EQ(sane, rooms);                       // Never a corrupt position.
}

namespace {

/// A bundle contributing the GPS pipeline as services + graph components —
/// the OSGi-style dynamic composition of the paper's implementation notes.
class GpsPipelineBundle final : public rt::Bundle {
 public:
  GpsPipelineBundle(core::ProcessingGraph& graph, sim::Scheduler& scheduler,
                    sim::Random& random, const sensors::Trajectory& walk,
                    const geo::LocalFrame& frame)
      : Bundle("gps-pipeline"),
        graph_(graph),
        scheduler_(scheduler),
        random_(random),
        walk_(walk),
        frame_(frame) {}

  void start(rt::BundleContext& ctx) override {
    sensor_ = std::make_shared<sensors::GpsSensor>(scheduler_, random_,
                                                   walk_, frame_);
    auto parser = std::make_shared<sensors::NmeaParser>();
    auto interpreter = std::make_shared<sensors::NmeaInterpreter>();
    ids_.push_back(graph_.add(sensor_));
    ids_.push_back(graph_.add(parser));
    ids_.push_back(graph_.add(interpreter));
    graph_.connect(ids_[0], ids_[1]);
    graph_.connect(ids_[1], ids_[2]);
    ctx.register_service("position-producer",
                         std::make_shared<core::ComponentId>(ids_[2]),
                         {{"technology", "GPS"}});
    sensor_->start();
  }

  void stop(rt::BundleContext&) override {
    sensor_->stop();
    for (auto it = ids_.rbegin(); it != ids_.rend(); ++it) {
      graph_.remove(*it);
    }
    ids_.clear();
  }

 private:
  core::ProcessingGraph& graph_;
  sim::Scheduler& scheduler_;
  sim::Random& random_;
  const sensors::Trajectory& walk_;
  const geo::LocalFrame& frame_;
  std::shared_ptr<sensors::GpsSensor> sensor_;
  std::vector<core::ComponentId> ids_;
};

}  // namespace

TEST_F(RoomAppFixture, BundleLifecycleDrivesGraphComposition) {
  rt::Framework framework;
  framework.install(std::make_unique<GpsPipelineBundle>(
      graph, scheduler, random, trajectory, building.frame()));

  // Start: the bundle contributes three components and a service.
  framework.start("gps-pipeline");
  EXPECT_EQ(graph.size(), 3u);
  auto producer = framework.registry().get<core::ComponentId>(
      "position-producer", {{"technology", "GPS"}});
  ASSERT_NE(producer, nullptr);

  // An application discovers the producer through the registry and
  // attaches to it — dynamic composition without naming any type.
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto zid = graph.add(sink);
  graph.connect(*producer, zid);
  scheduler.run_until(sim::SimTime::from_seconds(10.0));
  EXPECT_GT(sink->received(), 5u);

  // Stop: the bundle's components leave the graph; the service vanishes.
  framework.stop("gps-pipeline");
  EXPECT_EQ(graph.size(), 1u);  // Only the application's sink remains.
  EXPECT_EQ(framework.registry()
                .find("position-producer")
                .size(),
            0u);
  const auto received = sink->received();
  scheduler.run_until(sim::SimTime::from_seconds(20.0));
  EXPECT_EQ(sink->received(), received);  // Nothing flows any more.
}
