// Tests for the EnTracked reproduction: power accounting, the device-side
// Power Strategy feature, the server-side EnTracked channel feature, and
// the end-to-end energy/accuracy tradeoff.

#include "perpos/core/channel.hpp"
#include "perpos/core/components.hpp"
#include "perpos/energy/entracked.hpp"
#include "perpos/energy/power_model.hpp"
#include "perpos/geo/distance.hpp"
#include "perpos/sensors/gps_sensor.hpp"
#include "perpos/sensors/pipeline_components.hpp"

#include <gtest/gtest.h>

namespace energy = perpos::energy;
namespace core = perpos::core;
namespace geo = perpos::geo;
namespace sim = perpos::sim;
namespace sensors = perpos::sensors;

TEST(PowerModel, AccountingArithmetic) {
  energy::DevicePowerModel model;
  const auto report =
      energy::account(model, sim::SimTime::from_seconds(100.0),
                      sim::SimTime::from_seconds(40.0), 10, 5);
  EXPECT_NEAR(report.gps_j, 40.0 * model.gps_on_w, 1e-9);
  EXPECT_NEAR(report.radio_j, 10 * model.radio_tx_j + 5 * model.radio_rx_j,
              1e-9);
  EXPECT_NEAR(report.idle_j, 100.0 * model.idle_w, 1e-9);
  EXPECT_NEAR(report.gps_duty_cycle, 0.4, 1e-9);
  EXPECT_NEAR(report.total_j(),
              report.gps_j + report.radio_j + report.idle_j, 1e-9);
  EXPECT_GT(report.average_mw(), 0.0);
  EXPECT_FALSE(energy::format_energy_row("x", report, 1.0, 2.0).empty());
  EXPECT_FALSE(energy::energy_header().empty());
}

TEST(PowerModel, ZeroDurationSafe) {
  const auto report = energy::account({}, sim::SimTime::zero(),
                                      sim::SimTime::zero(), 0, 0);
  EXPECT_DOUBLE_EQ(report.average_mw(), 0.0);
  EXPECT_DOUBLE_EQ(report.gps_duty_cycle, 0.0);
}

class EnTrackedFixture : public ::testing::Test {
 protected:
  EnTrackedFixture()
      : frame(geo::GeoPoint{56.1697, 10.1994, 50.0}),
        trajectory(sensors::TrajectoryBuilder({0, 0})
                       .walk_to({200, 0}, 1.4)
                       .build()),
        graph(&scheduler.clock()),
        channels(graph) {}

  // GPS -> SensorWrapper -> Parser -> Interpreter -> App.
  void build(double threshold_m = 25.0) {
    sensors::GpsSensorConfig config;
    config.emit_gsa = false;
    sensor = std::make_shared<sensors::GpsSensor>(scheduler, random,
                                                  trajectory, frame, config);
    wrapper = std::make_shared<energy::SensorWrapper>();
    auto parser = std::make_shared<sensors::NmeaParser>();
    auto interpreter = std::make_shared<sensors::NmeaInterpreter>();
    sink = std::make_shared<core::ApplicationSink>();
    sensor_id = graph.add(sensor);
    wrapper_id = graph.add(wrapper);
    parser_id = graph.add(parser);
    interpreter_id = graph.add(interpreter);
    sink_id = graph.add(sink);
    graph.connect(sensor_id, wrapper_id);
    graph.connect(wrapper_id, parser_id);
    graph.connect(parser_id, interpreter_id);
    graph.connect(interpreter_id, sink_id);

    strategy = std::make_shared<energy::PowerStrategyFeature>(*sensor,
                                                              scheduler);
    graph.attach_feature(wrapper_id, strategy);

    energy::EnTrackedConfig cfg;
    cfg.threshold_m = threshold_m;
    entracked = std::make_shared<energy::EnTrackedFeature>(
        cfg, frame, [this](double s) { strategy->request_sleep(s); });
    core::Channel* channel = channels.channel_from_source(sensor_id);
    ASSERT_NE(channel, nullptr);
    channels.attach_feature(*channel, entracked);
  }

  sim::Scheduler scheduler;
  sim::Random random{42};
  geo::LocalFrame frame;
  sensors::Trajectory trajectory;
  core::ProcessingGraph graph;
  core::ChannelManager channels;
  std::shared_ptr<sensors::GpsSensor> sensor;
  std::shared_ptr<energy::SensorWrapper> wrapper;
  std::shared_ptr<core::ApplicationSink> sink;
  std::shared_ptr<energy::PowerStrategyFeature> strategy;
  std::shared_ptr<energy::EnTrackedFeature> entracked;
  core::ComponentId sensor_id{}, wrapper_id{}, parser_id{}, interpreter_id{},
      sink_id{};
};

TEST_F(EnTrackedFixture, PowerStrategySleepAndWake) {
  build();
  sensor->start();
  scheduler.run_until(sim::SimTime::from_seconds(2.0));
  strategy->request_sleep(10.0);
  EXPECT_TRUE(strategy->sleeping());
  scheduler.run_until(sim::SimTime::from_seconds(5.0));
  EXPECT_FALSE(sensor->active());
  const auto epochs_before_wake = sensor->epochs();
  // After the wake at t=12 the receiver measures again — the very first
  // fix lets the EnTracked feature command the next sleep immediately, so
  // observe the resumed epoch rather than a lasting active state.
  scheduler.run_until(sim::SimTime::from_seconds(12.5));
  EXPECT_GT(sensor->epochs(), epochs_before_wake);
}

TEST_F(EnTrackedFixture, TinySleepIgnored) {
  build();
  sensor->start();
  strategy->request_sleep(1.0);  // Below min sleep (warmup not worth it).
  EXPECT_FALSE(strategy->sleeping());
  EXPECT_EQ(strategy->sleeps_commanded(), 0u);
}

TEST_F(EnTrackedFixture, ContinuousCancelsSleep) {
  build();
  sensor->start();
  strategy->request_sleep(30.0);
  EXPECT_TRUE(strategy->sleeping());
  strategy->continuous();
  EXPECT_FALSE(strategy->sleeping());
  EXPECT_TRUE(sensor->active());
}

TEST_F(EnTrackedFixture, DutyCyclesReceiverWhileTracking) {
  build(25.0);
  sensor->start();
  const sim::SimTime duration = sim::SimTime::from_seconds(140.0);
  scheduler.run_until(duration);

  EXPECT_GT(entracked->commands_sent(), 2u);
  EXPECT_GT(strategy->sleeps_commanded(), 2u);
  // The receiver must have been off a substantial fraction of the run.
  const double duty = sensor->active_time().seconds() / duration.seconds();
  EXPECT_LT(duty, 0.7);
  EXPECT_GT(duty, 0.02);
  // And positions still arrive.
  EXPECT_GT(sink->received(), 4u);
}

TEST_F(EnTrackedFixture, SpeedEstimateApproximatesWalk) {
  build(50.0);
  sensor->start();
  scheduler.run_until(sim::SimTime::from_seconds(60.0));
  EXPECT_GT(entracked->estimated_speed_mps(), 0.4);
  EXPECT_LT(entracked->estimated_speed_mps(), 3.0);
}

TEST_F(EnTrackedFixture, StationaryTargetSleepsLong) {
  trajectory = sensors::stationary({0, 0}, 300.0);
  build(25.0);
  sensor->start();
  scheduler.run_until(sim::SimTime::from_seconds(300.0));
  const double duty = sensor->active_time().seconds() / 300.0;
  EXPECT_LT(duty, 0.35);  // Mostly asleep when not moving.
}

namespace {

/// Standalone EnTracked rig for threshold sweeps.
struct EnTrackedRig {
  explicit EnTrackedRig(double threshold_m)
      : frame(geo::GeoPoint{56.1697, 10.1994, 50.0}),
        trajectory(sensors::TrajectoryBuilder({0, 0})
                       .walk_to({200, 0}, 1.4)
                       .build()),
        graph(&scheduler.clock()),
        channels(graph) {
    sensors::GpsSensorConfig config;
    config.emit_gsa = false;
    sensor = std::make_shared<sensors::GpsSensor>(scheduler, random,
                                                  trajectory, frame, config);
    auto wrapper = std::make_shared<energy::SensorWrapper>();
    auto parser = std::make_shared<sensors::NmeaParser>();
    auto interpreter = std::make_shared<sensors::NmeaInterpreter>();
    auto sink = std::make_shared<core::ApplicationSink>();
    const auto sid = graph.add(sensor);
    const auto wid = graph.add(wrapper);
    const auto pid = graph.add(parser);
    const auto iid = graph.add(interpreter);
    const auto zid = graph.add(sink);
    graph.connect(sid, wid);
    graph.connect(wid, pid);
    graph.connect(pid, iid);
    graph.connect(iid, zid);
    strategy =
        std::make_shared<energy::PowerStrategyFeature>(*sensor, scheduler);
    graph.attach_feature(wid, strategy);
    energy::EnTrackedConfig cfg;
    cfg.threshold_m = threshold_m;
    auto feature = std::make_shared<energy::EnTrackedFeature>(
        cfg, frame, [this](double s) { strategy->request_sleep(s); });
    channels.attach_feature(*channels.channel_from_source(sid), feature);
  }

  double run_active_seconds(double duration_s) {
    sensor->start();
    scheduler.run_until(sim::SimTime::from_seconds(duration_s));
    return sensor->active_time().seconds();
  }

  sim::Scheduler scheduler;
  sim::Random random{42};
  geo::LocalFrame frame;
  sensors::Trajectory trajectory;
  core::ProcessingGraph graph;
  core::ChannelManager channels;
  std::shared_ptr<sensors::GpsSensor> sensor;
  std::shared_ptr<energy::PowerStrategyFeature> strategy;
};

}  // namespace

TEST(EnTrackedSweep, TighterThresholdCostsMoreEnergy) {
  EnTrackedRig tight(10.0);
  EnTrackedRig loose(60.0);
  const double tight_active = tight.run_active_seconds(140.0);
  const double loose_active = loose.run_active_seconds(140.0);
  EXPECT_GT(tight_active, loose_active);
}

TEST_F(EnTrackedFixture, TrackingErrorBoundedByThreshold) {
  build(30.0);
  sensor->start();
  std::vector<double> errors;
  sink->set_callback([&](const core::Sample& s) {
    const auto& fix = s.payload.as<core::PositionFix>();
    errors.push_back(
        geo::haversine_m(fix.position, sensor->truth_at(s.timestamp)));
  });
  scheduler.run_until(sim::SimTime::from_seconds(140.0));
  ASSERT_GT(errors.size(), 3u);
  // Reported positions stay reasonably accurate (they are fresh fixes).
  double mean = 0.0;
  for (double e : errors) mean += e;
  mean /= static_cast<double>(errors.size());
  EXPECT_LT(mean, 30.0);
}

// --- Motion-gated EnTracked (accelerometer-assisted variant) -------------------

#include "perpos/energy/motion_gate.hpp"
#include "perpos/sensors/motion_sensor.hpp"

TEST(MotionSensor, DetectsMovementPhases) {
  sim::Scheduler scheduler;
  sim::Random random(42);
  // 30 s still, 30 s walking, 30 s still.
  const sensors::Trajectory traj = sensors::TrajectoryBuilder({0, 0})
                                       .pause(30.0)
                                       .walk_to({42, 0}, 1.4)
                                       .pause(30.0)
                                       .build();
  core::ProcessingGraph graph(&scheduler.clock());
  sensors::MotionSensorConfig config;
  config.false_positive_prob = 0.0;
  config.false_negative_prob = 0.0;
  auto sensor = std::make_shared<sensors::MotionSensor>(scheduler, random,
                                                        traj, config);
  auto sink = std::make_shared<core::ApplicationSink>();
  graph.connect(graph.add(sensor), graph.add(sink));

  int moving = 0, still = 0;
  sink->set_callback([&](const core::Sample& s) {
    (s.payload.as<sensors::MotionSample>().moving ? moving : still)++;
  });
  sensor->start();
  scheduler.run_until(traj.duration());
  EXPECT_NEAR(moving, 30, 3);
  EXPECT_NEAR(still, 60, 3);
}

TEST(MotionGate, ParksAndWakesReceiver) {
  sim::Scheduler scheduler;
  sim::Random random(42);
  const sensors::Trajectory traj = sensors::TrajectoryBuilder({0, 0})
                                       .pause(60.0)
                                       .walk_to({84, 0}, 1.4)
                                       .build();
  const geo::LocalFrame frame(geo::GeoPoint{56.1697, 10.1994, 50.0});
  core::ProcessingGraph graph(&scheduler.clock());
  sensors::GpsSensorConfig gps_config;
  gps_config.emit_gsa = false;
  auto gps = std::make_shared<sensors::GpsSensor>(scheduler, random, traj,
                                                  frame, gps_config);
  auto strategy =
      std::make_shared<energy::PowerStrategyFeature>(*gps, scheduler);
  const auto gid = graph.add(gps);
  graph.attach_feature(gid, strategy);

  sensors::MotionSensorConfig m_config;
  m_config.false_positive_prob = 0.0;
  m_config.false_negative_prob = 0.0;
  auto motion = std::make_shared<sensors::MotionSensor>(scheduler, random,
                                                        traj, m_config);
  energy::MotionGateConfig g_config;
  g_config.still_samples_to_park = 3;
  auto gate = std::make_shared<energy::MotionGateComponent>(*strategy,
                                                            g_config);
  auto* gate_ptr = gate.get();
  graph.connect(graph.add(motion), graph.add(gate));

  gps->start();
  motion->start();

  // During the still hour the receiver parks after 3 samples...
  scheduler.run_until(sim::SimTime::from_seconds(30.0));
  EXPECT_TRUE(gate_ptr->parked());
  EXPECT_FALSE(gps->active());
  EXPECT_EQ(gate_ptr->parks(), 1u);

  // ...and wakes when walking starts at t=60.
  scheduler.run_until(sim::SimTime::from_seconds(70.0));
  EXPECT_FALSE(gate_ptr->parked());
  EXPECT_TRUE(gps->active());
  EXPECT_EQ(gate_ptr->wakes(), 1u);

  // GPS active time ~= walk duration + initial pre-park seconds.
  scheduler.run_until(traj.duration());
  EXPECT_LT(gps->active_time().seconds(), 75.0);
  EXPECT_GT(gps->active_time().seconds(), 55.0);
}

TEST(MotionGate, AccelerometerEnergyAccounted) {
  const energy::DevicePowerModel model;
  const auto with_accel = energy::account(
      model, sim::SimTime::from_seconds(100.0), sim::SimTime::zero(), 0, 0,
      sim::SimTime::from_seconds(100.0));
  const auto without = energy::account(
      model, sim::SimTime::from_seconds(100.0), sim::SimTime::zero(), 0, 0);
  EXPECT_NEAR(with_accel.accel_j, 100.0 * model.accel_on_w, 1e-9);
  EXPECT_DOUBLE_EQ(without.accel_j, 0.0);
  EXPECT_GT(with_accel.total_j(), without.total_j());
  // But two orders of magnitude cheaper than GPS for the same time.
  EXPECT_LT(with_accel.accel_j * 10.0, 100.0 * model.gps_on_w);
}
