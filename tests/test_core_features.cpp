// Tests for Component Features: the three augmentation kinds of paper
// Sec. 2.1 (changing produced data, adding data, changing component state)
// plus hook ordering, vetoes and dependency validation.

#include "perpos/core/components.hpp"
#include "perpos/core/feature.hpp"
#include "perpos/core/graph.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace core = perpos::core;
using core::Payload;
using core::Sample;

namespace {

struct Reading {
  int value = 0;
};
struct Extra {
  int value = 0;
};

std::shared_ptr<core::SourceComponent> make_source() {
  return std::make_shared<core::SourceComponent>(
      "Sensor", std::vector<core::DataSpec>{core::provide<Reading>()});
}

std::shared_ptr<core::LambdaComponent> make_passthrough() {
  return std::make_shared<core::LambdaComponent>(
      "Pass", std::vector<core::InputRequirement>{core::require<Reading>()},
      std::vector<core::DataSpec>{core::provide<Reading>()},
      [](const Sample& s, const core::ComponentContext& ctx) {
        ctx.emit(s.payload);
      });
}

/// Adds `delta` to every Reading flowing OUT of the host.
class AddOnProduce final : public core::ComponentFeature {
 public:
  AddOnProduce(std::string name, int delta)
      : name_(std::move(name)), delta_(delta) {}
  std::string_view name() const override { return name_; }
  bool produce(Sample& s) override {
    s.payload = Payload::make(Reading{s.payload.as<Reading>().value + delta_});
    return true;
  }

 private:
  std::string name_;
  int delta_;
};

/// Multiplies every Reading flowing INTO the host.
class ScaleOnConsume final : public core::ComponentFeature {
 public:
  explicit ScaleOnConsume(int factor) : factor_(factor) {}
  std::string_view name() const override { return "ScaleOnConsume"; }
  bool consume(Sample& s) override {
    s.payload = Payload::make(Reading{s.payload.as<Reading>().value * factor_});
    return true;
  }

 private:
  int factor_;
};

/// Vetoes readings above a threshold on the way out.
class VetoLarge final : public core::ComponentFeature {
 public:
  std::string_view name() const override { return "VetoLarge"; }
  bool produce(Sample& s) override {
    return s.payload.as<Reading>().value <= 100;
  }
};

/// Adds an Extra data element for every produced Reading.
class ExtraAdder final : public core::ComponentFeature {
 public:
  static constexpr const char* kName = "ExtraAdder";
  std::string_view name() const override { return kName; }
  bool produce(Sample& s) override {
    if (s.feature_added()) return true;  // Skip our own additions.
    context().emit(Payload::make(Extra{s.payload.as<Reading>().value + 1000}));
    return true;
  }
  std::vector<const core::TypeInfo*> added_types() const override {
    return {core::type_of<Extra>()};
  }
};

/// Adds an Extra data element from consume(): "adding data" triggered on
/// the consuming side.
class ExtraOnConsume final : public core::ComponentFeature {
 public:
  static constexpr const char* kName = "ExtraOnConsume";
  std::string_view name() const override { return kName; }
  bool consume(Sample& s) override {
    context().emit(Payload::make(Extra{s.payload.as<Reading>().value + 500}));
    return true;
  }
  std::vector<const core::TypeInfo*> added_types() const override {
    return {core::type_of<Extra>()};
  }
};

/// A state-exposing feature: the "component appears to implement the
/// feature's functionality" augmentation.
class ThresholdState final : public core::ComponentFeature {
 public:
  std::string_view name() const override { return "Threshold"; }
  void set_threshold(int t) noexcept { threshold_ = t; }
  int threshold() const noexcept { return threshold_; }

 private:
  int threshold_ = 50;
};

/// Illegally changes the payload type in produce().
class TypeChanger final : public core::ComponentFeature {
 public:
  std::string_view name() const override { return "TypeChanger"; }
  bool produce(Sample& s) override {
    s.payload = Payload::make(Extra{1});
    return true;
  }
};

}  // namespace

TEST(Features, ProduceHookAltersOutgoingData) {
  core::ProcessingGraph g;
  auto source = make_source();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto z = g.add(sink);
  g.connect(a, z);
  g.attach_feature(a, std::make_shared<AddOnProduce>("Plus5", 5));
  source->push(Reading{10});
  EXPECT_EQ(sink->last()->payload.as<Reading>().value, 15);
}

TEST(Features, ConsumeHookAltersIncomingData) {
  core::ProcessingGraph g;
  auto source = make_source();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto mid = g.add(make_passthrough());
  const auto z = g.add(sink);
  g.connect(a, mid);
  g.connect(mid, z);
  g.attach_feature(mid, std::make_shared<ScaleOnConsume>(3));
  source->push(Reading{4});
  EXPECT_EQ(sink->last()->payload.as<Reading>().value, 12);
}

TEST(Features, HooksComposeInAttachmentOrder) {
  core::ProcessingGraph g;
  auto source = make_source();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto z = g.add(sink);
  g.connect(a, z);
  g.attach_feature(a, std::make_shared<AddOnProduce>("Plus1", 1));
  g.attach_feature(a, std::make_shared<AddOnProduce>("Plus10", 10));
  source->push(Reading{0});
  EXPECT_EQ(sink->last()->payload.as<Reading>().value, 11);
}

TEST(Features, ProduceVetoDropsSample) {
  core::ProcessingGraph g;
  auto source = make_source();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto z = g.add(sink);
  g.connect(a, z);
  g.attach_feature(a, std::make_shared<VetoLarge>());
  source->push(Reading{99});
  source->push(Reading{101});
  source->push(Reading{7});
  EXPECT_EQ(sink->received(), 2u);
  // Vetoed emissions do not count as emitted either.
  EXPECT_EQ(g.info(a).emitted, 2u);
}

TEST(Features, ConsumeVetoDropsBeforeComponentSeesIt) {
  core::ProcessingGraph g;
  auto source = make_source();
  int seen = 0;
  const auto a = g.add(source);
  const auto mid = g.add(std::make_shared<core::LambdaComponent>(
      "Counter",
      std::vector<core::InputRequirement>{core::require<Reading>()},
      std::vector<core::DataSpec>{core::provide<Reading>()},
      [&](const Sample&, const core::ComponentContext&) { ++seen; }));
  g.connect(a, mid);

  class VetoAll final : public core::ComponentFeature {
   public:
    std::string_view name() const override { return "VetoAll"; }
    bool consume(Sample&) override { return false; }
  };
  g.attach_feature(mid, std::make_shared<VetoAll>());
  source->push(Reading{1});
  EXPECT_EQ(seen, 0);
}

TEST(Features, AddedDataRequiresExplicitDeclaration) {
  core::ProcessingGraph g;
  auto source = make_source();
  const auto a = g.add(source);
  g.attach_feature(a, std::make_shared<ExtraAdder>());

  // Consumer A declares it accepts the feature's data; consumer B doesn't.
  auto accepting = std::make_shared<core::LambdaComponent>(
      "Accepting",
      std::vector<core::InputRequirement>{
          core::require<Reading>(),
          core::require<Extra>(ExtraAdder::kName)},
      std::vector<core::DataSpec>{core::provide<Reading>()}, nullptr);
  auto oblivious = std::make_shared<core::LambdaComponent>(
      "Oblivious",
      std::vector<core::InputRequirement>{core::require<Reading>()},
      std::vector<core::DataSpec>{core::provide<Reading>()}, nullptr);

  int extra_at_accepting = 0, readings_at_accepting = 0;
  int extra_at_oblivious = 0, readings_at_oblivious = 0;
  accepting = std::make_shared<core::LambdaComponent>(
      "Accepting",
      std::vector<core::InputRequirement>{
          core::require<Reading>(),
          core::require<Extra>(ExtraAdder::kName)},
      std::vector<core::DataSpec>{core::provide<Reading>()},
      [&](const Sample& s, const core::ComponentContext&) {
        if (s.payload.is<Extra>()) ++extra_at_accepting;
        if (s.payload.is<Reading>()) ++readings_at_accepting;
      });
  oblivious = std::make_shared<core::LambdaComponent>(
      "Oblivious",
      std::vector<core::InputRequirement>{core::require<Reading>()},
      std::vector<core::DataSpec>{core::provide<Reading>()},
      [&](const Sample& s, const core::ComponentContext&) {
        if (s.payload.is<Extra>()) ++extra_at_oblivious;
        if (s.payload.is<Reading>()) ++readings_at_oblivious;
      });

  const auto acc = g.add(accepting);
  const auto obl = g.add(oblivious);
  g.connect(a, acc);
  g.connect(a, obl);

  source->push(Reading{5});
  EXPECT_EQ(readings_at_accepting, 1);
  EXPECT_EQ(extra_at_accepting, 1);
  EXPECT_EQ(readings_at_oblivious, 1);
  EXPECT_EQ(extra_at_oblivious, 0);  // Never delivered without declaration.
}

TEST(Features, AddedDataCarriesFeatureOrigin) {
  core::ProcessingGraph g;
  auto source = make_source();
  const auto a = g.add(source);
  g.attach_feature(a, std::make_shared<ExtraAdder>());
  std::vector<std::string> origins;
  const auto z = g.add(std::make_shared<core::LambdaComponent>(
      "App",
      std::vector<core::InputRequirement>{
          core::require<Reading>(), core::require<Extra>(ExtraAdder::kName)},
      std::vector<core::DataSpec>{},
      [&](const Sample& s, const core::ComponentContext&) {
        origins.emplace_back(s.feature_origin());
      }));
  g.connect(a, z);
  source->push(Reading{1});
  ASSERT_EQ(origins.size(), 2u);
  EXPECT_EQ(origins[0], ExtraAdder::kName);  // Added data arrives first.
  EXPECT_EQ(origins[1], "");
}

TEST(Features, ConsumeHookEmissionDrainsWithItsDelivery) {
  // Pins the dispatch order for emissions made inside a consume() hook:
  // they belong to the delivery that triggered them and drain right after
  // that delivery's on_input returns — before the host's own on_input
  // emissions and before pending deliveries to the emitter's other
  // consumers. (The recursive dispatcher delivered them inside the hook
  // call; the work-stack dispatcher defers past on_input but keeps the
  // same relative order.)
  core::ProcessingGraph g;
  std::vector<std::string> order;

  auto source = make_source();
  const auto a = g.add(source);
  const auto mid = g.add(std::make_shared<core::LambdaComponent>(
      "Mid", std::vector<core::InputRequirement>{core::require<Reading>()},
      std::vector<core::DataSpec>{core::provide<Reading>()},
      [&](const Sample& s, const core::ComponentContext& ctx) {
        order.push_back("mid");
        ctx.emit(s.payload);
      }));
  const auto sibling = g.add(std::make_shared<core::ApplicationSink>(
      "Sibling", std::vector<core::InputRequirement>{core::require<Reading>()},
      [&](const Sample&) { order.push_back("sibling"); }));
  g.connect(a, mid);
  g.connect(a, sibling);

  g.attach_feature(mid, std::make_shared<ExtraOnConsume>());
  const auto extra_sink = g.add(std::make_shared<core::ApplicationSink>(
      "ExtraSink",
      std::vector<core::InputRequirement>{
          core::require<Extra>(ExtraOnConsume::kName)},
      [&](const Sample& s) {
        order.push_back("extra:" + std::to_string(s.payload.as<Extra>().value));
      }));
  const auto reading_sink = g.add(std::make_shared<core::ApplicationSink>(
      "ReadingSink",
      std::vector<core::InputRequirement>{core::require<Reading>()},
      [&](const Sample&) { order.push_back("reading"); }));
  g.connect(mid, extra_sink);
  g.connect(mid, reading_sink);

  source->push(Reading{1});
  EXPECT_EQ(order, (std::vector<std::string>{"mid", "extra:501", "reading",
                                             "sibling"}));
}

TEST(Features, AddedCapabilityVisibleInGraph) {
  core::ProcessingGraph g;
  const auto a = g.add(make_source());
  g.attach_feature(a, std::make_shared<ExtraAdder>());
  const auto caps = g.capabilities(a);
  ASSERT_EQ(caps.size(), 2u);
  EXPECT_EQ(caps[1].type, core::type_of<Extra>());
  EXPECT_EQ(caps[1].feature_tag, ExtraAdder::kName);
}

TEST(Features, StateFeatureAccessibleThroughComponent) {
  core::ProcessingGraph g;
  const auto a = g.add(make_source());
  g.attach_feature(a, std::make_shared<ThresholdState>());
  auto* state = g.get_feature<ThresholdState>(a);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->threshold(), 50);
  state->set_threshold(75);
  EXPECT_EQ(g.get_feature<ThresholdState>(a)->threshold(), 75);
}

TEST(Features, LookupByName) {
  core::ProcessingGraph g;
  const auto a = g.add(make_source());
  g.attach_feature(a, std::make_shared<ThresholdState>());
  EXPECT_NE(g.get_feature(a, "Threshold"), nullptr);
  EXPECT_EQ(g.get_feature(a, "Nonexistent"), nullptr);
}

TEST(Features, DuplicateNameRejected) {
  core::ProcessingGraph g;
  const auto a = g.add(make_source());
  g.attach_feature(a, std::make_shared<ThresholdState>());
  EXPECT_THROW(g.attach_feature(a, std::make_shared<ThresholdState>()),
               std::invalid_argument);
}

TEST(Features, DetachRemovesBehaviour) {
  core::ProcessingGraph g;
  auto source = make_source();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto z = g.add(sink);
  g.connect(a, z);
  g.attach_feature(a, std::make_shared<AddOnProduce>("Plus5", 5));
  source->push(Reading{0});
  EXPECT_EQ(sink->last()->payload.as<Reading>().value, 5);
  g.detach_feature(a, "Plus5");
  source->push(Reading{0});
  EXPECT_EQ(sink->last()->payload.as<Reading>().value, 0);
  EXPECT_THROW(g.detach_feature(a, "Plus5"), std::invalid_argument);
}

TEST(Features, DependencyValidation) {
  class Dependent final : public core::ComponentFeature {
   public:
    std::string_view name() const override { return "Dependent"; }
    std::vector<std::string> required_features() const override {
      return {"Threshold"};
    }
  };
  core::ProcessingGraph g;
  const auto a = g.add(make_source());
  EXPECT_THROW(g.attach_feature(a, std::make_shared<Dependent>()),
               std::invalid_argument);
  g.attach_feature(a, std::make_shared<ThresholdState>());
  EXPECT_NO_THROW(g.attach_feature(a, std::make_shared<Dependent>()));
}

TEST(Features, TypeChangeInHookIsRejected) {
  core::ProcessingGraph g;
  auto source = make_source();
  const auto a = g.add(source);
  g.attach_feature(a, std::make_shared<TypeChanger>());
  EXPECT_THROW(source->push(Reading{1}), std::logic_error);
}

TEST(Features, NullFeatureRejected) {
  core::ProcessingGraph g;
  const auto a = g.add(make_source());
  EXPECT_THROW(g.attach_feature(a, nullptr), std::invalid_argument);
}

TEST(Features, FeatureNamesListedInInfo) {
  core::ProcessingGraph g;
  const auto a = g.add(make_source());
  g.attach_feature(a, std::make_shared<ThresholdState>());
  g.attach_feature(a, std::make_shared<ExtraAdder>());
  const auto info = g.info(a);
  ASSERT_EQ(info.feature_names.size(), 2u);
  EXPECT_EQ(info.feature_names[0], "Threshold");
  EXPECT_EQ(info.feature_names[1], "ExtraAdder");
}
