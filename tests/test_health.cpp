// Health subsystem tests: watchdog state derivation at the PSL, reliable
// remoting under loss, the Health channel feature at the PCL, and
// criteria-driven provider failover at the PL — plus the chaos end-to-end
// property test combining all failure modes.

#include "perpos/core/channel.hpp"
#include "perpos/core/components.hpp"
#include "perpos/core/health_state.hpp"
#include "perpos/core/positioning.hpp"
#include "perpos/geo/distance.hpp"
#include "perpos/health/health_feature.hpp"
#include "perpos/health/reliable_link.hpp"
#include "perpos/health/settings.hpp"
#include "perpos/health/watchdog.hpp"
#include "perpos/locmodel/fixtures.hpp"
#include "perpos/runtime/distribution.hpp"
#include "perpos/sensors/failure_injection.hpp"
#include "perpos/sensors/gps_sensor.hpp"
#include "perpos/sensors/pipeline_components.hpp"
#include "perpos/sensors/wifi_scanner.hpp"
#include "perpos/sim/network.hpp"
#include "perpos/wifi/components.hpp"
#include "perpos/wifi/fingerprint.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace core = perpos::core;
namespace geo = perpos::geo;
namespace sim = perpos::sim;
namespace lm = perpos::locmodel;
namespace wifi = perpos::wifi;
namespace sensors = perpos::sensors;
namespace health = perpos::health;
namespace rt = perpos::runtime;

using core::HealthState;

// --- Watchdog (PSL) ----------------------------------------------------------

namespace {

struct WatchdogRig {
  WatchdogRig() : graph(&scheduler.clock()) {
    source = std::make_shared<core::SourceComponent>(
        "TestSource",
        std::vector<core::DataSpec>{core::provide<core::RawFragment>()});
    sink = std::make_shared<core::ApplicationSink>();
    source_id = graph.add(source);
    sink_id = graph.add(sink);
    graph.connect(source_id, sink_id);
  }

  /// Emit one fragment every second until `until_s`.
  void pump_until(double until_s) {
    const double now_s = scheduler.now().seconds();
    for (double t = now_s + 1.0; t <= until_s; t += 1.0) {
      scheduler.schedule_at(sim::SimTime::from_seconds(t), [this] {
        source->push(core::RawFragment{"tick"});
      });
    }
  }

  sim::Scheduler scheduler;
  core::ProcessingGraph graph;
  std::shared_ptr<core::SourceComponent> source;
  std::shared_ptr<core::ApplicationSink> sink;
  core::ComponentId source_id{}, sink_id{};
};

health::WatchdogConfig fast_watchdog() {
  health::WatchdogConfig cfg;
  cfg.check_interval = sim::SimTime::from_millis(500);
  cfg.degraded_after_s = 2.0;
  cfg.stale_after_s = 5.0;
  cfg.dead_after_s = 15.0;
  return cfg;
}

}  // namespace

TEST(Watchdog, WalksStatesAsSilenceGrows) {
  WatchdogRig rig;
  health::Watchdog dog(rig.graph, rig.scheduler, fast_watchdog());
  dog.watch(rig.source_id);
  dog.start();

  std::vector<std::pair<HealthState, HealthState>> seen;
  dog.add_listener([&](core::ComponentId id, HealthState from, HealthState to,
                       sim::SimTime) {
    EXPECT_EQ(id, rig.source_id);
    seen.emplace_back(from, to);
  });

  rig.pump_until(10.0);
  rig.scheduler.run_until(sim::SimTime::from_seconds(10.0));
  EXPECT_EQ(dog.state(rig.source_id), HealthState::kHealthy);

  // Silence from t=10: degraded at 12, stale at 15, dead at 25.
  rig.scheduler.run_until(sim::SimTime::from_seconds(13.0));
  EXPECT_EQ(dog.state(rig.source_id), HealthState::kDegraded);
  rig.scheduler.run_until(sim::SimTime::from_seconds(16.0));
  EXPECT_EQ(dog.state(rig.source_id), HealthState::kStale);
  rig.scheduler.run_until(sim::SimTime::from_seconds(26.0));
  EXPECT_EQ(dog.state(rig.source_id), HealthState::kDead);

  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0],
            std::make_pair(HealthState::kHealthy, HealthState::kDegraded));
  EXPECT_EQ(seen[1],
            std::make_pair(HealthState::kDegraded, HealthState::kStale));
  EXPECT_EQ(seen[2], std::make_pair(HealthState::kStale, HealthState::kDead));
  EXPECT_EQ(dog.transitions(), 3u);
  EXPECT_GE(dog.last_transition(rig.source_id).seconds(), 25.0);
}

TEST(Watchdog, RecoversWhenSamplesResume) {
  WatchdogRig rig;
  health::Watchdog dog(rig.graph, rig.scheduler, fast_watchdog());
  dog.watch(rig.source_id);
  dog.start();

  rig.scheduler.run_until(sim::SimTime::from_seconds(6.0));
  EXPECT_EQ(dog.state(rig.source_id), HealthState::kStale);

  rig.pump_until(10.0);
  rig.scheduler.run_until(sim::SimTime::from_seconds(8.0));
  EXPECT_EQ(dog.state(rig.source_id), HealthState::kHealthy);
}

TEST(Watchdog, RemovedComponentIsDead) {
  WatchdogRig rig;
  health::Watchdog dog(rig.graph, rig.scheduler, fast_watchdog());
  dog.watch(rig.source_id);
  rig.graph.remove(rig.source_id);
  dog.check_now();
  EXPECT_EQ(dog.state(rig.source_id), HealthState::kDead);
}

TEST(Watchdog, FailureRateDegradesEvenWhileSamplesFlow) {
  WatchdogRig rig;
  rig.graph.enable_observability();
  health::WatchdogConfig cfg = fast_watchdog();
  cfg.failure_rate_threshold_hz = 1.0;
  health::Watchdog dog(rig.graph, rig.scheduler, cfg);
  dog.watch(rig.source_id);
  dog.start();

  rig.pump_until(10.0);
  // A burst of failure events attributed to the source: well above 1 Hz.
  rig.scheduler.schedule_at(sim::SimTime::from_seconds(3.2), [&] {
    for (int i = 0; i < 10; ++i) {
      core::report_failure_event(&rig.graph, "TestSource", rig.source_id,
                                 "garbled");
    }
  });

  rig.scheduler.run_until(sim::SimTime::from_seconds(2.9));
  EXPECT_EQ(dog.state(rig.source_id), HealthState::kHealthy);
  rig.scheduler.run_until(sim::SimTime::from_seconds(3.6));
  EXPECT_EQ(dog.state(rig.source_id), HealthState::kDegraded);
  // The burst is over; the rate falls back under the threshold.
  rig.scheduler.run_until(sim::SimTime::from_seconds(5.0));
  EXPECT_EQ(dog.state(rig.source_id), HealthState::kHealthy);
}

TEST(Watchdog, PublishesStateAndTransitionsToRegistry) {
  WatchdogRig rig;
  rig.graph.enable_observability();
  health::Watchdog dog(rig.graph, rig.scheduler, fast_watchdog());
  dog.watch(rig.source_id);
  dog.start();
  rig.scheduler.run_until(sim::SimTime::from_seconds(16.0));
  ASSERT_EQ(dog.state(rig.source_id), HealthState::kDead);

  const auto snap = rig.graph.metrics();
  const std::string label = "TestSource#" + std::to_string(rig.source_id);
  const auto* gauge = snap.find_gauge("perpos_health_state", "source", label);
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->value, 3.0);  // kDead.
  const auto* transition =
      snap.find_counter("perpos_health_transitions_total", "source", label);
  ASSERT_NE(transition, nullptr);
  EXPECT_GE(transition->value, 1u);
}

// --- Reliable link (distributed PSL) -----------------------------------------

namespace {

/// The Fig. 1 GPS/NMEA pipeline split across a lossy device->server link.
struct DistributedRig {
  DistributedRig(bool reliable, double loss,
                 health::ReliableLinkConfig link_cfg = {})
      : frame(geo::GeoPoint{56.1697, 10.1994, 50.0}),
        trajectory(
            sensors::TrajectoryBuilder({0, 0}).walk_to({80, 0}, 1.4).build()),
        network(scheduler, random),
        graph(&scheduler.clock()),
        deployment(graph, network) {
    graph.enable_observability();
    sensors::GpsSensorConfig config;
    config.emit_gsa = false;
    sensor = std::make_shared<sensors::GpsSensor>(scheduler, random,
                                                  trajectory, frame, config);
    parser = std::make_shared<sensors::NmeaParser>();
    sink = std::make_shared<core::ApplicationSink>();
    sensor_id = graph.add(sensor);
    parser_id = graph.add(parser);
    interpreter_id = graph.add(std::make_shared<sensors::NmeaInterpreter>());
    sink_id = graph.add(sink);
    graph.connect(sensor_id, parser_id);
    graph.connect(parser_id, interpreter_id);
    graph.connect(interpreter_id, sink_id);

    device = deployment.add_host("device");
    server = deployment.add_host("server");
    network.set_link(device, server,
                     {sim::SimTime::from_millis(10), loss,
                      sim::SimTime::from_millis(2)});
    network.set_link(server, device,
                     {sim::SimTime::from_millis(10), loss,
                      sim::SimTime::from_millis(2)});
    deployment.assign(sensor_id, device);
    deployment.assign(parser_id, server);
    deployment.assign(interpreter_id, server);
    deployment.assign(sink_id, server);
    if (reliable) {
      deployment.set_link_factory(health::reliable_link_factory(link_cfg));
    }
    deployment.deploy();

    for (core::ComponentId id : graph.components()) {
      if (auto* e = graph.component_as<health::ReliableEgress>(id)) egress = e;
      if (auto* i = graph.component_as<health::ReliableIngress>(id)) {
        ingress = i;
      }
      if (auto* e = graph.component_as<rt::RemoteEgress>(id)) basic_egress = e;
      if (auto* i = graph.component_as<rt::RemoteIngress>(id)) {
        basic_ingress = i;
      }
    }
  }

  void run(double seconds) {
    sensor->start();
    scheduler.run_until(sim::SimTime::from_seconds(seconds));
    sensor->stop();
    scheduler.run_all();  // Drain in-flight deliveries and retransmissions.
  }

  // Note: network declared before graph so it outlives the graph — teardown
  // hooks (e.g. FlakyLink::flush) may emit into egress components that send.
  sim::Scheduler scheduler;
  sim::Random random{42};
  geo::LocalFrame frame;
  sensors::Trajectory trajectory;
  sim::Network network;
  core::ProcessingGraph graph;
  rt::DistributedDeployment deployment;
  sim::HostId device{}, server{};
  std::shared_ptr<sensors::GpsSensor> sensor;
  std::shared_ptr<sensors::NmeaParser> parser;
  std::shared_ptr<core::ApplicationSink> sink;
  core::ComponentId sensor_id{}, parser_id{}, interpreter_id{}, sink_id{};
  health::ReliableEgress* egress = nullptr;
  health::ReliableIngress* ingress = nullptr;
  rt::RemoteEgress* basic_egress = nullptr;
  rt::RemoteIngress* basic_ingress = nullptr;
};

}  // namespace

TEST(ReliableLink, DeliversEverythingWhereBaselineLoses) {
  DistributedRig reliable(/*reliable=*/true, /*loss=*/0.10);
  DistributedRig baseline(/*reliable=*/false, /*loss=*/0.10);
  reliable.run(60.0);
  baseline.run(60.0);

  // The unreliable baseline loses messages for good.
  ASSERT_NE(baseline.basic_egress, nullptr);
  ASSERT_NE(baseline.basic_ingress, nullptr);
  EXPECT_LT(baseline.basic_ingress->received(), baseline.basic_egress->sent());

  // The reliable link retransmits its way to 100% within the retry budget.
  ASSERT_NE(reliable.egress, nullptr);
  ASSERT_NE(reliable.ingress, nullptr);
  EXPECT_GT(reliable.egress->accepted(), 100u);
  EXPECT_EQ(reliable.ingress->received(), reliable.egress->accepted());
  EXPECT_GT(reliable.egress->retransmits(), 0u);
  EXPECT_EQ(reliable.egress->gave_up(), 0u);
  EXPECT_EQ(reliable.egress->inflight(), 0u);
  EXPECT_GT(reliable.sink->received(), baseline.sink->received());
}

TEST(ReliableLink, RetransmitsVisibleInMetricsRegistry) {
  DistributedRig rig(/*reliable=*/true, /*loss=*/0.10);
  rig.run(30.0);
  ASSERT_NE(rig.egress, nullptr);
  ASSERT_GT(rig.egress->retransmits(), 0u);

  const auto snap = rig.graph.metrics();
  const auto* sent = snap.find_counter("perpos_reliable_link_sent_total");
  ASSERT_NE(sent, nullptr);
  EXPECT_EQ(sent->value, rig.egress->accepted());
  const auto* retr =
      snap.find_counter("perpos_reliable_link_retransmits_total");
  ASSERT_NE(retr, nullptr);
  EXPECT_EQ(retr->value, rig.egress->retransmits());
  const auto* acks = snap.find_counter("perpos_reliable_link_acks_total");
  ASSERT_NE(acks, nullptr);
  EXPECT_EQ(acks->value, rig.egress->acked());
}

TEST(ReliableLink, SuppressesDuplicatesWhenAcksAreLost) {
  // Forward path clean, ack path very lossy: the egress retransmits
  // already-delivered messages, which the ingress must swallow.
  DistributedRig rig(/*reliable=*/true, /*loss=*/0.0);
  rig.network.set_link(rig.server, rig.device,
                       {sim::SimTime::from_millis(10), /*loss=*/0.6, {}});
  rig.run(30.0);

  ASSERT_NE(rig.ingress, nullptr);
  EXPECT_GT(rig.ingress->duplicates(), 0u);
  // Exactly-once delivery downstream: every accepted message emitted once.
  EXPECT_EQ(rig.ingress->received(), rig.egress->accepted());
}

TEST(ReliableLink, GivesUpAfterRetryBudgetOnDeadLink) {
  health::ReliableLinkConfig cfg;
  cfg.max_retries = 2;
  cfg.ack_timeout = sim::SimTime::from_millis(50);
  DistributedRig rig(/*reliable=*/true, /*loss=*/1.0, cfg);
  rig.run(5.0);

  ASSERT_NE(rig.egress, nullptr);
  EXPECT_GT(rig.egress->accepted(), 0u);
  EXPECT_EQ(rig.egress->gave_up(), rig.egress->accepted());
  EXPECT_EQ(rig.egress->inflight(), 0u);
  EXPECT_EQ(rig.ingress->received(), 0u);

  const auto snap = rig.graph.metrics();
  const auto* giveups =
      snap.find_counter("perpos_reliable_link_giveups_total");
  ASSERT_NE(giveups, nullptr);
  EXPECT_EQ(giveups->value, rig.egress->gave_up());
  // Give-ups surface as failure events for the watchdog's rate signal.
  const auto* failures = snap.find_counter("perpos_failure_events_total",
                                           "event", "delivery_failed");
  ASSERT_NE(failures, nullptr);
  EXPECT_EQ(failures->value, rig.egress->gave_up());
}

TEST(ReliableLink, CountsUndecodableWire) {
  DistributedRig rig(/*reliable=*/true, /*loss=*/0.0);
  ASSERT_NE(rig.ingress, nullptr);
  rig.ingress->deliver("DATA 1 not-a-payload");
  rig.ingress->deliver("garbage with no protocol");
  EXPECT_EQ(rig.ingress->decode_failures(), 2u);
  EXPECT_EQ(rig.ingress->received(), 0u);
}

// --- Chaos end-to-end property test ------------------------------------------

TEST(Chaos, NmeaPipelineSurvivesAllFailureModesAtOnce) {
  // Drop + garble + duplicate + reorder on the serial stream, 10% message
  // loss on the host link in both directions, reliable remoting on top.
  // Property: nothing crashes, no corrupt fix is ever delivered, and the
  // application still sees a usable position stream.
  DistributedRig rig(/*reliable=*/true, /*loss=*/0.10);
  auto flaky = std::make_shared<sensors::FlakyLinkComponent>(
      sensors::FailureInjectionConfig{0.05, 0.05, 0.05, 0.05}, rig.random);
  const auto flaky_id = rig.graph.add(flaky);
  // Chaos on the device-side serial stream, before the host boundary: the
  // remoted edge replaced sensor->parser, so splice into sensor->egress.
  rig.graph.insert_between(flaky_id, rig.sensor_id,
                           rig.graph.info(rig.sensor_id).consumers.front());

  int implausible = 0;
  rig.sink->set_callback([&](const core::Sample& s) {
    const auto& fix = s.payload.as<core::PositionFix>();
    const double err =
        geo::haversine_m(fix.position, rig.sensor->truth_at(s.timestamp));
    if (err > 500.0) ++implausible;
  });

  EXPECT_NO_THROW(rig.run(90.0));

  EXPECT_GT(flaky->dropped(), 0u);
  EXPECT_GT(flaky->garbled(), 0u);
  EXPECT_GT(flaky->duplicated(), 0u);
  EXPECT_GT(flaky->reordered(), 0u);
  // The reliable link delivered every fragment the chaos let through.
  ASSERT_NE(rig.egress, nullptr);
  EXPECT_EQ(rig.ingress->received(), rig.egress->accepted());
  // Usable output despite everything; never a corrupt position.
  EXPECT_GT(rig.sink->received(), 10u);
  EXPECT_EQ(implausible, 0);
}

// --- HealthChannelFeature (PCL) ----------------------------------------------

TEST(HealthChannelFeature, ExposesWatchdogVerdictOnTheChannel) {
  WatchdogRig rig;
  core::ChannelManager channels(rig.graph);
  health::Watchdog dog(rig.graph, rig.scheduler, fast_watchdog());
  dog.watch(rig.source_id);
  dog.start();

  core::Channel* channel = channels.channel_from_source(rig.source_id);
  ASSERT_NE(channel, nullptr);
  channels.attach_feature(
      *channel,
      std::make_shared<health::HealthChannelFeature>(dog, rig.source_id));

  rig.pump_until(10.0);
  rig.scheduler.run_until(sim::SimTime::from_seconds(10.0));

  channel = channels.channel_from_source(rig.source_id);
  ASSERT_NE(channel, nullptr);
  auto* feature = channel->get_feature<health::HealthChannelFeature>();
  ASSERT_NE(feature, nullptr);
  EXPECT_EQ(feature->verdict(), HealthState::kHealthy);
  EXPECT_TRUE(feature->healthy());
  EXPECT_GT(feature->outputs_seen(), 5u);

  // Source goes quiet; the channel-level verdict follows the watchdog,
  // and the transition time is queryable.
  rig.scheduler.run_until(sim::SimTime::from_seconds(20.0));
  EXPECT_GE(feature->verdict(), HealthState::kStale);
  EXPECT_FALSE(feature->healthy());
  EXPECT_GT(feature->last_transition().seconds(), 10.0);
}

TEST(HealthChannelFeature, UnwatchedSourceIsDead) {
  WatchdogRig rig;
  health::Watchdog dog(rig.graph, rig.scheduler, fast_watchdog());
  health::HealthChannelFeature feature(dog, rig.source_id);
  EXPECT_EQ(feature.verdict(), HealthState::kDead);
  EXPECT_EQ(feature.last_transition(), sim::SimTime::zero());
}

// --- Failover (PL) -----------------------------------------------------------

namespace {

/// GPS (preferred, accurate) + WiFi (fallback) providers over the office
/// building, with a tracked target attached to both.
class FailoverFixture : public ::testing::Test {
 protected:
  FailoverFixture()
      : building(lm::make_office_building()),
        signal_model(wifi::office_access_points(), wifi::SignalModelConfig{},
                     &building),
        db(wifi::FingerprintDatabase::survey(signal_model, building, 2.0)),
        trajectory(sensors::office_walk()),
        graph(&scheduler.clock()),
        channels(graph),
        service(graph, channels) {
    graph.enable_observability();

    sensors::GpsSensorConfig config;
    config.emit_gsa = false;
    gps = std::make_shared<sensors::GpsSensor>(scheduler, random, trajectory,
                                               building.frame(), config);
    auto parser = std::make_shared<sensors::NmeaParser>();
    auto interpreter = std::make_shared<sensors::NmeaInterpreter>();
    const auto gid = graph.add(gps);
    const auto nid = graph.add(parser);
    const auto iid = graph.add(interpreter);
    graph.connect(gid, nid);
    graph.connect(nid, iid);
    service.advertise(iid, {"GPS", 4.0, core::Criteria::Power::kHigh});

    scanner = std::make_shared<sensors::WifiScanner>(
        scheduler, random, trajectory, signal_model,
        sim::SimTime::from_seconds(1.0));
    auto positioner = std::make_shared<wifi::WifiPositioner>(db);
    auto togeo = std::make_shared<wifi::LocalToGeoConverter>(building);
    const auto wid = graph.add(scanner);
    const auto pid = graph.add(positioner);
    const auto tid = graph.add(togeo);
    graph.connect(wid, pid);
    graph.connect(pid, tid);
    service.advertise(tid, {"WiFi", 8.0, core::Criteria::Power::kLow});

    core::Criteria gps_criteria;
    gps_criteria.technology = "GPS";
    gps_provider = &service.request_provider(gps_criteria);
    core::Criteria wifi_criteria;
    wifi_criteria.technology = "WiFi";
    wifi_provider = &service.request_provider(wifi_criteria);

    target = &service.create_target("user");
    target->attach_provider(*gps_provider);
    target->attach_provider(*wifi_provider);
  }

  lm::Building building;
  wifi::SignalModel signal_model;
  wifi::FingerprintDatabase db;
  sensors::Trajectory trajectory;
  sim::Scheduler scheduler;
  sim::Random random{42};
  core::ProcessingGraph graph;
  core::ChannelManager channels;
  core::PositioningService service;
  std::shared_ptr<sensors::GpsSensor> gps;
  std::shared_ptr<sensors::WifiScanner> scanner;
  core::LocationProvider* gps_provider = nullptr;
  core::LocationProvider* wifi_provider = nullptr;
  core::Target* target = nullptr;
};

}  // namespace

TEST_F(FailoverFixture, DeadGpsFailsOverToWifiAndBackWithoutFlapping) {
  struct Transition {
    std::string from, to;
    double when_s;
  };
  std::vector<Transition> transitions;
  service.add_failover_listener([&](core::Target& t, core::LocationProvider* f,
                                    core::LocationProvider* to,
                                    sim::SimTime when) {
    EXPECT_EQ(&t, target);
    transitions.push_back({f ? f->advertisement().technology : "none",
                           to ? to->advertisement().technology : "none",
                           when.seconds()});
  });

  service.enable_failover(scheduler);  // Defaults: stale 5s, hold 5s.
  ASSERT_TRUE(service.failover_enabled());
  EXPECT_EQ(target->active_provider(), gps_provider);  // Preferred by accuracy.

  gps->start();
  scanner->start();
  scheduler.run_until(sim::SimTime::from_seconds(20.0));
  EXPECT_EQ(target->active_provider(), gps_provider);
  EXPECT_EQ(service.provider_health(*gps_provider), HealthState::kHealthy);

  // GPS receiver dies at t=20. Staleness crosses 5s at ~25; the next
  // 1s-interval check must fail the target over to WiFi.
  gps->set_active(false);
  scheduler.run_until(sim::SimTime::from_seconds(35.0));
  EXPECT_EQ(target->active_provider(), wifi_provider);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].from, "GPS");
  EXPECT_EQ(transitions[0].to, "WiFi");
  EXPECT_GE(transitions[0].when_s, 24.0);
  EXPECT_LE(transitions[0].when_s, 27.0);  // Bounded staleness window.
  EXPECT_GE(service.provider_health(*gps_provider), HealthState::kStale);

  // Degraded-accuracy fixes instead of silence: the target keeps
  // producing fresh positions through WiFi during the outage.
  scheduler.run_until(sim::SimTime::from_seconds(50.0));
  const auto during_outage = target->current_position();
  ASSERT_TRUE(during_outage.has_value());
  EXPECT_GE(during_outage->timestamp.seconds(), 45.0);
  EXPECT_EQ(during_outage->technology, "WiFi");

  // GPS recovers at t=50; fail-back waits out the 5s hysteresis hold.
  gps->set_active(true);
  scheduler.run_until(sim::SimTime::from_seconds(75.0));
  EXPECT_EQ(target->active_provider(), gps_provider);
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[1].from, "WiFi");
  EXPECT_EQ(transitions[1].to, "GPS");
  EXPECT_GE(transitions[1].when_s, 55.0);  // Not before the hold expired.
  EXPECT_LE(transitions[1].when_s, 62.0);
  EXPECT_EQ(service.provider_health(*gps_provider), HealthState::kHealthy);

  // No flapping: a long stable tail adds no further transitions.
  scheduler.run_until(sim::SimTime::from_seconds(95.0));
  EXPECT_EQ(service.failover_transitions(), 2u);

  // PL health is visible in the metrics registry.
  const auto snap = graph.metrics();
  const auto* count = snap.find_counter("perpos_failover_transitions_total",
                                        "target", "user");
  ASSERT_NE(count, nullptr);
  const auto* gauge = snap.find_gauge("perpos_provider_health", "provider",
                                      gps_provider->metric_label());
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->value, 0.0);  // kHealthy again.
}

TEST_F(FailoverFixture, DisableStopsChecksAndKeepsActiveProvider) {
  service.enable_failover(scheduler);
  gps->start();
  scanner->start();
  scheduler.run_until(sim::SimTime::from_seconds(10.0));
  service.disable_failover();
  EXPECT_FALSE(service.failover_enabled());

  gps->set_active(false);
  scheduler.run_until(sim::SimTime::from_seconds(40.0));
  // Nobody is checking any more: the target stays on (stale) GPS.
  EXPECT_EQ(target->active_provider(), gps_provider);
  EXPECT_EQ(service.failover_transitions(), 0u);
}

TEST_F(FailoverFixture, HealthSettingsDriveFailoverConfig) {
  rt::HealthSettings settings;
  settings.stale_after_s = 3.0;
  settings.hold_s = 2.0;
  settings.check_interval_s = 0.5;
  service.enable_failover(scheduler, settings.failover());
  EXPECT_EQ(service.failover_config().stale_after_s, 3.0);
  EXPECT_EQ(service.failover_config().hold_s, 2.0);
  EXPECT_EQ(service.failover_config().check_interval,
            sim::SimTime::from_seconds(0.5));

  // The same settings convert for the PSL watchdog and the link layer.
  const auto dog_cfg = health::watchdog_config_from(settings);
  EXPECT_EQ(dog_cfg.stale_after_s, 3.0);
  EXPECT_EQ(dog_cfg.check_interval, sim::SimTime::from_seconds(0.5));
  const auto link_cfg = health::reliable_link_config_from(settings);
  EXPECT_EQ(link_cfg.max_retries, 8);
  EXPECT_EQ(link_cfg.ack_timeout, sim::SimTime::from_seconds(0.1));
}
