// Tests for the transportation-mode pipeline: per-stage units plus the
// full four-component reasoning chain on synthetic movement, including the
// HMM's flicker suppression (the reason for post-processing).

#include "perpos/core/components.hpp"
#include "perpos/core/graph.hpp"
#include "perpos/fusion/transport_mode.hpp"
#include "perpos/sim/random.hpp"

#include <gtest/gtest.h>

#include <map>

namespace fusion = perpos::fusion;
namespace core = perpos::core;
namespace geo = perpos::geo;
namespace sim = perpos::sim;
using fusion::TransportMode;

namespace {

const geo::LocalFrame& frame() {
  static const geo::LocalFrame f(geo::GeoPoint{56.1697, 10.1994, 50.0});
  return f;
}

/// A straight-line segment at constant speed with Gaussian position noise.
fusion::TrackSegment make_segment(double speed_mps, double noise_m,
                                  sim::Random& random, int n = 10,
                                  double t0 = 0.0) {
  fusion::TrackSegment segment;
  for (int i = 0; i < n; ++i) {
    segment.points.push_back({i * speed_mps + random.normal(0.0, noise_m),
                              random.normal(0.0, noise_m)});
    segment.times.push_back(sim::SimTime::from_seconds(t0 + i));
  }
  return segment;
}

core::PositionFix fix_at(double x, double y, double t) {
  core::PositionFix fix;
  fix.position = frame().to_geodetic(geo::LocalPoint{x, y});
  fix.horizontal_accuracy_m = 3.0;
  fix.timestamp = sim::SimTime::from_seconds(t);
  fix.technology = "GPS";
  return fix;
}

}  // namespace

TEST(TransportMode, Names) {
  EXPECT_STREQ(fusion::to_string(TransportMode::kStill), "still");
  EXPECT_STREQ(fusion::to_string(TransportMode::kVehicle), "vehicle");
}

TEST(FeatureExtraction, ConstantSpeedStatistics) {
  sim::Random random(42);
  const auto segment = make_segment(2.0, 0.0, random);
  const auto f = fusion::FeatureExtractionComponent::extract(segment);
  EXPECT_NEAR(f.mean_speed_mps, 2.0, 1e-9);
  EXPECT_NEAR(f.max_speed_mps, 2.0, 1e-9);
  EXPECT_NEAR(f.speed_stddev, 0.0, 1e-9);
  EXPECT_NEAR(f.mean_abs_acceleration, 0.0, 1e-9);
  EXPECT_NEAR(f.heading_change_deg, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(f.duration_s, 9.0);
}

TEST(FeatureExtraction, NoiseRaisesVariationFeatures) {
  sim::Random random(42);
  const auto clean = fusion::FeatureExtractionComponent::extract(
      make_segment(1.5, 0.0, random));
  const auto noisy = fusion::FeatureExtractionComponent::extract(
      make_segment(1.5, 1.0, random));
  EXPECT_GT(noisy.speed_stddev, clean.speed_stddev);
  EXPECT_GT(noisy.heading_change_deg, clean.heading_change_deg);
}

TEST(FeatureExtraction, DegenerateSegments) {
  fusion::TrackSegment empty;
  EXPECT_DOUBLE_EQ(
      fusion::FeatureExtractionComponent::extract(empty).mean_speed_mps, 0.0);
  fusion::TrackSegment one;
  one.points.push_back({0, 0});
  one.times.push_back({});
  EXPECT_DOUBLE_EQ(
      fusion::FeatureExtractionComponent::extract(one).mean_speed_mps, 0.0);
}

// Parameterized classifier sweep: speed band -> expected mode.
class ClassifierBands
    : public ::testing::TestWithParam<std::pair<double, TransportMode>> {};

TEST_P(ClassifierBands, SpeedBandClassification) {
  const auto [speed, expected] = GetParam();
  sim::Random random(42);
  const auto f = fusion::FeatureExtractionComponent::extract(
      make_segment(speed, 0.05, random));
  EXPECT_EQ(fusion::DecisionTreeClassifier::classify(f).mode, expected)
      << "speed " << speed;
}

INSTANTIATE_TEST_SUITE_P(
    Bands, ClassifierBands,
    ::testing::Values(std::pair{0.05, TransportMode::kStill},
                      std::pair{0.2, TransportMode::kStill},
                      std::pair{0.5, TransportMode::kStill},
                      std::pair{0.8, TransportMode::kWalk},
                      std::pair{1.5, TransportMode::kWalk},
                      std::pair{3.5, TransportMode::kBike},
                      std::pair{5.5, TransportMode::kBike},
                      std::pair{12.0, TransportMode::kVehicle},
                      std::pair{25.0, TransportMode::kVehicle}));

TEST(Classifier, ConfidenceInRange) {
  sim::Random random(42);
  for (double speed : {0.1, 1.0, 4.0, 15.0}) {
    const auto f = fusion::FeatureExtractionComponent::extract(
        make_segment(speed, 0.1, random));
    const auto estimate = fusion::DecisionTreeClassifier::classify(f);
    EXPECT_GE(estimate.confidence, 0.5);
    EXPECT_LE(estimate.confidence, 0.95);
  }
}

TEST(Segmentation, EmitsSlidingWindows) {
  core::ProcessingGraph graph;
  auto source = std::make_shared<core::SourceComponent>(
      "Src",
      std::vector<core::DataSpec>{core::provide<core::PositionFix>()});
  fusion::SegmentationConfig config;
  config.segment_size = 4;
  config.stride = 2;
  auto seg = std::make_shared<fusion::SegmentationComponent>(frame(), config);
  auto sink = std::make_shared<core::ApplicationSink>();
  graph.connect(graph.add(source), graph.add(seg));
  graph.connect(seg->context().id(), graph.add(sink));

  for (int i = 0; i < 8; ++i) {
    source->push(fix_at(i * 1.0, 0.0, i));
  }
  // Windows at fix 4 (0-3), 6 (2-5), 8 (4-7).
  EXPECT_EQ(sink->received(), 3u);
  const auto& last = sink->last()->payload.as<fusion::TrackSegment>();
  EXPECT_EQ(last.points.size(), 4u);
  EXPECT_NEAR(last.points.front().x, 4.0, 1e-6);
}

TEST(Segmentation, GapFlushesBuffer) {
  core::ProcessingGraph graph;
  auto source = std::make_shared<core::SourceComponent>(
      "Src",
      std::vector<core::DataSpec>{core::provide<core::PositionFix>()});
  fusion::SegmentationConfig config;
  config.segment_size = 4;
  config.stride = 4;
  config.gap_limit = sim::SimTime::from_seconds(5.0);
  auto seg = std::make_shared<fusion::SegmentationComponent>(frame(), config);
  auto sink = std::make_shared<core::ApplicationSink>();
  graph.connect(graph.add(source), graph.add(seg));
  graph.connect(seg->context().id(), graph.add(sink));

  source->push(fix_at(0, 0, 0));
  source->push(fix_at(1, 0, 1));
  source->push(fix_at(2, 0, 2));
  source->push(fix_at(50, 0, 60));  // 58 s gap: buffer resets.
  source->push(fix_at(51, 0, 61));
  source->push(fix_at(52, 0, 62));
  source->push(fix_at(53, 0, 63));  // 4 fixes since the gap -> 1 segment.
  EXPECT_EQ(seg->gaps(), 1u);
  EXPECT_EQ(sink->received(), 1u);
  const auto& segment = sink->last()->payload.as<fusion::TrackSegment>();
  EXPECT_NEAR(segment.points.front().x, 50.0, 1e-6);
}

TEST(Hmm, SuppressesSingleMisclassification) {
  core::ProcessingGraph graph;
  auto source = std::make_shared<core::SourceComponent>(
      "Src",
      std::vector<core::DataSpec>{core::provide<fusion::ModeEstimate>()});
  auto hmm = std::make_shared<fusion::HmmSmoother>();
  auto sink = std::make_shared<core::ApplicationSink>();
  graph.connect(graph.add(source), graph.add(hmm));
  graph.connect(hmm->context().id(), graph.add(sink));

  std::vector<TransportMode> smoothed;
  sink->set_callback([&](const core::Sample& s) {
    smoothed.push_back(s.payload.as<fusion::ModeEstimate>().mode);
  });

  const auto push = [&](TransportMode mode, double confidence) {
    fusion::ModeEstimate e;
    e.mode = mode;
    e.confidence = confidence;
    source->push(e);
  };
  for (int i = 0; i < 5; ++i) push(TransportMode::kWalk, 0.8);
  push(TransportMode::kVehicle, 0.6);  // One flicker.
  for (int i = 0; i < 5; ++i) push(TransportMode::kWalk, 0.8);

  // The single vehicle observation must not flip the smoothed output.
  int vehicle_outputs = 0;
  for (TransportMode m : smoothed) {
    if (m == TransportMode::kVehicle) ++vehicle_outputs;
  }
  EXPECT_EQ(vehicle_outputs, 0);
}

TEST(Hmm, FollowsSustainedModeChange) {
  fusion::HmmSmoother hmm;
  core::ProcessingGraph graph;
  auto source = std::make_shared<core::SourceComponent>(
      "Src",
      std::vector<core::DataSpec>{core::provide<fusion::ModeEstimate>()});
  auto hmm_c = std::make_shared<fusion::HmmSmoother>();
  auto sink = std::make_shared<core::ApplicationSink>();
  graph.connect(graph.add(source), graph.add(hmm_c));
  graph.connect(hmm_c->context().id(), graph.add(sink));

  const auto push = [&](TransportMode mode) {
    fusion::ModeEstimate e;
    e.mode = mode;
    e.confidence = 0.85;
    source->push(e);
  };
  for (int i = 0; i < 6; ++i) push(TransportMode::kWalk);
  for (int i = 0; i < 6; ++i) push(TransportMode::kVehicle);
  EXPECT_EQ(sink->last()->payload.as<fusion::ModeEstimate>().mode,
            TransportMode::kVehicle);
}

TEST(TransportPipeline, EndToEndClassifiesSyntheticJourney) {
  // Full four-stage chain over a journey: still -> walk -> vehicle.
  core::ProcessingGraph graph;
  auto source = std::make_shared<core::SourceComponent>(
      "GPS",
      std::vector<core::DataSpec>{core::provide<core::PositionFix>()});
  fusion::SegmentationConfig seg_config;
  seg_config.segment_size = 8;
  seg_config.stride = 4;
  auto seg =
      std::make_shared<fusion::SegmentationComponent>(frame(), seg_config);
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = graph.add(source);
  const auto s = graph.add(seg);
  const auto f = graph.add(std::make_shared<fusion::FeatureExtractionComponent>());
  const auto d = graph.add(std::make_shared<fusion::DecisionTreeClassifier>());
  const auto h = graph.add(std::make_shared<fusion::HmmSmoother>());
  const auto z = graph.add(sink);
  graph.connect(a, s);
  graph.connect(s, f);
  graph.connect(f, d);
  graph.connect(d, h);
  graph.connect(h, z);

  std::map<TransportMode, int> histogram;
  sink->set_callback([&](const core::Sample& smp) {
    ++histogram[smp.payload.as<fusion::ModeEstimate>().mode];
  });

  sim::Random random(42);
  double x = 0.0, t = 0.0;
  const auto advance = [&](double speed, int steps, double noise) {
    for (int i = 0; i < steps; ++i) {
      x += speed;
      t += 1.0;
      source->push(fix_at(x + random.normal(0.0, noise),
                          random.normal(0.0, noise), t));
    }
  };
  // Position noise of 0.4 m/s would make stillness look like slow
  // walking (a real seam!); assume smoothed input for this test.
  advance(0.0, 40, 0.1);   // Still.
  advance(1.4, 40, 0.4);   // Walk.
  advance(14.0, 40, 0.4);  // Vehicle.

  EXPECT_GT(histogram[TransportMode::kStill], 0);
  EXPECT_GT(histogram[TransportMode::kWalk], 0);
  EXPECT_GT(histogram[TransportMode::kVehicle], 0);
}
