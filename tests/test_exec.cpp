// Tests for the parallel execution engine (perpos::exec) and for the
// hot-path properties the engine relies on in core:
//  - lane serialization and post-order execution,
//  - per-lane determinism across worker counts (byte-identical per-graph
//    delivery sequences with 0, 1 and 8 workers),
//  - the deep-pipeline regression (10k-component chain must not overflow
//    the call stack now that dispatch is an explicit work queue),
//  - multi-lane chaos: concurrent lane creation / posting / teardown of
//    graphs while other lanes are draining (run under TSan in CI),
//  - the scheduler hand-off (drive() drains lanes between events),
//  - emit_batch semantics (identical to N single emissions).

#include "perpos/core/components.hpp"
#include "perpos/core/graph.hpp"
#include "perpos/exec/engine.hpp"
#include "perpos/obs/flight_recorder.hpp"
#include "perpos/obs/introspection.hpp"
#include "perpos/obs/profiler.hpp"
#include "perpos/sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace core = perpos::core;
namespace exec = perpos::exec;
namespace obs = perpos::obs;
namespace sim = perpos::sim;

namespace {

struct Tick {
  int value = 0;
};

std::shared_ptr<core::SourceComponent> tick_source() {
  return std::make_shared<core::SourceComponent>(
      "Src", std::vector<core::DataSpec>{core::provide<Tick>()});
}

std::shared_ptr<core::LambdaComponent> add_one_stage() {
  return std::make_shared<core::LambdaComponent>(
      "AddOne", std::vector<core::InputRequirement>{core::require<Tick>()},
      std::vector<core::DataSpec>{core::provide<Tick>()},
      [](const core::Sample& s, const core::ComponentContext& ctx) {
        ctx.emit(core::Payload::make(Tick{s.payload.get<Tick>()->value + 1}));
      });
}

/// One single-graph positioning process: Src -> AddOne^depth -> Sink,
/// recording every delivered value into a transcript string.
struct GraphRig {
  explicit GraphRig(std::size_t depth) {
    source_id = graph.add(tick_source());
    core::ComponentId prev = source_id;
    for (std::size_t i = 0; i < depth; ++i) {
      const auto stage = graph.add(add_one_stage());
      graph.connect(prev, stage);
      prev = stage;
    }
    auto sink = std::make_shared<core::ApplicationSink>(
        "Sink", std::vector<core::InputRequirement>{core::require<Tick>()},
        [this](const core::Sample& s) {
          transcript << s.payload.get<Tick>()->value << ':' << s.sequence
                     << ';';
        });
    sink_id = graph.add(sink);
    graph.connect(prev, sink_id);
    source = graph.component_as<core::SourceComponent>(source_id);
  }

  core::ProcessingGraph graph;
  core::ComponentId source_id = core::kInvalidComponent;
  core::ComponentId sink_id = core::kInvalidComponent;
  core::SourceComponent* source = nullptr;
  std::ostringstream transcript;
};

}  // namespace

// --- Engine basics -----------------------------------------------------------

TEST(Engine, InlineModeRunsTasksOnRunUntilIdle) {
  exec::ExecutionEngine engine(0);
  const auto lane = engine.create_lane("a");
  int ran = 0;
  engine.post(lane, [&] { ++ran; });
  engine.post(lane, [&] { ++ran; });
  EXPECT_EQ(ran, 0);  // Inline mode queues until drained.
  engine.run_until_idle();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(engine.executed(), 2u);
  EXPECT_EQ(engine.outstanding(), 0u);
}

TEST(Engine, LaneTasksRunInPostOrder) {
  for (const std::size_t workers : {std::size_t{0}, std::size_t{4}}) {
    exec::ExecutionEngine engine(workers);
    const auto lane = engine.create_lane();
    std::vector<int> order;
    for (int i = 0; i < 100; ++i) {
      engine.post(lane, [&order, i] { order.push_back(i); });
    }
    engine.run_until_idle();
    ASSERT_EQ(order.size(), 100u) << "workers=" << workers;
    for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
  }
}

TEST(Engine, TasksPostedFromTasksAreExecuted) {
  exec::ExecutionEngine engine(2);
  const auto lane = engine.create_lane();
  std::atomic<int> ran{0};
  engine.post(lane, [&] {
    ++ran;
    engine.post(lane, [&] {
      ++ran;
      engine.post(lane, [&] { ++ran; });
    });
  });
  engine.run_until_idle();
  EXPECT_EQ(ran.load(), 3);
}

TEST(Engine, LanesNeverRunConcurrentlyWithThemselves) {
  exec::ExecutionEngine engine(8);
  const auto lane = engine.create_lane();
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  for (int i = 0; i < 500; ++i) {
    engine.post(lane, [&] {
      if (inside.fetch_add(1) != 0) overlapped = true;
      inside.fetch_sub(1);
    });
  }
  engine.run_until_idle();
  EXPECT_FALSE(overlapped.load());
}

TEST(Engine, ExecutorPostsWithoutLookup) {
  exec::ExecutionEngine engine(0);
  const auto lane = engine.create_lane();
  auto executor = engine.executor(lane);
  int ran = 0;
  executor([&] { ++ran; });
  engine.run_until_idle();
  EXPECT_EQ(ran, 1);
  EXPECT_THROW(engine.executor(42), std::invalid_argument);
  EXPECT_THROW(engine.post(42, [] {}), std::invalid_argument);
}

TEST(Engine, MetricsReflectActivity) {
  exec::ExecutionEngine engine(0);
  perpos::obs::MetricsRegistry registry;
  engine.enable_metrics(&registry);
  const auto lane = engine.create_lane("metered");
  engine.post(lane, [] {});
  engine.post(lane, [] {});
  engine.run_until_idle();
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.find_counter("perpos_exec_tasks_posted_total")->value, 2u);
  EXPECT_EQ(snap.find_counter("perpos_exec_tasks_executed_total")->value, 2u);
  EXPECT_EQ(snap.find_gauge("perpos_exec_queue_depth")->value, 0.0);
  EXPECT_EQ(snap.find_gauge("perpos_exec_lanes")->value, 1.0);
}

// --- Task exceptions ---------------------------------------------------------

TEST(Engine, ThrowingTaskSurfacesOnRunUntilIdleAndLaneContinues) {
  // Components are allowed to throw from on_input, so lane tasks routing
  // graph work may throw. The engine must neither std::terminate (worker
  // mode) nor wedge the lane (inline mode): remaining tasks still run and
  // the first error is rethrown from run_until_idle.
  for (const std::size_t workers : {std::size_t{0}, std::size_t{2}}) {
    exec::ExecutionEngine engine(workers);
    const auto lane = engine.create_lane();
    std::atomic<int> ran{0};
    engine.post(lane, [&] { ++ran; });
    engine.post(lane, [] { throw std::runtime_error("component failed"); });
    engine.post(lane, [&] { ++ran; });
    EXPECT_THROW(engine.run_until_idle(), std::runtime_error)
        << "workers=" << workers;
    EXPECT_EQ(ran.load(), 2) << "workers=" << workers;
    EXPECT_EQ(engine.outstanding(), 0u);
    EXPECT_EQ(engine.executed(), 3u);
    EXPECT_EQ(engine.failed(), 1u);
    // The error is delivered exactly once, and the lane accepts new work.
    engine.run_until_idle();
    engine.post(lane, [&] { ++ran; });
    engine.run_until_idle();
    EXPECT_EQ(ran.load(), 3) << "workers=" << workers;
  }
}

TEST(Engine, FirstTaskErrorWinsWhenSeveralThrow) {
  exec::ExecutionEngine engine(0);
  const auto lane = engine.create_lane();
  engine.post(lane, [] { throw std::runtime_error("first"); });
  engine.post(lane, [] { throw std::logic_error("second"); });
  try {
    engine.run_until_idle();
    FAIL() << "expected the first task error to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  EXPECT_EQ(engine.failed(), 2u);  // Both counted, only the first rethrown.
  engine.run_until_idle();         // The second error was dropped.
}

TEST(Engine, FailedTasksAreCountedInMetrics) {
  exec::ExecutionEngine engine(0);
  perpos::obs::MetricsRegistry registry;
  engine.enable_metrics(&registry);
  const auto lane = engine.create_lane();
  engine.post(lane, [] {});
  engine.post(lane, [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(engine.run_until_idle(), std::runtime_error);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.find_counter("perpos_exec_tasks_executed_total")->value, 2u);
  EXPECT_EQ(snap.find_counter("perpos_exec_tasks_failed_total")->value, 1u);
  EXPECT_EQ(snap.find_gauge("perpos_exec_queue_depth")->value, 0.0);
}

// --- Determinism across worker counts ---------------------------------------

TEST(Determinism, PerGraphTranscriptsAreIdenticalForAnyWorkerCount) {
  constexpr std::size_t kGraphs = 6;
  constexpr std::size_t kDepth = 8;
  constexpr int kSamples = 40;

  const auto run = [&](std::size_t workers) {
    std::vector<std::unique_ptr<GraphRig>> rigs;
    for (std::size_t g = 0; g < kGraphs; ++g) {
      rigs.push_back(std::make_unique<GraphRig>(kDepth));
    }
    exec::ExecutionEngine engine(workers);
    std::vector<std::function<void(exec::Task)>> lanes;
    for (std::size_t g = 0; g < kGraphs; ++g) {
      lanes.push_back(engine.executor(engine.create_lane()));
    }
    for (int i = 0; i < kSamples; ++i) {
      for (std::size_t g = 0; g < kGraphs; ++g) {
        GraphRig* rig = rigs[g].get();
        lanes[g]([rig, i] { rig->source->push(Tick{i}); });
      }
    }
    engine.run_until_idle();
    std::vector<std::string> transcripts;
    for (const auto& rig : rigs) transcripts.push_back(rig->transcript.str());
    return transcripts;
  };

  const auto baseline = run(0);
  for (const auto& t : baseline) EXPECT_FALSE(t.empty());
  EXPECT_EQ(run(1), baseline);
  EXPECT_EQ(run(8), baseline);
}

// --- Deep pipelines ----------------------------------------------------------

TEST(DeepPipeline, TenThousandStageChainDoesNotOverflowTheStack) {
  // With the old recursive dispatcher this nested ~6 frames per stage and
  // blew the 8 MB default stack around a few thousand stages; the explicit
  // work queue makes depth a heap concern only.
  GraphRig rig(10'000);
  rig.source->push(Tick{0});
  const std::string t = rig.transcript.str();
  EXPECT_EQ(t, "10000:1;");
  rig.source->push(Tick{100});
  // Sequence numbers are per-emitting-component and monotone, so the second
  // traversal arrives at the sink as sequence 2.
  EXPECT_EQ(rig.transcript.str(), "10000:1;10100:2;");
}

// --- Chaos: concurrent deploy/teardown while lanes drain ---------------------

TEST(Chaos, GraphTeardownAndLaneChurnWhileOtherLanesDrain) {
  // Lanes hammer their own graphs while the main thread concurrently
  // creates new lanes, posts to them, and tears whole graphs down (each
  // teardown posted to the owning lane — same rule a deployment follows).
  // TSan in CI checks the engine's synchronization; the assertions here
  // check nothing is lost.
  exec::ExecutionEngine engine(4);
  constexpr int kChurnRounds = 50;
  std::atomic<std::uint64_t> delivered{0};

  // Long-lived lanes draining steadily.
  std::vector<std::unique_ptr<GraphRig>> steady;
  std::vector<std::function<void(exec::Task)>> steady_lanes;
  for (int g = 0; g < 3; ++g) {
    steady.push_back(std::make_unique<GraphRig>(4));
    steady_lanes.push_back(engine.executor(engine.create_lane()));
  }
  for (int i = 0; i < 200; ++i) {
    for (std::size_t g = 0; g < steady.size(); ++g) {
      GraphRig* rig = steady[g].get();
      steady_lanes[g]([rig, &delivered] {
        rig->source->push(Tick{1});
        ++delivered;
      });
    }
  }

  // Churn: bring up a graph on a fresh lane, feed it, tear it down — all
  // while the steady lanes are still draining.
  for (int round = 0; round < kChurnRounds; ++round) {
    auto rig = std::make_shared<GraphRig>(3);
    auto lane = engine.executor(engine.create_lane());
    for (int i = 0; i < 20; ++i) {
      lane([rig, &delivered] {
        rig->source->push(Tick{1});
        ++delivered;
      });
    }
    // Teardown on the owning lane: the shared_ptr dies inside the task,
    // destroying the graph (running every on_teardown) while other lanes
    // are mid-drain.
    lane([rig = std::move(rig)]() mutable { rig.reset(); });
  }

  engine.run_until_idle();
  EXPECT_EQ(delivered.load(), 3u * 200u + kChurnRounds * 20u);
  for (const auto& rig : steady) {
    EXPECT_EQ(rig->graph.deliveries(), 200u * 5u);  // 4 stages + sink
  }
}

// --- Lane fencing (the reconfiguration quiesce point) ------------------------

TEST(Fence, WaitsOutInFlightTaskAndHoldsBacklog) {
  exec::ExecutionEngine engine(4);
  const auto lane = engine.create_lane("fenced");
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<bool> first_done{false};
  std::atomic<int> backlog_ran{0};
  engine.post(lane, [&] {
    started = true;
    while (!release.load()) std::this_thread::yield();
    first_done = true;
  });
  for (int i = 0; i < 8; ++i) engine.post(lane, [&] { ++backlog_ran; });
  // Only once the task is genuinely in flight is the fence obliged to
  // wait it out (a fence may legally hold a not-yet-started backlog).
  while (!started.load()) std::this_thread::yield();

  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    release = true;
  });
  engine.fence(lane);  // Must block until the in-flight task retires.
  releaser.join();
  EXPECT_TRUE(first_done.load());
  EXPECT_EQ(backlog_ran.load(), 0);  // Backlog held behind the fence.
  EXPECT_TRUE(engine.fenced(lane));

  engine.unfence(lane);
  engine.run_until_idle();
  EXPECT_EQ(backlog_ran.load(), 8);
}

TEST(Fence, HeldTasksAreExcludedFromRunUntilIdle) {
  for (const std::size_t workers : {std::size_t{0}, std::size_t{4}}) {
    exec::ExecutionEngine engine(workers);
    const auto fenced_lane = engine.create_lane("fenced");
    const auto open_lane = engine.create_lane("open");
    engine.fence(fenced_lane);
    int held_ran = 0, open_ran = 0;
    for (int i = 0; i < 4; ++i) {
      engine.post(fenced_lane, [&] { ++held_ran; });
      engine.post(open_lane, [&] { ++open_ran; });
    }
    // run_until_idle waits only for runnable work: it must return with
    // the fenced backlog untouched instead of deadlocking on it.
    engine.run_until_idle();
    EXPECT_EQ(open_ran, 4) << "workers=" << workers;
    EXPECT_EQ(held_ran, 0) << "workers=" << workers;
    EXPECT_EQ(engine.outstanding(), 0u) << "workers=" << workers;
    engine.unfence(fenced_lane);
    engine.run_until_idle();
    EXPECT_EQ(held_ran, 4) << "workers=" << workers;
  }
}

TEST(Fence, PostOrderSurvivesAFenceCycle) {
  for (const std::size_t workers : {std::size_t{0}, std::size_t{4}}) {
    exec::ExecutionEngine engine(workers);
    const auto lane = engine.create_lane();
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      engine.post(lane, [&order, i] { order.push_back(i); });
    }
    engine.fence(lane);
    for (int i = 50; i < 100; ++i) {  // Posted while fenced: held.
      engine.post(lane, [&order, i] { order.push_back(i); });
    }
    engine.unfence(lane);
    engine.run_until_idle();
    ASSERT_EQ(order.size(), 100u) << "workers=" << workers;
    for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
  }
}

TEST(Fence, FenceAndUnfenceAreIdempotent) {
  exec::ExecutionEngine engine(2);
  const auto lane = engine.create_lane();
  engine.fence(lane);
  engine.fence(lane);  // Second fence is a no-op, not a deadlock.
  EXPECT_TRUE(engine.fenced(lane));
  int ran = 0;
  engine.post(lane, [&] { ++ran; });
  engine.unfence(lane);
  engine.unfence(lane);  // Second unfence is a no-op.
  EXPECT_FALSE(engine.fenced(lane));
  engine.run_until_idle();
  EXPECT_EQ(ran, 1);
}

// --- Graph mutation racing an active drain -----------------------------------

namespace {

/// A no-op passthrough feature; exists so detach_feature has something
/// real to tear off while the lane is mid-drain.
class TagFeature final : public core::ComponentFeature {
 public:
  std::string_view name() const override { return "tag"; }
  bool produce(core::Sample&) override {
    ++produced;
    return true;
  }
  int produced = 0;
};

}  // namespace

TEST(Fence, RemoveUnderFenceRacesActiveDrainSafely) {
  // A sink hangs off the middle of the pipeline; traffic is mid-drain on
  // 4 workers when the main thread fences, remove()s the side sink, and
  // unfences. The held backlog then flows through the mutated graph.
  exec::ExecutionEngine engine(4);
  const auto lane = engine.create_lane();
  GraphRig rig(4);
  std::atomic<int> side_count{0};
  const auto side = rig.graph.add(std::make_shared<core::ApplicationSink>(
      "SideSink", std::vector<core::InputRequirement>{core::require<Tick>()},
      [&](const core::Sample&) { ++side_count; }));
  rig.graph.connect(rig.source_id, side);

  for (int i = 0; i < 100; ++i) {
    engine.post(lane, [&rig] { rig.source->push(Tick{1}); });
  }
  engine.fence(lane);  // Quiesce: at most one in-flight task, now retired.
  const int seen_before = side_count.load();
  rig.graph.remove(side);
  engine.unfence(lane);
  for (int i = 0; i < 100; ++i) {
    engine.post(lane, [&rig] { rig.source->push(Tick{1}); });
  }
  engine.run_until_idle();
  // The side sink saw exactly the pre-fence deliveries and nothing after.
  EXPECT_EQ(side_count.load(), seen_before);
  // The main pipeline delivered every sample, before and after.
  const std::string transcript = rig.transcript.str();
  EXPECT_EQ(static_cast<int>(std::count(transcript.begin(),
                                        transcript.end(), ';')),
            200);
}

TEST(Fence, DetachFeatureUnderFenceRacesActiveDrainSafely) {
  exec::ExecutionEngine engine(4);
  const auto lane = engine.create_lane();
  GraphRig rig(2);
  auto tag = std::make_shared<TagFeature>();
  rig.graph.attach_feature(rig.source_id, tag);

  for (int i = 0; i < 100; ++i) {
    engine.post(lane, [&rig] { rig.source->push(Tick{1}); });
  }
  engine.fence(lane);
  const int produced_before = tag->produced;
  rig.graph.detach_feature(rig.source_id, "tag");
  engine.unfence(lane);
  for (int i = 0; i < 100; ++i) {
    engine.post(lane, [&rig] { rig.source->push(Tick{1}); });
  }
  engine.run_until_idle();
  EXPECT_EQ(tag->produced, produced_before);  // Hook gone after detach.
  const std::string transcript = rig.transcript.str();
  EXPECT_EQ(static_cast<int>(std::count(transcript.begin(),
                                        transcript.end(), ';')),
            200);
}

// --- Scheduler hand-off ------------------------------------------------------

TEST(Drive, EngineDrainsLanesBetweenSchedulerEvents) {
  exec::ExecutionEngine engine(4);
  const auto lane = engine.create_lane();
  auto executor = engine.executor(lane);
  sim::Scheduler scheduler;
  std::vector<std::string> log;  // Written only from `lane` or post-drain.
  for (int i = 0; i < 5; ++i) {
    scheduler.schedule_after(sim::SimTime::from_seconds(i + 1.0),
                             [&, i] {
                               executor([&log, i] {
                                 log.push_back("task" + std::to_string(i));
                               });
                             });
  }
  const std::size_t events = engine.drive(scheduler);
  EXPECT_EQ(events, 5u);
  // drive() drains to idle after every event, so each event's task lands
  // before the next event fires — in event order.
  ASSERT_EQ(log.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(log[i], "task" + std::to_string(i));
  // The hook is restored: later scheduler use does not touch the engine.
  scheduler.schedule_after(sim::SimTime::from_seconds(1.0), [] {});
  EXPECT_EQ(scheduler.run_all(), 1u);
}

// --- emit_batch --------------------------------------------------------------

TEST(EmitBatch, MatchesSequentialEmissionExactly) {
  GraphRig single(3);
  for (int i = 0; i < 10; ++i) single.source->push(Tick{i});

  GraphRig batched(3);
  std::vector<Tick> burst;
  for (int i = 0; i < 10; ++i) burst.push_back(Tick{i});
  batched.source->push_batch(std::move(burst));

  EXPECT_EQ(batched.transcript.str(), single.transcript.str());
  EXPECT_EQ(batched.graph.deliveries(), single.graph.deliveries());
}

TEST(EmitBatch, EmptyBatchIsANoOp) {
  GraphRig rig(1);
  rig.source->push_batch(std::vector<Tick>{});
  EXPECT_TRUE(rig.transcript.str().empty());
}

// --- Translucency plane: profiler, flight recorder, introspection ------------

// Allocation accounting for the hot-path guards below: the global operator
// new is replaced with a counting pass-through. Counting is off by default
// and enabled only around the measured region, so the rest of this binary
// is unaffected.
//
// GCC cannot see that the replaced operator new is malloc-backed and warns
// that operator delete frees a non-malloc pointer; the pairing is correct
// by construction here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<std::uint64_t> g_allocations{0};
std::atomic<bool> g_count_allocations{false};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

const obs::EngineProfiler::LaneSnapshot* find_lane(
    const obs::EngineProfiler::Snapshot& snap, const std::string& name) {
  for (const auto& lane : snap.lanes) {
    if (lane.name == name) return &lane;
  }
  return nullptr;
}

}  // namespace

TEST(EngineProfiler, AccountsInlineDrains) {
  exec::ExecutionEngine engine(0);
  obs::EngineProfiler profiler(engine.workers());
  engine.enable_profiler(&profiler);
  const auto alpha = engine.create_lane("alpha");
  const auto beta = engine.create_lane("beta");
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) engine.post(alpha, [&] { ++ran; });
  for (int i = 0; i < 3; ++i) engine.post(beta, [&] { ++ran; });
  engine.run_until_idle();
  EXPECT_EQ(ran.load(), 8);

  const auto snap = profiler.snapshot();
  const auto* a = find_lane(snap, "alpha");
  const auto* b = find_lane(snap, "beta");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->tasks, 5u);
  EXPECT_EQ(b->tasks, 3u);
  EXPECT_GE(a->drains, 1u);
  // All 5 posts landed before the inline drain started, so the lane's
  // high-water mark is the full burst — and the peak timeline retains it.
  EXPECT_EQ(a->queue_peak, 5u);
  ASSERT_FALSE(a->peaks.empty());
  EXPECT_EQ(a->peaks.back().depth, 5u);
  // Inline mode accounts everything to the single inline worker slot.
  ASSERT_EQ(snap.workers.size(), 1u);
  EXPECT_EQ(snap.workers[0].tasks, 8u);
}

TEST(EngineProfiler, LateAttachRegistersExistingLanes) {
  exec::ExecutionEngine engine(0);
  const auto alpha = engine.create_lane("alpha");
  const auto beta = engine.create_lane("beta");
  obs::EngineProfiler profiler(engine.workers());
  engine.enable_profiler(&profiler);  // Lanes already exist.
  engine.post(alpha, [] {});
  engine.post(beta, [] {});
  engine.run_until_idle();

  const auto snap = profiler.snapshot();
  const auto* a = find_lane(snap, "alpha");
  const auto* b = find_lane(snap, "beta");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->tasks, 1u);
  EXPECT_EQ(b->tasks, 1u);
}

TEST(EngineProfiler, SnapshotConsistentAtIdleForAnyWorkerCount) {
  // run_until_idle() returning must imply the profiler has accounted every
  // drained batch (the engine retires a batch only after profiling it), so
  // lane and worker totals exactly match executed() — for 1 worker and for
  // more workers than lanes.
  for (const std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
    exec::ExecutionEngine engine(workers);
    obs::EngineProfiler profiler(engine.workers());
    engine.enable_profiler(&profiler);
    std::vector<exec::LaneId> lanes;
    for (int i = 0; i < 4; ++i) {
      lanes.push_back(engine.create_lane("lane-" + std::to_string(i)));
    }
    std::atomic<int> ran{0};
    for (int i = 0; i < 200; ++i) {
      engine.post(lanes[static_cast<std::size_t>(i) % lanes.size()],
                  [&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    engine.run_until_idle();
    EXPECT_EQ(ran.load(), 200) << "workers=" << workers;

    const auto snap = profiler.snapshot();
    std::uint64_t lane_tasks = 0;
    std::uint64_t worker_tasks = 0;
    for (const auto& lane : snap.lanes) lane_tasks += lane.tasks;
    for (const auto& worker : snap.workers) worker_tasks += worker.tasks;
    EXPECT_EQ(lane_tasks, 200u) << "workers=" << workers;
    EXPECT_EQ(worker_tasks, 200u) << "workers=" << workers;
    EXPECT_EQ(engine.executed(), 200u) << "workers=" << workers;

    const auto intro = engine.introspect();
    EXPECT_EQ(intro.tasks_executed, 200u) << "workers=" << workers;
    std::uint64_t intro_lane_tasks = 0;
    for (const auto& lane : intro.lanes) {
      EXPECT_EQ(lane.queue_depth, 0u) << "workers=" << workers;
      EXPECT_FALSE(lane.active) << "workers=" << workers;
      intro_lane_tasks += lane.tasks;
    }
    EXPECT_EQ(intro_lane_tasks, 200u) << "workers=" << workers;
  }
}

TEST(EngineProfiler, DetachedHotPathDoesNotAllocate) {
  exec::ExecutionEngine engine(0);
  const auto lane = engine.create_lane("hot");
  // Warm-up pass: let the queue and the ready deque grow their blocks.
  for (int i = 0; i < 256; ++i) engine.post(lane, [] {});
  engine.run_until_idle();
  // Steady state, no profiler: draining 256 captureless tasks must not
  // touch the allocator at all.
  for (int i = 0; i < 256; ++i) engine.post(lane, [] {});
  g_allocations.store(0, std::memory_order_relaxed);
  g_count_allocations.store(true, std::memory_order_relaxed);
  engine.run_until_idle();
  g_count_allocations.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), 0u);
}

TEST(EngineProfiler, AttachedHotPathDoesNotAllocate) {
  // The profiler's accounting is relaxed atomics on preallocated slots, so
  // attaching it must keep the drain path allocation-free too.
  exec::ExecutionEngine engine(0);
  obs::EngineProfiler profiler(engine.workers());
  engine.enable_profiler(&profiler);
  const auto lane = engine.create_lane("hot");
  for (int i = 0; i < 256; ++i) engine.post(lane, [] {});
  engine.run_until_idle();
  for (int i = 0; i < 256; ++i) engine.post(lane, [] {});
  g_allocations.store(0, std::memory_order_relaxed);
  g_count_allocations.store(true, std::memory_order_relaxed);
  engine.run_until_idle();
  g_count_allocations.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), 0u);
}

namespace {

/// Drives a 3-graph deployment through an engine with the flight recorder
/// attached and serializes every graph lane's retained events — minus the
/// wall-clock timestamps — into one transcript string.
std::string flight_transcript(std::size_t workers) {
  obs::FlightRecorder recorder(4096);
  exec::ExecutionEngine engine(workers);
  engine.set_flight_recorder(&recorder);
  constexpr int kGraphs = 3;
  constexpr int kSamples = 40;
  std::vector<std::unique_ptr<GraphRig>> rigs;
  std::vector<std::function<void(exec::Task)>> post;
  std::vector<std::uint32_t> rec_lanes;
  for (int g = 0; g < kGraphs; ++g) {
    rigs.push_back(std::make_unique<GraphRig>(2));
    const auto ring = recorder.add_lane("graph-" + std::to_string(g));
    rigs.back()->graph.set_flight_recorder(&recorder, ring,
                                           static_cast<std::uint32_t>(g));
    rec_lanes.push_back(ring);
    post.push_back(engine.executor(engine.create_lane()));
  }
  for (int i = 0; i < kSamples; ++i) {
    for (int g = 0; g < kGraphs; ++g) {
      GraphRig* rig = rigs[static_cast<std::size_t>(g)].get();
      post[static_cast<std::size_t>(g)](
          [rig, i] { rig->source->push(Tick{i}); });
    }
  }
  engine.run_until_idle();

  std::ostringstream out;
  const auto events = recorder.merged_events();
  for (const std::uint32_t ring : rec_lanes) {
    out << "== " << recorder.lane_name(ring) << '\n';
    for (const auto& e : events) {
      if (e.lane != ring) continue;
      out << obs::flight_event_type_name(e.type) << ' ' << e.graph << ' '
          << e.component << ' ' << e.a << ' ' << e.b << ' ' << e.detail
          << '\n';
    }
  }
  return out.str();
}

}  // namespace

TEST(EngineFlightRecorder, PerLaneTranscriptsIdenticalAcrossWorkerCounts) {
  // The recorder rides the same determinism contract as the graphs: with
  // one ring per graph lane, the event sequence each ring captures is
  // byte-identical for 0, 1 and 8 workers (only timestamps differ).
  const std::string inline_run = flight_transcript(0);
  const std::string one_worker = flight_transcript(1);
  const std::string eight_workers = flight_transcript(8);
  EXPECT_NE(inline_run.find("emit"), std::string::npos);
  EXPECT_NE(inline_run.find("deliver"), std::string::npos);
  EXPECT_EQ(inline_run, one_worker);
  EXPECT_EQ(one_worker, eight_workers);
}

TEST(EngineFlightRecorder, TaskFailureRecordsEventAndTriggersDump) {
  obs::FlightRecorder recorder(64);
  int dumps = 0;
  std::string dump_reason;
  recorder.set_dump_handler(
      [&](const std::string& reason, const obs::FlightRecorder&) {
        ++dumps;
        dump_reason = reason;
      });
  exec::ExecutionEngine engine(0);
  engine.set_flight_recorder(&recorder);
  const auto lane = engine.create_lane("crashy");
  engine.post(lane, [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(engine.run_until_idle(), std::runtime_error);
  EXPECT_EQ(engine.failed(), 1u);
  EXPECT_EQ(dumps, 1);
  EXPECT_NE(dump_reason.find("boom"), std::string::npos);

  // The recorded event carries both the lane name and the error message.
  bool saw_failure = false;
  for (const auto& e : recorder.merged_events()) {
    if (e.type != obs::FlightEventType::kTaskFailed) continue;
    saw_failure = true;
    const std::string detail = e.detail;
    EXPECT_NE(detail.find("crashy"), std::string::npos);
    EXPECT_NE(detail.find("boom"), std::string::npos);
  }
  EXPECT_TRUE(saw_failure);
}

TEST(EngineFlightRecorder, WatermarkCrossingIsRecorded) {
  obs::FlightRecorder recorder(64);
  exec::ExecutionEngine engine(0);
  engine.set_flight_recorder(&recorder);
  std::atomic<int> crossings{0};
  engine.set_queue_watermark(
      2, [&](const std::string&, std::size_t) { ++crossings; });
  const auto lane = engine.create_lane("deep");
  for (int i = 0; i < 5; ++i) engine.post(lane, [] {});
  engine.run_until_idle();
  EXPECT_EQ(crossings.load(), 1);

  bool saw_watermark = false;
  for (const auto& e : recorder.merged_events()) {
    if (e.type != obs::FlightEventType::kWatermark) continue;
    saw_watermark = true;
    EXPECT_EQ(e.a, 3u);  // The crossing depth: limit 2 exceeded at 3.
  }
  EXPECT_TRUE(saw_watermark);
}
