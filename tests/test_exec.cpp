// Tests for the parallel execution engine (perpos::exec) and for the
// hot-path properties the engine relies on in core:
//  - lane serialization and post-order execution,
//  - per-lane determinism across worker counts (byte-identical per-graph
//    delivery sequences with 0, 1 and 8 workers),
//  - the deep-pipeline regression (10k-component chain must not overflow
//    the call stack now that dispatch is an explicit work queue),
//  - multi-lane chaos: concurrent lane creation / posting / teardown of
//    graphs while other lanes are draining (run under TSan in CI),
//  - the scheduler hand-off (drive() drains lanes between events),
//  - emit_batch semantics (identical to N single emissions).

#include "perpos/core/components.hpp"
#include "perpos/core/graph.hpp"
#include "perpos/exec/engine.hpp"
#include "perpos/sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace core = perpos::core;
namespace exec = perpos::exec;
namespace sim = perpos::sim;

namespace {

struct Tick {
  int value = 0;
};

std::shared_ptr<core::SourceComponent> tick_source() {
  return std::make_shared<core::SourceComponent>(
      "Src", std::vector<core::DataSpec>{core::provide<Tick>()});
}

std::shared_ptr<core::LambdaComponent> add_one_stage() {
  return std::make_shared<core::LambdaComponent>(
      "AddOne", std::vector<core::InputRequirement>{core::require<Tick>()},
      std::vector<core::DataSpec>{core::provide<Tick>()},
      [](const core::Sample& s, const core::ComponentContext& ctx) {
        ctx.emit(core::Payload::make(Tick{s.payload.get<Tick>()->value + 1}));
      });
}

/// One single-graph positioning process: Src -> AddOne^depth -> Sink,
/// recording every delivered value into a transcript string.
struct GraphRig {
  explicit GraphRig(std::size_t depth) {
    source_id = graph.add(tick_source());
    core::ComponentId prev = source_id;
    for (std::size_t i = 0; i < depth; ++i) {
      const auto stage = graph.add(add_one_stage());
      graph.connect(prev, stage);
      prev = stage;
    }
    auto sink = std::make_shared<core::ApplicationSink>(
        "Sink", std::vector<core::InputRequirement>{core::require<Tick>()},
        [this](const core::Sample& s) {
          transcript << s.payload.get<Tick>()->value << ':' << s.sequence
                     << ';';
        });
    sink_id = graph.add(sink);
    graph.connect(prev, sink_id);
    source = graph.component_as<core::SourceComponent>(source_id);
  }

  core::ProcessingGraph graph;
  core::ComponentId source_id = core::kInvalidComponent;
  core::ComponentId sink_id = core::kInvalidComponent;
  core::SourceComponent* source = nullptr;
  std::ostringstream transcript;
};

}  // namespace

// --- Engine basics -----------------------------------------------------------

TEST(Engine, InlineModeRunsTasksOnRunUntilIdle) {
  exec::ExecutionEngine engine(0);
  const auto lane = engine.create_lane("a");
  int ran = 0;
  engine.post(lane, [&] { ++ran; });
  engine.post(lane, [&] { ++ran; });
  EXPECT_EQ(ran, 0);  // Inline mode queues until drained.
  engine.run_until_idle();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(engine.executed(), 2u);
  EXPECT_EQ(engine.outstanding(), 0u);
}

TEST(Engine, LaneTasksRunInPostOrder) {
  for (const std::size_t workers : {std::size_t{0}, std::size_t{4}}) {
    exec::ExecutionEngine engine(workers);
    const auto lane = engine.create_lane();
    std::vector<int> order;
    for (int i = 0; i < 100; ++i) {
      engine.post(lane, [&order, i] { order.push_back(i); });
    }
    engine.run_until_idle();
    ASSERT_EQ(order.size(), 100u) << "workers=" << workers;
    for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
  }
}

TEST(Engine, TasksPostedFromTasksAreExecuted) {
  exec::ExecutionEngine engine(2);
  const auto lane = engine.create_lane();
  std::atomic<int> ran{0};
  engine.post(lane, [&] {
    ++ran;
    engine.post(lane, [&] {
      ++ran;
      engine.post(lane, [&] { ++ran; });
    });
  });
  engine.run_until_idle();
  EXPECT_EQ(ran.load(), 3);
}

TEST(Engine, LanesNeverRunConcurrentlyWithThemselves) {
  exec::ExecutionEngine engine(8);
  const auto lane = engine.create_lane();
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  for (int i = 0; i < 500; ++i) {
    engine.post(lane, [&] {
      if (inside.fetch_add(1) != 0) overlapped = true;
      inside.fetch_sub(1);
    });
  }
  engine.run_until_idle();
  EXPECT_FALSE(overlapped.load());
}

TEST(Engine, ExecutorPostsWithoutLookup) {
  exec::ExecutionEngine engine(0);
  const auto lane = engine.create_lane();
  auto executor = engine.executor(lane);
  int ran = 0;
  executor([&] { ++ran; });
  engine.run_until_idle();
  EXPECT_EQ(ran, 1);
  EXPECT_THROW(engine.executor(42), std::invalid_argument);
  EXPECT_THROW(engine.post(42, [] {}), std::invalid_argument);
}

TEST(Engine, MetricsReflectActivity) {
  exec::ExecutionEngine engine(0);
  perpos::obs::MetricsRegistry registry;
  engine.enable_metrics(&registry);
  const auto lane = engine.create_lane("metered");
  engine.post(lane, [] {});
  engine.post(lane, [] {});
  engine.run_until_idle();
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.find_counter("perpos_exec_tasks_posted_total")->value, 2u);
  EXPECT_EQ(snap.find_counter("perpos_exec_tasks_executed_total")->value, 2u);
  EXPECT_EQ(snap.find_gauge("perpos_exec_queue_depth")->value, 0.0);
  EXPECT_EQ(snap.find_gauge("perpos_exec_lanes")->value, 1.0);
}

// --- Task exceptions ---------------------------------------------------------

TEST(Engine, ThrowingTaskSurfacesOnRunUntilIdleAndLaneContinues) {
  // Components are allowed to throw from on_input, so lane tasks routing
  // graph work may throw. The engine must neither std::terminate (worker
  // mode) nor wedge the lane (inline mode): remaining tasks still run and
  // the first error is rethrown from run_until_idle.
  for (const std::size_t workers : {std::size_t{0}, std::size_t{2}}) {
    exec::ExecutionEngine engine(workers);
    const auto lane = engine.create_lane();
    std::atomic<int> ran{0};
    engine.post(lane, [&] { ++ran; });
    engine.post(lane, [] { throw std::runtime_error("component failed"); });
    engine.post(lane, [&] { ++ran; });
    EXPECT_THROW(engine.run_until_idle(), std::runtime_error)
        << "workers=" << workers;
    EXPECT_EQ(ran.load(), 2) << "workers=" << workers;
    EXPECT_EQ(engine.outstanding(), 0u);
    EXPECT_EQ(engine.executed(), 3u);
    EXPECT_EQ(engine.failed(), 1u);
    // The error is delivered exactly once, and the lane accepts new work.
    engine.run_until_idle();
    engine.post(lane, [&] { ++ran; });
    engine.run_until_idle();
    EXPECT_EQ(ran.load(), 3) << "workers=" << workers;
  }
}

TEST(Engine, FirstTaskErrorWinsWhenSeveralThrow) {
  exec::ExecutionEngine engine(0);
  const auto lane = engine.create_lane();
  engine.post(lane, [] { throw std::runtime_error("first"); });
  engine.post(lane, [] { throw std::logic_error("second"); });
  try {
    engine.run_until_idle();
    FAIL() << "expected the first task error to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  EXPECT_EQ(engine.failed(), 2u);  // Both counted, only the first rethrown.
  engine.run_until_idle();         // The second error was dropped.
}

TEST(Engine, FailedTasksAreCountedInMetrics) {
  exec::ExecutionEngine engine(0);
  perpos::obs::MetricsRegistry registry;
  engine.enable_metrics(&registry);
  const auto lane = engine.create_lane();
  engine.post(lane, [] {});
  engine.post(lane, [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(engine.run_until_idle(), std::runtime_error);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.find_counter("perpos_exec_tasks_executed_total")->value, 2u);
  EXPECT_EQ(snap.find_counter("perpos_exec_tasks_failed_total")->value, 1u);
  EXPECT_EQ(snap.find_gauge("perpos_exec_queue_depth")->value, 0.0);
}

// --- Determinism across worker counts ---------------------------------------

TEST(Determinism, PerGraphTranscriptsAreIdenticalForAnyWorkerCount) {
  constexpr std::size_t kGraphs = 6;
  constexpr std::size_t kDepth = 8;
  constexpr int kSamples = 40;

  const auto run = [&](std::size_t workers) {
    std::vector<std::unique_ptr<GraphRig>> rigs;
    for (std::size_t g = 0; g < kGraphs; ++g) {
      rigs.push_back(std::make_unique<GraphRig>(kDepth));
    }
    exec::ExecutionEngine engine(workers);
    std::vector<std::function<void(exec::Task)>> lanes;
    for (std::size_t g = 0; g < kGraphs; ++g) {
      lanes.push_back(engine.executor(engine.create_lane()));
    }
    for (int i = 0; i < kSamples; ++i) {
      for (std::size_t g = 0; g < kGraphs; ++g) {
        GraphRig* rig = rigs[g].get();
        lanes[g]([rig, i] { rig->source->push(Tick{i}); });
      }
    }
    engine.run_until_idle();
    std::vector<std::string> transcripts;
    for (const auto& rig : rigs) transcripts.push_back(rig->transcript.str());
    return transcripts;
  };

  const auto baseline = run(0);
  for (const auto& t : baseline) EXPECT_FALSE(t.empty());
  EXPECT_EQ(run(1), baseline);
  EXPECT_EQ(run(8), baseline);
}

// --- Deep pipelines ----------------------------------------------------------

TEST(DeepPipeline, TenThousandStageChainDoesNotOverflowTheStack) {
  // With the old recursive dispatcher this nested ~6 frames per stage and
  // blew the 8 MB default stack around a few thousand stages; the explicit
  // work queue makes depth a heap concern only.
  GraphRig rig(10'000);
  rig.source->push(Tick{0});
  const std::string t = rig.transcript.str();
  EXPECT_EQ(t, "10000:1;");
  rig.source->push(Tick{100});
  // Sequence numbers are per-emitting-component and monotone, so the second
  // traversal arrives at the sink as sequence 2.
  EXPECT_EQ(rig.transcript.str(), "10000:1;10100:2;");
}

// --- Chaos: concurrent deploy/teardown while lanes drain ---------------------

TEST(Chaos, GraphTeardownAndLaneChurnWhileOtherLanesDrain) {
  // Lanes hammer their own graphs while the main thread concurrently
  // creates new lanes, posts to them, and tears whole graphs down (each
  // teardown posted to the owning lane — same rule a deployment follows).
  // TSan in CI checks the engine's synchronization; the assertions here
  // check nothing is lost.
  exec::ExecutionEngine engine(4);
  constexpr int kChurnRounds = 50;
  std::atomic<std::uint64_t> delivered{0};

  // Long-lived lanes draining steadily.
  std::vector<std::unique_ptr<GraphRig>> steady;
  std::vector<std::function<void(exec::Task)>> steady_lanes;
  for (int g = 0; g < 3; ++g) {
    steady.push_back(std::make_unique<GraphRig>(4));
    steady_lanes.push_back(engine.executor(engine.create_lane()));
  }
  for (int i = 0; i < 200; ++i) {
    for (std::size_t g = 0; g < steady.size(); ++g) {
      GraphRig* rig = steady[g].get();
      steady_lanes[g]([rig, &delivered] {
        rig->source->push(Tick{1});
        ++delivered;
      });
    }
  }

  // Churn: bring up a graph on a fresh lane, feed it, tear it down — all
  // while the steady lanes are still draining.
  for (int round = 0; round < kChurnRounds; ++round) {
    auto rig = std::make_shared<GraphRig>(3);
    auto lane = engine.executor(engine.create_lane());
    for (int i = 0; i < 20; ++i) {
      lane([rig, &delivered] {
        rig->source->push(Tick{1});
        ++delivered;
      });
    }
    // Teardown on the owning lane: the shared_ptr dies inside the task,
    // destroying the graph (running every on_teardown) while other lanes
    // are mid-drain.
    lane([rig = std::move(rig)]() mutable { rig.reset(); });
  }

  engine.run_until_idle();
  EXPECT_EQ(delivered.load(), 3u * 200u + kChurnRounds * 20u);
  for (const auto& rig : steady) {
    EXPECT_EQ(rig->graph.deliveries(), 200u * 5u);  // 4 stages + sink
  }
}

// --- Scheduler hand-off ------------------------------------------------------

TEST(Drive, EngineDrainsLanesBetweenSchedulerEvents) {
  exec::ExecutionEngine engine(4);
  const auto lane = engine.create_lane();
  auto executor = engine.executor(lane);
  sim::Scheduler scheduler;
  std::vector<std::string> log;  // Written only from `lane` or post-drain.
  for (int i = 0; i < 5; ++i) {
    scheduler.schedule_after(sim::SimTime::from_seconds(i + 1.0),
                             [&, i] {
                               executor([&log, i] {
                                 log.push_back("task" + std::to_string(i));
                               });
                             });
  }
  const std::size_t events = engine.drive(scheduler);
  EXPECT_EQ(events, 5u);
  // drive() drains to idle after every event, so each event's task lands
  // before the next event fires — in event order.
  ASSERT_EQ(log.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(log[i], "task" + std::to_string(i));
  // The hook is restored: later scheduler use does not touch the engine.
  scheduler.schedule_after(sim::SimTime::from_seconds(1.0), [] {});
  EXPECT_EQ(scheduler.run_all(), 1u);
}

// --- emit_batch --------------------------------------------------------------

TEST(EmitBatch, MatchesSequentialEmissionExactly) {
  GraphRig single(3);
  for (int i = 0; i < 10; ++i) single.source->push(Tick{i});

  GraphRig batched(3);
  std::vector<Tick> burst;
  for (int i = 0; i < 10; ++i) burst.push_back(Tick{i});
  batched.source->push_batch(std::move(burst));

  EXPECT_EQ(batched.transcript.str(), single.transcript.str());
  EXPECT_EQ(batched.graph.deliveries(), single.graph.deliveries());
}

TEST(EmitBatch, EmptyBatchIsANoOp) {
  GraphRig rig(1);
  rig.source->push_batch(std::vector<Tick>{});
  EXPECT_TRUE(rig.transcript.str().empty());
}
