// Tests for the location model substrate: geometry primitives, building
// queries (room membership, wall crossing) and the Resolver component.

#include "perpos/core/channel.hpp"
#include "perpos/core/components.hpp"
#include "perpos/geo/local_frame.hpp"
#include "perpos/locmodel/building.hpp"
#include "perpos/locmodel/fixtures.hpp"
#include "perpos/locmodel/geometry.hpp"
#include "perpos/locmodel/resolver.hpp"

#include <gtest/gtest.h>

namespace lm = perpos::locmodel;
namespace core = perpos::core;
namespace geo = perpos::geo;
using lm::LocalPoint;
using lm::Segment;

TEST(Geometry, SegmentLength) {
  EXPECT_DOUBLE_EQ((Segment{{0, 0}, {3, 4}}).length(), 5.0);
  EXPECT_DOUBLE_EQ((Segment{{1, 1}, {1, 1}}).length(), 0.0);
}

TEST(Geometry, PointInSquare) {
  const lm::Polygon square{{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  EXPECT_TRUE(lm::point_in_polygon({5, 5}, square));
  EXPECT_TRUE(lm::point_in_polygon({0, 0}, square));    // Vertex: inside.
  EXPECT_TRUE(lm::point_in_polygon({5, 0}, square));    // Edge: inside.
  EXPECT_FALSE(lm::point_in_polygon({10.01, 5}, square));
  EXPECT_FALSE(lm::point_in_polygon({-0.01, 5}, square));
}

TEST(Geometry, PointInConcavePolygon) {
  // An L-shape: the notch must be outside.
  const lm::Polygon ell{{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}};
  EXPECT_TRUE(lm::point_in_polygon({2, 8}, ell));
  EXPECT_TRUE(lm::point_in_polygon({8, 2}, ell));
  EXPECT_FALSE(lm::point_in_polygon({8, 8}, ell));  // In the notch.
}

TEST(Geometry, DegeneratePolygonContainsNothing) {
  EXPECT_FALSE(lm::point_in_polygon({0, 0}, {}));
  EXPECT_FALSE(lm::point_in_polygon({0, 0}, {{0, 0}, {1, 1}}));
}

// Parameterized crossing tests: movement vs one wall.
struct CrossCase {
  Segment move;
  Segment wall;
  bool crosses;
};

class SegmentIntersect : public ::testing::TestWithParam<CrossCase> {};

TEST_P(SegmentIntersect, Matches) {
  const CrossCase& c = GetParam();
  EXPECT_EQ(lm::segments_intersect(c.move, c.wall), c.crosses);
  EXPECT_EQ(lm::segments_intersect(c.wall, c.move), c.crosses);  // Symmetric.
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SegmentIntersect,
    ::testing::Values(
        CrossCase{{{0, 0}, {2, 2}}, {{0, 2}, {2, 0}}, true},    // X cross.
        CrossCase{{{0, 0}, {1, 1}}, {{3, 3}, {4, 4}}, false},   // Disjoint.
        CrossCase{{{0, 0}, {2, 0}}, {{1, 0}, {3, 0}}, true},    // Overlap.
        CrossCase{{{0, 0}, {1, 0}}, {{1, 0}, {1, 5}}, true},    // Touch end.
        CrossCase{{{0, 0}, {0.99, 0}}, {{1, -1}, {1, 1}}, false},
        CrossCase{{{0, 0}, {5, 0}}, {{2, -1}, {2, 1}}, true},   // Through.
        CrossCase{{{0, 1}, {5, 1}}, {{0, 0}, {5, 0}}, false})); // Parallel.

TEST(Geometry, IntersectionPoint) {
  const auto p = lm::segment_intersection({{0, 0}, {2, 2}}, {{0, 2}, {2, 0}});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 1.0, 1e-12);
  EXPECT_NEAR(p->y, 1.0, 1e-12);
  EXPECT_FALSE(
      lm::segment_intersection({{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}).has_value());
}

TEST(Geometry, DistanceToSegment) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(lm::distance_to_segment({5, 3}, s), 3.0);
  EXPECT_DOUBLE_EQ(lm::distance_to_segment({-3, 4}, s), 5.0);  // Clamped.
  EXPECT_DOUBLE_EQ(lm::distance_to_segment({5, 0}, s), 0.0);
}

TEST(Geometry, PolygonAreaAndCentroid) {
  const lm::Polygon square{{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  EXPECT_DOUBLE_EQ(lm::polygon_area(square), 16.0);
  const LocalPoint c = lm::polygon_centroid(square);
  EXPECT_NEAR(c.x, 2.0, 1e-12);
  EXPECT_NEAR(c.y, 2.0, 1e-12);
  // Clockwise orientation gives negative area.
  const lm::Polygon cw{{0, 0}, {0, 4}, {4, 4}, {4, 0}};
  EXPECT_DOUBLE_EQ(lm::polygon_area(cw), -16.0);
}

TEST(Building, TwoRoomFixtureQueries) {
  const lm::Building b = lm::make_two_room_building();
  ASSERT_EQ(b.rooms().size(), 2u);
  EXPECT_EQ(b.room_at({2, 2})->id, "A");
  EXPECT_EQ(b.room_at({7, 2})->id, "B");
  EXPECT_EQ(b.room_at({20, 20}), nullptr);
  EXPECT_NE(b.room("A"), nullptr);
  EXPECT_EQ(b.room("Z"), nullptr);
}

TEST(Building, WallCrossingRespectsDoor) {
  const lm::Building b = lm::make_two_room_building();
  // Straight through the shared wall at y=1 (wall spans y 0..2): crosses.
  EXPECT_TRUE(b.crosses_wall({4, 1}, {6, 1}));
  // Through the door gap at y=2.5 (gap spans y 2..3): free passage.
  EXPECT_FALSE(b.crosses_wall({4, 2.5}, {6, 2.5}));
  // Within one room: no crossing.
  EXPECT_FALSE(b.crosses_wall({1, 1}, {4, 4}));
}

TEST(Building, WallAttenuationAccumulates) {
  const lm::Building b = lm::make_two_room_building();
  EXPECT_DOUBLE_EQ(b.wall_attenuation_db({4, 1}, {6, 1}), 5.0);
  EXPECT_DOUBLE_EQ(b.wall_attenuation_db({1, 1}, {4, 1}), 0.0);
  // Crossing the shared wall AND an outer wall.
  EXPECT_GE(b.wall_attenuation_db({4, 1}, {11, 1}), 10.0);
}

TEST(Building, AdjacencyIsSymmetric) {
  const lm::Building b = lm::make_two_room_building();
  EXPECT_EQ(b.adjacent_rooms("A"), std::vector<std::string>{"B"});
  EXPECT_EQ(b.adjacent_rooms("B"), std::vector<std::string>{"A"});
  EXPECT_TRUE(b.adjacent_rooms("Z").empty());
}

TEST(Building, OfficeFixtureLayout) {
  const lm::Building b = lm::make_office_building();
  EXPECT_EQ(b.rooms().size(), 11u);  // 8 offices + corridor + lobby + lab.
  EXPECT_EQ(b.room_at({12, 4})->id, "O-S2");
  EXPECT_EQ(b.room_at({12, 10})->id, "CORR");
  EXPECT_EQ(b.room_at({2, 10})->id, "LOBBY");
  EXPECT_EQ(b.room_at({36, 10})->id, "LAB");
  EXPECT_EQ(b.room_at({20, 16})->id, "O-N3");
}

TEST(Building, OfficeFixtureDoorways) {
  const lm::Building b = lm::make_office_building();
  // Corridor to O-S2 through its door at x=12: free.
  EXPECT_FALSE(b.crosses_wall({12, 10}, {12, 7}));
  // Corridor into O-S2 away from the door: blocked.
  EXPECT_TRUE(b.crosses_wall({9, 10}, {9, 7}));
  // Office to office through the partition: blocked.
  EXPECT_TRUE(b.crosses_wall({4, 4}, {12, 4}));
  // Corridor into the lab through its door: free.
  EXPECT_FALSE(b.crosses_wall({31, 10}, {33, 10}));
}

TEST(Building, FootprintCoversRooms) {
  const lm::Building b = lm::make_office_building();
  EXPECT_TRUE(b.inside_footprint({20, 10}));
  EXPECT_TRUE(b.inside_footprint({0, 0}));
  EXPECT_FALSE(b.inside_footprint({-5, 10}));
  EXPECT_FALSE(b.inside_footprint({45, 10}));
}

TEST(Building, NearestRoom) {
  const lm::Building b = lm::make_two_room_building();
  EXPECT_EQ(b.nearest_room({0, 0})->id, "A");
  EXPECT_EQ(b.nearest_room({10, 5})->id, "B");
  EXPECT_EQ(b.nearest_room({100, 0})->id, "B");
  EXPECT_EQ(b.nearest_room({0, 0}, /*floor=*/3), nullptr);
}

TEST(Building, RoomsOnOtherFloorsIgnored) {
  lm::BuildingBuilder bb("MULTI", geo::GeoPoint{56.0, 10.0, 0.0});
  bb.rect_room("G", 0, 0, 5, 5, 0);
  bb.rect_room("F1", 0, 0, 5, 5, 1);
  const lm::Building b = bb.build();
  EXPECT_EQ(b.room_at({1, 1}, 0)->id, "G");
  EXPECT_EQ(b.room_at({1, 1}, 1)->id, "F1");
  EXPECT_EQ(b.room_at({1, 1}, 2), nullptr);
}

TEST(Resolver, ResolvesPositionFixToRoom) {
  const lm::Building building = lm::make_two_room_building();
  core::ProcessingGraph g;
  auto source = std::make_shared<core::SourceComponent>(
      "Src", std::vector<core::DataSpec>{core::provide<core::PositionFix>()});
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto r = g.add(std::make_shared<lm::RoomResolver>(building));
  const auto z = g.add(sink);
  g.connect(a, r);
  g.connect(r, z);

  core::PositionFix fix;
  fix.position = building.frame().to_geodetic(LocalPoint{2.0, 2.0});
  fix.horizontal_accuracy_m = 1.0;
  source->push(fix);

  ASSERT_TRUE(sink->last().has_value());
  const auto& room = sink->last()->payload.as<core::RoomFix>();
  EXPECT_EQ(room.room, "A");
  EXPECT_EQ(room.building, "TWOROOM");
  EXPECT_GT(room.confidence, 0.0);
}

TEST(Resolver, ResolvesLocalPositionDirectly) {
  const lm::Building building = lm::make_two_room_building();
  core::ProcessingGraph g;
  auto source = std::make_shared<core::SourceComponent>(
      "Wifi", std::vector<core::DataSpec>{core::provide<lm::LocalPosition>()});
  auto sink = std::make_shared<core::ApplicationSink>();
  auto resolver = std::make_shared<lm::RoomResolver>(building);
  lm::RoomResolver* resolver_ptr = resolver.get();
  const auto a = g.add(source);
  const auto r = g.add(resolver);
  const auto z = g.add(sink);
  g.connect(a, r);
  g.connect(r, z);

  source->push(lm::LocalPosition{{7.0, 2.0}, 0, 2.0, {}});
  EXPECT_EQ(sink->last()->payload.as<core::RoomFix>().room, "B");

  // Outside every room: a miss with empty room id.
  source->push(lm::LocalPosition{{50.0, 50.0}, 0, 2.0, {}});
  EXPECT_TRUE(sink->last()->payload.as<core::RoomFix>().room.empty());
  EXPECT_EQ(resolver_ptr->misses(), 1u);
}

TEST(Resolver, ConfidenceDropsWithPoorAccuracy) {
  const lm::Building building = lm::make_two_room_building();
  core::ProcessingGraph g;
  auto source = std::make_shared<core::SourceComponent>(
      "Wifi", std::vector<core::DataSpec>{core::provide<lm::LocalPosition>()});
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto r = g.add(std::make_shared<lm::RoomResolver>(building));
  const auto z = g.add(sink);
  g.connect(a, r);
  g.connect(r, z);

  source->push(lm::LocalPosition{{2.0, 2.0}, 0, 1.0, {}});
  const double good = sink->last()->payload.as<core::RoomFix>().confidence;
  source->push(lm::LocalPosition{{2.0, 2.0}, 0, 20.0, {}});
  const double poor = sink->last()->payload.as<core::RoomFix>().confidence;
  EXPECT_GT(good, poor);
}
