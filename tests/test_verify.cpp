// Tests for the static analyzer (perpos::verify): one positive and one
// negative case per rule, the emitters (text / JSON / SARIF golden), the
// config front end (verify_config / assemble_verified), strict deployment,
// and a property test tying the analyzer's verdict to runtime behaviour.

#include "perpos/core/components.hpp"
#include "perpos/core/data_types.hpp"
#include "perpos/locmodel/fixtures.hpp"
#include "perpos/locmodel/resolver.hpp"
#include "perpos/runtime/config.hpp"
#include "perpos/runtime/distribution.hpp"
#include "perpos/verify/budget.hpp"
#include "perpos/verify/emit.hpp"
#include "perpos/verify/incremental.hpp"
#include "perpos/verify/verify.hpp"
#include "perpos/wifi/components.hpp"
#include "perpos/wifi/fingerprint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

namespace core = perpos::core;
namespace rt = perpos::runtime;
namespace vfy = perpos::verify;
namespace sim = perpos::sim;

namespace {

// Test-local payload types. UncodableValue deliberately has no payload
// codec coverage; V0..V2 drive the property test.
struct UncodableValue {
  int value = 0;
};
struct V0 {
  int value = 0;
};
struct V1 {
  int value = 0;
};
struct V2 {
  int value = 0;
};

template <typename T>
std::shared_ptr<core::SourceComponent> make_source(std::string kind = "Src") {
  return std::make_shared<core::SourceComponent>(
      std::move(kind), std::vector<core::DataSpec>{core::provide<T>()});
}

/// In -> Out transform that re-emits a default Out for every input.
template <typename In, typename Out>
std::shared_ptr<core::LambdaComponent> make_transform(
    std::string kind = "Xform") {
  return std::make_shared<core::LambdaComponent>(
      std::move(kind),
      std::vector<core::InputRequirement>{core::require<In>()},
      std::vector<core::DataSpec>{core::provide<Out>()},
      [](const core::Sample&, const core::ComponentContext& ctx) {
        ctx.emit(core::Payload::make(Out{}));
      });
}

template <typename T>
std::shared_ptr<core::ApplicationSink> make_sink(std::string name = "Sink") {
  return std::make_shared<core::ApplicationSink>(
      std::move(name),
      std::vector<core::InputRequirement>{core::require<T>()});
}

/// Minimal node builder for hand-built models (states a live graph cannot
/// enter, e.g. cycles).
vfy::NodeModel node(core::ComponentId id, std::string name,
                    std::vector<core::InputRequirement> reqs,
                    std::vector<core::DataSpec> caps) {
  vfy::NodeModel n;
  n.id = id;
  n.name = std::move(name);
  n.kind = n.name;
  n.requirements = std::move(reqs);
  n.capabilities = std::move(caps);
  return n;
}

}  // namespace

// --- Catalog ---------------------------------------------------------------

TEST(Catalog, AllRulesWithStableIds) {
  const vfy::RuleRegistry& catalog = vfy::RuleRegistry::default_catalog();
  // PPV000..PPV015 static rules + PPS001..PPS006 runtime sanitizer ids +
  // PPQ001..PPQ005 quantitative budget rules + PPM001..PPM005 protocol
  // model-checker ids.
  ASSERT_EQ(catalog.rules().size(), 32u);
  std::vector<std::string> expected;
  for (int i = 0; i <= 15; ++i) {
    char id[8];
    std::snprintf(id, sizeof id, "PPV%03d", i);
    expected.push_back(id);
  }
  for (int i = 1; i <= 6; ++i) {
    char id[8];
    std::snprintf(id, sizeof id, "PPS%03d", i);
    expected.push_back(id);
  }
  for (int i = 1; i <= 5; ++i) {
    char id[8];
    std::snprintf(id, sizeof id, "PPQ%03d", i);
    expected.push_back(id);
  }
  for (int i = 1; i <= 5; ++i) {
    char id[8];
    std::snprintf(id, sizeof id, "PPM%03d", i);
    expected.push_back(id);
  }
  for (const std::string& id : expected) {
    const vfy::Rule* rule = catalog.find(id);
    ASSERT_NE(rule, nullptr) << id;
    EXPECT_EQ(rule->id(), id);
    EXPECT_FALSE(rule->name().empty());
    EXPECT_FALSE(rule->description().empty());
  }
  EXPECT_EQ(catalog.find("PPV999"), nullptr);
}

TEST(Catalog, EveryRuleIsFullyDocumented) {
  // The completeness guard behind `perpos-verify --explain`: every rule
  // in the catalog — present and future — must carry a non-empty name,
  // description, a meaningful severity, and an explain sketch. A new rule
  // landing without its sketch fails here, not in a user's terminal.
  const vfy::RuleRegistry& catalog = vfy::RuleRegistry::default_catalog();
  for (const auto& rule : catalog.rules()) {
    const std::string id(rule->id());
    EXPECT_FALSE(rule->name().empty()) << id;
    EXPECT_FALSE(rule->description().empty()) << id;
    EXPECT_TRUE(rule->default_severity() == vfy::Severity::kNote ||
                rule->default_severity() == vfy::Severity::kWarning ||
                rule->default_severity() == vfy::Severity::kError)
        << id;
    EXPECT_FALSE(vfy::rule_sketch(rule->id()).empty())
        << id << " has no --explain sketch (see kSketches in rules.cpp)";
  }
  EXPECT_TRUE(vfy::rule_sketch("PPX123").empty());
}

TEST(Catalog, ExpectedSeveritiesForQuantitativeRules) {
  const vfy::RuleRegistry& catalog = vfy::RuleRegistry::default_catalog();
  const std::map<std::string, vfy::Severity> expected = {
      {"PPQ001", vfy::Severity::kError},
      {"PPQ002", vfy::Severity::kWarning},
      {"PPQ003", vfy::Severity::kError},
      {"PPQ004", vfy::Severity::kWarning},
      {"PPQ005", vfy::Severity::kError},
  };
  for (const auto& [id, severity] : expected) {
    const vfy::Rule* rule = catalog.find(id);
    ASSERT_NE(rule, nullptr) << id;
    EXPECT_EQ(rule->default_severity(), severity) << id;
  }
  // Lane totals span weak components, so the lane-scoped PPQ rules must
  // opt out of the incremental verifier's per-component replay.
  EXPECT_FALSE(catalog.find("PPQ001")->local());
  EXPECT_FALSE(catalog.find("PPQ002")->local());
  EXPECT_TRUE(catalog.find("PPQ003")->local());
  EXPECT_TRUE(catalog.find("PPQ004")->local());
  EXPECT_TRUE(catalog.find("PPQ005")->local());
}

TEST(Catalog, RuntimeRulesNeverFireStatically) {
  // The PPS ids exist for --list-rules and SARIF metadata; their check()
  // is a no-op — findings come from the live GraphSanitizer only.
  core::ProcessingGraph g;
  g.add(make_sink<V0>("Starved"));  // Plenty wrong statically.
  const vfy::Report report = vfy::verify(g);
  for (int i = 1; i <= 6; ++i) {
    EXPECT_TRUE(report.by_rule("PPS00" + std::to_string(i)).empty());
  }
}

TEST(Catalog, DuplicateIdRejected) {
  // default_catalog construction would have thrown already if ids clashed;
  // check the guard directly through the registry surface.
  class Dup final : public vfy::Rule {
   public:
    std::string_view id() const noexcept override { return "PPV001"; }
    std::string_view name() const noexcept override { return "dup"; }
    std::string_view description() const noexcept override { return "dup"; }
    vfy::Severity default_severity() const noexcept override {
      return vfy::Severity::kNote;
    }
    void check(const vfy::GraphModel&, const vfy::Options&,
               vfy::Report&) const override {}
  };
  vfy::RuleRegistry registry;
  registry.add(std::make_unique<Dup>());
  EXPECT_THROW(registry.add(std::make_unique<Dup>()), std::invalid_argument);
}

TEST(Catalog, DisabledRulesAreSkipped) {
  core::ProcessingGraph g;
  g.add(make_sink<V0>("Starved"));
  vfy::Options options;
  options.disabled_rules = {"PPV001"};
  const vfy::Report report = vfy::verify(g, options);
  EXPECT_TRUE(report.by_rule("PPV001").empty());
}

// --- PPV001 requirement starvation -----------------------------------------

TEST(Starvation, UnconnectedMandatoryInputIsError) {
  core::ProcessingGraph g;
  g.add(make_sink<V0>());
  const vfy::Report report = vfy::verify(g);
  ASSERT_EQ(report.by_rule("PPV001").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV001")[0]->severity, vfy::Severity::kError);
  EXPECT_FALSE(report.ok());
}

TEST(Starvation, SatisfiedInputIsClean) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto sink = g.add(make_sink<V0>());
  g.connect(src, sink);
  EXPECT_TRUE(vfy::verify(g).by_rule("PPV001").empty());
}

TEST(Starvation, PartiallyStarvedMultiRequirementSinkIsWarning) {
  // connect() accepts when ANY capability satisfies ANY requirement, so a
  // two-requirement sink wired to a producer of only one of them is legal
  // edge by edge — and permanently starves the other input. This is the
  // whole-graph view the analyzer adds (see graph.hpp's accept semantics).
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto sink = g.add(std::make_shared<core::ApplicationSink>(
      "TwoInputs", std::vector<core::InputRequirement>{
                       core::require<V0>(), core::require<V1>()}));
  g.connect(src, sink);
  const vfy::Report report = vfy::verify(g);
  ASSERT_EQ(report.by_rule("PPV001").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV001")[0]->severity, vfy::Severity::kWarning);
  EXPECT_TRUE(report.ok());  // Warnings do not fail verification.
}

TEST(Starvation, OptionalRequirementsAreExempt) {
  core::ProcessingGraph g;
  g.add(std::make_shared<core::ApplicationSink>(
      "Optional", std::vector<core::InputRequirement>{
                      core::require<V0>("", /*optional=*/true)}));
  EXPECT_TRUE(vfy::verify(g).by_rule("PPV001").empty());
}

// --- PPV002 wildcard ambiguity ---------------------------------------------

TEST(WildcardAmbiguity, ResolvedEdgeWithSeveralCandidatesWarns) {
  vfy::GraphModel model;
  model.nodes.push_back(node(0, "a", {}, {core::provide<V0>()}));
  model.nodes.push_back(node(1, "b", {}, {core::provide<V1>()}));
  model.nodes.push_back(node(2, "app", {core::require_any()}, {}));
  model.edges.push_back({0, 2, /*resolved=*/true});
  const vfy::Report report = vfy::verify_model(model);
  ASSERT_EQ(report.by_rule("PPV002").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV002")[0]->severity, vfy::Severity::kWarning);
}

TEST(WildcardAmbiguity, SingleCandidateOrExplicitEdgeIsClean) {
  // One candidate: unambiguous even when resolver-chosen.
  vfy::GraphModel one;
  one.nodes.push_back(node(0, "a", {}, {core::provide<V0>()}));
  one.nodes.push_back(node(1, "app", {core::require_any()}, {}));
  one.edges.push_back({0, 1, /*resolved=*/true});
  EXPECT_TRUE(vfy::verify_model(one).by_rule("PPV002").empty());

  // Explicitly connected wildcard: the author chose; no ambiguity.
  core::ProcessingGraph g;
  const auto a = g.add(make_source<V0>("A"));
  g.add(make_source<V1>("B"));
  const auto app = g.add(std::make_shared<core::ApplicationSink>());
  g.connect(a, app);
  EXPECT_TRUE(vfy::verify(g).by_rule("PPV002").empty());
}

TEST(WildcardAmbiguity, DisconnectedWildcardWithCandidatesWarns) {
  core::ProcessingGraph g;
  g.add(make_source<V0>("A"));
  g.add(make_source<V1>("B"));
  g.add(std::make_shared<core::ApplicationSink>());
  const vfy::Report report = vfy::verify(g);
  EXPECT_EQ(report.by_rule("PPV002").size(), 1u);
}

// --- PPV003 dead outputs ---------------------------------------------------

TEST(DeadOutput, UnacceptedCapabilityWarns) {
  core::ProcessingGraph g;
  const auto src = g.add(std::make_shared<core::SourceComponent>(
      "TwoCaps", std::vector<core::DataSpec>{core::provide<V0>(),
                                             core::provide<V1>()}));
  const auto sink = g.add(make_sink<V0>());
  g.connect(src, sink);
  const vfy::Report report = vfy::verify(g);
  ASSERT_EQ(report.by_rule("PPV003").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV003")[0]->severity, vfy::Severity::kWarning);
  EXPECT_NE(report.by_rule("PPV003")[0]->message.find("V1"),
            std::string::npos);
}

TEST(DeadOutput, DanglingProducerIsNote) {
  core::ProcessingGraph g;
  g.add(make_source<V0>());
  const vfy::Report report = vfy::verify(g);
  ASSERT_EQ(report.by_rule("PPV003").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV003")[0]->severity, vfy::Severity::kNote);
}

TEST(DeadOutput, FullyConsumedOutputsAreClean) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto sink = g.add(make_sink<V0>());
  g.connect(src, sink);
  EXPECT_TRUE(vfy::verify(g).by_rule("PPV003").empty());
}

// --- PPV004 unreachable components -----------------------------------------

TEST(Unreachable, SourcelessSubgraphWarns) {
  // A transform with only an optional input heads a subgraph no source
  // feeds. PPV001 stays silent (nothing mandatory is starved), so this is
  // PPV004's catch.
  core::ProcessingGraph g;
  const auto head = g.add(std::make_shared<core::LambdaComponent>(
      "OptionalHead",
      std::vector<core::InputRequirement>{
          core::require<V0>("", /*optional=*/true)},
      std::vector<core::DataSpec>{core::provide<V1>()}, nullptr));
  const auto sink = g.add(make_sink<V1>());
  g.connect(head, sink);
  const vfy::Report report = vfy::verify(g);
  EXPECT_EQ(report.by_rule("PPV004").size(), 2u);  // Head and sink.
  EXPECT_TRUE(report.ok());
}

TEST(Unreachable, SourceFedChainIsClean) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto mid = g.add(make_transform<V0, V1>());
  const auto sink = g.add(make_sink<V1>());
  g.connect(src, mid);
  g.connect(mid, sink);
  EXPECT_TRUE(vfy::verify(g).by_rule("PPV004").empty());
}

TEST(Unreachable, FullyStarvedNodeIsLeftToPPV001) {
  core::ProcessingGraph g;
  g.add(make_sink<V0>());
  const vfy::Report report = vfy::verify(g);
  EXPECT_TRUE(report.by_rule("PPV004").empty());
  EXPECT_EQ(report.by_rule("PPV001").size(), 1u);
}

// --- PPV005 merge fan-in ---------------------------------------------------

TEST(MergeFanIn, SingleInputFusionIsNote) {
  vfy::GraphModel model;
  model.nodes.push_back(node(0, "src", {}, {core::provide<V0>()}));
  vfy::NodeModel fusion =
      node(1, "fusion", {core::require<V0>()}, {core::provide<V0>()});
  fusion.is_merge = true;
  model.nodes.push_back(fusion);
  model.edges.push_back({0, 1, false});
  const vfy::Report report = vfy::verify_model(model);
  ASSERT_EQ(report.by_rule("PPV005").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV005")[0]->severity, vfy::Severity::kNote);
}

TEST(MergeFanIn, MultiInputFusionIsClean) {
  vfy::GraphModel model;
  model.nodes.push_back(node(0, "a", {}, {core::provide<V0>()}));
  model.nodes.push_back(node(1, "b", {}, {core::provide<V0>()}));
  vfy::NodeModel fusion =
      node(2, "fusion", {core::require<V0>()}, {core::provide<V0>()});
  fusion.is_merge = true;
  model.nodes.push_back(fusion);
  model.edges.push_back({0, 2, false});
  model.edges.push_back({1, 2, false});
  EXPECT_TRUE(vfy::verify_model(model).by_rule("PPV005").empty());
}

TEST(MergeFanIn, InterleavingIntoNonMergingTransformWarns) {
  core::ProcessingGraph g;
  const auto a = g.add(make_source<V0>("A"));
  const auto b = g.add(make_source<V0>("B"));
  const auto mid = g.add(make_transform<V0, V1>());
  const auto sink = g.add(make_sink<V1>());
  g.connect(a, mid);
  g.connect(b, mid);
  g.connect(mid, sink);
  const vfy::Report report = vfy::verify(g);
  ASSERT_EQ(report.by_rule("PPV005").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV005")[0]->severity, vfy::Severity::kWarning);
}

// --- PPV006 cycles ----------------------------------------------------------

TEST(Cycle, DirectedCycleIsError) {
  // A live ProcessingGraph refuses cycles at connect() time; the model can
  // still represent one (another front end, a bug), and the analyzer must
  // catch it rather than loop.
  vfy::GraphModel model;
  model.nodes.push_back(
      node(0, "a", {core::require<V0>()}, {core::provide<V0>()}));
  model.nodes.push_back(
      node(1, "b", {core::require<V0>()}, {core::provide<V0>()}));
  model.edges.push_back({0, 1, false});
  model.edges.push_back({1, 0, false});
  const vfy::Report report = vfy::verify_model(model);
  ASSERT_EQ(report.by_rule("PPV006").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV006")[0]->severity, vfy::Severity::kError);
  EXPECT_NE(report.by_rule("PPV006")[0]->message.find("a -> b -> a"),
            std::string::npos);
}

TEST(Cycle, AcyclicChainIsClean) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto mid = g.add(make_transform<V0, V1>());
  const auto sink = g.add(make_sink<V1>());
  g.connect(src, mid);
  g.connect(mid, sink);
  EXPECT_TRUE(vfy::verify(g).by_rule("PPV006").empty());
}

// --- PPV007 coordinate-frame consistency ------------------------------------

namespace {

/// src(RssiScan) -> WifiPositioner(db) -> RoomResolver(building) -> sink.
vfy::Report verify_wifi_chain(const std::string& db_frame) {
  static const perpos::locmodel::Building building =
      perpos::locmodel::make_two_room_building();
  static perpos::wifi::FingerprintDatabase db;  // Structure only; no data.
  db.set_frame_id(db_frame);
  core::ProcessingGraph g;
  const auto src = g.add(make_source<perpos::wifi::RssiScan>("Scanner"));
  const auto pos = g.add(std::make_shared<perpos::wifi::WifiPositioner>(db));
  const auto res =
      g.add(std::make_shared<perpos::locmodel::RoomResolver>(building));
  const auto sink = g.add(make_sink<core::RoomFix>());
  g.connect(src, pos);
  g.connect(pos, res);
  g.connect(res, sink);
  return vfy::verify(g);
}

}  // namespace

TEST(FrameMismatch, DifferentBuildingFramesAreAnError) {
  const vfy::Report report = verify_wifi_chain("some-other-building");
  ASSERT_EQ(report.by_rule("PPV007").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV007")[0]->severity, vfy::Severity::kError);
  EXPECT_TRUE(report.by_rule("PPV007")[0]->edge.has_value());
}

TEST(FrameMismatch, MatchingFramesAreClean) {
  const vfy::Report report = verify_wifi_chain(
      perpos::locmodel::make_two_room_building().name());
  EXPECT_TRUE(report.by_rule("PPV007").empty());
}

TEST(FrameMismatch, FrameNeutralEdgesAreExempt) {
  // Components without FrameAware annotations never trigger the rule.
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto sink = g.add(make_sink<V0>());
  g.connect(src, sink);
  EXPECT_TRUE(vfy::verify(g).by_rule("PPV007").empty());
}

// --- PPV008 remoting boundaries ---------------------------------------------

TEST(RemotingBoundary, UncodableCrossHostEdgeIsError) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<UncodableValue>());
  const auto sink = g.add(make_sink<UncodableValue>());
  g.connect(src, sink);
  vfy::Options options;
  options.hosts = {{src, "device"}, {sink, "server"}};
  const vfy::Report report = vfy::verify(g, options);
  ASSERT_EQ(report.by_rule("PPV008").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV008")[0]->severity, vfy::Severity::kError);
}

TEST(RemotingBoundary, CodableCrossHostEdgeIsClean) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<core::PositionFix>());
  const auto sink = g.add(make_sink<core::PositionFix>());
  g.connect(src, sink);
  vfy::Options options;
  options.hosts = {{src, "device"}, {sink, "server"}};
  EXPECT_TRUE(vfy::verify(g, options).by_rule("PPV008").empty());
}

TEST(RemotingBoundary, CoLocatedUncodableEdgeIsClean) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<UncodableValue>());
  const auto sink = g.add(make_sink<UncodableValue>());
  g.connect(src, sink);
  vfy::Options options;
  options.hosts = {{src, "device"}, {sink, "device"}};
  EXPECT_TRUE(vfy::verify(g, options).by_rule("PPV008").empty());
}

// --- PPV009 cross-lane edges -------------------------------------------------

TEST(CrossLane, SynchronousEdgeAcrossLanesIsError) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto sink = g.add(make_sink<V0>());
  g.connect(src, sink);
  vfy::Options options;
  options.lanes = {{src, "lane-a"}, {sink, "lane-b"}};
  const vfy::Report report = vfy::verify(g, options);
  ASSERT_EQ(report.by_rule("PPV009").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV009")[0]->severity, vfy::Severity::kError);
  EXPECT_NE(report.by_rule("PPV009")[0]->message.find("lane-a"),
            std::string::npos);
}

TEST(CrossLane, SameLaneAndUnassignedEdgesAreClean) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto mid = g.add(make_sink<V0>());
  g.connect(src, mid);
  // Same lane: clean.
  vfy::Options options;
  options.lanes = {{src, "lane-a"}, {mid, "lane-a"}};
  EXPECT_TRUE(vfy::verify(g, options).by_rule("PPV009").empty());
  // One endpoint unassigned: clean (no lane plan claim to contradict).
  options.lanes = {{src, "lane-a"}};
  EXPECT_TRUE(vfy::verify(g, options).by_rule("PPV009").empty());
  // No plan at all: rule stays silent.
  options.lanes = {};
  EXPECT_TRUE(vfy::verify(g, options).by_rule("PPV009").empty());
}

TEST(CrossLane, RemotingEndpointsExemptTheLaneCut) {
  // A deployed link's edges (producer -> RemoteEgress on lane A, and
  // RemoteIngress -> consumer on lane B) never cross lanes themselves; but
  // a model snapshotted mid-plan may still pin an egress and its upstream
  // on different lanes — the link mediates that hop, so no finding.
  vfy::GraphModel model;
  model.nodes.push_back(node(0, "Src", {}, {core::provide<V0>()}));
  model.nodes.push_back(node(1, "RemoteEgress", {core::require_any()}, {}));
  model.edges.push_back({0, 1, false});
  vfy::Options options;
  options.lanes = {{0u, "lane-a"}, {1u, "lane-b"}};
  EXPECT_TRUE(vfy::verify_model(model, options).by_rule("PPV009").empty());
}

// --- PPV010 emit-amplification cycles -----------------------------------------

namespace {

/// Feedback region A -> B (edge), B -> A (deployment link), with the given
/// per-node emit multiplicities.
vfy::GraphModel feedback_model(double gain_a, double gain_b) {
  vfy::GraphModel model;
  model.nodes.push_back(
      node(0, "A", {core::require<V0>()}, {core::provide<V0>()}));
  model.nodes.push_back(
      node(1, "B", {core::require<V0>()}, {core::provide<V0>()}));
  model.nodes[0].emit_per_input = gain_a;
  model.nodes[1].emit_per_input = gain_b;
  model.edges.push_back({0, 1, false});
  model.links.push_back({1, 0, /*acked=*/false, /*ordered=*/true, "uplink"});
  return model;
}

/// A minimal configurable feature for the hook-annotation rules.
class TestFeature final : public core::ComponentFeature {
 public:
  explicit TestFeature(std::string name, std::vector<std::string> deps = {},
                       bool consume_emits = false)
      : name_(std::move(name)),
        deps_(std::move(deps)),
        consume_emits_(consume_emits) {}
  std::string_view name() const override { return name_; }
  std::vector<std::string> required_features() const override { return deps_; }
  bool emits_in_consume() const override { return consume_emits_; }

 private:
  std::string name_;
  std::vector<std::string> deps_;
  bool consume_emits_;
};

}  // namespace

TEST(EmitAmplification, AmplifyingLinkClosedLoopIsError) {
  const vfy::Report report = vfy::verify_model(feedback_model(2.0, 1.0));
  ASSERT_EQ(report.by_rule("PPV010").size(), 1u);
  const vfy::Diagnostic& d = *report.by_rule("PPV010")[0];
  EXPECT_EQ(d.severity, vfy::Severity::kError);
  // Reported at the strongest amplifier of the region.
  EXPECT_EQ(d.component, std::optional<core::ComponentId>(0u));
  EXPECT_NE(d.message.find("x2"), std::string::npos);
}

TEST(EmitAmplification, DampedOrBalancedLoopIsClean) {
  // Gain product exactly 1 (relay loop) and < 1 (decimated) both pass:
  // the queue cannot grow without bound.
  EXPECT_TRUE(
      vfy::verify_model(feedback_model(1.0, 1.0)).by_rule("PPV010").empty());
  EXPECT_TRUE(
      vfy::verify_model(feedback_model(2.0, 0.25)).by_rule("PPV010").empty());
}

TEST(EmitAmplification, EdgeOnlyCycleBelongsToPPV006) {
  // The same amplifying ring closed by a synchronous edge instead of a
  // link is PPV006's cycle error, not an amplification finding.
  vfy::GraphModel model = feedback_model(2.0, 1.0);
  model.links.clear();
  model.edges.push_back({1, 0, false});
  const vfy::Report report = vfy::verify_model(model);
  EXPECT_TRUE(report.by_rule("PPV010").empty());
  EXPECT_FALSE(report.by_rule("PPV006").empty());
}

// --- PPV011 hook-emit reentrancy ----------------------------------------------

TEST(HookReentrancy, ProduceEmissionAlwaysWarns) {
  vfy::GraphModel model;
  model.nodes.push_back(node(0, "Src", {}, {core::provide<V0>()}));
  model.nodes[0].hooks.push_back(
      {"Annotator", {}, /*emits_on_consume=*/false, /*emits_on_produce=*/true});
  const vfy::Report report = vfy::verify_model(model);
  ASSERT_EQ(report.by_rule("PPV011").size(), 1u);
  EXPECT_NE(report.by_rule("PPV011")[0]->message.find("produce()"),
            std::string::npos);
}

TEST(HookReentrancy, ConsumeEmissionOnFeedbackLoopWarns) {
  vfy::GraphModel model = feedback_model(1.0, 1.0);
  model.nodes[0].hooks.push_back(
      {"Echo", {}, /*emits_on_consume=*/true, /*emits_on_produce=*/false});
  const vfy::Report report = vfy::verify_model(model);
  ASSERT_EQ(report.by_rule("PPV011").size(), 1u);
  EXPECT_NE(report.by_rule("PPV011")[0]->message.find("consume()"),
            std::string::npos);
}

TEST(HookReentrancy, ConsumeEmissionOnAcyclicPipelineIsClean) {
  vfy::GraphModel model;
  model.nodes.push_back(node(0, "Src", {}, {core::provide<V0>()}));
  model.nodes.push_back(
      node(1, "Sink", {core::require<V0>()}, {}));
  model.edges.push_back({0, 1, false});
  model.nodes[1].hooks.push_back(
      {"Echo", {}, /*emits_on_consume=*/true, /*emits_on_produce=*/false});
  EXPECT_TRUE(vfy::verify_model(model).by_rule("PPV011").empty());
}

// --- PPV012 non-monotonic merge inputs ----------------------------------------

namespace {

/// Source 0 fans out to transforms 1 and 2; both feed merge node 3.
vfy::GraphModel diamond_model() {
  vfy::GraphModel model;
  model.nodes.push_back(node(0, "Src", {}, {core::provide<V0>()}));
  model.nodes.push_back(node(1, "FastPath", {core::require<V0>()},
                             {core::provide<V1>()}));
  model.nodes.push_back(node(2, "SlowPath", {core::require<V0>()},
                             {core::provide<V1>()}));
  model.nodes.push_back(node(3, "Fusion", {core::require<V1>()}, {}));
  model.nodes[3].is_merge = true;
  model.edges.push_back({0, 1, false});
  model.edges.push_back({0, 2, false});
  model.edges.push_back({1, 3, false});
  model.edges.push_back({2, 3, false});
  return model;
}

}  // namespace

TEST(NonMonotonicMerge, ReconvergentDiamondWarns) {
  const vfy::Report report = vfy::verify_model(diamond_model());
  ASSERT_GE(report.by_rule("PPV012").size(), 1u);
  const vfy::Diagnostic& d = *report.by_rule("PPV012")[0];
  EXPECT_EQ(d.severity, vfy::Severity::kWarning);
  EXPECT_EQ(d.component, std::optional<core::ComponentId>(3u));
  EXPECT_NE(d.message.find("reconverge"), std::string::npos);
}

TEST(NonMonotonicMerge, UnorderedLinkUpstreamOfMergeWarns) {
  // Two independent sources (no reconvergence), but one arrives over an
  // unordered deployment link — arrival order can invert logical time.
  vfy::GraphModel model;
  model.nodes.push_back(node(0, "SrcA", {}, {core::provide<V1>()}));
  model.nodes.push_back(node(1, "Ingress", {core::require<V1>()},
                             {core::provide<V1>()}));
  model.nodes.push_back(node(2, "SrcB", {}, {core::provide<V1>()}));
  model.nodes.push_back(node(3, "Fusion", {core::require<V1>()}, {}));
  model.nodes[3].is_merge = true;
  model.links.push_back({0, 1, /*acked=*/false, /*ordered=*/false, "radio"});
  model.edges.push_back({1, 3, false});
  model.edges.push_back({2, 3, false});
  const vfy::Report report = vfy::verify_model(model);
  ASSERT_EQ(report.by_rule("PPV012").size(), 1u);
  EXPECT_NE(report.by_rule("PPV012")[0]->message.find("'radio'"),
            std::string::npos);
}

TEST(NonMonotonicMerge, IndependentOrderedInputsAreClean) {
  vfy::GraphModel model = diamond_model();
  // Split the diamond: give each path its own source.
  model.edges.erase(model.edges.begin());  // Drop 0 -> 1.
  model.nodes.push_back(node(4, "Src2", {}, {core::provide<V0>()}));
  model.edges.push_back({4, 1, false});
  EXPECT_TRUE(vfy::verify_model(model).by_rule("PPV012").empty());
}

// --- PPV013 ack-cycle deadlock ------------------------------------------------

namespace {

vfy::GraphModel two_host_model() {
  vfy::GraphModel model;
  model.nodes.push_back(node(0, "DeviceOut", {}, {core::provide<V0>()}));
  model.nodes.push_back(node(1, "ServerIn", {core::require<V0>()},
                             {core::provide<V1>()}));
  model.nodes.push_back(node(2, "ServerOut", {}, {core::provide<V1>()}));
  model.nodes.push_back(node(3, "DeviceIn", {core::require<V1>()}, {}));
  model.nodes[0].host = "device";
  model.nodes[3].host = "device";
  model.nodes[1].host = "server";
  model.nodes[2].host = "server";
  return model;
}

}  // namespace

TEST(AckCycle, MutuallyAckedHostsWarn) {
  vfy::GraphModel model = two_host_model();
  model.links.push_back({0, 1, /*acked=*/true, /*ordered=*/true, "up"});
  model.links.push_back({2, 3, /*acked=*/true, /*ordered=*/true, "down"});
  const vfy::Report report = vfy::verify_model(model);
  ASSERT_EQ(report.by_rule("PPV013").size(), 1u);
  EXPECT_NE(report.by_rule("PPV013")[0]->message.find("device"),
            std::string::npos);
  EXPECT_NE(report.by_rule("PPV013")[0]->message.find("server"),
            std::string::npos);
}

TEST(AckCycle, OneWayAckedIsClean) {
  // Reliable uplink, fire-and-forget downlink: no ring, no finding.
  vfy::GraphModel model = two_host_model();
  model.links.push_back({0, 1, /*acked=*/true, /*ordered=*/true, "up"});
  model.links.push_back({2, 3, /*acked=*/false, /*ordered=*/true, "down"});
  EXPECT_TRUE(vfy::verify_model(model).by_rule("PPV013").empty());
}

// --- PPV014 lane starvation ---------------------------------------------------

namespace {

vfy::GraphModel sinks_on_lane(std::size_t count, const std::string& lane) {
  vfy::GraphModel model;
  model.nodes.push_back(node(0, "Src", {}, {core::provide<V0>()}));
  for (std::size_t i = 1; i <= count; ++i) {
    model.nodes.push_back(
        node(static_cast<core::ComponentId>(i), "App" + std::to_string(i),
             {core::require<V0>()}, {}));
    model.nodes.back().lane = lane;
    model.edges.push_back({0, static_cast<core::ComponentId>(i), false});
  }
  return model;
}

}  // namespace

TEST(LaneStarvation, FiveSinksOnOneLaneWarn) {
  const vfy::Report report = vfy::verify_model(sinks_on_lane(5, "hot"));
  ASSERT_EQ(report.by_rule("PPV014").size(), 1u);
  EXPECT_NE(report.by_rule("PPV014")[0]->message.find("'hot'"),
            std::string::npos);
}

TEST(LaneStarvation, ThresholdSinksAreClean) {
  // Exactly max_sinks_per_lane (default 4) is accepted; the threshold is
  // "more than", not "at least".
  EXPECT_TRUE(
      vfy::verify_model(sinks_on_lane(4, "hot")).by_rule("PPV014").empty());
}

TEST(LaneStarvation, ThresholdIsTunable) {
  vfy::Options options;
  options.max_sinks_per_lane = 8;
  EXPECT_TRUE(vfy::verify_model(sinks_on_lane(5, "hot"), options)
                  .by_rule("PPV014")
                  .empty());
  options.max_sinks_per_lane = 2;
  EXPECT_EQ(vfy::verify_model(sinks_on_lane(3, "hot"), options)
                .by_rule("PPV014")
                .size(),
            1u);
}

// --- PPV015 hook-order violations ---------------------------------------------

TEST(HookOrder, MissingRequiredFeatureIsError) {
  vfy::GraphModel model;
  model.nodes.push_back(node(0, "Src", {}, {core::provide<V0>()}));
  model.nodes[0].hooks.push_back({"Smoother", {"Outliers"}, false, false});
  const vfy::Report report = vfy::verify_model(model);
  ASSERT_EQ(report.by_rule("PPV015").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV015")[0]->severity, vfy::Severity::kError);
}

TEST(HookOrder, DependencyAttachedAfterDependantWarns) {
  vfy::GraphModel model;
  model.nodes.push_back(node(0, "Src", {}, {core::provide<V0>()}));
  model.nodes[0].hooks.push_back({"Smoother", {"Outliers"}, false, false});
  model.nodes[0].hooks.push_back({"Outliers", {}, false, false});
  const vfy::Report report = vfy::verify_model(model);
  ASSERT_EQ(report.by_rule("PPV015").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV015")[0]->severity, vfy::Severity::kWarning);
  EXPECT_NE(report.by_rule("PPV015")[0]->message.find("attachment order"),
            std::string::npos);
}

TEST(HookOrder, SatisfiedOrderIsClean) {
  vfy::GraphModel model;
  model.nodes.push_back(node(0, "Src", {}, {core::provide<V0>()}));
  model.nodes[0].hooks.push_back({"Outliers", {}, false, false});
  model.nodes[0].hooks.push_back({"Smoother", {"Outliers"}, false, false});
  EXPECT_TRUE(vfy::verify_model(model).by_rule("PPV015").empty());
}

TEST(HookOrder, DetachingADependencyOnALiveGraphIsCaught) {
  // attach_feature() enforces dependencies at attach time, but
  // detach_feature() does not re-check dependants — exactly the hole this
  // rule plugs on re-verification after an adaptation.
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  g.attach_feature(src, std::make_shared<TestFeature>("Outliers"));
  g.attach_feature(src, std::make_shared<TestFeature>(
                            "Smoother", std::vector<std::string>{"Outliers"}));
  EXPECT_TRUE(vfy::verify(g).by_rule("PPV015").empty());
  g.detach_feature(src, "Outliers");
  const vfy::Report report = vfy::verify(g);
  ASSERT_EQ(report.by_rule("PPV015").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV015")[0]->severity, vfy::Severity::kError);
}

// --- Strict deployment (runtime integration of the same check) ---------------

namespace {

class StrictDeployFixture : public ::testing::Test {
 protected:
  StrictDeployFixture()
      : net(scheduler, random), graph(&scheduler.clock()),
        deployment(graph, net) {
    device = deployment.add_host("device");
    server = deployment.add_host("server");
    net.set_link(device, server, {sim::SimTime::from_millis(10), 0.0, {}});
    net.set_link(server, device, {sim::SimTime::from_millis(10), 0.0, {}});
  }

  sim::Scheduler scheduler;
  sim::Random random{7};
  sim::Network net;
  core::ProcessingGraph graph;
  rt::DistributedDeployment deployment;
  sim::HostId device{}, server{};
};

}  // namespace

TEST_F(StrictDeployFixture, StrictDeployRefusesUncodableCut) {
  const auto src = graph.add(make_source<UncodableValue>());
  const auto sink = graph.add(make_sink<UncodableValue>());
  graph.connect(src, sink);
  deployment.assign(src, device);
  deployment.assign(sink, server);
  ASSERT_TRUE(deployment.strict());
  try {
    deployment.deploy();
    FAIL() << "deploy() must refuse an uncodable cut edge";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("PPV008"), std::string::npos);
  }
  // The graph must be left unmodified: no egress/ingress were spliced in.
  EXPECT_EQ(graph.size(), 2u);
}

TEST_F(StrictDeployFixture, NonStrictDeployKeepsOldBehaviour) {
  const auto src = graph.add(make_source<UncodableValue>());
  const auto sink = graph.add(make_sink<UncodableValue>());
  graph.connect(src, sink);
  deployment.assign(src, device);
  deployment.assign(sink, server);
  deployment.set_strict(false);
  EXPECT_NO_THROW(deployment.deploy());
  EXPECT_GT(graph.size(), 2u);  // Remoting pair spliced in.
}

TEST_F(StrictDeployFixture, HostsOfExposesThePartition) {
  const auto src = graph.add(make_source<core::PositionFix>());
  const auto sink = graph.add(make_sink<core::PositionFix>());
  graph.connect(src, sink);
  deployment.assign(src, device);
  deployment.assign(sink, server);
  const auto hosts = vfy::hosts_of(deployment);
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_EQ(hosts.at(src), "device");
  EXPECT_EQ(hosts.at(sink), "server");
  // Round-trip into the analyzer: codable cut, so clean.
  vfy::Options options;
  options.hosts = hosts;
  EXPECT_TRUE(vfy::verify(graph, options).by_rule("PPV008").empty());
}

// --- Config front end (PPV000, names, hosts, analyze-then-instantiate) -------

namespace {

rt::ComponentFactoryRegistry test_registry() {
  rt::ComponentFactoryRegistry registry;
  registry.register_kind("v0-source", [](const auto&) {
    return make_source<V0>("V0Source");
  });
  registry.register_kind("v1-source", [](const auto&) {
    return make_source<V1>("V1Source");
  });
  registry.register_kind("v0-to-v1", [](const auto&) {
    return make_transform<V0, V1>("V0ToV1");
  });
  registry.register_kind("v1-sink",
                         [](const auto&) { return make_sink<V1>("V1Sink"); });
  return registry;
}

}  // namespace

TEST(ConfigVerify, ParseErrorsBecomePPV000WithLine) {
  const vfy::ConfigVerification result = vfy::verify_config(
      "component a v0-source\ncomponent b no-such-kind\n", test_registry());
  ASSERT_EQ(result.report.by_rule("PPV000").size(), 1u);
  const vfy::Diagnostic& d = *result.report.by_rule("PPV000")[0];
  EXPECT_EQ(d.severity, vfy::Severity::kError);
  ASSERT_TRUE(d.line.has_value());
  EXPECT_EQ(*d.line, 2);
  EXPECT_FALSE(result.report.ok());
}

TEST(ConfigVerify, DiagnosticsUseConfigNames) {
  const vfy::ConfigVerification result =
      vfy::verify_config("component lonely v1-sink\n", test_registry());
  ASSERT_EQ(result.report.by_rule("PPV001").size(), 1u);
  EXPECT_EQ(result.report.by_rule("PPV001")[0]->component_name, "lonely");
}

TEST(ConfigVerify, HostLinesFeedTheRemotingRule) {
  const std::string config =
      "component src v0-source\n"
      "component mid v0-to-v1\n"
      "component app v1-sink\n"
      "connect src mid\n"
      "connect mid app\n"
      "host device src mid\n"
      "host server app\n";
  // V1 is a test-local type with no codec coverage: the mid -> app cut
  // must trip PPV008.
  const vfy::ConfigVerification result =
      vfy::verify_config(config, test_registry());
  ASSERT_EQ(result.report.by_rule("PPV008").size(), 1u);
  EXPECT_FALSE(result.report.ok());
}

TEST(ConfigVerify, CleanConfigIsOk) {
  const std::string config =
      "component src v0-source\n"
      "component mid v0-to-v1\n"
      "component app v1-sink\n"
      "connect src mid\n"
      "connect mid app\n";
  const vfy::ConfigVerification result =
      vfy::verify_config(config, test_registry());
  EXPECT_TRUE(result.report.ok());
  EXPECT_EQ(result.report.diagnostics.size(), 0u);
  EXPECT_TRUE(result.assembly.verify_requested == false);
}

TEST(ConfigVerify, LaneLinesFeedTheLaneRules) {
  const std::string config =
      "component src v0-source\n"
      "component mid v0-to-v1\n"
      "component app v1-sink\n"
      "connect src mid\n"
      "connect mid app\n"
      "lane ingest src mid\n"
      "lane ui app\n";
  // The mid -> app edge crosses lanes 'ingest'/'ui' synchronously: PPV009.
  const vfy::ConfigVerification result =
      vfy::verify_config(config, test_registry());
  ASSERT_EQ(result.report.by_rule("PPV009").size(), 1u);
  EXPECT_NE(result.report.by_rule("PPV009")[0]->message.find("ingest"),
            std::string::npos);
  EXPECT_FALSE(result.report.ok());
}

TEST(ConfigVerify, LaneAssignmentsRoundTripThroughExport) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto sink = g.add(make_sink<V0>());
  g.connect(src, sink);
  const std::map<core::ComponentId, std::string> lanes = {{src, "ingest"},
                                                          {sink, "ingest"}};
  const std::string exported =
      rt::export_config(g, nullptr, nullptr, &lanes);
  EXPECT_NE(exported.find("lane ingest"), std::string::npos);

  // Re-parse: the lane plan must survive the round trip by name.
  rt::ComponentFactoryRegistry registry;
  registry.register_kind("Src",
                         [](const auto&) { return make_source<V0>("Src"); });
  registry.register_kind("Sink",
                         [](const auto&) { return make_sink<V0>("Sink"); });
  core::ProcessingGraph g2;
  const rt::ConfigResult parsed =
      rt::assemble_from_config(exported, registry, g2);
  EXPECT_TRUE(parsed.errors.empty());
  ASSERT_EQ(parsed.lanes.size(), 2u);
  for (const auto& [name, lane] : parsed.lanes) EXPECT_EQ(lane, "ingest");
}

TEST(ConfigVerify, ConflictingLaneAssignmentIsAnError) {
  const vfy::ConfigVerification result = vfy::verify_config(
      "component app v1-sink\nlane a app\nlane b app\n", test_registry());
  bool conflict = false;
  for (const auto* d : result.report.by_rule("PPV000")) {
    conflict = conflict ||
               d->message.find("assigned to both") != std::string::npos;
  }
  EXPECT_TRUE(conflict);
}

TEST(AssembleVerified, ErrorsLeaveTheGraphUntouched) {
  core::ProcessingGraph g;
  const vfy::VerifiedAssembly out = vfy::assemble_verified(
      "component lonely v1-sink\n", test_registry(), g);
  EXPECT_FALSE(out.assembled);
  EXPECT_FALSE(out.result.has_value());
  EXPECT_EQ(g.size(), 0u);
}

TEST(AssembleVerified, CleanConfigAssembles) {
  core::ProcessingGraph g;
  const vfy::VerifiedAssembly out = vfy::assemble_verified(
      "component src v0-source\ncomponent app v1-sink\n"
      "component mid v0-to-v1\nresolve\n",
      test_registry(), g);
  ASSERT_TRUE(out.assembled);
  ASSERT_TRUE(out.result.has_value());
  EXPECT_EQ(g.size(), 3u);
  // And the assembled pipeline actually flows.
  const core::ComponentId src = out.result->report.id_of("src");
  const core::ComponentId app = out.result->report.id_of("app");
  g.component_as<core::SourceComponent>(src)->push(V0{1});
  EXPECT_EQ(g.component_as<core::ApplicationSink>(app)->received(), 1u);
}

// --- Emitters ----------------------------------------------------------------

namespace {

vfy::Report starved_report() {
  core::ProcessingGraph g;
  g.add(make_sink<V0>("App"));
  return vfy::verify(g);
}

}  // namespace

TEST(Emit, TextIsCompilerStyle) {
  const std::string text = vfy::to_text(starved_report());
  EXPECT_NE(text.find("error[PPV001]"), std::string::npos);
  EXPECT_NE(text.find("  hint: "), std::string::npos);
  EXPECT_NE(text.find("1 error(s)"), std::string::npos);
}

TEST(Emit, JsonCarriesRuleSeverityAndSummary) {
  const std::string json = vfy::to_json(starved_report());
  EXPECT_NE(json.find("\"rule\":\"PPV001\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"summary\":{\"errors\":1"), std::string::npos);
}

TEST(Emit, JsonEscapesSpecials) {
  vfy::Report report;
  vfy::Diagnostic d;
  d.rule_id = "PPV000";
  d.severity = vfy::Severity::kError;
  d.message = "a \"quoted\"\nline\ttab \\ backslash";
  report.diagnostics.push_back(d);
  const std::string json = vfy::to_json(report);
  EXPECT_NE(json.find("a \\\"quoted\\\"\\nline\\ttab \\\\ backslash"),
            std::string::npos);
}

TEST(Emit, SarifGolden) {
  // Exact-output golden for the SARIF emitter against a one-rule registry
  // and a fully pinned diagnostic. Structural drift (schema URL, required
  // properties, location shape) must show up here as a diff.
  class GoldenRule final : public vfy::Rule {
   public:
    std::string_view id() const noexcept override { return "PPV001"; }
    std::string_view name() const noexcept override {
      return "requirement-starvation";
    }
    std::string_view description() const noexcept override {
      return "a mandatory input nothing satisfies";
    }
    vfy::Severity default_severity() const noexcept override {
      return vfy::Severity::kError;
    }
    void check(const vfy::GraphModel&, const vfy::Options&,
               vfy::Report&) const override {}
  };
  vfy::RuleRegistry registry;
  registry.add(std::make_unique<GoldenRule>());

  vfy::Report report;
  vfy::Diagnostic d;
  d.rule_id = "PPV001";
  d.severity = vfy::Severity::kError;
  d.message = "input 'PositionFix' of 'app' is starved.";
  d.component = 7;
  d.component_name = "app";
  d.fix_hint = "connect a producer.";
  report.diagnostics.push_back(d);

  const std::string expected =
      "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/"
      "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
      "\"name\":\"perpos-verify\","
      "\"informationUri\":\"https://example.invalid/perpos\",\"rules\":["
      "{\"id\":\"PPV001\",\"name\":\"requirement-starvation\","
      "\"shortDescription\":{\"text\":\"a mandatory input nothing "
      "satisfies\"},\"defaultConfiguration\":{\"level\":\"error\"}}]}},"
      "\"results\":[{\"ruleId\":\"PPV001\",\"ruleIndex\":0,"
      "\"level\":\"error\",\"message\":{\"text\":\"input 'PositionFix' of "
      "'app' is starved. Hint: connect a producer.\"},\"locations\":[{"
      "\"physicalLocation\":{\"artifactLocation\":{\"uri\":"
      "\"examples/configs/pipeline.conf\"},\"region\":{\"startLine\":1}},"
      "\"logicalLocations\":[{\"name\":\"app\",\"kind\":\"member\"}]}]}]}]}";
  EXPECT_EQ(vfy::to_sarif(report, registry, "examples/configs/pipeline.conf"),
            expected);
}

TEST(Emit, SarifGoldenPPV009) {
  // Exact-output golden for a cross-lane finding: rule metadata from a
  // one-rule registry plus a pinned warning-severity diagnostic with an
  // edge location. Guards the lane-rule wire format CI consumes.
  class LaneRule final : public vfy::Rule {
   public:
    std::string_view id() const noexcept override { return "PPV009"; }
    std::string_view name() const noexcept override {
      return "cross-lane-edge";
    }
    std::string_view description() const noexcept override {
      return "a direct edge between execution lanes";
    }
    vfy::Severity default_severity() const noexcept override {
      return vfy::Severity::kError;
    }
    void check(const vfy::GraphModel&, const vfy::Options&,
               vfy::Report&) const override {}
  };
  vfy::RuleRegistry registry;
  registry.add(std::make_unique<LaneRule>());

  vfy::Report report;
  vfy::Diagnostic d;
  d.rule_id = "PPV009";
  d.severity = vfy::Severity::kError;
  d.message = "edge 'src' -> 'app' crosses lanes 'lane-a'/'lane-b'.";
  d.component = 3;
  d.component_name = "app";
  d.edge = std::make_pair<core::ComponentId, core::ComponentId>(2, 3);
  d.fix_hint = "route the hop through a deployment link.";
  report.diagnostics.push_back(d);

  const std::string expected =
      "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/"
      "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
      "\"name\":\"perpos-verify\","
      "\"informationUri\":\"https://example.invalid/perpos\",\"rules\":["
      "{\"id\":\"PPV009\",\"name\":\"cross-lane-edge\","
      "\"shortDescription\":{\"text\":\"a direct edge between execution "
      "lanes\"},\"defaultConfiguration\":{\"level\":\"error\"}}]}},"
      "\"results\":[{\"ruleId\":\"PPV009\",\"ruleIndex\":0,"
      "\"level\":\"error\",\"message\":{\"text\":\"edge 'src' -> 'app' "
      "crosses lanes 'lane-a'/'lane-b'. Hint: route the hop through a "
      "deployment link.\"},\"locations\":[{"
      "\"physicalLocation\":{\"artifactLocation\":{\"uri\":"
      "\"examples/configs/lanes.conf\"},\"region\":{\"startLine\":1}},"
      "\"logicalLocations\":[{\"name\":\"app\",\"kind\":\"member\"}]}]}]}]}";
  EXPECT_EQ(vfy::to_sarif(report, registry, "examples/configs/lanes.conf"),
            expected);
}

TEST(Emit, SarifWithoutArtifactOmitsPhysicalLocation) {
  const std::string sarif = vfy::to_sarif(
      starved_report(), vfy::RuleRegistry::default_catalog());
  EXPECT_EQ(sarif.find("physicalLocation"), std::string::npos);
  EXPECT_NE(sarif.find("logicalLocations"), std::string::npos);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
}

// --- Property: the analyzer's verdict predicts runtime behaviour --------------

TEST(Property, FindingFreeGraphsRunWithoutRejectedDeliveries) {
  // For random graphs assembled from typed sources, transforms and sinks:
  // whenever the analyzer reports neither errors nor warnings, pushing
  // samples through every source must cause zero rejected deliveries
  // (the runtime counter behind requirement mismatches). This ties the
  // static rules to the dynamic failure mode they claim to predict.
  int clean_graphs = 0;
  for (unsigned seed = 0; seed < 40; ++seed) {
    std::mt19937 rng(seed);
    auto chance = [&](double p) {
      return std::uniform_real_distribution<>(0.0, 1.0)(rng) < p;
    };
    auto pick = [&](int n) {
      return std::uniform_int_distribution<>(0, n - 1)(rng);
    };

    core::ProcessingGraph g;
    g.enable_observability();
    std::vector<core::ComponentId> order;
    std::vector<core::ComponentId> sources;
    std::vector<std::function<void()>> pushers;

    const int n_sources = 1 + pick(2);
    for (int i = 0; i < n_sources; ++i) {
      switch (pick(3)) {
        case 0: {
          auto s = make_source<V0>("S0");
          const auto id = g.add(s);
          pushers.push_back([s] { s->push(V0{}); });
          order.push_back(id);
          sources.push_back(id);
          break;
        }
        case 1: {
          auto s = make_source<V1>("S1");
          const auto id = g.add(s);
          pushers.push_back([s] { s->push(V1{}); });
          order.push_back(id);
          sources.push_back(id);
          break;
        }
        default: {
          auto s = make_source<V2>("S2");
          const auto id = g.add(s);
          pushers.push_back([s] { s->push(V2{}); });
          order.push_back(id);
          sources.push_back(id);
          break;
        }
      }
    }
    const int n_transforms = pick(4);
    for (int i = 0; i < n_transforms; ++i) {
      const int in = pick(3), out = pick(3);
      std::shared_ptr<core::ProcessingComponent> t;
      if (in == 0 && out == 1) t = make_transform<V0, V1>();
      else if (in == 0 && out == 2) t = make_transform<V0, V2>();
      else if (in == 1 && out == 0) t = make_transform<V1, V0>();
      else if (in == 1 && out == 2) t = make_transform<V1, V2>();
      else if (in == 2 && out == 0) t = make_transform<V2, V0>();
      else if (in == 2 && out == 1) t = make_transform<V2, V1>();
      else continue;  // Same-type pass-throughs add nothing here.
      order.push_back(g.add(t));
    }
    const int n_sinks = 1 + pick(2);
    std::vector<std::shared_ptr<core::ApplicationSink>> sinks;
    for (int i = 0; i < n_sinks; ++i) {
      std::shared_ptr<core::ApplicationSink> sink;
      switch (pick(3)) {
        case 0: sink = make_sink<V0>(); break;
        case 1: sink = make_sink<V1>(); break;
        default: sink = make_sink<V2>(); break;
      }
      sinks.push_back(sink);
      order.push_back(g.add(sink));
    }

    // Random forward edges; connect() rejects unrealizable ones, which is
    // part of the territory the analyzer must cope with.
    for (std::size_t i = 0; i < order.size(); ++i) {
      for (std::size_t j = i + 1; j < order.size(); ++j) {
        if (!chance(0.5)) continue;
        try {
          g.connect(order[i], order[j]);
        } catch (const std::exception&) {
          // Unrealizable or duplicate — skip.
        }
      }
    }

    const vfy::Report report = vfy::verify(g);
    if (!report.ok() || report.warnings() > 0) continue;
    ++clean_graphs;

    for (const auto& push : pushers) {
      push();
    }
    std::uint64_t rejected = 0;
    for (const auto& counter : g.metrics_registry()->snapshot().counters) {
      if (counter.name == "perpos_component_rejected_total") {
        rejected += counter.value;
      }
    }
    EXPECT_EQ(rejected, 0u) << "seed " << seed << ":\n"
                            << vfy::to_text(report);
    // Liveness: a finding-free verdict also implies every application sink
    // is fed (PPV001 covers its input, PPV004 its reachability).
    for (const auto& sink : sinks) {
      EXPECT_GE(sink->received(), 1u)
          << "seed " << seed << ":\n" << vfy::to_text(report);
    }
  }
  // The generator must actually exercise the clean path.
  EXPECT_GT(clean_graphs, 0);
}

// --- Incremental re-verification (adaptation-time rechecks) -------------------

namespace {

/// Order-insensitive verdict fingerprint for report equivalence checks.
std::multiset<std::string> verdicts(const vfy::Report& report) {
  std::multiset<std::string> out;
  for (const vfy::Diagnostic& d : report.diagnostics) {
    out.insert(d.rule_id + "|" +
               (d.component.has_value() ? std::to_string(*d.component)
                                        : std::string("-")) +
               "|" + d.message);
  }
  return out;
}

}  // namespace

TEST(Incremental, FullPassMatchesPlainVerify) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto sink = g.add(make_sink<V0>());
  g.connect(src, sink);
  g.add(make_sink<V1>("Starved"));  // Independent, deliberately broken.

  vfy::IncrementalVerifier iv(g);
  const vfy::Report incremental = iv.full();
  EXPECT_EQ(verdicts(incremental), verdicts(vfy::verify(g)));
  EXPECT_EQ(iv.nodes_visited(), 3u);
  EXPECT_EQ(iv.components_visited(), 2u);
}

TEST(Incremental, CleanRecheckReplaysCacheWithoutVisiting) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto sink = g.add(make_sink<V0>());
  g.connect(src, sink);
  g.add(make_sink<V1>("Starved"));

  vfy::IncrementalVerifier iv(g);
  const vfy::Report first = iv.full();
  const vfy::Report second = iv.recheck();
  EXPECT_EQ(verdicts(first), verdicts(second));
  // Nothing mutated: every component replays from cache.
  EXPECT_EQ(iv.nodes_visited(), 0u);
  EXPECT_EQ(iv.components_visited(), 0u);
}

TEST(Incremental, RecheckAfterInsertVisitsOnlyTheDirtySubgraph) {
  // Two independent pipelines; adapting one must not re-analyze the other.
  core::ProcessingGraph g;
  const auto src_a = g.add(make_source<V0>());
  const auto sink_a = g.add(make_sink<V0>("AppA"));
  g.connect(src_a, sink_a);
  const auto src_b = g.add(make_source<V1>());
  const auto sink_b = g.add(make_sink<V1>("AppB"));
  g.connect(src_b, sink_b);

  vfy::IncrementalVerifier iv(g);
  iv.full();
  EXPECT_EQ(iv.nodes_visited(), 4u);

  // The PSL-style adaptation: splice a filter into pipeline A's edge.
  const auto filter = g.add(make_transform<V0, V0>("Filter"));
  g.insert_between(filter, src_a, sink_a);

  const vfy::Report after = iv.recheck();
  // Only pipeline A (now 3 nodes) was analyzed; pipeline B replayed.
  EXPECT_EQ(iv.components_visited(), 1u);
  EXPECT_EQ(iv.nodes_visited(), 3u);
  // ...and the verdicts are exactly a full re-verification's.
  EXPECT_EQ(verdicts(after), verdicts(vfy::verify(g)));
}

TEST(Incremental, FeatureDetachDirtiesTheHostComponent) {
  // Feature mutations change no edge, so only the dirty mark (not the
  // cache key) can catch them — this is the regression test for that path.
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto sink = g.add(make_sink<V0>());
  g.connect(src, sink);
  const auto other = g.add(make_source<V1>("Other"));
  const auto other_sink = g.add(make_sink<V1>("OtherApp"));
  g.connect(other, other_sink);
  g.attach_feature(src, std::make_shared<TestFeature>("Outliers"));
  g.attach_feature(src, std::make_shared<TestFeature>(
                            "Smoother", std::vector<std::string>{"Outliers"}));

  vfy::IncrementalVerifier iv(g);
  EXPECT_TRUE(iv.full().by_rule("PPV015").empty());

  g.detach_feature(src, "Outliers");
  const vfy::Report after = iv.recheck();
  ASSERT_EQ(after.by_rule("PPV015").size(), 1u);
  EXPECT_EQ(iv.components_visited(), 1u);
  EXPECT_EQ(iv.nodes_visited(), 2u);
  EXPECT_EQ(verdicts(after), verdicts(vfy::verify(g)));
}

TEST(Incremental, NonLocalRulesStillRunOnCleanComponents) {
  // PPV014 totals sinks per lane across weak components; a cached
  // component must not hide its contribution.
  core::ProcessingGraph g;
  std::vector<core::ComponentId> sinks;
  for (int i = 0; i < 5; ++i) {
    const auto src = g.add(make_source<V0>());
    const auto sink = g.add(make_sink<V0>("App" + std::to_string(i)));
    g.connect(src, sink);
    sinks.push_back(sink);
  }
  vfy::Options options;
  for (const auto id : sinks) options.lanes.emplace(id, "hot");

  vfy::IncrementalVerifier iv(g, options);
  EXPECT_EQ(iv.full().by_rule("PPV014").size(), 1u);
  // No mutations: everything replays, yet the lane total still fires.
  const vfy::Report again = iv.recheck();
  EXPECT_EQ(again.by_rule("PPV014").size(), 1u);
  EXPECT_EQ(iv.nodes_visited(), 0u);
}

// --- PPQ quantitative budget rules -------------------------------------------

namespace {

/// src -> sink pipeline on one lane with an annotated source rate and sink
/// cost — the minimal overloadable fixture.
struct BudgetPipeline {
  core::ProcessingGraph g;
  core::ComponentId src;
  core::ComponentId sink;
  vfy::Options options;

  BudgetPipeline(double rate_hz, double cost_us) {
    src = g.add(make_source<V0>());
    sink = g.add(make_sink<V0>());
    g.connect(src, sink);
    options.lanes.emplace(src, "main");
    options.lanes.emplace(sink, "main");
    vfy::BudgetAnnotation rate;
    rate.rate_lo_hz = rate.rate_hi_hz = rate_hz;
    options.budget.annotations.emplace(src, rate);
    vfy::BudgetAnnotation cost;
    cost.cost_us = cost_us;
    options.budget.annotations.emplace(sink, cost);
  }
};

}  // namespace

TEST(BudgetRules, OverloadedLaneIsError) {
  // 2 kHz into a 1.5 ms/sample sink = 3 cores of work on a 1-core lane.
  BudgetPipeline p(2000.0, 1500.0);
  const vfy::Report report = vfy::verify(p.g, p.options);
  const auto findings = report.by_rule("PPQ001");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0]->severity, vfy::Severity::kError);
  EXPECT_NE(findings[0]->message.find("'main'"), std::string::npos);
}

TEST(BudgetRules, LoadedButFeasibleLaneIsClean) {
  // Same shape at 40% utilization.
  BudgetPipeline p(2000.0, 200.0);
  const vfy::Report report = vfy::verify(p.g, p.options);
  EXPECT_TRUE(report.by_rule("PPQ001").empty());
}

TEST(BudgetRules, UnannotatedGraphsStayWithinDefaultBudgets) {
  // The PPQ family must not fire on configs that never opted into
  // rates/costs/SLOs — default 1 Hz sources against microsecond-scale
  // calibrated costs are always feasible.
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto sink = g.add(make_sink<V0>());
  g.connect(src, sink);
  const vfy::Report report = vfy::verify(g);
  for (int i = 1; i <= 5; ++i) {
    EXPECT_TRUE(report.by_rule("PPQ00" + std::to_string(i)).empty()) << i;
  }
}

TEST(BudgetRules, QueueBoundGatedOnWatermark) {
  // One source bursting into a wide fan-out: 16-sample bursts each
  // delivered to 3 sinks = 48 queued deliveries per event.
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  for (int i = 0; i < 3; ++i) {
    g.connect(src, g.add(make_sink<V0>("App" + std::to_string(i))));
  }
  vfy::Options options;
  options.budget.burst = 16.0;
  // Unwatermarked: PPQ002 has nothing to check against.
  EXPECT_TRUE(vfy::verify(g, options).by_rule("PPQ002").empty());
  options.budget.queue_watermark = 8;
  const auto findings = vfy::verify(g, options).by_rule("PPQ002");
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0]->severity, vfy::Severity::kWarning);
  options.budget.queue_watermark = 4096;
  EXPECT_TRUE(vfy::verify(g, options).by_rule("PPQ002").empty());
}

TEST(BudgetRules, InfeasibleLatencySloIsError) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto mid = g.add(make_transform<V0, V1>());
  const auto sink = g.add(make_sink<V1>());
  g.connect(src, mid);
  g.connect(mid, sink);
  vfy::Options options;
  vfy::BudgetAnnotation slow;
  slow.cost_us = 9000.0;
  options.budget.annotations.emplace(mid, slow);
  options.budget.latency_slo_us = 5000.0;
  const auto findings = vfy::verify(g, options).by_rule("PPQ003");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0]->severity, vfy::Severity::kError);
  // Anchored at the path's sink, where the latency is owed.
  EXPECT_EQ(findings[0]->component, sink);
  // A feasible SLO over the same path is clean.
  options.budget.latency_slo_us = 50000.0;
  EXPECT_TRUE(vfy::verify(g, options).by_rule("PPQ003").empty());
  // No SLO declared: nothing to check.
  options.budget.latency_slo_us = 0.0;
  EXPECT_TRUE(vfy::verify(g, options).by_rule("PPQ003").empty());
}

TEST(BudgetRules, RateStarvedSinkIsWarning) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto sink = g.add(make_sink<V0>());
  g.connect(src, sink);
  vfy::Options options;
  vfy::BudgetAnnotation rate;
  rate.rate_lo_hz = rate.rate_hi_hz = 0.5;
  options.budget.annotations.emplace(src, rate);
  vfy::BudgetAnnotation need;
  need.min_rate_hz = 2.0;
  options.budget.annotations.emplace(sink, need);
  const auto findings = vfy::verify(g, options).by_rule("PPQ004");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0]->severity, vfy::Severity::kWarning);
  EXPECT_EQ(findings[0]->component, sink);
  // A satisfiable floor is clean.
  options.budget.annotations[sink].min_rate_hz = 0.25;
  EXPECT_TRUE(vfy::verify(g, options).by_rule("PPQ004").empty());
}

TEST(BudgetRules, CriticalFeedbackGainIsError) {
  // A feedback region at exactly unit gain never diverges in PPV010's
  // strict sense but never drains either: its queue bound is unbounded.
  // Only reportable when the region is actually scheduled (lane assigned)
  // or a watermark claims a bound exists.
  vfy::GraphModel model;
  model.nodes.push_back(node(1, "a", {core::require<V0>()},
                             {core::provide<V0>()}));
  model.nodes.push_back(node(2, "b", {core::require<V0>()},
                             {core::provide<V0>()}));
  model.nodes.back().emit_per_input = 1.0;
  model.edges.push_back({1, 2});
  model.edges.push_back({2, 1});
  vfy::Options options;
  options.budget.queue_watermark = 64;
  const auto findings = vfy::verify_model(model, options).by_rule("PPQ005");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0]->severity, vfy::Severity::kError);
  // A damped loop (gain < 1) has a finite geometric bound: clean.
  model.nodes[0].emit_per_input = 0.5;
  EXPECT_TRUE(vfy::verify_model(model, options).by_rule("PPQ005").empty());
}

TEST(BudgetRules, ConfigBudgetLinesFeedTheRules) {
  // End to end through the config front end: `budget` lines must reach
  // the PPQ rules exactly like `lane` lines reach PPV009/PPV014.
  rt::ComponentFactoryRegistry registry;
  registry.register_kind("source", [](const auto&) {
    return std::make_shared<core::SourceComponent>(
        "Src", std::vector<core::DataSpec>{core::provide<V0>()});
  });
  registry.register_kind("sink", [](const auto&) {
    return std::make_shared<core::ApplicationSink>(
        "App", std::vector<core::InputRequirement>{core::require<V0>()});
  });
  const vfy::ConfigVerification result = vfy::verify_config(
      "component src source\n"
      "component app sink\n"
      "connect src app\n"
      "lane main src app\n"
      "budget src rate=2000\n"
      "budget app cost_us=1500\n"
      "budget * slo_us=1000\n",
      registry);
  EXPECT_EQ(result.report.by_rule("PPQ001").size(), 1u);
  EXPECT_EQ(result.report.by_rule("PPQ003").size(), 1u);
  // The effective options round out to the tools' quantitative report.
  const vfy::BudgetReport budget =
      vfy::analyze_budget(result.model, result.options);
  ASSERT_EQ(budget.lanes.size(), 1u);
  EXPECT_GT(budget.lanes[0].utilization.hi, 1.0);
}

// --- Incremental x PPQ: annotation mutations and lane-rule escape ------------

TEST(Incremental, BudgetAnnotationDirtiesOnlyTheAnnotatedComponent) {
  // Two independent pipelines; annotating one must re-run the local rules
  // on that pipeline alone (O(delta), counter-asserted), not the world.
  core::ProcessingGraph g;
  const auto src_a = g.add(make_source<V0>());
  const auto sink_a = g.add(make_sink<V0>("AppA"));
  g.connect(src_a, sink_a);
  const auto src_b = g.add(make_source<V1>());
  const auto sink_b = g.add(make_sink<V1>("AppB"));
  g.connect(src_b, sink_b);

  vfy::IncrementalVerifier iv(g);
  EXPECT_TRUE(iv.full().by_rule("PPQ004").empty());

  // Demand more rate than the default 1 Hz source supplies.
  vfy::BudgetAnnotation need;
  need.min_rate_hz = 5.0;
  iv.annotate_budget(sink_a, need);
  const vfy::Report after = iv.recheck();
  ASSERT_EQ(after.by_rule("PPQ004").size(), 1u);
  EXPECT_EQ(after.by_rule("PPQ004")[0]->component, sink_a);
  // Only pipeline A was re-analyzed; pipeline B replayed from cache.
  EXPECT_EQ(iv.components_visited(), 1u);
  EXPECT_EQ(iv.nodes_visited(), 2u);

  // The incremental verdicts match a from-scratch verification with the
  // same annotations.
  vfy::Options options;
  options.budget.annotations.emplace(sink_a, need);
  EXPECT_EQ(verdicts(after), verdicts(vfy::verify(g, options)));
}

TEST(Incremental, LanePPQRulesRunViaTheNonLocalPath) {
  // PPQ001 totals utilization per lane across weak components, so a fully
  // cached recheck must still recompute it — the same escape hatch PPV014
  // uses.
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto sink = g.add(make_sink<V0>());
  g.connect(src, sink);
  vfy::Options options;
  options.lanes.emplace(src, "main");
  options.lanes.emplace(sink, "main");
  vfy::BudgetAnnotation rate;
  rate.rate_lo_hz = rate.rate_hi_hz = 2000.0;
  options.budget.annotations.emplace(src, rate);
  vfy::BudgetAnnotation cost;
  cost.cost_us = 1500.0;
  options.budget.annotations.emplace(sink, cost);

  vfy::IncrementalVerifier iv(g, options);
  EXPECT_EQ(iv.full().by_rule("PPQ001").size(), 1u);
  // No mutations: everything replays, yet the lane total still fires.
  const vfy::Report again = iv.recheck();
  EXPECT_EQ(again.by_rule("PPQ001").size(), 1u);
  EXPECT_EQ(iv.nodes_visited(), 0u);
}

TEST(Incremental, CostAnnotationFlipsTheLaneVerdictOnRecheck) {
  // Annotation-driven adaptation end to end: a live graph goes over
  // budget when a component's measured cost is annotated upward, and the
  // incremental recheck reports it without a full pass.
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto sink = g.add(make_sink<V0>());
  g.connect(src, sink);
  vfy::Options options;
  options.lanes.emplace(src, "main");
  options.lanes.emplace(sink, "main");
  vfy::BudgetAnnotation rate;
  rate.rate_lo_hz = rate.rate_hi_hz = 2000.0;
  options.budget.annotations.emplace(src, rate);

  vfy::IncrementalVerifier iv(g, options);
  EXPECT_TRUE(iv.full().by_rule("PPQ001").empty());

  vfy::BudgetAnnotation cost;
  cost.cost_us = 1500.0;  // Profiler said: 1.5 ms per sample.
  iv.annotate_budget(sink, cost);
  EXPECT_EQ(iv.recheck().by_rule("PPQ001").size(), 1u);
}
