// Tests for the static analyzer (perpos::verify): one positive and one
// negative case per rule, the emitters (text / JSON / SARIF golden), the
// config front end (verify_config / assemble_verified), strict deployment,
// and a property test tying the analyzer's verdict to runtime behaviour.

#include "perpos/core/components.hpp"
#include "perpos/core/data_types.hpp"
#include "perpos/locmodel/fixtures.hpp"
#include "perpos/locmodel/resolver.hpp"
#include "perpos/runtime/config.hpp"
#include "perpos/runtime/distribution.hpp"
#include "perpos/verify/emit.hpp"
#include "perpos/verify/verify.hpp"
#include "perpos/wifi/components.hpp"
#include "perpos/wifi/fingerprint.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

namespace core = perpos::core;
namespace rt = perpos::runtime;
namespace vfy = perpos::verify;
namespace sim = perpos::sim;

namespace {

// Test-local payload types. UncodableValue deliberately has no payload
// codec coverage; V0..V2 drive the property test.
struct UncodableValue {
  int value = 0;
};
struct V0 {
  int value = 0;
};
struct V1 {
  int value = 0;
};
struct V2 {
  int value = 0;
};

template <typename T>
std::shared_ptr<core::SourceComponent> make_source(std::string kind = "Src") {
  return std::make_shared<core::SourceComponent>(
      std::move(kind), std::vector<core::DataSpec>{core::provide<T>()});
}

/// In -> Out transform that re-emits a default Out for every input.
template <typename In, typename Out>
std::shared_ptr<core::LambdaComponent> make_transform(
    std::string kind = "Xform") {
  return std::make_shared<core::LambdaComponent>(
      std::move(kind),
      std::vector<core::InputRequirement>{core::require<In>()},
      std::vector<core::DataSpec>{core::provide<Out>()},
      [](const core::Sample&, const core::ComponentContext& ctx) {
        ctx.emit(core::Payload::make(Out{}));
      });
}

template <typename T>
std::shared_ptr<core::ApplicationSink> make_sink(std::string name = "Sink") {
  return std::make_shared<core::ApplicationSink>(
      std::move(name),
      std::vector<core::InputRequirement>{core::require<T>()});
}

/// Minimal node builder for hand-built models (states a live graph cannot
/// enter, e.g. cycles).
vfy::NodeModel node(core::ComponentId id, std::string name,
                    std::vector<core::InputRequirement> reqs,
                    std::vector<core::DataSpec> caps) {
  vfy::NodeModel n;
  n.id = id;
  n.name = std::move(name);
  n.kind = n.name;
  n.requirements = std::move(reqs);
  n.capabilities = std::move(caps);
  return n;
}

}  // namespace

// --- Catalog ---------------------------------------------------------------

TEST(Catalog, TenRulesWithStableIds) {
  const vfy::RuleRegistry& catalog = vfy::RuleRegistry::default_catalog();
  ASSERT_EQ(catalog.rules().size(), 10u);
  for (int i = 0; i <= 9; ++i) {
    const std::string id = "PPV00" + std::to_string(i);
    const vfy::Rule* rule = catalog.find(id);
    ASSERT_NE(rule, nullptr) << id;
    EXPECT_EQ(rule->id(), id);
    EXPECT_FALSE(rule->name().empty());
    EXPECT_FALSE(rule->description().empty());
  }
  EXPECT_EQ(catalog.find("PPV999"), nullptr);
}

TEST(Catalog, DuplicateIdRejected) {
  // default_catalog construction would have thrown already if ids clashed;
  // check the guard directly through the registry surface.
  class Dup final : public vfy::Rule {
   public:
    std::string_view id() const noexcept override { return "PPV001"; }
    std::string_view name() const noexcept override { return "dup"; }
    std::string_view description() const noexcept override { return "dup"; }
    vfy::Severity default_severity() const noexcept override {
      return vfy::Severity::kNote;
    }
    void check(const vfy::GraphModel&, const vfy::Options&,
               vfy::Report&) const override {}
  };
  vfy::RuleRegistry registry;
  registry.add(std::make_unique<Dup>());
  EXPECT_THROW(registry.add(std::make_unique<Dup>()), std::invalid_argument);
}

TEST(Catalog, DisabledRulesAreSkipped) {
  core::ProcessingGraph g;
  g.add(make_sink<V0>("Starved"));
  vfy::Options options;
  options.disabled_rules = {"PPV001"};
  const vfy::Report report = vfy::verify(g, options);
  EXPECT_TRUE(report.by_rule("PPV001").empty());
}

// --- PPV001 requirement starvation -----------------------------------------

TEST(Starvation, UnconnectedMandatoryInputIsError) {
  core::ProcessingGraph g;
  g.add(make_sink<V0>());
  const vfy::Report report = vfy::verify(g);
  ASSERT_EQ(report.by_rule("PPV001").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV001")[0]->severity, vfy::Severity::kError);
  EXPECT_FALSE(report.ok());
}

TEST(Starvation, SatisfiedInputIsClean) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto sink = g.add(make_sink<V0>());
  g.connect(src, sink);
  EXPECT_TRUE(vfy::verify(g).by_rule("PPV001").empty());
}

TEST(Starvation, PartiallyStarvedMultiRequirementSinkIsWarning) {
  // connect() accepts when ANY capability satisfies ANY requirement, so a
  // two-requirement sink wired to a producer of only one of them is legal
  // edge by edge — and permanently starves the other input. This is the
  // whole-graph view the analyzer adds (see graph.hpp's accept semantics).
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto sink = g.add(std::make_shared<core::ApplicationSink>(
      "TwoInputs", std::vector<core::InputRequirement>{
                       core::require<V0>(), core::require<V1>()}));
  g.connect(src, sink);
  const vfy::Report report = vfy::verify(g);
  ASSERT_EQ(report.by_rule("PPV001").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV001")[0]->severity, vfy::Severity::kWarning);
  EXPECT_TRUE(report.ok());  // Warnings do not fail verification.
}

TEST(Starvation, OptionalRequirementsAreExempt) {
  core::ProcessingGraph g;
  g.add(std::make_shared<core::ApplicationSink>(
      "Optional", std::vector<core::InputRequirement>{
                      core::require<V0>("", /*optional=*/true)}));
  EXPECT_TRUE(vfy::verify(g).by_rule("PPV001").empty());
}

// --- PPV002 wildcard ambiguity ---------------------------------------------

TEST(WildcardAmbiguity, ResolvedEdgeWithSeveralCandidatesWarns) {
  vfy::GraphModel model;
  model.nodes.push_back(node(0, "a", {}, {core::provide<V0>()}));
  model.nodes.push_back(node(1, "b", {}, {core::provide<V1>()}));
  model.nodes.push_back(node(2, "app", {core::require_any()}, {}));
  model.edges.push_back({0, 2, /*resolved=*/true});
  const vfy::Report report = vfy::verify_model(model);
  ASSERT_EQ(report.by_rule("PPV002").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV002")[0]->severity, vfy::Severity::kWarning);
}

TEST(WildcardAmbiguity, SingleCandidateOrExplicitEdgeIsClean) {
  // One candidate: unambiguous even when resolver-chosen.
  vfy::GraphModel one;
  one.nodes.push_back(node(0, "a", {}, {core::provide<V0>()}));
  one.nodes.push_back(node(1, "app", {core::require_any()}, {}));
  one.edges.push_back({0, 1, /*resolved=*/true});
  EXPECT_TRUE(vfy::verify_model(one).by_rule("PPV002").empty());

  // Explicitly connected wildcard: the author chose; no ambiguity.
  core::ProcessingGraph g;
  const auto a = g.add(make_source<V0>("A"));
  g.add(make_source<V1>("B"));
  const auto app = g.add(std::make_shared<core::ApplicationSink>());
  g.connect(a, app);
  EXPECT_TRUE(vfy::verify(g).by_rule("PPV002").empty());
}

TEST(WildcardAmbiguity, DisconnectedWildcardWithCandidatesWarns) {
  core::ProcessingGraph g;
  g.add(make_source<V0>("A"));
  g.add(make_source<V1>("B"));
  g.add(std::make_shared<core::ApplicationSink>());
  const vfy::Report report = vfy::verify(g);
  EXPECT_EQ(report.by_rule("PPV002").size(), 1u);
}

// --- PPV003 dead outputs ---------------------------------------------------

TEST(DeadOutput, UnacceptedCapabilityWarns) {
  core::ProcessingGraph g;
  const auto src = g.add(std::make_shared<core::SourceComponent>(
      "TwoCaps", std::vector<core::DataSpec>{core::provide<V0>(),
                                             core::provide<V1>()}));
  const auto sink = g.add(make_sink<V0>());
  g.connect(src, sink);
  const vfy::Report report = vfy::verify(g);
  ASSERT_EQ(report.by_rule("PPV003").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV003")[0]->severity, vfy::Severity::kWarning);
  EXPECT_NE(report.by_rule("PPV003")[0]->message.find("V1"),
            std::string::npos);
}

TEST(DeadOutput, DanglingProducerIsNote) {
  core::ProcessingGraph g;
  g.add(make_source<V0>());
  const vfy::Report report = vfy::verify(g);
  ASSERT_EQ(report.by_rule("PPV003").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV003")[0]->severity, vfy::Severity::kNote);
}

TEST(DeadOutput, FullyConsumedOutputsAreClean) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto sink = g.add(make_sink<V0>());
  g.connect(src, sink);
  EXPECT_TRUE(vfy::verify(g).by_rule("PPV003").empty());
}

// --- PPV004 unreachable components -----------------------------------------

TEST(Unreachable, SourcelessSubgraphWarns) {
  // A transform with only an optional input heads a subgraph no source
  // feeds. PPV001 stays silent (nothing mandatory is starved), so this is
  // PPV004's catch.
  core::ProcessingGraph g;
  const auto head = g.add(std::make_shared<core::LambdaComponent>(
      "OptionalHead",
      std::vector<core::InputRequirement>{
          core::require<V0>("", /*optional=*/true)},
      std::vector<core::DataSpec>{core::provide<V1>()}, nullptr));
  const auto sink = g.add(make_sink<V1>());
  g.connect(head, sink);
  const vfy::Report report = vfy::verify(g);
  EXPECT_EQ(report.by_rule("PPV004").size(), 2u);  // Head and sink.
  EXPECT_TRUE(report.ok());
}

TEST(Unreachable, SourceFedChainIsClean) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto mid = g.add(make_transform<V0, V1>());
  const auto sink = g.add(make_sink<V1>());
  g.connect(src, mid);
  g.connect(mid, sink);
  EXPECT_TRUE(vfy::verify(g).by_rule("PPV004").empty());
}

TEST(Unreachable, FullyStarvedNodeIsLeftToPPV001) {
  core::ProcessingGraph g;
  g.add(make_sink<V0>());
  const vfy::Report report = vfy::verify(g);
  EXPECT_TRUE(report.by_rule("PPV004").empty());
  EXPECT_EQ(report.by_rule("PPV001").size(), 1u);
}

// --- PPV005 merge fan-in ---------------------------------------------------

TEST(MergeFanIn, SingleInputFusionIsNote) {
  vfy::GraphModel model;
  model.nodes.push_back(node(0, "src", {}, {core::provide<V0>()}));
  vfy::NodeModel fusion =
      node(1, "fusion", {core::require<V0>()}, {core::provide<V0>()});
  fusion.is_merge = true;
  model.nodes.push_back(fusion);
  model.edges.push_back({0, 1, false});
  const vfy::Report report = vfy::verify_model(model);
  ASSERT_EQ(report.by_rule("PPV005").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV005")[0]->severity, vfy::Severity::kNote);
}

TEST(MergeFanIn, MultiInputFusionIsClean) {
  vfy::GraphModel model;
  model.nodes.push_back(node(0, "a", {}, {core::provide<V0>()}));
  model.nodes.push_back(node(1, "b", {}, {core::provide<V0>()}));
  vfy::NodeModel fusion =
      node(2, "fusion", {core::require<V0>()}, {core::provide<V0>()});
  fusion.is_merge = true;
  model.nodes.push_back(fusion);
  model.edges.push_back({0, 2, false});
  model.edges.push_back({1, 2, false});
  EXPECT_TRUE(vfy::verify_model(model).by_rule("PPV005").empty());
}

TEST(MergeFanIn, InterleavingIntoNonMergingTransformWarns) {
  core::ProcessingGraph g;
  const auto a = g.add(make_source<V0>("A"));
  const auto b = g.add(make_source<V0>("B"));
  const auto mid = g.add(make_transform<V0, V1>());
  const auto sink = g.add(make_sink<V1>());
  g.connect(a, mid);
  g.connect(b, mid);
  g.connect(mid, sink);
  const vfy::Report report = vfy::verify(g);
  ASSERT_EQ(report.by_rule("PPV005").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV005")[0]->severity, vfy::Severity::kWarning);
}

// --- PPV006 cycles ----------------------------------------------------------

TEST(Cycle, DirectedCycleIsError) {
  // A live ProcessingGraph refuses cycles at connect() time; the model can
  // still represent one (another front end, a bug), and the analyzer must
  // catch it rather than loop.
  vfy::GraphModel model;
  model.nodes.push_back(
      node(0, "a", {core::require<V0>()}, {core::provide<V0>()}));
  model.nodes.push_back(
      node(1, "b", {core::require<V0>()}, {core::provide<V0>()}));
  model.edges.push_back({0, 1, false});
  model.edges.push_back({1, 0, false});
  const vfy::Report report = vfy::verify_model(model);
  ASSERT_EQ(report.by_rule("PPV006").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV006")[0]->severity, vfy::Severity::kError);
  EXPECT_NE(report.by_rule("PPV006")[0]->message.find("a -> b -> a"),
            std::string::npos);
}

TEST(Cycle, AcyclicChainIsClean) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto mid = g.add(make_transform<V0, V1>());
  const auto sink = g.add(make_sink<V1>());
  g.connect(src, mid);
  g.connect(mid, sink);
  EXPECT_TRUE(vfy::verify(g).by_rule("PPV006").empty());
}

// --- PPV007 coordinate-frame consistency ------------------------------------

namespace {

/// src(RssiScan) -> WifiPositioner(db) -> RoomResolver(building) -> sink.
vfy::Report verify_wifi_chain(const std::string& db_frame) {
  static const perpos::locmodel::Building building =
      perpos::locmodel::make_two_room_building();
  static perpos::wifi::FingerprintDatabase db;  // Structure only; no data.
  db.set_frame_id(db_frame);
  core::ProcessingGraph g;
  const auto src = g.add(make_source<perpos::wifi::RssiScan>("Scanner"));
  const auto pos = g.add(std::make_shared<perpos::wifi::WifiPositioner>(db));
  const auto res =
      g.add(std::make_shared<perpos::locmodel::RoomResolver>(building));
  const auto sink = g.add(make_sink<core::RoomFix>());
  g.connect(src, pos);
  g.connect(pos, res);
  g.connect(res, sink);
  return vfy::verify(g);
}

}  // namespace

TEST(FrameMismatch, DifferentBuildingFramesAreAnError) {
  const vfy::Report report = verify_wifi_chain("some-other-building");
  ASSERT_EQ(report.by_rule("PPV007").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV007")[0]->severity, vfy::Severity::kError);
  EXPECT_TRUE(report.by_rule("PPV007")[0]->edge.has_value());
}

TEST(FrameMismatch, MatchingFramesAreClean) {
  const vfy::Report report = verify_wifi_chain(
      perpos::locmodel::make_two_room_building().name());
  EXPECT_TRUE(report.by_rule("PPV007").empty());
}

TEST(FrameMismatch, FrameNeutralEdgesAreExempt) {
  // Components without FrameAware annotations never trigger the rule.
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto sink = g.add(make_sink<V0>());
  g.connect(src, sink);
  EXPECT_TRUE(vfy::verify(g).by_rule("PPV007").empty());
}

// --- PPV008 remoting boundaries ---------------------------------------------

TEST(RemotingBoundary, UncodableCrossHostEdgeIsError) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<UncodableValue>());
  const auto sink = g.add(make_sink<UncodableValue>());
  g.connect(src, sink);
  vfy::Options options;
  options.hosts = {{src, "device"}, {sink, "server"}};
  const vfy::Report report = vfy::verify(g, options);
  ASSERT_EQ(report.by_rule("PPV008").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV008")[0]->severity, vfy::Severity::kError);
}

TEST(RemotingBoundary, CodableCrossHostEdgeIsClean) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<core::PositionFix>());
  const auto sink = g.add(make_sink<core::PositionFix>());
  g.connect(src, sink);
  vfy::Options options;
  options.hosts = {{src, "device"}, {sink, "server"}};
  EXPECT_TRUE(vfy::verify(g, options).by_rule("PPV008").empty());
}

TEST(RemotingBoundary, CoLocatedUncodableEdgeIsClean) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<UncodableValue>());
  const auto sink = g.add(make_sink<UncodableValue>());
  g.connect(src, sink);
  vfy::Options options;
  options.hosts = {{src, "device"}, {sink, "device"}};
  EXPECT_TRUE(vfy::verify(g, options).by_rule("PPV008").empty());
}

// --- PPV009 cross-lane edges -------------------------------------------------

TEST(CrossLane, SynchronousEdgeAcrossLanesIsError) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto sink = g.add(make_sink<V0>());
  g.connect(src, sink);
  vfy::Options options;
  options.lanes = {{src, "lane-a"}, {sink, "lane-b"}};
  const vfy::Report report = vfy::verify(g, options);
  ASSERT_EQ(report.by_rule("PPV009").size(), 1u);
  EXPECT_EQ(report.by_rule("PPV009")[0]->severity, vfy::Severity::kError);
  EXPECT_NE(report.by_rule("PPV009")[0]->message.find("lane-a"),
            std::string::npos);
}

TEST(CrossLane, SameLaneAndUnassignedEdgesAreClean) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source<V0>());
  const auto mid = g.add(make_sink<V0>());
  g.connect(src, mid);
  // Same lane: clean.
  vfy::Options options;
  options.lanes = {{src, "lane-a"}, {mid, "lane-a"}};
  EXPECT_TRUE(vfy::verify(g, options).by_rule("PPV009").empty());
  // One endpoint unassigned: clean (no lane plan claim to contradict).
  options.lanes = {{src, "lane-a"}};
  EXPECT_TRUE(vfy::verify(g, options).by_rule("PPV009").empty());
  // No plan at all: rule stays silent.
  options.lanes = {};
  EXPECT_TRUE(vfy::verify(g, options).by_rule("PPV009").empty());
}

TEST(CrossLane, RemotingEndpointsExemptTheLaneCut) {
  // A deployed link's edges (producer -> RemoteEgress on lane A, and
  // RemoteIngress -> consumer on lane B) never cross lanes themselves; but
  // a model snapshotted mid-plan may still pin an egress and its upstream
  // on different lanes — the link mediates that hop, so no finding.
  vfy::GraphModel model;
  model.nodes.push_back(node(0, "Src", {}, {core::provide<V0>()}));
  model.nodes.push_back(node(1, "RemoteEgress", {core::require_any()}, {}));
  model.edges.push_back({0, 1, false});
  vfy::Options options;
  options.lanes = {{0u, "lane-a"}, {1u, "lane-b"}};
  EXPECT_TRUE(vfy::verify_model(model, options).by_rule("PPV009").empty());
}

// --- Strict deployment (runtime integration of the same check) ---------------

namespace {

class StrictDeployFixture : public ::testing::Test {
 protected:
  StrictDeployFixture()
      : net(scheduler, random), graph(&scheduler.clock()),
        deployment(graph, net) {
    device = deployment.add_host("device");
    server = deployment.add_host("server");
    net.set_link(device, server, {sim::SimTime::from_millis(10), 0.0, {}});
    net.set_link(server, device, {sim::SimTime::from_millis(10), 0.0, {}});
  }

  sim::Scheduler scheduler;
  sim::Random random{7};
  sim::Network net;
  core::ProcessingGraph graph;
  rt::DistributedDeployment deployment;
  sim::HostId device{}, server{};
};

}  // namespace

TEST_F(StrictDeployFixture, StrictDeployRefusesUncodableCut) {
  const auto src = graph.add(make_source<UncodableValue>());
  const auto sink = graph.add(make_sink<UncodableValue>());
  graph.connect(src, sink);
  deployment.assign(src, device);
  deployment.assign(sink, server);
  ASSERT_TRUE(deployment.strict());
  try {
    deployment.deploy();
    FAIL() << "deploy() must refuse an uncodable cut edge";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("PPV008"), std::string::npos);
  }
  // The graph must be left unmodified: no egress/ingress were spliced in.
  EXPECT_EQ(graph.size(), 2u);
}

TEST_F(StrictDeployFixture, NonStrictDeployKeepsOldBehaviour) {
  const auto src = graph.add(make_source<UncodableValue>());
  const auto sink = graph.add(make_sink<UncodableValue>());
  graph.connect(src, sink);
  deployment.assign(src, device);
  deployment.assign(sink, server);
  deployment.set_strict(false);
  EXPECT_NO_THROW(deployment.deploy());
  EXPECT_GT(graph.size(), 2u);  // Remoting pair spliced in.
}

TEST_F(StrictDeployFixture, HostsOfExposesThePartition) {
  const auto src = graph.add(make_source<core::PositionFix>());
  const auto sink = graph.add(make_sink<core::PositionFix>());
  graph.connect(src, sink);
  deployment.assign(src, device);
  deployment.assign(sink, server);
  const auto hosts = vfy::hosts_of(deployment);
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_EQ(hosts.at(src), "device");
  EXPECT_EQ(hosts.at(sink), "server");
  // Round-trip into the analyzer: codable cut, so clean.
  vfy::Options options;
  options.hosts = hosts;
  EXPECT_TRUE(vfy::verify(graph, options).by_rule("PPV008").empty());
}

// --- Config front end (PPV000, names, hosts, analyze-then-instantiate) -------

namespace {

rt::ComponentFactoryRegistry test_registry() {
  rt::ComponentFactoryRegistry registry;
  registry.register_kind("v0-source", [](const auto&) {
    return make_source<V0>("V0Source");
  });
  registry.register_kind("v1-source", [](const auto&) {
    return make_source<V1>("V1Source");
  });
  registry.register_kind("v0-to-v1", [](const auto&) {
    return make_transform<V0, V1>("V0ToV1");
  });
  registry.register_kind("v1-sink",
                         [](const auto&) { return make_sink<V1>("V1Sink"); });
  return registry;
}

}  // namespace

TEST(ConfigVerify, ParseErrorsBecomePPV000WithLine) {
  const vfy::ConfigVerification result = vfy::verify_config(
      "component a v0-source\ncomponent b no-such-kind\n", test_registry());
  ASSERT_EQ(result.report.by_rule("PPV000").size(), 1u);
  const vfy::Diagnostic& d = *result.report.by_rule("PPV000")[0];
  EXPECT_EQ(d.severity, vfy::Severity::kError);
  ASSERT_TRUE(d.line.has_value());
  EXPECT_EQ(*d.line, 2);
  EXPECT_FALSE(result.report.ok());
}

TEST(ConfigVerify, DiagnosticsUseConfigNames) {
  const vfy::ConfigVerification result =
      vfy::verify_config("component lonely v1-sink\n", test_registry());
  ASSERT_EQ(result.report.by_rule("PPV001").size(), 1u);
  EXPECT_EQ(result.report.by_rule("PPV001")[0]->component_name, "lonely");
}

TEST(ConfigVerify, HostLinesFeedTheRemotingRule) {
  const std::string config =
      "component src v0-source\n"
      "component mid v0-to-v1\n"
      "component app v1-sink\n"
      "connect src mid\n"
      "connect mid app\n"
      "host device src mid\n"
      "host server app\n";
  // V1 is a test-local type with no codec coverage: the mid -> app cut
  // must trip PPV008.
  const vfy::ConfigVerification result =
      vfy::verify_config(config, test_registry());
  ASSERT_EQ(result.report.by_rule("PPV008").size(), 1u);
  EXPECT_FALSE(result.report.ok());
}

TEST(ConfigVerify, CleanConfigIsOk) {
  const std::string config =
      "component src v0-source\n"
      "component mid v0-to-v1\n"
      "component app v1-sink\n"
      "connect src mid\n"
      "connect mid app\n";
  const vfy::ConfigVerification result =
      vfy::verify_config(config, test_registry());
  EXPECT_TRUE(result.report.ok());
  EXPECT_EQ(result.report.diagnostics.size(), 0u);
  EXPECT_TRUE(result.assembly.verify_requested == false);
}

TEST(AssembleVerified, ErrorsLeaveTheGraphUntouched) {
  core::ProcessingGraph g;
  const vfy::VerifiedAssembly out = vfy::assemble_verified(
      "component lonely v1-sink\n", test_registry(), g);
  EXPECT_FALSE(out.assembled);
  EXPECT_FALSE(out.result.has_value());
  EXPECT_EQ(g.size(), 0u);
}

TEST(AssembleVerified, CleanConfigAssembles) {
  core::ProcessingGraph g;
  const vfy::VerifiedAssembly out = vfy::assemble_verified(
      "component src v0-source\ncomponent app v1-sink\n"
      "component mid v0-to-v1\nresolve\n",
      test_registry(), g);
  ASSERT_TRUE(out.assembled);
  ASSERT_TRUE(out.result.has_value());
  EXPECT_EQ(g.size(), 3u);
  // And the assembled pipeline actually flows.
  const core::ComponentId src = out.result->report.id_of("src");
  const core::ComponentId app = out.result->report.id_of("app");
  g.component_as<core::SourceComponent>(src)->push(V0{1});
  EXPECT_EQ(g.component_as<core::ApplicationSink>(app)->received(), 1u);
}

// --- Emitters ----------------------------------------------------------------

namespace {

vfy::Report starved_report() {
  core::ProcessingGraph g;
  g.add(make_sink<V0>("App"));
  return vfy::verify(g);
}

}  // namespace

TEST(Emit, TextIsCompilerStyle) {
  const std::string text = vfy::to_text(starved_report());
  EXPECT_NE(text.find("error[PPV001]"), std::string::npos);
  EXPECT_NE(text.find("  hint: "), std::string::npos);
  EXPECT_NE(text.find("1 error(s)"), std::string::npos);
}

TEST(Emit, JsonCarriesRuleSeverityAndSummary) {
  const std::string json = vfy::to_json(starved_report());
  EXPECT_NE(json.find("\"rule\":\"PPV001\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"summary\":{\"errors\":1"), std::string::npos);
}

TEST(Emit, JsonEscapesSpecials) {
  vfy::Report report;
  vfy::Diagnostic d;
  d.rule_id = "PPV000";
  d.severity = vfy::Severity::kError;
  d.message = "a \"quoted\"\nline\ttab \\ backslash";
  report.diagnostics.push_back(d);
  const std::string json = vfy::to_json(report);
  EXPECT_NE(json.find("a \\\"quoted\\\"\\nline\\ttab \\\\ backslash"),
            std::string::npos);
}

TEST(Emit, SarifGolden) {
  // Exact-output golden for the SARIF emitter against a one-rule registry
  // and a fully pinned diagnostic. Structural drift (schema URL, required
  // properties, location shape) must show up here as a diff.
  class GoldenRule final : public vfy::Rule {
   public:
    std::string_view id() const noexcept override { return "PPV001"; }
    std::string_view name() const noexcept override {
      return "requirement-starvation";
    }
    std::string_view description() const noexcept override {
      return "a mandatory input nothing satisfies";
    }
    vfy::Severity default_severity() const noexcept override {
      return vfy::Severity::kError;
    }
    void check(const vfy::GraphModel&, const vfy::Options&,
               vfy::Report&) const override {}
  };
  vfy::RuleRegistry registry;
  registry.add(std::make_unique<GoldenRule>());

  vfy::Report report;
  vfy::Diagnostic d;
  d.rule_id = "PPV001";
  d.severity = vfy::Severity::kError;
  d.message = "input 'PositionFix' of 'app' is starved.";
  d.component = 7;
  d.component_name = "app";
  d.fix_hint = "connect a producer.";
  report.diagnostics.push_back(d);

  const std::string expected =
      "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/"
      "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
      "\"name\":\"perpos-verify\","
      "\"informationUri\":\"https://example.invalid/perpos\",\"rules\":["
      "{\"id\":\"PPV001\",\"name\":\"requirement-starvation\","
      "\"shortDescription\":{\"text\":\"a mandatory input nothing "
      "satisfies\"},\"defaultConfiguration\":{\"level\":\"error\"}}]}},"
      "\"results\":[{\"ruleId\":\"PPV001\",\"ruleIndex\":0,"
      "\"level\":\"error\",\"message\":{\"text\":\"input 'PositionFix' of "
      "'app' is starved. Hint: connect a producer.\"},\"locations\":[{"
      "\"physicalLocation\":{\"artifactLocation\":{\"uri\":"
      "\"examples/configs/pipeline.conf\"},\"region\":{\"startLine\":1}},"
      "\"logicalLocations\":[{\"name\":\"app\",\"kind\":\"member\"}]}]}]}]}";
  EXPECT_EQ(vfy::to_sarif(report, registry, "examples/configs/pipeline.conf"),
            expected);
}

TEST(Emit, SarifWithoutArtifactOmitsPhysicalLocation) {
  const std::string sarif = vfy::to_sarif(
      starved_report(), vfy::RuleRegistry::default_catalog());
  EXPECT_EQ(sarif.find("physicalLocation"), std::string::npos);
  EXPECT_NE(sarif.find("logicalLocations"), std::string::npos);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
}

// --- Property: the analyzer's verdict predicts runtime behaviour --------------

TEST(Property, FindingFreeGraphsRunWithoutRejectedDeliveries) {
  // For random graphs assembled from typed sources, transforms and sinks:
  // whenever the analyzer reports neither errors nor warnings, pushing
  // samples through every source must cause zero rejected deliveries
  // (the runtime counter behind requirement mismatches). This ties the
  // static rules to the dynamic failure mode they claim to predict.
  int clean_graphs = 0;
  for (unsigned seed = 0; seed < 40; ++seed) {
    std::mt19937 rng(seed);
    auto chance = [&](double p) {
      return std::uniform_real_distribution<>(0.0, 1.0)(rng) < p;
    };
    auto pick = [&](int n) {
      return std::uniform_int_distribution<>(0, n - 1)(rng);
    };

    core::ProcessingGraph g;
    g.enable_observability();
    std::vector<core::ComponentId> order;
    std::vector<core::ComponentId> sources;
    std::vector<std::function<void()>> pushers;

    const int n_sources = 1 + pick(2);
    for (int i = 0; i < n_sources; ++i) {
      switch (pick(3)) {
        case 0: {
          auto s = make_source<V0>("S0");
          const auto id = g.add(s);
          pushers.push_back([s] { s->push(V0{}); });
          order.push_back(id);
          sources.push_back(id);
          break;
        }
        case 1: {
          auto s = make_source<V1>("S1");
          const auto id = g.add(s);
          pushers.push_back([s] { s->push(V1{}); });
          order.push_back(id);
          sources.push_back(id);
          break;
        }
        default: {
          auto s = make_source<V2>("S2");
          const auto id = g.add(s);
          pushers.push_back([s] { s->push(V2{}); });
          order.push_back(id);
          sources.push_back(id);
          break;
        }
      }
    }
    const int n_transforms = pick(4);
    for (int i = 0; i < n_transforms; ++i) {
      const int in = pick(3), out = pick(3);
      std::shared_ptr<core::ProcessingComponent> t;
      if (in == 0 && out == 1) t = make_transform<V0, V1>();
      else if (in == 0 && out == 2) t = make_transform<V0, V2>();
      else if (in == 1 && out == 0) t = make_transform<V1, V0>();
      else if (in == 1 && out == 2) t = make_transform<V1, V2>();
      else if (in == 2 && out == 0) t = make_transform<V2, V0>();
      else if (in == 2 && out == 1) t = make_transform<V2, V1>();
      else continue;  // Same-type pass-throughs add nothing here.
      order.push_back(g.add(t));
    }
    const int n_sinks = 1 + pick(2);
    std::vector<std::shared_ptr<core::ApplicationSink>> sinks;
    for (int i = 0; i < n_sinks; ++i) {
      std::shared_ptr<core::ApplicationSink> sink;
      switch (pick(3)) {
        case 0: sink = make_sink<V0>(); break;
        case 1: sink = make_sink<V1>(); break;
        default: sink = make_sink<V2>(); break;
      }
      sinks.push_back(sink);
      order.push_back(g.add(sink));
    }

    // Random forward edges; connect() rejects unrealizable ones, which is
    // part of the territory the analyzer must cope with.
    for (std::size_t i = 0; i < order.size(); ++i) {
      for (std::size_t j = i + 1; j < order.size(); ++j) {
        if (!chance(0.5)) continue;
        try {
          g.connect(order[i], order[j]);
        } catch (const std::exception&) {
          // Unrealizable or duplicate — skip.
        }
      }
    }

    const vfy::Report report = vfy::verify(g);
    if (!report.ok() || report.warnings() > 0) continue;
    ++clean_graphs;

    for (const auto& push : pushers) {
      push();
    }
    std::uint64_t rejected = 0;
    for (const auto& counter : g.metrics_registry()->snapshot().counters) {
      if (counter.name == "perpos_component_rejected_total") {
        rejected += counter.value;
      }
    }
    EXPECT_EQ(rejected, 0u) << "seed " << seed << ":\n"
                            << vfy::to_text(report);
    // Liveness: a finding-free verdict also implies every application sink
    // is fed (PPV001 covers its input, PPV004 its reachability).
    for (const auto& sink : sinks) {
      EXPECT_GE(sink->received(), 1u)
          << "seed " << seed << ":\n" << vfy::to_text(report);
    }
  }
  // The generator must actually exercise the clean path.
  EXPECT_GT(clean_graphs, 0);
}
