// Tests for the runtime Graph Sanitizer (perpos::sanitize): the chaos
// scenarios of the PPS rule family — lane hijack, clock regression,
// emission-depth blowup, queue watermarks, pool hygiene — plus the
// PERPOS_SANITIZE environment mode and the static+runtime mixed SARIF
// report.

#include "perpos/core/components.hpp"
#include "perpos/core/graph.hpp"
#include "perpos/exec/engine.hpp"
#include "perpos/sim/clock.hpp"
#include "perpos/sanitize/sanitizer.hpp"
#include "perpos/verify/emit.hpp"
#include "perpos/verify/verify.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace core = perpos::core;
namespace exec = perpos::exec;
namespace san = perpos::sanitize;
namespace sim = perpos::sim;
namespace vfy = perpos::verify;

namespace {

struct V0 {
  int value = 0;
};

std::shared_ptr<core::SourceComponent> make_source() {
  return std::make_shared<core::SourceComponent>(
      "Src", std::vector<core::DataSpec>{core::provide<V0>()});
}

std::shared_ptr<core::ApplicationSink> make_sink(std::string name = "Sink") {
  return std::make_shared<core::ApplicationSink>(
      std::move(name),
      std::vector<core::InputRequirement>{core::require<V0>()});
}

/// A clock that runs backwards: each read returns an earlier time than the
/// previous one — the temporal fault PPS002 exists to catch.
class BackwardsClock final : public sim::Clock {
 public:
  sim::SimTime now() const noexcept override {
    t_ = t_ - sim::SimTime::from_millis(10);
    return t_;
  }

 private:
  mutable sim::SimTime t_ = sim::SimTime::from_seconds(100.0);
};

bool has_rule(const vfy::Report& report, const std::string& rule) {
  return !report.by_rule(rule).empty();
}

}  // namespace

// --- PPS001 lane ownership ---------------------------------------------------

TEST(Sanitize, ForeignThreadDispatchIsCaught) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source());
  const auto sink = g.add(make_sink());
  g.connect(src, sink);

  san::GraphSanitizer sanitizer;
  sanitizer.attach(g);
  sanitizer.bind_to_current_thread();

  // Well-behaved dispatch from the bound thread: silent.
  g.component_as<core::SourceComponent>(src)->push(V0{1});
  EXPECT_EQ(sanitizer.violations(), 0u);

  // The lane hijack: another thread drives the same graph.
  std::thread hijacker(
      [&g, src] { g.component_as<core::SourceComponent>(src)->push(V0{2}); });
  hijacker.join();

  const vfy::Report report = sanitizer.report();
  ASSERT_TRUE(has_rule(report, "PPS001"));
  EXPECT_EQ(report.by_rule("PPS001")[0]->severity, vfy::Severity::kError);
  EXPECT_FALSE(report.ok());
}

TEST(Sanitize, FirstUseBindingAcceptsASingleThread) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source());
  const auto sink = g.add(make_sink());
  g.connect(src, sink);

  san::GraphSanitizer sanitizer;  // bind_on_first_use = true.
  sanitizer.attach(g);
  for (int i = 0; i < 10; ++i) {
    g.component_as<core::SourceComponent>(src)->push(V0{i});
  }
  EXPECT_EQ(sanitizer.violations(), 0u);
}

// --- PPS002 time regression --------------------------------------------------

TEST(Sanitize, BackwardsClockIsCaught) {
  BackwardsClock clock;
  core::ProcessingGraph g(&clock);
  const auto src = g.add(make_source());
  const auto sink = g.add(make_sink());
  g.connect(src, sink);

  san::GraphSanitizer sanitizer;
  sanitizer.attach(g);
  g.component_as<core::SourceComponent>(src)->push(V0{1});
  g.component_as<core::SourceComponent>(src)->push(V0{2});

  const vfy::Report report = sanitizer.report();
  ASSERT_TRUE(has_rule(report, "PPS002"));
  EXPECT_EQ(report.by_rule("PPS002")[0]->severity, vfy::Severity::kWarning);
  // Dedupe: a clock stuck in reverse reports once per producer, not once
  // per sample.
  g.component_as<core::SourceComponent>(src)->push(V0{3});
  EXPECT_EQ(sanitizer.report().by_rule("PPS002").size(), 1u);
}

TEST(Sanitize, MonotonicClockIsClean) {
  sim::SimClock clock;
  core::ProcessingGraph g(&clock);
  const auto src = g.add(make_source());
  const auto sink = g.add(make_sink());
  g.connect(src, sink);

  san::GraphSanitizer sanitizer;
  sanitizer.attach(g);
  for (int i = 0; i < 5; ++i) {
    clock.advance_to(sim::SimTime::from_millis(i * 100));
    g.component_as<core::SourceComponent>(src)->push(V0{i});
  }
  EXPECT_FALSE(has_rule(sanitizer.report(), "PPS002"));
}

// --- PPS004 emission-depth blowup ---------------------------------------------

TEST(Sanitize, CascadeBlowupIsCaughtAndDeduped) {
  // One emission fanning out into 12 deliveries with a cascade bound of 8:
  // the blowup fires PPS004. Re-triggering the same blowup must not grow
  // the report — violations dedupe per (rule, site).
  core::ProcessingGraph g;
  const auto src = g.add(make_source());
  for (int i = 0; i < 12; ++i) {
    const auto sink = g.add(make_sink("App" + std::to_string(i)));
    g.connect(src, sink);
  }

  san::SanitizerConfig config;
  config.max_cascade = 8;
  san::GraphSanitizer sanitizer(config);
  sanitizer.attach(g);
  g.component_as<core::SourceComponent>(src)->push(V0{1});

  const vfy::Report first = sanitizer.report();
  ASSERT_GE(first.by_rule("PPS004").size(), 1u);
  EXPECT_EQ(first.by_rule("PPS004")[0]->severity, vfy::Severity::kError);

  g.component_as<core::SourceComponent>(src)->push(V0{2});
  EXPECT_EQ(sanitizer.report().by_rule("PPS004").size(),
            first.by_rule("PPS004").size());
}

TEST(Sanitize, BoundedCascadeIsClean) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source());
  for (int i = 0; i < 4; ++i) {
    const auto sink = g.add(make_sink("App" + std::to_string(i)));
    g.connect(src, sink);
  }
  san::SanitizerConfig config;
  config.max_cascade = 8;
  san::GraphSanitizer sanitizer(config);
  sanitizer.attach(g);
  g.component_as<core::SourceComponent>(src)->push(V0{1});
  EXPECT_EQ(sanitizer.violations(), 0u);
}

// --- PPS003 pool double release ----------------------------------------------

TEST(Sanitize, PoolDoubleReleaseBecomesADiagnostic) {
  core::ProcessingGraph g;
  san::GraphSanitizer sanitizer;
  sanitizer.attach(g);
  // The pool reports through the sentry seam; exercise the seam directly.
  static_cast<core::GraphSentry&>(sanitizer).on_pool_double_release();
  const vfy::Report report = sanitizer.report();
  ASSERT_TRUE(has_rule(report, "PPS003"));
  EXPECT_EQ(report.by_rule("PPS003")[0]->severity, vfy::Severity::kError);
}

// --- PPS005 queue watermarks -------------------------------------------------

TEST(Sanitize, EngineLaneWatermarkFires) {
  exec::ExecutionEngine engine(0);  // Inline mode: tasks queue until drained.
  const exec::LaneId lane = engine.create_lane("tracker-1");

  san::GraphSanitizer sanitizer;
  sanitizer.watch_engine(engine, /*limit=*/3);
  for (int i = 0; i < 8; ++i) {
    engine.post(lane, [] {});
  }
  engine.run_until_idle();

  const vfy::Report report = sanitizer.report();
  ASSERT_EQ(report.by_rule("PPS005").size(), 1u);
  EXPECT_NE(report.by_rule("PPS005")[0]->message.find("tracker-1"),
            std::string::npos);
}

TEST(Sanitize, DispatchQueueWatermarkFires) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source());
  for (int i = 0; i < 12; ++i) {
    const auto sink = g.add(make_sink("App" + std::to_string(i)));
    g.connect(src, sink);
  }
  san::SanitizerConfig config;
  config.max_queue_depth = 4;  // 12 queued deliveries blow through this.
  san::GraphSanitizer sanitizer(config);
  sanitizer.attach(g);
  g.component_as<core::SourceComponent>(src)->push(V0{1});
  EXPECT_TRUE(has_rule(sanitizer.report(), "PPS005"));
}

// --- Lifecycle, report mixing, environment mode -------------------------------

TEST(Sanitize, DetachStopsObservation) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source());
  const auto sink = g.add(make_sink());
  g.connect(src, sink);

  san::GraphSanitizer sanitizer;
  sanitizer.attach(g);
  EXPECT_EQ(g.sentry(), &sanitizer);
  sanitizer.detach();
  EXPECT_EQ(g.sentry(), nullptr);

  std::thread foreign(
      [&g, src] { g.component_as<core::SourceComponent>(src)->push(V0{1}); });
  foreign.join();
  EXPECT_EQ(sanitizer.violations(), 0u);
}

// --- PPS006 mutation during drain --------------------------------------------

TEST(Sanitize, MutationWithTasksInFlightIsCaught) {
  exec::ExecutionEngine engine(0);  // Inline: posted tasks stay queued.
  const auto lane = engine.create_lane();
  core::ProcessingGraph g;
  const auto src = g.add(make_source());
  g.connect(src, g.add(make_sink()));

  san::GraphSanitizer sanitizer;
  sanitizer.attach(g);
  sanitizer.watch_engine(engine);
  sanitizer.unbind_thread();

  engine.post(lane, [] {});  // One runnable task: the lane is mid-drain.
  g.add(make_sink("Late"));  // Mutation races the drain.
  EXPECT_TRUE(has_rule(sanitizer.report(), "PPS006"));

  engine.run_until_idle();
}

TEST(Sanitize, MutationBehindAFenceIsClean) {
  exec::ExecutionEngine engine(0);
  const auto lane = engine.create_lane();
  core::ProcessingGraph g;
  const auto src = g.add(make_source());
  g.connect(src, g.add(make_sink()));

  san::GraphSanitizer sanitizer;
  sanitizer.attach(g);
  sanitizer.watch_engine(engine);
  sanitizer.unbind_thread();

  engine.post(lane, [] {});
  engine.fence(lane);  // Held tasks leave `outstanding` — proper quiesce.
  g.add(make_sink("Late"));
  EXPECT_FALSE(has_rule(sanitizer.report(), "PPS006"));
  engine.unfence(lane);
  engine.run_until_idle();
}

TEST(Sanitize, MutationInsideQuiesceWindowIsExempt) {
  exec::ExecutionEngine engine(0);
  const auto lane = engine.create_lane();
  core::ProcessingGraph g;
  const auto src = g.add(make_source());
  g.connect(src, g.add(make_sink()));

  san::GraphSanitizer sanitizer;
  sanitizer.attach(g);
  sanitizer.watch_engine(engine);
  sanitizer.unbind_thread();

  engine.post(lane, [] {});  // Runnable work NOT behind a fence...
  sanitizer.begin_quiesce();
  sanitizer.begin_quiesce();  // Windows nest.
  g.add(make_sink("Late"));   // ...but the protocol vouches for this one.
  sanitizer.end_quiesce();
  g.add(make_sink("Later"));  // Still inside the outer window.
  sanitizer.end_quiesce();
  EXPECT_FALSE(has_rule(sanitizer.report(), "PPS006"));

  g.add(make_sink("TooLate"));  // Window closed: this one is a race.
  EXPECT_TRUE(has_rule(sanitizer.report(), "PPS006"));
  engine.run_until_idle();
}

TEST(Sanitize, TeardownChurnWhileFlightRecorderDumps) {
  // Dump handlers iterate merged_events() while worker lanes are still
  // recording into the ring and whole graphs are being torn down; the
  // recorder must stay internally consistent through the churn.
  exec::ExecutionEngine engine(4);
  perpos::obs::FlightRecorder recorder(128);
  std::atomic<std::size_t> dumped_events{0};
  recorder.set_dump_handler(
      [&](const std::string&, const perpos::obs::FlightRecorder& r) {
        dumped_events += r.merged_events().size();
      });

  struct ChurnRig {
    core::ProcessingGraph graph;
    core::SourceComponent* source = nullptr;
  };
  constexpr int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) {
    auto rig = std::make_shared<ChurnRig>();
    const auto src = rig->graph.add(make_source());
    rig->graph.connect(src, rig->graph.add(make_sink()));
    const auto ring =
        recorder.add_lane("churn-" + std::to_string(round));
    rig->graph.set_flight_recorder(&recorder, ring,
                                   static_cast<std::uint32_t>(round));
    rig->source = rig->graph.component_as<core::SourceComponent>(src);
    auto lane = engine.executor(engine.create_lane());
    for (int i = 0; i < 10; ++i) {
      lane([rig] { rig->source->push(V0{1}); });
    }
    recorder.trigger("churn round " + std::to_string(round));
    // Teardown on the owning lane while other lanes still drain and dump.
    lane([rig = std::move(rig)]() mutable { rig.reset(); });
  }
  engine.run_until_idle();
  EXPECT_EQ(recorder.triggers(), static_cast<std::uint64_t>(kRounds));
  EXPECT_GT(dumped_events.load(), 0u);
}

TEST(Sanitize, ClearResetsFindingsAndDedupe) {
  core::ProcessingGraph g;
  san::GraphSanitizer sanitizer;
  sanitizer.attach(g);
  static_cast<core::GraphSentry&>(sanitizer).on_pool_double_release();
  EXPECT_EQ(sanitizer.violations(), 1u);
  sanitizer.clear();
  EXPECT_EQ(sanitizer.violations(), 0u);
  static_cast<core::GraphSentry&>(sanitizer).on_pool_double_release();
  EXPECT_EQ(sanitizer.violations(), 1u);  // Dedupe key was cleared too.
}

TEST(Sanitize, MixedStaticAndRuntimeSarifReport) {
  // The acceptance scenario: seed several runtime violations, combine the
  // sanitizer's findings with a static analysis of the same graph, and
  // emit ONE SARIF report carrying both PPV and PPS results with rule
  // metadata resolved from the shared catalog.
  BackwardsClock clock;
  core::ProcessingGraph g(&clock);
  const auto src = g.add(make_source());
  for (int i = 0; i < 12; ++i) {
    const auto sink = g.add(make_sink("App" + std::to_string(i)));
    g.connect(src, sink);
  }
  g.add(make_sink("Starved"));  // Static finding: PPV001.

  san::SanitizerConfig config;
  config.max_cascade = 8;
  san::GraphSanitizer sanitizer(config);
  sanitizer.attach(g);
  sanitizer.bind_to_current_thread();

  // Chaos: cascade blowup + clock regression from the bound thread...
  g.component_as<core::SourceComponent>(src)->push(V0{1});
  g.component_as<core::SourceComponent>(src)->push(V0{2});
  // ...and a lane hijack from a foreign thread.
  std::thread hijacker(
      [&g, src] { g.component_as<core::SourceComponent>(src)->push(V0{3}); });
  hijacker.join();

  vfy::Report combined = vfy::verify(g);
  const vfy::Report runtime = sanitizer.report();
  ASSERT_TRUE(has_rule(runtime, "PPS001"));
  ASSERT_TRUE(has_rule(runtime, "PPS002"));
  ASSERT_TRUE(has_rule(runtime, "PPS004"));
  combined.diagnostics.insert(combined.diagnostics.end(),
                              runtime.diagnostics.begin(),
                              runtime.diagnostics.end());

  const std::string sarif = vfy::to_sarif(
      combined, vfy::RuleRegistry::default_catalog(), "live:graph");
  EXPECT_NE(sarif.find("\"ruleId\":\"PPV001\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"PPS001\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"PPS002\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"PPS004\""), std::string::npos);
  // The runtime ids resolve against the shared catalog's rule metadata, so
  // each appears both in the rules[] array and in its result.
  EXPECT_NE(sarif.find("\"id\":\"PPS001\""), std::string::npos);
}

TEST(Sanitize, EnvironmentModeInstallsTheSanitizer) {
  core::ProcessingGraph g;
  ::unsetenv("PERPOS_SANITIZE");
  EXPECT_FALSE(san::GraphSanitizer::env_enabled());
  EXPECT_EQ(san::GraphSanitizer::install_from_env(g), nullptr);

  ::setenv("PERPOS_SANITIZE", "graph", 1);
  EXPECT_TRUE(san::GraphSanitizer::env_enabled());
  auto installed = san::GraphSanitizer::install_from_env(g);
  ASSERT_NE(installed, nullptr);
  EXPECT_EQ(g.sentry(), installed.get());
  installed.reset();  // Destructor detaches.
  EXPECT_EQ(g.sentry(), nullptr);

  ::setenv("PERPOS_SANITIZE", "foo, graph ,bar", 1);
  EXPECT_TRUE(san::GraphSanitizer::env_enabled());
  ::setenv("PERPOS_SANITIZE", "address", 1);
  EXPECT_FALSE(san::GraphSanitizer::env_enabled());
  ::unsetenv("PERPOS_SANITIZE");
}

// --- Flight-recorder wiring ---------------------------------------------------

TEST(Sanitize, ViolationRecordsFlightEventAndTriggersDump) {
  BackwardsClock clock;
  core::ProcessingGraph g(&clock);
  const auto src = g.add(make_source());
  g.connect(src, g.add(make_sink()));

  perpos::obs::FlightRecorder recorder(64);
  std::vector<std::string> reasons;
  recorder.set_dump_handler(
      [&](const std::string& reason, const perpos::obs::FlightRecorder&) {
        reasons.push_back(reason);
      });

  san::GraphSanitizer sanitizer;
  sanitizer.set_flight_recorder(&recorder);
  sanitizer.attach(g);
  g.component_as<core::SourceComponent>(src)->push(V0{1});
  g.component_as<core::SourceComponent>(src)->push(V0{2});  // Time regressed.

  ASSERT_TRUE(has_rule(sanitizer.report(), "PPS002"));
  bool saw_finding = false;
  for (const auto& e : recorder.merged_events()) {
    if (e.type != perpos::obs::FlightEventType::kSanitizerFinding) continue;
    saw_finding = true;
    EXPECT_NE(std::string(e.detail).find("PPS002"), std::string::npos);
  }
  EXPECT_TRUE(saw_finding);
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_NE(reasons[0].find("PPS002"), std::string::npos);

  // The deduped repeat of the same violation must not re-trigger the dump.
  g.component_as<core::SourceComponent>(src)->push(V0{3});
  EXPECT_EQ(recorder.triggers(), 1u);
}
