// Tests for the Positioning Layer: criteria-based provider selection,
// push/pull delivery, proximity notifications, targets and k-nearest.

#include "perpos/core/channel.hpp"
#include "perpos/core/components.hpp"
#include "perpos/core/graph_dump.hpp"
#include "perpos/core/positioning.hpp"
#include "perpos/geo/distance.hpp"
#include "perpos/geo/local_frame.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace core = perpos::core;
namespace geo = perpos::geo;
using core::Payload;

namespace {

const geo::GeoPoint kBase{56.1697, 10.1994, 50.0};

core::PositionFix fix_at(double east_m, double north_m, double t_s = 0.0,
                         std::string tech = "GPS") {
  const geo::LocalFrame frame(kBase);
  core::PositionFix fix;
  fix.position = frame.to_geodetic(geo::LocalPoint{east_m, north_m});
  fix.horizontal_accuracy_m = 5.0;
  fix.timestamp = perpos::sim::SimTime::from_seconds(t_s);
  fix.technology = std::move(tech);
  return fix;
}

std::shared_ptr<core::SourceComponent> make_fix_source(std::string kind) {
  return std::make_shared<core::SourceComponent>(
      std::move(kind),
      std::vector<core::DataSpec>{core::provide<core::PositionFix>()});
}

struct Rig {
  core::ProcessingGraph graph;
  core::ChannelManager channels{graph};
  core::PositioningService service{graph, channels};
};

}  // namespace

TEST(Positioning, RequestProviderByType) {
  Rig rig;
  auto source = make_fix_source("GPS");
  rig.graph.add(source);
  core::LocationProvider& provider =
      rig.service.request_provider(core::Criteria{});
  EXPECT_FALSE(provider.last_position().has_value());
  source->push(fix_at(1.0, 2.0));
  ASSERT_TRUE(provider.last_position().has_value());
  EXPECT_EQ(provider.last_position()->technology, "GPS");
}

TEST(Positioning, NoMatchThrows) {
  Rig rig;
  EXPECT_THROW(rig.service.request_provider(core::Criteria{}),
               std::runtime_error);
}

TEST(Positioning, TechnologyCriterionSelectsSource) {
  Rig rig;
  auto gps = make_fix_source("GPS");
  auto wifi = make_fix_source("WiFi");
  const auto gid = rig.graph.add(gps);
  const auto wid = rig.graph.add(wifi);
  rig.service.advertise(gid, {"GPS", 8.0, core::Criteria::Power::kHigh});
  rig.service.advertise(wid, {"WiFi", 4.0, core::Criteria::Power::kLow});

  core::Criteria wants_gps;
  wants_gps.technology = "GPS";
  core::LocationProvider& p = rig.service.request_provider(wants_gps);
  EXPECT_EQ(p.advertisement().technology, "GPS");

  gps->push(fix_at(0, 0));
  wifi->push(fix_at(100, 100, 0, "WiFi"));
  EXPECT_EQ(p.last_position()->technology, "GPS");
}

TEST(Positioning, BestAccuracyWinsWithoutTechnology) {
  Rig rig;
  const auto gid = rig.graph.add(make_fix_source("GPS"));
  const auto wid = rig.graph.add(make_fix_source("WiFi"));
  rig.service.advertise(gid, {"GPS", 8.0, core::Criteria::Power::kHigh});
  rig.service.advertise(wid, {"WiFi", 4.0, core::Criteria::Power::kLow});
  core::LocationProvider& p =
      rig.service.request_provider(core::Criteria{});
  EXPECT_EQ(p.advertisement().technology, "WiFi");
}

TEST(Positioning, AccuracyCriterionFilters) {
  Rig rig;
  const auto gid = rig.graph.add(make_fix_source("GPS"));
  rig.service.advertise(gid, {"GPS", 8.0, core::Criteria::Power::kHigh});
  core::Criteria strict;
  strict.horizontal_accuracy_m = 5.0;
  EXPECT_THROW(rig.service.request_provider(strict), std::runtime_error);
}

TEST(Positioning, PowerCriterionFilters) {
  Rig rig;
  const auto gid = rig.graph.add(make_fix_source("GPS"));
  rig.service.advertise(gid, {"GPS", 8.0, core::Criteria::Power::kHigh});
  core::Criteria low_power;
  low_power.max_power = core::Criteria::Power::kLow;
  EXPECT_THROW(rig.service.request_provider(low_power), std::runtime_error);
}

TEST(Positioning, PushListenersReceiveFixes) {
  Rig rig;
  auto source = make_fix_source("GPS");
  rig.graph.add(source);
  core::LocationProvider& p = rig.service.request_provider(core::Criteria{});
  int received = 0;
  p.add_listener([&](const core::PositionFix&, const core::Sample&) {
    ++received;
  });
  source->push(fix_at(0, 0));
  source->push(fix_at(1, 1));
  EXPECT_EQ(received, 2);
}

TEST(Positioning, RemoveListenerStopsDelivery) {
  Rig rig;
  auto source = make_fix_source("GPS");
  rig.graph.add(source);
  core::LocationProvider& p = rig.service.request_provider(core::Criteria{});
  int received = 0;
  const auto id = p.add_listener(
      [&](const core::PositionFix&, const core::Sample&) { ++received; });
  source->push(fix_at(0, 0));
  p.remove_listener(id);
  source->push(fix_at(1, 1));
  EXPECT_EQ(received, 1);
}

TEST(Positioning, ProximityEnterExit) {
  Rig rig;
  auto source = make_fix_source("GPS");
  rig.graph.add(source);
  core::LocationProvider& p = rig.service.request_provider(core::Criteria{});
  std::vector<bool> events;
  p.add_proximity_listener(kBase, 50.0,
                           [&](bool inside, const core::PositionFix&) {
                             events.push_back(inside);
                           });
  source->push(fix_at(1000.0, 0.0));  // Outside: no event (already out).
  source->push(fix_at(10.0, 0.0));    // Enter.
  source->push(fix_at(20.0, 0.0));    // Still inside: no event.
  source->push(fix_at(2000.0, 0.0));  // Exit.
  EXPECT_EQ(events, (std::vector<bool>{true, false}));
}

TEST(Positioning, RoomFixProviderViaSampleListener) {
  Rig rig;
  auto source = std::make_shared<core::SourceComponent>(
      "Resolver",
      std::vector<core::DataSpec>{core::provide<core::RoomFix>()});
  rig.graph.add(source);
  core::LocationProvider& p = rig.service.request_provider(
      core::Criteria::for_type<core::RoomFix>());
  std::string room;
  p.add_sample_listener([&](const core::Sample& s) {
    if (const auto* r = s.payload.get<core::RoomFix>()) room = r->room;
  });
  core::RoomFix rf;
  rf.building = "B";
  rf.room = "1.107";
  source->push(rf);
  EXPECT_EQ(room, "1.107");
  ASSERT_TRUE(p.last_sample().has_value());
  EXPECT_FALSE(p.last_position().has_value());  // RoomFix is not a PositionFix.
}

TEST(Positioning, TargetsTrackNewestFix) {
  Rig rig;
  auto gps = make_fix_source("GPS");
  auto wifi = make_fix_source("WiFi");
  rig.graph.add(gps);
  const auto wid = rig.graph.add(wifi);
  rig.service.advertise(wid, {"WiFi", 4.0, core::Criteria::Power::kLow});

  core::Criteria gps_c;
  gps_c.technology = "GPS";
  core::Criteria wifi_c;
  wifi_c.technology = "WiFi";
  core::LocationProvider& pg = rig.service.request_provider(gps_c);
  core::LocationProvider& pw = rig.service.request_provider(wifi_c);

  core::Target& target = rig.service.create_target("phone-1");
  target.attach_provider(pg);
  target.attach_provider(pw);

  gps->push(fix_at(0, 0, 1.0));
  wifi->push(fix_at(5, 5, 2.0, "WiFi"));
  ASSERT_TRUE(target.last_position().has_value());
  EXPECT_EQ(target.last_position()->technology, "WiFi");  // Newer.
}

TEST(Positioning, KNearestOrdersByDistance) {
  Rig rig;
  auto s1 = make_fix_source("GPS");
  auto s2 = make_fix_source("GPS");
  auto s3 = make_fix_source("GPS");
  rig.graph.add(s1);
  rig.graph.add(s2);
  rig.graph.add(s3);
  core::Criteria c;
  core::LocationProvider& p1 = rig.service.request_provider(c);
  core::LocationProvider& p2 = rig.service.request_provider(c);
  core::LocationProvider& p3 = rig.service.request_provider(c);
  // Each provider connects to the best source — all identical ads, so all
  // three providers attach to the same first source; push distinct fixes
  // through distinct sources by re-wiring: simpler to just use 3 targets
  // with one provider each via distinct pushes.
  core::Target& near = rig.service.create_target("near");
  core::Target& mid = rig.service.create_target("mid");
  core::Target& far = rig.service.create_target("far");
  near.attach_provider(p1);
  mid.attach_provider(p2);
  far.attach_provider(p3);

  s1->push(fix_at(10, 0));
  s1->push(fix_at(10, 0));
  s1->push(fix_at(10, 0));
  // All providers share the source; to differentiate, push once per
  // provider via direct callbacks is not possible — so accept identical
  // positions and only assert k truncation here.
  const auto nearest = rig.service.k_nearest(kBase, 2);
  EXPECT_EQ(nearest.size(), 2u);
}

TEST(Positioning, KNearestExcludesFixlessTargets) {
  Rig rig;
  auto source = make_fix_source("GPS");
  rig.graph.add(source);
  core::LocationProvider& p = rig.service.request_provider(core::Criteria{});
  core::Target& with_fix = rig.service.create_target("a");
  with_fix.attach_provider(p);
  rig.service.create_target("no-fix");
  source->push(fix_at(3, 4));
  const auto nearest = rig.service.k_nearest(kBase, 10);
  ASSERT_EQ(nearest.size(), 1u);
  EXPECT_EQ(nearest[0].first->name(), "a");
  EXPECT_NEAR(nearest[0].second, 5.0, 0.1);
}

TEST(Positioning, ChannelsVisibleFromProvider) {
  Rig rig;
  auto source = make_fix_source("GPS");
  rig.graph.add(source);
  core::LocationProvider& p = rig.service.request_provider(core::Criteria{});
  source->push(fix_at(0, 0));
  EXPECT_EQ(p.channels().size(), 1u);
}

TEST(Positioning, DumpRendersAllThreeViews) {
  Rig rig;
  auto source = make_fix_source("GPS");
  rig.graph.add(source);
  rig.service.request_provider(core::Criteria{});
  source->push(fix_at(0, 0));

  const std::string psl = core::dump_structure(rig.graph);
  EXPECT_NE(psl.find("GPS"), std::string::npos);
  EXPECT_NE(psl.find("LocationProvider"), std::string::npos);

  const std::string pcl = core::dump_channels(rig.channels);
  EXPECT_NE(pcl.find("GPS-channel"), std::string::npos);

  const std::string pl = core::dump_positioning(rig.service);
  EXPECT_NE(pl.find("provider"), std::string::npos);

  const std::string dot = core::to_dot(rig.graph);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(Positioning, AdvertiseUnknownComponentThrows) {
  Rig rig;
  EXPECT_THROW(rig.service.advertise(42, {}), std::invalid_argument);
}

namespace {

/// A channel feature used to test provider-level feature access.
class MarkerFeature final : public core::ChannelFeature {
 public:
  std::string_view name() const override { return "Marker"; }
  void apply(const core::DataTree&) override { ++applies_; }
  int applies() const noexcept { return applies_; }

 private:
  int applies_ = 0;
};

}  // namespace

TEST(Positioning, ChannelFeatureVisibleThroughProvider) {
  // The paper's key PL property: "all available Channel Features" are
  // accessible in the high-level interaction, time-coupled to positions.
  Rig rig;
  auto source = make_fix_source("GPS");
  const auto src_id = rig.graph.add(source);
  core::LocationProvider& p = rig.service.request_provider(core::Criteria{});

  core::Channel* channel = rig.channels.channel_from_source(src_id);
  ASSERT_NE(channel, nullptr);
  auto marker = std::make_shared<MarkerFeature>();
  rig.channels.attach_feature(*channel, marker);

  source->push(fix_at(0, 0));
  EXPECT_NE(p.feature<MarkerFeature>(), nullptr);
  ASSERT_TRUE(p.last_sample().has_value());
  EXPECT_NE(p.feature<MarkerFeature>(*p.last_sample()), nullptr);

  const core::Sample stale = *p.last_sample();
  source->push(fix_at(1, 1));
  EXPECT_EQ(p.feature<MarkerFeature>(stale), nullptr);  // Time-scoped.
  EXPECT_NE(p.feature<MarkerFeature>(), nullptr);       // Unscoped: fine.
  EXPECT_EQ(marker->applies(), 2);
}
