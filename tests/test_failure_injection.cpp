// Seam/robustness tests: failure injection on the raw byte stream (drops,
// garbling, duplication, reordering) must degrade the pipeline gracefully
// — the checksum layer rejects corrupt sentences, nothing crashes and no
// corrupt positions are emitted.

#include "perpos/core/channel.hpp"
#include "perpos/core/components.hpp"
#include "perpos/geo/distance.hpp"
#include "perpos/obs/metrics.hpp"
#include "perpos/sensors/failure_injection.hpp"
#include "perpos/sensors/gps_sensor.hpp"
#include "perpos/sensors/pipeline_components.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace core = perpos::core;
namespace geo = perpos::geo;
namespace sim = perpos::sim;
namespace sensors = perpos::sensors;

namespace {

struct PipelineRig {
  PipelineRig()
      : frame(geo::GeoPoint{56.1697, 10.1994, 50.0}),
        trajectory(
            sensors::TrajectoryBuilder({0, 0}).walk_to({80, 0}, 1.4).build()),
        graph(&scheduler.clock()) {
    sensors::GpsSensorConfig config;
    config.emit_gsa = false;
    sensor = std::make_shared<sensors::GpsSensor>(scheduler, random,
                                                  trajectory, frame, config);
    parser = std::make_shared<sensors::NmeaParser>();
    sink = std::make_shared<core::ApplicationSink>();
    sensor_id = graph.add(sensor);
    parser_id = graph.add(parser);
    interpreter_id = graph.add(std::make_shared<sensors::NmeaInterpreter>());
    sink_id = graph.add(sink);
    graph.connect(sensor_id, parser_id);
    graph.connect(parser_id, interpreter_id);
    graph.connect(interpreter_id, sink_id);
  }

  void run(double seconds) {
    sensor->start();
    scheduler.run_until(sim::SimTime::from_seconds(seconds));
  }

  sim::Scheduler scheduler;
  sim::Random random{42};
  geo::LocalFrame frame;
  sensors::Trajectory trajectory;
  core::ProcessingGraph graph;
  std::shared_ptr<sensors::GpsSensor> sensor;
  std::shared_ptr<sensors::NmeaParser> parser;
  std::shared_ptr<core::ApplicationSink> sink;
  core::ComponentId sensor_id{}, parser_id{}, interpreter_id{}, sink_id{};
};

}  // namespace

TEST(FailureFeature, DropsReduceDeliveries) {
  PipelineRig rig;
  auto feature = std::make_shared<sensors::FailureInjectionFeature>(
      sensors::FailureInjectionConfig{0.5, 0.0, 0.0, 0.0}, rig.random);
  rig.graph.attach_feature(rig.sensor_id, feature);
  rig.run(40.0);
  EXPECT_GT(feature->dropped(), 10u);
  // Dropped fragments truncate sentences; the parser discards the rest.
  EXPECT_GT(rig.parser->parse_errors(), 0u);
  EXPECT_LT(rig.sink->received(), rig.sensor->epochs());
}

TEST(FailureFeature, GarblingIsCaughtByChecksums) {
  PipelineRig rig;
  auto feature = std::make_shared<sensors::FailureInjectionFeature>(
      sensors::FailureInjectionConfig{0.0, 0.3, 0.0, 0.0}, rig.random);
  rig.graph.attach_feature(rig.sensor_id, feature);

  // Every delivered fix must still be a plausible position: corrupt
  // sentences never get through the checksum layer.
  int implausible = 0;
  rig.sink->set_callback([&](const core::Sample& s) {
    const auto& fix = s.payload.as<core::PositionFix>();
    const double err = geo::haversine_m(
        fix.position, rig.sensor->truth_at(s.timestamp));
    if (err > 500.0) ++implausible;
  });
  rig.run(60.0);
  EXPECT_GT(feature->garbled(), 5u);
  EXPECT_GT(rig.parser->parse_errors(), 0u);
  EXPECT_EQ(implausible, 0);
  EXPECT_GT(rig.sink->received(), 0u);  // Clean epochs still flow.
}

TEST(FlakyLink, SplicesIntoLivePipeline) {
  PipelineRig rig;
  auto link = std::make_shared<sensors::FlakyLinkComponent>(
      sensors::FailureInjectionConfig{0.1, 0.1, 0.1, 0.1}, rig.random);
  const auto link_id = rig.graph.add(link);
  rig.graph.insert_between(link_id, rig.sensor_id, rig.parser_id);
  rig.run(60.0);
  EXPECT_GT(link->dropped(), 0u);
  EXPECT_GT(link->garbled(), 0u);
  EXPECT_GT(link->duplicated(), 0u);
  EXPECT_GT(link->reordered(), 0u);
  EXPECT_GT(rig.sink->received(), 5u);  // Still functional.
}

TEST(FlakyLink, CleanLinkIsTransparent) {
  PipelineRig clean;
  PipelineRig with_link;
  auto link = std::make_shared<sensors::FlakyLinkComponent>(
      sensors::FailureInjectionConfig{}, with_link.random);
  const auto link_id = with_link.graph.add(link);
  with_link.graph.insert_between(link_id, with_link.sensor_id,
                                 with_link.parser_id);
  clean.run(30.0);
  with_link.run(30.0);
  EXPECT_EQ(clean.sink->received(), with_link.sink->received());
}

TEST(FlakyLink, ReorderingToleratedByStreamParser) {
  // Whole-sentence fragments reordered across sentence boundaries yield
  // parse errors, never crashes or wrong positions.
  PipelineRig rig;
  auto link = std::make_shared<sensors::FlakyLinkComponent>(
      sensors::FailureInjectionConfig{0.0, 0.0, 0.0, 0.5}, rig.random);
  const auto link_id = rig.graph.add(link);
  rig.graph.insert_between(link_id, rig.sensor_id, rig.parser_id);
  EXPECT_NO_THROW(rig.run(60.0));
  EXPECT_GT(link->reordered(), 5u);
}

TEST(FailureFeature, StatsStartAtZero) {
  PipelineRig rig;
  auto feature = std::make_shared<sensors::FailureInjectionFeature>(
      sensors::FailureInjectionConfig{}, rig.random);
  rig.graph.attach_feature(rig.sensor_id, feature);
  rig.run(10.0);
  EXPECT_EQ(feature->dropped(), 0u);
  EXPECT_EQ(feature->garbled(), 0u);
  EXPECT_EQ(rig.parser->parse_errors(), 0u);
}

// --- Observability of injected failures --------------------------------------

namespace {

std::uint64_t failure_count(const perpos::obs::MetricsSnapshot& snap,
                            const std::string& injector,
                            const char* event) {
  for (const auto& c : snap.counters) {
    if (c.name != "perpos_failure_events_total") continue;
    bool injector_match = false, event_match = false;
    for (const auto& [k, v] : c.labels) {
      if (k == "injector" && v == injector) injector_match = true;
      if (k == "event" && v == event) event_match = true;
    }
    if (injector_match && event_match) return c.value;
  }
  return 0;
}

}  // namespace

TEST(FailureObservability, FeatureCountersMatchRegistry) {
  PipelineRig rig;
  rig.graph.enable_observability();
  auto feature = std::make_shared<sensors::FailureInjectionFeature>(
      sensors::FailureInjectionConfig{0.3, 0.3, 0.0, 0.0}, rig.random);
  rig.graph.attach_feature(rig.sensor_id, feature);
  rig.run(40.0);

  ASSERT_GT(feature->dropped(), 0u);
  ASSERT_GT(feature->garbled(), 0u);

  const auto snap = rig.graph.metrics();
  const std::string injector =
      "FailureInjection#" + std::to_string(rig.sensor_id);
  EXPECT_EQ(failure_count(snap, injector, "dropped"), feature->dropped());
  EXPECT_EQ(failure_count(snap, injector, "garbled"), feature->garbled());
}

TEST(FailureObservability, FlakyLinkCountersMatchRegistry) {
  PipelineRig rig;
  rig.graph.enable_observability();
  auto link = std::make_shared<sensors::FlakyLinkComponent>(
      sensors::FailureInjectionConfig{0.1, 0.1, 0.1, 0.1}, rig.random);
  const auto link_id = rig.graph.add(link);
  rig.graph.insert_between(link_id, rig.sensor_id, rig.parser_id);
  rig.run(60.0);

  const auto snap = rig.graph.metrics();
  const std::string injector = "FlakyLink#" + std::to_string(link_id);
  EXPECT_EQ(failure_count(snap, injector, "dropped"), link->dropped());
  EXPECT_EQ(failure_count(snap, injector, "garbled"), link->garbled());
  EXPECT_EQ(failure_count(snap, injector, "duplicated"), link->duplicated());
  EXPECT_EQ(failure_count(snap, injector, "reordered"), link->reordered());
  EXPECT_GT(link->dropped() + link->garbled() + link->duplicated() +
                link->reordered(),
            0u);
}

// --- Conservation: in - dropped + duplicated = out ---------------------------

namespace {

/// Minimal source -> FlakyLink -> sink rig where the sink counts exactly
/// what the link emits (no parser discarding garbled bytes in between).
struct LinkRig {
  explicit LinkRig(sensors::FailureInjectionConfig config)
      : graph(&scheduler.clock()) {
    source = std::make_shared<core::SourceComponent>(
        "Serial",
        std::vector<core::DataSpec>{core::provide<core::RawFragment>()});
    link = std::make_shared<sensors::FlakyLinkComponent>(config, random);
    sink = std::make_shared<core::ApplicationSink>();
    source_id = graph.add(source);
    link_id = graph.add(link);
    sink_id = graph.add(sink);
    graph.connect(source_id, link_id);
    graph.connect(link_id, sink_id);
  }

  void push(int count) {
    for (int i = 0; i < count; ++i) {
      source->push(core::RawFragment{"fragment-" + std::to_string(i)});
    }
  }

  sim::Scheduler scheduler;
  sim::Random random{42};
  core::ProcessingGraph graph;
  std::shared_ptr<core::SourceComponent> source;
  std::shared_ptr<sensors::FlakyLinkComponent> link;
  std::shared_ptr<core::ApplicationSink> sink;
  core::ComponentId source_id{}, link_id{}, sink_id{};
};

}  // namespace

TEST(FlakyLinkConservation, EveryFragmentAccountedForAfterFlush) {
  // Heavy chaos: with reordering enabled the link may end the stream with
  // one fragment still held back. flush() releases it; afterwards the
  // ledger must balance exactly: in - dropped + duplicated = out.
  LinkRig rig({0.2, 0.2, 0.2, 0.5});
  rig.push(500);

  const std::uint64_t expected_out =
      rig.link->received() - rig.link->dropped() + rig.link->duplicated();
  const std::uint64_t held = rig.link->held_pending() ? 1 : 0;
  EXPECT_EQ(rig.sink->received(), expected_out - held);

  rig.link->flush();
  EXPECT_FALSE(rig.link->held_pending());
  EXPECT_EQ(rig.sink->received(), expected_out);
}

TEST(FlakyLinkConservation, RemovalFlushesTheHeldFragment) {
  // reorder_probability = 1 holds every other fragment; an odd-length
  // stream therefore ends with one fragment in limbo. Removing the link
  // must flush it downstream (on_teardown runs before the edges are cut),
  // not drop it on the floor.
  LinkRig rig({0.0, 0.0, 0.0, 1.0});
  rig.push(1);
  EXPECT_TRUE(rig.link->held_pending());
  EXPECT_EQ(rig.sink->received(), 0u);

  rig.graph.remove(rig.link_id);
  EXPECT_FALSE(rig.link->held_pending());
  EXPECT_EQ(rig.sink->received(), 1u);
}

TEST(FlakyLinkConservation, GraphDestructionFlushesTheHeldFragment) {
  auto sink = std::make_shared<core::ApplicationSink>();
  sim::Scheduler scheduler;
  sim::Random random{42};
  auto link = std::make_shared<sensors::FlakyLinkComponent>(
      sensors::FailureInjectionConfig{0.0, 0.0, 0.0, 1.0}, random);
  {
    core::ProcessingGraph graph(&scheduler.clock());
    auto source = std::make_shared<core::SourceComponent>(
        "Serial",
        std::vector<core::DataSpec>{core::provide<core::RawFragment>()});
    const auto source_id = graph.add(source);
    const auto link_id = graph.add(link);
    const auto sink_id = graph.add(sink);
    graph.connect(source_id, link_id);
    graph.connect(link_id, sink_id);
    source->push(core::RawFragment{"last words"});
    EXPECT_TRUE(link->held_pending());
  }
  // The destructor ran every component's teardown hook with edges intact.
  EXPECT_FALSE(link->held_pending());
  ASSERT_EQ(sink->received(), 1u);
  EXPECT_EQ(sink->last()->payload.as<core::RawFragment>().bytes, "last words");
}

TEST(FailureObservability, SilentWhenObservabilityOff) {
  // With observability off the injector still counts locally but the
  // graph has no registry to publish into — and nothing crashes.
  PipelineRig rig;
  auto feature = std::make_shared<sensors::FailureInjectionFeature>(
      sensors::FailureInjectionConfig{0.5, 0.0, 0.0, 0.0}, rig.random);
  rig.graph.attach_feature(rig.sensor_id, feature);
  rig.run(20.0);
  EXPECT_GT(feature->dropped(), 0u);
  EXPECT_TRUE(rig.graph.metrics().empty());
}
