// Tests for the WiFi positioning substrate: propagation model properties,
// fingerprint surveying, k-NN estimation quality and the pipeline
// components.

#include "perpos/core/components.hpp"
#include "perpos/core/graph.hpp"
#include "perpos/locmodel/fixtures.hpp"
#include "perpos/wifi/components.hpp"
#include "perpos/wifi/features.hpp"
#include "perpos/wifi/fingerprint.hpp"
#include "perpos/wifi/signal_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wifi = perpos::wifi;
namespace core = perpos::core;
namespace lm = perpos::locmodel;
namespace sim = perpos::sim;
using wifi::LocalPoint;

namespace {

wifi::SignalModel free_space_model() {
  return wifi::SignalModel({{"AP1", {0.0, 0.0}, -30.0}},
                           wifi::SignalModelConfig{});
}

}  // namespace

TEST(SignalModel, RssiDecreasesWithDistance) {
  const wifi::SignalModel model = free_space_model();
  const wifi::AccessPoint& ap = model.access_points()[0];
  double prev = model.mean_rssi(ap, {1.0, 0.0});
  for (double d : {2.0, 5.0, 10.0, 30.0, 100.0}) {
    const double rssi = model.mean_rssi(ap, {d, 0.0});
    EXPECT_LT(rssi, prev);
    prev = rssi;
  }
}

TEST(SignalModel, ReferenceDistanceGivesTxPower) {
  const wifi::SignalModel model = free_space_model();
  EXPECT_DOUBLE_EQ(model.mean_rssi(model.access_points()[0], {1.0, 0.0}),
                   -30.0);
  // Distances below 1 m clamp to the reference distance.
  EXPECT_DOUBLE_EQ(model.mean_rssi(model.access_points()[0], {0.1, 0.0}),
                   -30.0);
}

TEST(SignalModel, PathLossExponentControlsSlope) {
  wifi::SignalModelConfig steep;
  steep.path_loss_exponent = 4.0;
  wifi::SignalModelConfig shallow;
  shallow.path_loss_exponent = 2.0;
  const wifi::AccessPoint ap{"AP", {0.0, 0.0}, -30.0};
  const wifi::SignalModel m_steep({ap}, steep);
  const wifi::SignalModel m_shallow({ap}, shallow);
  EXPECT_LT(m_steep.mean_rssi(ap, {10.0, 0.0}),
            m_shallow.mean_rssi(ap, {10.0, 0.0}));
  // At 10 m: -30 - 10*n*log10(10) = -30 - 10n.
  EXPECT_DOUBLE_EQ(m_steep.mean_rssi(ap, {10.0, 0.0}), -70.0);
  EXPECT_DOUBLE_EQ(m_shallow.mean_rssi(ap, {10.0, 0.0}), -50.0);
}

TEST(SignalModel, WallsAttenuate) {
  const lm::Building building = lm::make_two_room_building();
  const wifi::AccessPoint ap{"AP", {2.5, 2.5}, -30.0};
  const wifi::SignalModel model({ap}, {}, &building);
  // Same distance, one through the shared wall at y=1 (solid below y=2).
  const double same_room = model.mean_rssi(ap, {2.5, 0.6});
  const double through_wall = model.mean_rssi(ap, {6.3, 1.0});
  const double same_dist_no_wall = model.mean_rssi(ap, {2.5, 4.4});
  EXPECT_LT(through_wall, same_room);
  EXPECT_LT(through_wall, same_dist_no_wall);
}

TEST(SignalModel, SensitivityCutoffLimitsScan) {
  wifi::SignalModelConfig config;
  config.sensitivity_dbm = -60.0;  // Very deaf receiver.
  const wifi::AccessPoint ap{"AP", {0.0, 0.0}, -30.0};
  const wifi::SignalModel model({ap}, config);
  sim::Random random(1);
  const wifi::RssiScan near = model.ideal_scan_at({2.0, 0.0}, {});
  const wifi::RssiScan far = model.ideal_scan_at({500.0, 0.0}, {});
  EXPECT_EQ(near.readings.size(), 1u);
  EXPECT_TRUE(far.readings.empty());
}

TEST(SignalModel, NoisyScansVary) {
  const wifi::SignalModel model = free_space_model();
  sim::Random random(5);
  const auto s1 = model.scan_at({5.0, 5.0}, random, {});
  const auto s2 = model.scan_at({5.0, 5.0}, random, {});
  ASSERT_FALSE(s1.readings.empty());
  ASSERT_FALSE(s2.readings.empty());
  EXPECT_NE(s1.readings[0].rssi_dbm, s2.readings[0].rssi_dbm);
}

TEST(Scan, FindByApId) {
  wifi::RssiScan scan;
  scan.readings = {{"A", -40.0}, {"B", -55.0}};
  ASSERT_NE(scan.find("B"), nullptr);
  EXPECT_DOUBLE_EQ(scan.find("B")->rssi_dbm, -55.0);
  EXPECT_EQ(scan.find("C"), nullptr);
}

class FingerprintFixture : public ::testing::Test {
 protected:
  FingerprintFixture()
      : building(lm::make_office_building()),
        model(wifi::office_access_points(), wifi::SignalModelConfig{},
              &building),
        db(wifi::FingerprintDatabase::survey(model, building, 2.0)) {}

  lm::Building building;
  wifi::SignalModel model;
  wifi::FingerprintDatabase db;
};

TEST_F(FingerprintFixture, SurveyCoversBuilding) {
  EXPECT_GT(db.size(), 100u);  // 40x20 m at 2 m grid.
}

TEST_F(FingerprintFixture, IdealScanResolvesNearTruth) {
  for (const LocalPoint truth :
       {LocalPoint{12.0, 4.0}, LocalPoint{20.0, 10.0}, LocalPoint{36.0, 15.0}}) {
    const auto estimate = db.estimate(model.ideal_scan_at(truth, {}));
    ASSERT_TRUE(estimate.has_value());
    const double err = std::hypot(estimate->point.x - truth.x,
                                  estimate->point.y - truth.y);
    EXPECT_LT(err, 2.5) << "at " << truth.x << "," << truth.y;
  }
}

TEST_F(FingerprintFixture, NoisyScanErrorIsBounded) {
  sim::Random random(17);
  double total_err = 0.0;
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    const LocalPoint truth{4.0 + i * 0.5, 10.0};
    const auto estimate =
        db.estimate(model.scan_at(truth, random, {}));
    ASSERT_TRUE(estimate.has_value());
    total_err += std::hypot(estimate->point.x - truth.x,
                            estimate->point.y - truth.y);
  }
  EXPECT_LT(total_err / n, 6.0);  // Typical indoor WiFi accuracy.
}

TEST_F(FingerprintFixture, EmptyScanYieldsNoEstimate) {
  EXPECT_FALSE(db.estimate(wifi::RssiScan{}).has_value());
}

TEST_F(FingerprintFixture, AccuracyEstimatePositive) {
  const auto estimate = db.estimate(model.ideal_scan_at({10.0, 10.0}, {}));
  ASSERT_TRUE(estimate.has_value());
  EXPECT_GT(estimate->accuracy_m, 0.0);
}

TEST(Fingerprint, SignalDistanceHandlesMissingAps) {
  wifi::RssiScan scan;
  scan.readings = {{"A", -40.0}};
  const std::vector<wifi::RssiReading> ref = {{"A", -40.0}, {"B", -50.0}};
  // Identical on A; B missing from the scan is treated as very weak.
  const double d = wifi::FingerprintDatabase::signal_distance(scan, ref, -95.0);
  EXPECT_GT(d, 0.0);
  const double exact = wifi::FingerprintDatabase::signal_distance(
      wifi::RssiScan{{{"A", -40.0}, {"B", -50.0}}, {}}, ref, -95.0);
  EXPECT_DOUBLE_EQ(exact, 0.0);
}

TEST(Fingerprint, SurveyWithNoiseAveragesOut) {
  const lm::Building building = lm::make_two_room_building();
  const wifi::SignalModel model(
      {{"AP1", {2.0, 2.0}, -30.0}, {"AP2", {8.0, 2.0}, -30.0}},
      wifi::SignalModelConfig{}, &building);
  sim::Random random(3);
  const auto noisy_db = wifi::FingerprintDatabase::survey(
      model, building, 1.0, /*surveys_per_point=*/8, &random);
  const auto ideal_db =
      wifi::FingerprintDatabase::survey(model, building, 1.0);
  ASSERT_EQ(noisy_db.size(), ideal_db.size());
  // The averaged noisy readings should be close to the ideal ones.
  double max_gap = 0.0;
  for (std::size_t i = 0; i < noisy_db.size(); ++i) {
    for (const auto& r : noisy_db.fingerprints()[i].readings) {
      const auto* ideal = ideal_db.fingerprints()[i].readings.data();
      for (std::size_t j = 0; j < ideal_db.fingerprints()[i].readings.size();
           ++j) {
        if (ideal[j].ap_id == r.ap_id) {
          max_gap = std::max(max_gap, std::fabs(ideal[j].rssi_dbm - r.rssi_dbm));
        }
      }
    }
  }
  EXPECT_LT(max_gap, 6.0);
}

TEST_F(FingerprintFixture, PositionerComponentEmitsLocalPosition) {
  core::ProcessingGraph g;
  auto source = std::make_shared<core::SourceComponent>(
      "WiFi", std::vector<core::DataSpec>{core::provide<wifi::RssiScan>()});
  auto sink = std::make_shared<core::ApplicationSink>();
  auto positioner = std::make_shared<wifi::WifiPositioner>(db);
  const auto a = g.add(source);
  const auto p = g.add(positioner);
  const auto z = g.add(sink);
  g.connect(a, p);
  g.connect(p, z);

  source->push(model.ideal_scan_at({12.0, 10.0}, {}));
  ASSERT_TRUE(sink->last().has_value());
  const auto& local = sink->last()->payload.as<lm::LocalPosition>();
  EXPECT_NEAR(local.point.x, 12.0, 3.0);
  EXPECT_NEAR(local.point.y, 10.0, 3.0);

  // An empty scan produces nothing but counts as a failure (seam).
  source->push(wifi::RssiScan{});
  EXPECT_EQ(positioner->failed(), 1u);
  EXPECT_EQ(sink->received(), 1u);
}

TEST_F(FingerprintFixture, LocalToGeoRoundTrips) {
  core::ProcessingGraph g;
  auto source = std::make_shared<core::SourceComponent>(
      "Pos",
      std::vector<core::DataSpec>{core::provide<lm::LocalPosition>()});
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto c = g.add(std::make_shared<wifi::LocalToGeoConverter>(building));
  const auto z = g.add(sink);
  g.connect(a, c);
  g.connect(c, z);

  source->push(lm::LocalPosition{{10.0, 5.0}, 0, 3.0,
                                 sim::SimTime::from_seconds(9.0)});
  ASSERT_TRUE(sink->last().has_value());
  const auto& fix = sink->last()->payload.as<core::PositionFix>();
  EXPECT_EQ(fix.technology, "WiFi");
  EXPECT_DOUBLE_EQ(fix.timestamp.seconds(), 9.0);
  const LocalPoint back = building.frame().to_local(fix.position);
  EXPECT_NEAR(back.x, 10.0, 1e-6);
  EXPECT_NEAR(back.y, 5.0, 1e-6);
}

TEST_F(FingerprintFixture, ApOutageDegradesGracefully) {
  // Disable a corridor AP after the survey: accuracy degrades but the
  // estimator keeps working — the coverage seam of Sec. 4.
  wifi::SignalModel live = model;  // Copy shares AP layout + walls.
  ASSERT_TRUE(live.set_enabled("AP-C12", false));
  EXPECT_FALSE(live.is_enabled("AP-C12"));
  EXPECT_FALSE(live.set_enabled("AP-NOPE", false));

  const LocalPoint truth{12.0, 10.0};  // Right under the dead AP.
  const auto healthy = db.estimate(model.ideal_scan_at(truth, {}));
  const auto degraded = db.estimate(live.ideal_scan_at(truth, {}));
  ASSERT_TRUE(healthy.has_value());
  ASSERT_TRUE(degraded.has_value());
  const double healthy_err = std::hypot(healthy->point.x - truth.x,
                                        healthy->point.y - truth.y);
  const double degraded_err = std::hypot(degraded->point.x - truth.x,
                                         degraded->point.y - truth.y);
  EXPECT_LT(healthy_err, 2.5);
  EXPECT_LT(degraded_err, 12.0);  // Worse but not absurd.

  // Re-enabling restores the scan.
  ASSERT_TRUE(live.set_enabled("AP-C12", true));
  EXPECT_TRUE(live.is_enabled("AP-C12"));
  EXPECT_EQ(live.ideal_scan_at(truth, {}).readings.size(),
            model.ideal_scan_at(truth, {}).readings.size());
}

TEST_F(FingerprintFixture, ScanQualityChannelFeature) {
  // The WiFi channel exposes coverage quality exactly as the GPS channel
  // exposes HDOP — same Channel Feature mechanism, different technology.
  core::ProcessingGraph g;
  core::ChannelManager channels(g);
  auto source = std::make_shared<core::SourceComponent>(
      "WiFi", std::vector<core::DataSpec>{core::provide<wifi::RssiScan>()});
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto p = g.add(std::make_shared<wifi::WifiPositioner>(db));
  const auto z = g.add(sink);
  g.connect(a, p);
  g.connect(p, z);

  auto quality = std::make_shared<wifi::ScanQualityFeature>();
  channels.attach_feature(*channels.channel_from_source(a), quality);

  source->push(model.ideal_scan_at({12.0, 10.0}, {}));
  EXPECT_GE(quality->ap_count(), 3u);
  EXPECT_TRUE(quality->adequate_coverage());
  ASSERT_TRUE(quality->strongest_dbm().has_value());
  EXPECT_GT(*quality->strongest_dbm(), *quality->mean_dbm());

  // Time-scoped retrieval works through the channel, like Likelihood.
  core::Channel* c = channels.channel_from_source(a);
  EXPECT_NE(c->get_feature<wifi::ScanQualityFeature>(*sink->last()), nullptr);

  // A sparse scan (most APs disabled) flips the coverage verdict.
  wifi::SignalModel degraded = model;
  for (const char* ap : {"AP-C12", "AP-C24", "AP-LAB", "AP-S", "AP-N"}) {
    degraded.set_enabled(ap, false);
  }
  source->push(degraded.ideal_scan_at({2.0, 10.0}, {}));
  EXPECT_LE(quality->ap_count(), 2u);
  EXPECT_FALSE(quality->adequate_coverage());
}
