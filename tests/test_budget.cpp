// Tests for the quantitative budget analysis (perpos::verify, budget.hpp):
// interval arithmetic, the calibration table, rate propagation including
// feedback closure, queue and latency bounds, the lane planner, a
// table-driven audit of what the config front end feeds the analysis for
// every standard component kind, and — load-bearing — the cross-validation
// property suite asserting the static queue bounds dominate the runtime
// high-water marks the GraphSanitizer observes under chaos workloads.

#include "perpos/core/components.hpp"
#include "perpos/sanitize/sanitizer.hpp"
#include "perpos/verify/budget.hpp"
#include "perpos/verify/emit.hpp"
#include "perpos/verify/rules.hpp"
#include "perpos/verify/verify.hpp"

#include "standard_registry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <iostream>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <vector>

namespace core = perpos::core;
namespace rt = perpos::runtime;
namespace san = perpos::sanitize;
namespace vfy = perpos::verify;

namespace {

struct V0 {
  int value = 0;
};

std::shared_ptr<core::SourceComponent> make_source(std::string kind = "Src") {
  return std::make_shared<core::SourceComponent>(
      std::move(kind), std::vector<core::DataSpec>{core::provide<V0>()});
}

std::shared_ptr<core::ApplicationSink> make_sink(std::string name = "Sink") {
  return std::make_shared<core::ApplicationSink>(
      std::move(name),
      std::vector<core::InputRequirement>{core::require<V0>()});
}

/// V0 -> V0 transform emitting exactly `factor` samples per input, and
/// declaring exactly that multiplicity to the analyzer — runtime behaviour
/// and static annotation agree by construction, which is what the
/// cross-validation suite varies. Integer factors only: fractional gains
/// are *amortized* (a decimator emits a whole sample every N inputs, not
/// 1/N of a sample per input), so per-event bounds computed from them are
/// steady-state statements, not per-cascade ones.
class Amplifier final : public core::ProcessingComponent {
 public:
  explicit Amplifier(int factor) : factor_(factor) {}

  std::string_view kind() const override { return "Amplifier"; }
  std::vector<core::InputRequirement> input_requirements() const override {
    return {core::require<V0>()};
  }
  std::vector<core::DataSpec> output_capabilities() const override {
    return {core::provide<V0>()};
  }
  double emit_multiplicity() const override {
    return static_cast<double>(factor_);
  }

  void on_input(const core::Sample&) override {
    for (int i = 0; i < factor_; ++i) {
      context().emit(core::Payload::make(V0{}));
    }
  }

 private:
  int factor_;
};

const double kInf = std::numeric_limits<double>::infinity();

/// Minimal hand-built node (mirrors test_verify.cpp's helper).
vfy::NodeModel node(core::ComponentId id, std::string name,
                    std::vector<core::InputRequirement> reqs,
                    std::vector<core::DataSpec> caps) {
  vfy::NodeModel n;
  n.id = id;
  n.name = std::move(name);
  n.kind = n.name;
  n.requirements = std::move(reqs);
  n.capabilities = std::move(caps);
  return n;
}

}  // namespace

// --- Interval arithmetic and the calibration table ---------------------------

TEST(RateInterval, ArithmeticAndScaling) {
  vfy::RateInterval a{1.0, 2.0};
  a += vfy::RateInterval{0.5, 3.0};
  EXPECT_EQ(a, (vfy::RateInterval{1.5, 5.0}));
  EXPECT_EQ(a.scaled(2.0), (vfy::RateInterval{3.0, 10.0}));
  EXPECT_EQ(vfy::RateInterval{}, (vfy::RateInterval{0.0, 0.0}));
}

TEST(Calibration, KnownKindsAndFallbacks) {
  // Pins the calibration keys to the components' kind() strings: a kind
  // rename that silently downgrades a component to the generic transform
  // cost fails here.
  EXPECT_EQ(vfy::calibrated_cost_us("GPS"), 2.0);
  EXPECT_EQ(vfy::calibrated_cost_us("KalmanFilter"), 12.0);
  EXPECT_EQ(vfy::calibrated_cost_us("ParticleFilter"), 45.0);
  EXPECT_EQ(vfy::calibrated_cost_us("WifiPositioner"), 15.0);
  // Unknown interior kind: generic transform estimate.
  const double generic = vfy::calibrated_cost_us("SomethingNew");
  EXPECT_GT(generic, 0.0);
  // Sinks are keyed structurally (ApplicationSink::kind() is the app
  // name), so the sink flag must win over the kind lookup.
  EXPECT_NE(vfy::calibrated_cost_us("SomethingNew", /*sink=*/true), generic);
}

// --- Rate propagation --------------------------------------------------------

TEST(Budget, LinearPipelinePropagatesRatesThroughGains) {
  core::ProcessingGraph g;
  const auto src = g.add(make_source());
  const auto amp = g.add(std::make_shared<Amplifier>(3));
  const auto sink = g.add(make_sink());
  g.connect(src, amp);
  g.connect(amp, sink);

  vfy::Options options;
  vfy::BudgetAnnotation rate;
  rate.rate_lo_hz = 8.0;
  rate.rate_hi_hz = 10.0;
  options.budget.annotations.emplace(src, rate);

  const vfy::BudgetReport report =
      vfy::analyze_budget(vfy::GraphModel::from_graph(g), options);
  const vfy::NodeBudget* a = report.node(amp);
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->in_rate.lo, 8.0);
  EXPECT_DOUBLE_EQ(a->in_rate.hi, 10.0);
  EXPECT_DOUBLE_EQ(a->out_rate.lo, 24.0);
  EXPECT_DOUBLE_EQ(a->out_rate.hi, 30.0);
  const vfy::NodeBudget* s = report.node(sink);
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->in_rate.hi, 30.0);
  EXPECT_EQ(s->out_rate, (vfy::RateInterval{}));  // Sinks emit nothing.
}

TEST(Budget, PinnedInteriorRateOverridesDerivation) {
  // An interior annotation wins over upstream derivation — the knob for
  // "I measured this stage at N Hz, trust me".
  core::ProcessingGraph g;
  const auto src = g.add(make_source());
  const auto amp = g.add(std::make_shared<Amplifier>(3));
  const auto sink = g.add(make_sink());
  g.connect(src, amp);
  g.connect(amp, sink);

  vfy::Options options;
  vfy::BudgetAnnotation pin;
  pin.rate_lo_hz = 5.0;
  pin.rate_hi_hz = 7.0;
  options.budget.annotations.emplace(amp, pin);

  const vfy::BudgetReport report =
      vfy::analyze_budget(vfy::GraphModel::from_graph(g), options);
  EXPECT_DOUBLE_EQ(report.node(amp)->out_rate.hi, 7.0);
  EXPECT_DOUBLE_EQ(report.node(sink)->in_rate.lo, 5.0);
}

TEST(Budget, MergeFanInSumsRates) {
  core::ProcessingGraph g;
  const auto a = g.add(make_source("SrcA"));
  const auto b = g.add(make_source("SrcB"));
  const auto sink = g.add(make_sink());
  g.connect(a, sink);
  g.connect(b, sink);

  vfy::Options options;
  vfy::BudgetAnnotation ra;
  ra.rate_lo_hz = ra.rate_hi_hz = 10.0;
  options.budget.annotations.emplace(a, ra);
  vfy::BudgetAnnotation rb;
  rb.rate_lo_hz = rb.rate_hi_hz = 4.0;
  options.budget.annotations.emplace(b, rb);

  const vfy::BudgetReport report =
      vfy::analyze_budget(vfy::GraphModel::from_graph(g), options);
  EXPECT_DOUBLE_EQ(report.node(sink)->in_rate.hi, 14.0);
}

TEST(Budget, DampedFeedbackClosesWithGeometricFactor) {
  // src -> a, a <-> b with loop gain 0.5: the region's rates close at
  // 1/(1-0.5) = 2x the injected rate. (Hand-built model: a live graph
  // refuses cycles; representing them anyway is the analyzer's job.)
  vfy::GraphModel model;
  model.nodes.push_back(node(1, "src", {}, {core::provide<V0>()}));
  model.nodes[0].rate_lo_hz = model.nodes[0].rate_hi_hz = 8.0;
  model.nodes.push_back(
      node(2, "a", {core::require<V0>()}, {core::provide<V0>()}));
  model.nodes.push_back(
      node(3, "b", {core::require<V0>()}, {core::provide<V0>()}));
  model.nodes[2].emit_per_input = 0.5;
  model.edges.push_back({1, 2});
  model.edges.push_back({2, 3});
  model.edges.push_back({3, 2});

  const vfy::BudgetReport report = vfy::analyze_budget(model, {});
  // a receives 8 from outside, amplified to 16 through the loop closure.
  EXPECT_DOUBLE_EQ(report.node(2)->out_rate.hi, 16.0);
  EXPECT_DOUBLE_EQ(report.node(3)->out_rate.hi, 8.0);
}

TEST(Budget, CriticalFeedbackDivergesToInfinity) {
  vfy::GraphModel model;
  model.nodes.push_back(node(1, "src", {}, {core::provide<V0>()}));
  model.nodes[0].rate_lo_hz = model.nodes[0].rate_hi_hz = 1.0;
  model.nodes.push_back(
      node(2, "a", {core::require<V0>()}, {core::provide<V0>()}));
  model.nodes.push_back(
      node(3, "b", {core::require<V0>()}, {core::provide<V0>()}));
  model.edges.push_back({1, 2});
  model.edges.push_back({2, 3});
  model.edges.push_back({3, 2});  // Gain product 1.0: never drains.

  const vfy::BudgetReport report = vfy::analyze_budget(model, {});
  EXPECT_TRUE(std::isinf(report.node(2)->out_rate.hi));
  EXPECT_TRUE(std::isinf(report.dispatch_queue_bound));
  // JSON has no infinity literal; the convention is the string
  // "unbounded", and the report must embed under to_json's "budget" key.
  const std::string json = vfy::budget_to_json(report);
  EXPECT_NE(json.find("\"unbounded\""), std::string::npos);
  vfy::Report empty;
  const std::string combined = vfy::to_json(empty, &report);
  EXPECT_NE(combined.find("\"budget\":"), std::string::npos);
}

TEST(Budget, PathEnumerationTruncatesAtTheCap) {
  // A chain of 9 diamonds has 2^9 = 512 source->sink paths; enumeration
  // must stop at kMaxPaths and say so.
  vfy::GraphModel model;
  core::ComponentId next = 1;
  const core::ComponentId src = next++;
  model.nodes.push_back(node(src, "src", {}, {core::provide<V0>()}));
  core::ComponentId tail = src;
  for (int d = 0; d < 9; ++d) {
    const core::ComponentId left = next++;
    const core::ComponentId right = next++;
    const core::ComponentId join = next++;
    for (const core::ComponentId id : {left, right, join}) {
      model.nodes.push_back(node(id, "n" + std::to_string(id),
                                 {core::require<V0>()},
                                 {core::provide<V0>()}));
    }
    model.edges.push_back({tail, left});
    model.edges.push_back({tail, right});
    model.edges.push_back({left, join});
    model.edges.push_back({right, join});
    tail = join;
  }
  const core::ComponentId sink = next++;
  model.nodes.push_back(node(sink, "sink", {core::require<V0>()}, {}));
  model.edges.push_back({tail, sink});

  const vfy::BudgetReport report = vfy::analyze_budget(model, {});
  EXPECT_TRUE(report.paths_truncated);
  EXPECT_EQ(report.paths.size(), vfy::kMaxPaths);
  EXPECT_NE(vfy::budget_to_text(report).find("truncated"),
            std::string::npos);
}

// --- The lane planner --------------------------------------------------------

TEST(Planner, SeparatesIndependentPipelinesByWeight) {
  // Two independent pipelines with a 3:1 busy ratio, both serialized on
  // one lane: a 2-lane plan must split them, and the resulting maximum
  // utilization is the heavy pipeline's own. Source costs are pinned to
  // zero so the expected utilizations are exact.
  core::ProcessingGraph g;
  const auto heavy_src = g.add(make_source("Heavy"));
  const auto heavy_sink = g.add(make_sink("HeavyApp"));
  g.connect(heavy_src, heavy_sink);
  const auto light_src = g.add(make_source("Light"));
  const auto light_sink = g.add(make_sink("LightApp"));
  g.connect(light_src, light_sink);

  vfy::Options options;
  for (const auto id : {heavy_src, heavy_sink, light_src, light_sink}) {
    options.lanes.emplace(id, "all");
  }
  vfy::BudgetAnnotation heavy_rate;
  heavy_rate.rate_lo_hz = heavy_rate.rate_hi_hz = 300.0;
  heavy_rate.cost_us = 0.0;
  options.budget.annotations.emplace(heavy_src, heavy_rate);
  vfy::BudgetAnnotation light_rate;
  light_rate.rate_lo_hz = light_rate.rate_hi_hz = 100.0;
  light_rate.cost_us = 0.0;
  options.budget.annotations.emplace(light_src, light_rate);
  vfy::BudgetAnnotation cost;
  cost.cost_us = 1000.0;
  options.budget.annotations.emplace(heavy_sink, cost);
  options.budget.annotations.emplace(light_sink, cost);

  const vfy::GraphModel model = vfy::GraphModel::from_graph(g);
  const vfy::LanePlan plan = vfy::plan_lanes(model, options, 2);
  ASSERT_EQ(plan.lanes.size(), 4u);
  EXPECT_EQ(plan.lanes.at(heavy_src), plan.lanes.at(heavy_sink));
  EXPECT_EQ(plan.lanes.at(light_src), plan.lanes.at(light_sink));
  EXPECT_NE(plan.lanes.at(heavy_src), plan.lanes.at(light_src));
  // before: 0.3 + 0.1 on one lane; after: the heavy pipeline alone.
  EXPECT_NEAR(plan.max_utilization_before, 0.4, 1e-9);
  EXPECT_NEAR(plan.max_utilization_after, 0.3, 1e-9);
}

TEST(Planner, KeepsWeakComponentsIntact) {
  // A connected pipeline cannot be split no matter how many lanes are
  // offered — that would manufacture PPV009 cross-lane edges.
  core::ProcessingGraph g;
  const auto src = g.add(make_source());
  const auto amp = g.add(std::make_shared<Amplifier>(2));
  const auto sink = g.add(make_sink());
  g.connect(src, amp);
  g.connect(amp, sink);

  const vfy::LanePlan plan =
      vfy::plan_lanes(vfy::GraphModel::from_graph(g), {}, 4);
  ASSERT_EQ(plan.lanes.size(), 3u);
  EXPECT_EQ(plan.lanes.at(src), plan.lanes.at(amp));
  EXPECT_EQ(plan.lanes.at(amp), plan.lanes.at(sink));
}

// --- Table-driven kind audit of the config front end -------------------------

TEST(KindAudit, EveryStandardKindFeedsTheQuantitativeModel) {
  // For every kind in the tools' standard registry: instantiate it through
  // the config front end and pin exactly what the quantitative pass sees —
  // emit_per_input, the nominal-rate seed, and the unannotated cost marker.
  // A kind whose multiplicity silently defaults to 1.0 is pinned as such
  // here; giving it a real override must update this table consciously.
  struct Expectation {
    const char* config_kind;
    const char* extra_args;   // Appended to the component line.
    double emit_per_input;
    bool rate_seeded;         // nominal_rate_hz() > 0 seeds rate_lo/hi.
    bool cost_calibrated;     // Kind resolves in the calibration table.
  };
  const Expectation table[] = {
      {"gps-sensor", "", 1.0, true, true},
      {"wifi-scanner", "", 1.0, true, true},
      {"nmea-parser", "", 1.0, false, true},
      {"nmea-interpreter", "", 1.0, false, true},
      {"kalman-filter", "", 1.0, false, true},
      {"wifi-positioner", "", 1.0, false, true},
      {"local-to-geo", "", 1.0, false, true},
      {"room-resolver", "", 1.0, false, true},
      // ApplicationSink: multiplicity 0 (pure sink), costed structurally.
      {"application", " App any", 0.0, false, false},
  };

  perpos::tools::Fixtures fx;
  const rt::ComponentFactoryRegistry registry =
      perpos::tools::standard_registry(fx);
  for (const Expectation& e : table) {
    const std::string text = std::string("component only ") + e.config_kind +
                             e.extra_args + "\n";
    const vfy::ConfigVerification result = vfy::verify_config(text, registry);
    ASSERT_EQ(result.model.nodes.size(), 1u) << e.config_kind;
    const vfy::NodeModel& n = result.model.nodes[0];
    EXPECT_EQ(n.emit_per_input, e.emit_per_input) << e.config_kind;
    EXPECT_EQ(n.rate_hi_hz > 0.0, e.rate_seeded) << e.config_kind;
    EXPECT_EQ(n.rate_lo_hz, n.rate_hi_hz) << e.config_kind;
    // Costs are never seeded by the front end: -1 = "ask the table".
    EXPECT_LT(n.cost_us, 0.0) << e.config_kind;
    const bool sink = n.capabilities.empty();
    const double cost = vfy::calibrated_cost_us(n.kind, sink);
    EXPECT_GT(cost, 0.0) << e.config_kind;
    if (e.cost_calibrated) {
      EXPECT_NE(cost, vfy::calibrated_cost_us("UnknownKind"))
          << e.config_kind << " fell back to the generic transform cost "
          << "(calibration key no longer matches kind() = '" << n.kind
          << "')";
    }
    // And the budget verb must be able to override each of them.
    const vfy::ConfigVerification annotated = vfy::verify_config(
        text + "budget only rate=5..6 cost_us=42\n", registry);
    const vfy::NodeModel& an = annotated.model.nodes[0];
    EXPECT_DOUBLE_EQ(an.rate_lo_hz, 5.0) << e.config_kind;
    EXPECT_DOUBLE_EQ(an.rate_hi_hz, 6.0) << e.config_kind;
    EXPECT_DOUBLE_EQ(an.cost_us, 42.0) << e.config_kind;
  }
}

// --- Cross-validation: static bounds vs. runtime high-water marks ------------
//
// The soundness claim budget.hpp makes: under the drain-between-events
// discipline, the static dispatch-queue bound dominates every queue depth
// and cascade the GraphSanitizer observes at runtime. These tests drive
// live graphs — fixed shapes and randomized chaos workloads — and assert
// the dominance, logging the slack so a bound that drifts toward
// uselessly-loose shows up in the test output.

namespace {

struct CrossValidation {
  double static_bound = 0.0;
  std::size_t runtime_queue = 0;
  std::uint64_t runtime_cascade = 0;
};

/// Drive 3 single-sample events plus one `burst`-sized batch from every
/// source, then compare the sanitizer's high-water marks against the
/// static bound computed with the same burst size. (Single events are
/// covered by the batch bound: burst >= 1 and cascades scale with it.)
CrossValidation cross_validate(
    core::ProcessingGraph& g,
    const std::vector<std::shared_ptr<core::SourceComponent>>& sources,
    double burst) {
  vfy::Options options;
  options.budget.burst = burst;
  const vfy::BudgetReport report =
      vfy::analyze_budget(vfy::GraphModel::from_graph(g), options);

  san::SanitizerConfig config;
  config.max_cascade = std::uint64_t{1} << 40;  // Observe, don't diagnose.
  config.max_queue_depth = std::size_t{1} << 30;
  san::GraphSanitizer sanitizer(config);
  sanitizer.attach(g);
  for (const auto& src : sources) {
    for (int i = 0; i < 3; ++i) src->push(V0{i});
    std::vector<V0> batch(static_cast<std::size_t>(burst));
    src->push_batch(std::move(batch));
  }
  CrossValidation out;
  out.static_bound = report.dispatch_queue_bound;
  out.runtime_queue = sanitizer.dispatch_queue_high_water();
  out.runtime_cascade = sanitizer.cascade_high_water();
  sanitizer.detach();
  return out;
}

}  // namespace

TEST(CrossValidation, FanOutBurstStaysUnderStaticBound) {
  core::ProcessingGraph g;
  auto src = make_source();
  const auto src_id = g.add(src);
  for (int i = 0; i < 6; ++i) {
    g.connect(src_id, g.add(make_sink("App" + std::to_string(i))));
  }
  const CrossValidation cv = cross_validate(g, {src}, 8.0);
  EXPECT_GE(cv.static_bound, static_cast<double>(cv.runtime_queue));
  EXPECT_GE(cv.static_bound, static_cast<double>(cv.runtime_cascade));
  EXPECT_GT(cv.runtime_queue, 0u);  // The workload actually queued.
}

TEST(CrossValidation, AmplifierChainStaysUnderStaticBound) {
  core::ProcessingGraph g;
  auto src = make_source();
  const auto src_id = g.add(src);
  const auto a1 = g.add(std::make_shared<Amplifier>(3));
  const auto a2 = g.add(std::make_shared<Amplifier>(2));
  const auto sink = g.add(make_sink());
  g.connect(src_id, a1);
  g.connect(a1, a2);
  g.connect(a2, sink);
  const CrossValidation cv = cross_validate(g, {src}, 4.0);
  EXPECT_GE(cv.static_bound, static_cast<double>(cv.runtime_queue));
  EXPECT_GE(cv.static_bound, static_cast<double>(cv.runtime_cascade));
  EXPECT_GT(cv.runtime_cascade, 1u);  // Amplification actually cascaded.
}

TEST(CrossValidation, ReconvergentMergeStaysUnderStaticBound) {
  // src fans out into two amplifying branches that reconverge on a relay
  // before the sink — the shape where deliveries sum, not max.
  core::ProcessingGraph g;
  auto src = make_source();
  const auto src_id = g.add(src);
  const auto a = g.add(std::make_shared<Amplifier>(2));
  const auto b = g.add(std::make_shared<Amplifier>(3));
  const auto join = g.add(std::make_shared<Amplifier>(1));
  const auto sink = g.add(make_sink());
  g.connect(src_id, a);
  g.connect(src_id, b);
  g.connect(a, join);
  g.connect(b, join);
  g.connect(join, sink);
  const CrossValidation cv = cross_validate(g, {src}, 2.0);
  EXPECT_GE(cv.static_bound, static_cast<double>(cv.runtime_queue));
  EXPECT_GE(cv.static_bound, static_cast<double>(cv.runtime_cascade));
  EXPECT_GT(cv.runtime_cascade, 1u);
}

TEST(CrossValidation, ChaosWorkloadsNeverExceedStaticBounds) {
  // Randomized layered graphs: every layer fans out into amplifiers with
  // random integer gains, terminated by sinks, driven by random burst
  // sizes. For every seed the static bound must dominate both runtime
  // marks. (Fractional gains are deliberately absent: a decimator's 1/N
  // multiplicity is amortized, so its per-event cascade can momentarily
  // exceed the steady-state figure — see the Amplifier comment.)
  double worst_slack_ratio = kInf;
  int exercised = 0;
  for (unsigned seed = 0; seed < 25; ++seed) {
    std::mt19937 rng(seed);
    auto pick = [&](int lo, int hi) {
      return std::uniform_int_distribution<>(lo, hi)(rng);
    };

    core::ProcessingGraph g;
    auto src = make_source();
    std::vector<core::ComponentId> frontier = {g.add(src)};
    const int layers = pick(1, 3);
    for (int layer = 0; layer < layers; ++layer) {
      std::vector<core::ComponentId> next;
      for (const core::ComponentId from : frontier) {
        const int width = pick(1, 3);
        for (int w = 0; w < width; ++w) {
          const auto to = g.add(std::make_shared<Amplifier>(pick(1, 3)));
          g.connect(from, to);
          next.push_back(to);
        }
      }
      frontier = std::move(next);
    }
    for (const core::ComponentId tail : frontier) {
      g.connect(tail, g.add(make_sink("App" + std::to_string(tail))));
    }

    const double burst = static_cast<double>(pick(1, 16));
    const CrossValidation cv = cross_validate(g, {src}, burst);
    ASSERT_GE(cv.static_bound, static_cast<double>(cv.runtime_queue))
        << "seed " << seed << " burst " << burst;
    ASSERT_GE(cv.static_bound, static_cast<double>(cv.runtime_cascade))
        << "seed " << seed << " burst " << burst;
    if (cv.runtime_queue > 0) {
      ++exercised;
      worst_slack_ratio = std::min(
          worst_slack_ratio,
          cv.static_bound / static_cast<double>(cv.runtime_queue));
    }
  }
  EXPECT_GT(exercised, 0);
  // Log the tightness so a bound drifting toward meaningless looseness is
  // visible in test output (it is an upper bound, not an estimate).
  std::cout << "[cross-validation] " << exercised
            << " workloads queued; tightest static/runtime ratio: "
            << worst_slack_ratio << "\n";
}

// --- Budget verb round-trip through export_config ---------------------------

TEST(ConfigRoundTrip, BudgetLinesSurviveExport) {
  rt::ComponentFactoryRegistry registry;
  registry.register_kind("source", [](const auto&) {
    return make_source("Source");
  });
  registry.register_kind("sink", [](const auto&) { return make_sink(); });

  core::ProcessingGraph g;
  const rt::ConfigResult first = rt::assemble_from_config(R"(
component src source
component app sink
connect src app
budget src rate=20..25 cost_us=3
budget app min_rate=5
budget * source_rate=2 burst=8 watermark=128 slo_us=250000
)",
                                                          registry, g);
  ASSERT_TRUE(first.ok()) << (first.errors.empty() ? "" : first.errors[0]);
  ASSERT_EQ(first.budgets.size(), 2u);
  ASSERT_TRUE(first.budget_defaults.has_value());

  // Re-key the annotations by id for export, as a live caller would.
  std::map<core::ComponentId, rt::BudgetAnnotation> by_id;
  for (const auto& [name, id] : first.report.instantiated) {
    const auto it = first.budgets.find(name);
    if (it != first.budgets.end()) by_id.emplace(id, it->second);
  }
  ASSERT_EQ(by_id.size(), 2u);
  const std::string exported = rt::export_config(
      g, nullptr, nullptr, nullptr, nullptr, &by_id, &*first.budget_defaults);
  EXPECT_NE(exported.find("budget "), std::string::npos);
  EXPECT_NE(exported.find("budget *"), std::string::npos);

  // Exported component names are "<kind>_<id>", so re-assembly needs a
  // kind()-keyed registry (same convention as the test_config round trips).
  rt::ComponentFactoryRegistry by_kind;
  by_kind.register_kind("Source", [](const auto&) {
    return make_source("Source");
  });
  by_kind.register_kind("Sink", [](const auto&) { return make_sink(); });
  core::ProcessingGraph rebuilt;
  const rt::ConfigResult second =
      rt::assemble_from_config(exported, by_kind, rebuilt);
  ASSERT_TRUE(second.errors.empty())
      << second.errors[0] << "\nexported:\n" << exported;

  // Names changed, so compare the annotation values by shape: the source's
  // carries the rate interval and cost, the sink's the min-rate floor.
  ASSERT_EQ(second.budgets.size(), 2u);
  for (const auto& [name, annotation] : second.budgets) {
    if (annotation.rate_hi_hz > 0.0) {
      EXPECT_EQ(annotation, first.budgets.at("src")) << name;
    } else {
      EXPECT_EQ(annotation, first.budgets.at("app")) << name;
    }
  }
  ASSERT_TRUE(second.budget_defaults.has_value());
  EXPECT_EQ(*second.budget_defaults, *first.budget_defaults);
}

// --- Explain sketches are runnable and trigger their own rule ----------------
//
// `perpos-verify --explain PPQxxx` prints a "minimal failing config"; this
// holds each quantitative sketch to that promise: the sketch text must
// assemble cleanly against the standard registry and its analysis must
// report the advertised rule. (PPQ005's feedback scenario is not
// expressible as a config line sketch and stays prose, like the PPS
// runtime sketches.)
TEST(BudgetRules, ExplainSketchesTriggerTheirOwnRule) {
  perpos::tools::Fixtures fx;
  const rt::ComponentFactoryRegistry registry =
      perpos::tools::standard_registry(fx);
  for (const std::string id : {"PPQ001", "PPQ002", "PPQ003", "PPQ004"}) {
    const std::string_view sketch = vfy::rule_sketch(id);
    ASSERT_FALSE(sketch.empty()) << id;
    const vfy::ConfigVerification result =
        vfy::verify_config(std::string(sketch), registry);
    ASSERT_TRUE(result.assembly.errors.empty())
        << id << ": " << result.assembly.errors[0];
    bool triggered = false;
    for (const vfy::Diagnostic& d : result.report.diagnostics) {
      if (d.rule_id == id) triggered = true;
    }
    EXPECT_TRUE(triggered) << id << " sketch did not trigger " << id << ":\n"
                           << sketch;
  }
}
