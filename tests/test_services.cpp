// Tests for the Positioning Layer services: track history queries and
// geofencing with hysteresis and dwell accounting.

#include "perpos/core/channel.hpp"
#include "perpos/core/components.hpp"
#include "perpos/core/positioning.hpp"
#include "perpos/core/services.hpp"
#include "perpos/geo/local_frame.hpp"

#include <gtest/gtest.h>

namespace core = perpos::core;
namespace geo = perpos::geo;
namespace sim = perpos::sim;

namespace {

const geo::GeoPoint kBase{56.1697, 10.1994, 50.0};

struct Rig {
  Rig() : frame(kBase), channels(graph), service(graph, channels) {
    source = std::make_shared<core::SourceComponent>(
        "GPS",
        std::vector<core::DataSpec>{core::provide<core::PositionFix>()});
    graph.add(source);
    provider = &service.request_provider(core::Criteria{});
  }

  void push(double east, double north, double t_s) {
    core::PositionFix fix;
    fix.position = frame.to_geodetic(geo::LocalPoint{east, north});
    fix.horizontal_accuracy_m = 3.0;
    fix.timestamp = sim::SimTime::from_seconds(t_s);
    fix.technology = "GPS";
    source->push(fix);
  }

  geo::LocalFrame frame;
  core::ProcessingGraph graph;
  core::ChannelManager channels;
  core::PositioningService service;
  std::shared_ptr<core::SourceComponent> source;
  core::LocationProvider* provider = nullptr;
};

}  // namespace

TEST(TrackLog, RecordsFixesInOrder) {
  Rig rig;
  core::TrackLogService log(*rig.provider);
  rig.push(0, 0, 1.0);
  rig.push(10, 0, 2.0);
  rig.push(20, 0, 3.0);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_DOUBLE_EQ(log.points().front().timestamp.seconds(), 1.0);
  EXPECT_DOUBLE_EQ(log.points().back().timestamp.seconds(), 3.0);
}

TEST(TrackLog, CapacityEvictsOldest) {
  Rig rig;
  core::TrackLogService log(*rig.provider, 3);
  for (int i = 0; i < 6; ++i) rig.push(i * 1.0, 0, i);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_DOUBLE_EQ(log.points().front().timestamp.seconds(), 3.0);
}

TEST(TrackLog, WindowQueries) {
  Rig rig;
  core::TrackLogService log(*rig.provider);
  for (int i = 0; i <= 10; ++i) rig.push(i * 10.0, 0, i);
  const auto window = log.between(sim::SimTime::from_seconds(3.0),
                                  sim::SimTime::from_seconds(6.0));
  EXPECT_EQ(window.size(), 4u);  // t = 3,4,5,6.
  // 10 m per second: 30 m over the 3-6 s window.
  EXPECT_NEAR(log.distance_m(sim::SimTime::from_seconds(3.0),
                             sim::SimTime::from_seconds(6.0)),
              30.0, 0.5);
  EXPECT_NEAR(log.average_speed_mps(sim::SimTime::from_seconds(3.0),
                                    sim::SimTime::from_seconds(6.0)),
              10.0, 0.2);
  EXPECT_NEAR(log.total_distance_m(), 100.0, 1.0);
}

TEST(TrackLog, EmptyWindowsAreSafe) {
  Rig rig;
  core::TrackLogService log(*rig.provider);
  EXPECT_TRUE(log.empty());
  EXPECT_DOUBLE_EQ(log.distance_m({}, sim::SimTime::from_seconds(100)), 0.0);
  EXPECT_DOUBLE_EQ(
      log.average_speed_mps({}, sim::SimTime::from_seconds(100)), 0.0);
  EXPECT_FALSE(log.nearest_in_time({}).has_value());
}

TEST(TrackLog, NearestInTime) {
  Rig rig;
  core::TrackLogService log(*rig.provider);
  rig.push(0, 0, 1.0);
  rig.push(10, 0, 5.0);
  const auto p = log.nearest_in_time(sim::SimTime::from_seconds(4.0));
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->timestamp.seconds(), 5.0);
}

TEST(TrackLog, UnsubscribesOnDestruction) {
  Rig rig;
  {
    core::TrackLogService log(*rig.provider);
    rig.push(0, 0, 1.0);
    EXPECT_EQ(log.size(), 1u);
  }
  EXPECT_NO_THROW(rig.push(1, 0, 2.0));  // No dangling listener.
}

TEST(Geofence, EnterExitWithDwell) {
  Rig rig;
  core::GeofenceService fence(*rig.provider);
  fence.add_zone({"home", rig.frame.to_geodetic(geo::LocalPoint{0, 0}),
                  30.0, 40.0});
  std::vector<core::GeofenceEvent> events;
  fence.subscribe([&](const core::GeofenceEvent& e) { events.push_back(e); });

  rig.push(100, 0, 1.0);  // Outside.
  rig.push(10, 0, 2.0);   // Enter.
  rig.push(5, 0, 3.0);    // Inside.
  rig.push(100, 0, 10.0); // Exit after 8 s dwell.
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[0].entered);
  EXPECT_FALSE(events[1].entered);
  EXPECT_DOUBLE_EQ(events[1].dwell.seconds(), 8.0);
  EXPECT_DOUBLE_EQ(fence.total_dwell("home").seconds(), 8.0);
}

TEST(Geofence, HysteresisSuppressesBoundaryJitter) {
  Rig rig;
  core::GeofenceService fence(*rig.provider);
  // Entry at 30 m, exit at 50 m: jitter between 32 and 45 m stays inside.
  fence.add_zone({"zone", rig.frame.to_geodetic(geo::LocalPoint{0, 0}),
                  30.0, 50.0});
  int events = 0;
  fence.subscribe([&](const core::GeofenceEvent&) { ++events; });
  rig.push(20, 0, 1.0);  // Enter.
  rig.push(35, 0, 2.0);  // Beyond entry radius but within exit: inside.
  rig.push(45, 0, 3.0);
  rig.push(33, 0, 4.0);
  EXPECT_EQ(events, 1);
  EXPECT_TRUE(fence.inside("zone"));
  rig.push(60, 0, 5.0);  // Beyond exit radius: exit.
  EXPECT_EQ(events, 2);
  EXPECT_FALSE(fence.inside("zone"));
}

TEST(Geofence, MultipleZones) {
  Rig rig;
  core::GeofenceService fence(*rig.provider);
  fence.add_zone({"a", rig.frame.to_geodetic(geo::LocalPoint{0, 0}),
                  50.0, 60.0});
  fence.add_zone({"b", rig.frame.to_geodetic(geo::LocalPoint{30, 0}),
                  50.0, 60.0});
  rig.push(15, 0, 1.0);  // Inside both.
  EXPECT_EQ(fence.current_zones().size(), 2u);
  EXPECT_EQ(fence.zone_names().size(), 2u);
}

TEST(Geofence, ZoneValidation) {
  Rig rig;
  core::GeofenceService fence(*rig.provider);
  fence.add_zone({"x", kBase, 10.0, 20.0});
  EXPECT_THROW(fence.add_zone({"x", kBase, 10.0, 20.0}),
               std::invalid_argument);
  EXPECT_THROW(fence.add_zone({"bad", kBase, 30.0, 20.0}),
               std::invalid_argument);
  EXPECT_THROW(fence.remove_zone("nope"), std::invalid_argument);
  fence.remove_zone("x");
  EXPECT_TRUE(fence.zone_names().empty());
}

TEST(Geofence, UnknownZoneQueries) {
  Rig rig;
  core::GeofenceService fence(*rig.provider);
  EXPECT_FALSE(fence.inside("nothing"));
  EXPECT_DOUBLE_EQ(fence.total_dwell("nothing").seconds(), 0.0);
}
