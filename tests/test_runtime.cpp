// Tests for the mini service platform: registry, bundles, the dependency-
// resolving graph assembler, the payload codec and distributed deployment.

#include "perpos/core/components.hpp"
#include "perpos/core/data_types.hpp"
#include "perpos/runtime/assembler.hpp"
#include "perpos/runtime/bundle.hpp"
#include "perpos/runtime/distribution.hpp"
#include "perpos/runtime/payload_codec.hpp"
#include "perpos/runtime/registry.hpp"
#include "perpos/wifi/scan.hpp"

#include <gtest/gtest.h>

namespace rt = perpos::runtime;
namespace core = perpos::core;
namespace sim = perpos::sim;

namespace {

struct Temperature {
  double celsius = 0.0;
};

}  // namespace

TEST(Registry, RegisterAndFind) {
  rt::ServiceRegistry reg;
  auto svc = std::make_shared<int>(7);
  reg.register_service("counter", svc, {{"flavor", "vanilla"}});
  EXPECT_EQ(reg.size(), 1u);
  const auto refs = reg.find("counter");
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(*std::static_pointer_cast<int>(refs[0].service), 7);
  EXPECT_TRUE(reg.find("unknown").empty());
}

TEST(Registry, PropertyFilter) {
  rt::ServiceRegistry reg;
  reg.register_service("pos", std::make_shared<int>(1), {{"tech", "GPS"}});
  reg.register_service("pos", std::make_shared<int>(2), {{"tech", "WiFi"}});
  const auto gps = reg.find("pos", {{"tech", "GPS"}});
  ASSERT_EQ(gps.size(), 1u);
  EXPECT_EQ(*std::static_pointer_cast<int>(gps[0].service), 1);
  EXPECT_EQ(reg.find("pos").size(), 2u);
  EXPECT_TRUE(reg.find("pos", {{"tech", "BLE"}}).empty());
}

TEST(Registry, TypedGet) {
  rt::ServiceRegistry reg;
  reg.register_service("t", std::make_shared<Temperature>(Temperature{21.5}));
  auto t = reg.get<Temperature>("t");
  ASSERT_NE(t, nullptr);
  EXPECT_DOUBLE_EQ(t->celsius, 21.5);
  EXPECT_EQ(reg.get<Temperature>("absent"), nullptr);
}

TEST(Registry, UnregisterRemoves) {
  rt::ServiceRegistry reg;
  const auto id = reg.register_service("x", std::make_shared<int>(1));
  EXPECT_TRUE(reg.unregister(id));
  EXPECT_FALSE(reg.unregister(id));
  EXPECT_TRUE(reg.find("x").empty());
}

TEST(Registry, ListenersObserveLifecycle) {
  rt::ServiceRegistry reg;
  std::vector<std::string> events;
  const auto token = reg.add_listener(
      [&](rt::ServiceEvent e, const rt::ServiceRef& ref) {
        events.push_back((e == rt::ServiceEvent::kRegistered ? "+" : "-") +
                         ref.interface_name);
      });
  const auto id = reg.register_service("svc", std::make_shared<int>(0));
  reg.unregister(id);
  reg.remove_listener(token);
  reg.register_service("svc", std::make_shared<int>(0));
  EXPECT_EQ(events, (std::vector<std::string>{"+svc", "-svc"}));
}

namespace {

class RecordingBundle final : public rt::Bundle {
 public:
  RecordingBundle(std::string name, std::vector<std::string>& log)
      : Bundle(std::move(name)), log_(log) {}
  void start(rt::BundleContext& ctx) override {
    log_.push_back("start:" + name());
    ctx.register_service("svc/" + name(), std::make_shared<int>(1));
  }
  void stop(rt::BundleContext&) override { log_.push_back("stop:" + name()); }

 private:
  std::vector<std::string>& log_;
};

}  // namespace

TEST(Framework, StartStopOrder) {
  rt::Framework fw;
  std::vector<std::string> log;
  fw.install(std::make_unique<RecordingBundle>("a", log));
  fw.install(std::make_unique<RecordingBundle>("b", log));
  fw.start_all();
  EXPECT_EQ(fw.registry().size(), 2u);
  fw.stop_all();
  EXPECT_EQ(log, (std::vector<std::string>{"start:a", "start:b", "stop:b",
                                           "stop:a"}));
  // Services auto-unregistered on stop.
  EXPECT_EQ(fw.registry().size(), 0u);
}

TEST(Framework, IndividualStartStopAndStates) {
  rt::Framework fw;
  std::vector<std::string> log;
  fw.install(std::make_unique<RecordingBundle>("a", log));
  EXPECT_EQ(fw.find("a")->state(), rt::BundleState::kInstalled);
  fw.start("a");
  EXPECT_EQ(fw.find("a")->state(), rt::BundleState::kActive);
  fw.start("a");  // Idempotent.
  fw.stop("a");
  EXPECT_EQ(fw.find("a")->state(), rt::BundleState::kStopped);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_THROW(fw.start("zzz"), std::invalid_argument);
}

TEST(Framework, BundleServicesTaggedWithBundleName) {
  rt::Framework fw;
  std::vector<std::string> log;
  fw.install(std::make_unique<RecordingBundle>("tagger", log));
  fw.start_all();
  const auto refs = fw.registry().find("svc/tagger");
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].properties.at("bundle"), "tagger");
}

// --- Assembler -----------------------------------------------------------------

TEST(Assembler, ResolvesLinearPipeline) {
  core::ProcessingGraph g;
  rt::GraphAssembler assembler(g);
  auto source = std::make_shared<core::SourceComponent>(
      "Src", std::vector<core::DataSpec>{core::provide<Temperature>()});
  assembler.add("source", source);
  assembler.add("sink", std::make_shared<core::ApplicationSink>());
  const auto report = assembler.resolve();
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.edges.size(), 1u);
  EXPECT_EQ(report.edges[0].producer, "source");
  EXPECT_EQ(report.edges[0].consumer, "sink");
  source->push(Temperature{20.0});
  EXPECT_NE(report.id_of("sink"), core::kInvalidComponent);
}

TEST(Assembler, ReportsUnsatisfiedRequirements) {
  core::ProcessingGraph g;
  rt::GraphAssembler assembler(g);
  assembler.add("lonely",
                std::make_shared<core::LambdaComponent>(
                    "Needy",
                    std::vector<core::InputRequirement>{
                        core::require<Temperature>()},
                    std::vector<core::DataSpec>{}, nullptr));
  const auto report = assembler.resolve();
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.unsatisfied.size(), 1u);
  EXPECT_EQ(report.unsatisfied[0].first, "lonely");
  EXPECT_NE(report.unsatisfied[0].second.find("Temperature"),
            std::string::npos);
}

TEST(Assembler, OptionalRequirementsDontFail) {
  core::ProcessingGraph g;
  rt::GraphAssembler assembler(g);
  assembler.add("optional-consumer",
                std::make_shared<core::LambdaComponent>(
                    "Opt",
                    std::vector<core::InputRequirement>{core::require<
                        Temperature>("", /*optional=*/true)},
                    std::vector<core::DataSpec>{}, nullptr));
  EXPECT_TRUE(assembler.resolve().ok());
}

TEST(Assembler, IncrementalExtension) {
  // The paper's first requirement: add a new positioning mechanism without
  // changing existing components — later contributions wire to earlier.
  core::ProcessingGraph g;
  rt::GraphAssembler assembler(g);
  auto source = std::make_shared<core::SourceComponent>(
      "Src", std::vector<core::DataSpec>{core::provide<Temperature>()});
  assembler.add("source", source);
  auto first = assembler.resolve();
  EXPECT_TRUE(first.ok());

  assembler.add("late-sink", std::make_shared<core::ApplicationSink>());
  const auto second = assembler.resolve();
  EXPECT_TRUE(second.ok());
  ASSERT_EQ(second.edges.size(), 1u);
  EXPECT_EQ(second.edges[0].consumer, "late-sink");
}

TEST(Assembler, DuplicateNamesRejected) {
  core::ProcessingGraph g;
  rt::GraphAssembler assembler(g);
  assembler.add("x", std::make_shared<core::ApplicationSink>());
  EXPECT_THROW(assembler.add("x", std::make_shared<core::ApplicationSink>()),
               std::invalid_argument);
}

// --- Payload codec --------------------------------------------------------------

TEST(Codec, RawFragmentRoundTrip) {
  const auto p = core::Payload::make(core::RawFragment{"$GPGGA,1\r\n"});
  ASSERT_TRUE(rt::is_encodable(p));
  const auto back = rt::decode_payload(rt::encode_payload(p));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->as<core::RawFragment>().bytes, "$GPGGA,1\r\n");
}

TEST(Codec, PositionFixRoundTrip) {
  core::PositionFix fix;
  fix.position = {56.1697123, 10.1994456, 48.25};
  fix.horizontal_accuracy_m = 3.5;
  fix.timestamp = sim::SimTime::from_seconds(12.75);
  fix.technology = "GPS";
  const auto back =
      rt::decode_payload(rt::encode_payload(core::Payload::make(fix)));
  ASSERT_TRUE(back.has_value());
  const auto& f = back->as<core::PositionFix>();
  EXPECT_NEAR(f.position.latitude_deg, 56.1697123, 1e-8);
  EXPECT_NEAR(f.horizontal_accuracy_m, 3.5, 1e-3);
  EXPECT_EQ(f.timestamp, fix.timestamp);
  EXPECT_EQ(f.technology, "GPS");
}

TEST(Codec, RssiScanRoundTrip) {
  perpos::wifi::RssiScan scan;
  scan.timestamp = sim::SimTime::from_millis(1500);
  scan.readings = {{"AP-1", -42.5}, {"AP-2", -77.25}};
  const auto back =
      rt::decode_payload(rt::encode_payload(core::Payload::make(scan)));
  ASSERT_TRUE(back.has_value());
  const auto& s = back->as<perpos::wifi::RssiScan>();
  ASSERT_EQ(s.readings.size(), 2u);
  EXPECT_EQ(s.readings[1].ap_id, "AP-2");
  EXPECT_NEAR(s.readings[1].rssi_dbm, -77.25, 0.01);
}

TEST(Codec, RoomFixRoundTrip) {
  core::RoomFix room;
  room.building = "ABUILD";
  room.room = "O-S2";
  room.floor = 0;
  room.local = {12.0, 4.0};
  room.confidence = 0.8;
  const auto back =
      rt::decode_payload(rt::encode_payload(core::Payload::make(room)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->as<core::RoomFix>().room, "O-S2");

  core::RoomFix outside;
  outside.building = "B";
  const auto back2 =
      rt::decode_payload(rt::encode_payload(core::Payload::make(outside)));
  ASSERT_TRUE(back2.has_value());
  EXPECT_TRUE(back2->as<core::RoomFix>().room.empty());
}

TEST(Codec, UnsupportedTypeThrows) {
  EXPECT_THROW(rt::encode_payload(core::Payload::make(Temperature{1.0})),
               std::invalid_argument);
  EXPECT_FALSE(rt::is_encodable(core::Payload::make(Temperature{1.0})));
}

TEST(Codec, MalformedWireRejected) {
  EXPECT_FALSE(rt::decode_payload("").has_value());
  EXPECT_FALSE(rt::decode_payload("NOPE").has_value());
  EXPECT_FALSE(rt::decode_payload("BOGUS body").has_value());
  EXPECT_FALSE(rt::decode_payload("FIX notanumber").has_value());
  EXPECT_FALSE(rt::decode_payload("RSSI abc").has_value());
}

// --- Distribution ---------------------------------------------------------------

class DistributionFixture : public ::testing::Test {
 protected:
  DistributionFixture()
      : net(scheduler, random), graph(&scheduler.clock()),
        deployment(graph, net) {
    mobile = deployment.add_host("mobile");
    server = deployment.add_host("server");
    net.set_link(mobile, server,
                 {sim::SimTime::from_millis(30), 0.0, {}});
    net.set_link(server, mobile,
                 {sim::SimTime::from_millis(30), 0.0, {}});
  }

  sim::Scheduler scheduler;
  sim::Random random{42};
  sim::Network net;
  core::ProcessingGraph graph;
  rt::DistributedDeployment deployment;
  sim::HostId mobile{}, server{};
};

TEST_F(DistributionFixture, CrossHostEdgeIsRemoted) {
  auto source = std::make_shared<core::SourceComponent>(
      "GPS",
      std::vector<core::DataSpec>{core::provide<core::RawFragment>()});
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = graph.add(source);
  const auto z = graph.add(sink);
  graph.connect(a, z);
  deployment.assign(a, mobile);
  deployment.assign(z, server);
  deployment.deploy();

  // The direct edge is replaced by egress/ingress.
  EXPECT_EQ(graph.size(), 4u);
  source->push(core::RawFragment{"hello"});
  EXPECT_EQ(sink->received(), 0u);  // In flight.
  scheduler.run_all();
  ASSERT_EQ(sink->received(), 1u);
  EXPECT_EQ(sink->last()->payload.as<core::RawFragment>().bytes, "hello");
  EXPECT_DOUBLE_EQ(scheduler.now().millis(), 30.0);
  EXPECT_EQ(deployment.data_messages(mobile, server), 1u);
}

TEST_F(DistributionFixture, GarbledWireIsCountedNotSilentlyDropped) {
  // A corrupted wire message must not crash the ingress, must not emit
  // downstream, and must be visible as a decode_failed failure event.
  graph.enable_observability();
  auto source = std::make_shared<core::SourceComponent>(
      "GPS",
      std::vector<core::DataSpec>{core::provide<core::RawFragment>()});
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = graph.add(source);
  const auto z = graph.add(sink);
  graph.connect(a, z);
  deployment.assign(a, mobile);
  deployment.assign(z, server);
  deployment.deploy();

  rt::RemoteIngress* ingress = nullptr;
  core::ComponentId ingress_id = 0;
  for (core::ComponentId id : graph.components()) {
    if (auto* i = graph.component_as<rt::RemoteIngress>(id)) {
      ingress = i;
      ingress_id = id;
    }
  }
  ASSERT_NE(ingress, nullptr);

  EXPECT_NO_THROW(ingress->deliver("BOGUS \x01\x7f bytes"));
  EXPECT_NO_THROW(ingress->deliver(""));
  EXPECT_EQ(ingress->decode_failures(), 2u);
  EXPECT_EQ(sink->received(), 0u);

  // Healthy traffic still flows after the garbage.
  source->push(core::RawFragment{"still alive"});
  scheduler.run_all();
  EXPECT_EQ(sink->received(), 1u);
  EXPECT_EQ(ingress->decode_failures(), 2u);

  const auto snap = graph.metrics();
  const auto* failures = snap.find_counter("perpos_failure_events_total",
                                           "event", "decode_failed");
  ASSERT_NE(failures, nullptr);
  EXPECT_EQ(failures->value, 2u);
  bool injector_labelled = false;
  const std::string injector =
      "RemoteIngress#" + std::to_string(ingress_id);
  for (const auto& [k, v] : failures->labels) {
    if (k == "injector" && v == injector) injector_labelled = true;
  }
  EXPECT_TRUE(injector_labelled);
}

TEST_F(DistributionFixture, SameHostEdgeStaysLocal) {
  auto source = std::make_shared<core::SourceComponent>(
      "GPS",
      std::vector<core::DataSpec>{core::provide<core::RawFragment>()});
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = graph.add(source);
  const auto z = graph.add(sink);
  graph.connect(a, z);
  deployment.assign(a, mobile);
  deployment.assign(z, mobile);
  deployment.deploy();
  EXPECT_EQ(graph.size(), 2u);  // No egress/ingress added.
  source->push(core::RawFragment{"x"});
  EXPECT_EQ(sink->received(), 1u);  // Synchronous, no network.
  EXPECT_EQ(deployment.data_messages(mobile, server), 0u);
}

TEST_F(DistributionFixture, UnassignedComponentsStayLocal) {
  auto source = std::make_shared<core::SourceComponent>(
      "GPS",
      std::vector<core::DataSpec>{core::provide<core::RawFragment>()});
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = graph.add(source);
  const auto z = graph.add(sink);
  graph.connect(a, z);
  deployment.assign(a, mobile);  // Sink unassigned.
  deployment.deploy();
  EXPECT_EQ(graph.size(), 2u);
}

TEST_F(DistributionFixture, RemoteCallCountsControlMessages) {
  int called = 0;
  deployment.remote_call(server, mobile, [&] { ++called; });
  EXPECT_EQ(called, 1);
  EXPECT_EQ(deployment.control_messages(server, mobile), 1u);
  EXPECT_EQ(deployment.control_messages(mobile, server), 0u);
  scheduler.run_all();
  // Control marker counted on the link but not routed as data.
  EXPECT_EQ(deployment.data_messages(server, mobile), 0u);
}

TEST_F(DistributionFixture, PipelineAcrossHostsKeepsOrder) {
  auto source = std::make_shared<core::SourceComponent>(
      "GPS",
      std::vector<core::DataSpec>{core::provide<core::RawFragment>()});
  auto sink = std::make_shared<core::ApplicationSink>();
  std::vector<std::string> received;
  sink->set_callback([&](const core::Sample& s) {
    received.push_back(s.payload.as<core::RawFragment>().bytes);
  });
  const auto a = graph.add(source);
  const auto z = graph.add(sink);
  graph.connect(a, z);
  deployment.assign(a, mobile);
  deployment.assign(z, server);
  deployment.deploy();
  for (int i = 0; i < 5; ++i) {
    source->push(core::RawFragment{std::to_string(i)});
  }
  scheduler.run_all();
  EXPECT_EQ(received,
            (std::vector<std::string>{"0", "1", "2", "3", "4"}));
}

TEST_F(DistributionFixture, AssignUnknownComponentThrows) {
  EXPECT_THROW(deployment.assign(42, mobile), std::invalid_argument);
}
