// Tests for the discrete-event simulation substrate: deterministic
// scheduling, cancellation, simulated time, network links and the seeded
// random source.

#include "perpos/sim/network.hpp"
#include "perpos/sim/random.hpp"
#include "perpos/sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sim = perpos::sim;

TEST(SimTime, ArithmeticAndComparison) {
  const sim::SimTime a = sim::SimTime::from_seconds(1.5);
  const sim::SimTime b = sim::SimTime::from_millis(500);
  EXPECT_EQ((a + b).ns, 2'000'000'000);
  EXPECT_EQ((a - b).ns, 1'000'000'000);
  EXPECT_LT(b, a);
  EXPECT_DOUBLE_EQ(a.seconds(), 1.5);
  EXPECT_DOUBLE_EQ(b.millis(), 500.0);
}

TEST(Scheduler, ExecutesInTimeOrder) {
  sim::Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(sim::SimTime::from_seconds(3.0), [&] { order.push_back(3); });
  sched.schedule_at(sim::SimTime::from_seconds(1.0), [&] { order.push_back(1); });
  sched.schedule_at(sim::SimTime::from_seconds(2.0), [&] { order.push_back(2); });
  EXPECT_EQ(sched.run_all(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, SimultaneousEventsRunFifo) {
  sim::Scheduler sched;
  std::vector<int> order;
  const sim::SimTime t = sim::SimTime::from_seconds(1.0);
  for (int i = 0; i < 5; ++i) {
    sched.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ClockAdvancesToEventTime) {
  sim::Scheduler sched;
  sim::SimTime seen;
  sched.schedule_at(sim::SimTime::from_seconds(7.5),
                    [&] { seen = sched.now(); });
  sched.run_all();
  EXPECT_DOUBLE_EQ(seen.seconds(), 7.5);
  EXPECT_DOUBLE_EQ(sched.now().seconds(), 7.5);
}

TEST(Scheduler, ScheduleAfterIsRelative) {
  sim::Scheduler sched;
  std::vector<double> times;
  sched.schedule_at(sim::SimTime::from_seconds(2.0), [&] {
    sched.schedule_after(sim::SimTime::from_seconds(0.5),
                         [&] { times.push_back(sched.now().seconds()); });
  });
  sched.run_all();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 2.5);
}

TEST(Scheduler, RunUntilStopsAtLimit) {
  sim::Scheduler sched;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sched.schedule_at(sim::SimTime::from_seconds(i), [&] { ++count; });
  }
  EXPECT_EQ(sched.run_until(sim::SimTime::from_seconds(5.0)), 5u);
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sched.now().seconds(), 5.0);
  EXPECT_EQ(sched.pending(), 5u);
}

TEST(Scheduler, PastEventsRunAtCurrentTime) {
  sim::Scheduler sched;
  sched.run_until(sim::SimTime::from_seconds(10.0));
  double when = -1.0;
  sched.schedule_at(sim::SimTime::from_seconds(1.0),
                    [&] { when = sched.now().seconds(); });
  sched.run_all();
  EXPECT_DOUBLE_EQ(when, 10.0);  // Never travels back in time.
}

TEST(Scheduler, CancelPreventsExecution) {
  sim::Scheduler sched;
  bool ran = false;
  const auto id = sched.schedule_at(sim::SimTime::from_seconds(1.0),
                                    [&] { ran = true; });
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));  // Double-cancel reports failure.
  sched.run_all();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelUnknownIdFails) {
  sim::Scheduler sched;
  EXPECT_FALSE(sched.cancel(0));
  EXPECT_FALSE(sched.cancel(12345));
}

TEST(Scheduler, SelfReschedulingChainTerminatesWithRunUntil) {
  sim::Scheduler sched;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    sched.schedule_after(sim::SimTime::from_seconds(1.0), tick);
  };
  sched.schedule_after(sim::SimTime::from_seconds(1.0), tick);
  sched.run_until(sim::SimTime::from_seconds(10.0));
  EXPECT_EQ(ticks, 10);
}

TEST(Random, DeterministicAcrossInstances) {
  sim::Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Random, DifferentSeedsDiffer) {
  sim::Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1000000) == b.uniform_int(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Random, UniformBounds) {
  sim::Random r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
    const int n = r.uniform_int(-2, 2);
    EXPECT_GE(n, -2);
    EXPECT_LE(n, 2);
  }
}

TEST(Random, NormalMoments) {
  sim::Random r(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(Random, ChanceEdgeCases) {
  sim::Random r(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Random, ZeroStddevNormalIsMean) {
  sim::Random r(3);
  EXPECT_DOUBLE_EQ(r.normal(42.0, 0.0), 42.0);
}

// --- Network -------------------------------------------------------------------

class NetworkTest : public ::testing::Test {
 protected:
  sim::Scheduler sched;
  sim::Random random{99};
  sim::Network net{sched, random};
};

TEST_F(NetworkTest, DeliversWithLatency) {
  std::vector<std::string> received;
  sim::SimTime at;
  const auto a = net.add_host("a", nullptr);
  const auto b = net.add_host("b", [&](sim::HostId, const std::string& m) {
    received.push_back(m);
    at = sched.now();
  });
  net.set_link(a, b, sim::LinkConfig{sim::SimTime::from_millis(40), 0.0, {}});
  net.send(a, b, "hello");
  sched.run_all();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "hello");
  EXPECT_DOUBLE_EQ(at.millis(), 40.0);
}

TEST_F(NetworkTest, StatsCountMessagesAndBytes) {
  const auto a = net.add_host("a", nullptr);
  const auto b = net.add_host("b", [](sim::HostId, const std::string&) {});
  net.send(a, b, "12345");
  net.send(a, b, "xy");
  sched.run_all();
  const sim::LinkStats& s = net.stats(a, b);
  EXPECT_EQ(s.messages_sent, 2u);
  EXPECT_EQ(s.messages_delivered, 2u);
  EXPECT_EQ(s.bytes_sent, 7u);
}

TEST_F(NetworkTest, LossyLinkDropsSomeMessages) {
  const auto a = net.add_host("a", nullptr);
  int received = 0;
  const auto b =
      net.add_host("b", [&](sim::HostId, const std::string&) { ++received; });
  net.set_link(a, b, sim::LinkConfig{sim::SimTime::zero(), 0.5, {}});
  for (int i = 0; i < 200; ++i) net.send(a, b, "x");
  sched.run_all();
  const sim::LinkStats& s = net.stats(a, b);
  EXPECT_EQ(s.messages_sent, 200u);
  EXPECT_EQ(s.messages_delivered, static_cast<std::uint64_t>(received));
  EXPECT_GT(s.messages_dropped, 50u);
  EXPECT_LT(s.messages_dropped, 150u);
  EXPECT_EQ(s.messages_dropped + s.messages_delivered, 200u);
}

TEST_F(NetworkTest, DirectionalLinksAreIndependent) {
  const auto a = net.add_host("a", [](sim::HostId, const std::string&) {});
  const auto b = net.add_host("b", [](sim::HostId, const std::string&) {});
  net.send(a, b, "ab");
  sched.run_all();
  EXPECT_EQ(net.stats(a, b).messages_sent, 1u);
  EXPECT_EQ(net.stats(b, a).messages_sent, 0u);
}

TEST_F(NetworkTest, UnknownHostThrows) {
  const auto a = net.add_host("a", nullptr);
  EXPECT_THROW(net.send(a, 42, "x"), std::out_of_range);
}

TEST_F(NetworkTest, HostNames) {
  const auto a = net.add_host("mobile", nullptr);
  EXPECT_EQ(net.host_name(a), "mobile");
  EXPECT_EQ(net.host_count(), 1u);
}
