// Tests for compiled execution plans (core freeze/thaw seam +
// perpos::plan::GraphPlan policy layer):
//  - byte-identical transcripts between interpreted and frozen execution,
//    across 0/1/8 engine workers, including fan-out, nested
//    FeatureContext::emit (consume and produce hooks), emit_batch and
//    failure injection,
//  - seamless mid-stream freeze/thaw (logical time and pending provenance
//    carry over),
//  - auto-thaw on every mutation path: add / remove / connect / disconnect
//    / insert_between / replace / feature attach / detach, plus
//    LiveReconfigurator hot-swap, rollback(epoch) and tee promotion,
//  - freeze gates (dispatching, timing/tracing/latency observability) and
//    the GraphPlan verify-then-freeze + auto-refreeze lifecycle,
//  - sentry, flight recorder and metric counters firing identically on the
//    frozen path,
//  - a seeded chaos property test (random graphs, random mutation/traffic
//    interleavings, frozen-with-auto-refreeze vs never-frozen twin); run
//    under ASan/UBSan and TSan in CI.

#include "perpos/core/components.hpp"
#include "perpos/core/graph.hpp"
#include "perpos/exec/engine.hpp"
#include "perpos/obs/flight_recorder.hpp"
#include "perpos/plan/graph_plan.hpp"
#include "perpos/reconfig/live_reconfigurator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

namespace core = perpos::core;
namespace exec = perpos::exec;
namespace obs = perpos::obs;
namespace plan = perpos::plan;
namespace reconfig = perpos::reconfig;

namespace {

struct Tick {
  int value = 0;
};

std::shared_ptr<core::SourceComponent> tick_source() {
  return std::make_shared<core::SourceComponent>(
      "Src", std::vector<core::DataSpec>{core::provide<Tick>()});
}

std::shared_ptr<core::LambdaComponent> add_stage(int delta) {
  return std::make_shared<core::LambdaComponent>(
      "Add", std::vector<core::InputRequirement>{core::require<Tick>()},
      std::vector<core::DataSpec>{core::provide<Tick>()},
      [delta](const core::Sample& s, const core::ComponentContext& ctx) {
        ctx.emit(core::Payload::make(Tick{s.payload.get<Tick>()->value +
                                          delta}));
      });
}

/// Throws on every value divisible by `trip` (trip == 0 never throws).
std::shared_ptr<core::LambdaComponent> bomb_stage(int trip) {
  return std::make_shared<core::LambdaComponent>(
      "Bomb", std::vector<core::InputRequirement>{core::require<Tick>()},
      std::vector<core::DataSpec>{core::provide<Tick>()},
      [trip](const core::Sample& s, const core::ComponentContext& ctx) {
        const int v = s.payload.get<Tick>()->value;
        if (trip != 0 && v % trip == 0) {
          throw std::runtime_error("bomb tripped");
        }
        ctx.emit(core::Payload::make(Tick{v}));
      });
}

/// "Adding data" feature: consume() re-emits every sample whose value is
/// divisible by 3 as feature-tagged data (a nested emission inside the
/// delivery that triggered it); produce() tags along a second nested
/// emission for every 5th component-origin emission. Both paths guard on
/// the origin so the feature's own emissions don't recurse.
class EchoFeature final : public core::ComponentFeature {
 public:
  std::string_view name() const override { return "echo"; }
  std::vector<const core::TypeInfo*> added_types() const override {
    return {core::type_of<Tick>()};
  }
  bool emits_in_consume() const override { return true; }
  bool emits_in_produce() const override { return true; }

  bool consume(core::Sample& sample) override {
    const int v = sample.payload.get<Tick>()->value;
    if (v % 3 == 0) {
      context().emit(core::Payload::make(Tick{v * 100}));
    }
    return true;
  }

  bool produce(core::Sample& sample) override {
    if (sample.origin != core::kComponentOrigin) return true;
    const int v = sample.payload.get<Tick>()->value;
    if (v % 5 == 0) {
      context().emit(core::Payload::make(Tick{v * 1000}));
    }
    return v % 7 != 0;  // Occasionally veto, to cover the veto counters.
  }
};

/// Src -> A -> B[echo] -> Sink, with A also fanning out to C -> Sink and
/// an echo-tagged side sink hanging off B. Every delivered value:sequence
/// pair lands in the transcript, so any ordering, duplication or loss
/// difference between the interpreted and frozen paths shows up as a byte
/// difference.
struct PlanRig {
  explicit PlanRig(bool with_feature = true, int bomb_trip = 0) {
    source_id = graph.add(tick_source());
    a_id = graph.add(add_stage(1));
    b_id = graph.add(bomb_trip != 0 ? bomb_stage(bomb_trip) : add_stage(10));
    c_id = graph.add(add_stage(100));
    graph.connect(source_id, a_id);
    graph.connect(a_id, b_id);
    graph.connect(a_id, c_id);
    sink_id = graph.add(std::make_shared<core::ApplicationSink>(
        "Sink", std::vector<core::InputRequirement>{core::require<Tick>()},
        [this](const core::Sample& s) {
          transcript << s.payload.get<Tick>()->value << ':' << s.sequence
                     << ';';
        }));
    graph.connect(b_id, sink_id);
    graph.connect(c_id, sink_id);
    if (with_feature) {
      graph.attach_feature(b_id, std::make_shared<EchoFeature>());
      echo_sink_id = graph.add(std::make_shared<core::ApplicationSink>(
          "EchoSink",
          std::vector<core::InputRequirement>{core::require<Tick>("echo")},
          [this](const core::Sample& s) {
            transcript << 'e' << s.payload.get<Tick>()->value << ':'
                       << s.sequence << ';';
          }));
      graph.connect(b_id, echo_sink_id);
    }
    source = graph.component_as<core::SourceComponent>(source_id);
  }

  core::ProcessingGraph graph;
  core::ComponentId source_id = core::kInvalidComponent;
  core::ComponentId a_id = core::kInvalidComponent;
  core::ComponentId b_id = core::kInvalidComponent;
  core::ComponentId c_id = core::kInvalidComponent;
  core::ComponentId sink_id = core::kInvalidComponent;
  core::ComponentId echo_sink_id = core::kInvalidComponent;
  core::SourceComponent* source = nullptr;
  std::ostringstream transcript;
};

/// Deterministic traffic: single pushes interleaved with batches, values
/// from a seeded generator. Exceptions from bomb stages are recorded in
/// the transcript (both paths must throw at the same points).
void drive(PlanRig& rig, std::uint64_t seed, int events) {
  std::mt19937_64 rng(seed);
  for (int i = 0; i < events; ++i) {
    try {
      if (rng() % 4 == 0) {
        std::vector<core::Payload> burst;
        const std::size_t n = 1 + rng() % 5;
        for (std::size_t j = 0; j < n; ++j) {
          burst.push_back(
              core::Payload::make(Tick{static_cast<int>(rng() % 1000)}));
        }
        rig.source->push_payload_batch(std::move(burst));
      } else {
        rig.source->push(Tick{static_cast<int>(rng() % 1000)});
      }
    } catch (const std::runtime_error&) {
      rig.transcript << "X;";
    }
  }
}

std::string run_scenario(bool frozen, std::uint64_t seed, int events,
                         bool with_feature = true, int bomb_trip = 0) {
  PlanRig rig(with_feature, bomb_trip);
  if (frozen) {
    rig.graph.freeze_plan();
    EXPECT_TRUE(rig.graph.frozen());
  }
  drive(rig, seed, events);
  if (frozen) {
    EXPECT_TRUE(rig.graph.frozen());  // Failures don't thaw.
  }
  return rig.transcript.str();
}

}  // namespace

// --- Transcript byte-identity ----------------------------------------------

TEST(Plan, FrozenTranscriptMatchesInterpreted) {
  const std::string interpreted = run_scenario(false, 42, 400);
  const std::string frozen = run_scenario(true, 42, 400);
  ASSERT_FALSE(interpreted.empty());
  EXPECT_EQ(interpreted, frozen);
}

TEST(Plan, FrozenTranscriptMatchesInterpretedWithoutFeatures) {
  EXPECT_EQ(run_scenario(false, 7, 300, /*with_feature=*/false),
            run_scenario(true, 7, 300, /*with_feature=*/false));
}

TEST(Plan, FrozenTranscriptMatchesInterpretedUnderFailureInjection) {
  const std::string interpreted =
      run_scenario(false, 11, 400, /*with_feature=*/true, /*bomb_trip=*/17);
  const std::string frozen =
      run_scenario(true, 11, 400, /*with_feature=*/true, /*bomb_trip=*/17);
  ASSERT_NE(interpreted.find("X;"), std::string::npos);  // Bombs did trip.
  EXPECT_EQ(interpreted, frozen);
}

TEST(Plan, FrozenTranscriptsIdenticalAcrossWorkerCounts) {
  // Like test_exec's determinism matrix: the same per-graph traffic posted
  // through engine lanes must produce byte-identical transcripts whether
  // graphs run interpreted or frozen, inline or on 1 or 8 workers.
  auto run = [](std::size_t workers, bool frozen) {
    constexpr int kGraphs = 4;
    std::vector<std::unique_ptr<PlanRig>> rigs;
    exec::ExecutionEngine engine(workers);
    std::vector<exec::LaneId> lanes;
    for (int g = 0; g < kGraphs; ++g) {
      rigs.push_back(std::make_unique<PlanRig>());
      if (frozen) rigs.back()->graph.freeze_plan();
      lanes.push_back(engine.create_lane());
    }
    for (int i = 0; i < 200; ++i) {
      for (int g = 0; g < kGraphs; ++g) {
        engine.post(lanes[g], [&rigs, g, i] {
          rigs[g]->source->push(Tick{i * (g + 1)});
        });
      }
    }
    engine.run_until_idle();
    std::string all;
    for (const auto& rig : rigs) all += rig->transcript.str() + "|";
    return all;
  };
  const std::string baseline = run(0, false);
  for (const std::size_t workers : {std::size_t{0}, std::size_t{1},
                                    std::size_t{8}}) {
    EXPECT_EQ(run(workers, true), baseline) << "workers=" << workers;
    EXPECT_EQ(run(workers, false), baseline) << "workers=" << workers;
  }
}

TEST(Plan, FreezeAndThawMidStreamAreSeamless) {
  // One rig toggled frozen/interpreted every few events must match an
  // always-interpreted run: logical time and pending provenance carry
  // across the boundary in both directions.
  PlanRig toggled;
  PlanRig baseline;
  std::mt19937_64 rng(99);
  for (int i = 0; i < 300; ++i) {
    const int v = static_cast<int>(rng() % 1000);
    toggled.source->push(Tick{v});
    baseline.source->push(Tick{v});
    if (i % 7 == 0) {
      if (toggled.graph.frozen()) {
        toggled.graph.thaw_plan();
      } else {
        toggled.graph.freeze_plan();
      }
    }
  }
  EXPECT_EQ(toggled.transcript.str(), baseline.transcript.str());
}

TEST(Plan, ProvenanceChainsSurviveFreezeThawAndGraphDeath) {
  // Samples retained by the application must keep their provenance buffers
  // alive through thaw (arena buffers are shared, not owned) and through
  // graph destruction — ASan guards the lifetime claim in CI.
  core::Sample kept;
  {
    core::ProcessingGraph graph;
    const auto src = graph.add(tick_source());
    const auto stage = graph.add(add_stage(1));
    graph.connect(src, stage);
    const auto sink = graph.add(std::make_shared<core::ApplicationSink>(
        "Sink", std::vector<core::InputRequirement>{core::require<Tick>()},
        [&kept](const core::Sample& s) { kept = s; }));
    graph.connect(stage, sink);
    graph.freeze_plan();
    auto* source = graph.component_as<core::SourceComponent>(src);
    for (int i = 0; i < 50; ++i) source->push(Tick{i});
    graph.thaw_plan();
    source->push(Tick{50});
    graph.freeze_plan();
    source->push(Tick{51});
  }
  ASSERT_NE(kept.inputs, nullptr);
  ASSERT_EQ(kept.inputs->size(), 1u);
  EXPECT_EQ(kept.inputs->front().payload.get<Tick>()->value, 51);
}

// --- Freeze gates and auto-thaw ---------------------------------------------

TEST(Plan, EveryStructuralMutationThaws) {
  PlanRig rig;
  auto refreeze = [&rig] {
    rig.graph.freeze_plan();
    ASSERT_TRUE(rig.graph.frozen());
  };

  refreeze();
  const auto extra = rig.graph.add(add_stage(2));
  EXPECT_FALSE(rig.graph.frozen()) << "add must thaw";

  refreeze();
  rig.graph.connect(rig.c_id, extra);
  EXPECT_FALSE(rig.graph.frozen()) << "connect must thaw";

  refreeze();
  rig.graph.disconnect(rig.c_id, extra);
  EXPECT_FALSE(rig.graph.frozen()) << "disconnect must thaw";

  refreeze();
  rig.graph.remove(extra);
  EXPECT_FALSE(rig.graph.frozen()) << "remove must thaw";

  refreeze();
  const auto mid = rig.graph.add(add_stage(3));
  EXPECT_FALSE(rig.graph.frozen());
  refreeze();
  rig.graph.insert_between(mid, rig.a_id, rig.c_id);
  EXPECT_FALSE(rig.graph.frozen()) << "insert_between must thaw";

  refreeze();
  rig.graph.replace(rig.c_id, add_stage(100));
  EXPECT_FALSE(rig.graph.frozen()) << "replace must thaw";

  refreeze();
  rig.graph.attach_feature(rig.c_id, std::make_shared<EchoFeature>());
  EXPECT_FALSE(rig.graph.frozen()) << "attach_feature must thaw";

  refreeze();
  rig.graph.detach_feature(rig.c_id, "echo");
  EXPECT_FALSE(rig.graph.frozen()) << "detach_feature must thaw";
}

TEST(Plan, FreezeRefusedDuringDispatchAndUnderIncompatibleObservability) {
  core::ProcessingGraph graph;
  const auto src = graph.add(tick_source());
  const auto probe = graph.add(std::make_shared<core::ApplicationSink>(
      "Probe", std::vector<core::InputRequirement>{core::require<Tick>()},
      [&graph](const core::Sample&) {
        EXPECT_NE(graph.freeze_blocker(), nullptr);
        EXPECT_THROW(graph.freeze_plan(), std::logic_error);
        EXPECT_THROW(graph.thaw_plan(), std::logic_error);
      }));
  graph.connect(src, probe);
  graph.component_as<core::SourceComponent>(src)->push(Tick{1});

  obs::ObservabilityConfig cfg;
  cfg.timing = true;
  graph.enable_observability(cfg);
  EXPECT_NE(graph.freeze_blocker(), nullptr);
  EXPECT_THROW(graph.freeze_plan(), std::logic_error);

  cfg.timing = false;
  cfg.tracing = true;
  graph.enable_observability(cfg);
  EXPECT_THROW(graph.freeze_plan(), std::logic_error);

  cfg.tracing = false;
  cfg.latency = true;
  graph.enable_observability(cfg);
  EXPECT_THROW(graph.freeze_plan(), std::logic_error);

  // Plain metrics (and recording) are frozen-compatible.
  cfg.latency = false;
  cfg.metrics = true;
  cfg.recording = true;
  graph.enable_observability(cfg);
  EXPECT_EQ(graph.freeze_blocker(), nullptr);
  graph.freeze_plan();
  EXPECT_TRUE(graph.frozen());
  // Reconfiguring observability thaws.
  graph.enable_observability(cfg);
  EXPECT_FALSE(graph.frozen());
  graph.freeze_plan();
  graph.disable_observability();
  EXPECT_FALSE(graph.frozen());
}

TEST(Plan, FeatureMutationMidDispatchIsRefusedWhileFrozen) {
  core::ProcessingGraph graph;
  const auto src = graph.add(tick_source());
  core::ComponentId sink_id = core::kInvalidComponent;
  sink_id = graph.add(std::make_shared<core::ApplicationSink>(
      "Sink", std::vector<core::InputRequirement>{core::require<Tick>()},
      [&graph, &sink_id](const core::Sample&) {
        EXPECT_THROW(
            graph.attach_feature(sink_id, std::make_shared<EchoFeature>()),
            std::logic_error);
      }));
  graph.connect(src, sink_id);
  graph.freeze_plan();
  graph.component_as<core::SourceComponent>(src)->push(Tick{1});
  EXPECT_TRUE(graph.frozen());
}

// --- Observability on the frozen path ---------------------------------------

TEST(Plan, MetricCountersMatchInterpretedRun) {
  auto run = [](bool frozen) {
    PlanRig rig;
    obs::ObservabilityConfig cfg;
    cfg.metrics = true;
    cfg.timing = false;  // Timing needs the interpreted path.
    rig.graph.enable_observability(cfg);
    if (frozen) rig.graph.freeze_plan();
    drive(rig, 1234, 250);
    return rig.graph.metrics();
  };
  const obs::MetricsSnapshot a = run(false);
  const obs::MetricsSnapshot b = run(true);
  for (const char* name :
       {"perpos_graph_deliveries_total", "perpos_graph_rejections_total"}) {
    const auto* ca = a.find_counter(name);
    const auto* cb = b.find_counter(name);
    ASSERT_NE(ca, nullptr) << name;
    ASSERT_NE(cb, nullptr) << name;
    EXPECT_EQ(ca->value, cb->value) << name;
    EXPECT_GT(ca->value, 0u) << name;
  }
  for (const char* name :
       {"perpos_component_emitted_total", "perpos_component_delivered_total",
        "perpos_component_rejected_total",
        "perpos_component_produce_vetoed_total"}) {
    for (const char* id : {"0", "1", "2", "3", "4", "5"}) {
      const auto* ca = a.find_counter(name, "component", id);
      const auto* cb = b.find_counter(name, "component", id);
      ASSERT_EQ(ca == nullptr, cb == nullptr) << name << " #" << id;
      if (ca != nullptr) {
        EXPECT_EQ(ca->value, cb->value) << name << " #" << id;
      }
    }
  }
}

namespace {

struct CountingSentry final : core::GraphSentry {
  std::uint64_t emits = 0;
  std::uint64_t delivers = 0;
  std::uint64_t depth_sum = 0;
  std::uint64_t cascade_sum = 0;
  void on_emit(const core::Sample&) override { ++emits; }
  void on_deliver(const core::Sample&, core::ComponentId,
                  std::size_t queue_depth, std::uint64_t cascade) override {
    ++delivers;
    depth_sum += queue_depth;
    cascade_sum += cascade;
  }
};

}  // namespace

TEST(Plan, SentryObservesIdenticalDispatchFrozen) {
  auto run = [](bool frozen) {
    PlanRig rig;
    CountingSentry sentry;
    rig.graph.set_sentry(&sentry);
    if (frozen) rig.graph.freeze_plan();
    drive(rig, 5678, 250);
    rig.graph.set_sentry(nullptr);
    return std::tuple{sentry.emits, sentry.delivers, sentry.depth_sum,
                      sentry.cascade_sum};
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Plan, FlightRecorderKeepsFiringFrozenAndMarksFreezeThaw) {
  core::ProcessingGraph graph;
  obs::FlightRecorder recorder(128);
  const std::uint32_t ring = recorder.add_lane("graph");
  graph.set_flight_recorder(&recorder, ring);
  const auto src = graph.add(tick_source());
  const auto sink = graph.add(std::make_shared<core::ApplicationSink>(
      "Sink", std::vector<core::InputRequirement>{core::require<Tick>()},
      [](const core::Sample&) {}));
  graph.connect(src, sink);
  graph.freeze_plan();
  graph.component_as<core::SourceComponent>(src)->push(Tick{1});
  graph.thaw_plan();

  bool saw_emit = false;
  bool saw_deliver = false;
  bool saw_freeze = false;
  bool saw_thaw = false;
  for (const obs::FlightEvent& event : recorder.merged_events()) {
    if (event.type == obs::FlightEventType::kEmit) saw_emit = true;
    if (event.type == obs::FlightEventType::kDeliver) saw_deliver = true;
    if (event.type == obs::FlightEventType::kMark) {
      const std::string_view detail(event.detail);
      if (detail == "plan.freeze") saw_freeze = true;
      if (detail == "plan.thaw") saw_thaw = true;
    }
  }
  EXPECT_TRUE(saw_emit);
  EXPECT_TRUE(saw_deliver);
  EXPECT_TRUE(saw_freeze);
  EXPECT_TRUE(saw_thaw);
}

// --- GraphPlan policy layer --------------------------------------------------

TEST(Plan, GraphPlanVerifiesThenFreezesAndAutoRefreezes) {
  PlanRig rig;
  plan::GraphPlan policy(rig.graph);
  const plan::FreezeResult result = policy.freeze();
  ASSERT_TRUE(result.frozen) << result.reason;
  EXPECT_TRUE(policy.frozen());
  EXPECT_TRUE(policy.armed());

  // A mutation thaws the core plan; the policy re-verifies (O(delta)) and
  // re-freezes behind it.
  rig.graph.replace(rig.c_id, add_stage(100));
  EXPECT_TRUE(policy.frozen()) << "auto-refreeze after replace";
  EXPECT_GE(policy.stats().freezes, 2u);
  EXPECT_GE(policy.stats().auto_thaws, 1u);

  // Traffic still flows, and the result matches a never-frozen twin.
  PlanRig twin;
  twin.graph.replace(twin.c_id, add_stage(100));
  drive(rig, 31, 100);
  drive(twin, 31, 100);
  EXPECT_EQ(rig.transcript.str(), twin.transcript.str());

  policy.thaw();
  EXPECT_FALSE(policy.frozen());
  EXPECT_FALSE(policy.armed());
  rig.graph.replace(rig.c_id, add_stage(100));
  EXPECT_FALSE(policy.frozen()) << "disarmed policy must not refreeze";
}

TEST(Plan, GraphPlanRefusesDirtyGraphAndRecoversWhenClean) {
  PlanRig rig;
  plan::GraphPlan policy(rig.graph);
  ASSERT_TRUE(policy.freeze().frozen);

  // A dangling consumer with a mandatory input is a PPV001 *error*: the
  // auto-refreeze must refuse and the graph stays interpreted.
  const auto orphan = rig.graph.add(add_stage(1));
  EXPECT_FALSE(policy.frozen());
  EXPECT_GE(policy.stats().refreeze_failures, 1u);
  EXPECT_TRUE(policy.armed());

  // freeze() reports the failure rather than throwing.
  const plan::FreezeResult refused = policy.freeze();
  EXPECT_FALSE(refused.frozen);
  EXPECT_NE(refused.reason.find("PPV001"), std::string::npos)
      << refused.reason;
  EXPECT_FALSE(refused.report.ok());

  // Repairing the graph re-freezes on the next mutation automatically.
  rig.graph.connect(rig.c_id, orphan);
  EXPECT_TRUE(policy.frozen()) << "clean graph must refreeze";

  // A blocker is reported, not thrown, by the policy layer.
  policy.thaw();
  obs::ObservabilityConfig cfg;
  cfg.timing = false;  // Default-on timing would block first and mask tracing.
  cfg.tracing = true;
  rig.graph.enable_observability(cfg);
  const plan::FreezeResult blocked = policy.freeze();
  EXPECT_FALSE(blocked.frozen);
  EXPECT_NE(blocked.reason.find("tracing"), std::string::npos);
}

// --- Reconfiguration paths ---------------------------------------------------

namespace {

/// Behaviorally identical successor for PlanRig's C stage (Add +100).
std::shared_ptr<core::ProcessingComponent> c_successor() {
  return add_stage(100);
}

}  // namespace

TEST(Plan, HotSwapRollbackAndTeeAllThawAndRefreeze) {
  PlanRig rig(/*with_feature=*/false);
  exec::ExecutionEngine engine(0);
  const exec::LaneId lane = engine.create_lane();
  reconfig::LiveReconfigurator reconf(rig.graph, engine, lane);
  plan::GraphPlan policy(rig.graph);
  ASSERT_TRUE(policy.freeze().frozen);

  for (int i = 0; i < 5; ++i) rig.source->push(Tick{i});
  const std::uint64_t thaws_before = policy.stats().auto_thaws;

  // Verified hot-swap: fence -> verify -> handoff -> commit. Every one of
  // those graph mutations thaws; the policy refreezes behind the commit.
  const auto swap = reconf.replace(rig.c_id, c_successor());
  ASSERT_TRUE(swap.ok()) << swap.error;
  engine.run_until_idle();
  EXPECT_GT(policy.stats().auto_thaws, thaws_before);
  EXPECT_TRUE(policy.frozen()) << "refrozen after hot-swap commit";

  // rollback(epoch) is itself a verified swap: same lifecycle.
  const auto back = reconf.rollback(0);
  ASSERT_TRUE(back.ok()) << back.error;
  engine.run_until_idle();
  EXPECT_TRUE(policy.frozen()) << "refrozen after rollback";

  // A/B tee: staging the shadow mutates the graph (thaw + refreeze), and
  // the promotion goes through the normal verified swap.
  auto begun = reconf.begin_tee(rig.c_id, c_successor(), /*compare=*/{},
                                /*quota=*/3);
  ASSERT_EQ(begun.outcome, reconfig::SwapOutcome::kTeeing) << begun.error;
  for (int i = 0; i < 3; ++i) rig.source->push(Tick{100 + i});
  const auto promoted = reconf.poll_tee();
  ASSERT_TRUE(promoted.ok()) << promoted.error;
  EXPECT_FALSE(reconf.tee_active());
  EXPECT_TRUE(policy.frozen()) << "refrozen after tee promotion";

  // And traffic still matches a never-frozen, never-swapped twin (the
  // swaps installed behaviorally identical successors). The twin replays
  // the rig's warm-up traffic so the per-producer sequence counters in the
  // transcript line up; the tee shadow only ran samples through the
  // not-yet-live successor, so it consumed no live sequence numbers.
  PlanRig twin(/*with_feature=*/false);
  for (int i = 0; i < 5; ++i) twin.source->push(Tick{i});
  for (int i = 0; i < 3; ++i) twin.source->push(Tick{100 + i});
  std::ostringstream rig_warmup;
  std::ostringstream twin_warmup;
  rig.transcript.swap(rig_warmup);
  twin.transcript.swap(twin_warmup);
  for (int i = 0; i < 50; ++i) {
    rig.source->push(Tick{500 + i});
    twin.source->push(Tick{500 + i});
  }
  EXPECT_EQ(rig.transcript.str(), twin.transcript.str());
}

// --- Chaos property test -----------------------------------------------------

TEST(Plan, ChaosMutationsKeepTranscriptsIdenticalAndAlwaysThaw) {
  // Random interleaving of traffic and mutations applied identically to a
  // frozen-with-auto-refreeze rig and a never-frozen twin. Transcripts
  // must stay byte-identical; after every mutation the frozen rig must
  // either have refrozen (clean graph) or be interpreted — never stale.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    PlanRig rig(/*with_feature=*/false);
    PlanRig twin(/*with_feature=*/false);
    plan::GraphPlan policy(rig.graph);
    ASSERT_TRUE(policy.freeze().frozen);

    std::mt19937_64 rng(seed);
    bool extra_edge = false;
    for (int i = 0; i < 600; ++i) {
      const std::uint64_t roll = rng() % 20;
      if (roll == 0) {
        // Toggle a redundant edge (Src -> C directly; C requires Tick, so
        // the edge is realizable and changes delivery fan-out).
        if (!extra_edge) {
          rig.graph.connect(rig.source_id, rig.c_id);
          twin.graph.connect(twin.source_id, twin.c_id);
        } else {
          rig.graph.disconnect(rig.source_id, rig.c_id);
          twin.graph.disconnect(twin.source_id, twin.c_id);
        }
        extra_edge = !extra_edge;
        EXPECT_TRUE(policy.frozen()) << "seed=" << seed << " i=" << i;
      } else if (roll == 1) {
        rig.graph.replace(rig.b_id, add_stage(10));
        twin.graph.replace(twin.b_id, add_stage(10));
        EXPECT_TRUE(policy.frozen()) << "seed=" << seed << " i=" << i;
      } else if (roll == 2) {
        // Manual thaw/freeze churn through the policy layer.
        policy.thaw();
        ASSERT_TRUE(policy.freeze().frozen);
      } else if (roll < 6) {
        std::vector<core::Payload> burst;
        const std::size_t n = 1 + rng() % 4;
        for (std::size_t j = 0; j < n; ++j) {
          burst.push_back(
              core::Payload::make(Tick{static_cast<int>(rng() % 1000)}));
        }
        std::vector<core::Payload> burst_twin;
        for (const core::Payload& p : burst) burst_twin.push_back(p);
        rig.source->push_payload_batch(std::move(burst));
        twin.source->push_payload_batch(std::move(burst_twin));
      } else {
        const int v = static_cast<int>(rng() % 1000);
        rig.source->push(Tick{v});
        twin.source->push(Tick{v});
      }
    }
    EXPECT_EQ(rig.transcript.str(), twin.transcript.str())
        << "seed=" << seed;
  }
}
