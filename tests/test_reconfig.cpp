// Live reconfiguration tests (perpos::reconfig):
//  - zero-loss/zero-duplicate hot swap under traffic: a swap at 8 workers
//    with a FlakyLink in the pipeline yields a transcript byte-identical
//    to the no-swap run (state handed off, logical time continuous),
//  - verifier gate: a rejected swap leaves the incumbent installed and
//    the transcript byte-identical (staging never flushes),
//  - epoch rollback: committed swaps reverse newest-first, every rollback
//    triggers a FlightRecorder dump carrying the kReconfig events,
//  - failed handoff (throwing restore_state) aborts with the incumbent
//    in place,
//  - A/B tee: matching transcripts promote the successor, divergence
//    auto-aborts and removes the shadow,
//  - health probation: a successor going silent inside the probation
//    window is rolled back automatically,
//  - churn soak: repeated swap/rollback under FlakyLink traffic keeps the
//    transcript equivalent to the no-churn run (run under TSan in CI).

#include "perpos/core/components.hpp"
#include "perpos/core/data_types.hpp"
#include "perpos/core/graph.hpp"
#include "perpos/exec/engine.hpp"
#include "perpos/health/watchdog.hpp"
#include "perpos/obs/flight_recorder.hpp"
#include "perpos/reconfig/live_reconfigurator.hpp"
#include "perpos/sanitize/sanitizer.hpp"
#include "perpos/sensors/failure_injection.hpp"
#include "perpos/sim/random.hpp"
#include "perpos/sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace core = perpos::core;
namespace exec = perpos::exec;
namespace health = perpos::health;
namespace obs = perpos::obs;
namespace reconfig = perpos::reconfig;
namespace sanitize = perpos::sanitize;
namespace sensors = perpos::sensors;
namespace sim = perpos::sim;

namespace {

struct Tick {
  int value = 0;
};

/// A stateful pass-through stage: appends "#<n>" (its running sample
/// count) to every fragment. The count is the state a hot swap must carry
/// over — any loss, duplication or reset shows up in the transcript.
class CountingStage : public core::ProcessingComponent {
 public:
  explicit CountingStage(std::string kind = "Counting")
      : kind_(std::move(kind)) {}

  std::string_view kind() const override { return kind_; }
  std::vector<core::InputRequirement> input_requirements() const override {
    return {core::require<core::RawFragment>()};
  }
  std::vector<core::DataSpec> output_capabilities() const override {
    return {core::provide<core::RawFragment>()};
  }

  void on_input(const core::Sample& sample) override {
    const auto* fragment = sample.payload.get<core::RawFragment>();
    if (fragment == nullptr) return;
    ++count_;
    context().emit(core::Payload::make(
        core::RawFragment{fragment->bytes + "#" + std::to_string(count_)}));
  }

  std::string serialize_state() const override {
    return std::to_string(count_);
  }
  void restore_state(const std::string& blob) override {
    count_ = blob.empty() ? 0 : std::stoull(blob);
  }

  std::uint64_t count() const noexcept { return count_; }

 private:
  std::string kind_;
  std::uint64_t count_ = 0;
};

/// Sink that interprets its input against a named coordinate frame: a
/// successor emitting a different frame passes every type check but is an
/// error for the static analyzer (PPV007 frame-mismatch).
class FramedSink final : public core::ApplicationSink, public core::FrameAware {
 public:
  FramedSink(std::string frame, Callback callback)
      : core::ApplicationSink(
            "Sink",
            std::vector<core::InputRequirement>{
                core::require<core::RawFragment>()},
            std::move(callback)),
        frame_(std::move(frame)) {}
  std::string input_frame() const override { return frame_; }

 private:
  std::string frame_;
};

/// Successor whose output is bound to the wrong building frame: every
/// inbound/outbound edge stays type-realizable, so structural staging
/// succeeds — only the verifier (PPV007 frame-mismatch, an error) can
/// reject it.
class WrongFrameStage final : public CountingStage, public core::FrameAware {
 public:
  WrongFrameStage() : CountingStage("WrongFrame") {}
  std::string output_frame() const override { return "siteB"; }
};

class ExplodingRestore final : public CountingStage {
 public:
  ExplodingRestore() : CountingStage("Exploding") {}
  void restore_state(const std::string&) override {
    throw std::runtime_error("successor refuses the handed-off state");
  }
};

/// Emits "!<n>" instead of "#<n>": same types (the default comparator
/// would pass), different bytes (a byte comparator flags divergence).
class DivergentStage final : public core::ProcessingComponent {
 public:
  std::string_view kind() const override { return "Divergent"; }
  std::vector<core::InputRequirement> input_requirements() const override {
    return {core::require<core::RawFragment>()};
  }
  std::vector<core::DataSpec> output_capabilities() const override {
    return {core::provide<core::RawFragment>()};
  }
  void on_input(const core::Sample& sample) override {
    const auto* fragment = sample.payload.get<core::RawFragment>();
    if (fragment == nullptr) return;
    ++count_;
    context().emit(core::Payload::make(
        core::RawFragment{fragment->bytes + "!" + std::to_string(count_)}));
  }

 private:
  std::uint64_t count_ = 0;
};

/// Src -> FlakyLink -> CountingStage -> Sink, transcript at the sink.
struct ChaosRig {
  explicit ChaosRig(std::uint64_t seed, bool flaky = true) : random(seed) {
    source = std::make_shared<core::SourceComponent>(
        "Src",
        std::vector<core::DataSpec>{core::provide<core::RawFragment>()});
    source_id = graph.add(source);
    core::ComponentId prev = source_id;
    if (flaky) {
      sensors::FailureInjectionConfig cfg;
      cfg.drop_probability = 0.05;
      cfg.garble_probability = 0.02;
      cfg.duplicate_probability = 0.05;
      cfg.reorder_probability = 0.05;
      link_id = graph.add(
          std::make_shared<sensors::FlakyLinkComponent>(cfg, random));
      graph.connect(prev, link_id);
      prev = link_id;
    }
    stage_id = graph.add(std::make_shared<CountingStage>("CountingV1"));
    graph.connect(prev, stage_id);
    // The sink is frame-aware (siteA): frame-neutral stages match it, a
    // wrong-frame successor is a PPV007 verifier error.
    sink_id = graph.add(std::make_shared<FramedSink>(
        "siteA", [this](const core::Sample& s) {
          transcript << s.payload.get<core::RawFragment>()->bytes << ':'
                     << s.sequence << ';';
        }));
    graph.connect(stage_id, sink_id);
  }

  sim::Random random;
  core::ProcessingGraph graph;
  std::shared_ptr<core::SourceComponent> source;
  core::ComponentId source_id = core::kInvalidComponent;
  core::ComponentId link_id = core::kInvalidComponent;
  core::ComponentId stage_id = core::kInvalidComponent;
  core::ComponentId sink_id = core::kInvalidComponent;
  std::ostringstream transcript;
};

/// Push `total` fragments through a ChaosRig on `workers` workers,
/// hot-swapping the counting stage `swaps` times spread through the
/// traffic. Every swap installs a behaviorally identical successor, so
/// the transcript must be byte-identical to the swap-free run.
std::string run_chaos(std::size_t workers, int swaps, std::uint64_t seed,
                      int total = 2000) {
  ChaosRig rig(seed);
  exec::ExecutionEngine engine(workers);
  const exec::LaneId lane = engine.create_lane("chaos");
  reconfig::LiveReconfigurator reconf(rig.graph, engine, lane);

  int pushed = 0;
  const int per_phase = total / (swaps + 1);
  for (int phase = 0; phase <= swaps; ++phase) {
    const int n = phase == swaps ? total - pushed : per_phase;
    for (int i = 0; i < n; ++i) {
      const int value = pushed++;
      engine.post(lane, [&rig, value] {
        rig.source->push(core::RawFragment{"s" + std::to_string(value)});
      });
    }
    if (phase < swaps) {
      // Swap while the lane still drains the phase's traffic.
      const auto result = reconf.replace(
          rig.stage_id, std::make_shared<CountingStage>(
                            phase % 2 == 0 ? "CountingV2" : "CountingV1"));
      EXPECT_TRUE(result.ok()) << result.error;
    }
  }
  engine.run_until_idle();
  EXPECT_EQ(engine.failed(), 0u);
  EXPECT_EQ(reconf.commits(), static_cast<std::uint64_t>(swaps));
  return rig.transcript.str();
}

}  // namespace

// --- Hot swap ----------------------------------------------------------------

TEST(Reconfig, HandoffTransfersStateAndLogicalTime) {
  ChaosRig rig(7, /*flaky=*/false);
  exec::ExecutionEngine engine(0);
  const exec::LaneId lane = engine.create_lane();
  reconfig::LiveReconfigurator reconf(rig.graph, engine, lane);

  for (int i = 0; i < 5; ++i) rig.source->push(core::RawFragment{"a"});
  const auto result =
      reconf.replace(rig.stage_id, std::make_shared<CountingStage>("V2"));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.epoch, 1u);
  EXPECT_EQ(rig.graph.info(rig.stage_id).kind, "V2");
  for (int i = 0; i < 5; ++i) rig.source->push(core::RawFragment{"a"});

  // Counts run 1..10 with no reset and no gap, and the sink's per-producer
  // sequence numbers stay continuous across the swap.
  EXPECT_EQ(rig.transcript.str(),
            "a#1:1;a#2:2;a#3:3;a#4:4;a#5:5;"
            "a#6:6;a#7:7;a#8:8;a#9:9;a#10:10;");
}

TEST(Reconfig, ZeroLossSwapUnderTrafficMatchesNoSwapRun) {
  const std::string baseline = run_chaos(/*workers=*/0, /*swaps=*/0, 1234);
  ASSERT_FALSE(baseline.empty());
  const std::string swapped = run_chaos(/*workers=*/8, /*swaps=*/3, 1234);
  EXPECT_EQ(swapped, baseline)
      << "hot swap under traffic changed the delivered sample stream";
}

TEST(Reconfig, RejectedSwapLeavesTranscriptByteIdentical) {
  ChaosRig control(9, /*flaky=*/false);
  ChaosRig rig(9, /*flaky=*/false);
  exec::ExecutionEngine engine(0);
  const exec::LaneId lane = engine.create_lane();
  reconfig::LiveReconfigurator reconf(rig.graph, engine, lane);

  for (int i = 0; i < 4; ++i) {
    control.source->push(core::RawFragment{"x"});
    rig.source->push(core::RawFragment{"x"});
  }
  const auto result =
      reconf.replace(rig.stage_id, std::make_shared<WrongFrameStage>());
  EXPECT_EQ(result.outcome, reconfig::SwapOutcome::kRejected);
  EXPECT_GE(result.report.errors(), 1u);
  EXPECT_EQ(reconf.rejects(), 1u);
  EXPECT_EQ(rig.graph.epoch(), 0u);  // No commit, no epoch advance.
  EXPECT_EQ(rig.graph.info(rig.stage_id).kind, "CountingV1");
  for (int i = 0; i < 4; ++i) {
    control.source->push(core::RawFragment{"x"});
    rig.source->push(core::RawFragment{"x"});
  }
  EXPECT_EQ(rig.transcript.str(), control.transcript.str());
}

TEST(Reconfig, StructurallyImpossibleSwapIsRejected) {
  ChaosRig rig(3, /*flaky=*/false);
  exec::ExecutionEngine engine(0);
  const exec::LaneId lane = engine.create_lane();
  reconfig::LiveReconfigurator reconf(rig.graph, engine, lane);

  // A source has no inputs: every inbound edge of the victim becomes
  // unrealizable, which core::ProcessingGraph::replace refuses outright.
  auto bad = std::make_shared<core::SourceComponent>(
      "Bad", std::vector<core::DataSpec>{core::provide<Tick>()});
  const auto result = reconf.replace(rig.stage_id, bad);
  EXPECT_EQ(result.outcome, reconfig::SwapOutcome::kRejected);
  EXPECT_FALSE(result.error.empty());
  EXPECT_EQ(rig.graph.info(rig.stage_id).kind, "CountingV1");
}

TEST(Reconfig, FailedHandoffAbortsWithIncumbentInstalled) {
  ChaosRig rig(5, /*flaky=*/false);
  exec::ExecutionEngine engine(0);
  const exec::LaneId lane = engine.create_lane();
  reconfig::LiveReconfigurator reconf(rig.graph, engine, lane);

  for (int i = 0; i < 3; ++i) rig.source->push(core::RawFragment{"b"});
  const auto result =
      reconf.replace(rig.stage_id, std::make_shared<ExplodingRestore>());
  EXPECT_EQ(result.outcome, reconfig::SwapOutcome::kAborted);
  EXPECT_NE(result.error.find("refuses"), std::string::npos);
  EXPECT_EQ(reconf.aborts(), 1u);
  EXPECT_EQ(rig.graph.epoch(), 0u);
  EXPECT_EQ(rig.graph.info(rig.stage_id).kind, "CountingV1");
  // The incumbent keeps working after the aborted swap.
  rig.source->push(core::RawFragment{"b"});
  EXPECT_NE(rig.transcript.str().find("b#4"), std::string::npos);
}

// --- Rollback ----------------------------------------------------------------

TEST(Reconfig, RollbackRestoresPredecessorsNewestFirst) {
  ChaosRig rig(11, /*flaky=*/false);
  exec::ExecutionEngine engine(0);
  const exec::LaneId lane = engine.create_lane();
  reconfig::LiveReconfigurator reconf(rig.graph, engine, lane);

  ASSERT_TRUE(
      reconf.replace(rig.stage_id, std::make_shared<CountingStage>("V2"))
          .ok());
  ASSERT_TRUE(
      reconf.replace(rig.stage_id, std::make_shared<CountingStage>("V3"))
          .ok());
  EXPECT_EQ(rig.graph.epoch(), 2u);
  EXPECT_EQ(reconf.rollback_epochs(), (std::vector<std::uint64_t>{0u, 1u}));

  const auto result = reconf.rollback(0);
  EXPECT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(rig.graph.info(rig.stage_id).kind, "CountingV1");
  EXPECT_EQ(reconf.rollbacks(), 1u);
  EXPECT_TRUE(reconf.rollback_epochs().empty());
  EXPECT_GT(rig.graph.epoch(), 2u);  // A rollback is itself a reconfig.
}

TEST(Reconfig, EveryRollbackTriggersFlightDumpWithReconfigEvents) {
  ChaosRig rig(13, /*flaky=*/false);
  exec::ExecutionEngine engine(0);
  const exec::LaneId lane = engine.create_lane();

  obs::FlightRecorder recorder(256);
  const std::uint32_t ring = recorder.add_lane("graph");
  rig.graph.set_flight_recorder(&recorder, ring);
  std::vector<std::string> dump_reasons;
  recorder.set_dump_handler(
      [&](const std::string& reason, const obs::FlightRecorder&) {
        dump_reasons.push_back(reason);
      });

  reconfig::LiveReconfigurator reconf(rig.graph, engine, lane);
  for (int i = 0; i < 3; ++i) rig.source->push(core::RawFragment{"r"});
  ASSERT_TRUE(
      reconf.replace(rig.stage_id, std::make_shared<CountingStage>("V2"))
          .ok());
  ASSERT_TRUE(reconf.rollback(0).ok());

  ASSERT_FALSE(dump_reasons.empty());
  EXPECT_NE(dump_reasons.back().find("rollback"), std::string::npos);

  // The dump carries the protocol's kReconfig events: the committed swap
  // and the rolled_back reversal.
  std::vector<std::string> phases;
  for (const obs::FlightEvent& event : recorder.merged_events()) {
    if (event.type == obs::FlightEventType::kReconfig) {
      phases.emplace_back(event.detail);
    }
  }
  EXPECT_NE(std::find(phases.begin(), phases.end(), "committed"),
            phases.end());
  EXPECT_NE(std::find(phases.begin(), phases.end(), "rolled_back"),
            phases.end());
}

TEST(Reconfig, RollbackBeyondBoundedHistoryFails) {
  ChaosRig rig(17, /*flaky=*/false);
  exec::ExecutionEngine engine(0);
  const exec::LaneId lane = engine.create_lane();
  reconfig::ReconfigOptions options;
  options.history = 2;
  reconfig::LiveReconfigurator reconf(rig.graph, engine, lane, options);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(reconf
                    .replace(rig.stage_id,
                             std::make_shared<CountingStage>(
                                 "V" + std::to_string(i + 2)))
                    .ok());
  }
  // Epoch 0's record fell off the two-deep history.
  const auto result = reconf.rollback(0);
  EXPECT_EQ(result.outcome, reconfig::SwapOutcome::kAborted);
  EXPECT_NE(result.error.find("bounded undo history"), std::string::npos);
  // Rolling back within the window still works.
  EXPECT_TRUE(reconf.rollback(1).ok());
  EXPECT_EQ(rig.graph.info(rig.stage_id).kind, "V2");
}

TEST(Reconfig, RollbackPreservesDisplacedState) {
  ChaosRig rig(19, /*flaky=*/false);
  exec::ExecutionEngine engine(0);
  const exec::LaneId lane = engine.create_lane();
  reconfig::LiveReconfigurator reconf(rig.graph, engine, lane);

  for (int i = 0; i < 5; ++i) rig.source->push(core::RawFragment{"c"});
  ASSERT_TRUE(
      reconf.replace(rig.stage_id, std::make_shared<CountingStage>("V2"))
          .ok());
  for (int i = 0; i < 2; ++i) rig.source->push(core::RawFragment{"c"});
  ASSERT_TRUE(reconf.rollback(0).ok());
  // V1 returns with the count it held when displaced (5); the samples the
  // successor processed are not replayed (they were delivered exactly
  // once), so the next count is 6.
  rig.source->push(core::RawFragment{"c"});
  const std::string transcript = rig.transcript.str();
  EXPECT_NE(transcript.find("c#6:6;c#7:7;"), std::string::npos);
  EXPECT_NE(transcript.find("c#6:8;"), std::string::npos)
      << transcript;  // Rolled-back V1 continues at 6 on sequence 8.
}

// --- A/B tee -----------------------------------------------------------------

TEST(Reconfig, TeePromotesSuccessorWhenTranscriptsMatch) {
  ChaosRig rig(23, /*flaky=*/false);
  exec::ExecutionEngine engine(0);
  const exec::LaneId lane = engine.create_lane();
  reconfig::LiveReconfigurator reconf(rig.graph, engine, lane);

  for (int i = 0; i < 3; ++i) rig.source->push(core::RawFragment{"t"});
  const std::size_t before = rig.graph.size();
  auto begun = reconf.begin_tee(rig.stage_id,
                                std::make_shared<CountingStage>("V2"),
                                /*compare=*/{}, /*quota=*/4);
  ASSERT_EQ(begun.outcome, reconfig::SwapOutcome::kTeeing) << begun.error;
  EXPECT_TRUE(reconf.tee_active());
  EXPECT_EQ(rig.graph.size(), before + 1);  // Shadow.

  for (int i = 0; i < 4; ++i) rig.source->push(core::RawFragment{"t"});
  const auto result = reconf.poll_tee();
  EXPECT_TRUE(result.ok()) << result.error;
  EXPECT_FALSE(reconf.tee_active());
  EXPECT_EQ(rig.graph.size(), before);  // Shadow gone.
  EXPECT_EQ(rig.graph.info(rig.stage_id).kind, "V2");
  // The promoted successor carried the incumbent's count (7), not the
  // shadow-warmup count.
  rig.source->push(core::RawFragment{"t"});
  EXPECT_NE(rig.transcript.str().find("t#8"), std::string::npos);
}

TEST(Reconfig, TeeDivergenceAbortsAndRemovesShadow) {
  ChaosRig rig(29, /*flaky=*/false);
  exec::ExecutionEngine engine(0);
  const exec::LaneId lane = engine.create_lane();
  reconfig::LiveReconfigurator reconf(rig.graph, engine, lane);

  obs::FlightRecorder recorder(256);
  const std::uint32_t ring = recorder.add_lane("graph");
  rig.graph.set_flight_recorder(&recorder, ring);

  const std::size_t before = rig.graph.size();
  auto begun = reconf.begin_tee(
      rig.stage_id, std::make_shared<DivergentStage>(),
      [](const core::Sample& a, const core::Sample& b) {
        return a.payload.get<core::RawFragment>()->bytes ==
               b.payload.get<core::RawFragment>()->bytes;
      },
      /*quota=*/8);
  ASSERT_EQ(begun.outcome, reconfig::SwapOutcome::kTeeing) << begun.error;

  for (int i = 0; i < 3; ++i) rig.source->push(core::RawFragment{"d"});
  const auto result = reconf.poll_tee();
  EXPECT_EQ(result.outcome, reconfig::SwapOutcome::kAborted);
  EXPECT_NE(result.error.find("diverged"), std::string::npos);
  EXPECT_FALSE(reconf.tee_active());
  EXPECT_EQ(rig.graph.size(), before);
  EXPECT_EQ(rig.graph.info(rig.stage_id).kind, "CountingV1");
  EXPECT_GE(recorder.triggers(), 1u);
  // The incumbent's traffic was never disturbed by the shadow.
  EXPECT_EQ(rig.transcript.str(), "d#1:1;d#2:2;d#3:3;");
}

TEST(Reconfig, TeeOnSourceIsRefused) {
  ChaosRig rig(31, /*flaky=*/false);
  exec::ExecutionEngine engine(0);
  const exec::LaneId lane = engine.create_lane();
  reconfig::LiveReconfigurator reconf(rig.graph, engine, lane);
  const auto result = reconf.begin_tee(
      rig.source_id, std::make_shared<CountingStage>("V2"), {}, 4);
  EXPECT_EQ(result.outcome, reconfig::SwapOutcome::kAborted);
  EXPECT_NE(result.error.find("source"), std::string::npos);
  EXPECT_FALSE(reconf.tee_active());
}

// --- Probation ---------------------------------------------------------------

TEST(Reconfig, ProbationRollsBackSilentSuccessor) {
  sim::Scheduler scheduler;
  core::ProcessingGraph graph(&scheduler.clock());
  auto source = std::make_shared<core::SourceComponent>(
      "Src", std::vector<core::DataSpec>{core::provide<core::RawFragment>()});
  const auto source_id = graph.add(source);
  const auto stage_id = graph.add(std::make_shared<CountingStage>("V1"));
  graph.connect(source_id, stage_id);
  const auto sink_id = graph.add(std::make_shared<core::ApplicationSink>(
      "Sink",
      std::vector<core::InputRequirement>{core::require<core::RawFragment>()},
      nullptr));
  graph.connect(stage_id, sink_id);

  exec::ExecutionEngine engine(0);
  const exec::LaneId lane = engine.create_lane();
  health::WatchdogConfig cfg;
  cfg.check_interval = sim::SimTime::from_millis(500);
  cfg.degraded_after_s = 1.0;
  cfg.stale_after_s = 2.0;
  cfg.dead_after_s = 60.0;
  health::Watchdog dog(graph, scheduler, cfg);

  reconfig::ReconfigOptions options;
  options.probation_checks = 10;  // 5 s window at 500 ms checks.
  reconfig::LiveReconfigurator reconf(graph, engine, lane, options);
  reconf.enable_probation(dog);

  // Feed the stage so it is healthy at swap time, swap at t=1s, then let
  // the successor fall silent: stale at ~3s, well inside the window.
  for (double t = 0.2; t < 1.0; t += 0.2) {
    scheduler.schedule_at(sim::SimTime::from_seconds(t), [&] {
      source->push(core::RawFragment{"p"});
    });
  }
  scheduler.schedule_at(sim::SimTime::from_seconds(1.0), [&] {
    const auto result =
        reconf.replace(stage_id, std::make_shared<CountingStage>("V2"));
    EXPECT_TRUE(result.ok()) << result.error;
  });
  dog.start();
  scheduler.run_until(sim::SimTime::from_seconds(8.0));
  dog.stop();

  EXPECT_EQ(reconf.rollbacks(), 1u);
  EXPECT_EQ(graph.info(stage_id).kind, "V1");
}

// --- Churn soak --------------------------------------------------------------

TEST(Reconfig, ChurnSoakSwapAndRollbackUnderFlakyTraffic) {
  // Swap back and forth repeatedly while FlakyLink drops/duplicates/
  // reorders traffic at 8 workers; the transcript must stay byte-identical
  // to the churn-free single-threaded run. CI re-runs this under TSan.
  const std::string baseline = run_chaos(0, 0, 4321);
  const std::string churned = run_chaos(8, 7, 4321);
  EXPECT_EQ(churned, baseline);
}

TEST(Reconfig, SanitizerStaysQuietDuringProtocolMutations) {
  ChaosRig rig(37, /*flaky=*/false);
  exec::ExecutionEngine engine(4);
  const exec::LaneId lane = engine.create_lane();
  sanitize::GraphSanitizer sanitizer;
  sanitizer.attach(rig.graph);
  sanitizer.watch_engine(engine);
  sanitizer.unbind_thread();  // Pushes come from a worker, swaps from here.

  reconfig::LiveReconfigurator reconf(rig.graph, engine, lane);
  reconf.set_sanitizer(&sanitizer);
  for (int i = 0; i < 200; ++i) {
    engine.post(lane, [&rig] { rig.source->push(core::RawFragment{"q"}); });
  }
  const auto result =
      reconf.replace(rig.stage_id, std::make_shared<CountingStage>("V2"));
  EXPECT_TRUE(result.ok()) << result.error;
  engine.run_until_idle();
  // The fenced, quiesced swap must not look like a mutation-during-drain.
  for (const auto& diagnostic : sanitizer.report().diagnostics) {
    EXPECT_NE(diagnostic.rule_id, "PPS006") << diagnostic.message;
  }
  sanitizer.detach();
}
