// Unit and property tests for the NMEA substrate: framing, field parsing,
// generation round trips and incremental stream assembly.

#include "perpos/nmea/checksum.hpp"
#include "perpos/nmea/generate.hpp"
#include "perpos/nmea/parse.hpp"
#include "perpos/nmea/stream_parser.hpp"

#include <gtest/gtest.h>

namespace nmea = perpos::nmea;

TEST(Checksum, KnownValue) {
  // Classic example: "GPGGA,..." checksums are XOR over the body.
  EXPECT_EQ(nmea::checksum("GPGLL,5057.970,N,00146.110,E,142451,A"), 0x27);
}

TEST(Checksum, FrameProducesDollarAndHex) {
  const std::string framed = nmea::frame("GPXXX,1");
  EXPECT_EQ(framed.front(), '$');
  EXPECT_EQ(framed[framed.size() - 3], '*');
  std::string body;
  EXPECT_TRUE(nmea::unframe(framed, body));
  EXPECT_EQ(body, "GPXXX,1");
}

TEST(Checksum, UnframeToleratesCrlf) {
  std::string body;
  EXPECT_TRUE(nmea::unframe(nmea::frame("GPXXX,2") + "\r\n", body));
  EXPECT_TRUE(nmea::unframe(nmea::frame("GPXXX,2") + "\n", body));
  EXPECT_TRUE(nmea::unframe(nmea::frame("GPXXX,2") + "\r", body));
}

TEST(Checksum, UnframeRejectsCorruption) {
  std::string framed = nmea::frame("GPGGA,123");
  framed[3] = framed[3] == 'A' ? 'B' : 'A';  // Corrupt a body byte.
  std::string body;
  EXPECT_FALSE(nmea::unframe(framed, body));
}

TEST(Checksum, UnframeRejectsMalformedInputs) {
  std::string body;
  EXPECT_FALSE(nmea::unframe("", body));
  EXPECT_FALSE(nmea::unframe("GPGGA*00", body));        // No '$'.
  EXPECT_FALSE(nmea::unframe("$GP", body));             // Too short.
  EXPECT_FALSE(nmea::unframe("$GPGGA,1*ZZ", body));     // Bad hex.
  EXPECT_FALSE(nmea::unframe("$GPGGA,1", body));        // No checksum.
}

TEST(FieldParse, Latitude) {
  EXPECT_NEAR(*nmea::parse_latitude("5610.1820", "N"), 56.16970, 1e-5);
  EXPECT_NEAR(*nmea::parse_latitude("5610.1820", "S"), -56.16970, 1e-5);
  EXPECT_FALSE(nmea::parse_latitude("5610.1820", "X").has_value());
  EXPECT_FALSE(nmea::parse_latitude("9990.0000", "N").has_value());
  EXPECT_FALSE(nmea::parse_latitude("", "N").has_value());
  EXPECT_FALSE(nmea::parse_latitude("56xx.1820", "N").has_value());
}

TEST(FieldParse, Longitude) {
  EXPECT_NEAR(*nmea::parse_longitude("01011.9640", "E"), 10.19940, 1e-5);
  EXPECT_NEAR(*nmea::parse_longitude("01011.9640", "W"), -10.19940, 1e-5);
  EXPECT_FALSE(nmea::parse_longitude("01011.9640", "N").has_value());
  EXPECT_FALSE(nmea::parse_longitude("19990.0", "E").has_value());
}

TEST(FieldParse, UtcTime) {
  const auto t = nmea::parse_utc_time("123456.78");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->hours, 12);
  EXPECT_EQ(t->minutes, 34);
  EXPECT_NEAR(t->seconds, 56.78, 1e-9);
  EXPECT_NEAR(t->seconds_of_day(), 12 * 3600 + 34 * 60 + 56.78, 1e-9);
  EXPECT_FALSE(nmea::parse_utc_time("246060").has_value());
  EXPECT_FALSE(nmea::parse_utc_time("12").has_value());
}

// Property: generate -> parse is the identity for GGA across a sweep of
// positions and fix states.
class GgaRoundTrip : public ::testing::TestWithParam<
                         std::tuple<double, double, int, double>> {};

TEST_P(GgaRoundTrip, GenerateParse) {
  const auto [lat, lon, sats, hdop] = GetParam();
  nmea::GgaSentence gga;
  gga.time = {7, 30, 15.5};
  gga.latitude_deg = lat;
  gga.longitude_deg = lon;
  gga.quality = nmea::FixQuality::kGps;
  gga.satellites_in_use = sats;
  gga.hdop = hdop;
  gga.altitude_m = 47.3;

  const auto parsed = nmea::parse_sentence(nmea::generate_gga(gga));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->type, nmea::SentenceType::kGga);
  ASSERT_TRUE(parsed->gga.has_value());
  EXPECT_NEAR(parsed->gga->latitude_deg, lat, 2e-6);   // 0.0001 min approx.
  EXPECT_NEAR(parsed->gga->longitude_deg, lon, 2e-6);
  EXPECT_EQ(parsed->gga->satellites_in_use, sats);
  EXPECT_NEAR(parsed->gga->hdop, hdop, 0.051);
  EXPECT_NEAR(parsed->gga->altitude_m, 47.3, 0.051);
  EXPECT_EQ(parsed->gga->quality, nmea::FixQuality::kGps);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GgaRoundTrip,
    ::testing::Combine(::testing::Values(-33.8688, 0.0001, 56.1697, 89.9),
                       ::testing::Values(-122.4194, 0.0001, 10.1994, 179.9),
                       ::testing::Values(3, 7, 12),
                       ::testing::Values(0.8, 1.5, 9.9)));

TEST(Gga, NoFixHasEmptyPosition) {
  nmea::GgaSentence gga;
  gga.quality = nmea::FixQuality::kInvalid;
  gga.satellites_in_use = 2;
  gga.hdop = 12.0;
  const std::string text = nmea::generate_gga(gga);
  const auto parsed = nmea::parse_sentence(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(nmea::is_fix(parsed->gga->quality));
  EXPECT_EQ(parsed->gga->satellites_in_use, 2);
  EXPECT_DOUBLE_EQ(parsed->gga->latitude_deg, 0.0);
}

TEST(Rmc, RoundTripValid) {
  nmea::RmcSentence rmc;
  rmc.time = {23, 59, 59.0};
  rmc.valid = true;
  rmc.latitude_deg = 56.1697;
  rmc.longitude_deg = 10.1994;
  rmc.speed_knots = 4.5;
  rmc.course_deg = 270.0;
  rmc.date_ddmmyy = 51126;
  const auto parsed = nmea::parse_sentence(nmea::generate_rmc(rmc));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->type, nmea::SentenceType::kRmc);
  EXPECT_TRUE(parsed->rmc->valid);
  EXPECT_NEAR(parsed->rmc->latitude_deg, 56.1697, 2e-6);
  EXPECT_NEAR(parsed->rmc->speed_knots, 4.5, 0.051);
  EXPECT_EQ(parsed->rmc->date_ddmmyy, 51126);
}

TEST(Rmc, RoundTripVoid) {
  nmea::RmcSentence rmc;
  rmc.valid = false;
  const auto parsed = nmea::parse_sentence(nmea::generate_rmc(rmc));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->rmc->valid);
}

TEST(Gsa, RoundTrip) {
  nmea::GsaSentence gsa;
  gsa.mode = nmea::GsaSentence::Mode::k3d;
  gsa.satellite_prns = {2, 5, 9, 12, 25};
  gsa.pdop = 2.1;
  gsa.hdop = 1.3;
  gsa.vdop = 1.7;
  const auto parsed = nmea::parse_sentence(nmea::generate_gsa(gsa));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->type, nmea::SentenceType::kGsa);
  EXPECT_EQ(parsed->gsa->satellite_prns, gsa.satellite_prns);
  EXPECT_NEAR(parsed->gsa->hdop, 1.3, 0.051);
  EXPECT_EQ(parsed->gsa->mode, nmea::GsaSentence::Mode::k3d);
}

TEST(Gsv, RoundTrip) {
  nmea::GsvSentence gsv;
  gsv.total_messages = 2;
  gsv.message_number = 1;
  gsv.satellites_in_view = 7;
  gsv.satellites = {{2, 45, 120, 38}, {5, 12, 310, 22}};
  const auto parsed = nmea::parse_sentence(nmea::generate_gsv(gsv));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->type, nmea::SentenceType::kGsv);
  EXPECT_EQ(parsed->gsv->satellites, gsv.satellites);
  EXPECT_EQ(parsed->gsv->satellites_in_view, 7);
}

TEST(Parse, UnknownSentenceTypeIsPreserved) {
  const auto parsed = nmea::parse_sentence(nmea::frame("GPZDA,1,2,3"));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, nmea::SentenceType::kUnknown);
  EXPECT_EQ(parsed->talker, "GP");
}

TEST(Parse, RejectsTruncatedGga) {
  EXPECT_FALSE(nmea::parse_sentence(nmea::frame("GPGGA,123")).has_value());
}

TEST(Parse, SentenceTypeNames) {
  EXPECT_STREQ(nmea::to_string(nmea::SentenceType::kGga), "GGA");
  EXPECT_STREQ(nmea::to_string(nmea::SentenceType::kUnknown), "UNKNOWN");
}

// --- StreamParser ------------------------------------------------------------

namespace {

std::string sample_gga() {
  nmea::GgaSentence gga;
  gga.time = {10, 0, 0.0};
  gga.latitude_deg = 56.1;
  gga.longitude_deg = 10.2;
  gga.quality = nmea::FixQuality::kGps;
  gga.satellites_in_use = 8;
  gga.hdop = 1.1;
  return nmea::generate_gga(gga) + "\r\n";
}

}  // namespace

TEST(StreamParser, WholeSentenceAtOnce) {
  nmea::StreamParser parser;
  const auto out = parser.feed(sample_gga());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, nmea::SentenceType::kGga);
  EXPECT_EQ(parser.parsed_count(), 1u);
  EXPECT_EQ(parser.error_count(), 0u);
}

// Property: any fragmentation of the byte stream yields the same sentences
// — this is the many-strings-per-sentence behaviour of Fig. 4.
class StreamFragmentation : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StreamFragmentation, FragmentSizeInvariance) {
  const std::size_t chunk = GetParam();
  const std::string stream = sample_gga() + sample_gga() + sample_gga();
  nmea::StreamParser parser;
  std::size_t total = 0;
  for (std::size_t off = 0; off < stream.size(); off += chunk) {
    total += parser.feed(stream.substr(off, chunk)).size();
  }
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(parser.error_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, StreamFragmentation,
                         ::testing::Values(1, 2, 3, 7, 16, 50, 1000));

TEST(StreamParser, LineNoiseBetweenSentencesIsDiscarded) {
  nmea::StreamParser parser;
  auto out = parser.feed("garbage!!" + sample_gga() + "more-noise");
  EXPECT_EQ(out.size(), 1u);
  out = parser.feed(sample_gga());
  EXPECT_EQ(out.size(), 1u);
  EXPECT_GT(parser.discarded_bytes(), 0u);
}

TEST(StreamParser, TruncatedSentenceIsDroppedNotFatal) {
  nmea::StreamParser parser;
  // A sentence that never completes, followed by a good one.
  const auto out = parser.feed("$GPGGA,123" + sample_gga());
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(parser.error_count(), 1u);
}

TEST(StreamParser, ChecksumErrorCounted) {
  nmea::StreamParser parser;
  std::string bad = sample_gga();
  bad[10] = bad[10] == '0' ? '1' : '0';
  const auto out = parser.feed(bad);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(parser.error_count(), 1u);
}

TEST(StreamParser, ResetDropsPartialSentence) {
  nmea::StreamParser parser;
  parser.feed("$GPGGA,12");
  parser.reset();
  const auto out = parser.feed("3456*00\r\n" + sample_gga());
  EXPECT_EQ(out.size(), 1u);  // Only the complete good sentence.
}
