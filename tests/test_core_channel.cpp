// Tests for the Process Channel Layer: channel derivation over graph
// topologies, the Fig. 4 data tree with logical time, Channel Features and
// their survival across structural changes, and time-scoped feature access.

#include "perpos/core/channel.hpp"
#include "perpos/core/components.hpp"
#include "perpos/core/graph.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace core = perpos::core;
using core::Payload;
using core::Sample;

namespace {

struct Str {
  std::string text;
};
struct Word {
  std::string text;
};
struct Result {
  std::string text;
};

std::shared_ptr<core::SourceComponent> make_source(std::string kind = "Src") {
  return std::make_shared<core::SourceComponent>(
      std::move(kind), std::vector<core::DataSpec>{core::provide<Str>()});
}

/// Pass-through Str -> Str, used to lengthen channels.
std::shared_ptr<core::LambdaComponent> make_relay(std::string kind = "Relay") {
  return std::make_shared<core::LambdaComponent>(
      std::move(kind),
      std::vector<core::InputRequirement>{core::require<Str>()},
      std::vector<core::DataSpec>{core::provide<Str>()},
      [](const Sample& s, const core::ComponentContext& ctx) {
        ctx.emit(s.payload);
      });
}

/// Counts apply() invocations and records the last tree's shape.
class CountingFeature final : public core::ChannelFeature {
 public:
  std::string_view name() const override { return "Counting"; }
  void apply(const core::DataTree& tree) override {
    ++applies_;
    last_size_ = tree.size();
    last_depth_ = tree.depth();
  }
  int applies() const noexcept { return applies_; }
  std::size_t last_size() const noexcept { return last_size_; }
  std::size_t last_depth() const noexcept { return last_depth_; }

 private:
  int applies_ = 0;
  std::size_t last_size_ = 0;
  std::size_t last_depth_ = 0;
};

}  // namespace

TEST(Channels, LinearPipelineIsOneChannel) {
  core::ProcessingGraph g;
  core::ChannelManager channels(g);
  auto source = make_source("GPS");
  const auto a = g.add(source);
  const auto r1 = g.add(make_relay("Parser"));
  const auto r2 = g.add(make_relay("Interpreter"));
  const auto z = g.add(std::make_shared<core::ApplicationSink>());
  g.connect(a, r1);
  g.connect(r1, r2);
  g.connect(r2, z);

  const auto all = channels.channels();
  ASSERT_EQ(all.size(), 1u);
  const core::Channel* c = all[0];
  EXPECT_EQ(c->source(), a);
  EXPECT_EQ(c->sink(), z);
  EXPECT_EQ(c->path(), (std::vector<core::ComponentId>{a, r1, r2}));
  EXPECT_EQ(c->last(), r2);
  EXPECT_EQ(c->name(), "GPS-channel");
}

TEST(Channels, MergeSplitsChannels) {
  // GPS -> P -> M <- WiFi ; M -> App  (Fig. 2 shape).
  core::ProcessingGraph g;
  core::ChannelManager channels(g);
  const auto gps = g.add(make_source("GPS"));
  const auto wifi = g.add(make_source("WiFi"));
  const auto p = g.add(make_relay("Parser"));
  const auto merge = g.add(std::make_shared<core::LambdaComponent>(
      "ParticleFilter",
      std::vector<core::InputRequirement>{core::require<Str>()},
      std::vector<core::DataSpec>{core::provide<Str>()},
      [](const Sample& s, const core::ComponentContext& ctx) {
        ctx.emit(s.payload);
      }));
  const auto app = g.add(std::make_shared<core::ApplicationSink>());
  g.connect(gps, p);
  g.connect(p, merge);
  g.connect(wifi, merge);
  g.connect(merge, app);

  const auto all = channels.channels();
  ASSERT_EQ(all.size(), 3u);
  // Sorted by (source, sink): gps-chain, wifi-chain, then merge->app.
  EXPECT_EQ(all[0]->source(), gps);
  EXPECT_EQ(all[0]->sink(), merge);
  EXPECT_EQ(all[0]->path(), (std::vector<core::ComponentId>{gps, p}));
  EXPECT_EQ(all[1]->source(), wifi);
  EXPECT_EQ(all[1]->sink(), merge);
  EXPECT_EQ(all[2]->source(), merge);
  EXPECT_EQ(all[2]->sink(), app);
  EXPECT_EQ(all[2]->path(), (std::vector<core::ComponentId>{merge}));
}

TEST(Channels, FanOutSourceBecomesChannelPerSink) {
  core::ProcessingGraph g;
  core::ChannelManager channels(g);
  const auto src = g.add(make_source());
  const auto s1 = g.add(std::make_shared<core::ApplicationSink>("A"));
  const auto s2 = g.add(std::make_shared<core::ApplicationSink>("B"));
  g.connect(src, s1);
  g.connect(src, s2);
  const auto all = channels.channels();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->source(), src);
  EXPECT_EQ(all[1]->source(), src);
}

TEST(Channels, LookupHelpers) {
  core::ProcessingGraph g;
  core::ChannelManager channels(g);
  const auto src = g.add(make_source());
  const auto mid = g.add(make_relay());
  const auto z = g.add(std::make_shared<core::ApplicationSink>());
  g.connect(src, mid);
  g.connect(mid, z);
  EXPECT_NE(channels.channel_from_source(src), nullptr);
  EXPECT_EQ(channels.channel_from_source(mid), nullptr);
  EXPECT_EQ(channels.channels_into(z).size(), 1u);
  EXPECT_NE(channels.channel_containing(mid), nullptr);
  EXPECT_EQ(channels.channel_containing(z), nullptr);  // Sink not in path.
}

TEST(Channels, DerivationFollowsMutation) {
  core::ProcessingGraph g;
  core::ChannelManager channels(g);
  auto source = make_source();
  const auto a = g.add(source);
  const auto z = g.add(std::make_shared<core::ApplicationSink>());
  g.connect(a, z);
  ASSERT_EQ(channels.channels().size(), 1u);
  EXPECT_EQ(channels.channels()[0]->path().size(), 1u);

  // Insert a relay: same channel identity, longer path.
  const auto r = g.add(make_relay());
  g.insert_between(r, a, z);
  const auto all = channels.channels();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0]->path(), (std::vector<core::ComponentId>{a, r}));
}

TEST(Channels, LastOutputAndIsCurrent) {
  core::ProcessingGraph g;
  core::ChannelManager channels(g);
  auto source = make_source();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto z = g.add(sink);
  g.connect(a, z);
  core::Channel* c = channels.channel_from_source(a);
  ASSERT_NE(c, nullptr);
  EXPECT_FALSE(c->last_output().has_value());

  source->push(Str{"one"});
  ASSERT_TRUE(c->last_output().has_value());
  const Sample first = *sink->last();
  EXPECT_TRUE(c->is_current(first));

  source->push(Str{"two"});
  EXPECT_FALSE(c->is_current(first));  // Stale now.
  EXPECT_TRUE(c->is_current(*sink->last()));
}

TEST(Channels, FeatureApplyRunsPerDelivery) {
  core::ProcessingGraph g;
  core::ChannelManager channels(g);
  auto source = make_source();
  const auto a = g.add(source);
  const auto z = g.add(std::make_shared<core::ApplicationSink>());
  g.connect(a, z);
  core::Channel* c = channels.channel_from_source(a);
  auto feature = std::make_shared<CountingFeature>();
  channels.attach_feature(*c, feature);

  source->push(Str{"x"});
  source->push(Str{"y"});
  EXPECT_EQ(feature->applies(), 2);
}

TEST(Channels, FeatureAppliesBeforeSinkReceives) {
  // The paper: a Channel Feature is semantically a Component Feature on the
  // channel's last component — so its state is ready when the application
  // callback runs.
  core::ProcessingGraph g;
  core::ChannelManager channels(g);
  auto source = make_source();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto z = g.add(sink);
  g.connect(a, z);
  core::Channel* c = channels.channel_from_source(a);
  auto feature = std::make_shared<CountingFeature>();
  channels.attach_feature(*c, feature);

  int applies_seen_in_callback = -1;
  sink->set_callback([&](const Sample&) {
    applies_seen_in_callback = feature->applies();
  });
  source->push(Str{"x"});
  EXPECT_EQ(applies_seen_in_callback, 1);
}

TEST(Channels, DataTreeMatchesFig4Scenario) {
  // Reproduce Fig. 4 exactly: a source emits strings; a "Parser" needs
  // several strings per Word; an "Interpreter" needs a valid Word and
  // skips invalid ones. Feed 5 strings such that Word1 (strings 1-2) is
  // invalid and Word2 (strings 3-5) yields the output.
  core::ProcessingGraph g;
  core::ChannelManager channels(g);
  auto source = make_source("GPS");

  // Parser: accumulate strings; emit a Word after every '|' marker.
  std::string buffer;
  auto parser = std::make_shared<core::LambdaComponent>(
      "Parser", std::vector<core::InputRequirement>{core::require<Str>()},
      std::vector<core::DataSpec>{core::provide<Word>()},
      [&buffer](const Sample& s, const core::ComponentContext& ctx) {
        const std::string& t = s.payload.as<Str>().text;
        if (t == "|") {
          ctx.emit(Payload::make(Word{buffer}));
          buffer.clear();
        } else {
          buffer += t;
        }
      });

  // Interpreter: only emits when the word is "valid".
  auto interpreter = std::make_shared<core::LambdaComponent>(
      "Interpreter",
      std::vector<core::InputRequirement>{core::require<Word>()},
      std::vector<core::DataSpec>{core::provide<Result>()},
      [](const Sample& s, const core::ComponentContext& ctx) {
        const std::string& t = s.payload.as<Word>().text;
        if (t.rfind("ok", 0) == 0) ctx.emit(Payload::make(Result{t}));
      });

  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto p = g.add(parser);
  const auto i = g.add(interpreter);
  const auto z = g.add(sink);
  g.connect(a, p);
  g.connect(p, i);
  g.connect(i, z);

  // Strings 1,2 -> invalid Word1; strings 3,4,5 -> valid Word2.
  source->push(Str{"bad"});   // seq 1
  source->push(Str{"|"});     // seq 2 -> Word1 "bad" (inputs 1-2), dropped
  source->push(Str{"ok"});    // seq 3
  source->push(Str{"!"});     // seq 4
  source->push(Str{"|"});     // seq 5 -> Word2 "ok!" (inputs 3-5) -> Result

  ASSERT_TRUE(sink->last().has_value());
  core::Channel* c = channels.channel_from_source(a);
  const core::DataTree tree = c->data_tree(*sink->last());

  // Root: Result, logical time 1 at the Interpreter, built from Words 1-2.
  EXPECT_EQ(tree.root().sample.payload.type(), core::type_of<Result>());
  EXPECT_EQ(tree.root().sample.sequence, 1u);
  EXPECT_EQ(tree.root().sample.input_seq_min(), 1u);
  EXPECT_EQ(tree.root().sample.input_seq_max(), 2u);

  // Layer 1: two Words; Word1 from strings 1-2, Word2 from strings 3-5.
  const auto words = tree.find(core::type_of<Word>());
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0]->sample.input_seq_min(), 1u);
  EXPECT_EQ(words[0]->sample.input_seq_max(), 2u);
  EXPECT_EQ(words[1]->sample.input_seq_min(), 3u);
  EXPECT_EQ(words[1]->sample.input_seq_max(), 5u);

  // Layer 0: all five strings, with no inputs of their own.
  const auto strings = tree.find(core::type_of<Str>());
  EXPECT_EQ(strings.size(), 5u);
  for (const auto* node : strings) {
    EXPECT_EQ(node->sample.input_seq_min(), 0u);
  }
  EXPECT_EQ(tree.depth(), 3u);
  EXPECT_EQ(tree.size(), 8u);  // 1 result + 2 words + 5 strings.

  // The rendering mentions every layer.
  const std::string rendered = tree.to_string(&g);
  EXPECT_NE(rendered.find("Interpreter"), std::string::npos);
  EXPECT_NE(rendered.find("Parser"), std::string::npos);
  EXPECT_NE(rendered.find("GPS"), std::string::npos);
  EXPECT_NE(rendered.find("3-5"), std::string::npos);
}

TEST(Channels, DataTreeCollectTyped) {
  core::ProcessingGraph g;
  core::ChannelManager channels(g);
  auto source = make_source();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto z = g.add(sink);
  g.connect(a, z);
  source->push(Str{"hello"});
  core::Channel* c = channels.channel_from_source(a);
  const core::DataTree tree = c->data_tree(*sink->last());
  const auto strs = tree.collect<Str>();
  ASSERT_EQ(strs.size(), 1u);
  EXPECT_EQ(strs[0].first, a);
  EXPECT_EQ(strs[0].second->text, "hello");
}

TEST(Channels, TimeScopedFeatureAccess) {
  core::ProcessingGraph g;
  core::ChannelManager channels(g);
  auto source = make_source();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto z = g.add(sink);
  g.connect(a, z);
  core::Channel* c = channels.channel_from_source(a);
  channels.attach_feature(*c, std::make_shared<CountingFeature>());

  source->push(Str{"1"});
  const Sample first = *sink->last();
  EXPECT_NE(c->get_feature<CountingFeature>(first), nullptr);

  source->push(Str{"2"});
  // The feature state now corresponds to sample 2; scoped access with the
  // stale sample must fail (this is what PoSIM cannot offer).
  EXPECT_EQ(c->get_feature<CountingFeature>(first), nullptr);
  EXPECT_NE(c->get_feature<CountingFeature>(*sink->last()), nullptr);
  EXPECT_NE(c->get_feature<CountingFeature>(), nullptr);  // Unscoped: fine.
}

TEST(Channels, FeatureSurvivesComponentInsertion) {
  core::ProcessingGraph g;
  core::ChannelManager channels(g);
  auto source = make_source();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto z = g.add(sink);
  g.connect(a, z);
  auto feature = std::make_shared<CountingFeature>();
  channels.attach_feature(*channels.channel_from_source(a), feature);

  source->push(Str{"1"});
  EXPECT_EQ(feature->applies(), 1);

  // Insert a relay into the channel: the feature must re-bind to the new
  // end-point and keep working — the causal connection requirement.
  const auto r = g.add(make_relay());
  g.insert_between(r, a, z);
  source->push(Str{"2"});
  EXPECT_EQ(feature->applies(), 2);
  // And the data tree now has an extra layer.
  core::Channel* c = channels.channel_from_source(a);
  EXPECT_EQ(c->data_tree(*sink->last()).depth(), 2u);
}

TEST(Channels, FeatureRequirementValidated) {
  class Needy final : public core::ChannelFeature {
   public:
    std::string_view name() const override { return "Needy"; }
    void apply(const core::DataTree&) override {}
    std::vector<std::string> required_component_features() const override {
      return {"HDOP"};
    }
  };
  core::ProcessingGraph g;
  core::ChannelManager channels(g);
  const auto a = g.add(make_source());
  const auto z = g.add(std::make_shared<core::ApplicationSink>());
  g.connect(a, z);
  core::Channel* c = channels.channel_from_source(a);
  EXPECT_THROW(channels.attach_feature(*c, std::make_shared<Needy>()),
               std::invalid_argument);
}

TEST(Channels, DuplicateFeatureNameRejected) {
  core::ProcessingGraph g;
  core::ChannelManager channels(g);
  const auto a = g.add(make_source());
  const auto z = g.add(std::make_shared<core::ApplicationSink>());
  g.connect(a, z);
  core::Channel* c = channels.channel_from_source(a);
  channels.attach_feature(*c, std::make_shared<CountingFeature>());
  EXPECT_THROW(
      channels.attach_feature(*c, std::make_shared<CountingFeature>()),
      std::invalid_argument);
}

TEST(Channels, DetachFeatureStopsApplies) {
  core::ProcessingGraph g;
  core::ChannelManager channels(g);
  auto source = make_source();
  const auto a = g.add(source);
  const auto z = g.add(std::make_shared<core::ApplicationSink>());
  g.connect(a, z);
  core::Channel* c = channels.channel_from_source(a);
  auto feature = std::make_shared<CountingFeature>();
  channels.attach_feature(*c, feature);
  source->push(Str{"1"});
  channels.detach_feature(*c, "Counting");
  source->push(Str{"2"});
  EXPECT_EQ(feature->applies(), 1);
  EXPECT_THROW(channels.detach_feature(*c, "Counting"),
               std::invalid_argument);
}

TEST(Channels, TreeScopedToChannelMembers) {
  // The data tree of the PF->App channel must not reach back into the
  // GPS chain (those samples belong to the GPS channel's trees).
  core::ProcessingGraph g;
  core::ChannelManager channels(g);
  auto gps = make_source("GPS");
  auto wifi = make_source("WiFi");
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto gid = g.add(gps);
  const auto wid = g.add(wifi);
  const auto merge = g.add(std::make_shared<core::LambdaComponent>(
      "PF", std::vector<core::InputRequirement>{core::require<Str>()},
      std::vector<core::DataSpec>{core::provide<Str>()},
      [](const Sample& s, const core::ComponentContext& ctx) {
        ctx.emit(s.payload);
      }));
  const auto z = g.add(sink);
  g.connect(gid, merge);
  g.connect(wid, merge);
  g.connect(merge, z);

  gps->push(Str{"g"});
  ASSERT_TRUE(sink->last().has_value());
  core::Channel* out_channel = channels.channel_from_source(merge);
  ASSERT_NE(out_channel, nullptr);
  const core::DataTree tree = out_channel->data_tree(*sink->last());
  EXPECT_EQ(tree.depth(), 1u);  // Only the PF's own output.
  EXPECT_EQ(tree.size(), 1u);

  // While the GPS channel's tree contains the raw string.
  core::Channel* gps_channel = channels.channel_from_source(gid);
  ASSERT_NE(gps_channel, nullptr);
  ASSERT_TRUE(gps_channel->last_output().has_value());
  EXPECT_EQ(gps_channel->data_tree(*gps_channel->last_output()).size(), 1u);
}

TEST(Channels, EmptyGraphHasNoChannels) {
  core::ProcessingGraph g;
  core::ChannelManager channels(g);
  EXPECT_TRUE(channels.channels().empty());
}

TEST(Channels, IsolatedComponentsProduceNoChannels) {
  core::ProcessingGraph g;
  core::ChannelManager channels(g);
  g.add(make_source());
  g.add(std::make_shared<core::ApplicationSink>());
  EXPECT_TRUE(channels.channels().empty());
}
