// Tests for the textual renderings of the three PerPos views (Fig. 2):
// dump_structure (PSL tree with features and capabilities, including
// feature-added ones), dump_channels (PCL channel lines with attached
// Channel Features) and to_dot (Graphviz export).

#include "perpos/core/channel.hpp"
#include "perpos/core/components.hpp"
#include "perpos/core/feature.hpp"
#include "perpos/core/graph.hpp"
#include "perpos/core/graph_dump.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace core = perpos::core;
using core::Sample;

namespace {

struct Reading {
  int value = 0;
};
struct Quality {
  double q = 0.0;
};

}  // namespace

PERPOS_TYPE_NAME(Reading, "Reading");
PERPOS_TYPE_NAME(Quality, "Quality");

namespace {

/// Feature that adds a Quality capability to its host's output port.
class QualityFeature final : public core::ComponentFeature {
 public:
  std::string_view name() const override { return "Quality"; }
  std::vector<const core::TypeInfo*> added_types() const override {
    return {core::type_of<Quality>()};
  }
};

struct Rig {
  Rig() {
    source = std::make_shared<core::SourceComponent>(
        "Sensor", std::vector<core::DataSpec>{core::provide<Reading>()});
    relay = std::make_shared<core::LambdaComponent>(
        "Filter", std::vector<core::InputRequirement>{core::require<Reading>()},
        std::vector<core::DataSpec>{core::provide<Reading>()},
        [](const Sample& s, const core::ComponentContext& ctx) {
          ctx.emit(s.payload);
        });
    sink = std::make_shared<core::ApplicationSink>("App");
    source_id = graph.add(source);
    relay_id = graph.add(relay);
    sink_id = graph.add(sink);
    graph.connect(source_id, relay_id);
    graph.connect(relay_id, sink_id);
  }

  core::ProcessingGraph graph;
  std::shared_ptr<core::SourceComponent> source;
  std::shared_ptr<core::LambdaComponent> relay;
  std::shared_ptr<core::ApplicationSink> sink;
  core::ComponentId source_id{}, relay_id{}, sink_id{};
};

}  // namespace

TEST(GraphDump, StructureRendersTreeFromSinkToSource) {
  Rig rig;
  const std::string psl = core::dump_structure(rig.graph);
  EXPECT_NE(psl.find("Process Structure Layer (3 components, interpreted)"),
            std::string::npos);
  // All three components appear with their ids.
  EXPECT_NE(psl.find("Sensor #" + std::to_string(rig.source_id)),
            std::string::npos);
  EXPECT_NE(psl.find("Filter #" + std::to_string(rig.relay_id)),
            std::string::npos);
  EXPECT_NE(psl.find("App #" + std::to_string(rig.sink_id)),
            std::string::npos);
  // The tree is rooted at the application: the sink line comes first.
  EXPECT_LT(psl.find("App #"), psl.find("Filter #"));
  EXPECT_LT(psl.find("Filter #"), psl.find("Sensor #"));
  // Output capabilities are rendered with the registered type name.
  EXPECT_NE(psl.find("-> Reading"), std::string::npos);
}

TEST(GraphDump, StructureShowsFeatureAndAddedCapability) {
  Rig rig;
  rig.graph.attach_feature(rig.relay_id, std::make_shared<QualityFeature>());
  const std::string psl = core::dump_structure(rig.graph);
  // The feature name is listed on the host...
  EXPECT_NE(psl.find("{Quality}"), std::string::npos);
  // ...and the added capability appears feature-tagged on the output port.
  EXPECT_NE(psl.find("Quality@Quality"), std::string::npos);
  // The info() view agrees: the relay now offers two capabilities.
  const auto info = rig.graph.info(rig.relay_id);
  EXPECT_EQ(info.capabilities.size(), 2u);
}

TEST(GraphDump, ChannelsRenderPathAndFeatures) {
  Rig rig;
  core::ChannelManager channels(rig.graph);
  ASSERT_EQ(channels.channels().size(), 1u);
  std::string pcl = core::dump_channels(channels);
  EXPECT_NE(pcl.find("Process Channel Layer (1 channels)"),
            std::string::npos);
  // source ==[ intermediates ]==> sink, with the relay on the path.
  EXPECT_NE(pcl.find("Sensor #" + std::to_string(rig.source_id)),
            std::string::npos);
  EXPECT_NE(pcl.find("==[ Filter ]==>"), std::string::npos);
  EXPECT_NE(pcl.find("App #" + std::to_string(rig.sink_id)),
            std::string::npos);

  // Attached Channel Features are rendered in braces.
  class Probe final : public core::ChannelFeature {
   public:
    std::string_view name() const override { return "Probe"; }
    void apply(const core::DataTree&) override {}
  };
  channels.attach_feature(*channels.channels().front(),
                          std::make_shared<Probe>());
  pcl = core::dump_channels(channels);
  EXPECT_NE(pcl.find("{Probe}"), std::string::npos);
}

TEST(GraphDump, DotExportListsNodesAndEdges) {
  Rig rig;
  const std::string dot = core::to_dot(rig.graph);
  EXPECT_NE(dot.find("digraph perpos {"), std::string::npos);
  EXPECT_NE(dot.find("n" + std::to_string(rig.source_id) +
                     " [label=\"Sensor\"]"),
            std::string::npos);
  EXPECT_NE(dot.find("n" + std::to_string(rig.source_id) + " -> n" +
                     std::to_string(rig.relay_id)),
            std::string::npos);
  EXPECT_NE(dot.find("n" + std::to_string(rig.relay_id) + " -> n" +
                     std::to_string(rig.sink_id)),
            std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(GraphDump, FanOutRendersSharedProducerUnderEachSink) {
  core::ProcessingGraph graph;
  auto source = std::make_shared<core::SourceComponent>(
      "Sensor", std::vector<core::DataSpec>{core::provide<Reading>()});
  const auto a = graph.add(source);
  graph.connect(a, graph.add(std::make_shared<core::ApplicationSink>("AppA")));
  graph.connect(a, graph.add(std::make_shared<core::ApplicationSink>("AppB")));
  const std::string psl = core::dump_structure(graph);
  EXPECT_NE(psl.find("AppA"), std::string::npos);
  EXPECT_NE(psl.find("AppB"), std::string::npos);
  // The shared sensor is rendered under both application roots.
  std::size_t occurrences = 0;
  for (std::size_t pos = psl.find("Sensor #"); pos != std::string::npos;
       pos = psl.find("Sensor #", pos + 1)) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 2u);
}
