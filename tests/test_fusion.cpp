// Tests for the fusion module: particle filter invariants and convergence,
// the wall constraint, and the paper's example features E1 (satellite
// filter) and E2 (HDOP likelihood channel feature).

#include "perpos/core/channel.hpp"
#include "perpos/core/components.hpp"
#include "perpos/fusion/features.hpp"
#include "perpos/fusion/metrics.hpp"
#include "perpos/fusion/particle_filter.hpp"
#include "perpos/fusion/satellite_filter.hpp"
#include "perpos/locmodel/fixtures.hpp"
#include "perpos/nmea/generate.hpp"
#include "perpos/nmea/parse.hpp"
#include "perpos/sensors/gps_sensor.hpp"
#include "perpos/sensors/pipeline_components.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fusion = perpos::fusion;
namespace core = perpos::core;
namespace geo = perpos::geo;
namespace sim = perpos::sim;
namespace lm = perpos::locmodel;
namespace nmea = perpos::nmea;
using geo::LocalPoint;

TEST(Metrics, StatsOfKnownSeries) {
  const auto s = fusion::compute_stats({1.0, 2.0, 3.0, 4.0, 100.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_GT(s.rmse, s.mean);  // Outlier dominates RMSE.
  EXPECT_FALSE(fusion::format_stats_row("x", s).empty());
  EXPECT_FALSE(fusion::stats_header().empty());
}

TEST(Metrics, EmptySeries) {
  const auto s = fusion::compute_stats({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
  EXPECT_DOUBLE_EQ(s.p95, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(Metrics, SingleElementSeries) {
  // Every statistic of a one-element series is that element.
  const auto s = fusion::compute_stats({7.5});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.rmse, 7.5);
  EXPECT_DOUBLE_EQ(s.median, 7.5);
  EXPECT_DOUBLE_EQ(s.p95, 7.5);
  EXPECT_DOUBLE_EQ(s.max, 7.5);
}

TEST(Metrics, AllEqualSeries) {
  const auto s = fusion::compute_stats({3.0, 3.0, 3.0, 3.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.rmse, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.p95, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(Metrics, EvenCountMedianInterpolates) {
  // Type-7 quantiles: the median of an even-count series is the average
  // of the middle pair, and p95 interpolates between order statistics.
  const auto s = fusion::compute_stats({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  // rank = 0.95 * 3 = 2.85 -> between 3.0 and 4.0.
  EXPECT_DOUBLE_EQ(s.p95, 3.0 + 0.85 * 1.0);
}

TEST(Metrics, QuantilesMonotoneAndBounded) {
  const auto s = fusion::compute_stats({5.0, 1.0, 9.0, 3.0, 7.0, 2.0});
  EXPECT_LE(s.median, s.p95);
  EXPECT_LE(s.p95, s.max);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Metrics, FormatSeriesRowMatchesComputeStats) {
  const std::vector<double> series{1.0, 2.0, 3.0};
  EXPECT_EQ(fusion::format_series_row("label", series),
            fusion::format_stats_row("label", fusion::compute_stats(series)));
}

class FilterFixture : public ::testing::Test {
 protected:
  sim::Random random{42};
  fusion::ParticleFilterConfig config;
};

TEST_F(FilterFixture, InitGaussianCentersParticles) {
  fusion::ParticleFilter pf(config, random);
  pf.init_gaussian({10.0, 20.0}, 2.0);
  EXPECT_TRUE(pf.initialized());
  EXPECT_EQ(pf.particles().size(), config.particle_count);
  const LocalPoint est = pf.estimate();
  EXPECT_NEAR(est.x, 10.0, 0.5);
  EXPECT_NEAR(est.y, 20.0, 0.5);
}

TEST_F(FilterFixture, InitUniformSpansBox) {
  fusion::ParticleFilter pf(config, random);
  pf.init_uniform({0.0, 0.0, 40.0, 20.0});
  for (const auto& p : pf.particles()) {
    EXPECT_GE(p.position.x, 0.0);
    EXPECT_LE(p.position.x, 40.0);
    EXPECT_GE(p.position.y, 0.0);
    EXPECT_LE(p.position.y, 20.0);
  }
  EXPECT_GT(pf.spread(), 5.0);
}

TEST_F(FilterFixture, WeightsStayNormalized) {
  fusion::ParticleFilter pf(config, random);
  pf.init_gaussian({0, 0}, 5.0);
  pf.weight_gaussian({1.0, 1.0}, 3.0);
  double total = 0.0;
  for (const auto& p : pf.particles()) total += p.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
  pf.predict(1.0);
  pf.weight_with([](const fusion::Particle&) { return 0.5; });
  total = 0.0;
  for (const auto& p : pf.particles()) total += p.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(FilterFixture, EssFullAfterInitDropsAfterWeighting) {
  fusion::ParticleFilter pf(config, random);
  pf.init_uniform({0.0, 0.0, 40.0, 20.0});
  const double ess0 = pf.effective_sample_size();
  EXPECT_NEAR(ess0, static_cast<double>(config.particle_count), 1.0);
  pf.weight_gaussian({1.0, 1.0}, 1.0);  // Sharp: most particles die.
  EXPECT_LT(pf.effective_sample_size(), ess0 / 2.0);
}

TEST_F(FilterFixture, ResamplingRestoresEss) {
  fusion::ParticleFilter pf(config, random);
  pf.init_uniform({0.0, 0.0, 40.0, 20.0});
  pf.weight_gaussian({10.0, 10.0}, 1.0);
  const LocalPoint before = pf.estimate();
  ASSERT_TRUE(pf.maybe_resample());
  EXPECT_EQ(pf.resample_count(), 1u);
  // Estimate approximately preserved, ESS restored to N.
  const LocalPoint after = pf.estimate();
  EXPECT_NEAR(after.x, before.x, 1.0);
  EXPECT_NEAR(after.y, before.y, 1.0);
  EXPECT_NEAR(pf.effective_sample_size(),
              static_cast<double>(config.particle_count), 1.0);
}

TEST_F(FilterFixture, NoResampleWhenEssHigh) {
  fusion::ParticleFilter pf(config, random);
  pf.init_gaussian({0, 0}, 1.0);
  EXPECT_FALSE(pf.maybe_resample());
}

TEST_F(FilterFixture, PredictDiffusesParticles) {
  fusion::ParticleFilter pf(config, random);
  pf.init_gaussian({0, 0}, 0.5);
  const double spread0 = pf.spread();
  pf.predict(5.0);
  EXPECT_GT(pf.spread(), spread0);
}

TEST_F(FilterFixture, ConvergesOnRepeatedMeasurements) {
  fusion::ParticleFilter pf(config, random);
  pf.init_uniform({0.0, 0.0, 40.0, 20.0});
  for (int i = 0; i < 20; ++i) {
    pf.predict(1.0);
    pf.weight_gaussian({25.0, 12.0}, 3.0);
    pf.maybe_resample();
  }
  const LocalPoint est = pf.estimate();
  EXPECT_NEAR(est.x, 25.0, 1.5);
  EXPECT_NEAR(est.y, 12.0, 1.5);
  EXPECT_LT(pf.spread(), 4.0);
}

TEST_F(FilterFixture, TracksMovingTarget) {
  fusion::ParticleFilter pf(config, random);
  pf.init_gaussian({0.0, 0.0}, 3.0);
  LocalPoint truth{0.0, 0.0};
  double final_err = 0.0;
  for (int i = 0; i < 30; ++i) {
    truth.x += 1.2;  // 1.2 m/s walk.
    pf.predict(1.0);
    pf.weight_gaussian(truth, 4.0);
    pf.maybe_resample();
    const LocalPoint est = pf.estimate();
    final_err = std::hypot(est.x - truth.x, est.y - truth.y);
  }
  EXPECT_LT(final_err, 4.0);
}

TEST_F(FilterFixture, WallConstraintBlocksTeleporting) {
  const lm::Building building = lm::make_two_room_building();
  fusion::ParticleFilterConfig c;
  c.particle_count = 400;
  c.position_diffusion_m = 2.0;  // Aggressive diffusion into walls.
  fusion::ParticleFilter pf(c, random);
  pf.init_gaussian({2.5, 2.5}, 0.8);  // Room A.
  for (int i = 0; i < 10; ++i) {
    pf.predict(1.0, &building);
    pf.weight_gaussian({2.5, 2.5}, 2.0);
    pf.maybe_resample();
  }
  // Nearly all mass must remain in room A: the wall blocks diffusion into
  // room B except through the door.
  int in_b = 0;
  for (const auto& p : pf.particles()) {
    if (p.position.x > 5.0) ++in_b;
  }
  EXPECT_LT(in_b, static_cast<int>(c.particle_count) / 10);
}

TEST_F(FilterFixture, TotalWeightCollapseRecovers) {
  fusion::ParticleFilter pf(config, random);
  pf.init_gaussian({0, 0}, 1.0);
  pf.weight_with([](const fusion::Particle&) { return 0.0; });
  double total = 0.0;
  for (const auto& p : pf.particles()) total += p.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);  // Reset to uniform, not NaN.
}

// --- E1: satellite filter ------------------------------------------------------

namespace {

core::Payload make_gga_sentence(int satellites, double hdop,
                                bool has_fix = true) {
  nmea::GgaSentence gga;
  gga.time = {12, 0, 0.0};
  gga.quality = has_fix ? nmea::FixQuality::kGps : nmea::FixQuality::kInvalid;
  gga.satellites_in_use = satellites;
  gga.hdop = hdop;
  if (has_fix) {
    gga.latitude_deg = 56.1697;
    gga.longitude_deg = 10.1994;
  }
  const auto parsed = nmea::parse_sentence(nmea::generate_gga(gga));
  return core::Payload::make(*parsed);
}

}  // namespace

TEST(SatelliteFilter, DropsLowSatelliteSentences) {
  core::ProcessingGraph g;
  auto source = std::make_shared<core::SourceComponent>(
      "Parser",
      std::vector<core::DataSpec>{core::provide<nmea::Sentence>()});
  auto sink = std::make_shared<core::ApplicationSink>();
  auto filter = std::make_shared<fusion::SatelliteFilter>(4);
  const auto a = g.add(source);
  g.attach_feature(a, std::make_shared<fusion::NumberOfSatellitesFeature>());
  const auto f = g.add(filter);
  const auto z = g.add(sink);
  g.connect(a, f);
  g.connect(f, z);

  source->push_payload(make_gga_sentence(8, 1.0));
  source->push_payload(make_gga_sentence(2, 9.0));  // Dropped.
  source->push_payload(make_gga_sentence(5, 2.0));
  EXPECT_EQ(filter->forwarded(), 2u);
  EXPECT_EQ(filter->dropped(), 1u);
  EXPECT_EQ(sink->received(), 2u);
}

TEST(SatelliteFilter, RequiresFeatureData) {
  // Without the NumberOfSatellites feature attached upstream, the filter's
  // count stays 0 and everything below the threshold is dropped.
  core::ProcessingGraph g;
  auto source = std::make_shared<core::SourceComponent>(
      "Parser",
      std::vector<core::DataSpec>{core::provide<nmea::Sentence>()});
  auto filter = std::make_shared<fusion::SatelliteFilter>(4);
  const auto a = g.add(source);
  const auto f = g.add(filter);
  g.connect(a, f);
  source->push_payload(make_gga_sentence(8, 1.0));
  EXPECT_EQ(filter->dropped(), 1u);  // Conservative without the feature.
}

TEST(SatelliteFilter, InsertIntoLivePipeline) {
  // The E1 workflow end-to-end: attach the feature to the Parser, insert
  // the filter between Parser and Interpreter, observe only reliable
  // fixes downstream.
  core::ProcessingGraph g;
  auto source = std::make_shared<core::SourceComponent>(
      "GPS", std::vector<core::DataSpec>{core::provide<core::RawFragment>()});
  auto parser = std::make_shared<perpos::sensors::NmeaParser>();
  auto interpreter = std::make_shared<perpos::sensors::NmeaInterpreter>();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto p = g.add(parser);
  const auto i = g.add(interpreter);
  const auto z = g.add(sink);
  g.connect(a, p);
  g.connect(p, i);
  g.connect(i, z);

  const auto push_epoch = [&](int sats) {
    nmea::GgaSentence gga;
    gga.quality = nmea::FixQuality::kGps;
    gga.satellites_in_use = sats;
    gga.hdop = 1.0;
    gga.latitude_deg = 56.0;
    gga.longitude_deg = 10.0;
    source->push(core::RawFragment{nmea::generate_gga(gga) + "\r\n"});
  };

  push_epoch(2);  // Unreliable but passes: no filter yet.
  EXPECT_EQ(sink->received(), 1u);

  g.attach_feature(p, std::make_shared<fusion::NumberOfSatellitesFeature>());
  auto filter = std::make_shared<fusion::SatelliteFilter>(4);
  const auto f = g.add(filter);
  g.insert_between(f, p, i);

  push_epoch(2);  // Now dropped.
  EXPECT_EQ(sink->received(), 1u);
  push_epoch(9);  // Reliable: forwarded.
  EXPECT_EQ(sink->received(), 2u);
}

// --- E2: HDOP likelihood channel feature ---------------------------------------

class LikelihoodFixture : public ::testing::Test {
 protected:
  LikelihoodFixture() : frame(geo::GeoPoint{56.1697, 10.1994, 50.0}) {
    source = std::make_shared<core::SourceComponent>(
        "GPS",
        std::vector<core::DataSpec>{core::provide<core::RawFragment>()});
    parser = std::make_shared<perpos::sensors::NmeaParser>();
    interpreter = std::make_shared<perpos::sensors::NmeaInterpreter>();
    sink = std::make_shared<core::ApplicationSink>();
    a = graph.add(source);
    p = graph.add(parser);
    i = graph.add(interpreter);
    z = graph.add(sink);
    graph.connect(a, p);
    graph.connect(p, i);
    graph.connect(i, z);
    graph.attach_feature(p, std::make_shared<fusion::HdopFeature>());
  }

  void push_epoch(double hdop, double lat = 56.1697, double lon = 10.1994) {
    nmea::GgaSentence gga;
    gga.quality = nmea::FixQuality::kGps;
    gga.satellites_in_use = 8;
    gga.hdop = hdop;
    gga.latitude_deg = lat;
    gga.longitude_deg = lon;
    source->push(core::RawFragment{nmea::generate_gga(gga) + "\r\n"});
  }

  core::ProcessingGraph graph;
  core::ChannelManager channels{graph};
  geo::LocalFrame frame;
  std::shared_ptr<core::SourceComponent> source;
  std::shared_ptr<perpos::sensors::NmeaParser> parser;
  std::shared_ptr<perpos::sensors::NmeaInterpreter> interpreter;
  std::shared_ptr<core::ApplicationSink> sink;
  core::ComponentId a{}, p{}, i{}, z{};
};

TEST_F(LikelihoodFixture, HdopFeatureExposesState) {
  push_epoch(2.5);
  auto* hdop = graph.get_feature<fusion::HdopFeature>(p);
  ASSERT_NE(hdop, nullptr);
  ASSERT_TRUE(hdop->hdop().has_value());
  EXPECT_NEAR(*hdop->hdop(), 2.5, 0.06);
}

TEST_F(LikelihoodFixture, LikelihoodCollectsHdopFromDataTree) {
  core::Channel* channel = channels.channel_from_source(a);
  ASSERT_NE(channel, nullptr);
  auto feature = std::make_shared<fusion::HdopLikelihoodFeature>(frame);
  channels.attach_feature(*channel, feature);

  push_epoch(3.0);
  ASSERT_EQ(feature->hdop_list().size(), 1u);
  EXPECT_NEAR(feature->hdop_list()[0], 3.0, 0.06);
  ASSERT_TRUE(feature->last_measured().has_value());
  EXPECT_NEAR(feature->current_sigma_m(), 3.0 * 4.0, 0.3);
}

TEST_F(LikelihoodFixture, RequiresHdopComponentFeature) {
  graph.detach_feature(p, fusion::HdopFeature::kName);
  core::Channel* channel = channels.channel_from_source(a);
  EXPECT_THROW(
      channels.attach_feature(
          *channel, std::make_shared<fusion::HdopLikelihoodFeature>(frame)),
      std::invalid_argument);
}

TEST_F(LikelihoodFixture, LikelihoodPeaksAtMeasuredPosition) {
  core::Channel* channel = channels.channel_from_source(a);
  auto feature = std::make_shared<fusion::HdopLikelihoodFeature>(frame);
  channels.attach_feature(*channel, feature);
  push_epoch(1.0);

  fusion::Particle at_measurement;
  at_measurement.position = *feature->last_measured();
  fusion::Particle far_away;
  far_away.position = {at_measurement.position.x + 100.0,
                       at_measurement.position.y};
  EXPECT_GT(feature->get_likelihood(at_measurement),
            feature->get_likelihood(far_away) * 100.0);
}

TEST_F(LikelihoodFixture, HighHdopFlattensLikelihood) {
  core::Channel* channel = channels.channel_from_source(a);
  auto feature = std::make_shared<fusion::HdopLikelihoodFeature>(frame);
  channels.attach_feature(*channel, feature);

  push_epoch(1.0);
  fusion::Particle off_by_20;
  off_by_20.position = {feature->last_measured()->x + 20.0,
                        feature->last_measured()->y};
  const double sharp = feature->get_likelihood(off_by_20);

  push_epoch(8.0);
  off_by_20.position = {feature->last_measured()->x + 20.0,
                        feature->last_measured()->y};
  const double flat = feature->get_likelihood(off_by_20);
  EXPECT_GT(flat, sharp);  // High HDOP = less trust = flatter likelihood.
}

TEST_F(LikelihoodFixture, ParticleFilterUsesChannelFeature) {
  // Wire the PF as the channel sink and verify it consumes the Likelihood
  // feature rather than the Gaussian fallback (Fig. 5 artifact 1).
  sim::Random random(42);
  auto pf = std::make_shared<fusion::ParticleFilterComponent>(
      fusion::ParticleFilterConfig{}, random, frame);
  auto pf_sink = std::make_shared<core::ApplicationSink>();
  graph.disconnect(i, z);
  const auto pf_id = graph.add(pf);
  const auto s2 = graph.add(pf_sink);
  graph.connect(i, pf_id);
  graph.connect(pf_id, s2);
  pf->set_channel_manager(&channels);

  core::Channel* channel = channels.channel_from_source(a);
  ASSERT_NE(channel, nullptr);
  EXPECT_EQ(channel->sink(), pf_id);
  channels.attach_feature(
      *channel, std::make_shared<fusion::HdopLikelihoodFeature>(frame));

  push_epoch(1.0);  // First fix initializes the filter.
  for (int k = 0; k < 5; ++k) push_epoch(1.5);
  EXPECT_EQ(pf->feature_likelihood_updates(), 5u);
  EXPECT_EQ(pf->gaussian_updates(), 0u);
  EXPECT_GT(pf_sink->received(), 0u);
  EXPECT_EQ(pf_sink->last()->payload.as<core::PositionFix>().technology,
            "ParticleFilter");
}

TEST_F(LikelihoodFixture, ParticleFilterFallsBackWithoutFeature) {
  sim::Random random(42);
  auto pf = std::make_shared<fusion::ParticleFilterComponent>(
      fusion::ParticleFilterConfig{}, random, frame);
  graph.disconnect(i, z);
  const auto pf_id = graph.add(pf);
  graph.connect(i, pf_id);
  pf->set_channel_manager(&channels);

  push_epoch(1.0);
  for (int k = 0; k < 3; ++k) push_epoch(1.5);
  EXPECT_EQ(pf->feature_likelihood_updates(), 0u);
  EXPECT_EQ(pf->gaussian_updates(), 3u);
}
