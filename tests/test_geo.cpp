// Unit and property tests for the geodesy substrate.

#include "perpos/geo/angles.hpp"
#include "perpos/geo/bounding_box.hpp"
#include "perpos/geo/coordinates.hpp"
#include "perpos/geo/distance.hpp"
#include "perpos/geo/local_frame.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace geo = perpos::geo;

TEST(Angles, DegRadRoundTrip) {
  for (double d : {-180.0, -90.0, 0.0, 45.0, 90.0, 180.0, 359.0}) {
    EXPECT_NEAR(geo::rad2deg(geo::deg2rad(d)), d, 1e-12);
  }
}

TEST(Angles, Normalize0To360) {
  EXPECT_DOUBLE_EQ(geo::normalize_deg_0_360(0.0), 0.0);
  EXPECT_DOUBLE_EQ(geo::normalize_deg_0_360(360.0), 0.0);
  EXPECT_DOUBLE_EQ(geo::normalize_deg_0_360(-90.0), 270.0);
  EXPECT_DOUBLE_EQ(geo::normalize_deg_0_360(725.0), 5.0);
}

TEST(Angles, NormalizePm180) {
  EXPECT_DOUBLE_EQ(geo::normalize_deg_pm180(190.0), -170.0);
  EXPECT_DOUBLE_EQ(geo::normalize_deg_pm180(-190.0), 170.0);
  EXPECT_DOUBLE_EQ(geo::normalize_deg_pm180(0.0), 0.0);
}

TEST(Angles, AngularDifference) {
  EXPECT_DOUBLE_EQ(geo::angular_difference_deg(10.0, 350.0), 20.0);
  EXPECT_DOUBLE_EQ(geo::angular_difference_deg(0.0, 180.0), 180.0);
  EXPECT_DOUBLE_EQ(geo::angular_difference_deg(90.0, 90.0), 0.0);
}

TEST(Coordinates, ValidityChecks) {
  EXPECT_TRUE(geo::is_valid(geo::GeoPoint{56.0, 10.0, 0.0}));
  EXPECT_FALSE(geo::is_valid(geo::GeoPoint{91.0, 0.0, 0.0}));
  EXPECT_FALSE(geo::is_valid(geo::GeoPoint{0.0, 181.0, 0.0}));
  EXPECT_FALSE(geo::is_valid(geo::GeoPoint{NAN, 0.0, 0.0}));
}

TEST(Coordinates, EcefOfEquatorPrimeMeridian) {
  const geo::EcefPoint e = geo::geodetic_to_ecef({0.0, 0.0, 0.0});
  EXPECT_NEAR(e.x, geo::Wgs84::kSemiMajorAxisM, 1e-6);
  EXPECT_NEAR(e.y, 0.0, 1e-6);
  EXPECT_NEAR(e.z, 0.0, 1e-6);
}

TEST(Coordinates, EcefOfNorthPole) {
  const geo::EcefPoint e = geo::geodetic_to_ecef({90.0, 0.0, 0.0});
  EXPECT_NEAR(e.x, 0.0, 1e-6);
  EXPECT_NEAR(e.z, geo::Wgs84::kSemiMinorAxisM, 1e-3);
}

// Property: geodetic -> ECEF -> geodetic is the identity over the globe.
class GeodeticRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(GeodeticRoundTrip, EcefRoundTrip) {
  const auto [lat, lon, alt] = GetParam();
  const geo::GeoPoint p{lat, lon, alt};
  const geo::GeoPoint back = geo::ecef_to_geodetic(geo::geodetic_to_ecef(p));
  EXPECT_NEAR(back.latitude_deg, lat, 1e-9);
  EXPECT_NEAR(back.longitude_deg, lon, 1e-9);
  EXPECT_NEAR(back.altitude_m, alt, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Globe, GeodeticRoundTrip,
    ::testing::Combine(::testing::Values(-89.0, -45.0, 0.0, 33.3, 56.1697,
                                         89.0),
                       ::testing::Values(-179.0, -90.0, 0.0, 10.1994, 120.0),
                       ::testing::Values(-100.0, 0.0, 50.0, 8000.0)));

TEST(Distance, HaversineKnownValue) {
  // Aarhus (56.1629, 10.2039) to Copenhagen (55.6761, 12.5683): ~157 km.
  const double d = geo::haversine_m({56.1629, 10.2039, 0.0},
                                    {55.6761, 12.5683, 0.0});
  EXPECT_NEAR(d, 157e3, 3e3);
}

TEST(Distance, HaversineZero) {
  const geo::GeoPoint p{56.0, 10.0, 0.0};
  EXPECT_DOUBLE_EQ(geo::haversine_m(p, p), 0.0);
}

TEST(Distance, HaversineSymmetric) {
  const geo::GeoPoint a{56.0, 10.0, 0.0};
  const geo::GeoPoint b{55.0, 11.0, 0.0};
  EXPECT_DOUBLE_EQ(geo::haversine_m(a, b), geo::haversine_m(b, a));
}

TEST(Distance, EquirectangularAgreesWithHaversineAtShortRange) {
  const geo::GeoPoint a{56.1697, 10.1994, 0.0};
  for (double off : {0.0001, 0.001, 0.01}) {
    const geo::GeoPoint b{a.latitude_deg + off, a.longitude_deg + off, 0.0};
    const double h = geo::haversine_m(a, b);
    const double e = geo::equirectangular_m(a, b);
    EXPECT_NEAR(e, h, h * 0.001 + 0.01);
  }
}

TEST(Distance, BearingCardinalDirections) {
  const geo::GeoPoint origin{56.0, 10.0, 0.0};
  EXPECT_NEAR(geo::initial_bearing_deg(origin, {57.0, 10.0, 0.0}), 0.0, 0.1);
  EXPECT_NEAR(geo::initial_bearing_deg(origin, {55.0, 10.0, 0.0}), 180.0, 0.1);
  EXPECT_NEAR(geo::initial_bearing_deg(origin, {56.0, 11.0, 0.0}), 90.0, 0.5);
  EXPECT_NEAR(geo::initial_bearing_deg(origin, {56.0, 9.0, 0.0}), 270.0, 0.5);
}

// Property: destination_point inverts distance+bearing.
class DestinationRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DestinationRoundTrip, DistanceAndBearingRecovered) {
  const auto [bearing, distance] = GetParam();
  const geo::GeoPoint start{56.1697, 10.1994, 50.0};
  const geo::GeoPoint dest =
      geo::destination_point(start, bearing, distance);
  EXPECT_NEAR(geo::haversine_m(start, dest), distance, distance * 1e-6 + 0.01);
  if (distance > 1.0) {
    EXPECT_NEAR(geo::angular_difference_deg(
                    geo::initial_bearing_deg(start, dest), bearing),
                0.0, 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DestinationRoundTrip,
    ::testing::Combine(::testing::Values(0.0, 45.0, 90.0, 133.0, 270.0,
                                         359.0),
                       ::testing::Values(0.5, 10.0, 1000.0, 50000.0)));

TEST(Distance, LocalPointEuclidean) {
  EXPECT_DOUBLE_EQ(geo::distance_m(geo::LocalPoint{0, 0},
                                   geo::LocalPoint{3, 4}),
                   5.0);
}

TEST(Distance, EnuPoint3d) {
  EXPECT_DOUBLE_EQ(
      geo::distance_m(geo::EnuPoint{0, 0, 0}, geo::EnuPoint{2, 3, 6}), 7.0);
}

TEST(LocalFrame, OriginMapsToZero) {
  const geo::GeoPoint origin{56.1697, 10.1994, 50.0};
  const geo::LocalFrame frame(origin);
  const geo::EnuPoint e = frame.to_enu(origin);
  EXPECT_NEAR(e.east, 0.0, 1e-9);
  EXPECT_NEAR(e.north, 0.0, 1e-9);
  EXPECT_NEAR(e.up, 0.0, 1e-9);
}

TEST(LocalFrame, NorthOffsetIncreasesNorthCoordinate) {
  const geo::GeoPoint origin{56.0, 10.0, 0.0};
  const geo::LocalFrame frame(origin);
  const geo::GeoPoint north = geo::destination_point(origin, 0.0, 100.0);
  const geo::EnuPoint e = frame.to_enu(north);
  // destination_point is spherical, the frame is ellipsoidal: ~0.3% skew.
  EXPECT_NEAR(e.north, 100.0, 0.5);
  EXPECT_NEAR(e.east, 0.0, 0.5);
}

TEST(LocalFrame, EastOffsetIncreasesEastCoordinate) {
  const geo::GeoPoint origin{56.0, 10.0, 0.0};
  const geo::LocalFrame frame(origin);
  const geo::GeoPoint east = geo::destination_point(origin, 90.0, 250.0);
  const geo::EnuPoint e = frame.to_enu(east);
  // Spherical vs ellipsoidal model skew grows with distance (~0.35%).
  EXPECT_NEAR(e.east, 250.0, 1.5);
  EXPECT_NEAR(std::fabs(e.north), 0.0, 1.5);
}

// Property: to_enu and to_geodetic are inverse within a few km of origin.
class LocalFrameRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LocalFrameRoundTrip, EnuRoundTrip) {
  const auto [east, north] = GetParam();
  const geo::LocalFrame frame({56.1697, 10.1994, 50.0});
  const geo::EnuPoint in{east, north, 0.0};
  const geo::EnuPoint out = frame.to_enu(frame.to_geodetic(in));
  EXPECT_NEAR(out.east, east, 1e-6);
  EXPECT_NEAR(out.north, north, 1e-6);
  EXPECT_NEAR(out.up, 0.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Offsets, LocalFrameRoundTrip,
    ::testing::Combine(::testing::Values(-2000.0, -30.0, 0.0, 12.5, 3000.0),
                       ::testing::Values(-1500.0, 0.0, 7.25, 2500.0)));

TEST(LocalFrame, LocalPointRoundTrip) {
  const geo::LocalFrame frame({56.1697, 10.1994, 50.0});
  const geo::LocalPoint p{123.4, -56.7};
  const geo::LocalPoint back = frame.to_local(frame.to_geodetic(p));
  EXPECT_NEAR(back.x, p.x, 1e-6);
  EXPECT_NEAR(back.y, p.y, 1e-6);
}

TEST(LocalFrame, DistancePreserved) {
  const geo::LocalFrame frame({56.0, 10.0, 0.0});
  const geo::GeoPoint a = frame.to_geodetic(geo::LocalPoint{0.0, 0.0});
  const geo::GeoPoint b = frame.to_geodetic(geo::LocalPoint{30.0, 40.0});
  EXPECT_NEAR(geo::haversine_m(a, b), 50.0, 0.3);  // ~0.5% model skew.
}

TEST(BoundingBox, ContainsAndDistance) {
  const geo::LocalBox box{0.0, 0.0, 10.0, 5.0};
  EXPECT_TRUE(box.contains({5.0, 2.5}));
  EXPECT_TRUE(box.contains({0.0, 0.0}));    // Boundary closed.
  EXPECT_TRUE(box.contains({10.0, 5.0}));
  EXPECT_FALSE(box.contains({10.01, 5.0}));
  EXPECT_DOUBLE_EQ(box.distance_to({5.0, 2.5}), 0.0);
  EXPECT_DOUBLE_EQ(box.distance_to({13.0, 9.0}), 5.0);  // 3-4-5.
}

TEST(BoundingBox, UnionAndIntersection) {
  const geo::LocalBox a{0, 0, 2, 2};
  const geo::LocalBox b{1, 1, 3, 3};
  const geo::LocalBox c{5, 5, 6, 6};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  const geo::LocalBox u = a.united(c);
  EXPECT_DOUBLE_EQ(u.min_x, 0.0);
  EXPECT_DOUBLE_EQ(u.max_x, 6.0);
}

TEST(BoundingBox, InflatedGrowsEverySide) {
  const geo::LocalBox box{1, 1, 2, 2};
  const geo::LocalBox big = box.inflated(0.5);
  EXPECT_DOUBLE_EQ(big.min_x, 0.5);
  EXPECT_DOUBLE_EQ(big.max_y, 2.5);
  EXPECT_TRUE(big.contains({0.6, 0.6}));
}

TEST(BoundingBox, FromPoints) {
  const geo::LocalBox box =
      geo::bounding_box({{1, 5}, {-2, 0}, {4, 3}});
  EXPECT_DOUBLE_EQ(box.min_x, -2.0);
  EXPECT_DOUBLE_EQ(box.max_x, 4.0);
  EXPECT_DOUBLE_EQ(box.min_y, 0.0);
  EXPECT_DOUBLE_EQ(box.max_y, 5.0);
}

TEST(BoundingBox, EmptyInputIsInvalid) {
  EXPECT_FALSE(geo::bounding_box({}).valid());
}

TEST(Coordinates, ToStringFormats) {
  EXPECT_EQ(geo::to_string(geo::GeoPoint{56.5, 10.25, 1.0}),
            "56.5000000,10.2500000,1.00");
  EXPECT_EQ(geo::to_string(geo::LocalPoint{1.5, -2.25}), "(1.500,-2.250)");
}
