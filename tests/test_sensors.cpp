// Tests for the sensor substrate: trajectories, the GPS error model, the
// simulated GPS sensor driving the full NMEA pipeline, the WiFi scanner
// and trace record/replay (the paper's emulator component).

#include "perpos/core/channel.hpp"
#include "perpos/core/components.hpp"
#include "perpos/geo/distance.hpp"
#include "perpos/locmodel/fixtures.hpp"
#include "perpos/sensors/emulator.hpp"
#include "perpos/sensors/gps_model.hpp"
#include "perpos/sensors/gps_sensor.hpp"
#include "perpos/sensors/pipeline_components.hpp"
#include "perpos/sensors/trajectory.hpp"
#include "perpos/sensors/wifi_scanner.hpp"
#include "perpos/wifi/signal_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>

namespace sensors = perpos::sensors;
namespace core = perpos::core;
namespace geo = perpos::geo;
namespace sim = perpos::sim;
namespace lm = perpos::locmodel;
using geo::LocalPoint;

TEST(Trajectory, PositionInterpolation) {
  const sensors::Trajectory t =
      sensors::TrajectoryBuilder({0, 0}).walk_to({10, 0}, 2.0).build();
  EXPECT_EQ(t.position_at(sim::SimTime::zero()), (LocalPoint{0, 0}));
  const LocalPoint mid = t.position_at(sim::SimTime::from_seconds(2.5));
  EXPECT_NEAR(mid.x, 5.0, 1e-9);
  EXPECT_NEAR(mid.y, 0.0, 1e-9);
  EXPECT_EQ(t.position_at(sim::SimTime::from_seconds(100.0)),
            (LocalPoint{10, 0}));
  EXPECT_DOUBLE_EQ(t.duration().seconds(), 5.0);
  EXPECT_DOUBLE_EQ(t.length_m(), 10.0);
}

TEST(Trajectory, PausesHoldPosition) {
  const sensors::Trajectory t = sensors::TrajectoryBuilder({0, 0})
                                    .walk_to({10, 0}, 2.0)
                                    .pause(4.0)
                                    .walk_to({10, 10}, 2.0)
                                    .build();
  EXPECT_EQ(t.position_at(sim::SimTime::from_seconds(7.0)),
            (LocalPoint{10, 0}));
  EXPECT_DOUBLE_EQ(t.speed_at(sim::SimTime::from_seconds(7.0)), 0.0);
  EXPECT_DOUBLE_EQ(t.speed_at(sim::SimTime::from_seconds(2.0)), 2.0);
  EXPECT_DOUBLE_EQ(t.duration().seconds(), 5.0 + 4.0 + 5.0);
}

TEST(Trajectory, SampleCount) {
  const sensors::Trajectory t =
      sensors::TrajectoryBuilder({0, 0}).walk_to({10, 0}, 1.0).build();
  const auto samples = t.sample(sim::SimTime::from_seconds(1.0));
  EXPECT_EQ(samples.size(), 11u);  // 0..10 inclusive.
}

TEST(Trajectory, StationaryFixture) {
  const sensors::Trajectory t = sensors::stationary({3, 4}, 60.0);
  EXPECT_EQ(t.position_at(sim::SimTime::from_seconds(30.0)),
            (LocalPoint{3, 4}));
  EXPECT_DOUBLE_EQ(t.duration().seconds(), 60.0);
  EXPECT_DOUBLE_EQ(t.length_m(), 0.0);
}

TEST(Trajectory, OfficeWalkStaysInFootprint) {
  const lm::Building b = lm::make_office_building();
  const sensors::Trajectory t = sensors::office_walk();
  for (const LocalPoint& p : t.sample(sim::SimTime::from_seconds(1.0))) {
    EXPECT_TRUE(b.inside_footprint(p))
        << "left the building at " << p.x << "," << p.y;
  }
}

TEST(Trajectory, OfficeWalkNeverCrossesWalls) {
  const lm::Building b = lm::make_office_building();
  const sensors::Trajectory t = sensors::office_walk();
  const auto pts = t.sample(sim::SimTime::from_millis(500));
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_FALSE(b.crosses_wall(pts[i - 1], pts[i]))
        << "wall crossed between step " << i - 1 << " and " << i;
  }
}

TEST(GpsModel, OpenSkyErrorsAreModest) {
  sim::Random random(42);
  sensors::GpsModel model({}, random);
  const geo::GeoPoint truth{56.17, 10.20, 50.0};
  double total_err = 0.0;
  int sats = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const auto epoch =
        model.step(sim::SimTime::from_seconds(i), truth, false);
    total_err += epoch.error_m;
    sats += epoch.satellites;
    EXPECT_TRUE(epoch.has_fix);
  }
  EXPECT_LT(total_err / n, 8.0);
  EXPECT_GT(static_cast<double>(sats) / n, 7.0);
}

TEST(GpsModel, DegradedEpochsAreWorse) {
  sim::Random random(42);
  sensors::GpsModel model({}, random);
  const geo::GeoPoint truth{56.17, 10.20, 50.0};
  double open_err = 0.0, degraded_err = 0.0;
  int degraded_fix_losses = 0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    open_err += model.step(sim::SimTime::from_seconds(i), truth, false).error_m;
  }
  for (int i = 0; i < n; ++i) {
    const auto e =
        model.step(sim::SimTime::from_seconds(n + i), truth, true);
    degraded_err += e.error_m;
    if (!e.has_fix) ++degraded_fix_losses;
    EXPECT_LE(e.satellites, 5);
  }
  EXPECT_GT(degraded_err / n, 2.0 * open_err / n);
  EXPECT_GT(degraded_fix_losses, 30);  // Fix losses happen but not always.
  EXPECT_LT(degraded_fix_losses, n);
}

TEST(GpsModel, HdopCorrelatesWithError) {
  sim::Random random(7);
  sensors::GpsModel model({}, random);
  const geo::GeoPoint truth{56.17, 10.20, 50.0};
  double low_hdop_err = 0.0, high_hdop_err = 0.0;
  int low_n = 0, high_n = 0;
  for (int i = 0; i < 500; ++i) {
    const bool degraded = i % 2 == 0;
    const auto e = model.step(sim::SimTime::from_seconds(i), truth, degraded);
    if (e.hdop < 2.0) {
      low_hdop_err += e.error_m;
      ++low_n;
    } else if (e.hdop > 5.0) {
      high_hdop_err += e.error_m;
      ++high_n;
    }
  }
  ASSERT_GT(low_n, 10);
  ASSERT_GT(high_n, 10);
  EXPECT_GT(high_hdop_err / high_n, low_hdop_err / low_n);
}

class GpsPipelineFixture : public ::testing::Test {
 protected:
  GpsPipelineFixture()
      : frame(geo::GeoPoint{56.1697, 10.1994, 50.0}),
        trajectory(sensors::TrajectoryBuilder({0, 0})
                       .walk_to({60, 0}, 1.5)
                       .build()),
        graph(&scheduler.clock()) {}

  void build_pipeline(sensors::GpsSensorConfig config = {},
                      const lm::Building* indoor = nullptr) {
    sensor = std::make_shared<sensors::GpsSensor>(
        scheduler, random, trajectory, frame, config, indoor);
    parser = std::make_shared<sensors::NmeaParser>();
    interpreter = std::make_shared<sensors::NmeaInterpreter>();
    sink = std::make_shared<core::ApplicationSink>();
    sensor_id = graph.add(sensor);
    parser_id = graph.add(parser);
    interpreter_id = graph.add(interpreter);
    sink_id = graph.add(sink);
    graph.connect(sensor_id, parser_id);
    graph.connect(parser_id, interpreter_id);
    graph.connect(interpreter_id, sink_id);
  }

  sim::Scheduler scheduler;
  sim::Random random{42};
  geo::LocalFrame frame;
  sensors::Trajectory trajectory;
  core::ProcessingGraph graph;
  std::shared_ptr<sensors::GpsSensor> sensor;
  std::shared_ptr<sensors::NmeaParser> parser;
  std::shared_ptr<sensors::NmeaInterpreter> interpreter;
  std::shared_ptr<core::ApplicationSink> sink;
  core::ComponentId sensor_id{}, parser_id{}, interpreter_id{}, sink_id{};
};

TEST_F(GpsPipelineFixture, ProducesFixesAtEpochRate) {
  build_pipeline();
  sensor->start();
  scheduler.run_until(sim::SimTime::from_seconds(30.0));
  EXPECT_EQ(sensor->epochs(), 30u);
  EXPECT_GT(sink->received(), 25u);  // Nearly one fix per epoch outdoors.
  EXPECT_EQ(parser->parse_errors(), 0u);
}

TEST_F(GpsPipelineFixture, FixesTrackTheTrajectory) {
  build_pipeline();
  sensor->start();
  std::vector<double> errors;
  sink->set_callback([&](const core::Sample& s) {
    const auto& fix = s.payload.as<core::PositionFix>();
    const geo::GeoPoint truth = sensor->truth_at(s.timestamp);
    errors.push_back(geo::haversine_m(fix.position, truth));
  });
  scheduler.run_until(sim::SimTime::from_seconds(40.0));
  ASSERT_GT(errors.size(), 30u);
  double mean = 0.0;
  for (double e : errors) mean += e;
  mean /= static_cast<double>(errors.size());
  EXPECT_LT(mean, 10.0);
}

TEST_F(GpsPipelineFixture, FragmentationProducesManyStringsPerSentence) {
  sensors::GpsSensorConfig config;
  config.fragments_per_sentence = 3;
  config.emit_gsa = false;
  build_pipeline(config);
  sensor->start();
  scheduler.run_until(sim::SimTime::from_seconds(5.0));
  // 5 epochs, 1 sentence each, 3 fragments per sentence.
  EXPECT_EQ(graph.info(sensor_id).emitted, 15u);
  EXPECT_EQ(graph.info(parser_id).emitted, 5u);
}

TEST_F(GpsPipelineFixture, IndoorDegradationReducesFixes) {
  const lm::Building building = lm::make_office_building();
  // Walk entirely inside the building footprint.
  trajectory = sensors::TrajectoryBuilder({5, 10})
                   .walk_to({30, 10}, 1.0)
                   .build();
  build_pipeline({}, &building);
  sensor->start();
  scheduler.run_until(sim::SimTime::from_seconds(25.0));
  EXPECT_EQ(sensor->epochs(), 25u);
  EXPECT_LT(sink->received(), sensor->epochs());  // Fix losses indoors.
  EXPECT_GT(interpreter->skipped(), 0u);          // No-fix sentences seen.
}

TEST_F(GpsPipelineFixture, ScriptedOutage) {
  build_pipeline();
  sensor->add_outage(sim::SimTime::from_seconds(10.0),
                     sim::SimTime::from_seconds(20.0));
  sensor->set_record_epochs(true);
  sensor->start();
  scheduler.run_until(sim::SimTime::from_seconds(30.0));
  int degraded_sats = 0;
  for (const auto& e : sensor->recorded_epochs()) {
    if (e.time >= sim::SimTime::from_seconds(10.0) &&
        e.time <= sim::SimTime::from_seconds(20.0) && e.satellites <= 5) {
      ++degraded_sats;
    }
  }
  EXPECT_GT(degraded_sats, 5);
}

TEST_F(GpsPipelineFixture, SetActiveStopsEpochs) {
  build_pipeline();
  sensor->start();
  scheduler.run_until(sim::SimTime::from_seconds(10.0));
  const auto epochs_at_10 = sensor->epochs();
  sensor->set_active(false);
  scheduler.run_until(sim::SimTime::from_seconds(20.0));
  EXPECT_EQ(sensor->epochs(), epochs_at_10);
  sensor->set_active(true);
  scheduler.run_until(sim::SimTime::from_seconds(30.0));
  EXPECT_GT(sensor->epochs(), epochs_at_10);
  // Active time excludes the 10 s sleep.
  EXPECT_NEAR(sensor->active_time().seconds(), 20.0, 1.1);
}

TEST_F(GpsPipelineFixture, StopCancelsTicks) {
  build_pipeline();
  sensor->start();
  scheduler.run_until(sim::SimTime::from_seconds(5.0));
  sensor->stop();
  scheduler.run_all();
  EXPECT_EQ(sensor->epochs(), 5u);
}

TEST(WifiScanner, EmitsScansAtConfiguredRate) {
  sim::Scheduler scheduler;
  sim::Random random(9);
  const lm::Building building = lm::make_office_building();
  const perpos::wifi::SignalModel model(perpos::wifi::office_access_points(),
                                perpos::wifi::SignalModelConfig{}, &building);
  const sensors::Trajectory trajectory = sensors::office_walk();
  core::ProcessingGraph graph(&scheduler.clock());
  auto scanner = std::make_shared<sensors::WifiScanner>(
      scheduler, random, trajectory, model, sim::SimTime::from_seconds(2.0));
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = graph.add(scanner);
  const auto z = graph.add(sink);
  graph.connect(a, z);
  scanner->start();
  scheduler.run_until(sim::SimTime::from_seconds(20.0));
  EXPECT_EQ(scanner->scans(), 10u);
  EXPECT_EQ(sink->received(), 10u);
  ASSERT_TRUE(sink->last().has_value());
  EXPECT_FALSE(
      sink->last()->payload.as<perpos::wifi::RssiScan>().readings.empty());
}

TEST(Trace, SaveLoadRoundTripRaw) {
  sensors::Trace trace;
  trace.add(sim::SimTime::from_seconds(1.0),
            core::Payload::make(core::RawFragment{"$GPGGA,1\r\n"}));
  trace.add(sim::SimTime::from_seconds(2.0),
            core::Payload::make(core::RawFragment{"with\ttab"}));
  std::stringstream s;
  EXPECT_EQ(trace.save(s), 2u);
  const sensors::Trace loaded = sensors::Trace::load(s);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.entries()[0].payload.as<core::RawFragment>().bytes,
            "$GPGGA,1\r\n");
  EXPECT_EQ(loaded.entries()[1].payload.as<core::RawFragment>().bytes,
            "with\ttab");
  EXPECT_EQ(loaded.entries()[1].time, sim::SimTime::from_seconds(2.0));
}

TEST(Trace, SaveLoadRoundTripRssi) {
  sensors::Trace trace;
  perpos::wifi::RssiScan scan;
  scan.timestamp = sim::SimTime::from_seconds(3.0);
  scan.readings = {{"AP-1", -40.25}, {"AP-2", -61.5}};
  trace.add(scan.timestamp, core::Payload::make(scan));
  std::stringstream s;
  trace.save(s);
  const sensors::Trace loaded = sensors::Trace::load(s);
  ASSERT_EQ(loaded.size(), 1u);
  const auto& back = loaded.entries()[0].payload.as<perpos::wifi::RssiScan>();
  ASSERT_EQ(back.readings.size(), 2u);
  EXPECT_EQ(back.readings[0].ap_id, "AP-1");
  EXPECT_NEAR(back.readings[0].rssi_dbm, -40.25, 0.01);
}

TEST(Trace, LoadRejectsMalformedLines) {
  std::stringstream s("not-a-number RAW xx\n");
  EXPECT_THROW(sensors::Trace::load(s), std::runtime_error);
  std::stringstream s2("100 BOGUS data\n");
  EXPECT_THROW(sensors::Trace::load(s2), std::runtime_error);
}

TEST_F(GpsPipelineFixture, RecorderFeatureCapturesSensorOutput) {
  build_pipeline();
  auto recorder = std::make_shared<sensors::TraceRecorderFeature>();
  graph.attach_feature(sensor_id, recorder);
  sensor->start();
  scheduler.run_until(sim::SimTime::from_seconds(10.0));
  EXPECT_EQ(recorder->trace().size(), graph.info(sensor_id).emitted);
}

TEST_F(GpsPipelineFixture, EmulatorReplayMatchesLiveRun) {
  // Record a live run, then replay it through an EmulatorSource that takes
  // the sensor's place — the paper's validation methodology.
  build_pipeline();
  auto recorder = std::make_shared<sensors::TraceRecorderFeature>();
  graph.attach_feature(sensor_id, recorder);
  std::vector<std::string> live_fixes;
  sink->set_callback([&](const core::Sample& s) {
    live_fixes.push_back(
        core::to_string(s.payload.as<core::PositionFix>()));
  });
  sensor->start();
  scheduler.run_until(sim::SimTime::from_seconds(20.0));
  sensor->stop();

  // Second graph: emulator takes the sensor's place.
  sim::Scheduler replay_sched;
  core::ProcessingGraph replay_graph(&replay_sched.clock());
  auto emulator = std::make_shared<sensors::EmulatorSource>(
      replay_sched, recorder->take_trace(), "GPS");
  auto parser2 = std::make_shared<sensors::NmeaParser>();
  auto interpreter2 = std::make_shared<sensors::NmeaInterpreter>();
  auto sink2 = std::make_shared<core::ApplicationSink>();
  std::vector<std::string> replay_fixes;
  sink2->set_callback([&](const core::Sample& s) {
    replay_fixes.push_back(
        core::to_string(s.payload.as<core::PositionFix>()));
  });
  const auto e = replay_graph.add(emulator);
  const auto p = replay_graph.add(parser2);
  const auto i = replay_graph.add(interpreter2);
  const auto z = replay_graph.add(sink2);
  replay_graph.connect(e, p);
  replay_graph.connect(p, i);
  replay_graph.connect(i, z);
  emulator->start();
  replay_sched.run_all();

  EXPECT_EQ(replay_fixes, live_fixes);
  EXPECT_GT(emulator->replayed(), 0u);
}

TEST(Trace, FileRoundTrip) {
  sensors::Trace trace;
  trace.add(sim::SimTime::from_seconds(1.0),
            core::Payload::make(core::RawFragment{"$GPGGA,x*00\r\n"}));
  perpos::wifi::RssiScan scan;
  scan.timestamp = sim::SimTime::from_seconds(2.0);
  scan.readings = {{"AP", -50.0}};
  trace.add(scan.timestamp, core::Payload::make(scan));

  const std::string path = "/tmp/perpos_trace_test.txt";
  trace.save_file(path);
  const sensors::Trace loaded = sensors::Trace::load_file(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.entries()[0].payload.as<core::RawFragment>().bytes,
            "$GPGGA,x*00\r\n");
  EXPECT_EQ(loaded.entries()[1].payload.as<perpos::wifi::RssiScan>()
                .readings[0]
                .ap_id,
            "AP");
  std::remove(path.c_str());
}

TEST(Trace, FileErrorsThrow) {
  EXPECT_THROW(sensors::Trace::load_file("/nonexistent/path/x.txt"),
               std::runtime_error);
  sensors::Trace trace;
  EXPECT_THROW(trace.save_file("/nonexistent/dir/x.txt"),
               std::runtime_error);
}
