// Tests for the Kalman filter: estimation quality on synthetic motion,
// covariance behaviour, and interchangeability with the particle filter in
// the processing graph.

#include "perpos/core/components.hpp"
#include "perpos/core/graph.hpp"
#include "perpos/fusion/kalman_filter.hpp"
#include "perpos/sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fusion = perpos::fusion;
namespace core = perpos::core;
namespace geo = perpos::geo;
namespace sim = perpos::sim;

TEST(Kalman, InitializesAtFirstMeasurement) {
  fusion::KalmanFilter kf;
  EXPECT_FALSE(kf.initialized());
  kf.init({3.0, 4.0}, 2.0);
  EXPECT_TRUE(kf.initialized());
  EXPECT_DOUBLE_EQ(kf.position().x, 3.0);
  EXPECT_DOUBLE_EQ(kf.position().y, 4.0);
  EXPECT_NEAR(kf.position_sigma(), 2.0, 1e-9);
}

TEST(Kalman, UpdateWithoutInitInitializes) {
  fusion::KalmanFilter kf;
  kf.update({1.0, 1.0}, 3.0);
  EXPECT_TRUE(kf.initialized());
}

TEST(Kalman, PredictGrowsUncertainty) {
  fusion::KalmanFilter kf;
  kf.init({0.0, 0.0}, 1.0);
  const double s0 = kf.position_sigma();
  kf.predict(5.0);
  EXPECT_GT(kf.position_sigma(), s0);
}

TEST(Kalman, UpdateShrinksUncertainty) {
  fusion::KalmanFilter kf;
  kf.init({0.0, 0.0}, 5.0);
  kf.predict(1.0);
  const double before = kf.position_sigma();
  kf.update({0.0, 0.0}, 2.0);
  EXPECT_LT(kf.position_sigma(), before);
}

TEST(Kalman, ConvergesOnStationaryTarget) {
  // A small acceleration PSD suits a (near-)stationary target.
  fusion::KalmanFilter kf(fusion::KalmanConfig{0.05, 1.0});
  sim::Random random(42);
  kf.init({random.normal(10.0, 3.0), random.normal(20.0, 3.0)}, 3.0);
  for (int i = 0; i < 50; ++i) {
    kf.predict(1.0);
    kf.update({random.normal(10.0, 3.0), random.normal(20.0, 3.0)}, 3.0);
  }
  // Steady-state deviation is ~1 m; allow a 2-sigma draw.
  EXPECT_NEAR(kf.position().x, 10.0, 2.0);
  EXPECT_NEAR(kf.position().y, 20.0, 2.0);
  EXPECT_LT(kf.position_sigma(), 3.0);  // Better than one measurement.
  EXPECT_LT(kf.speed(), 0.6);
}

TEST(Kalman, TracksConstantVelocity) {
  fusion::KalmanFilter kf;
  sim::Random random(7);
  kf.init({0.0, 0.0}, 2.0);
  double truth_x = 0.0;
  for (int i = 0; i < 60; ++i) {
    truth_x += 1.5;  // 1.5 m/s east.
    kf.predict(1.0);
    kf.update({random.normal(truth_x, 2.0), random.normal(0.0, 2.0)}, 2.0);
  }
  EXPECT_NEAR(kf.position().x, truth_x, 2.5);
  EXPECT_NEAR(kf.speed(), 1.5, 0.5);
}

TEST(Kalman, SmootherThanRawMeasurements) {
  // The filter's estimates must jitter less than the raw measurements.
  fusion::KalmanFilter kf;
  sim::Random random(11);
  kf.init({0.0, 0.0}, 4.0);
  double raw_jitter = 0.0, filtered_jitter = 0.0;
  geo::LocalPoint prev_raw{0.0, 0.0}, prev_filtered{0.0, 0.0};
  for (int i = 1; i <= 100; ++i) {
    const geo::LocalPoint raw{random.normal(i * 1.0, 4.0),
                              random.normal(0.0, 4.0)};
    kf.predict(1.0);
    kf.update(raw, 4.0);
    raw_jitter += std::hypot(raw.x - prev_raw.x - 1.0, raw.y - prev_raw.y);
    const geo::LocalPoint est = kf.position();
    filtered_jitter += std::hypot(est.x - prev_filtered.x - 1.0,
                                  est.y - prev_filtered.y);
    prev_raw = raw;
    prev_filtered = est;
  }
  EXPECT_LT(filtered_jitter, raw_jitter * 0.6);
}

TEST(KalmanComponent, DropsIntoGraphLikeParticleFilter) {
  const geo::LocalFrame frame(geo::GeoPoint{56.1697, 10.1994, 50.0});
  core::ProcessingGraph graph;
  auto source = std::make_shared<core::SourceComponent>(
      "GPS",
      std::vector<core::DataSpec>{core::provide<core::PositionFix>()});
  auto kf = std::make_shared<fusion::KalmanFilterComponent>(
      fusion::KalmanConfig{}, frame);
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = graph.add(source);
  const auto k = graph.add(kf);
  const auto z = graph.add(sink);
  graph.connect(a, k);
  graph.connect(k, z);
  EXPECT_TRUE(kf->is_channel_endpoint());

  sim::Random random(3);
  for (int i = 0; i < 10; ++i) {
    core::PositionFix fix;
    fix.position = frame.to_geodetic(
        geo::LocalPoint{random.normal(5.0, 2.0), random.normal(5.0, 2.0)});
    fix.horizontal_accuracy_m = 2.0;
    fix.timestamp = sim::SimTime::from_seconds(i);
    fix.technology = "GPS";
    source->push(fix);
  }
  // First fix initializes; the rest produce smoothed outputs.
  EXPECT_EQ(sink->received(), 9u);
  const auto& out = sink->last()->payload.as<core::PositionFix>();
  EXPECT_EQ(out.technology, "KalmanFilter");
  const geo::LocalPoint est = frame.to_local(out.position);
  EXPECT_NEAR(est.x, 5.0, 2.5);
  EXPECT_NEAR(est.y, 5.0, 2.5);
}
