// Tests for the Process Structure Layer: graph manipulation, realizability
// checking, synchronous delivery, logical time and provenance.

#include "perpos/core/components.hpp"
#include "perpos/core/data_types.hpp"
#include "perpos/core/graph.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace core = perpos::core;
using core::Payload;
using core::Sample;

namespace {

struct IntValue {
  int value = 0;
};
struct DoubleValue {
  double value = 0.0;
};

/// A transform that doubles IntValue payloads.
std::shared_ptr<core::LambdaComponent> make_doubler() {
  return std::make_shared<core::LambdaComponent>(
      "Doubler",
      std::vector<core::InputRequirement>{core::require<IntValue>()},
      std::vector<core::DataSpec>{core::provide<IntValue>()},
      [](const Sample& s, const core::ComponentContext& ctx) {
        ctx.emit(Payload::make(IntValue{s.payload.as<IntValue>().value * 2}));
      });
}

std::shared_ptr<core::SourceComponent> make_int_source() {
  return std::make_shared<core::SourceComponent>(
      "IntSource", std::vector<core::DataSpec>{core::provide<IntValue>()});
}

}  // namespace

TEST(Payload, MakeAndAccess) {
  const Payload p = Payload::make(IntValue{7});
  EXPECT_FALSE(p.empty());
  EXPECT_TRUE(p.is<IntValue>());
  EXPECT_FALSE(p.is<DoubleValue>());
  EXPECT_EQ(p.as<IntValue>().value, 7);
  EXPECT_EQ(p.get<DoubleValue>(), nullptr);
  EXPECT_THROW(p.as<DoubleValue>(), std::bad_cast);
}

TEST(Payload, EmptyPayload) {
  const Payload p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.type(), nullptr);
}

TEST(TypeInfo, InternedIdentity) {
  EXPECT_EQ(core::type_of<IntValue>(), core::type_of<IntValue>());
  EXPECT_NE(core::type_of<IntValue>(), core::type_of<DoubleValue>());
}

TEST(TypeInfo, ExplicitNames) {
  EXPECT_EQ(core::type_of<core::PositionFix>()->name(), "PositionFix");
  EXPECT_EQ(core::type_of<core::RawFragment>()->name(), "RawFragment");
}

TEST(Graph, AddAndInfo) {
  core::ProcessingGraph g;
  const auto id = g.add(make_int_source());
  EXPECT_TRUE(g.has(id));
  EXPECT_EQ(g.size(), 1u);
  const core::ComponentInfo info = g.info(id);
  EXPECT_EQ(info.kind, "IntSource");
  EXPECT_TRUE(info.producers.empty());
  EXPECT_TRUE(info.consumers.empty());
}

TEST(Graph, AddNullThrows) {
  core::ProcessingGraph g;
  EXPECT_THROW(g.add(nullptr), std::invalid_argument);
}

TEST(Graph, AddTwiceThrows) {
  core::ProcessingGraph g1, g2;
  auto c = make_int_source();
  g1.add(c);
  EXPECT_THROW(g2.add(c), std::invalid_argument);
}

TEST(Graph, ConnectDeliversData) {
  core::ProcessingGraph g;
  auto source = make_int_source();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto src_id = g.add(source);
  const auto sink_id = g.add(sink);
  g.connect(src_id, sink_id);

  source->push(IntValue{42});
  ASSERT_TRUE(sink->last().has_value());
  EXPECT_EQ(sink->last()->payload.as<IntValue>().value, 42);
  EXPECT_EQ(sink->received(), 1u);
  EXPECT_EQ(g.deliveries(), 1u);
}

TEST(Graph, PipelineTransforms) {
  core::ProcessingGraph g;
  auto source = make_int_source();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto b = g.add(make_doubler());
  const auto c = g.add(make_doubler());
  const auto d = g.add(sink);
  g.connect(a, b);
  g.connect(b, c);
  g.connect(c, d);
  source->push(IntValue{3});
  EXPECT_EQ(sink->last()->payload.as<IntValue>().value, 12);
}

TEST(Graph, TypeMismatchConnectionRejected) {
  core::ProcessingGraph g;
  const auto src = g.add(std::make_shared<core::SourceComponent>(
      "DblSource",
      std::vector<core::DataSpec>{core::provide<DoubleValue>()}));
  const auto doubler = g.add(make_doubler());  // Requires IntValue.
  EXPECT_THROW(g.connect(src, doubler), std::invalid_argument);
}

TEST(Graph, SelfLoopRejected) {
  core::ProcessingGraph g;
  const auto d = g.add(make_doubler());
  EXPECT_THROW(g.connect(d, d), std::invalid_argument);
}

TEST(Graph, DuplicateEdgeRejected) {
  core::ProcessingGraph g;
  auto source = make_int_source();
  const auto a = g.add(source);
  const auto b = g.add(make_doubler());
  g.connect(a, b);
  EXPECT_THROW(g.connect(a, b), std::invalid_argument);
}

TEST(Graph, CycleRejected) {
  core::ProcessingGraph g;
  const auto a = g.add(make_doubler());
  const auto b = g.add(make_doubler());
  const auto c = g.add(make_doubler());
  g.connect(a, b);
  g.connect(b, c);
  EXPECT_THROW(g.connect(c, a), std::invalid_argument);
  EXPECT_THROW(g.connect(b, a), std::invalid_argument);
}

TEST(Graph, DisconnectStopsDelivery) {
  core::ProcessingGraph g;
  auto source = make_int_source();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto b = g.add(sink);
  g.connect(a, b);
  source->push(IntValue{1});
  g.disconnect(a, b);
  source->push(IntValue{2});
  EXPECT_EQ(sink->received(), 1u);
}

TEST(Graph, DisconnectMissingEdgeThrows) {
  core::ProcessingGraph g;
  const auto a = g.add(make_int_source());
  const auto b = g.add(make_doubler());
  EXPECT_THROW(g.disconnect(a, b), std::invalid_argument);
}

TEST(Graph, RemoveDisconnectsEdges) {
  core::ProcessingGraph g;
  auto source = make_int_source();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto mid = g.add(make_doubler());
  const auto b = g.add(sink);
  g.connect(a, mid);
  g.connect(mid, b);
  g.remove(mid);
  EXPECT_FALSE(g.has(mid));
  EXPECT_EQ(g.size(), 2u);
  EXPECT_TRUE(g.info(a).consumers.empty());
  EXPECT_TRUE(g.info(b).producers.empty());
  source->push(IntValue{5});
  EXPECT_EQ(sink->received(), 0u);
}

TEST(Graph, RemovedComponentEmitsNowhere) {
  core::ProcessingGraph g;
  auto source = make_int_source();
  const auto a = g.add(source);
  g.remove(a);
  EXPECT_NO_THROW(source->push(IntValue{1}));  // Detached: emits into void.
}

TEST(Graph, InsertBetweenSplicesNode) {
  core::ProcessingGraph g;
  auto source = make_int_source();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto b = g.add(sink);
  g.connect(a, b);
  const auto mid = g.add(make_doubler());
  g.insert_between(mid, a, b);
  source->push(IntValue{10});
  EXPECT_EQ(sink->last()->payload.as<IntValue>().value, 20);
  EXPECT_EQ(g.info(a).consumers, std::vector<core::ComponentId>{mid});
}

TEST(Graph, InsertBetweenMissingEdgeThrows) {
  core::ProcessingGraph g;
  const auto a = g.add(make_int_source());
  const auto b = g.add(std::make_shared<core::ApplicationSink>());
  const auto mid = g.add(make_doubler());
  EXPECT_THROW(g.insert_between(mid, a, b), std::invalid_argument);
}

TEST(Graph, InsertBetweenRestoresEdgeOnFailure) {
  core::ProcessingGraph g;
  auto source = make_int_source();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto b = g.add(sink);
  g.connect(a, b);
  // A node that cannot accept IntValue: splicing must fail and restore.
  const auto bad = g.add(std::make_shared<core::LambdaComponent>(
      "DoubleOnly",
      std::vector<core::InputRequirement>{core::require<DoubleValue>()},
      std::vector<core::DataSpec>{core::provide<DoubleValue>()}, nullptr));
  EXPECT_THROW(g.insert_between(bad, a, b), std::invalid_argument);
  source->push(IntValue{4});
  EXPECT_EQ(sink->received(), 1u);  // Original edge still works.
}

TEST(Graph, FanOutDeliversToAllAcceptingConsumers) {
  core::ProcessingGraph g;
  auto source = make_int_source();
  auto sink1 = std::make_shared<core::ApplicationSink>("App1");
  auto sink2 = std::make_shared<core::ApplicationSink>("App2");
  const auto a = g.add(source);
  const auto s1 = g.add(sink1);
  const auto s2 = g.add(sink2);
  g.connect(a, s1);
  g.connect(a, s2);
  source->push(IntValue{9});
  EXPECT_EQ(sink1->received(), 1u);
  EXPECT_EQ(sink2->received(), 1u);
}

TEST(Graph, MergeReceivesFromMultipleProducers) {
  core::ProcessingGraph g;
  auto s1 = make_int_source();
  auto s2 = make_int_source();
  std::vector<int> seen;
  const auto merge = g.add(std::make_shared<core::LambdaComponent>(
      "Merge", std::vector<core::InputRequirement>{core::require<IntValue>()},
      std::vector<core::DataSpec>{core::provide<IntValue>()},
      [&](const Sample& s, const core::ComponentContext&) {
        seen.push_back(s.payload.as<IntValue>().value);
      }));
  const auto a = g.add(s1);
  const auto b = g.add(s2);
  g.connect(a, merge);
  g.connect(b, merge);
  s1->push(IntValue{1});
  s2->push(IntValue{2});
  EXPECT_EQ(seen, (std::vector<int>{1, 2}));
}

TEST(Graph, SourcesAndSinks) {
  core::ProcessingGraph g;
  const auto a = g.add(make_int_source());
  const auto m = g.add(make_doubler());
  const auto z = g.add(std::make_shared<core::ApplicationSink>());
  g.connect(a, m);
  g.connect(m, z);
  EXPECT_EQ(g.sources(), std::vector<core::ComponentId>{a});
  EXPECT_EQ(g.sinks(), std::vector<core::ComponentId>{z});
}

TEST(Graph, RevisionBumpsOnStructuralMutation) {
  core::ProcessingGraph g;
  const auto r0 = g.revision();
  const auto a = g.add(make_int_source());
  EXPECT_GT(g.revision(), r0);
  const auto b = g.add(make_doubler());
  const auto r1 = g.revision();
  g.connect(a, b);
  EXPECT_GT(g.revision(), r1);
  const auto r2 = g.revision();
  g.disconnect(a, b);
  EXPECT_GT(g.revision(), r2);
}

TEST(Graph, MutationListenerFires) {
  core::ProcessingGraph g;
  int fired = 0;
  const auto token = g.add_mutation_listener([&] { ++fired; });
  g.add(make_int_source());
  EXPECT_EQ(fired, 1);
  g.remove_mutation_listener(token);
  g.add(make_int_source());
  EXPECT_EQ(fired, 1);
}

// Regression tests for notification reentrancy: removing a listener or
// observer from inside a callback must neither invalidate the walk (the
// historical iterator-invalidation crash) nor deliver to the removed entry.

TEST(Graph, ListenerMaySelfRemoveDuringNotification) {
  core::ProcessingGraph g;
  int fired = 0;
  std::size_t token = 0;
  token = g.add_mutation_listener([&] {
    ++fired;
    g.remove_mutation_listener(token);  // Self-detach mid-walk.
  });
  g.add(make_int_source());
  EXPECT_EQ(fired, 1);
  g.add(make_int_source());  // Tombstone compacted; never fires again.
  EXPECT_EQ(fired, 1);
}

TEST(Graph, ObserverMaySelfRemoveDuringNotification) {
  core::ProcessingGraph g;
  int fired = 0;
  std::size_t token = 0;
  token = g.add_mutation_observer([&](const core::GraphMutation&) {
    ++fired;
    g.remove_mutation_observer(token);
  });
  g.add(make_int_source());
  EXPECT_EQ(fired, 1);
  g.add(make_int_source());
  EXPECT_EQ(fired, 1);
}

TEST(Graph, DetachingLaterObserverSuppressesItsInvocation) {
  core::ProcessingGraph g;
  int second_fired = 0;
  std::size_t second = 0;
  g.add_mutation_observer([&](const core::GraphMutation&) {
    // First observer removes the second before the walk reaches it: the
    // second must not see this mutation (tombstones are skipped in-walk).
    if (second != 0) g.remove_mutation_observer(second);
  });
  second = g.add_mutation_observer(
      [&](const core::GraphMutation&) { ++second_fired; });
  g.add(make_int_source());
  EXPECT_EQ(second_fired, 0);
}

TEST(Graph, ObserverMayMutateGraphReentrantly) {
  core::ProcessingGraph g;
  std::vector<core::GraphMutation::Kind> seen;
  bool nested = false;
  g.add_mutation_observer([&](const core::GraphMutation& m) {
    seen.push_back(m.kind);
    if (!nested) {
      nested = true;
      g.add(make_int_source());  // Nested mutation from inside the walk.
    }
  });
  g.add(make_int_source());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], core::GraphMutation::Kind::kAdd);
  EXPECT_EQ(seen[1], core::GraphMutation::Kind::kAdd);
}

TEST(Graph, ListenerRemovedFromObserverCallbackStaysCoherent) {
  core::ProcessingGraph g;
  int listener_fired = 0;
  const auto listener =
      g.add_mutation_listener([&] { ++listener_fired; });
  g.add_mutation_observer([&](const core::GraphMutation&) {
    g.remove_mutation_listener(listener);  // Cross-list removal mid-walk.
  });
  g.add(make_int_source());
  const int after_first = listener_fired;
  g.add(make_int_source());
  EXPECT_EQ(listener_fired, after_first);  // Never fires again.
}

TEST(Graph, LogicalTimeIsPerProducerSequence) {
  core::ProcessingGraph g;
  auto source = make_int_source();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto b = g.add(sink);
  g.connect(a, b);
  std::vector<std::uint64_t> sequences;
  sink->set_callback(
      [&](const Sample& s) { sequences.push_back(s.sequence); });
  for (int i = 0; i < 4; ++i) source->push(IntValue{i});
  EXPECT_EQ(sequences, (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST(Graph, ProvenanceRecordsConsumedInputs) {
  core::ProcessingGraph g;
  auto source = make_int_source();
  auto sink = std::make_shared<core::ApplicationSink>();
  // An accumulator that emits the sum after every 3 inputs — so each
  // output's provenance spans exactly 3 input sequence numbers.
  int sum = 0, count = 0;
  const auto a = g.add(source);
  const auto acc = g.add(std::make_shared<core::LambdaComponent>(
      "Accumulator",
      std::vector<core::InputRequirement>{core::require<IntValue>()},
      std::vector<core::DataSpec>{core::provide<IntValue>()},
      [&](const Sample& s, const core::ComponentContext& ctx) {
        sum += s.payload.as<IntValue>().value;
        if (++count % 3 == 0) {
          ctx.emit(Payload::make(IntValue{sum}));
          sum = 0;
        }
      }));
  const auto z = g.add(sink);
  g.connect(a, acc);
  g.connect(acc, z);

  for (int i = 1; i <= 6; ++i) source->push(IntValue{i});
  ASSERT_TRUE(sink->last().has_value());
  const Sample& out = *sink->last();
  EXPECT_EQ(out.payload.as<IntValue>().value, 4 + 5 + 6);
  EXPECT_EQ(out.sequence, 2u);           // Second emission of the accumulator.
  EXPECT_EQ(out.input_seq_min(), 4u);    // Built from source samples 4..6.
  EXPECT_EQ(out.input_seq_max(), 6u);
  ASSERT_TRUE(out.inputs);
  EXPECT_EQ(out.inputs->size(), 3u);
}

TEST(Graph, SampleTimestampsComeFromClock) {
  perpos::sim::SimClock clock;
  clock.advance_to(perpos::sim::SimTime::from_seconds(12.0));
  core::ProcessingGraph g(&clock);
  auto source = make_int_source();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = g.add(source);
  const auto b = g.add(sink);
  g.connect(a, b);
  source->push(IntValue{1});
  EXPECT_DOUBLE_EQ(sink->last()->timestamp.seconds(), 12.0);
}

TEST(Graph, MutationDuringDispatchThrows) {
  core::ProcessingGraph g;
  auto source = make_int_source();
  const auto a = g.add(source);
  const auto b = g.add(std::make_shared<core::LambdaComponent>(
      "Mutator",
      std::vector<core::InputRequirement>{core::require<IntValue>()},
      std::vector<core::DataSpec>{core::provide<IntValue>()},
      [&g](const Sample&, const core::ComponentContext&) {
        g.add(std::make_shared<core::ApplicationSink>());  // Forbidden.
      }));
  g.connect(a, b);
  EXPECT_THROW(source->push(IntValue{1}), std::logic_error);
}

TEST(Graph, UnknownIdsThrow) {
  core::ProcessingGraph g;
  EXPECT_THROW(g.info(99), std::invalid_argument);
  EXPECT_THROW(g.remove(99), std::invalid_argument);
  EXPECT_THROW(g.component(99), std::invalid_argument);
  const auto a = g.add(make_int_source());
  EXPECT_THROW(g.connect(a, 99), std::invalid_argument);
}

TEST(Graph, ComponentAsTypedAccess) {
  core::ProcessingGraph g;
  const auto a = g.add(make_int_source());
  EXPECT_NE(g.component_as<core::SourceComponent>(a), nullptr);
  EXPECT_EQ(g.component_as<core::ApplicationSink>(a), nullptr);
}

TEST(Graph, EmittedCountTracked) {
  core::ProcessingGraph g;
  auto source = make_int_source();
  const auto a = g.add(source);
  source->push(IntValue{1});
  source->push(IntValue{2});
  EXPECT_EQ(g.info(a).emitted, 2u);
}

TEST(Graph, ExceptionInComponentLeavesGraphConsistent) {
  // A component throwing in on_input must not corrupt dispatch state:
  // subsequent deliveries work and mutation is possible again.
  core::ProcessingGraph g;
  auto source = make_int_source();
  bool bomb_armed = true;
  const auto a = g.add(source);
  const auto b = g.add(std::make_shared<core::LambdaComponent>(
      "Bomb", std::vector<core::InputRequirement>{core::require<IntValue>()},
      std::vector<core::DataSpec>{core::provide<IntValue>()},
      [&](const Sample& s, const core::ComponentContext& ctx) {
        if (bomb_armed) throw std::runtime_error("boom");
        ctx.emit(s.payload);
      }));
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto z = g.add(sink);
  g.connect(a, b);
  g.connect(b, z);

  EXPECT_THROW(source->push(IntValue{1}), std::runtime_error);
  // Dispatch depth unwound: structural mutation works again.
  EXPECT_NO_THROW(g.add(std::make_shared<core::ApplicationSink>()));
  bomb_armed = false;
  EXPECT_NO_THROW(source->push(IntValue{2}));
  EXPECT_EQ(sink->last()->payload.as<IntValue>().value, 2);
}

TEST(Graph, ExceptionInFeatureHookPropagatesCleanly) {
  core::ProcessingGraph g;
  auto source = make_int_source();
  const auto a = g.add(source);
  class ThrowingFeature final : public core::ComponentFeature {
   public:
    std::string_view name() const override { return "Thrower"; }
    bool produce(Sample&) override { throw std::runtime_error("hook"); }
  };
  g.attach_feature(a, std::make_shared<ThrowingFeature>());
  EXPECT_THROW(source->push(IntValue{1}), std::runtime_error);
  g.detach_feature(a, "Thrower");
  EXPECT_NO_THROW(source->push(IntValue{2}));
}
