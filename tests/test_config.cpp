// Tests for the declarative system-level configuration: parsing,
// instantiation through the factory registry, explicit edges, the resolve
// directive and per-line error reporting.

#include "perpos/core/components.hpp"
#include "perpos/runtime/config.hpp"

#include <gtest/gtest.h>

namespace rt = perpos::runtime;
namespace core = perpos::core;

namespace {

struct Num {
  int value = 0;
};

rt::ComponentFactoryRegistry make_registry() {
  rt::ComponentFactoryRegistry registry;
  registry.register_kind(
      "source", [](const std::vector<std::string>&) {
        return std::make_shared<core::SourceComponent>(
            "Source", std::vector<core::DataSpec>{core::provide<Num>()});
      });
  registry.register_kind(
      "doubler", [](const std::vector<std::string>&) {
        return std::make_shared<core::LambdaComponent>(
            "Doubler",
            std::vector<core::InputRequirement>{core::require<Num>()},
            std::vector<core::DataSpec>{core::provide<Num>()},
            [](const core::Sample& s, const core::ComponentContext& ctx) {
              ctx.emit(core::Payload::make(Num{s.payload.as<Num>().value * 2}));
            });
      });
  registry.register_kind(
      "sink", [](const std::vector<std::string>& args) {
        const std::string name = args.empty() ? "Sink" : args[0];
        return std::make_shared<core::ApplicationSink>(
            name, std::vector<core::InputRequirement>{core::require<Num>()});
      });
  return registry;
}

}  // namespace

TEST(FactoryRegistry, RegisterCreateAndList) {
  const auto registry = make_registry();
  EXPECT_TRUE(registry.has("source"));
  EXPECT_FALSE(registry.has("bogus"));
  EXPECT_EQ(registry.kinds().size(), 3u);
  EXPECT_NE(registry.create("sink", {}), nullptr);
  EXPECT_THROW(registry.create("bogus", {}), std::invalid_argument);
}

TEST(FactoryRegistry, DuplicateKindRejected) {
  rt::ComponentFactoryRegistry registry;
  registry.register_kind("x", [](const auto&) {
    return std::make_shared<core::ApplicationSink>();
  });
  EXPECT_THROW(registry.register_kind("x", [](const auto&) {
    return std::make_shared<core::ApplicationSink>();
  }),
               std::invalid_argument);
}

TEST(Config, ExplicitPipeline) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result = rt::assemble_from_config(R"(
# The classic pipeline, wired explicitly.
component src source
component dbl doubler
component app sink
connect src dbl
connect dbl app
)",
                                               registry, graph);
  ASSERT_TRUE(result.ok()) << (result.errors.empty()
                                   ? "unsatisfied requirements"
                                   : result.errors[0]);
  EXPECT_EQ(result.report.instantiated.size(), 3u);
  EXPECT_EQ(result.report.edges.size(), 2u);

  auto* source = graph.component_as<core::SourceComponent>(
      result.report.id_of("src"));
  auto* sink =
      graph.component_as<core::ApplicationSink>(result.report.id_of("app"));
  ASSERT_NE(source, nullptr);
  ASSERT_NE(sink, nullptr);
  source->push(Num{21});
  EXPECT_EQ(sink->last()->payload.as<Num>().value, 42);
}

TEST(Config, ResolveDirectiveWiresOpenPorts) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result = rt::assemble_from_config(R"(
component src source
component dbl doubler
component app sink
resolve
)",
                                               registry, graph);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.report.edges.size(), 2u);
}

TEST(Config, FactoryArgumentsPassed) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result = rt::assemble_from_config(
      "component app sink MyNamedApp\n", registry, graph);
  ASSERT_TRUE(result.errors.empty());
  EXPECT_EQ(std::string(
                graph.component(result.report.id_of("app")).kind()),
            "MyNamedApp");
}

TEST(Config, ErrorsAreCollectedPerLine) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result = rt::assemble_from_config(R"(
component src source
component src source
component x bogus-kind
component incomplete
connect src missing
frobnicate
connect src
)",
                                               registry, graph);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.errors.size(), 6u);
  // Pass 1 (parse/instantiate) errors come first, in line order; the
  // unknown-name connect error is reported by pass 2 at the end.
  EXPECT_NE(result.errors[0].find("duplicate"), std::string::npos);
  EXPECT_NE(result.errors[1].find("bogus-kind"), std::string::npos);
  EXPECT_NE(result.errors[2].find("component needs"), std::string::npos);
  EXPECT_NE(result.errors[3].find("frobnicate"), std::string::npos);
  EXPECT_NE(result.errors[4].find("connect needs"), std::string::npos);
  EXPECT_NE(result.errors[5].find("missing"), std::string::npos);
  // The valid part still applied.
  EXPECT_EQ(graph.size(), 1u);
}

TEST(Config, IncompatibleConnectReported) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result = rt::assemble_from_config(R"(
component a source
component b source
connect a b
)",
                                               registry, graph);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_NE(result.errors[0].find("connect"), std::string::npos);
}

TEST(Config, CommentsAndBlanksIgnored) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result = rt::assemble_from_config(
      "\n   \n# just a comment\ncomponent s source # trailing comment\n",
      registry, graph);
  EXPECT_TRUE(result.errors.empty());
  EXPECT_EQ(graph.size(), 1u);
}

TEST(Config, UnsatisfiedAfterResolveReported) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result = rt::assemble_from_config(R"(
component app sink
resolve
)",
                                               registry, graph);
  EXPECT_TRUE(result.errors.empty());
  EXPECT_FALSE(result.report.ok());
  ASSERT_EQ(result.report.unsatisfied.size(), 1u);
  EXPECT_EQ(result.report.unsatisfied[0].first, "app");
}

TEST(Config, ExportRoundTrip) {
  // Build a graph, export it, re-assemble from the export: the new graph
  // must have the same structure (component kinds and edge kinds).
  const auto registry = make_registry();
  core::ProcessingGraph original;
  const auto first = rt::assemble_from_config(R"(
component src source
component dbl doubler
component app sink
connect src dbl
connect dbl app
)",
                                              registry, original);
  ASSERT_TRUE(first.ok());

  const std::string exported = rt::export_config(original);
  EXPECT_NE(exported.find("component Source_0 Source"), std::string::npos);
  EXPECT_NE(exported.find("connect Source_0 Doubler_1"), std::string::npos);

  // Re-assembly needs a registry keyed by the kind() names.
  rt::ComponentFactoryRegistry by_kind;
  by_kind.register_kind("Source", [](const auto&) {
    return std::make_shared<core::SourceComponent>(
        "Source", std::vector<core::DataSpec>{core::provide<Num>()});
  });
  by_kind.register_kind("Doubler", [](const auto&) {
    return std::make_shared<core::LambdaComponent>(
        "Doubler", std::vector<core::InputRequirement>{core::require<Num>()},
        std::vector<core::DataSpec>{core::provide<Num>()},
        [](const core::Sample& s, const core::ComponentContext& ctx) {
          ctx.emit(core::Payload::make(Num{s.payload.as<Num>().value * 2}));
        });
  });
  by_kind.register_kind("Sink", [](const auto&) {
    return std::make_shared<core::ApplicationSink>(
        "Sink", std::vector<core::InputRequirement>{core::require<Num>()});
  });

  core::ProcessingGraph rebuilt;
  const auto second = rt::assemble_from_config(exported, by_kind, rebuilt);
  ASSERT_TRUE(second.errors.empty())
      << (second.errors.empty() ? "" : second.errors[0]);
  EXPECT_EQ(rebuilt.size(), original.size());
  EXPECT_EQ(second.report.edges.size(), 2u);
}

TEST(Config, ObserveDirectiveEnablesObservability) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result = rt::assemble_from_config(R"(
component src source
component app sink
connect src app
observe metrics timing tracing
)",
                                               registry, graph);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(graph.observability_enabled());
  const auto* cfg = graph.observability_config();
  ASSERT_NE(cfg, nullptr);
  EXPECT_TRUE(cfg->metrics);
  EXPECT_TRUE(cfg->timing);
  EXPECT_TRUE(cfg->tracing);
  EXPECT_NE(graph.tracer(), nullptr);
}

TEST(Config, ObserveDirectiveDefaultsToMetricsAndTiming) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result =
      rt::assemble_from_config("observe\n", registry, graph);
  ASSERT_TRUE(result.ok());
  const auto* cfg = graph.observability_config();
  ASSERT_NE(cfg, nullptr);
  EXPECT_TRUE(cfg->metrics);
  EXPECT_TRUE(cfg->timing);
  EXPECT_FALSE(cfg->tracing);
}

TEST(Config, ObserveUnknownFlagReported) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result =
      rt::assemble_from_config("observe shiny\n", registry, graph);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_NE(result.errors[0].find("unknown observe flag"), std::string::npos);
  EXPECT_FALSE(graph.observability_enabled());
}

TEST(Config, HealthDirectiveParsesSettings) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result = rt::assemble_from_config(R"(
component src source
component app sink
connect src app
health degraded_after_s=1.5 stale_after_s=4 dead_after_s=20 max_retries=3
health ack_timeout_ms=250
)",
                                               registry, graph);
  ASSERT_TRUE(result.ok()) << (result.errors.empty() ? "unsatisfied"
                                                     : result.errors[0]);
  ASSERT_TRUE(result.health.has_value());
  EXPECT_DOUBLE_EQ(result.health->degraded_after_s, 1.5);
  EXPECT_DOUBLE_EQ(result.health->stale_after_s, 4.0);
  EXPECT_DOUBLE_EQ(result.health->dead_after_s, 20.0);
  EXPECT_EQ(result.health->max_retries, 3);
  // The second line extended, not replaced, the first.
  EXPECT_DOUBLE_EQ(result.health->ack_timeout_ms, 250.0);
  // Untouched keys keep their defaults.
  EXPECT_DOUBLE_EQ(result.health->hold_s, rt::HealthSettings{}.hold_s);

  // The parsed settings translate into a PL failover config.
  const auto failover = result.health->failover();
  EXPECT_DOUBLE_EQ(failover.degraded_after_s, 1.5);
  EXPECT_DOUBLE_EQ(failover.stale_after_s, 4.0);
}

TEST(Config, HealthDirectiveAbsentMeansNoSettings) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result =
      rt::assemble_from_config("component s source\n", registry, graph);
  EXPECT_FALSE(result.health.has_value());
}

TEST(Config, HealthDirectiveErrorsReported) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result = rt::assemble_from_config(R"(
health frobnication=3
health degraded_after_s=soon
health stale_after_s
)",
                                               registry, graph);
  ASSERT_EQ(result.errors.size(), 3u);
  EXPECT_NE(result.errors[0].find("unknown health key"), std::string::npos);
  EXPECT_NE(result.errors[1].find("bad number"), std::string::npos);
  EXPECT_NE(result.errors[2].find("key=value"), std::string::npos);
  // A rejected line leaves the settings untouched.
  EXPECT_FALSE(result.health.has_value());
}

TEST(Config, HealthRoundTripsThroughExport) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto first = rt::assemble_from_config(R"(
component src source
component app sink
connect src app
health degraded_after_s=1.5 stale_after_s=4 dead_after_s=20 recovery_s=1 hold_s=7 check_interval_s=0.5 max_retries=3 ack_timeout_ms=250
)",
                                              registry, graph);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.health.has_value());

  const std::string exported = rt::export_config(graph, &*first.health);
  EXPECT_NE(exported.find("health "), std::string::npos);

  // Re-parse the export: identical settings come back.
  rt::ComponentFactoryRegistry by_kind;
  by_kind.register_kind("Source", [](const auto&) {
    return std::make_shared<core::SourceComponent>(
        "Source", std::vector<core::DataSpec>{core::provide<Num>()});
  });
  by_kind.register_kind("Sink", [](const auto&) {
    return std::make_shared<core::ApplicationSink>(
        "Sink", std::vector<core::InputRequirement>{core::require<Num>()});
  });
  core::ProcessingGraph rebuilt;
  const auto second = rt::assemble_from_config(exported, by_kind, rebuilt);
  ASSERT_TRUE(second.errors.empty())
      << (second.errors.empty() ? "" : second.errors[0]);
  ASSERT_TRUE(second.health.has_value());
  EXPECT_EQ(*second.health, *first.health);
}

TEST(Config, ReconfigDirectiveParsesSettings) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result = rt::assemble_from_config(R"(
component src source
reconfig verify=0 history=4 tee_samples=64
reconfig probation_checks=10
)",
                                               registry, graph);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.reconfig.has_value());
  EXPECT_FALSE(result.reconfig->verify);
  EXPECT_EQ(result.reconfig->history, 4u);
  EXPECT_EQ(result.reconfig->tee_samples, 64u);
  // Second line merged into the first, defaults untouched elsewhere.
  EXPECT_EQ(result.reconfig->probation_checks, 10u);
}

TEST(Config, ReconfigDirectiveErrorsReported) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result = rt::assemble_from_config(R"(
component src source
reconfig frobnication=3
reconfig history=soon
reconfig verify
)",
                                               registry, graph);
  ASSERT_EQ(result.errors.size(), 3u);
  EXPECT_NE(result.errors[0].find("unknown reconfig key"), std::string::npos);
  EXPECT_NE(result.errors[1].find("bad number"), std::string::npos);
  EXPECT_NE(result.errors[2].find("key=value"), std::string::npos);
  EXPECT_FALSE(result.reconfig.has_value());
}

TEST(Config, ReconfigRoundTripsThroughExport) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto first = rt::assemble_from_config(R"(
component src source
component app sink
connect src app
reconfig verify=1 history=16 tee_samples=128 probation_checks=5
)",
                                              registry, graph);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.reconfig.has_value());

  const std::string exported = rt::export_config(
      graph, nullptr, nullptr, nullptr, &*first.reconfig);
  EXPECT_NE(exported.find("reconfig "), std::string::npos);

  rt::ComponentFactoryRegistry by_kind;
  by_kind.register_kind("Source", [](const auto&) {
    return std::make_shared<core::SourceComponent>(
        "Source", std::vector<core::DataSpec>{core::provide<Num>()});
  });
  by_kind.register_kind("Sink", [](const auto&) {
    return std::make_shared<core::ApplicationSink>(
        "Sink", std::vector<core::InputRequirement>{core::require<Num>()});
  });
  core::ProcessingGraph rebuilt;
  const auto second = rt::assemble_from_config(exported, by_kind, rebuilt);
  ASSERT_TRUE(second.errors.empty())
      << (second.errors.empty() ? "" : second.errors[0]);
  ASSERT_TRUE(second.reconfig.has_value());
  EXPECT_EQ(*second.reconfig, *first.reconfig);
}

TEST(Config, PlanDirectiveParsesSettingsAndReportsErrors) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result = rt::assemble_from_config(R"(
component src source
plan
plan auto_refreeze=0
)",
                                               registry, graph);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.plan.has_value());
  EXPECT_TRUE(result.plan->freeze);  // Bare `plan` keeps the default.
  EXPECT_FALSE(result.plan->auto_refreeze);

  core::ProcessingGraph other;
  const auto bad = rt::assemble_from_config(R"(
component src source
plan melt=1
plan freeze=maybe
plan freeze
)",
                                            registry, other);
  ASSERT_EQ(bad.errors.size(), 3u);
  EXPECT_NE(bad.errors[0].find("unknown plan key"), std::string::npos);
  EXPECT_NE(bad.errors[1].find("bad number"), std::string::npos);
  EXPECT_NE(bad.errors[2].find("key=value"), std::string::npos);
  EXPECT_FALSE(bad.plan.has_value());
}

TEST(Config, PlanRoundTripsThroughExport) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto first = rt::assemble_from_config(R"(
component src source
component app sink
connect src app
plan freeze=1 auto_refreeze=0
)",
                                              registry, graph);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.plan.has_value());

  const std::string exported = rt::export_config(
      graph, nullptr, nullptr, nullptr, nullptr, nullptr, nullptr,
      &*first.plan);
  EXPECT_NE(exported.find("plan freeze=1 auto_refreeze=0"),
            std::string::npos);

  rt::ComponentFactoryRegistry by_kind;
  by_kind.register_kind("Source", [](const auto&) {
    return std::make_shared<core::SourceComponent>(
        "Source", std::vector<core::DataSpec>{core::provide<Num>()});
  });
  by_kind.register_kind("Sink", [](const auto&) {
    return std::make_shared<core::ApplicationSink>(
        "Sink", std::vector<core::InputRequirement>{core::require<Num>()});
  });
  core::ProcessingGraph rebuilt;
  const auto second = rt::assemble_from_config(exported, by_kind, rebuilt);
  ASSERT_TRUE(second.errors.empty())
      << (second.errors.empty() ? "" : second.errors[0]);
  ASSERT_TRUE(second.plan.has_value());
  EXPECT_EQ(*second.plan, *first.plan);
}

TEST(Config, ObserveRoundTripsThroughExport) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  ASSERT_TRUE(rt::assemble_from_config(R"(
component src source
observe metrics tracing
)",
                                       registry, graph)
                  .ok());
  const std::string exported = rt::export_config(graph);
  EXPECT_NE(exported.find("observe metrics tracing"), std::string::npos);
  EXPECT_EQ(exported.find("timing"), std::string::npos);
}

TEST(Config, ObserveLatencyRecordingAndSloParse) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result = rt::assemble_from_config(R"(
component src source
component app sink
connect src app
observe latency recording slo_us=250
)",
                                               registry, graph);
  ASSERT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors[0]);
  const auto* cfg = graph.observability_config();
  ASSERT_NE(cfg, nullptr);
  EXPECT_TRUE(cfg->latency);
  EXPECT_TRUE(cfg->recording);
  EXPECT_DOUBLE_EQ(cfg->latency_slo_us, 250.0);
  // `recording` attaches the graph-owned flight recorder.
  EXPECT_NE(graph.flight_recorder(), nullptr);

  const std::string exported = rt::export_config(graph);
  EXPECT_NE(exported.find("latency"), std::string::npos);
  EXPECT_NE(exported.find("recording"), std::string::npos);
  EXPECT_NE(exported.find("slo_us=250"), std::string::npos);

  // Re-parsing the export reproduces the observability config exactly.
  // (Re-assembly of the component lines needs a kind()-keyed registry, as
  // in ExportRoundTrip; the observe semantics are what's under test here.)
  rt::ComponentFactoryRegistry by_kind;
  by_kind.register_kind("Source", [](const auto&) {
    return std::make_shared<core::SourceComponent>(
        "Source", std::vector<core::DataSpec>{core::provide<Num>()});
  });
  by_kind.register_kind("Sink", [](const auto&) {
    return std::make_shared<core::ApplicationSink>(
        "Sink", std::vector<core::InputRequirement>{core::require<Num>()});
  });
  core::ProcessingGraph second;
  const auto round = rt::assemble_from_config(exported, by_kind, second);
  ASSERT_TRUE(round.ok()) << (round.errors.empty() ? "" : round.errors[0]);
  const auto* cfg2 = second.observability_config();
  ASSERT_NE(cfg2, nullptr);
  EXPECT_TRUE(cfg2->latency);
  EXPECT_TRUE(cfg2->recording);
  EXPECT_DOUBLE_EQ(cfg2->latency_slo_us, 250.0);
}

TEST(Config, ObserveAllEnablesEverything) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  ASSERT_TRUE(rt::assemble_from_config("observe all\n", registry, graph).ok());
  const auto* cfg = graph.observability_config();
  ASSERT_NE(cfg, nullptr);
  EXPECT_TRUE(cfg->metrics);
  EXPECT_TRUE(cfg->timing);
  EXPECT_TRUE(cfg->tracing);
  EXPECT_TRUE(cfg->latency);
  EXPECT_TRUE(cfg->recording);
}

TEST(Config, ObserveBadSloReported) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result =
      rt::assemble_from_config("observe slo_us=banana\n", registry, graph);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_NE(result.errors[0].find("slo_us"), std::string::npos);
}

// --- The budget verb ---------------------------------------------------------

TEST(Config, BudgetAnnotationAndDefaultsParse) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result = rt::assemble_from_config(R"(
component src source
component app sink
connect src app
budget src rate=10..20 cost_us=2.5
budget app min_rate=0.5
budget * source_rate=4 burst=16 watermark=256 slo_us=50000
)",
                                               registry, graph);
  ASSERT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors[0]);
  const rt::BudgetAnnotation& src = result.budgets.at("src");
  EXPECT_DOUBLE_EQ(src.rate_lo_hz, 10.0);
  EXPECT_DOUBLE_EQ(src.rate_hi_hz, 20.0);
  EXPECT_DOUBLE_EQ(src.cost_us, 2.5);
  EXPECT_DOUBLE_EQ(src.min_rate_hz, 0.0);
  const rt::BudgetAnnotation& app = result.budgets.at("app");
  EXPECT_DOUBLE_EQ(app.min_rate_hz, 0.5);
  EXPECT_LT(app.cost_us, 0.0);  // Untouched: stays "calibrated".
  ASSERT_TRUE(result.budget_defaults.has_value());
  EXPECT_DOUBLE_EQ(result.budget_defaults->source_rate_hz, 4.0);
  EXPECT_DOUBLE_EQ(result.budget_defaults->burst, 16.0);
  EXPECT_EQ(result.budget_defaults->queue_watermark, 256u);
  EXPECT_DOUBLE_EQ(result.budget_defaults->latency_slo_us, 50000.0);
}

TEST(Config, BudgetLinesMergeFieldByField) {
  // A later line refines, never resets: rate from line one survives a
  // cost-only line two, and a rate-only line three replaces only the rate.
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result = rt::assemble_from_config(R"(
component src source
budget src rate=10
budget src cost_us=7
budget src rate=30..40
)",
                                               registry, graph);
  ASSERT_TRUE(result.errors.empty()) << result.errors[0];
  const rt::BudgetAnnotation& src = result.budgets.at("src");
  EXPECT_DOUBLE_EQ(src.rate_lo_hz, 30.0);
  EXPECT_DOUBLE_EQ(src.rate_hi_hz, 40.0);
  EXPECT_DOUBLE_EQ(src.cost_us, 7.0);
}

TEST(Config, BudgetErrorsArePerLine) {
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result = rt::assemble_from_config(R"(
component src source
budget src frobs=3
budget src cost_us=soon
budget src rate=9..3
budget src not-key-value
budget
budget src
budget * rate=5
budget ghost rate=5
)",
                                               registry, graph);
  ASSERT_EQ(result.errors.size(), 8u);
  EXPECT_NE(result.errors[0].find("unknown budget key 'frobs'"),
            std::string::npos);
  EXPECT_NE(result.errors[1].find("bad number 'soon'"), std::string::npos);
  EXPECT_NE(result.errors[2].find("budget rate: bad interval '9..3'"),
            std::string::npos);
  EXPECT_NE(result.errors[3].find("key=value tokens"), std::string::npos);
  EXPECT_NE(result.errors[4].find("budget needs <component-name>"),
            std::string::npos);
  EXPECT_NE(result.errors[5].find("budget 'src' sets no annotation"),
            std::string::npos);
  EXPECT_NE(result.errors[6].find("unknown budget * key 'rate'"),
            std::string::npos);
  // Unknown targets surface in the resolution pass, after every parse
  // error, because `budget` lines may precede the components they name.
  EXPECT_NE(result.errors[7].find("budget: unknown component 'ghost'"),
            std::string::npos);
  // Nothing half-applied: the only valid target never got a valid key.
  EXPECT_TRUE(result.budgets.empty());
  EXPECT_FALSE(result.budget_defaults.has_value());
}

TEST(Config, BudgetZeroValuesAreTheUnsetConvention) {
  // min_rate=0 / rate interval 0..0 ARE the "unset" encodings, so a line
  // writing only zeros parses fine but annotates nothing — the analyzer
  // sees calibrated cost and no rate floor, exactly as with no line.
  const auto registry = make_registry();
  core::ProcessingGraph graph;
  const auto result = rt::assemble_from_config(R"(
component src source
budget src min_rate=0
)",
                                               registry, graph);
  ASSERT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_EQ(result.budgets.at("src"), rt::BudgetAnnotation{});
}
