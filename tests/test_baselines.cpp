// Tests for the comparator middlewares: the mini Location Stack (fixed
// layers, common measurement format) and mini PoSIM (sensor wrappers with
// latest-value info keys and declarative policies).

#include "perpos/baselines/location_stack.hpp"
#include "perpos/baselines/middlewhere.hpp"
#include "perpos/baselines/posim.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bl = perpos::baselines;
namespace geo = perpos::geo;
namespace sim = perpos::sim;

namespace {

bl::StackMeasurement measure(double lat, double lon, double acc, double t,
                             std::string tech = "GPS") {
  bl::StackMeasurement m;
  m.position = {lat, lon, 0.0};
  m.accuracy_m = acc;
  m.timestamp = sim::SimTime::from_seconds(t);
  m.technology = std::move(tech);
  return m;
}

}  // namespace

TEST(LocationStack, SingleMeasurementPassesThrough) {
  bl::LocationStack stack;
  stack.push_measurement(measure(56.0, 10.0, 5.0, 1.0));
  const auto pos = stack.get_position();
  ASSERT_TRUE(pos.has_value());
  EXPECT_NEAR(pos->position.latitude_deg, 56.0, 1e-9);
}

TEST(LocationStack, FusionWeightsByAccuracy) {
  bl::LocationStack stack;
  stack.push_measurement(measure(56.0, 10.0, 1.0, 1.0, "GPS"));
  stack.push_measurement(measure(56.1, 10.0, 100.0, 1.5, "WiFi"));
  const auto pos = stack.get_position();
  ASSERT_TRUE(pos.has_value());
  // The accurate measurement dominates.
  EXPECT_NEAR(pos->position.latitude_deg, 56.0, 0.001);
  EXPECT_LT(pos->accuracy_m, 1.0);  // Fusion tightens the estimate.
}

TEST(LocationStack, WindowPrunesStaleMeasurements) {
  bl::LocationStack stack({sim::SimTime::from_seconds(5.0)});
  stack.push_measurement(measure(56.0, 10.0, 1.0, 0.0));
  stack.push_measurement(measure(57.0, 11.0, 1.0, 60.0));
  EXPECT_EQ(stack.window_size(), 1u);  // The old one is gone.
  EXPECT_NEAR(stack.get_position()->position.latitude_deg, 57.0, 1e-9);
}

TEST(LocationStack, SubscribersNotified) {
  bl::LocationStack stack;
  int events = 0;
  stack.subscribe([&](const bl::StackMeasurement&) { ++events; });
  stack.push_measurement(measure(56.0, 10.0, 1.0, 1.0));
  stack.push_measurement(measure(56.0, 10.0, 1.0, 2.0));
  EXPECT_EQ(events, 2);
}

TEST(LocationStack, NegativeAccuracyDroppedByMeasurementLayer) {
  bl::LocationStack stack;
  stack.push_measurement(measure(56.0, 10.0, -1.0, 1.0));
  EXPECT_FALSE(stack.get_position().has_value());
}

TEST(LocationStack, ExtendedFormatCarriesGpsFieldsEverywhere) {
  bl::ExtendedLocationStack stack;
  bl::ExtendedStackMeasurement wifi;
  wifi.position = {56.0, 10.0, 0.0};
  wifi.accuracy_m = 4.0;
  wifi.timestamp = sim::SimTime::from_seconds(1.0);
  wifi.technology = "WiFi";
  // The point of the comparison: WiFi measurements must carry (meaningless)
  // satellite fields once the format is extended for one GPS application.
  EXPECT_EQ(wifi.satellites, -1);
  stack.push_measurement(wifi);
  ASSERT_TRUE(stack.get_position().has_value());

  // And every measurement of every technology grew by the same bytes.
  bl::StackMeasurement plain;
  plain.technology = "WiFi";
  bl::ExtendedStackMeasurement extended;
  extended.technology = "WiFi";
  EXPECT_GT(bl::measurement_bytes(extended), bl::measurement_bytes(plain));
}

// --- PoSIM -------------------------------------------------------------------

namespace {

class FakeGpsWrapper final : public bl::PosimSensorWrapper {
 public:
  FakeGpsWrapper() : PosimSensorWrapper("GPS") {}

  /// Simulates one epoch: updates infos, then delivers the position.
  void epoch(bl::Posim& posim, double lat, double lon, double hdop,
             int satellites, double t) {
    publish_info("HDOP", hdop);
    publish_info("satellites", satellites);
    bl::PosimPosition pos;
    pos.position = {lat, lon, 0.0};
    pos.accuracy_m = hdop * 4.0;
    pos.timestamp = sim::SimTime::from_seconds(t);
    posim.deliver(*this, pos);
  }
};

}  // namespace

TEST(Posim, InfoKeysExposeLatestValues) {
  bl::Posim posim;
  auto wrapper = std::make_shared<FakeGpsWrapper>();
  posim.add_wrapper(wrapper);
  wrapper->epoch(posim, 56.0, 10.0, 1.5, 8, 1.0);
  EXPECT_DOUBLE_EQ(*posim.get_info("GPS", "HDOP"), 1.5);
  EXPECT_DOUBLE_EQ(*posim.get_info("GPS", "satellites"), 8.0);
  EXPECT_FALSE(posim.get_info("GPS", "nonexistent").has_value());
  EXPECT_FALSE(posim.get_info("BLE", "HDOP").has_value());
}

TEST(Posim, InfoIsLatestValueOnly) {
  // The seam the paper points out: by the time the application inspects
  // HDOP for a delivered position, a newer epoch may have overwritten it.
  bl::Posim posim;
  auto wrapper = std::make_shared<FakeGpsWrapper>();
  posim.add_wrapper(wrapper);

  std::vector<bl::PosimPosition> queue;  // App processes asynchronously.
  posim.subscribe([&](const bl::PosimPosition& p) { queue.push_back(p); });
  wrapper->epoch(posim, 56.0, 10.0, 1.0, 9, 1.0);
  wrapper->epoch(posim, 56.1, 10.1, 9.0, 3, 2.0);
  // The app now processes position #1 — but the info is from epoch #2.
  ASSERT_EQ(queue.size(), 2u);
  EXPECT_DOUBLE_EQ(*posim.get_info("GPS", "HDOP"), 9.0);  // Stale mismatch.
}

TEST(Posim, PoliciesEvaluateOnDelivery) {
  bl::Posim posim;
  auto wrapper = std::make_shared<FakeGpsWrapper>();
  posim.add_wrapper(wrapper);
  posim.add_policy(bl::PosimPolicy{
      "low-power-when-bad-hdop",
      [](const bl::PosimSensorWrapper& w) {
        const auto hdop = w.get_info("HDOP");
        return hdop && *hdop > 5.0;
      },
      [](bl::PosimSensorWrapper& w) { w.set_control("power", "low"); }});

  wrapper->epoch(posim, 56.0, 10.0, 1.0, 9, 1.0);
  EXPECT_FALSE(wrapper->get_control("power").has_value());
  wrapper->epoch(posim, 56.0, 10.0, 8.0, 3, 2.0);
  ASSERT_TRUE(wrapper->get_control("power").has_value());
  EXPECT_EQ(*wrapper->get_control("power"), "low");
}

TEST(Posim, PositionsCarryEpochCounter) {
  bl::Posim posim;
  auto wrapper = std::make_shared<FakeGpsWrapper>();
  posim.add_wrapper(wrapper);
  wrapper->epoch(posim, 56.0, 10.0, 1.0, 9, 1.0);
  wrapper->epoch(posim, 56.0, 10.0, 1.0, 9, 2.0);
  EXPECT_EQ(posim.get_position()->epoch, 2u);
}

TEST(Posim, WrapperLookupByTechnology) {
  bl::Posim posim;
  posim.add_wrapper(std::make_shared<FakeGpsWrapper>());
  EXPECT_NE(posim.wrapper("GPS"), nullptr);
  EXPECT_EQ(posim.wrapper("WiFi"), nullptr);
  EXPECT_EQ(posim.wrappers().size(), 1u);
}

TEST(Posim, InfoKeysEnumerable) {
  bl::Posim posim;
  auto wrapper = std::make_shared<FakeGpsWrapper>();
  posim.add_wrapper(wrapper);
  wrapper->epoch(posim, 56.0, 10.0, 1.0, 9, 1.0);
  const auto keys = wrapper->info_keys();
  EXPECT_EQ(keys.size(), 2u);
}

// --- mini MiddleWhere ----------------------------------------------------------

namespace {

const geo::GeoPoint kCampus{56.1697, 10.1994, 0.0};

geo::GeoPoint offset_m(double east, double north) {
  // Small-offset approximation adequate for test distances.
  const double lat = kCampus.latitude_deg + north / 111320.0;
  const double lon = kCampus.longitude_deg +
                     east / (111320.0 * std::cos(56.1697 * 3.14159265 / 180.0));
  return {lat, lon, 0.0};
}

bl::MiddleWhere make_world() {
  bl::MiddleWhere mw;
  mw.add_region({"campus", "", kCampus, 500.0});
  mw.add_region({"building-A", "campus", offset_m(0, 0), 60.0});
  mw.add_region({"lab", "building-A", offset_m(20, 0), 15.0});
  return mw;
}

}  // namespace

TEST(MiddleWhere, RegionsAndHierarchy) {
  bl::MiddleWhere mw = make_world();
  EXPECT_EQ(mw.region_names().size(), 3u);
  EXPECT_NE(mw.region("lab"), nullptr);
  EXPECT_EQ(mw.region("lab")->parent, "building-A");
  EXPECT_THROW(mw.add_region({"x", "nonexistent", kCampus, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(mw.add_region({"lab", "", kCampus, 1.0}),
               std::invalid_argument);
}

TEST(MiddleWhere, LocateAndContainment) {
  bl::MiddleWhere mw = make_world();
  mw.update("alice", {offset_m(20, 2), 0.9, 5.0, sim::SimTime::zero()});
  ASSERT_TRUE(mw.locate("alice").has_value());
  EXPECT_FALSE(mw.locate("bob").has_value());
  EXPECT_TRUE(mw.contained_in("alice", "lab"));
  EXPECT_TRUE(mw.contained_in("alice", "campus"));
  EXPECT_FALSE(mw.contained_in("alice", "nonexistent"));
  const auto regions = mw.regions_of("alice");
  EXPECT_EQ(regions.size(), 3u);  // lab + building-A + campus.
}

TEST(MiddleWhere, ContainmentEventsAreEdgeTriggered) {
  bl::MiddleWhere mw = make_world();
  std::vector<std::string> events;
  mw.subscribe([&](const bl::MwEvent& e) {
    events.push_back((e.entered ? "+" : "-") + e.region);
  });
  mw.update("alice", {offset_m(20, 0), 1.0, 5.0, {}});   // Enters all 3.
  mw.update("alice", {offset_m(21, 0), 1.0, 5.0, {}});   // No change.
  mw.update("alice", {offset_m(100, 0), 1.0, 5.0, {}});  // Leaves A + lab.
  int enters = 0, leaves = 0;
  for (const std::string& e : events) {
    (e[0] == '+' ? enters : leaves)++;
  }
  EXPECT_EQ(enters, 3);
  EXPECT_EQ(leaves, 2);
}

TEST(MiddleWhere, ColocationAndNearest) {
  bl::MiddleWhere mw = make_world();
  mw.update("alice", {offset_m(0, 0), 1.0, 5.0, {}});
  mw.update("bob", {offset_m(8, 0), 1.0, 5.0, {}});
  mw.update("carol", {offset_m(300, 0), 1.0, 5.0, {}});
  EXPECT_TRUE(mw.colocated("alice", "bob", 10.0));
  EXPECT_FALSE(mw.colocated("alice", "carol", 10.0));
  EXPECT_FALSE(mw.colocated("alice", "nobody", 10.0));
  const auto near = mw.nearest("alice", 2);
  ASSERT_EQ(near.size(), 2u);
  EXPECT_EQ(near[0].first, "bob");
  EXPECT_NEAR(near[0].second, 8.0, 0.5);
  EXPECT_EQ(near[1].first, "carol");
}

TEST(MiddleWhere, FixedSchemaHidesTechnologyDetail) {
  // The paper's point: the world model's record is the only interface —
  // satellite counts or HDOP simply have nowhere to live without changing
  // the middleware's schema. The record exposes exactly these fields:
  bl::MiddleWhere mw = make_world();
  mw.update("alice", {offset_m(0, 0), 0.7, 12.0, sim::SimTime::zero()});
  const auto info = *mw.locate("alice");
  EXPECT_DOUBLE_EQ(info.confidence, 0.7);
  EXPECT_DOUBLE_EQ(info.resolution_m, 12.0);
  // (Nothing else is accessible — enforced by the type system.)
  static_assert(sizeof(bl::MwPositionInfo) ==
                sizeof(geo::GeoPoint) + 2 * sizeof(double) +
                    sizeof(sim::SimTime));
}
