// Tests for the observability subsystem: the metrics registry and its
// exporters, graph instrumentation (counters, veto/rejection accounting,
// on_input latency histograms), flow tracing whose span ancestry must
// mirror sample provenance, the Trace Channel Feature at the PCL and the
// provider-level counters at the Positioning Layer.

#include "perpos/core/channel.hpp"
#include "perpos/core/components.hpp"
#include "perpos/core/feature.hpp"
#include "perpos/core/graph.hpp"
#include "perpos/core/positioning.hpp"
#include "perpos/core/trace_feature.hpp"
#include "perpos/geo/coordinates.hpp"
#include "perpos/obs/flight_recorder.hpp"
#include "perpos/obs/introspection.hpp"
#include "perpos/obs/metrics.hpp"
#include "perpos/obs/trace.hpp"
#include "perpos/sim/clock.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace core = perpos::core;
namespace obs = perpos::obs;
namespace sim = perpos::sim;
using core::Payload;
using core::Sample;

namespace {

struct Value {
  int n = 0;
};
struct Other {
  int n = 0;
};

std::shared_ptr<core::SourceComponent> make_source() {
  return std::make_shared<core::SourceComponent>(
      "Src", std::vector<core::DataSpec>{core::provide<Value>()});
}

std::shared_ptr<core::LambdaComponent> make_relay() {
  return std::make_shared<core::LambdaComponent>(
      "Relay", std::vector<core::InputRequirement>{core::require<Value>()},
      std::vector<core::DataSpec>{core::provide<Value>()},
      [](const Sample& s, const core::ComponentContext& ctx) {
        ctx.emit(s.payload);
      });
}

std::string id_str(core::ComponentId id) { return std::to_string(id); }

}  // namespace

// --- Registry / exporter basics ---------------------------------------------

TEST(MetricsRegistry, CounterFindOrCreateReturnsStableHandle) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.counter("x_total", {{"k", "v"}});
  obs::Counter* b = registry.counter("x_total", {{"k", "v"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.counter("x_total", {{"k", "w"}}));
  EXPECT_NE(a, registry.counter("y_total", {{"k", "v"}}));
  a->inc();
  a->inc(4);
  EXPECT_EQ(b->value(), 5u);
}

TEST(MetricsRegistry, LabelOrderDoesNotMatter) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.counter("x_total", {{"a", "1"}, {"b", "2"}});
  obs::Counter* b = registry.counter("x_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(MetricsRegistry, SnapshotFindByNameAndLabel) {
  obs::MetricsRegistry registry;
  registry.counter("hits_total", {{"component", "3"}})->inc(7);
  registry.gauge("level")->set(2.5);
  const obs::MetricsSnapshot snap = registry.snapshot();
  const auto* c = snap.find_counter("hits_total", "component", "3");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 7u);
  EXPECT_EQ(snap.find_counter("hits_total", "component", "4"), nullptr);
  const auto* g = snap.find_gauge("level");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value, 2.5);
}

TEST(MetricsRegistry, HistogramBucketsCountAndQuantile) {
  obs::MetricsRegistry registry;
  obs::Histogram* h =
      registry.histogram("lat_us", {}, {1.0, 10.0, 100.0});
  for (int i = 1; i <= 100; ++i) h->observe(static_cast<double>(i));
  EXPECT_EQ(h->count(), 100u);
  EXPECT_DOUBLE_EQ(h->sum(), 5050.0);

  const obs::MetricsSnapshot snap = registry.snapshot();
  const auto* s = snap.find_histogram("lat_us");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->buckets.size(), 4u);  // 3 bounds + implicit +Inf.
  EXPECT_EQ(s->buckets[0], 1u);      // <= 1
  EXPECT_EQ(s->buckets[1], 9u);      // (1, 10]
  EXPECT_EQ(s->buckets[2], 90u);     // (10, 100]
  EXPECT_EQ(s->buckets[3], 0u);      // > 100
  EXPECT_EQ(s->count, 100u);
  EXPECT_DOUBLE_EQ(s->mean(), 50.5);
  // Median lies in the (10, 100] bucket; interpolation keeps it inside.
  const double p50 = s->quantile(0.5);
  EXPECT_GT(p50, 10.0);
  EXPECT_LE(p50, 100.0);
  EXPECT_GE(s->quantile(1.0), s->quantile(0.0));
}

TEST(MetricsRegistry, PrometheusTextFormat) {
  obs::MetricsRegistry registry;
  registry.counter("perpos_events_total", {{"component", "1"}})->inc(3);
  registry.histogram("perpos_lat_us", {}, {1.0, 2.0})->observe(1.5);
  const std::string text = obs::to_prometheus_text(registry.snapshot());
  EXPECT_NE(text.find("# TYPE perpos_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("perpos_events_total{component=\"1\"} 3"),
            std::string::npos);
  // Histogram expands to cumulative _bucket series plus _sum/_count.
  EXPECT_NE(text.find("perpos_lat_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("perpos_lat_us_count 1"), std::string::npos);
}

TEST(MetricsRegistry, JsonExportIsWellFormedAndComplete) {
  obs::MetricsRegistry registry;
  registry.counter("c_total")->inc();
  registry.gauge("g")->set(1.0);
  registry.histogram("h", {}, {1.0})->observe(0.5);
  const std::string json = obs::to_json(registry.snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"c_total\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity check.
  int braces = 0, brackets = 0;
  for (char ch : json) {
    braces += (ch == '{') - (ch == '}');
    brackets += (ch == '[') - (ch == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(MetricsRegistry, EscapeJsonHandlesSpecials) {
  EXPECT_EQ(obs::escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

// --- Graph instrumentation ---------------------------------------------------

TEST(GraphObservability, DisabledByDefaultAndMetricsEmpty) {
  core::ProcessingGraph graph;
  EXPECT_FALSE(graph.observability_enabled());
  EXPECT_EQ(graph.metrics_registry(), nullptr);
  EXPECT_EQ(graph.tracer(), nullptr);
  auto source = make_source();
  graph.connect(graph.add(source),
                graph.add(std::make_shared<core::ApplicationSink>()));
  source->push(Value{1});
  const obs::MetricsSnapshot snap = graph.metrics();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(GraphObservability, EmittedAndDeliveredCounters) {
  core::ProcessingGraph graph;
  graph.enable_observability();
  auto source = make_source();
  auto relay = make_relay();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = graph.add(source);
  const auto b = graph.add(relay);
  const auto z = graph.add(sink);
  graph.connect(a, b);
  graph.connect(b, z);

  for (int i = 0; i < 5; ++i) source->push(Value{i});

  const obs::MetricsSnapshot snap = graph.metrics();
  const auto* src_emitted = snap.find_counter("perpos_component_emitted_total",
                                              "component", id_str(a));
  const auto* relay_delivered = snap.find_counter(
      "perpos_component_delivered_total", "component", id_str(b));
  const auto* sink_delivered = snap.find_counter(
      "perpos_component_delivered_total", "component", id_str(z));
  ASSERT_NE(src_emitted, nullptr);
  ASSERT_NE(relay_delivered, nullptr);
  ASSERT_NE(sink_delivered, nullptr);
  EXPECT_EQ(src_emitted->value, 5u);
  EXPECT_EQ(relay_delivered->value, 5u);
  EXPECT_EQ(sink_delivered->value, 5u);
  // Counters agree with the graph's own bookkeeping.
  EXPECT_EQ(src_emitted->value, graph.info(a).emitted);

  const auto* total = snap.find_counter("perpos_graph_deliveries_total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->value, 10u);  // relay + sink.
}

TEST(GraphObservability, OnInputLatencyHistogramPopulated) {
  core::ProcessingGraph graph;
  graph.enable_observability();  // metrics + timing on by default.
  auto source = make_source();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = graph.add(source);
  const auto z = graph.add(sink);
  graph.connect(a, z);
  for (int i = 0; i < 8; ++i) source->push(Value{i});

  const obs::MetricsSnapshot snap = graph.metrics();
  const auto* h = snap.find_histogram("perpos_component_on_input_us",
                                      "component", id_str(z));
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 8u);
  EXPECT_GE(h->sum, 0.0);
}

TEST(GraphObservability, TimingOffSkipsHistograms) {
  core::ProcessingGraph graph;
  obs::ObservabilityConfig cfg;
  cfg.timing = false;
  graph.enable_observability(cfg);
  auto source = make_source();
  const auto a = graph.add(source);
  const auto z = graph.add(std::make_shared<core::ApplicationSink>());
  graph.connect(a, z);
  source->push(Value{1});

  const obs::MetricsSnapshot snap = graph.metrics();
  EXPECT_EQ(snap.find_histogram("perpos_component_on_input_us", "component",
                                id_str(z)),
            nullptr);
  // Counters still flow.
  EXPECT_NE(snap.find_counter("perpos_component_delivered_total", "component",
                              id_str(z)),
            nullptr);
}

TEST(GraphObservability, RejectionCounter) {
  core::ProcessingGraph graph;
  graph.enable_observability();
  // Source offers Value and Other; the sink only accepts Value, so every
  // Other emission is rejected at delivery time.
  auto source = std::make_shared<core::SourceComponent>(
      "Src", std::vector<core::DataSpec>{core::provide<Value>(),
                                         core::provide<Other>()});
  auto sink = std::make_shared<core::ApplicationSink>(
      "App", std::vector<core::InputRequirement>{core::require<Value>()});
  const auto a = graph.add(source);
  const auto z = graph.add(sink);
  graph.connect(a, z);

  source->push(Value{1});
  source->push(Other{2});
  source->push(Other{3});

  const obs::MetricsSnapshot snap = graph.metrics();
  const auto* rejected = snap.find_counter("perpos_component_rejected_total",
                                           "component", id_str(z));
  ASSERT_NE(rejected, nullptr);
  EXPECT_EQ(rejected->value, 2u);
  const auto* total = snap.find_counter("perpos_graph_rejections_total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->value, 2u);
}

namespace {

/// Vetoes every second outgoing sample.
class DropEverySecond final : public core::ComponentFeature {
 public:
  std::string_view name() const override { return "DropEverySecond"; }
  bool produce(Sample&) override { return (++n_ % 2) != 0; }

 private:
  int n_ = 0;
};

}  // namespace

TEST(GraphObservability, ProduceVetoCounterAndFeatureTiming) {
  core::ProcessingGraph graph;
  graph.enable_observability();
  auto source = make_source();
  const auto a = graph.add(source);
  graph.connect(a, graph.add(std::make_shared<core::ApplicationSink>()));
  graph.attach_feature(a, std::make_shared<DropEverySecond>());

  for (int i = 0; i < 6; ++i) source->push(Value{i});

  const obs::MetricsSnapshot snap = graph.metrics();
  const auto* vetoed = snap.find_counter(
      "perpos_component_produce_vetoed_total", "component", id_str(a));
  ASSERT_NE(vetoed, nullptr);
  EXPECT_EQ(vetoed->value, 3u);
  const auto* emitted = snap.find_counter("perpos_component_emitted_total",
                                          "component", id_str(a));
  ASSERT_NE(emitted, nullptr);
  EXPECT_EQ(emitted->value, 3u);
  // The produce hook itself was timed (6 invocations).
  const auto* hook = snap.find_histogram("perpos_feature_produce_us",
                                         "feature", "DropEverySecond");
  ASSERT_NE(hook, nullptr);
  EXPECT_EQ(hook->count, 6u);
}

TEST(GraphObservability, MutationCounterAndComponentsGauge) {
  core::ProcessingGraph graph;
  graph.enable_observability();
  auto source = make_source();
  const auto a = graph.add(source);
  const auto z = graph.add(std::make_shared<core::ApplicationSink>());
  graph.connect(a, z);

  const obs::MetricsSnapshot snap = graph.metrics();
  const auto* mutations = snap.find_counter("perpos_graph_mutations_total");
  ASSERT_NE(mutations, nullptr);
  EXPECT_GE(mutations->value, 3u);  // two adds + one connect.
  const auto* components = snap.find_gauge("perpos_graph_components");
  ASSERT_NE(components, nullptr);
  EXPECT_DOUBLE_EQ(components->value, 2.0);
}

TEST(GraphObservability, DisableClearsRegistryAccessors) {
  core::ProcessingGraph graph;
  graph.enable_observability();
  auto source = make_source();
  const auto a = graph.add(source);
  graph.connect(a, graph.add(std::make_shared<core::ApplicationSink>()));
  source->push(Value{1});
  EXPECT_FALSE(graph.metrics().counters.empty());

  graph.disable_observability();
  EXPECT_FALSE(graph.observability_enabled());
  EXPECT_EQ(graph.metrics_registry(), nullptr);
  EXPECT_TRUE(graph.metrics().counters.empty());

  // Re-enabling starts a fresh registry and keeps counting.
  graph.enable_observability();
  source->push(Value{2});
  const auto snap = graph.metrics();  // Keep alive: find_counter borrows.
  const auto* emitted = snap.find_counter(
      "perpos_component_emitted_total", "component", id_str(a));
  ASSERT_NE(emitted, nullptr);
  EXPECT_EQ(emitted->value, 1u);
}

// --- Flow tracing ------------------------------------------------------------

TEST(FlowTracing, SpanParentsMirrorProvenanceChain) {
  core::ProcessingGraph graph;
  obs::ObservabilityConfig cfg;
  cfg.tracing = true;
  graph.enable_observability(cfg);

  auto source = make_source();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = graph.add(source);
  core::ComponentId prev = a;
  for (int i = 0; i < 3; ++i) {
    const auto mid = graph.add(make_relay());
    graph.connect(prev, mid);
    prev = mid;
  }
  graph.connect(prev, graph.add(sink));

  source->push(Value{7});

  ASSERT_NE(graph.tracer(), nullptr);
  ASSERT_TRUE(sink->last().has_value());

  // Walk the provenance chain of the delivered sample: each hop was
  // re-emitted by one relay, so following `inputs` front-first yields the
  // producers sink <- relay3 <- relay2 <- relay1 <- source.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> provenance;
  const Sample* node = &*sink->last();
  while (node != nullptr) {
    provenance.emplace_back(node->producer, node->sequence);
    node = (node->inputs != nullptr && !node->inputs->empty())
               ? &node->inputs->front()
               : nullptr;
  }
  ASSERT_EQ(provenance.size(), 4u);  // source + 3 relays.

  // Now walk the trace: the sink's on_input span processes the sample
  // emitted by the last relay; its parent span must carry the previous
  // sample in the provenance chain, and so on down to the source's root
  // emit span (parent 0).
  const obs::TraceRecorder& tracer = *graph.tracer();
  const obs::TraceSpan* span = nullptr;
  for (const obs::TraceSpan& s : tracer.spans()) {
    if (s.name == "Application.on_input") span = &s;
  }
  ASSERT_NE(span, nullptr);
  for (std::size_t i = 0; i < provenance.size(); ++i) {
    EXPECT_EQ(span->sample_producer, provenance[i].first);
    EXPECT_EQ(span->sample_sequence, provenance[i].second);
    span = tracer.find(span->parent);
    ASSERT_NE(span, nullptr);
  }
  // The final hop is the source's instantaneous emit span: it carries the
  // same sample as the first delivery and roots the whole trace.
  EXPECT_EQ(span->name, "Src.emit");
  EXPECT_EQ(span->sample_producer, provenance.back().first);
  EXPECT_EQ(span->sample_sequence, provenance.back().second);
  EXPECT_EQ(span->parent, 0u);
}

TEST(FlowTracing, ChromeTraceJsonContainsEvents) {
  core::ProcessingGraph graph;
  obs::ObservabilityConfig cfg;
  cfg.tracing = true;
  graph.enable_observability(cfg);
  auto source = make_source();
  const auto a = graph.add(source);
  graph.connect(a, graph.add(std::make_shared<core::ApplicationSink>()));
  source->push(Value{1});

  const std::string json = graph.tracer()->to_chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("Application.on_input"), std::string::npos);
}

TEST(FlowTracing, RingBufferBoundsRetainedSpans) {
  core::ProcessingGraph graph;
  obs::ObservabilityConfig cfg;
  cfg.tracing = true;
  cfg.trace_capacity = 16;
  graph.enable_observability(cfg);
  auto source = make_source();
  const auto a = graph.add(source);
  graph.connect(a, graph.add(std::make_shared<core::ApplicationSink>()));
  for (int i = 0; i < 100; ++i) source->push(Value{i});
  EXPECT_LE(graph.tracer()->spans().size(), 16u);
}

// --- PCL: Trace Channel Feature ---------------------------------------------

TEST(TraceChannelFeature, ReportsChannelTelemetry) {
  core::ProcessingGraph graph;
  graph.enable_observability();
  auto source = make_source();
  auto relay = make_relay();
  auto sink = std::make_shared<core::ApplicationSink>();
  const auto a = graph.add(source);
  const auto b = graph.add(relay);
  const auto z = graph.add(sink);
  graph.connect(a, b);
  graph.connect(b, z);

  core::ChannelManager channels(graph);
  ASSERT_FALSE(channels.channels().empty());
  auto feature = std::make_shared<core::TraceChannelFeature>("gps");
  channels.attach_feature(*channels.channels().front(), feature);

  for (int i = 0; i < 3; ++i) source->push(Value{i});

  EXPECT_EQ(feature->deliveries(), 3u);
  // The delivered tree has the sink sample on top of relay and source.
  EXPECT_GE(feature->last_tree_depth(), 2u);
  EXPECT_GE(feature->last_tree_size(), 2u);
  EXPECT_NE(feature->last_journey().find("Src"), std::string::npos);

  // The feature also publishes into the graph's registry.
  const obs::MetricsSnapshot snap = graph.metrics();
  const auto* deliveries = snap.find_counter("perpos_channel_deliveries_total",
                                             "channel", "gps");
  ASSERT_NE(deliveries, nullptr);
  EXPECT_EQ(deliveries->value, 3u);
  EXPECT_NE(snap.find_histogram("perpos_channel_tree_depth", "channel", "gps"),
            nullptr);
}

TEST(TraceChannelFeature, WorksWithoutRegistry) {
  core::ProcessingGraph graph;  // Observability off.
  auto source = make_source();
  const auto a = graph.add(source);
  graph.connect(a, graph.add(std::make_shared<core::ApplicationSink>()));
  core::ChannelManager channels(graph);
  auto feature = std::make_shared<core::TraceChannelFeature>();
  channels.attach_feature(*channels.channels().front(), feature);
  source->push(Value{1});
  EXPECT_EQ(feature->deliveries(), 1u);  // Local telemetry still works.
}

// --- PL: provider-level counters ---------------------------------------------

namespace {

core::PositionFix fix_at_t(double t_s) {
  core::PositionFix fix;
  fix.position = perpos::geo::GeoPoint{56.0, 10.0, 0.0};
  fix.horizontal_accuracy_m = 5.0;
  fix.timestamp = sim::SimTime::from_seconds(t_s);
  fix.technology = "GPS";
  return fix;
}

}  // namespace

TEST(ProviderObservability, FixCountRateAndStaleness) {
  core::ProcessingGraph graph;
  graph.enable_observability();
  core::ChannelManager channels(graph);
  core::PositioningService service(graph, channels);
  auto source = std::make_shared<core::SourceComponent>(
      "GPS",
      std::vector<core::DataSpec>{core::provide<core::PositionFix>()});
  graph.add(source);
  core::LocationProvider& provider =
      service.request_provider(core::Criteria{});

  EXPECT_EQ(provider.fixes(), 0u);
  EXPECT_TRUE(std::isinf(provider.staleness_s(sim::SimTime::from_seconds(5))));

  for (int i = 0; i < 5; ++i) source->push(fix_at_t(i));

  EXPECT_EQ(provider.fixes(), 5u);
  // Five fixes across 4 seconds of fix timestamps: 1 Hz.
  EXPECT_NEAR(provider.fix_rate_hz(), 1.0, 1e-9);
  EXPECT_NEAR(provider.staleness_s(sim::SimTime::from_seconds(6.5)), 2.5,
              1e-9);

  const obs::MetricsSnapshot live = graph.metrics();
  const auto* fixes = live.find_counter("perpos_provider_fixes_total");
  ASSERT_NE(fixes, nullptr);
  EXPECT_EQ(fixes->value, 5u);

  service.publish_metrics();
  const obs::MetricsSnapshot snap = graph.metrics();
  const auto* providers = snap.find_gauge("perpos_service_providers");
  ASSERT_NE(providers, nullptr);
  EXPECT_DOUBLE_EQ(providers->value, 1.0);
  const auto* rate = snap.find_gauge("perpos_provider_fix_rate_hz",
                                     "provider",
                                     provider.metric_label());
  ASSERT_NE(rate, nullptr);
  EXPECT_NEAR(rate->value, 1.0, 1e-9);
}

// --- Flight recorder (the black box) -----------------------------------------

TEST(FlightRecorder, MergedEventsAreTimeOrderedAcrossLanes) {
  obs::FlightRecorder recorder(16);
  const auto a = recorder.add_lane("a");
  const auto b = recorder.add_lane("b");
  const auto mk = [](std::uint64_t t, std::uint64_t tag) {
    obs::FlightEvent e;
    e.type = obs::FlightEventType::kMark;
    e.t_ns = t;
    e.a = tag;
    return e;
  };
  // Interleaved wall-clock order, recorded out of order per lane.
  recorder.record(a, mk(30, 1));
  recorder.record(b, mk(10, 2));
  recorder.record(a, mk(50, 3));
  recorder.record(b, mk(40, 4));
  recorder.record(b, mk(30, 5));  // Same instant as lane a's first event.

  const auto merged = recorder.merged_events();
  ASSERT_EQ(merged.size(), 5u);
  std::vector<std::uint64_t> tags;
  for (const auto& e : merged) tags.push_back(e.a);
  // Sorted by t_ns; the t=30 tie is broken by lane id (a before b).
  EXPECT_EQ(tags, (std::vector<std::uint64_t>{2, 1, 5, 4, 3}));
}

TEST(FlightRecorder, RingWraparoundKeepsNewestAndCountsDropped) {
  obs::FlightRecorder recorder(4);
  const auto lane = recorder.add_lane("ring");
  for (std::uint64_t i = 0; i < 10; ++i) {
    obs::FlightEvent e;
    e.type = obs::FlightEventType::kMark;
    e.t_ns = i + 1;
    e.a = i;
    recorder.record(lane, e);
  }
  EXPECT_EQ(recorder.recorded(lane), 10u);
  EXPECT_EQ(recorder.dropped(lane), 6u);
  const auto merged = recorder.merged_events();
  ASSERT_EQ(merged.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(merged[i].a, 6u + i);
}

TEST(FlightRecorder, TriggerRecordsMarkAndInvokesHandler) {
  obs::FlightRecorder recorder(16);
  recorder.add_lane("main");
  std::vector<std::string> reasons;
  recorder.set_dump_handler(
      [&](const std::string& reason, const obs::FlightRecorder& r) {
        reasons.push_back(reason);
        EXPECT_EQ(&r, &recorder);
      });
  recorder.trigger("PPS004 fired");
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], "PPS004 fired");
  EXPECT_EQ(recorder.triggers(), 1u);

  const auto merged = recorder.merged_events();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].type, obs::FlightEventType::kMark);
  EXPECT_STREQ(merged[0].detail, "PPS004 fired");
}

TEST(FlightRecorder, HandlerExceptionsAreSwallowed) {
  obs::FlightRecorder recorder(16);
  recorder.add_lane("main");
  recorder.set_dump_handler(
      [](const std::string&, const obs::FlightRecorder&) {
        throw std::runtime_error("handler failed");
      });
  recorder.trigger("must not escape");  // noexcept: terminate would abort.
  EXPECT_EQ(recorder.triggers(), 1u);
}

TEST(FlightRecorder, UnknownLaneIsSilentlyDropped) {
  obs::FlightRecorder recorder(16);
  obs::FlightEvent e;
  recorder.record(99, e);  // No lanes registered at all.
  EXPECT_TRUE(recorder.merged_events().empty());
}

TEST(FlightRecorder, DumpJsonAndChromeTraceSerializeEvents) {
  obs::FlightRecorder recorder(16);
  const auto lane = recorder.add_lane("graph-0");
  obs::FlightEvent e;
  e.type = obs::FlightEventType::kEmit;
  e.component = 3;
  e.a = 7;
  e.set_detail("hello \"quoted\"");
  recorder.record(lane, e);

  const std::string json = recorder.dump_json("unit test");
  EXPECT_NE(json.find("\"reason\":\"unit test\""), std::string::npos);
  EXPECT_NE(json.find("\"emit\""), std::string::npos);
  EXPECT_NE(json.find("graph-0"), std::string::npos);

  const std::string trace = recorder.dump_chrome_trace();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("emit"), std::string::npos);
}

// --- Graph wiring of the flight recorder -------------------------------------

TEST(GraphFlightRecorder, RecordingConfigCapturesEmitDeliverMutation) {
  core::ProcessingGraph graph;
  obs::ObservabilityConfig cfg;
  cfg.recording = true;
  cfg.recorder_capacity = 64;
  // Enable BEFORE building so the structural mutations are captured too.
  graph.enable_observability(cfg);
  ASSERT_NE(graph.flight_recorder(), nullptr);

  const auto src = graph.add(make_source());
  const auto sink = graph.add(std::make_shared<core::ApplicationSink>());
  graph.connect(src, sink);
  graph.component_as<core::SourceComponent>(src)->push(Value{1});

  int emits = 0;
  int delivers = 0;
  int mutations = 0;
  for (const auto& e : graph.flight_recorder()->merged_events()) {
    switch (e.type) {
      case obs::FlightEventType::kEmit:
        ++emits;
        EXPECT_EQ(e.component, src);
        break;
      case obs::FlightEventType::kDeliver:
        ++delivers;
        EXPECT_EQ(e.component, sink);
        EXPECT_EQ(e.a, src);  // Producing component.
        break;
      case obs::FlightEventType::kMutation:
        ++mutations;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(emits, 1);
  EXPECT_EQ(delivers, 1);
  EXPECT_GE(mutations, 3);  // Two adds + one connect, at least.

  // Disabling tears the owned recorder down.
  graph.disable_observability();
  EXPECT_EQ(graph.flight_recorder(), nullptr);
}

TEST(GraphFlightRecorder, ComponentThrowRecordsTaskFailedWithDetail) {
  core::ProcessingGraph graph;
  obs::ObservabilityConfig cfg;
  cfg.recording = true;
  graph.enable_observability(cfg);

  const auto src = graph.add(make_source());
  auto bomb = std::make_shared<core::LambdaComponent>(
      "Bomb", std::vector<core::InputRequirement>{core::require<Value>()},
      std::vector<core::DataSpec>{},
      [](const Sample&, const core::ComponentContext&) {
        throw std::runtime_error("sensor exploded");
      });
  const auto sink = graph.add(bomb);
  graph.connect(src, sink);
  EXPECT_THROW(graph.component_as<core::SourceComponent>(src)->push(Value{1}),
               std::runtime_error);

  bool saw_failure = false;
  for (const auto& e : graph.flight_recorder()->merged_events()) {
    if (e.type != obs::FlightEventType::kTaskFailed) continue;
    saw_failure = true;
    EXPECT_EQ(e.component, sink);
    EXPECT_NE(std::string(e.detail).find("sensor exploded"),
              std::string::npos);
  }
  EXPECT_TRUE(saw_failure);
}

TEST(GraphFlightRecorder, ExternalRecorderTakesPrecedenceAndDetaches) {
  core::ProcessingGraph graph;
  const auto src = graph.add(make_source());
  const auto sink = graph.add(std::make_shared<core::ApplicationSink>());
  graph.connect(src, sink);

  obs::FlightRecorder shared(64);
  const auto lane = shared.add_lane("deployment-graph");
  graph.set_flight_recorder(&shared, lane, /*graph_tag=*/7);
  EXPECT_EQ(graph.flight_recorder(), &shared);

  graph.component_as<core::SourceComponent>(src)->push(Value{1});
  bool saw_emit = false;
  for (const auto& e : shared.merged_events()) {
    if (e.type != obs::FlightEventType::kEmit) continue;
    saw_emit = true;
    EXPECT_EQ(e.lane, lane);
    EXPECT_EQ(e.graph, 7u);
  }
  EXPECT_TRUE(saw_emit);

  graph.set_flight_recorder(nullptr, 0);
  EXPECT_EQ(graph.flight_recorder(), nullptr);
  const auto before = shared.recorded(lane);
  graph.component_as<core::SourceComponent>(src)->push(Value{2});
  EXPECT_EQ(shared.recorded(lane), before);  // Fully detached.
}

// --- Histogram exemplars ------------------------------------------------------

TEST(Histogram, ExemplarStampsTheObservedBucket) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.histogram("lat_us", {}, {1.0, 10.0, 100.0});
  h->observe_with_exemplar(5.0, 0xabcd);   // Bucket 1: (1, 10].
  h->observe_with_exemplar(500.0, 0xef01); // Overflow bucket.
  h->observe(0.5);                         // No exemplar for bucket 0.
  EXPECT_EQ(h->exemplar(0), 0u);
  EXPECT_EQ(h->exemplar(1), 0xabcdu);
  EXPECT_EQ(h->exemplar(3), 0xef01u);

  const auto snap = registry.snapshot();
  const auto* s = snap.find_histogram("lat_us");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->exemplars.size(), 4u);
  EXPECT_EQ(s->exemplars[1], 0xabcdu);
  EXPECT_NE(obs::to_json(snap).find("\"exemplars\""), std::string::npos);
}

// --- End-to-end latency -------------------------------------------------------

TEST(E2ELatency, SinkObservesIngestToSinkLatencyAndDeadlineMisses) {
  core::ProcessingGraph graph;
  const auto src = graph.add(make_source());
  const auto relay = graph.add(std::make_shared<core::LambdaComponent>(
      "SlowRelay", std::vector<core::InputRequirement>{core::require<Value>()},
      std::vector<core::DataSpec>{core::provide<Value>()},
      [](const Sample& s, const core::ComponentContext& ctx) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ctx.emit(s.payload);
      }));
  const auto sink = graph.add(std::make_shared<core::ApplicationSink>());
  graph.connect(src, relay);
  graph.connect(relay, sink);

  obs::ObservabilityConfig cfg;
  cfg.latency = true;
  cfg.tracing = true;        // Latency exemplars link to delivery spans.
  cfg.latency_slo_us = 10.0; // The 2 ms relay guarantees a miss.
  graph.enable_observability(cfg);

  graph.component_as<core::SourceComponent>(src)->push(Value{1});
  graph.component_as<core::SourceComponent>(src)->push(Value{2});

  const auto snap = graph.metrics();
  const auto* h =
      snap.find_histogram("perpos_e2e_latency_us", "component", id_str(sink));
  ASSERT_NE(h, nullptr);
  std::uint64_t count = 0;
  for (const auto b : h->buckets) count += b;
  EXPECT_EQ(count, 2u);
  EXPECT_GE(h->sum, 2 * 2000.0);  // Two traversals, >= 2 ms each.
  // The bucket the observations landed in carries a span-id exemplar.
  bool any_exemplar = false;
  for (const auto e : h->exemplars) any_exemplar |= e != 0;
  EXPECT_TRUE(any_exemplar);

  const auto* miss = snap.find_counter("perpos_e2e_deadline_miss_total",
                                       "component", id_str(sink));
  ASSERT_NE(miss, nullptr);
  EXPECT_EQ(miss->value, 2u);
  // Only the sink observes e2e latency; the relay's histogram handle
  // exists (handles are created per component) but never fires.
  const auto* relay_h =
      snap.find_histogram("perpos_e2e_latency_us", "component", id_str(relay));
  ASSERT_NE(relay_h, nullptr);
  EXPECT_EQ(relay_h->count, 0u);
}

TEST(E2ELatency, DisabledByDefault) {
  core::ProcessingGraph graph;
  const auto src = graph.add(make_source());
  graph.connect(src, graph.add(std::make_shared<core::ApplicationSink>()));
  graph.enable_observability();  // Default config: no latency knob.
  graph.component_as<core::SourceComponent>(src)->push(Value{1});
  EXPECT_EQ(graph.metrics().find_histogram("perpos_e2e_latency_us"), nullptr);
}

// --- Trace ring eviction accounting ------------------------------------------

TEST(FlowTracing, RingEvictionIsCountedAsDroppedSpans) {
  core::ProcessingGraph graph;
  const auto src = graph.add(make_source());
  graph.connect(src, graph.add(std::make_shared<core::ApplicationSink>()));

  obs::ObservabilityConfig cfg;
  cfg.tracing = true;
  cfg.trace_capacity = 4;
  graph.enable_observability(cfg);

  auto* source = graph.component_as<core::SourceComponent>(src);
  for (int i = 0; i < 20; ++i) source->push(Value{i});

  ASSERT_NE(graph.tracer(), nullptr);
  const std::uint64_t dropped = graph.tracer()->dropped();
  EXPECT_GT(dropped, 0u);
  const auto* counter =
      graph.metrics().find_counter("perpos_obs_spans_dropped_total");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, dropped);
  EXPECT_NE(graph.tracer()->to_chrome_trace_json().find("\"droppedSpans\":"),
            std::string::npos);
}

// --- Introspection ------------------------------------------------------------

TEST(Introspection, GraphIntrospectionExtractsDeliveriesAndSelfTime) {
  core::ProcessingGraph graph;
  const auto src = graph.add(make_source());
  const auto relay = graph.add(make_relay());
  const auto sink = graph.add(std::make_shared<core::ApplicationSink>());
  graph.connect(src, relay);
  graph.connect(relay, sink);
  graph.enable_observability();  // metrics + timing on by default

  auto* source = graph.component_as<core::SourceComponent>(src);
  for (int i = 0; i < 10; ++i) source->push(Value{i});

  const auto g = obs::graph_introspection("wifi-floor2", graph.metrics());
  EXPECT_EQ(g.name, "wifi-floor2");
  EXPECT_EQ(g.deliveries, 20u);  // 10 into the relay + 10 into the sink.
  EXPECT_EQ(g.components, 3u);
  ASSERT_FALSE(g.top_self_time.empty());
  std::uint64_t on_input_calls = 0;
  for (const auto& c : g.top_self_time) on_input_calls += c.count;
  EXPECT_EQ(on_input_calls, 20u);
  // Hottest-first ordering.
  for (std::size_t i = 1; i < g.top_self_time.size(); ++i) {
    EXPECT_GE(g.top_self_time[i - 1].total_us, g.top_self_time[i].total_us);
  }

  obs::IntrospectionSnapshot snapshot;
  snapshot.graphs.push_back(g);
  const std::string json = obs::to_json(snapshot);
  EXPECT_NE(json.find("\"graphs\""), std::string::npos);
  EXPECT_NE(json.find("wifi-floor2"), std::string::npos);
  const std::string screen = obs::render_dashboard(snapshot, nullptr);
  EXPECT_NE(screen.find("wifi-floor2"), std::string::npos);
}
