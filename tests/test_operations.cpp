// Tests for the designed method-reflection surface (OperationTable): the
// PSL's "access to all methods available on the implementing classes".

#include "perpos/core/components.hpp"
#include "perpos/core/graph.hpp"
#include "perpos/sensors/gps_sensor.hpp"
#include "perpos/sensors/trajectory.hpp"

#include <gtest/gtest.h>

namespace core = perpos::core;
namespace geo = perpos::geo;
namespace sim = perpos::sim;
namespace sensors = perpos::sensors;

TEST(Operations, RegisterInvokeList) {
  core::OperationTable table;
  EXPECT_EQ(table.size(), 0u);
  int calls = 0;
  table.add("ping", "answers pong", [&](const std::string& arg) {
    ++calls;
    return "pong:" + arg;
  });
  EXPECT_TRUE(table.has("ping"));
  EXPECT_FALSE(table.has("pong"));
  EXPECT_EQ(*table.invoke("ping", "x"), "pong:x");
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(table.invoke("nope").has_value());
  const auto infos = table.list();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].name, "ping");
  EXPECT_EQ(infos[0].description, "answers pong");
}

TEST(Operations, ReplaceExisting) {
  core::OperationTable table;
  table.add("op", "v1", [](const std::string&) { return "1"; });
  table.add("op", "v2", [](const std::string&) { return "2"; });
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(*table.invoke("op"), "2");
}

TEST(Operations, ComponentsExposeTables) {
  core::SourceComponent source(
      "Src", std::vector<core::DataSpec>{core::provide<int>()});
  EXPECT_EQ(source.operations().size(), 0u);  // Plain components: none.
  source.operations().add("hello", "greets",
                          [](const std::string&) { return "hi"; });
  EXPECT_EQ(*source.operations().invoke("hello"), "hi");
}

TEST(Operations, GpsSensorControlThroughReflection) {
  sim::Scheduler scheduler;
  sim::Random random(42);
  const geo::LocalFrame frame(geo::GeoPoint{56.1697, 10.1994, 50.0});
  const sensors::Trajectory walk =
      sensors::TrajectoryBuilder({0, 0}).walk_to({50, 0}, 1.4).build();
  core::ProcessingGraph graph(&scheduler.clock());
  auto sensor = std::make_shared<sensors::GpsSensor>(scheduler, random, walk,
                                                     frame);
  const auto id = graph.add(sensor);

  // PSL tooling drives the sensor without knowing its type.
  core::ProcessingComponent& component = graph.component(id);
  EXPECT_GE(component.operations().size(), 3u);
  EXPECT_EQ(*component.operations().invoke("active"), "on");
  EXPECT_EQ(*component.operations().invoke("active", "off"), "off");
  EXPECT_FALSE(sensor->active());
  EXPECT_EQ(*component.operations().invoke("active", "on"), "on");
  EXPECT_TRUE(sensor->active());

  sensor->start();
  scheduler.run_until(sim::SimTime::from_seconds(5.0));
  EXPECT_EQ(*component.operations().invoke("epochs"), "5");
  EXPECT_FALSE(component.operations().invoke("no_such_op").has_value());
}
