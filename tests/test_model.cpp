// Tests for the bounded explicit-state model checker (perpos::verify::mc)
// and the PPM protocol models: the checker core on toy state machines
// (BFS shortest-counterexample, dedup, terminal checks, budget truncation),
// the three built-in protocol models verifying clean exhaustively, the
// mutation-kill variants each producing their PPM finding with a short
// replayable trace, and the counterexample rendering across text / JSON /
// SARIF (codeFlows).

#include "perpos/verify/emit.hpp"
#include "perpos/verify/model_check.hpp"
#include "perpos/verify/protocol_models.hpp"
#include "perpos/verify/rules.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace vfy = perpos::verify;
namespace mc = perpos::verify::mc;

namespace {

// --- Toy models for the checker core ---------------------------------------

// Two independent counters, 0..3 each: 16 states, no properties. Exercises
// dedup (many interleavings, one lattice) and clean termination.
struct GridState {
  std::uint8_t a = 0;
  std::uint8_t b = 0;
};

class GridModel {
 public:
  using State = GridState;
  std::string_view name() const { return "toy-grid"; }
  std::vector<State> initial() const { return {State{}}; }
  void successors(const State& s, std::vector<mc::Step<State>>& out) const {
    if (s.a < 3) {
      State n = s;
      ++n.a;
      out.push_back({n, {"a", "inc to " + std::to_string(int(n.a))}});
    }
    if (s.b < 3) {
      State n = s;
      ++n.b;
      out.push_back({n, {"b", "inc to " + std::to_string(int(n.b))}});
    }
  }
  mc::Violation invariant(const State&) const { return {}; }
  mc::Violation terminal(const State&) const { return {}; }
};

// Same lattice, but (a,b) = (2,1) violates the invariant. The shortest
// path there is 3 steps; BFS must find exactly that length.
class BadCellModel : public GridModel {
 public:
  std::string_view name() const { return "toy-bad-cell"; }
  mc::Violation invariant(const State& s) const {
    if (s.a == 2 && s.b == 1) return {"bad-cell", "reached (2,1)"};
    return {};
  }
};

// Clean invariants but the (only) terminal state (3,3) fails the goal
// check — exercises the liveness-at-termination path.
class BadGoalModel : public GridModel {
 public:
  std::string_view name() const { return "toy-bad-goal"; }
  mc::Violation terminal(const State&) const {
    return {"goal-missed", "drained without reaching the goal"};
  }
};

}  // namespace

// --- Checker core -----------------------------------------------------------

TEST(ModelChecker, ExploresDedupedStateSpace) {
  const mc::Outcome o = mc::explore(GridModel{}, mc::Budget{});
  EXPECT_EQ(o.verdict, mc::Verdict::kClean);
  EXPECT_TRUE(o.clean());
  // 4x4 lattice: 16 distinct states regardless of interleaving count.
  EXPECT_EQ(o.states, 16u);
  // Each state has an edge per enabled counter: 2*12 + ... = 24 total.
  EXPECT_EQ(o.transitions, 24u);
  EXPECT_EQ(o.depth, 6u);
  EXPECT_TRUE(o.property.empty());
  EXPECT_TRUE(o.trace.empty());
}

TEST(ModelChecker, FindsShortestCounterexample) {
  const mc::Outcome o = mc::explore(BadCellModel{}, mc::Budget{});
  ASSERT_EQ(o.verdict, mc::Verdict::kViolation);
  EXPECT_EQ(o.property, "bad-cell");
  EXPECT_EQ(o.model, "toy-bad-cell");
  // (2,1) is 3 moves from the origin; BFS guarantees the minimum.
  ASSERT_EQ(o.trace.size(), 3u);
  int a = 0;
  int b = 0;
  for (const vfy::TraceStep& step : o.trace) {
    EXPECT_TRUE(step.actor == "a" || step.actor == "b") << step.actor;
    (step.actor == "a" ? a : b) += 1;
  }
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 1);
}

TEST(ModelChecker, ChecksTerminalStates) {
  const mc::Outcome o = mc::explore(BadGoalModel{}, mc::Budget{});
  ASSERT_EQ(o.verdict, mc::Verdict::kViolation);
  EXPECT_EQ(o.property, "goal-missed");
  // The only successor-free state is (3,3), six steps out.
  EXPECT_EQ(o.trace.size(), 6u);
}

TEST(ModelChecker, TruncatesOnStateBudget) {
  mc::Budget budget;
  budget.max_states = 5;
  const mc::Outcome o = mc::explore(GridModel{}, budget);
  EXPECT_EQ(o.verdict, mc::Verdict::kTruncated);
  EXPECT_FALSE(o.clean());
  EXPECT_EQ(o.truncated_by, "states");
  EXPECT_NE(o.message.find("unverified"), std::string::npos);
}

TEST(ModelChecker, TruncatesOnDepthBudget) {
  mc::Budget budget;
  budget.max_depth = 2;
  const mc::Outcome o = mc::explore(GridModel{}, budget);
  EXPECT_EQ(o.verdict, mc::Verdict::kTruncated);
  EXPECT_EQ(o.truncated_by, "depth");
}

TEST(ModelChecker, DeterministicAcrossRuns) {
  const mc::Outcome x = mc::explore(BadCellModel{}, mc::Budget{});
  const mc::Outcome y = mc::explore(BadCellModel{}, mc::Budget{});
  EXPECT_EQ(x.states, y.states);
  EXPECT_EQ(x.transitions, y.transitions);
  ASSERT_EQ(x.trace.size(), y.trace.size());
  for (std::size_t i = 0; i < x.trace.size(); ++i) {
    EXPECT_EQ(x.trace[i].actor, y.trace[i].actor);
    EXPECT_EQ(x.trace[i].label, y.trace[i].label);
  }
}

TEST(ModelChecker, VerdictNames) {
  EXPECT_EQ(mc::verdict_name(mc::Verdict::kClean), "clean");
  EXPECT_EQ(mc::verdict_name(mc::Verdict::kViolation), "violation");
  EXPECT_EQ(mc::verdict_name(mc::Verdict::kTruncated), "truncated");
}

// --- Built-in protocol models: clean within the default budget -------------

TEST(ProtocolModels, ReliableLinkVerifiesClean) {
  const mc::Outcome o = vfy::check_link_model({}, mc::Budget{});
  EXPECT_EQ(o.verdict, mc::Verdict::kClean) << o.message;
  EXPECT_EQ(o.model, "reliable-link");
  // Exhaustive, not vacuous: the pipelined two-message instance under a
  // drop/dup/premature-timeout adversary has a few thousand states.
  EXPECT_GT(o.states, 1000u);
}

TEST(ProtocolModels, ReliableLinkFifoWindow1VerifiesClean) {
  vfy::LinkModelParams params;
  params.reorder = false;
  params.window1 = true;
  const mc::Outcome o = vfy::check_link_model(params, mc::Budget{});
  EXPECT_EQ(o.verdict, mc::Verdict::kClean) << o.message;
  EXPECT_EQ(o.model, "reliable-link-fifo");
}

TEST(ProtocolModels, MonotonicityNotATheoremWhenPipelined) {
  // Documented honesty check: over a FIFO transport but with pipelined
  // sending, a retransmission overtakes later seqs — the checker finds
  // that counterexample, which is why the shipped FIFO configuration
  // models the stop-and-wait (window-1) discipline.
  vfy::LinkModelParams params;
  params.reorder = false;
  params.window1 = false;
  const mc::Outcome o = vfy::check_link_model(params, mc::Budget{});
  ASSERT_EQ(o.verdict, mc::Verdict::kViolation);
  EXPECT_EQ(o.property, "non-monotonic-delivery");
}

TEST(ProtocolModels, HotSwapVerifiesClean) {
  const mc::Outcome o = vfy::check_swap_model({}, mc::Budget{});
  EXPECT_EQ(o.verdict, mc::Verdict::kClean) << o.message;
  EXPECT_EQ(o.model, "hot-swap");
}

TEST(ProtocolModels, FreezeThawVerifiesClean) {
  const mc::Outcome o = vfy::check_plan_model({}, mc::Budget{});
  EXPECT_EQ(o.verdict, mc::Verdict::kClean) << o.message;
  EXPECT_EQ(o.model, "freeze-thaw");
}

TEST(ProtocolModels, CleanRunProducesEmptyReport) {
  const vfy::Report report = vfy::check_protocol_models();
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.diagnostics.empty());
}

// --- Mutation kills: seeded protocol bugs must be found --------------------

namespace {

// Every seeded bug must yield its PPM finding with a short (<= 20 steps,
// per the acceptance bar; in practice <= 6) replayable counterexample.
void expect_kill(const mc::Outcome& o, std::string_view property,
                 std::string_view rule) {
  ASSERT_EQ(o.verdict, mc::Verdict::kViolation)
      << o.model << ": " << o.message;
  EXPECT_EQ(o.property, property);
  EXPECT_EQ(vfy::model_rule_for(o), rule);
  EXPECT_FALSE(o.trace.empty());
  EXPECT_LE(o.trace.size(), 20u);
}

}  // namespace

TEST(MutationKill, DroppedAckDedupe) {
  vfy::LinkModelParams params;
  params.mutant = vfy::ModelMutant::kLinkNoDedupe;
  expect_kill(vfy::check_link_model(params, mc::Budget{}),
              "duplicate-delivery", "PPM001");
}

TEST(MutationKill, SkippedRetransmissionBound) {
  vfy::LinkModelParams params;
  params.mutant = vfy::ModelMutant::kLinkSkipRetransmitBound;
  expect_kill(vfy::check_link_model(params, mc::Budget{}),
              "premature-giveup", "PPM002");
}

TEST(MutationKill, UnfenceBeforeQuiesceCompletes) {
  vfy::SwapModelParams params;
  params.mutant = vfy::ModelMutant::kSwapUnfenceEarly;
  expect_kill(vfy::check_swap_model(params, mc::Budget{}),
              "mutation-during-drain", "PPM003");
}

TEST(MutationKill, MissedThawOnRollback) {
  vfy::PlanModelParams params;
  params.mutant = vfy::ModelMutant::kPlanMissThawOnRollback;
  expect_kill(vfy::check_plan_model(params, mc::Budget{}),
              "stale-frozen-plan", "PPM004");
}

TEST(MutationKill, EveryMutantKillsThroughTheReportPipeline) {
  for (const vfy::ModelMutant mutant :
       {vfy::ModelMutant::kLinkNoDedupe,
        vfy::ModelMutant::kLinkSkipRetransmitBound,
        vfy::ModelMutant::kSwapUnfenceEarly,
        vfy::ModelMutant::kPlanMissThawOnRollback}) {
    vfy::ModelCheckOptions options;
    options.mutant = mutant;
    const vfy::Report report = vfy::check_protocol_models(options);
    EXPECT_FALSE(report.ok())
        << "mutant " << vfy::model_mutant_name(mutant) << " not killed";
    ASSERT_FALSE(report.diagnostics.empty());
    const vfy::Diagnostic& d = report.diagnostics.front();
    EXPECT_EQ(d.severity, vfy::Severity::kError);
    EXPECT_EQ(d.rule_id.rfind("PPM", 0), 0u) << d.rule_id;
    EXPECT_FALSE(d.property.empty());
    EXPECT_FALSE(d.trace.empty());
    EXPECT_LE(d.trace.size(), 20u);
  }
}

TEST(MutationKill, MutantNamesRoundTrip) {
  for (const std::string_view name : vfy::model_mutant_names()) {
    const auto mutant = vfy::parse_model_mutant(name);
    ASSERT_TRUE(mutant.has_value()) << name;
    EXPECT_EQ(vfy::model_mutant_name(*mutant), name);
  }
  EXPECT_FALSE(vfy::parse_model_mutant("no-such-mutant").has_value());
  EXPECT_TRUE(vfy::model_mutant_name(vfy::ModelMutant::kNone).empty());
}

// --- Truncation is reported, never clean -----------------------------------

TEST(ProtocolModels, BudgetExhaustionIsAnExplicitNote) {
  vfy::ModelCheckOptions options;
  options.budget.max_states = 10;
  const vfy::Report report = vfy::check_protocol_models(options);
  // Notes don't gate, but every truncated model must announce itself —
  // one PPM005 per model configuration (2 link configs + swap + plan).
  EXPECT_EQ(report.errors(), 0u);
  EXPECT_EQ(report.notes(), 4u);
  for (const vfy::Diagnostic& d : report.diagnostics) {
    EXPECT_EQ(d.rule_id, "PPM005");
    EXPECT_EQ(d.severity, vfy::Severity::kNote);
    EXPECT_EQ(d.property.rfind("budget-", 0), 0u) << d.property;
    EXPECT_NE(d.message.find("UNVERIFIED"), std::string::npos);
  }
}

// --- Catalog integration ----------------------------------------------------

TEST(ProtocolModels, PpmRulesLiveInTheOneCatalog) {
  const vfy::RuleRegistry& catalog = vfy::RuleRegistry::default_catalog();
  for (const char* id :
       {"PPM001", "PPM002", "PPM003", "PPM004", "PPM005"}) {
    const vfy::Rule* rule = catalog.find(id);
    ASSERT_NE(rule, nullptr) << id;
    EXPECT_FALSE(rule->description().empty()) << id;
    EXPECT_FALSE(vfy::rule_sketch(id).empty()) << id;
  }
  EXPECT_EQ(catalog.find("PPM001")->default_severity(),
            vfy::Severity::kError);
  EXPECT_EQ(catalog.find("PPM005")->default_severity(),
            vfy::Severity::kNote);
}

// --- Counterexample rendering ----------------------------------------------

namespace {

vfy::Report swap_mutant_report() {
  vfy::ModelCheckOptions options;
  options.mutant = vfy::ModelMutant::kSwapUnfenceEarly;
  return vfy::check_protocol_models(options);
}

}  // namespace

TEST(ModelEmit, TextRendersNumberedSchedule) {
  const std::string text = vfy::to_text(swap_mutant_report());
  EXPECT_NE(text.find("error[PPM003]"), std::string::npos) << text;
  EXPECT_NE(text.find("counterexample ("), std::string::npos) << text;
  EXPECT_NE(text.find("1. producer: post sample 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("reconfig: "), std::string::npos) << text;
}

TEST(ModelEmit, JsonCarriesPropertyAndTrace) {
  const std::string json = vfy::to_json(swap_mutant_report(), nullptr);
  EXPECT_NE(json.find("\"rule\":\"PPM003\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"property\":\"mutation-during-drain\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"trace\":[{\"actor\":\"producer\""),
            std::string::npos)
      << json;
}

TEST(ModelEmit, SarifRendersCodeFlows) {
  const std::string sarif =
      vfy::to_sarif(swap_mutant_report(),
                    vfy::RuleRegistry::default_catalog(), "", nullptr);
  EXPECT_NE(sarif.find("\"ruleId\":\"PPM003\""), std::string::npos) << sarif;
  EXPECT_NE(sarif.find("\"codeFlows\":[{\"threadFlows\":"),
            std::string::npos)
      << sarif;
  EXPECT_NE(sarif.find("\"executionOrder\":1"), std::string::npos) << sarif;
  EXPECT_NE(sarif.find("producer: post sample 1"), std::string::npos)
      << sarif;
  // The counterexample property rides the result's property bag.
  EXPECT_NE(sarif.find("\"properties\":{\"property\":"
                       "\"mutation-during-drain\"}"),
            std::string::npos)
      << sarif;
}

TEST(ModelEmit, NonModelFindingsUnchanged) {
  // Reports without traces must render byte-identical to before the PPM
  // family existed (golden outputs elsewhere depend on it).
  vfy::Report report;
  vfy::Diagnostic d;
  d.rule_id = "PPV003";
  d.severity = vfy::Severity::kWarning;
  d.message = "nothing consumes this";
  d.component_name = "gps";
  report.diagnostics.push_back(d);
  const std::string json = vfy::to_json(report, nullptr);
  EXPECT_EQ(json.find("trace"), std::string::npos);
  EXPECT_EQ(json.find("property"), std::string::npos);
  const std::string text = vfy::to_text(report);
  EXPECT_EQ(text.find("counterexample"), std::string::npos);
}
