// Property and fuzz tests: randomized (but seeded, deterministic)
// workloads checking structural invariants of the graph engine, parser
// robustness against arbitrary bytes, and codec totality.

#include "perpos/core/channel.hpp"
#include "perpos/core/components.hpp"
#include "perpos/core/data_types.hpp"
#include "perpos/core/graph.hpp"
#include "perpos/nmea/generate.hpp"
#include "perpos/nmea/stream_parser.hpp"
#include "perpos/runtime/payload_codec.hpp"
#include "perpos/sim/random.hpp"

#include <gtest/gtest.h>

#include <set>

namespace core = perpos::core;
namespace nmea = perpos::nmea;
namespace sim = perpos::sim;

namespace {

struct Token {
  int value = 0;
};

std::shared_ptr<core::ProcessingComponent> make_node(sim::Random& random) {
  switch (random.uniform_int(0, 2)) {
    case 0:
      return std::make_shared<core::SourceComponent>(
          "Src", std::vector<core::DataSpec>{core::provide<Token>()});
    case 1:
      return std::make_shared<core::LambdaComponent>(
          "Relay",
          std::vector<core::InputRequirement>{core::require<Token>()},
          std::vector<core::DataSpec>{core::provide<Token>()},
          [](const core::Sample& s, const core::ComponentContext& ctx) {
            ctx.emit(s.payload);
          });
    default:
      return std::make_shared<core::ApplicationSink>();
  }
}

/// Structural invariants that must hold after any mutation sequence.
void check_invariants(core::ProcessingGraph& graph,
                      core::ChannelManager& channels) {
  const auto ids = graph.components();
  std::set<core::ComponentId> live(ids.begin(), ids.end());

  for (core::ComponentId id : ids) {
    const core::ComponentInfo info = graph.info(id);
    // Edge symmetry: consumers' producer lists contain us and vice versa.
    for (core::ComponentId c : info.consumers) {
      ASSERT_TRUE(live.contains(c));
      const auto back = graph.info(c).producers;
      EXPECT_NE(std::find(back.begin(), back.end(), id), back.end());
    }
    for (core::ComponentId p : info.producers) {
      ASSERT_TRUE(live.contains(p));
      const auto fwd = graph.info(p).consumers;
      EXPECT_NE(std::find(fwd.begin(), fwd.end(), id), fwd.end());
    }
  }

  // Acyclicity: DFS from every node never returns to it.
  for (core::ComponentId start : ids) {
    std::vector<core::ComponentId> stack{start};
    std::set<core::ComponentId> seen;
    bool first = true;
    while (!stack.empty()) {
      const core::ComponentId n = stack.back();
      stack.pop_back();
      if (!first && n == start) FAIL() << "cycle through " << start;
      if (!seen.insert(n).second) continue;
      first = false;
      for (core::ComponentId next : graph.info(n).consumers) {
        stack.push_back(next);
      }
    }
  }

  // Channel view is derivable and consistent: every channel's path exists,
  // interior nodes are 1-in/1-out, sink consumes last path node.
  for (core::Channel* c : channels.channels()) {
    ASSERT_FALSE(c->path().empty());
    EXPECT_TRUE(live.contains(c->source()));
    EXPECT_TRUE(live.contains(c->sink()));
    const auto sink_producers = graph.info(c->sink()).producers;
    EXPECT_NE(std::find(sink_producers.begin(), sink_producers.end(),
                        c->last()),
              sink_producers.end());
    for (std::size_t i = 1; i + 1 < c->path().size(); ++i) {
      const auto info = graph.info(c->path()[i]);
      if (!graph.component(c->path()[i]).is_channel_endpoint()) {
        EXPECT_EQ(info.producers.size(), 1u);
        EXPECT_EQ(info.consumers.size(), 1u);
      }
    }
  }
}

}  // namespace

class GraphFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphFuzz, RandomMutationsPreserveInvariants) {
  sim::Random random(GetParam());
  core::ProcessingGraph graph;
  core::ChannelManager channels(graph);
  std::vector<core::ComponentId> ids;
  std::vector<std::shared_ptr<core::SourceComponent>> sources;

  for (int step = 0; step < 300; ++step) {
    const int op = random.uniform_int(0, 9);
    if (op <= 2 || ids.empty()) {  // Add (30%).
      auto node = make_node(random);
      auto source = std::dynamic_pointer_cast<core::SourceComponent>(node);
      ids.push_back(graph.add(node));
      if (source) sources.push_back(source);
    } else if (op <= 6) {  // Connect (40%).
      const auto a = ids[static_cast<std::size_t>(
          random.uniform_int(0, static_cast<int>(ids.size()) - 1))];
      const auto b = ids[static_cast<std::size_t>(
          random.uniform_int(0, static_cast<int>(ids.size()) - 1))];
      if (graph.has(a) && graph.has(b)) {
        try {
          graph.connect(a, b);
        } catch (const std::invalid_argument&) {
          // Incompatible / duplicate / cycle — expected and fine.
        }
      }
    } else if (op <= 7) {  // Disconnect (10%).
      const auto a = ids[static_cast<std::size_t>(
          random.uniform_int(0, static_cast<int>(ids.size()) - 1))];
      if (graph.has(a)) {
        const auto consumers = graph.info(a).consumers;
        if (!consumers.empty()) {
          graph.disconnect(a, consumers.front());
        }
      }
    } else if (op <= 8) {  // Remove (10%).
      const auto a = ids[static_cast<std::size_t>(
          random.uniform_int(0, static_cast<int>(ids.size()) - 1))];
      if (graph.has(a)) graph.remove(a);
    } else {  // Pump data through a random live source (10%).
      for (auto& s : sources) {
        if (s->context().attached()) {
          s->push(Token{step});
          break;
        }
      }
    }

    if (step % 25 == 0) check_invariants(graph, channels);
  }
  check_invariants(graph, channels);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42, 99,
                                           12345));

class NmeaFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NmeaFuzz, RandomBytesNeverCrashAndNeverFalselyParse) {
  sim::Random random(GetParam());
  nmea::StreamParser parser;
  for (int round = 0; round < 200; ++round) {
    std::string junk;
    const int len = random.uniform_int(0, 120);
    for (int i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(random.uniform_int(0, 255)));
    }
    for (const nmea::Sentence& s : parser.feed(junk)) {
      // Anything that parses from random bytes must have had a valid
      // checksum — astronomically unlikely but legal; verify integrity.
      EXPECT_FALSE(s.raw.empty());
    }
  }
}

TEST_P(NmeaFuzz, MutatedValidSentencesNeverYieldWrongPositions) {
  sim::Random random(GetParam());
  nmea::GgaSentence gga;
  gga.quality = nmea::FixQuality::kGps;
  gga.satellites_in_use = 8;
  gga.hdop = 1.0;
  gga.latitude_deg = 56.1697;
  gga.longitude_deg = 10.1994;
  const std::string valid = nmea::generate_gga(gga) + "\r\n";

  nmea::StreamParser parser;
  int parsed = 0;
  for (int round = 0; round < 500; ++round) {
    std::string mutated = valid;
    const int flips = random.uniform_int(1, 3);
    for (int i = 0; i < flips; ++i) {
      const auto idx = static_cast<std::size_t>(random.uniform_int(
          0, static_cast<int>(mutated.size()) - 1));
      mutated[idx] = static_cast<char>(random.uniform_int(32, 126));
    }
    for (const nmea::Sentence& s : parser.feed(mutated)) {
      ++parsed;
      // If it parsed, the checksum held, so either the mutation was a
      // no-op or hit a "don't care" byte; position fields must be sane.
      if (s.gga && nmea::is_fix(s.gga->quality)) {
        EXPECT_GE(s.gga->latitude_deg, -90.0);
        EXPECT_LE(s.gga->latitude_deg, 90.0);
        EXPECT_GE(s.gga->longitude_deg, -180.0);
        EXPECT_LE(s.gga->longitude_deg, 180.0);
      }
    }
    parser.reset();
  }
  // The vast majority of mutations must be rejected by the checksum.
  EXPECT_LT(parsed, 50);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NmeaFuzz, ::testing::Values(7, 21, 777));

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomWireInputNeverCrashes) {
  sim::Random random(GetParam());
  for (int round = 0; round < 500; ++round) {
    std::string wire;
    const int len = random.uniform_int(0, 80);
    for (int i = 0; i < len; ++i) {
      wire.push_back(static_cast<char>(random.uniform_int(32, 126)));
    }
    // Must either decode to a valid payload or return nullopt — never
    // throw, never crash.
    EXPECT_NO_THROW({
      const auto decoded = perpos::runtime::decode_payload(wire);
      if (decoded) {
        EXPECT_TRUE(perpos::runtime::is_encodable(*decoded));
      }
    });
  }
}

TEST_P(CodecFuzz, EncodeDecodeIsStableUnderRandomFixes) {
  sim::Random random(GetParam());
  for (int round = 0; round < 200; ++round) {
    core::PositionFix fix;
    fix.position = {random.uniform(-90.0, 90.0),
                    random.uniform(-180.0, 180.0), random.uniform(-100, 9000)};
    fix.horizontal_accuracy_m = random.uniform(0.0, 500.0);
    fix.timestamp = sim::SimTime{random.uniform_int(0, 1 << 30)};
    fix.technology = round % 2 == 0 ? "GPS" : "WiFi";
    const auto wire =
        perpos::runtime::encode_payload(core::Payload::make(fix));
    const auto back = perpos::runtime::decode_payload(wire);
    ASSERT_TRUE(back.has_value());
    const auto& f = back->as<core::PositionFix>();
    EXPECT_NEAR(f.position.latitude_deg, fix.position.latitude_deg, 1e-8);
    EXPECT_NEAR(f.position.longitude_deg, fix.position.longitude_deg, 1e-8);
    EXPECT_EQ(f.timestamp, fix.timestamp);
    EXPECT_EQ(f.technology, fix.technology);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Values(5, 55, 555));
