#!/usr/bin/env sh
# Lint every example config with perpos-verify and collect SARIF output.
#
# Usage: scripts/lint_configs.sh <build-dir> [sarif-output-dir]
#
# Clean configs must produce zero findings under --werror; the deliberate
# fixtures (broken_pipeline.conf, broken-lanes.cfg, broken-budget.cfg)
# must exit non-zero — they are the analyzer's own regression fixtures.
# SARIF files are written one per config so CI can upload them to code
# scanning.
set -eu

build_dir=${1:?usage: lint_configs.sh <build-dir> [sarif-output-dir]}
sarif_dir=${2:-}
verify="$build_dir/tools/perpos-verify"
configs_dir=$(dirname "$0")/../examples/configs

status=0
for config in "$configs_dir"/*.conf "$configs_dir"/*.cfg; do
  [ -e "$config" ] || continue
  name=$(basename "$config")
  name=${name%.conf}
  name=${name%.cfg}
  if [ -n "$sarif_dir" ]; then
    mkdir -p "$sarif_dir"
    "$verify" --werror --format=sarif --output "$sarif_dir/$name.sarif" \
      "$config" && rc=0 || rc=$?
  else
    "$verify" --werror "$config" && rc=0 || rc=$?
  fi
  base=$(basename "$config")
  case "$name" in
  broken_pipeline|broken-lanes|broken-budget)
    if [ "$rc" -eq 0 ]; then
      echo "FAIL: $base should produce findings but linted clean" >&2
      status=1
    elif [ "$rc" -ne 1 ]; then
      echo "FAIL: $base: perpos-verify usage/IO error (exit $rc)" >&2
      status=1
    else
      echo "ok: $base fails as intended"
    fi
    ;;
  *)
    if [ "$rc" -ne 0 ]; then
      echo "FAIL: $base has findings (exit $rc)" >&2
      "$verify" "$config" >&2 || true
      status=1
    else
      echo "ok: $base"
    fi
    ;;
  esac
done
exit $status
