#!/usr/bin/env sh
# Lint every example config with perpos-verify and collect SARIF output.
#
# Usage: scripts/lint_configs.sh <build-dir> [sarif-output-dir]
#
# Clean configs (everything except broken_pipeline.conf) must produce zero
# findings under --werror; broken_pipeline.conf must exit non-zero — it is
# the analyzer's own regression fixture. SARIF files are written one per
# config so CI can upload them to code scanning.
set -eu

build_dir=${1:?usage: lint_configs.sh <build-dir> [sarif-output-dir]}
sarif_dir=${2:-}
verify="$build_dir/tools/perpos-verify"
configs_dir=$(dirname "$0")/../examples/configs

status=0
for config in "$configs_dir"/*.conf; do
  name=$(basename "$config" .conf)
  if [ -n "$sarif_dir" ]; then
    mkdir -p "$sarif_dir"
    "$verify" --werror --format=sarif --output "$sarif_dir/$name.sarif" \
      "$config" && rc=0 || rc=$?
  else
    "$verify" --werror "$config" && rc=0 || rc=$?
  fi
  if [ "$name" = "broken_pipeline" ]; then
    if [ "$rc" -eq 0 ]; then
      echo "FAIL: $name.conf should produce findings but linted clean" >&2
      status=1
    elif [ "$rc" -ne 1 ]; then
      echo "FAIL: $name.conf: perpos-verify usage/IO error (exit $rc)" >&2
      status=1
    else
      echo "ok: $name.conf fails as intended"
    fi
  elif [ "$rc" -ne 0 ]; then
    echo "FAIL: $name.conf has findings (exit $rc)" >&2
    "$verify" "$config" >&2 || true
    status=1
  else
    echo "ok: $name.conf"
  fi
done
exit $status
