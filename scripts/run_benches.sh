#!/usr/bin/env bash
# Runs every benchmark binary (report phase + micro-benchmarks) and tees
# the combined output — the harness behind bench_output.txt.
set -u
out="${1:-bench_output.txt}"
: > "$out"
for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo "##### $(basename "$b")" | tee -a "$out"
  "$b" 2>&1 | tee -a "$out"
  echo | tee -a "$out"
done
