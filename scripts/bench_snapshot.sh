#!/usr/bin/env bash
# Refreshes the checked-in machine-readable benchmark snapshots:
#
#   BENCH_o1.json   — the O1 scalability experiment (pipeline depth,
#                     emit_batch amortization, multi-graph engine scaling)
#   BENCH_plan.json — compiled execution plans: frozen vs interpreted
#                     dispatch over the same rigs, captured in one run so
#                     both series share a single environment block
#
# Usage: scripts/bench_snapshot.sh            # refresh both snapshots
#        scripts/bench_snapshot.sh out.json   # O1 series only, custom path
#
# Expects a configured build in ./build (cmake -B build -S . && cmake
# --build build -j). Benchmark selection and repetitions are kept modest so
# the snapshot is reproducible on a laptop; the environment block in the
# JSON (host, num_cpus, library_build_type, date) says what produced the
# numbers — read it before comparing snapshots from different machines.
set -eu
bench="build/bench/bench_o1_scalability"
if [ ! -x "$bench" ]; then
  echo "error: $bench not built (run: cmake --build build -j)" >&2
  exit 1
fi

# Prints the environment block of a snapshot and warns — loudly — about
# the two conditions that make absolute numbers meaningless: a benchmark
# library built without optimization, and a single-CPU machine (the
# engine-scaling series needs real cores to mean anything).
report_context() {
  python3 - "$1" <<'EOF'
import json, sys
path = sys.argv[1]
ctx = json.load(open(path))["context"]
build = ctx.get("library_build_type", "unknown")
cpus = ctx.get("num_cpus", 0)
print(f"== {path} environment ==")
print(f"   library_build_type : {build}")
print(f"   num_cpus           : {cpus}")
print(f"   host               : {ctx.get('host_name', '?')}")
print(f"   date               : {ctx.get('date', '?')}")
if build != "release":
    print("*" * 68)
    print(f"** WARNING: benchmark library built as '{build}', not 'release'.")
    print("** Absolute timings are NOT representative — reconfigure with")
    print("**   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release")
    print("*" * 68)
if cpus < 2:
    print("*" * 68)
    print(f"** WARNING: only {cpus} CPU visible. Engine worker-scaling")
    print("** numbers (BM_EngineMultiGraph*) degenerate on one core; only")
    print("** single-thread series (BM_PipelineDepth*) are meaningful.")
    print("*" * 68)
EOF
}

snap() {
  local out="$1" filter="$2"
  "$bench" \
    --benchmark_filter="$filter" \
    --benchmark_format=json \
    --benchmark_out="$out" \
    --benchmark_out_format=json > /dev/null
  echo "wrote $out"
  report_context "$out"
}

if [ $# -ge 1 ]; then
  snap "$1" 'BM_PipelineDepth/|BM_EmitBatch|BM_EngineMultiGraph/'
  exit 0
fi
snap BENCH_o1.json 'BM_PipelineDepth/|BM_EmitBatch|BM_EngineMultiGraph/'
snap BENCH_plan.json 'BM_PipelineDepth(Frozen)?/|BM_EngineMultiGraph(Frozen)?/'
