#!/usr/bin/env bash
# Refreshes BENCH_o1.json — the checked-in machine-readable record of the
# O1 scalability experiment (pipeline depth, emit_batch amortization, and
# multi-graph scaling through the execution engine vs worker count).
#
# Usage: scripts/bench_snapshot.sh [output.json]
# Expects a configured build in ./build (cmake -B build -S . && cmake
# --build build -j). Benchmark selection and repetitions are kept modest so
# the snapshot is reproducible on a laptop; the environment block in the
# JSON (host, num_cpus, date) says what produced the numbers.
set -eu
out="${1:-BENCH_o1.json}"
bench="build/bench/bench_o1_scalability"
if [ ! -x "$bench" ]; then
  echo "error: $bench not built (run: cmake --build build -j)" >&2
  exit 1
fi
"$bench" \
  --benchmark_filter='BM_PipelineDepth/|BM_EmitBatch|BM_EngineMultiGraph' \
  --benchmark_format=json \
  --benchmark_out="$out" \
  --benchmark_out_format=json > /dev/null
echo "wrote $out"
