#!/usr/bin/env bash
# Perf smoke for the translucency plane: runs the report phase of the
# observability-sensitive benches with --metrics-json, checks that every
# snapshot is well-formed and that the engine hot path stayed clean (no
# task failures, no dropped trace spans in a calm run), and leaves the
# snapshots plus the profiler flight-recorder dump in an artifact
# directory for CI to upload.
#
# Usage: scripts/perf_smoke.sh [build_dir] [artifact_dir]
set -eu
build="${1:-build}"
artifacts="${2:-perf-smoke-artifacts}"
mkdir -p "$artifacts"

fail=0

run_one() {
  name="$1"
  allow_drops="${2:-no}"
  bench="$build/bench/bench_$name"
  json="$artifacts/$name.metrics.json"
  if [ ! -x "$bench" ]; then
    echo "error: $bench not built" >&2
    fail=1
    return
  fi
  echo "--- $name ---"
  "$bench" --metrics-json "$json" --benchmark_filter=NO_MATCH \
    > "$artifacts/$name.report.txt" 2>&1 || {
    echo "error: $name report phase failed" >&2
    tail -20 "$artifacts/$name.report.txt" >&2
    fail=1
    return
  }
  python3 - "$json" "$name" "$allow_drops" <<'EOF' || fail=1
import json, sys
path, name, allow_drops = sys.argv[1], sys.argv[2], sys.argv[3]
try:
    with open(path) as f:
        doc = json.load(f)
except (OSError, ValueError) as e:
    print(f"error: {name}: snapshot unreadable: {e}", file=sys.stderr)
    sys.exit(1)
counters = {}
for c in doc.get("metrics", {}).get("counters", []):
    counters[c["name"]] = counters.get(c["name"], 0) + c["value"]
# Hot-path regression gates: a calm observed run must execute tasks
# without failures, and the bounded trace ring must not evict spans.
failed = counters.get("perpos_exec_tasks_failed_total", 0)
dropped = counters.get("perpos_obs_spans_dropped_total", 0)
problems = []
if not counters:
    problems.append("no counters in snapshot")
if failed:
    problems.append(f"{failed} failed engine tasks")
if dropped and allow_drops != "yes":
    problems.append(f"{dropped} dropped trace spans")
if problems:
    print(f"error: {name}: " + "; ".join(problems), file=sys.stderr)
    sys.exit(1)
print(f"ok: {name}: {len(counters)} counters, {failed} failed tasks, "
      f"{dropped} dropped spans")
EOF
}

# fig1 exercises the full pipeline with tracing; bench_profiler dumps the
# engine profiler + flight recorder; o1 covers the multi-worker engine.
run_one fig1_pipeline
# o1's observed stress workload intentionally overflows the bounded trace
# ring; eviction there is by design, so only the failure gate applies.
run_one o1_scalability yes
run_one profiler

exit "$fail"
