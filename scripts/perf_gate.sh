#!/usr/bin/env bash
# CI gate for the compiled-execution-plan speedup: runs the pipeline-depth
# series frozen and interpreted in one benchmark process (shared
# environment block, interleaved repetitions so machine drift hits both
# sides equally) and fails unless the frozen geomean speedup at the
# deepest measured pipeline clears the threshold.
#
# Usage: scripts/perf_gate.sh <build-dir> <out.json> [min-ratio]
#
# The 1.5 default is deliberately below the ~2x seen on quiet hardware:
# shared CI runners are noisy, and a flaky gate is worse than a loose one.
# The JSON written to <out.json> is uploaded as an artifact so a gate
# failure comes with the numbers attached.
set -eu
build="${1:?usage: perf_gate.sh <build-dir> <out.json> [min-ratio]}"
out="${2:?usage: perf_gate.sh <build-dir> <out.json> [min-ratio]}"
min_ratio="${3:-1.5}"
bench="$build/bench/bench_o1_scalability"
if [ ! -x "$bench" ]; then
  echo "error: $bench not built" >&2
  exit 1
fi

"$bench" \
  --benchmark_filter='BM_PipelineDepth(Frozen)?/(16|64|256)$' \
  --benchmark_min_time=0.15 \
  --benchmark_repetitions=5 \
  --benchmark_enable_random_interleaving=true \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out="$out" \
  --benchmark_out_format=json > /dev/null

python3 - "$out" "$min_ratio" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
min_ratio = float(sys.argv[2])
medians = {}
for b in data["benchmarks"]:
    if b.get("aggregate_name") == "median":
        medians[b["run_name"]] = b["real_time"]
ctx = data["context"]
print(f"library_build_type={ctx.get('library_build_type')} "
      f"num_cpus={ctx.get('num_cpus')}")
pairs = {}
for name, t in sorted(medians.items()):
    if "Frozen" not in name:
        frozen = medians.get(name.replace("Depth/", "DepthFrozen/"))
        if frozen is None:
            continue
        depth = int(name.rsplit("/", 1)[1])
        pairs[depth] = t / frozen
        print(f"depth {depth:>4}: interpreted {t:9.0f} ns   "
              f"frozen {frozen:9.0f} ns   speedup {t / frozen:.2f}x")
if not pairs:
    sys.exit("no frozen/interpreted pairs found in benchmark output")
# Gate on the deepest pipeline only: shallow chains spend a larger share
# of their time in the per-push fixed costs both paths share, so their
# ratio is structurally smaller and noisier.
depth = max(pairs)
ratio = pairs[depth]
if ratio < min_ratio:
    sys.exit(f"FAIL: frozen speedup {ratio:.2f}x at depth {depth} "
             f"is below the {min_ratio:.2f}x gate")
print(f"PASS: frozen speedup {ratio:.2f}x at depth {depth} "
      f">= {min_ratio:.2f}x")
EOF
