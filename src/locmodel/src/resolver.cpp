#include "perpos/locmodel/resolver.hpp"

#include <algorithm>
#include <cmath>

namespace perpos::locmodel {

void RoomResolver::on_input(const core::Sample& sample) {
  if (const auto* fix = sample.payload.get<core::PositionFix>()) {
    const LocalPoint local = building_.frame().to_local(fix->position);
    resolve(local, 0, fix->horizontal_accuracy_m, fix->timestamp);
  } else if (const auto* local = sample.payload.get<LocalPosition>()) {
    resolve(local->point, local->floor, local->accuracy_m, local->timestamp);
  }
}

void RoomResolver::resolve(const LocalPoint& p, int floor, double accuracy_m,
                           perpos::sim::SimTime timestamp) {
  core::RoomFix fix;
  fix.building = building_.name();
  fix.floor = floor;
  fix.local = p;
  fix.timestamp = timestamp;

  if (const Room* room = building_.room_at(p, floor)) {
    fix.room = room->id;
    // Confidence: how much of the accuracy circle plausibly falls in this
    // room — approximated by comparing the accuracy radius to the room
    // "radius" derived from its area.
    const double room_radius = std::sqrt(room->area() / 3.141592653589793);
    fix.confidence = accuracy_m <= 0.0
                         ? 1.0
                         : std::min(1.0, room_radius / accuracy_m);
  } else {
    ++misses_;
    fix.room.clear();
    fix.confidence = 0.0;
  }
  context().emit(core::Payload::make(std::move(fix)));
}

}  // namespace perpos::locmodel
