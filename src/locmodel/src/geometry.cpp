#include "perpos/locmodel/geometry.hpp"

#include <algorithm>
#include <cmath>

namespace perpos::locmodel {

namespace {

constexpr double kEps = 1e-12;

/// Cross product of (b-a) x (c-a).
double cross(const LocalPoint& a, const LocalPoint& b,
             const LocalPoint& c) noexcept {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

bool on_segment(const LocalPoint& p, const Segment& s) noexcept {
  if (std::fabs(cross(s.a, s.b, p)) > kEps * (1.0 + s.length())) return false;
  return p.x >= std::min(s.a.x, s.b.x) - kEps &&
         p.x <= std::max(s.a.x, s.b.x) + kEps &&
         p.y >= std::min(s.a.y, s.b.y) - kEps &&
         p.y <= std::max(s.a.y, s.b.y) + kEps;
}

}  // namespace

double Segment::length() const noexcept {
  return std::hypot(b.x - a.x, b.y - a.y);
}

bool point_in_polygon(const LocalPoint& p, const Polygon& polygon) noexcept {
  const std::size_t n = polygon.size();
  if (n < 3) return false;

  // Boundary counts as inside.
  for (std::size_t i = 0; i < n; ++i) {
    const Segment edge{polygon[i], polygon[(i + 1) % n]};
    if (on_segment(p, edge)) return true;
  }

  // Even-odd ray casting along +x.
  bool inside = false;
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const LocalPoint& a = polygon[i];
    const LocalPoint& b = polygon[j];
    const bool straddles = (a.y > p.y) != (b.y > p.y);
    if (straddles) {
      const double x_at = (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x;
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

bool segments_intersect(const Segment& s, const Segment& t) noexcept {
  const double d1 = cross(t.a, t.b, s.a);
  const double d2 = cross(t.a, t.b, s.b);
  const double d3 = cross(s.a, s.b, t.a);
  const double d4 = cross(s.a, s.b, t.b);

  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  // Touching / collinear cases.
  if (std::fabs(d1) <= kEps && on_segment(s.a, t)) return true;
  if (std::fabs(d2) <= kEps && on_segment(s.b, t)) return true;
  if (std::fabs(d3) <= kEps && on_segment(t.a, s)) return true;
  if (std::fabs(d4) <= kEps && on_segment(t.b, s)) return true;
  return false;
}

std::optional<LocalPoint> segment_intersection(const Segment& s,
                                               const Segment& t) noexcept {
  const double rx = s.b.x - s.a.x;
  const double ry = s.b.y - s.a.y;
  const double qx = t.b.x - t.a.x;
  const double qy = t.b.y - t.a.y;
  const double denom = rx * qy - ry * qx;
  if (std::fabs(denom) < kEps) return std::nullopt;  // Parallel/collinear.
  const double u = ((t.a.x - s.a.x) * qy - (t.a.y - s.a.y) * qx) / denom;
  const double v = ((t.a.x - s.a.x) * ry - (t.a.y - s.a.y) * rx) / denom;
  if (u < -kEps || u > 1.0 + kEps || v < -kEps || v > 1.0 + kEps) {
    return std::nullopt;
  }
  return LocalPoint{s.a.x + u * rx, s.a.y + u * ry};
}

double distance_to_segment(const LocalPoint& p, const Segment& s) noexcept {
  const double dx = s.b.x - s.a.x;
  const double dy = s.b.y - s.a.y;
  const double len_sq = dx * dx + dy * dy;
  if (len_sq < kEps) return std::hypot(p.x - s.a.x, p.y - s.a.y);
  double t = ((p.x - s.a.x) * dx + (p.y - s.a.y) * dy) / len_sq;
  t = std::clamp(t, 0.0, 1.0);
  return std::hypot(p.x - (s.a.x + t * dx), p.y - (s.a.y + t * dy));
}

double polygon_area(const Polygon& polygon) noexcept {
  const std::size_t n = polygon.size();
  if (n < 3) return 0.0;
  double twice_area = 0.0;
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    twice_area += polygon[j].x * polygon[i].y - polygon[i].x * polygon[j].y;
  }
  return twice_area / 2.0;
}

LocalPoint polygon_centroid(const Polygon& polygon) noexcept {
  const std::size_t n = polygon.size();
  if (n == 0) return {};
  const double area = polygon_area(polygon);
  if (std::fabs(area) < kEps) {
    LocalPoint avg{};
    for (const LocalPoint& p : polygon) {
      avg.x += p.x;
      avg.y += p.y;
    }
    avg.x /= static_cast<double>(n);
    avg.y /= static_cast<double>(n);
    return avg;
  }
  double cx = 0.0, cy = 0.0;
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const double w = polygon[j].x * polygon[i].y - polygon[i].x * polygon[j].y;
    cx += (polygon[j].x + polygon[i].x) * w;
    cy += (polygon[j].y + polygon[i].y) * w;
  }
  return {cx / (6.0 * area), cy / (6.0 * area)};
}

}  // namespace perpos::locmodel
