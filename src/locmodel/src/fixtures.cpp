#include "perpos/locmodel/fixtures.hpp"

namespace perpos::locmodel {

Building make_office_building() {
  BuildingBuilder b("ABUILD",
                    geo::GeoPoint{56.1697, 10.1994, 50.0});

  // Offices: south row y in [0, 8.5], north row y in [11.5, 20].
  // Four per row, 8 m wide, x in [0, 32].
  for (int i = 0; i < 4; ++i) {
    const double x0 = 8.0 * i;
    const double x1 = x0 + 8.0;
    b.rect_room("O-S" + std::to_string(i + 1), x0, 0.0, x1, 8.5);
    b.rect_room("O-N" + std::to_string(i + 1), x0, 11.5, x1, 20.0);
  }
  // Corridor between the rows, east of the lobby.
  b.rect_room("CORR", 4.0, 8.5, 32.0, 11.5);
  // Lobby at the west end of the corridor band.
  b.rect_room("LOBBY", 0.0, 8.5, 4.0, 11.5);
  // Lab across the full height at the east end.
  b.rect_room("LAB", 32.0, 0.0, 40.0, 20.0);

  // Exterior walls (heavy attenuation).
  b.wall(0, 0, 40, 0, 12.0);
  b.wall(40, 0, 40, 20, 12.0);
  b.wall(40, 20, 0, 20, 12.0);
  b.wall(0, 20, 0, 0, 12.0);

  // Office/corridor walls with 1.2 m doors centred on each office.
  for (int i = 0; i < 4; ++i) {
    const double x0 = 8.0 * i;
    const double x1 = x0 + 8.0;
    const double mid = (x0 + x1) / 2.0;
    const double h = 0.6;  // Half door width.
    // South row top wall (y = 8.5) with door gap.
    b.wall(x0, 8.5, mid - h, 8.5);
    b.wall(mid + h, 8.5, x1, 8.5);
    // North row bottom wall (y = 11.5) with door gap.
    b.wall(x0, 11.5, mid - h, 11.5);
    b.wall(mid + h, 11.5, x1, 11.5);
    // Partition walls between neighbouring offices.
    if (i > 0) {
      b.wall(x0, 0.0, x0, 8.5);
      b.wall(x0, 11.5, x0, 20.0);
    }
  }
  // Wall between offices and the lab, with a door from the corridor.
  b.wall(32.0, 0.0, 32.0, 9.2);
  b.wall(32.0, 10.8, 32.0, 20.0);
  // Lobby/corridor boundary is open (no wall).

  // Adjacency (doors).
  for (int i = 1; i <= 4; ++i) {
    b.adjacent("O-S" + std::to_string(i), "CORR");
    b.adjacent("O-N" + std::to_string(i), "CORR");
  }
  b.adjacent("LOBBY", "CORR");
  b.adjacent("CORR", "LAB");

  return b.build();
}

Building make_two_room_building() {
  BuildingBuilder b("TWOROOM", geo::GeoPoint{56.17, 10.20, 0.0});
  b.rect_room("A", 0.0, 0.0, 5.0, 5.0);
  b.rect_room("B", 5.0, 0.0, 10.0, 5.0);
  // Outer walls.
  b.wall(0, 0, 10, 0);
  b.wall(10, 0, 10, 5);
  b.wall(10, 5, 0, 5);
  b.wall(0, 5, 0, 0);
  // Shared wall with a 1 m door centred at y = 2.5.
  b.wall(5, 0, 5, 2.0);
  b.wall(5, 3.0, 5, 5);
  b.adjacent("A", "B");
  return b.build();
}

}  // namespace perpos::locmodel
