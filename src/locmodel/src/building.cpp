#include "perpos/locmodel/building.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace perpos::locmodel {

const Room* Building::room_at(const LocalPoint& p, int floor) const noexcept {
  for (const Room& r : rooms_) {
    if (r.floor == floor && r.contains(p)) return &r;
  }
  return nullptr;
}

const Room* Building::room(const std::string& id) const noexcept {
  for (const Room& r : rooms_) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

const Room* Building::nearest_room(const LocalPoint& p,
                                   int floor) const noexcept {
  const Room* best = nullptr;
  double best_dist = std::numeric_limits<double>::infinity();
  for (const Room& r : rooms_) {
    if (r.floor != floor) continue;
    const LocalPoint c = r.centroid();
    const double d = std::hypot(p.x - c.x, p.y - c.y);
    if (d < best_dist) {
      best = &r;
      best_dist = d;
    }
  }
  return best;
}

bool Building::crosses_wall(const LocalPoint& a,
                            const LocalPoint& b) const noexcept {
  const Segment move{a, b};
  return std::any_of(walls_.begin(), walls_.end(), [&](const Wall& w) {
    return segments_intersect(move, w.segment);
  });
}

double Building::wall_attenuation_db(const LocalPoint& a,
                                     const LocalPoint& b) const noexcept {
  const Segment line{a, b};
  double total = 0.0;
  for (const Wall& w : walls_) {
    if (segments_intersect(line, w.segment)) total += w.attenuation_db;
  }
  return total;
}

std::vector<std::string> Building::adjacent_rooms(const std::string& id) const {
  std::vector<std::string> out;
  const auto [lo, hi] = adjacency_.equal_range(id);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

BuildingBuilder::BuildingBuilder(std::string name, geo::GeoPoint origin) {
  building_.name_ = std::move(name);
  building_.frame_ = geo::LocalFrame(origin);
}

BuildingBuilder& BuildingBuilder::rect_room(std::string id, double x0,
                                            double y0, double x1, double y1,
                                            int floor) {
  return room(std::move(id),
              Polygon{{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}}, floor);
}

BuildingBuilder& BuildingBuilder::room(std::string id, Polygon outline,
                                       int floor) {
  Room r;
  r.id = std::move(id);
  r.floor = floor;
  r.outline = std::move(outline);
  building_.rooms_.push_back(std::move(r));
  return *this;
}

BuildingBuilder& BuildingBuilder::wall(double x0, double y0, double x1,
                                       double y1, double attenuation_db) {
  building_.walls_.push_back(
      Wall{Segment{{x0, y0}, {x1, y1}}, attenuation_db});
  return *this;
}

BuildingBuilder& BuildingBuilder::rect_walls(double x0, double y0, double x1,
                                             double y1, char door_side,
                                             double door_width,
                                             double attenuation_db) {
  const auto add_side = [&](double ax, double ay, double bx, double by,
                            bool has_door) {
    if (!has_door || door_width <= 0.0) {
      wall(ax, ay, bx, by, attenuation_db);
      return;
    }
    // Split the side around a centred door gap.
    const double mx = (ax + bx) / 2.0;
    const double my = (ay + by) / 2.0;
    const double len = std::hypot(bx - ax, by - ay);
    if (len <= door_width) return;  // The whole side is a doorway.
    const double ux = (bx - ax) / len;
    const double uy = (by - ay) / len;
    const double h = door_width / 2.0;
    wall(ax, ay, mx - ux * h, my - uy * h, attenuation_db);
    wall(mx + ux * h, my + uy * h, bx, by, attenuation_db);
  };
  add_side(x0, y0, x1, y0, door_side == 'S');
  add_side(x1, y0, x1, y1, door_side == 'E');
  add_side(x1, y1, x0, y1, door_side == 'N');
  add_side(x0, y1, x0, y0, door_side == 'W');
  return *this;
}

BuildingBuilder& BuildingBuilder::adjacent(const std::string& a,
                                           const std::string& b) {
  building_.adjacency_.emplace(a, b);
  building_.adjacency_.emplace(b, a);
  return *this;
}

Building BuildingBuilder::build() {
  std::vector<LocalPoint> points;
  for (const Room& r : building_.rooms_) {
    points.insert(points.end(), r.outline.begin(), r.outline.end());
  }
  for (const Wall& w : building_.walls_) {
    points.push_back(w.segment.a);
    points.push_back(w.segment.b);
  }
  if (!points.empty()) building_.footprint_ = geo::bounding_box(points);
  return std::move(building_);
}

}  // namespace perpos::locmodel
