#pragma once

#include "perpos/geo/bounding_box.hpp"
#include "perpos/geo/local_frame.hpp"
#include "perpos/locmodel/geometry.hpp"

#include <map>
#include <optional>
#include <string>
#include <vector>

/// \file building.hpp
/// The building location model: rooms (polygons), walls (segments) and the
/// queries the middleware needs — which room a point is in (the Room Number
/// Application of Fig. 1), whether a movement crosses a wall (the particle
/// filter's movement constraint), and room adjacency.

namespace perpos::locmodel {

/// A wall: a physical obstacle that blocks movement (and, in the WiFi
/// signal model, attenuates signals).
struct Wall {
  Segment segment;
  double attenuation_db = 5.0;  ///< Extra path loss when signals cross.

  friend bool operator==(const Wall&, const Wall&) = default;
};

/// A room on a floor, described by a simple polygon in building-local
/// coordinates.
struct Room {
  std::string id;
  int floor = 0;
  Polygon outline;

  bool contains(const LocalPoint& p) const noexcept {
    return point_in_polygon(p, outline);
  }
  LocalPoint centroid() const noexcept { return polygon_centroid(outline); }
  double area() const noexcept { return std::abs(polygon_area(outline)); }
};

/// A building: geodetic anchor (for WGS84 <-> local conversion), rooms and
/// walls. Construct via BuildingBuilder.
class Building {
 public:
  const std::string& name() const noexcept { return name_; }
  const geo::LocalFrame& frame() const noexcept { return frame_; }
  const std::vector<Room>& rooms() const noexcept { return rooms_; }
  const std::vector<Wall>& walls() const noexcept { return walls_; }

  /// The room containing `p` on `floor`, or nullptr (e.g. outdoors or in a
  /// corridor modelled as a room of its own).
  const Room* room_at(const LocalPoint& p, int floor = 0) const noexcept;

  /// Room looked up by id, or nullptr.
  const Room* room(const std::string& id) const noexcept;

  /// The room whose centroid is nearest to `p` on `floor`; nullptr when the
  /// floor has no rooms.
  const Room* nearest_room(const LocalPoint& p, int floor = 0) const noexcept;

  /// Does the straight movement from `a` to `b` cross any wall? This is the
  /// physical-constraint query the particle filter uses to kill particles.
  bool crosses_wall(const LocalPoint& a, const LocalPoint& b) const noexcept;

  /// Total wall attenuation along the straight line a->b (WiFi model).
  double wall_attenuation_db(const LocalPoint& a,
                             const LocalPoint& b) const noexcept;

  /// True when `p` lies within the building's outer bounding box.
  bool inside_footprint(const LocalPoint& p) const noexcept {
    return footprint_.contains(p);
  }
  const geo::LocalBox& footprint() const noexcept { return footprint_; }

  /// Rooms sharing a doorway or open boundary with `id` (declared in the
  /// builder, not derived from geometry).
  std::vector<std::string> adjacent_rooms(const std::string& id) const;

 private:
  friend class BuildingBuilder;
  std::string name_;
  geo::LocalFrame frame_{geo::GeoPoint{}};
  std::vector<Room> rooms_;
  std::vector<Wall> walls_;
  std::multimap<std::string, std::string> adjacency_;
  geo::LocalBox footprint_{};
};

/// Fluent builder for Building models.
class BuildingBuilder {
 public:
  BuildingBuilder(std::string name, geo::GeoPoint origin);

  /// Add a rectangular room [x0,x1]x[y0,y1].
  BuildingBuilder& rect_room(std::string id, double x0, double y0, double x1,
                             double y1, int floor = 0);

  /// Add a room with an arbitrary outline.
  BuildingBuilder& room(std::string id, Polygon outline, int floor = 0);

  /// Add a wall segment.
  BuildingBuilder& wall(double x0, double y0, double x1, double y1,
                        double attenuation_db = 5.0);

  /// Add the four walls of a rectangle, leaving a gap (door) of width
  /// `door_width` centred on the side given by `door_side`
  /// ('N','S','E','W'); 0 door width closes the room completely.
  BuildingBuilder& rect_walls(double x0, double y0, double x1, double y1,
                              char door_side = 'S', double door_width = 1.0,
                              double attenuation_db = 5.0);

  /// Declare two rooms adjacent (symmetric).
  BuildingBuilder& adjacent(const std::string& a, const std::string& b);

  Building build();

 private:
  Building building_;
};

}  // namespace perpos::locmodel
