#pragma once

#include "perpos/core/component.hpp"
#include "perpos/core/data_types.hpp"
#include "perpos/locmodel/building.hpp"

/// \file resolver.hpp
/// The Resolver processing component of Fig. 1: translates positions into
/// room numbers using the building location model. It accepts either
/// technology-independent PositionFix values (converted through the
/// building frame) or raw building-local points produced by the WiFi
/// positioning system.

namespace perpos::locmodel {

/// A building-local position estimate (what indoor positioning produces
/// before room resolution).
struct LocalPosition {
  LocalPoint point;
  int floor = 0;
  double accuracy_m = 0.0;
  perpos::sim::SimTime timestamp;

  friend bool operator==(const LocalPosition&, const LocalPosition&) = default;
};

/// PositionFix/LocalPosition -> RoomFix.
class RoomResolver final : public core::ProcessingComponent,
                           public core::FrameAware {
 public:
  /// The resolver keeps a reference to `building`; the model must outlive
  /// the component.
  explicit RoomResolver(const Building& building) : building_(building) {}

  std::string_view kind() const override { return "Resolver"; }

  /// LocalPosition inputs are interpreted against this building's frame
  /// (PositionFix inputs are WGS84 and convert through the same frame).
  std::string input_frame() const override { return building_.name(); }

  std::vector<core::InputRequirement> input_requirements() const override {
    return {core::require<core::PositionFix>("", /*optional=*/true),
            core::require<LocalPosition>("", /*optional=*/true)};
  }

  std::vector<core::DataSpec> output_capabilities() const override {
    return {core::provide<core::RoomFix>()};
  }

  void on_input(const core::Sample& sample) override;

  /// Resolutions that found no room (useful as a seam indicator).
  std::uint64_t misses() const noexcept { return misses_; }

 private:
  void resolve(const LocalPoint& p, int floor, double accuracy_m,
               perpos::sim::SimTime timestamp);

  const Building& building_;
  std::uint64_t misses_ = 0;
};

}  // namespace perpos::locmodel

PERPOS_TYPE_NAME(perpos::locmodel::LocalPosition, "LocalPosition");
