#pragma once

#include "perpos/locmodel/building.hpp"

/// \file fixtures.hpp
/// Canonical building models used across tests, examples and benchmarks —
/// the reproduction's stand-in for the real office building of the paper's
/// Fig. 6 trace.

namespace perpos::locmodel {

/// A 40 m x 20 m single-floor office wing: a central east-west corridor
/// (3 m wide) flanked by four offices on each side, a lobby at the west
/// end and a lab at the east end. Doors open from every office to the
/// corridor. Anchored at Aarhus University (56.1697 N, 10.1994 E).
///
/// Layout (building-local metres, y grows north):
///
///   y=20 +--------+--------+--------+--------+-------+
///        | O-N1   | O-N2   | O-N3   | O-N4   |       |
///   y=11.5 +------+--------+--------+--------+  LAB  |
///        |      CORRIDOR (y 8.5..11.5)       |       |
///   y=8.5 +-------+--------+--------+--------+       |
///        | O-S1   | O-S2   | O-S3   | O-S4   |       |
///   y=0  +--------+--------+--------+--------+-------+
///        x=0     (offices 8m wide)          x=32   x=40
///
/// The lobby occupies x 0..4 inside the corridor band.
Building make_office_building();

/// A minimal two-room model (A | B with a shared wall and one door) for
/// focused unit tests.
Building make_two_room_building();

}  // namespace perpos::locmodel
