#pragma once

#include "perpos/geo/coordinates.hpp"

#include <optional>
#include <vector>

/// \file geometry.hpp
/// 2D computational geometry for the building location model: point-in-
/// polygon containment (room membership), segment intersection (wall
/// crossing — the constraint the particle filter imposes on movement) and
/// point-to-segment distance.

namespace perpos::locmodel {

using geo::LocalPoint;

/// A line segment in building-local coordinates (a wall, or a movement
/// step being tested against walls).
struct Segment {
  LocalPoint a;
  LocalPoint b;

  double length() const noexcept;
  friend bool operator==(const Segment&, const Segment&) = default;
};

/// A simple polygon given by its vertices in order (closed implicitly).
using Polygon = std::vector<LocalPoint>;

/// Even-odd point-in-polygon test. Points exactly on an edge count as
/// inside (rooms tile a floor; boundary points resolve to some room
/// deterministically by query order).
bool point_in_polygon(const LocalPoint& p, const Polygon& polygon) noexcept;

/// Proper + touching segment intersection test.
bool segments_intersect(const Segment& s, const Segment& t) noexcept;

/// The intersection point of two segments if they intersect in a single
/// point (collinear overlap returns nullopt).
std::optional<LocalPoint> segment_intersection(const Segment& s,
                                               const Segment& t) noexcept;

/// Euclidean distance from `p` to segment `s`.
double distance_to_segment(const LocalPoint& p, const Segment& s) noexcept;

/// Signed area of a polygon (positive for counter-clockwise orientation).
double polygon_area(const Polygon& polygon) noexcept;

/// Centroid of a simple polygon (vertex average fallback for degenerate
/// polygons with near-zero area).
LocalPoint polygon_centroid(const Polygon& polygon) noexcept;

}  // namespace perpos::locmodel
