#include "perpos/energy/power_model.hpp"

#include <cstdio>

namespace perpos::energy {

EnergyReport account(const DevicePowerModel& model, sim::SimTime duration,
                     sim::SimTime gps_active, std::uint64_t messages_tx,
                     std::uint64_t messages_rx, sim::SimTime accel_active) {
  EnergyReport r;
  r.duration_s = duration.seconds();
  r.gps_j = gps_active.seconds() * model.gps_on_w;
  r.accel_j = accel_active.seconds() * model.accel_on_w;
  r.radio_j = static_cast<double>(messages_tx) * model.radio_tx_j +
              static_cast<double>(messages_rx) * model.radio_rx_j;
  r.idle_j = r.duration_s * model.idle_w;
  r.gps_duty_cycle =
      r.duration_s > 0.0 ? gps_active.seconds() / r.duration_s : 0.0;
  r.messages_tx = messages_tx;
  r.messages_rx = messages_rx;
  return r;
}

std::string format_energy_row(const std::string& label,
                              const EnergyReport& report, double error_mean_m,
                              double error_p95_m) {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "%-26s %9.1f %8.1f %7.1f%% %6llu %6llu %9.1f %8.2f %8.2f",
                label.c_str(), report.total_j(), report.average_mw(),
                report.gps_duty_cycle * 100.0,
                static_cast<unsigned long long>(report.messages_tx),
                static_cast<unsigned long long>(report.messages_rx),
                report.gps_j, error_mean_m, error_p95_m);
  return buf;
}

std::string energy_header() {
  char buf[200];
  std::snprintf(buf, sizeof(buf), "%-26s %9s %8s %8s %6s %6s %9s %8s %8s",
                "strategy", "total_J", "avg_mW", "gps_dc", "tx", "rx",
                "gps_J", "err_m", "err_p95");
  return buf;
}

}  // namespace perpos::energy
