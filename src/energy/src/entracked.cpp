#include "perpos/energy/entracked.hpp"

#include <algorithm>
#include <cmath>

namespace perpos::energy {

void PowerStrategyFeature::request_sleep(double seconds) {
  if (seconds < min_sleep_s_) return;
  if (wake_event_ != 0) scheduler_.cancel(wake_event_);
  sensor_.set_active(false);
  ++sleeps_;
  wake_event_ = scheduler_.schedule_after(
      sim::SimTime::from_seconds(seconds), [this] {
        wake_event_ = 0;
        sensor_.set_active(true);
      });
}

void PowerStrategyFeature::continuous() {
  if (wake_event_ != 0) {
    scheduler_.cancel(wake_event_);
    wake_event_ = 0;
  }
  sensor_.set_active(true);
}

void EnTrackedFeature::apply(const core::DataTree& tree) {
  const auto* fix = tree.root().sample.payload.get<core::PositionFix>();
  if (fix == nullptr) return;
  const geo::LocalPoint local = frame_.to_local(fix->position);

  if (last_fix_ && last_local_) {
    const double dt = (fix->timestamp - last_fix_->timestamp).seconds();
    if (dt > 0.0) {
      const double dist =
          std::hypot(local.x - last_local_->x, local.y - last_local_->y);
      const double inst_speed = dist / dt;
      // EWMA speed estimate, clamped to plausible pedestrian speeds.
      speed_estimate_ = std::min(config_.max_speed_mps,
                                 0.6 * speed_estimate_ + 0.4 * inst_speed);
    }
  }
  last_fix_ = *fix;
  last_local_ = local;

  // Sleep sizing: while the receiver is off for t seconds, the target can
  // move at most v_assumed * t; keep that within the threshold, minus the
  // warmup during which no fixes arrive either.
  double sleep_s = 0.0;
  if (speed_estimate_ <= config_.stationary_speed_mps) {
    sleep_s = config_.stationary_poll_s;
  } else {
    const double v =
        std::max(speed_estimate_ * 1.25, config_.default_speed_mps);
    sleep_s = config_.threshold_m / v - config_.warmup_s;
  }
  if (sleep_s >= config_.min_command_sleep_s && command_sink_) {
    ++commands_;
    command_sink_(sleep_s);
  }
}

}  // namespace perpos::energy
