#pragma once

#include "perpos/sim/clock.hpp"

#include <cstdint>
#include <string>

/// \file power_model.hpp
/// Mobile-device power model for the EnTracked reproduction (paper Sec.
/// 3.3). Constants follow the magnitudes reported for the Nokia N95 class
/// of devices in the EnTracked paper (Kjærgaard et al., MobiSys 2009):
/// the GPS receiver dominates (~0.32 W while on), radio transmissions cost
/// a burst of energy per report, and the idle baseline is small. The
/// evaluated quantity is relative energy saved vs. accuracy lost, which is
/// insensitive to the exact constants.

namespace perpos::energy {

struct DevicePowerModel {
  double gps_on_w = 0.324;     ///< GPS receiver power while acquiring.
  double radio_tx_j = 0.25;    ///< Energy per transmitted report message.
  double radio_rx_j = 0.05;    ///< Energy per received control message.
  double idle_w = 0.035;       ///< Device baseline while tracked.
  double gps_warmup_s = 5.0;   ///< Hot-start time to first fix after wake.
  double accel_on_w = 0.021;   ///< Accelerometer (EnTracked's cheap sensor).
};

/// Energy consumed over one tracking run.
struct EnergyReport {
  double gps_j = 0.0;
  double radio_j = 0.0;
  double idle_j = 0.0;
  double accel_j = 0.0;
  double duration_s = 0.0;
  double gps_duty_cycle = 0.0;  ///< Fraction of time the receiver was on.
  std::uint64_t messages_tx = 0;
  std::uint64_t messages_rx = 0;

  double total_j() const noexcept {
    return gps_j + radio_j + idle_j + accel_j;
  }
  /// Average power in milliwatts — the figure of merit EnTracked reports.
  double average_mw() const noexcept {
    return duration_s > 0.0 ? total_j() / duration_s * 1000.0 : 0.0;
  }
};

/// Integrate the model over a run. `accel_active` is the accelerometer's
/// on-time (zero for GPS-only strategies).
EnergyReport account(const DevicePowerModel& model, sim::SimTime duration,
                     sim::SimTime gps_active, std::uint64_t messages_tx,
                     std::uint64_t messages_rx,
                     sim::SimTime accel_active = sim::SimTime::zero());

/// One formatted result row for the Fig. 7 benchmark table.
std::string format_energy_row(const std::string& label,
                              const EnergyReport& report, double error_mean_m,
                              double error_p95_m);
std::string energy_header();

}  // namespace perpos::energy
