#pragma once

#include "perpos/core/component.hpp"
#include "perpos/energy/entracked.hpp"
#include "perpos/sensors/motion_sensor.hpp"

/// \file motion_gate.hpp
/// The accelerometer-assisted EnTracked variant: a device-side component
/// consuming MotionSample verdicts and gating the GPS receiver through the
/// Power Strategy. While the target is still, the receiver stays off
/// entirely (the accelerometer costs two orders of magnitude less); the
/// first motion verdict wakes it. While moving, duty cycling is left to
/// the server-side EnTracked feature.

namespace perpos::energy {

struct MotionGateConfig {
  /// Consecutive still samples before the receiver is parked.
  int still_samples_to_park = 5;
  /// Sleep issued while parked (renewed as long as stillness persists; a
  /// motion verdict wakes the receiver immediately).
  double park_sleep_s = 120.0;
};

class MotionGateComponent final : public core::ProcessingComponent {
 public:
  /// `strategy` must outlive the component.
  MotionGateComponent(PowerStrategyFeature& strategy,
                      MotionGateConfig config = {})
      : strategy_(strategy), config_(config) {}

  std::string_view kind() const override { return "MotionGate"; }
  std::vector<core::InputRequirement> input_requirements() const override {
    return {core::require<sensors::MotionSample>()};
  }
  std::vector<core::DataSpec> output_capabilities() const override {
    return {};
  }

  void on_input(const core::Sample& sample) override {
    const auto* motion = sample.payload.get<sensors::MotionSample>();
    if (motion == nullptr) return;

    if (motion->moving) {
      still_streak_ = 0;
      if (parked_) {
        parked_ = false;
        ++wakes_;
        strategy_.continuous();  // Motion: receiver on immediately.
      }
      return;
    }
    if (++still_streak_ >= config_.still_samples_to_park) {
      if (!parked_) ++parks_;
      parked_ = true;
      strategy_.request_sleep(config_.park_sleep_s);
    }
  }

  bool parked() const noexcept { return parked_; }
  std::uint64_t parks() const noexcept { return parks_; }
  std::uint64_t wakes() const noexcept { return wakes_; }

 private:
  PowerStrategyFeature& strategy_;
  MotionGateConfig config_;
  int still_streak_ = 0;
  bool parked_ = false;
  std::uint64_t parks_ = 0;
  std::uint64_t wakes_ = 0;
};

}  // namespace perpos::energy
