#pragma once

#include "perpos/core/channel.hpp"
#include "perpos/core/component.hpp"
#include "perpos/core/data_types.hpp"
#include "perpos/core/feature.hpp"
#include "perpos/geo/local_frame.hpp"
#include "perpos/sensors/gps_sensor.hpp"
#include "perpos/sim/scheduler.hpp"

#include <functional>
#include <optional>

/// \file entracked.hpp
/// Reimplementation of the EnTracked power-efficient tracking scheme
/// (Kjærgaard et al., MobiSys 2009) using the PerPos graph abstractions —
/// the paper's example E3 (Sec. 3.3, Fig. 7):
///
///  * SensorWrapper — the device-side pass-through Processing Component
///    that hosts the Power Strategy feature.
///  * PowerStrategyFeature — a Component Feature providing methods for
///    controlling the operation mode of the client-side updating scheme
///    (here: duty-cycling the GPS receiver through timed sleeps).
///  * EnTrackedFeature — a Channel Feature that continuously monitors the
///    output of the Interpreter component and calls the appropriate
///    methods on the Power Strategy feature, based on threshold levels for
///    the maximum distance between two consecutive position updates.
///
/// The server-side feature talks to the device-side strategy through a
/// command sink, which the distributed deployment can route over the
/// simulated network (counting control messages and paying latency).

namespace perpos::energy {

/// Device-side pass-through component: raw GPS data flows through it
/// unchanged; its role is to be the attachment point for the Power
/// Strategy on the mobile device (paper Fig. 7: "Sensor Wrapper").
class SensorWrapper final : public core::ProcessingComponent {
 public:
  std::string_view kind() const override { return "SensorWrapper"; }
  std::vector<core::InputRequirement> input_requirements() const override {
    return {core::require<core::RawFragment>()};
  }
  std::vector<core::DataSpec> output_capabilities() const override {
    return {core::provide<core::RawFragment>()};
  }
  void on_input(const core::Sample& sample) override {
    context().emit(sample.payload);
  }
};

/// Component Feature controlling the GPS duty cycle on the device.
class PowerStrategyFeature final : public core::ComponentFeature {
 public:
  static constexpr const char* kName = "PowerStrategy";

  /// `sensor` is the receiver under control; `scheduler` provides wakeup
  /// timing. Both must outlive the feature.
  PowerStrategyFeature(sensors::GpsSensor& sensor, sim::Scheduler& scheduler)
      : sensor_(sensor), scheduler_(scheduler) {}

  std::string_view name() const override { return kName; }

  /// Switch the receiver off for `seconds`, then wake it again. A new
  /// request supersedes a pending one. Requests below the minimum sleep
  /// are ignored (not worth the warmup cost).
  void request_sleep(double seconds);

  /// Force the receiver on (continuous mode).
  void continuous();

  /// Minimum sleep worth taking (defaults to the warmup time).
  void set_min_sleep_s(double s) noexcept { min_sleep_s_ = s; }

  std::uint64_t sleeps_commanded() const noexcept { return sleeps_; }
  bool sleeping() const noexcept { return !sensor_.active(); }

 private:
  sensors::GpsSensor& sensor_;
  sim::Scheduler& scheduler_;
  sim::Scheduler::EventId wake_event_ = 0;
  double min_sleep_s_ = 5.0;
  std::uint64_t sleeps_ = 0;
};

struct EnTrackedConfig {
  /// Maximum tolerated distance between consecutive reported positions —
  /// the application's error budget (EnTracked's "threshold").
  double threshold_m = 25.0;
  /// Speed assumed when the target's speed is unknown or zero.
  double default_speed_mps = 1.5;
  /// Upper bound on plausible pedestrian speed.
  double max_speed_mps = 3.0;
  /// GPS warmup subtracted from each computed sleep.
  double warmup_s = 5.0;
  /// Movement below this speed counts as stationary.
  double stationary_speed_mps = 0.15;
  /// Sleep used while the target is detected stationary.
  double stationary_poll_s = 30.0;
  /// Commands below this are not worth sending: the device ignores sleeps
  /// shorter than its warmup, and each command costs radio energy.
  double min_command_sleep_s = 5.0;
};

/// Server-side controller as a Channel Feature: monitors interpreted
/// positions, estimates speed, and commands sleeps sized so the target
/// cannot exceed the error threshold while the receiver is off.
class EnTrackedFeature final : public core::ChannelFeature {
 public:
  /// Commands are delivered through `command_sink(seconds)`; pass a sink
  /// that forwards to PowerStrategyFeature::request_sleep — directly for a
  /// single-host graph or via the simulated network for the distributed
  /// deployment.
  EnTrackedFeature(EnTrackedConfig config, const geo::LocalFrame& frame,
                   std::function<void(double)> command_sink)
      : config_(config), frame_(frame), command_sink_(std::move(command_sink)) {}

  std::string_view name() const override { return "EnTracked"; }

  void apply(const core::DataTree& tree) override;

  double estimated_speed_mps() const noexcept { return speed_estimate_; }
  std::uint64_t commands_sent() const noexcept { return commands_; }
  const EnTrackedConfig& config() const noexcept { return config_; }

 private:
  EnTrackedConfig config_;
  const geo::LocalFrame& frame_;
  std::function<void(double)> command_sink_;
  std::optional<core::PositionFix> last_fix_;
  std::optional<geo::LocalPoint> last_local_;
  double speed_estimate_ = 0.0;
  std::uint64_t commands_ = 0;
};

}  // namespace perpos::energy
