#pragma once

#include "perpos/geo/coordinates.hpp"

/// \file distance.hpp
/// Great-circle and planar distance computations.

namespace perpos::geo {

/// Great-circle distance between two geodetic points (haversine formula on
/// the WGS84 mean sphere). Accurate to ~0.5% which is far below positioning
/// error for the distances the middleware handles.
double haversine_m(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Fast equirectangular-projection distance approximation; adequate for
/// distances under a few kilometres (EnTracked threshold checks).
double equirectangular_m(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Initial bearing from `a` to `b` in degrees clockwise from true north,
/// in [0, 360).
double initial_bearing_deg(const GeoPoint& a, const GeoPoint& b) noexcept;

/// The point reached from `start` travelling `distance_m` metres along the
/// great circle with the given initial bearing. Altitude is preserved.
GeoPoint destination_point(const GeoPoint& start, double bearing_deg,
                           double distance_m) noexcept;

/// Euclidean distance between two building-local points.
double distance_m(const LocalPoint& a, const LocalPoint& b) noexcept;

/// Euclidean distance between two ENU points (3D).
double distance_m(const EnuPoint& a, const EnuPoint& b) noexcept;

}  // namespace perpos::geo
