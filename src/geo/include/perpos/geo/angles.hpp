#pragma once

#include <cmath>
#include <numbers>

/// \file angles.hpp
/// Angle conversion and normalization helpers used throughout the geodesy
/// substrate. All public geodetic interfaces take degrees; all internal
/// trigonometry is done in radians.

namespace perpos::geo {

/// Convert degrees to radians.
constexpr double deg2rad(double deg) noexcept {
  return deg * std::numbers::pi / 180.0;
}

/// Convert radians to degrees.
constexpr double rad2deg(double rad) noexcept {
  return rad * 180.0 / std::numbers::pi;
}

/// Normalize an angle in degrees to the half-open interval [0, 360).
double normalize_deg_0_360(double deg) noexcept;

/// Normalize an angle in degrees to the half-open interval [-180, 180).
double normalize_deg_pm180(double deg) noexcept;

/// Normalize an angle in radians to [-pi, pi).
double normalize_rad_pm_pi(double rad) noexcept;

/// Smallest absolute angular difference between two bearings, in degrees,
/// in the range [0, 180].
double angular_difference_deg(double a, double b) noexcept;

}  // namespace perpos::geo
