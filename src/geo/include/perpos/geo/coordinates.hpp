#pragma once

#include <iosfwd>
#include <string>

/// \file coordinates.hpp
/// Core coordinate types for the PerPos geodesy substrate.
///
/// Three coordinate systems appear in the PerPos positioning processes
/// (paper Fig. 1): raw sensor data in device-local form, WGS84 geodetic
/// positions produced by the GPS interpreter, and building-local coordinate
/// systems used by the indoor WiFi positioning system. This header defines
/// value types for all of them plus the Earth-centred Earth-fixed (ECEF)
/// intermediate used for conversion.

namespace perpos::geo {

/// WGS84 ellipsoid constants.
struct Wgs84 {
  static constexpr double kSemiMajorAxisM = 6378137.0;          ///< a
  static constexpr double kFlattening = 1.0 / 298.257223563;    ///< f
  static constexpr double kSemiMinorAxisM =
      kSemiMajorAxisM * (1.0 - kFlattening);                    ///< b
  /// First eccentricity squared, e^2 = f(2-f).
  static constexpr double kEccSq = kFlattening * (2.0 - kFlattening);
  /// Mean Earth radius used by spherical approximations (haversine).
  static constexpr double kMeanRadiusM = 6371008.8;
};

/// A geodetic position on the WGS84 ellipsoid.
///
/// Latitude and longitude are in decimal degrees; altitude is metres above
/// the ellipsoid. This is the "technology independent format" the paper's
/// Positioning Layer delivers.
struct GeoPoint {
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;
  double altitude_m = 0.0;

  friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

/// Earth-centred Earth-fixed Cartesian coordinates in metres.
struct EcefPoint {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend bool operator==(const EcefPoint&, const EcefPoint&) = default;
};

/// East-North-Up Cartesian coordinates (metres) relative to a LocalFrame
/// origin. Indoor positioning and the particle filter operate in this frame.
struct EnuPoint {
  double east = 0.0;
  double north = 0.0;
  double up = 0.0;

  friend bool operator==(const EnuPoint&, const EnuPoint&) = default;
};

/// A 2D point in a building-local metric coordinate system (metres).
/// The `up` component of an EnuPoint is dropped; floors are modelled
/// explicitly by the location model substrate.
struct LocalPoint {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const LocalPoint&, const LocalPoint&) = default;
};

/// Convert a geodetic WGS84 position to ECEF.
EcefPoint geodetic_to_ecef(const GeoPoint& p) noexcept;

/// Convert an ECEF position to geodetic WGS84 (Bowring's iterative method,
/// converges to sub-millimetre in a handful of iterations).
GeoPoint ecef_to_geodetic(const EcefPoint& p) noexcept;

/// True if latitude is within [-90, 90] and longitude within [-180, 180].
bool is_valid(const GeoPoint& p) noexcept;

/// Render as "lat,lon[,alt]" with 7 decimal digits (~1 cm resolution).
std::string to_string(const GeoPoint& p);
std::string to_string(const EnuPoint& p);
std::string to_string(const LocalPoint& p);

std::ostream& operator<<(std::ostream& os, const GeoPoint& p);
std::ostream& operator<<(std::ostream& os, const EnuPoint& p);
std::ostream& operator<<(std::ostream& os, const LocalPoint& p);

}  // namespace perpos::geo
