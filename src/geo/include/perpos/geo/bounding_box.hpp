#pragma once

#include "perpos/geo/coordinates.hpp"

#include <vector>

/// \file bounding_box.hpp
/// Axis-aligned bounding boxes in building-local coordinates, used by the
/// location model (room extents) and by proximity queries.

namespace perpos::geo {

/// Axis-aligned rectangle in building-local metres.
struct LocalBox {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  /// True if the box has non-negative extent in both axes.
  bool valid() const noexcept { return max_x >= min_x && max_y >= min_y; }

  double width() const noexcept { return max_x - min_x; }
  double height() const noexcept { return max_y - min_y; }
  double area() const noexcept { return width() * height(); }
  LocalPoint center() const noexcept {
    return {(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  }

  /// Closed containment test.
  bool contains(const LocalPoint& p) const noexcept;

  /// True if the boxes share any point (closed boxes).
  bool intersects(const LocalBox& other) const noexcept;

  /// The smallest box containing both.
  LocalBox united(const LocalBox& other) const noexcept;

  /// Grow the box by `margin` metres on every side.
  LocalBox inflated(double margin) const noexcept;

  /// Euclidean distance from `p` to the box (0 when inside).
  double distance_to(const LocalPoint& p) const noexcept;

  friend bool operator==(const LocalBox&, const LocalBox&) = default;
};

/// The tightest box enclosing all points; an invalid (inverted) box if the
/// input is empty.
LocalBox bounding_box(const std::vector<LocalPoint>& points) noexcept;

}  // namespace perpos::geo
