#pragma once

#include "perpos/geo/coordinates.hpp"

/// \file local_frame.hpp
/// A local tangent-plane (East-North-Up) frame anchored at a geodetic
/// origin. PerPos uses one frame per building: the WiFi positioning system
/// and the particle filter work in building-local metres while the
/// Positioning Layer exposes WGS84; the frame is the bridge between them
/// (paper Fig. 1: "Raw data (local coordinate system)" vs "Positions
/// (WGS84)").

namespace perpos::geo {

class LocalFrame {
 public:
  /// Constructs a frame whose ENU origin is `origin`. The frame is valid
  /// for points within a few kilometres of the origin.
  explicit LocalFrame(const GeoPoint& origin) noexcept;

  const GeoPoint& origin() const noexcept { return origin_; }

  /// Geodetic -> ENU (exact, via ECEF rotation).
  EnuPoint to_enu(const GeoPoint& p) const noexcept;

  /// ENU -> geodetic (exact, via ECEF rotation).
  GeoPoint to_geodetic(const EnuPoint& p) const noexcept;

  /// Geodetic -> building-local 2D (drops the up component).
  LocalPoint to_local(const GeoPoint& p) const noexcept;

  /// Building-local 2D -> geodetic at origin altitude.
  GeoPoint to_geodetic(const LocalPoint& p) const noexcept;

 private:
  GeoPoint origin_;
  EcefPoint origin_ecef_;
  // Rows of the ECEF->ENU rotation matrix.
  double r_east_[3];
  double r_north_[3];
  double r_up_[3];
};

}  // namespace perpos::geo
