#include "perpos/geo/coordinates.hpp"

#include "perpos/geo/angles.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace perpos::geo {

double normalize_deg_0_360(double deg) noexcept {
  double r = std::fmod(deg, 360.0);
  if (r < 0.0) r += 360.0;
  return r;
}

double normalize_deg_pm180(double deg) noexcept {
  double r = normalize_deg_0_360(deg + 180.0);
  return r - 180.0;
}

double normalize_rad_pm_pi(double rad) noexcept {
  return deg2rad(normalize_deg_pm180(rad2deg(rad)));
}

double angular_difference_deg(double a, double b) noexcept {
  double d = std::fabs(normalize_deg_pm180(a - b));
  return d;
}

EcefPoint geodetic_to_ecef(const GeoPoint& p) noexcept {
  const double lat = deg2rad(p.latitude_deg);
  const double lon = deg2rad(p.longitude_deg);
  const double sin_lat = std::sin(lat);
  const double cos_lat = std::cos(lat);
  // Prime vertical radius of curvature.
  const double n =
      Wgs84::kSemiMajorAxisM / std::sqrt(1.0 - Wgs84::kEccSq * sin_lat * sin_lat);
  EcefPoint out;
  out.x = (n + p.altitude_m) * cos_lat * std::cos(lon);
  out.y = (n + p.altitude_m) * cos_lat * std::sin(lon);
  out.z = (n * (1.0 - Wgs84::kEccSq) + p.altitude_m) * sin_lat;
  return out;
}

GeoPoint ecef_to_geodetic(const EcefPoint& p) noexcept {
  const double a = Wgs84::kSemiMajorAxisM;
  const double e2 = Wgs84::kEccSq;
  const double rho = std::hypot(p.x, p.y);

  GeoPoint out;
  out.longitude_deg = rad2deg(std::atan2(p.y, p.x));

  // Iterate latitude; starts from the spherical estimate and converges
  // quadratically — five iterations give sub-millimetre accuracy anywhere.
  double lat = std::atan2(p.z, rho * (1.0 - e2));
  double alt = 0.0;
  for (int i = 0; i < 7; ++i) {
    const double sin_lat = std::sin(lat);
    const double n = a / std::sqrt(1.0 - e2 * sin_lat * sin_lat);
    alt = rho / std::cos(lat) - n;
    lat = std::atan2(p.z, rho * (1.0 - e2 * n / (n + alt)));
  }
  out.latitude_deg = rad2deg(lat);
  out.altitude_m = alt;
  return out;
}

bool is_valid(const GeoPoint& p) noexcept {
  return std::isfinite(p.latitude_deg) && std::isfinite(p.longitude_deg) &&
         std::isfinite(p.altitude_m) && p.latitude_deg >= -90.0 &&
         p.latitude_deg <= 90.0 && p.longitude_deg >= -180.0 &&
         p.longitude_deg <= 180.0;
}

std::string to_string(const GeoPoint& p) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%.7f,%.7f,%.2f", p.latitude_deg,
                p.longitude_deg, p.altitude_m);
  return buf;
}

std::string to_string(const EnuPoint& p) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "E%.3f,N%.3f,U%.3f", p.east, p.north, p.up);
  return buf;
}

std::string to_string(const LocalPoint& p) {
  char buf[60];
  std::snprintf(buf, sizeof(buf), "(%.3f,%.3f)", p.x, p.y);
  return buf;
}

std::ostream& operator<<(std::ostream& os, const GeoPoint& p) {
  return os << to_string(p);
}
std::ostream& operator<<(std::ostream& os, const EnuPoint& p) {
  return os << to_string(p);
}
std::ostream& operator<<(std::ostream& os, const LocalPoint& p) {
  return os << to_string(p);
}

}  // namespace perpos::geo
