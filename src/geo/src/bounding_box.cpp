#include "perpos/geo/bounding_box.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace perpos::geo {

bool LocalBox::contains(const LocalPoint& p) const noexcept {
  return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
}

bool LocalBox::intersects(const LocalBox& other) const noexcept {
  return min_x <= other.max_x && other.min_x <= max_x &&
         min_y <= other.max_y && other.min_y <= max_y;
}

LocalBox LocalBox::united(const LocalBox& other) const noexcept {
  LocalBox out;
  out.min_x = std::min(min_x, other.min_x);
  out.min_y = std::min(min_y, other.min_y);
  out.max_x = std::max(max_x, other.max_x);
  out.max_y = std::max(max_y, other.max_y);
  return out;
}

LocalBox LocalBox::inflated(double margin) const noexcept {
  return {min_x - margin, min_y - margin, max_x + margin, max_y + margin};
}

double LocalBox::distance_to(const LocalPoint& p) const noexcept {
  const double dx = std::max({min_x - p.x, 0.0, p.x - max_x});
  const double dy = std::max({min_y - p.y, 0.0, p.y - max_y});
  return std::hypot(dx, dy);
}

LocalBox bounding_box(const std::vector<LocalPoint>& points) noexcept {
  LocalBox out;
  out.min_x = out.min_y = std::numeric_limits<double>::infinity();
  out.max_x = out.max_y = -std::numeric_limits<double>::infinity();
  for (const LocalPoint& p : points) {
    out.min_x = std::min(out.min_x, p.x);
    out.min_y = std::min(out.min_y, p.y);
    out.max_x = std::max(out.max_x, p.x);
    out.max_y = std::max(out.max_y, p.y);
  }
  return out;
}

}  // namespace perpos::geo
