#include "perpos/geo/local_frame.hpp"

#include "perpos/geo/angles.hpp"

#include <cmath>

namespace perpos::geo {

LocalFrame::LocalFrame(const GeoPoint& origin) noexcept
    : origin_(origin), origin_ecef_(geodetic_to_ecef(origin)) {
  const double lat = deg2rad(origin.latitude_deg);
  const double lon = deg2rad(origin.longitude_deg);
  const double sl = std::sin(lat), cl = std::cos(lat);
  const double so = std::sin(lon), co = std::cos(lon);
  r_east_[0] = -so;
  r_east_[1] = co;
  r_east_[2] = 0.0;
  r_north_[0] = -sl * co;
  r_north_[1] = -sl * so;
  r_north_[2] = cl;
  r_up_[0] = cl * co;
  r_up_[1] = cl * so;
  r_up_[2] = sl;
}

EnuPoint LocalFrame::to_enu(const GeoPoint& p) const noexcept {
  const EcefPoint e = geodetic_to_ecef(p);
  const double dx = e.x - origin_ecef_.x;
  const double dy = e.y - origin_ecef_.y;
  const double dz = e.z - origin_ecef_.z;
  EnuPoint out;
  out.east = r_east_[0] * dx + r_east_[1] * dy + r_east_[2] * dz;
  out.north = r_north_[0] * dx + r_north_[1] * dy + r_north_[2] * dz;
  out.up = r_up_[0] * dx + r_up_[1] * dy + r_up_[2] * dz;
  return out;
}

GeoPoint LocalFrame::to_geodetic(const EnuPoint& p) const noexcept {
  // Transpose of the ENU rotation applied to the local vector.
  EcefPoint e;
  e.x = origin_ecef_.x + r_east_[0] * p.east + r_north_[0] * p.north +
        r_up_[0] * p.up;
  e.y = origin_ecef_.y + r_east_[1] * p.east + r_north_[1] * p.north +
        r_up_[1] * p.up;
  e.z = origin_ecef_.z + r_east_[2] * p.east + r_north_[2] * p.north +
        r_up_[2] * p.up;
  return ecef_to_geodetic(e);
}

LocalPoint LocalFrame::to_local(const GeoPoint& p) const noexcept {
  const EnuPoint e = to_enu(p);
  return {e.east, e.north};
}

GeoPoint LocalFrame::to_geodetic(const LocalPoint& p) const noexcept {
  return to_geodetic(EnuPoint{p.x, p.y, 0.0});
}

}  // namespace perpos::geo
