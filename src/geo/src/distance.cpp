#include "perpos/geo/distance.hpp"

#include "perpos/geo/angles.hpp"

#include <algorithm>
#include <cmath>

namespace perpos::geo {

double haversine_m(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = deg2rad(a.latitude_deg);
  const double lat2 = deg2rad(b.latitude_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg2rad(b.longitude_deg - a.longitude_deg);
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  const double c = 2.0 * std::asin(std::min(1.0, std::sqrt(h)));
  return Wgs84::kMeanRadiusM * c;
}

double equirectangular_m(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double mean_lat = deg2rad((a.latitude_deg + b.latitude_deg) / 2.0);
  const double dx =
      deg2rad(b.longitude_deg - a.longitude_deg) * std::cos(mean_lat);
  const double dy = deg2rad(b.latitude_deg - a.latitude_deg);
  return Wgs84::kMeanRadiusM * std::hypot(dx, dy);
}

double initial_bearing_deg(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = deg2rad(a.latitude_deg);
  const double lat2 = deg2rad(b.latitude_deg);
  const double dlon = deg2rad(b.longitude_deg - a.longitude_deg);
  const double y = std::sin(dlon) * std::cos(lat2);
  const double x = std::cos(lat1) * std::sin(lat2) -
                   std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  return normalize_deg_0_360(rad2deg(std::atan2(y, x)));
}

GeoPoint destination_point(const GeoPoint& start, double bearing_deg,
                           double distance_m) noexcept {
  const double delta = distance_m / Wgs84::kMeanRadiusM;
  const double theta = deg2rad(bearing_deg);
  const double lat1 = deg2rad(start.latitude_deg);
  const double lon1 = deg2rad(start.longitude_deg);

  const double lat2 = std::asin(std::sin(lat1) * std::cos(delta) +
                                std::cos(lat1) * std::sin(delta) *
                                    std::cos(theta));
  const double lon2 =
      lon1 + std::atan2(std::sin(theta) * std::sin(delta) * std::cos(lat1),
                        std::cos(delta) - std::sin(lat1) * std::sin(lat2));
  GeoPoint out;
  out.latitude_deg = rad2deg(lat2);
  out.longitude_deg = normalize_deg_pm180(rad2deg(lon2));
  out.altitude_m = start.altitude_m;
  return out;
}

double distance_m(const LocalPoint& a, const LocalPoint& b) noexcept {
  return std::hypot(b.x - a.x, b.y - a.y);
}

double distance_m(const EnuPoint& a, const EnuPoint& b) noexcept {
  const double dx = b.east - a.east;
  const double dy = b.north - a.north;
  const double dz = b.up - a.up;
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

}  // namespace perpos::geo
