#pragma once

#include "perpos/core/graph.hpp"
#include "perpos/verify/incremental.hpp"

#include <cstdint>
#include <string>

/// \file graph_plan.hpp
/// Verify-then-freeze policy for compiled execution plans.
///
/// The core freeze seam (ProcessingGraph::freeze_plan / thaw_plan) is
/// mechanism only: it lowers whatever structure the graph currently has and
/// thaws on any mutation. GraphPlan is the policy layer that mirrors
/// assemble_verified for the runtime case — a graph is only frozen after
/// the static analyzer (PPV structural rules plus the PPQ quantitative
/// budget rules) reports a clean bill, and once frozen the plan follows the
/// freeze→thaw→re-freeze lifecycle automatically: every GraphMutation (a
/// PSL edit, a LiveReconfigurator hot-swap commit or rollback, a tee
/// promotion — they all reach the graph as mutations) thaws the core plan,
/// and GraphPlan re-verifies incrementally (O(delta) via
/// IncrementalVerifier) and re-freezes when the result is still clean.
///
/// The PPS-series runtime sanitizer and the flight recorder keep firing on
/// the frozen path; timing / tracing / latency observability block freezing
/// (see ProcessingGraph::freeze_blocker), in which case freeze() reports
/// the blocker instead of throwing.
///
/// The lifecycle invariant — a frozen plan never outlives a
/// thaw-triggering mutation, so dispatch never runs a plan lowered from
/// an older graph version — is checked exhaustively by the bounded model
/// checker (PPM004; perpos/verify/protocol_models.hpp interleaves
/// freeze/thaw, all three mutation kinds, and dispatches). Changes to the
/// thaw-on-mutation or armed-refreeze behaviour here must keep the model
/// in lockstep.

namespace perpos::plan {

struct PlanOptions {
  /// Re-freeze automatically after every mutation while the policy target
  /// is "frozen" (i.e. after a successful freeze() that no explicit thaw()
  /// has revoked). When off, mutations still thaw the core plan — the core
  /// guarantees that unconditionally — but re-freezing is manual.
  bool auto_refreeze = true;
  /// Analyzer options for the freeze gate (rule toggles, budget defaults).
  verify::Options verify_options{};
};

/// Outcome of a freeze attempt.
struct FreezeResult {
  bool frozen = false;
  /// Why the freeze was refused: a core blocker (e.g. tracing enabled) or
  /// "verification failed" with the analyzer report attached. Empty on
  /// success.
  std::string reason;
  verify::Report report;
};

/// Lifecycle counters, for introspection and tests.
struct PlanStats {
  std::uint64_t freezes = 0;           ///< Successful freezes (incl. re-freezes).
  std::uint64_t freeze_rejections = 0; ///< freeze() calls that were refused.
  std::uint64_t thaws = 0;             ///< Explicit thaw() calls that thawed.
  std::uint64_t auto_thaws = 0;        ///< Mutations observed while armed (each
                                       ///< thawed the plan if it was frozen).
  std::uint64_t refreeze_failures = 0; ///< Auto re-freezes refused (dirty report
                                       ///< or core blocker); plan stays thawed.
};

class GraphPlan {
 public:
  /// Subscribes to `graph`'s mutation observers; the graph must outlive
  /// this object. Drive it from the thread that mutates the graph (same
  /// contract as IncrementalVerifier).
  explicit GraphPlan(core::ProcessingGraph& graph, PlanOptions options = {});
  ~GraphPlan();

  GraphPlan(const GraphPlan&) = delete;
  GraphPlan& operator=(const GraphPlan&) = delete;

  /// Verify (incrementally) and freeze on a clean report. On refusal the
  /// graph simply stays interpreted — translucency is never at risk.
  /// A successful freeze arms auto re-freezing (see PlanOptions).
  FreezeResult freeze();

  /// Thaw and disarm auto re-freezing. No-op when already interpreted.
  void thaw();

  /// Whether the graph is executing the compiled plan right now.
  bool frozen() const noexcept { return graph_.frozen(); }

  /// Whether a successful freeze() armed the auto re-freeze policy (true
  /// even while momentarily thawed between a mutation and its re-freeze
  /// failure).
  bool armed() const noexcept { return want_frozen_; }

  const PlanStats& stats() const noexcept { return stats_; }

  /// The freeze gate's verifier, e.g. to annotate budgets (PPQ) without
  /// dropping its cache.
  verify::IncrementalVerifier& verifier() noexcept { return verifier_; }

 private:
  void on_mutation();

  core::ProcessingGraph& graph_;
  PlanOptions options_;
  verify::IncrementalVerifier verifier_;
  PlanStats stats_;
  std::size_t observer_token_ = 0;
  bool want_frozen_ = false;
  /// Guards against re-entrant mutation notifications while re-freezing
  /// (freeze_plan itself never mutates, but defensive anyway).
  bool in_refreeze_ = false;
};

}  // namespace perpos::plan
