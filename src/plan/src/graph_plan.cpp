#include "perpos/plan/graph_plan.hpp"

namespace perpos::plan {

namespace {

std::string describe_failure(const verify::Report& report) {
  std::string out = "verification failed: " +
                    std::to_string(report.errors()) + " error(s)";
  for (const verify::Diagnostic& d : report.diagnostics) {
    if (d.severity != verify::Severity::kError) continue;
    out += "; first: [" + d.rule_id + "] " + d.message;
    break;
  }
  return out;
}

}  // namespace

GraphPlan::GraphPlan(core::ProcessingGraph& graph, PlanOptions options)
    : graph_(graph),
      options_(std::move(options)),
      verifier_(graph, options_.verify_options) {
  // Registered after verifier_'s own observer (member order), so by the
  // time on_mutation runs the dirty set already reflects the mutation and
  // recheck() analyzes exactly the delta.
  observer_token_ = graph_.add_mutation_observer(
      [this](const core::GraphMutation&) { on_mutation(); });
}

GraphPlan::~GraphPlan() { graph_.remove_mutation_observer(observer_token_); }

FreezeResult GraphPlan::freeze() {
  FreezeResult result;
  if (const char* blocker = graph_.freeze_blocker()) {
    result.reason = blocker;
    ++stats_.freeze_rejections;
    return result;
  }
  result.report = verifier_.recheck();
  if (!result.report.ok()) {
    result.reason = describe_failure(result.report);
    ++stats_.freeze_rejections;
    return result;
  }
  graph_.freeze_plan();
  want_frozen_ = true;
  ++stats_.freezes;
  result.frozen = true;
  return result;
}

void GraphPlan::thaw() {
  want_frozen_ = false;
  if (!graph_.frozen()) return;
  graph_.thaw_plan();
  ++stats_.thaws;
}

void GraphPlan::on_mutation() {
  // The core thawed before any observer ran (mutations always thaw); this
  // callback only decides whether to re-freeze.
  if (!want_frozen_ || in_refreeze_) return;
  ++stats_.auto_thaws;
  if (!options_.auto_refreeze) return;
  in_refreeze_ = true;
  try {
    if (graph_.freeze_blocker() == nullptr && verifier_.recheck().ok()) {
      graph_.freeze_plan();
      ++stats_.freezes;
    } else {
      // Stay interpreted; the policy stays armed, so a later mutation that
      // restores a clean graph re-freezes again.
      ++stats_.refreeze_failures;
    }
  } catch (...) {
    in_refreeze_ = false;
    throw;
  }
  in_refreeze_ = false;
}

}  // namespace perpos::plan
