#include "perpos/exec/engine.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace perpos::exec {

namespace {
/// A hot lane hands its slot back to the ready queue after this many tasks
/// so one chatty graph cannot starve the others of a worker.
constexpr std::size_t kLaneBatch = 128;

constexpr std::uint32_t kNoProfilerSlot = 0xffffffffu;

/// Bound an error message to a metrics-label-safe form: printable ASCII
/// only, capped length, so a thrown what() can never explode label
/// cardinality via embedded addresses/newlines or unbounded text.
std::string labels_safe_error(std::string_view message) {
  std::string out;
  const std::size_t n = message.size() < 64 ? message.size() : 64;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const char c = message[i];
    out += (c >= 0x20 && c < 0x7f && c != '"' && c != '\\') ? c : '_';
  }
  if (message.size() > 64) out += "...";
  return out;
}

std::string describe_current_exception() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

struct ExecutionEngine::Lane {
  explicit Lane(std::string n) : name(std::move(n)) {}
  const std::string name;
  std::mutex mutex;
  std::deque<Task> queue;
  /// True while the lane sits in the ready queue or a worker drains it;
  /// guarantees at most one worker runs this lane at a time (affinity).
  bool scheduled = false;
  /// Watermark edge detector: set when the queue grew past the limit,
  /// cleared when it drained back — one callback per crossing, not per
  /// post. Guarded by `mutex`.
  bool above_watermark = false;
  /// Fenced: drain() parks at the next pop and post_to() holds new tasks
  /// without scheduling; `held` counts queued tasks excluded from the
  /// engine's `outstanding` (they re-enter it at unfence()). Guarded by
  /// `mutex`; `fence_cv` signals "no worker drains this lane anymore".
  bool fenced = false;
  std::size_t held = 0;
  std::condition_variable fence_cv;
  /// Profiler slot; written only while the engine is idle (enable_profiler)
  /// or under lanes_mutex (create_lane).
  std::uint32_t prof_slot = kNoProfilerSlot;
};

struct ExecutionEngine::Impl {
  // Lane registry. unique_ptr gives stable addresses; the registry mutex
  // is held only for create/lookup, never while running tasks.
  mutable std::mutex lanes_mutex;
  std::vector<std::unique_ptr<Lane>> lanes;

  // Ready queue of lanes with work, shared by all workers.
  std::mutex ready_mutex;
  std::condition_variable ready_cv;
  std::deque<Lane*> ready;
  bool stop = false;

  // Idle barrier: posted-but-unfinished task count.
  std::atomic<std::uint64_t> outstanding{0};
  std::mutex idle_mutex;
  std::condition_variable idle_cv;

  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> failed{0};

  // First exception thrown by a task since the last run_until_idle().
  // Captured in drain() so a throwing task can neither abort the process
  // (std::terminate on a worker thread) nor wedge its lane; rethrown to
  // the caller at the next idle point.
  std::mutex error_mutex;
  std::exception_ptr first_error;

  // Queue-depth watermark (set while idle; read from posting threads).
  std::size_t watermark_limit = 0;
  std::function<void(const std::string&, std::size_t)> watermark_callback;

  // Optional metrics (set while idle; read from workers).
  obs::MetricsRegistry* registry = nullptr;
  obs::Counter* tasks_posted = nullptr;
  obs::Counter* tasks_executed = nullptr;
  obs::Counter* tasks_failed = nullptr;
  obs::Gauge* queue_depth = nullptr;
  obs::Gauge* lanes_gauge = nullptr;

  // Optional profiler (set while idle; read from workers and posters).
  obs::EngineProfiler* profiler = nullptr;

  // Optional flight recorder. The engine writes rare events (task
  // failures, watermark crossings) to one shared "engine" ring; rec_mutex
  // serializes those writers to honor the ring's single-producer contract.
  obs::FlightRecorder* recorder = nullptr;
  std::uint32_t rec_lane = 0;
  std::mutex rec_mutex;

  std::vector<std::thread> threads;

  /// Record an engine-level event into the shared recorder ring (no-op
  /// without a recorder). Rare paths only — takes rec_mutex.
  void record_engine_event(obs::FlightEvent event) {
    obs::FlightRecorder* rec = recorder;
    if (rec == nullptr) return;
    std::lock_guard<std::mutex> lock(rec_mutex);
    rec->record(rec_lane, event);
  }

  /// Failure bookkeeping shared by drain(): counters, error capture,
  /// flight-recorder event, and (for the first failure of an idle cycle)
  /// a labels-safe error metric plus a black-box dump trigger.
  void on_task_failure(Lane* lane) {
    failed.fetch_add(1, std::memory_order_relaxed);
    if (tasks_failed != nullptr) tasks_failed->inc();
    const std::string message = describe_current_exception();
    bool is_first = false;
    {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) {
        first_error = std::current_exception();
        is_first = true;
      }
    }
    if (recorder != nullptr) {
      obs::FlightEvent event;
      event.type = obs::FlightEventType::kTaskFailed;
      event.a = lane->prof_slot;
      event.set_detail(lane->name.empty() ? message
                                          : lane->name + ": " + message);
      record_engine_event(event);
    }
    if (!is_first) return;
    if (registry != nullptr) {
      registry
          ->counter("perpos_exec_task_errors_total",
                    {{"lane", labels_safe_error(lane->name)},
                     {"error", labels_safe_error(message)}})
          ->inc();
    }
    if (recorder != nullptr) recorder->trigger("task_failed: " + message);
  }

  void enqueue_ready(Lane* lane) {
    {
      std::lock_guard<std::mutex> lock(ready_mutex);
      ready.push_back(lane);
    }
    ready_cv.notify_one();
  }

  /// Run queued tasks of `lane` until its queue is empty (or the fairness
  /// batch is used up, in which case the lane re-enters the ready queue).
  /// `worker` attributes the batch in the profiler (pool index, or the
  /// inline slot for caller-thread drains).
  void drain(Lane* lane, std::uint32_t worker) {
    // Profile at batch granularity: two clock reads per drained batch,
    // not per task — and none at all when no profiler is attached.
    obs::EngineProfiler* const prof = profiler;
    const std::uint64_t t0 = prof != nullptr ? prof->now_ns() : 0;
    std::size_t ran = 0;
    while (ran < kLaneBatch) {
      Task task;
      {
        std::lock_guard<std::mutex> lock(lane->mutex);
        if (lane->fenced) {
          // Park at the fence: the in-flight task (if any) already
          // finished, queued tasks stay put. fence() waits for exactly
          // this hand-over.
          lane->scheduled = false;
          lane->fence_cv.notify_all();
          break;
        }
        if (lane->queue.empty()) {
          lane->scheduled = false;
          break;
        }
        task = std::move(lane->queue.front());
        lane->queue.pop_front();
        if (lane->above_watermark && lane->queue.size() <= watermark_limit) {
          lane->above_watermark = false;  // Re-arm the crossing detector.
        }
      }
      // Graph components may throw from on_input; a lane task is therefore
      // allowed to throw. Capture the exception (first one wins — later
      // ones are counted but dropped) and keep the lane draining, then run
      // the finish bookkeeping either way so run_until_idle() cannot hang
      // on a task that errored. The error is stored before finish_many() so
      // an idle waiter always observes it.
      try {
        task();
      } catch (...) {
        on_task_failure(lane);
      }
      ++ran;
      executed.fetch_add(1, std::memory_order_relaxed);
      if (tasks_executed != nullptr) tasks_executed->inc();
      if (queue_depth != nullptr) queue_depth->add(-1.0);
    }
    if (prof != nullptr && ran != 0) {
      prof->on_drain(lane->prof_slot, worker, ran, prof->now_ns() - t0);
    }
    // Batch exhausted with work (possibly) left: requeue instead of
    // resetting `scheduled`, keeping the at-most-one-worker guarantee —
    // unless a fence arrived mid-batch, in which case park here so the
    // fencer need not wait for another worker to pick the lane up.
    if (ran == kLaneBatch) {
      bool requeue = true;
      {
        std::lock_guard<std::mutex> lock(lane->mutex);
        if (lane->fenced) {
          lane->scheduled = false;
          lane->fence_cv.notify_all();
          requeue = false;
        }
      }
      if (requeue) enqueue_ready(lane);
    }
    // Retire the whole batch at once, *after* the profiler accounting: a
    // run_until_idle() waiter that wakes on outstanding==0 then observes
    // the batch's profile. (Deferring decrements is safe — tasks posted by
    // tasks only ever add to `outstanding`.)
    if (ran != 0) finish_many(ran);
  }

  void finish_many(std::uint64_t n) {
    if (outstanding.fetch_sub(n, std::memory_order_acq_rel) == n) {
      // Lock before notifying so the wakeup cannot slip between a waiter's
      // predicate check and its wait.
      std::lock_guard<std::mutex> lock(idle_mutex);
      idle_cv.notify_all();
    }
  }

  /// Rethrow (and clear) the first task exception captured since the last
  /// call. Called from run_until_idle() once the engine is idle.
  void rethrow_pending_error() {
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> lock(error_mutex);
      error = std::exchange(first_error, nullptr);
    }
    if (error) std::rethrow_exception(error);
  }

  void worker_loop(std::uint32_t index) {
    for (;;) {
      Lane* lane = nullptr;
      bool waited = false;
      {
        std::unique_lock<std::mutex> lock(ready_mutex);
        while (!stop && ready.empty()) {
          waited = true;
          ready_cv.wait(lock);
        }
        if (ready.empty()) return;  // stop && drained
        lane = ready.front();
        ready.pop_front();
      }
      obs::EngineProfiler* const prof = profiler;
      if (prof != nullptr && waited) prof->on_idle_wakeup(index);
      drain(lane, index);
    }
  }
};

ExecutionEngine::ExecutionEngine(std::size_t workers)
    : worker_count_(workers), impl_(std::make_unique<Impl>()) {
  impl_->threads.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    impl_->threads.emplace_back(
        [this, i] { impl_->worker_loop(static_cast<std::uint32_t>(i)); });
  }
}

ExecutionEngine::~ExecutionEngine() {
  {
    std::lock_guard<std::mutex> lock(impl_->ready_mutex);
    impl_->stop = true;
  }
  impl_->ready_cv.notify_all();
  for (std::thread& t : impl_->threads) t.join();
}

namespace {

std::string lane_display_name(const std::string& name, std::size_t index) {
  return name.empty() ? "lane-" + std::to_string(index) : name;
}

}  // namespace

LaneId ExecutionEngine::create_lane(std::string name) {
  std::lock_guard<std::mutex> lock(impl_->lanes_mutex);
  impl_->lanes.push_back(std::make_unique<Lane>(std::move(name)));
  const std::size_t index = impl_->lanes.size() - 1;
  if (impl_->profiler != nullptr) {
    impl_->lanes.back()->prof_slot = impl_->profiler->add_lane(
        lane_display_name(impl_->lanes.back()->name, index));
  }
  if (impl_->lanes_gauge != nullptr) {
    impl_->lanes_gauge->set(static_cast<double>(impl_->lanes.size()));
  }
  return static_cast<LaneId>(index);
}

std::size_t ExecutionEngine::lane_count() const {
  std::lock_guard<std::mutex> lock(impl_->lanes_mutex);
  return impl_->lanes.size();
}

ExecutionEngine::Lane* ExecutionEngine::lane_ptr(LaneId id) const {
  std::lock_guard<std::mutex> lock(impl_->lanes_mutex);
  if (id >= impl_->lanes.size()) {
    throw std::invalid_argument("ExecutionEngine: unknown lane");
  }
  return impl_->lanes[id].get();
}

void ExecutionEngine::post_to(Lane& lane, Task&& task) {
  if (impl_->tasks_posted != nullptr) impl_->tasks_posted->inc();
  if (impl_->queue_depth != nullptr) impl_->queue_depth->add(1.0);
  bool need_schedule = false;
  std::size_t watermark_depth = 0;
  std::size_t depth_after = 0;
  {
    std::lock_guard<std::mutex> lock(lane.mutex);
    // Posts to a fenced lane are held: queued, but neither scheduled nor
    // counted toward `outstanding`, so run_until_idle() stays fence-aware
    // (it waits only for runnable work). unfence() re-admits them.
    if (lane.fenced) {
      ++lane.held;
    } else {
      impl_->outstanding.fetch_add(1, std::memory_order_acq_rel);
    }
    lane.queue.push_back(std::move(task));
    depth_after = lane.queue.size();
    if (impl_->watermark_limit != 0 && !lane.above_watermark &&
        depth_after > impl_->watermark_limit) {
      lane.above_watermark = true;
      watermark_depth = depth_after;
    }
    if (!lane.fenced && !lane.scheduled) {
      lane.scheduled = true;
      need_schedule = true;
    }
  }
  if (need_schedule) impl_->enqueue_ready(&lane);
  if (obs::EngineProfiler* const prof = impl_->profiler) {
    prof->on_queue_depth(lane.prof_slot, depth_after);
  }
  if (watermark_depth != 0) {
    if (impl_->recorder != nullptr) {
      obs::FlightEvent event;
      event.type = obs::FlightEventType::kWatermark;
      event.a = watermark_depth;
      event.set_detail(lane.name);
      impl_->record_engine_event(event);
    }
    if (impl_->watermark_callback) {
      // Outside the lane lock: the callback may inspect engine state.
      impl_->watermark_callback(lane.name, watermark_depth);
    }
  }
}

void ExecutionEngine::post(LaneId lane, Task task) {
  post_to(*lane_ptr(lane), std::move(task));
}

std::function<void(Task)> ExecutionEngine::executor(LaneId lane) {
  Lane* l = lane_ptr(lane);  // resolve (and validate) once
  return [this, l](Task task) { post_to(*l, std::move(task)); };
}

void ExecutionEngine::fence(LaneId lane) {
  Lane* l = lane_ptr(lane);
  {
    std::lock_guard<std::mutex> lock(l->mutex);
    if (l->fenced) return;
    l->fenced = true;
  }
  // If the lane is parked in the ready queue (scheduled, but no worker
  // picked it up yet), pull it out so no drain ever starts; a worker
  // already draining it parks at its next pop instead.
  bool descheduled = false;
  {
    std::lock_guard<std::mutex> lock(impl_->ready_mutex);
    auto it = std::find(impl_->ready.begin(), impl_->ready.end(), l);
    if (it != impl_->ready.end()) {
      impl_->ready.erase(it);
      descheduled = true;
    }
  }
  std::size_t backlog = 0;
  {
    std::unique_lock<std::mutex> lock(l->mutex);
    if (descheduled) l->scheduled = false;
    // The quiesce point: once `scheduled` drops, the at-most-one-worker
    // guarantee means no task of this lane is executing and none will
    // start until unfence().
    l->fence_cv.wait(lock, [&] { return !l->scheduled; });
    // Move the queued backlog out of the idle accounting; tasks popped
    // before the fence are not in the queue anymore and retire normally.
    backlog = l->queue.size() - l->held;
    l->held = l->queue.size();
  }
  if (backlog > 0) impl_->finish_many(backlog);
}

void ExecutionEngine::unfence(LaneId lane) {
  Lane* l = lane_ptr(lane);
  bool need_schedule = false;
  {
    std::lock_guard<std::mutex> lock(l->mutex);
    if (!l->fenced) return;
    // Re-admit held tasks before the lane becomes schedulable — we hold
    // the lane mutex and the lane is unscheduled, so no worker can retire
    // them concurrently and race the idle barrier.
    if (l->held > 0) {
      impl_->outstanding.fetch_add(l->held, std::memory_order_acq_rel);
      l->held = 0;
    }
    l->fenced = false;
    if (!l->queue.empty() && !l->scheduled) {
      l->scheduled = true;
      need_schedule = true;
    }
  }
  if (need_schedule) impl_->enqueue_ready(l);
}

bool ExecutionEngine::fenced(LaneId lane) const {
  Lane* l = lane_ptr(lane);
  std::lock_guard<std::mutex> lock(l->mutex);
  return l->fenced;
}

std::size_t ExecutionEngine::lane_depth(LaneId lane) const {
  Lane* l = lane_ptr(lane);
  std::lock_guard<std::mutex> lock(l->mutex);
  return l->queue.size();
}

void ExecutionEngine::run_until_idle() {
  if (worker_count_ == 0) {
    // Inline mode: the caller is the (only) worker. Lanes drain in ready
    // order, each serially — bit-for-bit the threaded semantics, minus the
    // interleaving.
    for (;;) {
      Lane* lane = nullptr;
      {
        std::lock_guard<std::mutex> lock(impl_->ready_mutex);
        if (impl_->ready.empty()) break;
        lane = impl_->ready.front();
        impl_->ready.pop_front();
      }
      obs::EngineProfiler* const prof = impl_->profiler;
      impl_->drain(lane, prof != nullptr ? prof->inline_worker() : 0);
    }
    impl_->rethrow_pending_error();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(impl_->idle_mutex);
    impl_->idle_cv.wait(lock, [&] {
      return impl_->outstanding.load(std::memory_order_acquire) == 0;
    });
  }
  impl_->rethrow_pending_error();
}

std::size_t ExecutionEngine::drive(sim::Scheduler& scheduler) {
  scheduler.set_post_event_hook([this] { run_until_idle(); });
  std::size_t events = 0;
  try {
    events = scheduler.run_all();
  } catch (...) {
    scheduler.set_post_event_hook(nullptr);
    throw;
  }
  scheduler.set_post_event_hook(nullptr);
  run_until_idle();  // work posted outside any event
  return events;
}

std::size_t ExecutionEngine::drive_until(sim::Scheduler& scheduler,
                                         sim::SimTime limit) {
  scheduler.set_post_event_hook([this] { run_until_idle(); });
  std::size_t events = 0;
  try {
    events = scheduler.run_until(limit);
  } catch (...) {
    scheduler.set_post_event_hook(nullptr);
    throw;
  }
  scheduler.set_post_event_hook(nullptr);
  run_until_idle();
  return events;
}

void ExecutionEngine::set_queue_watermark(
    std::size_t limit,
    std::function<void(const std::string& lane, std::size_t depth)>
        callback) {
  impl_->watermark_limit = limit;
  impl_->watermark_callback = std::move(callback);
}

void ExecutionEngine::enable_metrics(obs::MetricsRegistry* registry) {
  impl_->registry = registry;
  if (registry == nullptr) {
    impl_->tasks_posted = nullptr;
    impl_->tasks_executed = nullptr;
    impl_->tasks_failed = nullptr;
    impl_->queue_depth = nullptr;
    impl_->lanes_gauge = nullptr;
    return;
  }
  impl_->tasks_posted = registry->counter("perpos_exec_tasks_posted_total");
  impl_->tasks_executed =
      registry->counter("perpos_exec_tasks_executed_total");
  impl_->tasks_failed = registry->counter("perpos_exec_tasks_failed_total");
  impl_->queue_depth = registry->gauge("perpos_exec_queue_depth");
  impl_->lanes_gauge = registry->gauge("perpos_exec_lanes");
  registry->gauge("perpos_exec_workers")
      ->set(static_cast<double>(worker_count_));
  impl_->lanes_gauge->set(static_cast<double>(lane_count()));
}

void ExecutionEngine::enable_profiler(obs::EngineProfiler* profiler) {
  std::lock_guard<std::mutex> lock(impl_->lanes_mutex);
  impl_->profiler = profiler;
  for (std::size_t i = 0; i < impl_->lanes.size(); ++i) {
    impl_->lanes[i]->prof_slot =
        profiler != nullptr
            ? profiler->add_lane(lane_display_name(impl_->lanes[i]->name, i))
            : kNoProfilerSlot;
  }
}

void ExecutionEngine::set_flight_recorder(obs::FlightRecorder* recorder) {
  impl_->recorder = recorder;
  if (recorder != nullptr) impl_->rec_lane = recorder->add_lane("engine");
}

obs::IntrospectionSnapshot ExecutionEngine::introspect() const {
  obs::IntrospectionSnapshot snap;
  snap.workers = worker_count_;
  snap.tasks_executed = impl_->executed.load(std::memory_order_relaxed);
  snap.tasks_failed = impl_->failed.load(std::memory_order_relaxed);
  snap.tasks_posted =
      snap.tasks_executed + impl_->outstanding.load(std::memory_order_relaxed);

  obs::EngineProfiler* const prof = impl_->profiler;
  obs::EngineProfiler::Snapshot prof_snap;
  if (prof != nullptr) {
    prof_snap = prof->snapshot();
    snap.captured_us = static_cast<double>(prof_snap.elapsed_ns) / 1000.0;
    snap.worker_stats.reserve(prof_snap.workers.size());
    for (const auto& w : prof_snap.workers) {
      obs::WorkerIntrospection wi;
      wi.tasks = w.tasks;
      wi.busy_us = static_cast<double>(w.busy_ns) / 1000.0;
      wi.drains = w.drains;
      wi.idle_wakeups = w.idle_wakeups;
      wi.utilization = w.utilization;
      snap.worker_stats.push_back(wi);
    }
  } else {
    snap.captured_us = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count();
  }

  std::lock_guard<std::mutex> lock(impl_->lanes_mutex);
  snap.lanes.reserve(impl_->lanes.size());
  for (std::size_t i = 0; i < impl_->lanes.size(); ++i) {
    Lane& lane = *impl_->lanes[i];
    obs::LaneIntrospection li;
    li.name = lane_display_name(lane.name, i);
    {
      std::lock_guard<std::mutex> lane_lock(lane.mutex);
      li.queue_depth = lane.queue.size();
      li.active = lane.scheduled;
    }
    if (lane.prof_slot < prof_snap.lanes.size()) {
      const auto& lp = prof_snap.lanes[lane.prof_slot];
      li.tasks = lp.tasks;
      li.busy_us = static_cast<double>(lp.busy_ns) / 1000.0;
      li.queue_peak = lp.queue_peak;
    }
    snap.lanes.push_back(std::move(li));
  }
  return snap;
}

std::uint64_t ExecutionEngine::executed() const noexcept {
  return impl_->executed.load(std::memory_order_relaxed);
}

std::uint64_t ExecutionEngine::outstanding() const noexcept {
  return impl_->outstanding.load(std::memory_order_relaxed);
}

std::uint64_t ExecutionEngine::failed() const noexcept {
  return impl_->failed.load(std::memory_order_relaxed);
}

}  // namespace perpos::exec
