#include "perpos/exec/engine.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace perpos::exec {

namespace {
/// A hot lane hands its slot back to the ready queue after this many tasks
/// so one chatty graph cannot starve the others of a worker.
constexpr std::size_t kLaneBatch = 128;
}  // namespace

struct ExecutionEngine::Lane {
  explicit Lane(std::string n) : name(std::move(n)) {}
  const std::string name;
  std::mutex mutex;
  std::deque<Task> queue;
  /// True while the lane sits in the ready queue or a worker drains it;
  /// guarantees at most one worker runs this lane at a time (affinity).
  bool scheduled = false;
  /// Watermark edge detector: set when the queue grew past the limit,
  /// cleared when it drained back — one callback per crossing, not per
  /// post. Guarded by `mutex`.
  bool above_watermark = false;
};

struct ExecutionEngine::Impl {
  // Lane registry. unique_ptr gives stable addresses; the registry mutex
  // is held only for create/lookup, never while running tasks.
  mutable std::mutex lanes_mutex;
  std::vector<std::unique_ptr<Lane>> lanes;

  // Ready queue of lanes with work, shared by all workers.
  std::mutex ready_mutex;
  std::condition_variable ready_cv;
  std::deque<Lane*> ready;
  bool stop = false;

  // Idle barrier: posted-but-unfinished task count.
  std::atomic<std::uint64_t> outstanding{0};
  std::mutex idle_mutex;
  std::condition_variable idle_cv;

  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> failed{0};

  // First exception thrown by a task since the last run_until_idle().
  // Captured in drain() so a throwing task can neither abort the process
  // (std::terminate on a worker thread) nor wedge its lane; rethrown to
  // the caller at the next idle point.
  std::mutex error_mutex;
  std::exception_ptr first_error;

  // Queue-depth watermark (set while idle; read from posting threads).
  std::size_t watermark_limit = 0;
  std::function<void(const std::string&, std::size_t)> watermark_callback;

  // Optional metrics (set while idle; read from workers).
  obs::Counter* tasks_posted = nullptr;
  obs::Counter* tasks_executed = nullptr;
  obs::Counter* tasks_failed = nullptr;
  obs::Gauge* queue_depth = nullptr;
  obs::Gauge* lanes_gauge = nullptr;

  std::vector<std::thread> threads;

  void enqueue_ready(Lane* lane) {
    {
      std::lock_guard<std::mutex> lock(ready_mutex);
      ready.push_back(lane);
    }
    ready_cv.notify_one();
  }

  /// Run queued tasks of `lane` until its queue is empty (or the fairness
  /// batch is used up, in which case the lane re-enters the ready queue).
  void drain(Lane* lane) {
    for (std::size_t ran = 0; ran < kLaneBatch; ++ran) {
      Task task;
      {
        std::lock_guard<std::mutex> lock(lane->mutex);
        if (lane->queue.empty()) {
          lane->scheduled = false;
          return;
        }
        task = std::move(lane->queue.front());
        lane->queue.pop_front();
        if (lane->above_watermark && lane->queue.size() <= watermark_limit) {
          lane->above_watermark = false;  // Re-arm the crossing detector.
        }
      }
      // Graph components may throw from on_input; a lane task is therefore
      // allowed to throw. Capture the exception (first one wins — later
      // ones are counted but dropped) and keep the lane draining, then run
      // the finish bookkeeping either way so run_until_idle() cannot hang
      // on a task that errored. The error is stored before finish_one() so
      // an idle waiter always observes it.
      try {
        task();
      } catch (...) {
        failed.fetch_add(1, std::memory_order_relaxed);
        if (tasks_failed != nullptr) tasks_failed->inc();
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      executed.fetch_add(1, std::memory_order_relaxed);
      if (tasks_executed != nullptr) tasks_executed->inc();
      if (queue_depth != nullptr) queue_depth->add(-1.0);
      finish_one();
    }
    // Batch exhausted with work (possibly) left: requeue instead of
    // resetting `scheduled`, keeping the at-most-one-worker guarantee.
    enqueue_ready(lane);
  }

  void finish_one() {
    if (outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Lock before notifying so the wakeup cannot slip between a waiter's
      // predicate check and its wait.
      std::lock_guard<std::mutex> lock(idle_mutex);
      idle_cv.notify_all();
    }
  }

  /// Rethrow (and clear) the first task exception captured since the last
  /// call. Called from run_until_idle() once the engine is idle.
  void rethrow_pending_error() {
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> lock(error_mutex);
      error = std::exchange(first_error, nullptr);
    }
    if (error) std::rethrow_exception(error);
  }

  void worker_loop() {
    for (;;) {
      Lane* lane = nullptr;
      {
        std::unique_lock<std::mutex> lock(ready_mutex);
        ready_cv.wait(lock, [&] { return stop || !ready.empty(); });
        if (ready.empty()) return;  // stop && drained
        lane = ready.front();
        ready.pop_front();
      }
      drain(lane);
    }
  }
};

ExecutionEngine::ExecutionEngine(std::size_t workers)
    : worker_count_(workers), impl_(std::make_unique<Impl>()) {
  impl_->threads.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    impl_->threads.emplace_back([this] { impl_->worker_loop(); });
  }
}

ExecutionEngine::~ExecutionEngine() {
  {
    std::lock_guard<std::mutex> lock(impl_->ready_mutex);
    impl_->stop = true;
  }
  impl_->ready_cv.notify_all();
  for (std::thread& t : impl_->threads) t.join();
}

LaneId ExecutionEngine::create_lane(std::string name) {
  std::lock_guard<std::mutex> lock(impl_->lanes_mutex);
  impl_->lanes.push_back(std::make_unique<Lane>(std::move(name)));
  if (impl_->lanes_gauge != nullptr) {
    impl_->lanes_gauge->set(static_cast<double>(impl_->lanes.size()));
  }
  return static_cast<LaneId>(impl_->lanes.size() - 1);
}

std::size_t ExecutionEngine::lane_count() const {
  std::lock_guard<std::mutex> lock(impl_->lanes_mutex);
  return impl_->lanes.size();
}

ExecutionEngine::Lane* ExecutionEngine::lane_ptr(LaneId id) const {
  std::lock_guard<std::mutex> lock(impl_->lanes_mutex);
  if (id >= impl_->lanes.size()) {
    throw std::invalid_argument("ExecutionEngine: unknown lane");
  }
  return impl_->lanes[id].get();
}

void ExecutionEngine::post_to(Lane& lane, Task&& task) {
  impl_->outstanding.fetch_add(1, std::memory_order_acq_rel);
  if (impl_->tasks_posted != nullptr) impl_->tasks_posted->inc();
  if (impl_->queue_depth != nullptr) impl_->queue_depth->add(1.0);
  bool need_schedule = false;
  std::size_t watermark_depth = 0;
  {
    std::lock_guard<std::mutex> lock(lane.mutex);
    lane.queue.push_back(std::move(task));
    if (impl_->watermark_limit != 0 && !lane.above_watermark &&
        lane.queue.size() > impl_->watermark_limit) {
      lane.above_watermark = true;
      watermark_depth = lane.queue.size();
    }
    if (!lane.scheduled) {
      lane.scheduled = true;
      need_schedule = true;
    }
  }
  if (need_schedule) impl_->enqueue_ready(&lane);
  if (watermark_depth != 0 && impl_->watermark_callback) {
    // Outside the lane lock: the callback may inspect engine state.
    impl_->watermark_callback(lane.name, watermark_depth);
  }
}

void ExecutionEngine::post(LaneId lane, Task task) {
  post_to(*lane_ptr(lane), std::move(task));
}

std::function<void(Task)> ExecutionEngine::executor(LaneId lane) {
  Lane* l = lane_ptr(lane);  // resolve (and validate) once
  return [this, l](Task task) { post_to(*l, std::move(task)); };
}

void ExecutionEngine::run_until_idle() {
  if (worker_count_ == 0) {
    // Inline mode: the caller is the (only) worker. Lanes drain in ready
    // order, each serially — bit-for-bit the threaded semantics, minus the
    // interleaving.
    for (;;) {
      Lane* lane = nullptr;
      {
        std::lock_guard<std::mutex> lock(impl_->ready_mutex);
        if (impl_->ready.empty()) break;
        lane = impl_->ready.front();
        impl_->ready.pop_front();
      }
      impl_->drain(lane);
    }
    impl_->rethrow_pending_error();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(impl_->idle_mutex);
    impl_->idle_cv.wait(lock, [&] {
      return impl_->outstanding.load(std::memory_order_acquire) == 0;
    });
  }
  impl_->rethrow_pending_error();
}

std::size_t ExecutionEngine::drive(sim::Scheduler& scheduler) {
  scheduler.set_post_event_hook([this] { run_until_idle(); });
  std::size_t events = 0;
  try {
    events = scheduler.run_all();
  } catch (...) {
    scheduler.set_post_event_hook(nullptr);
    throw;
  }
  scheduler.set_post_event_hook(nullptr);
  run_until_idle();  // work posted outside any event
  return events;
}

std::size_t ExecutionEngine::drive_until(sim::Scheduler& scheduler,
                                         sim::SimTime limit) {
  scheduler.set_post_event_hook([this] { run_until_idle(); });
  std::size_t events = 0;
  try {
    events = scheduler.run_until(limit);
  } catch (...) {
    scheduler.set_post_event_hook(nullptr);
    throw;
  }
  scheduler.set_post_event_hook(nullptr);
  run_until_idle();
  return events;
}

void ExecutionEngine::set_queue_watermark(
    std::size_t limit,
    std::function<void(const std::string& lane, std::size_t depth)>
        callback) {
  impl_->watermark_limit = limit;
  impl_->watermark_callback = std::move(callback);
}

void ExecutionEngine::enable_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    impl_->tasks_posted = nullptr;
    impl_->tasks_executed = nullptr;
    impl_->tasks_failed = nullptr;
    impl_->queue_depth = nullptr;
    impl_->lanes_gauge = nullptr;
    return;
  }
  impl_->tasks_posted = registry->counter("perpos_exec_tasks_posted_total");
  impl_->tasks_executed =
      registry->counter("perpos_exec_tasks_executed_total");
  impl_->tasks_failed = registry->counter("perpos_exec_tasks_failed_total");
  impl_->queue_depth = registry->gauge("perpos_exec_queue_depth");
  impl_->lanes_gauge = registry->gauge("perpos_exec_lanes");
  registry->gauge("perpos_exec_workers")
      ->set(static_cast<double>(worker_count_));
  impl_->lanes_gauge->set(static_cast<double>(lane_count()));
}

std::uint64_t ExecutionEngine::executed() const noexcept {
  return impl_->executed.load(std::memory_order_relaxed);
}

std::uint64_t ExecutionEngine::outstanding() const noexcept {
  return impl_->outstanding.load(std::memory_order_relaxed);
}

std::uint64_t ExecutionEngine::failed() const noexcept {
  return impl_->failed.load(std::memory_order_relaxed);
}

}  // namespace perpos::exec
