#pragma once

#include "perpos/obs/flight_recorder.hpp"
#include "perpos/obs/introspection.hpp"
#include "perpos/obs/metrics.hpp"
#include "perpos/obs/profiler.hpp"
#include "perpos/sim/scheduler.hpp"

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

/// \file engine.hpp
/// The parallel execution engine (perpos::exec): a worker pool that runs
/// many positioning processes concurrently without touching any in-graph
/// invariant.
///
/// PerPos graphs are single-threaded by design — delivery order, logical
/// time and provenance all assume one thread drives a graph at a time
/// (see ProcessingGraph). The engine therefore parallelizes *across*
/// graphs, not within one: work is posted to *affinity lanes*, and the
/// engine guarantees that tasks of one lane run strictly in post order and
/// never concurrently with each other. Give every graph (equivalently:
/// every target's positioning process) its own lane and all lanes may
/// proceed in parallel while each graph still observes the exact
/// single-threaded execution it was built for.
///
/// Determinism contract: for a fixed sequence of post() calls per lane,
/// the side effects *within that lane* are identical for any worker count
/// (including 0). Only the interleaving *between* lanes varies — which is
/// unobservable to a well-formed deployment, because graphs on different
/// lanes share no mutable state (cross-graph data flows through
/// DistributedDeployment links, which post to the destination lane).
/// perpos-verify rule PPV009 checks that a lane assignment actually has
/// this property.
///
/// With `workers == 0` the engine owns no threads: tasks queue up and
/// run_until_idle() drains them on the calling thread — the fully
/// deterministic single-threaded mode used by tests and by simulation
/// runs that need reproducibility.

namespace perpos::exec {

/// Identifies one serial execution lane. Lanes are cheap; create one per
/// graph / per target.
using LaneId = std::uint32_t;

using Task = std::function<void()>;

class ExecutionEngine {
 public:
  /// Start a pool of `workers` threads. 0 = inline mode (no threads;
  /// run_until_idle drains on the caller).
  explicit ExecutionEngine(std::size_t workers);
  ~ExecutionEngine();

  ExecutionEngine(const ExecutionEngine&) = delete;
  ExecutionEngine& operator=(const ExecutionEngine&) = delete;

  /// Create a new lane. `name` is used for metrics/debugging only.
  /// Thread-safe; may be called while workers are draining other lanes.
  LaneId create_lane(std::string name = {});

  std::size_t workers() const noexcept { return worker_count_; }
  std::size_t lane_count() const;

  /// Enqueue `task` on `lane`. Tasks of one lane run in post order, one at
  /// a time; tasks of different lanes run concurrently. Thread-safe.
  /// Throws std::invalid_argument for unknown lanes.
  ///
  /// Tasks may throw (graph components are allowed to throw from
  /// on_input): the exception is captured on the worker — it never
  /// terminates the process or wedges the lane, and subsequent tasks of
  /// the lane still run. The first captured exception is rethrown from
  /// the next run_until_idle(); later ones are counted in failed() but
  /// dropped.
  void post(LaneId lane, Task task);

  /// Fence `lane`: wait until the worker currently draining it (if any)
  /// finishes its in-flight task and parks the lane, then hold every
  /// queued and newly posted task — held tasks neither run nor count
  /// toward run_until_idle() until unfence(). Because at most one worker
  /// ever drains a lane, a returned fence() guarantees no task of this
  /// lane is executing and none will start: the quiesce point live
  /// reconfiguration mutates the lane's graph under. Post order is
  /// preserved across the fence. Idempotent; thread-safe. Must not be
  /// called from a task running on `lane` (it would wait for itself).
  ///
  /// As model transitions (the PPM003 hot-swap model in
  /// perpos/verify/protocol_models.hpp checks these semantics over every
  /// interleaving): fence() is `fence := requested`, and the retire of the
  /// at-most-one in-flight task is what flips it to `held` — the step the
  /// bounded model checker relies on when proving no mutation lands while
  /// a task is in flight. Tasks posted while fenced stay queued (the model
  /// keeps producer.post enabled across the fence); unfence() drains them
  /// in post order into whatever graph the cutover installed.
  void fence(LaneId lane);

  /// Lift the fence: held tasks re-enter the idle accounting and the lane
  /// is scheduled again. Idempotent; thread-safe.
  void unfence(LaneId lane);

  /// True while `lane` is fenced.
  bool fenced(LaneId lane) const;

  /// Tasks currently queued on `lane` (held or schedulable).
  std::size_t lane_depth(LaneId lane) const;

  /// A reusable single-lane executor: calling it posts to `lane` without
  /// the id->lane lookup. This is the seam handed to PositioningService /
  /// DistributedDeployment (they depend on std::function, not on exec).
  std::function<void(Task)> executor(LaneId lane);

  /// Block until every posted task (including tasks posted by running
  /// tasks) has finished. In inline mode this is what runs the tasks.
  /// Not reentrant: do not call from inside a task.
  ///
  /// If any task threw since the previous call, the first captured
  /// exception is rethrown here — after the engine reached idle, so the
  /// remaining tasks have still run and the engine stays usable.
  void run_until_idle();

  /// Drive a discrete-event simulation through the engine: runs
  /// `scheduler.run_all()` with a post-event hook that drains all lanes to
  /// idle after every event, so the parallel side effects of each event
  /// complete before the next fires — deterministic per lane regardless of
  /// worker count. Returns the number of scheduler events executed. The
  /// scheduler's previous hook is restored on return.
  std::size_t drive(sim::Scheduler& scheduler);

  /// As drive(), but stops at simulation time `limit`.
  std::size_t drive_until(sim::Scheduler& scheduler, sim::SimTime limit);

  /// Publish engine metrics (tasks posted/executed, queue depth, lane and
  /// worker counts) into `registry`. Pass nullptr to stop. The registry
  /// must outlive the engine or the next enable_metrics call.
  void enable_metrics(obs::MetricsRegistry* registry);

  /// Attach a profiler: every lane (existing and future) gets a slot, and
  /// workers account drained batches, queue-depth high-water marks and
  /// idle wakeups into it. Pass nullptr to detach. Set while the engine is
  /// idle; the profiler must outlive the engine or the next call. With no
  /// profiler attached the hot path pays one null check per drained batch.
  void enable_profiler(obs::EngineProfiler* profiler);

  /// Attach a flight recorder: the engine registers one "engine" ring and
  /// records task failures (with the lane name and error message) and
  /// watermark crossings into it — and trigger()s a black-box dump on the
  /// first task failure of each idle cycle. Pass nullptr to detach. Set
  /// while the engine is idle; the recorder must outlive the engine.
  void set_flight_recorder(obs::FlightRecorder* recorder);

  /// Point-in-time runtime snapshot for perpos-top: lane queue depths and
  /// activity, task totals, and (when a profiler is attached) per-lane
  /// busy time and per-worker utilization. Thread-safe; callable while
  /// workers drain. Graph sections are left empty — PositioningService
  /// fills those.
  obs::IntrospectionSnapshot introspect() const;

  /// Lane queue-depth watermark (the runtime sanitizer seam): when a
  /// post() pushes a lane's queue past `limit` tasks, `callback(lane_name,
  /// depth)` fires on the posting thread — once per crossing; it re-arms
  /// when the lane drains back to the limit. A producer outpacing its
  /// lane's consumer shows up here long before memory does. limit 0 (the
  /// default) disables the check. Set while the engine is idle; the
  /// callback must be thread-safe and must not post to the same engine.
  void set_queue_watermark(
      std::size_t limit,
      std::function<void(const std::string& lane, std::size_t depth)>
          callback);

  /// Tasks run so far (across all lanes), including tasks that threw.
  std::uint64_t executed() const noexcept;
  /// Tasks posted but not yet finished.
  std::uint64_t outstanding() const noexcept;
  /// Tasks that exited with an exception.
  std::uint64_t failed() const noexcept;

 private:
  struct Lane;
  struct Impl;

  Lane* lane_ptr(LaneId id) const;
  void post_to(Lane& lane, Task&& task);

  std::size_t worker_count_ = 0;
  std::unique_ptr<Impl> impl_;
};

}  // namespace perpos::exec
