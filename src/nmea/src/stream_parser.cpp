#include "perpos/nmea/stream_parser.hpp"

#include "perpos/nmea/parse.hpp"

namespace perpos::nmea {

std::vector<Sentence> StreamParser::feed(std::string_view fragment) {
  buffer_.append(fragment);
  std::vector<Sentence> out;

  while (true) {
    // Hunt for the start of a sentence, discarding line noise.
    const std::size_t dollar = buffer_.find('$');
    if (dollar == std::string::npos) {
      discarded_ += buffer_.size();
      buffer_.clear();
      return out;
    }
    discarded_ += dollar;
    buffer_.erase(0, dollar);

    // A sentence is complete once we have "*HH" after the body. A '$'
    // appearing before the '*' means the previous sentence was truncated.
    const std::size_t star = buffer_.find('*');
    const std::size_t next_dollar = buffer_.find('$', 1);
    if (next_dollar != std::string::npos &&
        (star == std::string::npos || next_dollar < star)) {
      // Truncated sentence: drop it and continue with the next one.
      ++errors_;
      buffer_.erase(0, next_dollar);
      continue;
    }
    if (star == std::string::npos || buffer_.size() < star + 3) {
      return out;  // Need more bytes.
    }
    const std::string_view candidate(buffer_.data(), star + 3);
    if (auto parsed = parse_sentence(candidate)) {
      out.push_back(std::move(*parsed));
      ++parsed_;
    } else {
      ++errors_;
    }
    buffer_.erase(0, star + 3);
  }
}

void StreamParser::reset() { buffer_.clear(); }

}  // namespace perpos::nmea
