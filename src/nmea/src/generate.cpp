#include "perpos/nmea/generate.hpp"

#include "perpos/nmea/checksum.hpp"

#include <cmath>
#include <cstdio>

namespace perpos::nmea {

namespace {

std::string format_dm(double value_deg, int deg_digits, char pos_hemi,
                      char neg_hemi) {
  const char hemi = value_deg >= 0.0 ? pos_hemi : neg_hemi;
  const double abs_deg = std::fabs(value_deg);
  int whole_deg = static_cast<int>(abs_deg);
  double minutes = (abs_deg - whole_deg) * 60.0;
  // Guard against 60.0000 minute rounding at print precision.
  if (minutes >= 59.99995) {
    minutes = 0.0;
    whole_deg += 1;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%0*d%07.4f,%c", deg_digits, whole_deg,
                minutes, hemi);
  return buf;
}

}  // namespace

std::string format_latitude(double latitude_deg) {
  return format_dm(latitude_deg, 2, 'N', 'S');
}

std::string format_longitude(double longitude_deg) {
  return format_dm(longitude_deg, 3, 'E', 'W');
}

std::string format_utc_time(const UtcTime& t) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%02d%02d%05.2f", t.hours, t.minutes,
                t.seconds);
  return buf;
}

std::string generate_gga(const GgaSentence& s, std::string_view talker) {
  char buf[192];
  if (is_fix(s.quality)) {
    std::snprintf(buf, sizeof(buf), "%.*sGGA,%s,%s,%s,%d,%02d,%.1f,%.1f,M,%.1f,M,,",
                  static_cast<int>(talker.size()), talker.data(),
                  format_utc_time(s.time).c_str(),
                  format_latitude(s.latitude_deg).c_str(),
                  format_longitude(s.longitude_deg).c_str(),
                  static_cast<int>(s.quality), s.satellites_in_use, s.hdop,
                  s.altitude_m, s.geoid_separation_m);
  } else {
    // No fix: position fields are empty, as real receivers emit.
    std::snprintf(buf, sizeof(buf), "%.*sGGA,%s,,,,,0,%02d,%.1f,,M,,M,,",
                  static_cast<int>(talker.size()), talker.data(),
                  format_utc_time(s.time).c_str(), s.satellites_in_use,
                  s.hdop);
  }
  return frame(buf);
}

std::string generate_rmc(const RmcSentence& s, std::string_view talker) {
  char buf[192];
  if (s.valid) {
    std::snprintf(buf, sizeof(buf), "%.*sRMC,%s,A,%s,%s,%.1f,%.1f,%06d,,",
                  static_cast<int>(talker.size()), talker.data(),
                  format_utc_time(s.time).c_str(),
                  format_latitude(s.latitude_deg).c_str(),
                  format_longitude(s.longitude_deg).c_str(), s.speed_knots,
                  s.course_deg, s.date_ddmmyy);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*sRMC,%s,V,,,,,%.1f,%.1f,%06d,,",
                  static_cast<int>(talker.size()), talker.data(),
                  format_utc_time(s.time).c_str(), s.speed_knots, s.course_deg,
                  s.date_ddmmyy);
  }
  return frame(buf);
}

std::string generate_gsa(const GsaSentence& s, std::string_view talker) {
  std::string body;
  body.reserve(96);
  body.append(talker).append("GSA,");
  body.push_back(s.automatic ? 'A' : 'M');
  body.push_back(',');
  body.push_back(static_cast<char>('0' + static_cast<int>(s.mode)));
  for (int i = 0; i < 12; ++i) {
    body.push_back(',');
    if (i < static_cast<int>(s.satellite_prns.size())) {
      char prn[8];
      std::snprintf(prn, sizeof(prn), "%02d", s.satellite_prns[i]);
      body.append(prn);
    }
  }
  char dops[40];
  std::snprintf(dops, sizeof(dops), ",%.1f,%.1f,%.1f", s.pdop, s.hdop, s.vdop);
  body.append(dops);
  return frame(body);
}

std::string generate_gsv(const GsvSentence& s, std::string_view talker) {
  std::string body;
  body.reserve(96);
  char head[40];
  std::snprintf(head, sizeof(head), "%.*sGSV,%d,%d,%02d",
                static_cast<int>(talker.size()), talker.data(),
                s.total_messages, s.message_number, s.satellites_in_view);
  body.append(head);
  for (const SatelliteInView& sat : s.satellites) {
    char entry[48];
    std::snprintf(entry, sizeof(entry), ",%02d,%02d,%03d,%02d", sat.prn,
                  sat.elevation_deg, sat.azimuth_deg, sat.snr_db);
    body.append(entry);
  }
  return frame(body);
}

}  // namespace perpos::nmea
