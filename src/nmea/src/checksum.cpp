#include "perpos/nmea/checksum.hpp"

#include <cstdio>

namespace perpos::nmea {

unsigned char checksum(std::string_view body) noexcept {
  unsigned char sum = 0;
  for (char c : body) sum ^= static_cast<unsigned char>(c);
  return sum;
}

std::string frame(std::string_view body) {
  char tail[4];
  std::snprintf(tail, sizeof(tail), "*%02X", checksum(body));
  std::string out;
  out.reserve(body.size() + 4);
  out.push_back('$');
  out.append(body);
  out.append(tail);
  return out;
}

namespace {

int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

bool unframe(std::string_view sentence, std::string& body_out) noexcept {
  // Strip trailing CR/LF in any combination.
  while (!sentence.empty() &&
         (sentence.back() == '\r' || sentence.back() == '\n')) {
    sentence.remove_suffix(1);
  }
  if (sentence.size() < 5 || sentence.front() != '$') return false;
  // Expect "*HH" suffix.
  if (sentence[sentence.size() - 3] != '*') return false;
  const int hi = hex_value(sentence[sentence.size() - 2]);
  const int lo = hex_value(sentence[sentence.size() - 1]);
  if (hi < 0 || lo < 0) return false;
  const auto body = sentence.substr(1, sentence.size() - 4);
  if (checksum(body) != static_cast<unsigned char>(hi * 16 + lo)) return false;
  body_out.assign(body);
  return true;
}

}  // namespace perpos::nmea
