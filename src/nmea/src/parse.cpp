#include "perpos/nmea/parse.hpp"

#include "perpos/nmea/checksum.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <vector>

namespace perpos::nmea {

namespace {

/// Split a sentence body on commas. Empty fields are preserved.
std::vector<std::string_view> split_fields(std::string_view body) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = body.find(',', start);
    if (comma == std::string_view::npos) {
      out.push_back(body.substr(start));
      return out;
    }
    out.push_back(body.substr(start, comma - start));
    start = comma + 1;
  }
}

std::optional<int> to_int(std::string_view f) {
  if (f.empty()) return std::nullopt;
  int v = 0;
  const auto [ptr, ec] = std::from_chars(f.data(), f.data() + f.size(), v);
  if (ec != std::errc{} || ptr != f.data() + f.size()) return std::nullopt;
  return v;
}

std::optional<double> to_double(std::string_view f) {
  if (f.empty()) return std::nullopt;
  // std::from_chars for double is not universally available for all libc++;
  // strtod on a bounded copy is fine here (fields are short).
  char buf[64];
  if (f.size() >= sizeof(buf)) return std::nullopt;
  f.copy(buf, f.size());
  buf[f.size()] = '\0';
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end != buf + f.size()) return std::nullopt;
  return v;
}

/// Shared "ddmm.mmmm" parser; `deg_digits` is 2 for latitude, 3 for
/// longitude.
std::optional<double> parse_dm(std::string_view field, int deg_digits,
                               std::string_view hemisphere, char pos_hemi,
                               char neg_hemi, double max_abs) {
  if (field.size() < static_cast<std::size_t>(deg_digits) + 2) {
    return std::nullopt;
  }
  const auto deg_part = field.substr(0, deg_digits);
  const auto min_part = field.substr(deg_digits);
  const auto deg = to_int(deg_part);
  const auto min = to_double(min_part);
  if (!deg || !min || *min < 0.0 || *min >= 60.0) return std::nullopt;
  double value = *deg + *min / 60.0;
  if (hemisphere.size() != 1) return std::nullopt;
  const char h = hemisphere[0];
  if (h == neg_hemi) {
    value = -value;
  } else if (h != pos_hemi) {
    return std::nullopt;
  }
  if (std::fabs(value) > max_abs) return std::nullopt;
  return value;
}

}  // namespace

std::optional<double> parse_latitude(std::string_view field,
                                     std::string_view hemisphere) {
  return parse_dm(field, 2, hemisphere, 'N', 'S', 90.0);
}

std::optional<double> parse_longitude(std::string_view field,
                                      std::string_view hemisphere) {
  return parse_dm(field, 3, hemisphere, 'E', 'W', 180.0);
}

std::optional<UtcTime> parse_utc_time(std::string_view field) {
  if (field.size() < 6) return std::nullopt;
  const auto hh = to_int(field.substr(0, 2));
  const auto mm = to_int(field.substr(2, 2));
  const auto ss = to_double(field.substr(4));
  if (!hh || !mm || !ss) return std::nullopt;
  if (*hh < 0 || *hh > 23 || *mm < 0 || *mm > 59 || *ss < 0.0 || *ss >= 60.0) {
    return std::nullopt;
  }
  return UtcTime{*hh, *mm, *ss};
}

std::optional<GgaSentence> parse_gga_fields(std::string_view body) {
  const auto f = split_fields(body);
  // GPGGA,time,lat,N,lon,E,quality,numsat,hdop,alt,M,geoid,M[,age,station]
  if (f.size() < 13) return std::nullopt;
  GgaSentence out;
  if (const auto t = parse_utc_time(f[1])) out.time = *t;
  const auto quality = to_int(f[6]);
  if (!quality || *quality < 0 || *quality > 8) return std::nullopt;
  out.quality = static_cast<FixQuality>(*quality);
  if (is_fix(out.quality)) {
    const auto lat = parse_latitude(f[2], f[3]);
    const auto lon = parse_longitude(f[4], f[5]);
    if (!lat || !lon) return std::nullopt;
    out.latitude_deg = *lat;
    out.longitude_deg = *lon;
  }
  if (const auto n = to_int(f[7])) out.satellites_in_use = *n;
  if (const auto h = to_double(f[8])) out.hdop = *h;
  if (const auto a = to_double(f[9])) out.altitude_m = *a;
  if (const auto g = to_double(f[11])) out.geoid_separation_m = *g;
  return out;
}

std::optional<RmcSentence> parse_rmc_fields(std::string_view body) {
  const auto f = split_fields(body);
  // GPRMC,time,status,lat,N,lon,E,speed,course,date,magvar,E[,mode]
  if (f.size() < 10) return std::nullopt;
  RmcSentence out;
  if (const auto t = parse_utc_time(f[1])) out.time = *t;
  if (f[2] == "A") {
    out.valid = true;
  } else if (f[2] == "V") {
    out.valid = false;
  } else {
    return std::nullopt;
  }
  if (out.valid) {
    const auto lat = parse_latitude(f[3], f[4]);
    const auto lon = parse_longitude(f[5], f[6]);
    if (!lat || !lon) return std::nullopt;
    out.latitude_deg = *lat;
    out.longitude_deg = *lon;
  }
  if (const auto s = to_double(f[7])) out.speed_knots = *s;
  if (const auto c = to_double(f[8])) out.course_deg = *c;
  if (const auto d = to_int(f[9])) out.date_ddmmyy = *d;
  return out;
}

std::optional<GsaSentence> parse_gsa_fields(std::string_view body) {
  const auto f = split_fields(body);
  // GPGSA,A,3,prn*12,pdop,hdop,vdop
  if (f.size() < 18) return std::nullopt;
  GsaSentence out;
  if (f[1] == "A") {
    out.automatic = true;
  } else if (f[1] == "M") {
    out.automatic = false;
  } else {
    return std::nullopt;
  }
  const auto mode = to_int(f[2]);
  if (!mode || *mode < 1 || *mode > 3) return std::nullopt;
  out.mode = static_cast<GsaSentence::Mode>(*mode);
  for (int i = 3; i < 15; ++i) {
    if (const auto prn = to_int(f[i])) out.satellite_prns.push_back(*prn);
  }
  if (const auto p = to_double(f[15])) out.pdop = *p;
  if (const auto h = to_double(f[16])) out.hdop = *h;
  if (const auto v = to_double(f[17])) out.vdop = *v;
  return out;
}

std::optional<GsvSentence> parse_gsv_fields(std::string_view body) {
  const auto f = split_fields(body);
  // GPGSV,total,msg,inview,(prn,elev,az,snr)*1..4
  if (f.size() < 4) return std::nullopt;
  GsvSentence out;
  const auto total = to_int(f[1]);
  const auto msg = to_int(f[2]);
  const auto inview = to_int(f[3]);
  if (!total || !msg || !inview || *total < 1 || *msg < 1 || *msg > *total) {
    return std::nullopt;
  }
  out.total_messages = *total;
  out.message_number = *msg;
  out.satellites_in_view = *inview;
  for (std::size_t i = 4; i + 3 < f.size(); i += 4) {
    SatelliteInView sat;
    if (const auto prn = to_int(f[i])) sat.prn = *prn;
    if (const auto el = to_int(f[i + 1])) sat.elevation_deg = *el;
    if (const auto az = to_int(f[i + 2])) sat.azimuth_deg = *az;
    if (const auto snr = to_int(f[i + 3])) sat.snr_db = *snr;
    if (sat.prn > 0) out.satellites.push_back(sat);
  }
  return out;
}

const char* to_string(SentenceType t) noexcept {
  switch (t) {
    case SentenceType::kGga: return "GGA";
    case SentenceType::kRmc: return "RMC";
    case SentenceType::kGsa: return "GSA";
    case SentenceType::kGsv: return "GSV";
    case SentenceType::kUnknown: return "UNKNOWN";
  }
  return "UNKNOWN";
}

std::optional<Sentence> parse_sentence(std::string_view text) {
  std::string body;
  if (!unframe(text, body)) return std::nullopt;
  if (body.size() < 5) return std::nullopt;

  Sentence out;
  out.raw.assign(text.substr(0, text.find_first_of("\r\n")));
  out.talker = body.substr(0, 2);
  const std::string_view kind = std::string_view(body).substr(2, 3);

  if (kind == "GGA") {
    out.gga = parse_gga_fields(body);
    if (!out.gga) return std::nullopt;
    out.type = SentenceType::kGga;
  } else if (kind == "RMC") {
    out.rmc = parse_rmc_fields(body);
    if (!out.rmc) return std::nullopt;
    out.type = SentenceType::kRmc;
  } else if (kind == "GSA") {
    out.gsa = parse_gsa_fields(body);
    if (!out.gsa) return std::nullopt;
    out.type = SentenceType::kGsa;
  } else if (kind == "GSV") {
    out.gsv = parse_gsv_fields(body);
    if (!out.gsv) return std::nullopt;
    out.type = SentenceType::kGsv;
  } else {
    out.type = SentenceType::kUnknown;
  }
  return out;
}

}  // namespace perpos::nmea
