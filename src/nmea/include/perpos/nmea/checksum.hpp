#pragma once

#include <string>
#include <string_view>

/// \file checksum.hpp
/// NMEA 0183 framing: `$<body>*<hh>` where <hh> is the XOR of all body
/// bytes in uppercase hex.

namespace perpos::nmea {

/// XOR checksum over `body` (the characters between '$' and '*').
unsigned char checksum(std::string_view body) noexcept;

/// Render `body` as a framed sentence `$body*HH` (no CRLF).
std::string frame(std::string_view body);

/// Validate framing and checksum; on success returns the body between '$'
/// and '*'. Tolerates a trailing CR, LF or CRLF. Returns empty optional on
/// malformed input.
bool unframe(std::string_view sentence, std::string& body_out) noexcept;

}  // namespace perpos::nmea
