#pragma once

#include "perpos/nmea/types.hpp"

#include <optional>
#include <string_view>

/// \file parse.hpp
/// Whole-sentence NMEA parsing. See stream_parser.hpp for the incremental
/// parser used by the Parser processing component (which receives raw
/// string fragments from the GPS sensor, paper Fig. 4).

namespace perpos::nmea {

/// Parse one complete framed sentence (`$...*HH`, optional CRLF).
/// Returns nullopt when framing, checksum or field syntax is invalid.
/// Well-formed sentences of unknown type parse to SentenceType::kUnknown
/// with only `raw` and `talker` populated.
std::optional<Sentence> parse_sentence(std::string_view text);

/// Field-level parsers, exposed for tests and custom components.
std::optional<GgaSentence> parse_gga_fields(std::string_view body);
std::optional<RmcSentence> parse_rmc_fields(std::string_view body);
std::optional<GsaSentence> parse_gsa_fields(std::string_view body);
std::optional<GsvSentence> parse_gsv_fields(std::string_view body);

/// Parse NMEA "ddmm.mmmm" latitude / "dddmm.mmmm" longitude plus hemisphere
/// indicator into signed decimal degrees. Returns nullopt on syntax errors
/// or out-of-range values.
std::optional<double> parse_latitude(std::string_view field,
                                     std::string_view hemisphere);
std::optional<double> parse_longitude(std::string_view field,
                                      std::string_view hemisphere);

/// Parse "hhmmss.sss".
std::optional<UtcTime> parse_utc_time(std::string_view field);

}  // namespace perpos::nmea
