#pragma once

#include "perpos/nmea/types.hpp"

#include <string>

/// \file generate.hpp
/// NMEA 0183 sentence generation — used by the simulated GPS sensor to emit
/// the same byte stream a real receiver would (the middleware must only ever
/// see strings, exactly as in the paper's setup).

namespace perpos::nmea {

/// Render a GGA sentence, framed with checksum (no CRLF).
std::string generate_gga(const GgaSentence& s, std::string_view talker = "GP");

/// Render an RMC sentence.
std::string generate_rmc(const RmcSentence& s, std::string_view talker = "GP");

/// Render a GSA sentence.
std::string generate_gsa(const GsaSentence& s, std::string_view talker = "GP");

/// Render one GSV message.
std::string generate_gsv(const GsvSentence& s, std::string_view talker = "GP");

/// Format signed decimal degrees as NMEA "ddmm.mmmm,N/S".
std::string format_latitude(double latitude_deg);
/// Format signed decimal degrees as NMEA "dddmm.mmmm,E/W".
std::string format_longitude(double longitude_deg);
/// Format "hhmmss.ss".
std::string format_utc_time(const UtcTime& t);

}  // namespace perpos::nmea
