#pragma once

#include "perpos/nmea/types.hpp"

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

/// \file stream_parser.hpp
/// Incremental NMEA parser. Real GPS receivers deliver arbitrary string
/// fragments over a serial link; several fragments may be needed to complete
/// one sentence (this is the "several strings from the GPS sensor is needed
/// to produce one NMEA sentence" behaviour of the paper's Fig. 4 data tree).
/// The Parser processing component wraps this class.

namespace perpos::nmea {

class StreamParser {
 public:
  /// Append a fragment of received bytes; returns every sentence completed
  /// by this fragment (possibly none, possibly several). Malformed
  /// sentences (bad checksum / framing) are counted and dropped.
  std::vector<Sentence> feed(std::string_view fragment);

  /// Total sentences successfully parsed.
  std::size_t parsed_count() const noexcept { return parsed_; }

  /// Total sentences discarded due to framing or checksum errors.
  std::size_t error_count() const noexcept { return errors_; }

  /// Bytes discarded while hunting for a '$' start-of-sentence.
  std::size_t discarded_bytes() const noexcept { return discarded_; }

  /// Drop any partially accumulated sentence.
  void reset();

 private:
  std::string buffer_;
  std::size_t parsed_ = 0;
  std::size_t errors_ = 0;
  std::size_t discarded_ = 0;
};

}  // namespace perpos::nmea
