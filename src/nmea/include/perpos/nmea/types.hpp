#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

/// \file types.hpp
/// Value types for the NMEA 0183 sentences the PerPos GPS pipeline handles.
///
/// The paper's GPS channel (Fig. 1/Fig. 4) is: GPS sensor emits raw strings,
/// the Parser component assembles and decodes NMEA sentences, and the
/// Interpreter produces WGS84 positions from sentences that contain a valid
/// fix. The Component Features of examples E1/E2 (NumberOfSatellites, HDOP)
/// read fields carried by these types.

namespace perpos::nmea {

/// GGA fix quality indicator (field 6 of GGA).
enum class FixQuality : std::uint8_t {
  kInvalid = 0,
  kGps = 1,
  kDgps = 2,
  kPps = 3,
  kRtk = 4,
  kFloatRtk = 5,
  kEstimated = 6,
  kManual = 7,
  kSimulation = 8,
};

/// Returns true for qualities that represent a usable position fix.
constexpr bool is_fix(FixQuality q) noexcept {
  return q != FixQuality::kInvalid;
}

/// UTC time of day as carried in NMEA sentences (hhmmss.sss).
struct UtcTime {
  int hours = 0;
  int minutes = 0;
  double seconds = 0.0;

  friend bool operator==(const UtcTime&, const UtcTime&) = default;

  /// Seconds since midnight UTC.
  double seconds_of_day() const noexcept {
    return hours * 3600.0 + minutes * 60.0 + seconds;
  }
};

/// GGA — Global positioning system fix data. The workhorse sentence: it is
/// the source of both the position and the seam information (satellite
/// count, HDOP) that examples E1/E2 extract.
struct GgaSentence {
  UtcTime time;
  double latitude_deg = 0.0;   ///< Signed decimal degrees (N positive).
  double longitude_deg = 0.0;  ///< Signed decimal degrees (E positive).
  FixQuality quality = FixQuality::kInvalid;
  int satellites_in_use = 0;
  double hdop = 99.9;          ///< Horizontal dilution of precision.
  double altitude_m = 0.0;     ///< Antenna altitude above mean sea level.
  double geoid_separation_m = 0.0;

  friend bool operator==(const GgaSentence&, const GgaSentence&) = default;
};

/// RMC — Recommended minimum navigation information.
struct RmcSentence {
  UtcTime time;
  bool valid = false;          ///< Status field: A=valid, V=void.
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;
  double speed_knots = 0.0;
  double course_deg = 0.0;     ///< Track made good, degrees true.
  int date_ddmmyy = 0;         ///< Raw date field.

  friend bool operator==(const RmcSentence&, const RmcSentence&) = default;
};

/// GSA — DOP and active satellites.
struct GsaSentence {
  enum class Mode : std::uint8_t { kNoFix = 1, k2d = 2, k3d = 3 };
  bool automatic = true;              ///< M/A selection field.
  Mode mode = Mode::kNoFix;
  std::vector<int> satellite_prns;    ///< Up to 12 PRNs in use.
  double pdop = 99.9;
  double hdop = 99.9;
  double vdop = 99.9;

  friend bool operator==(const GsaSentence&, const GsaSentence&) = default;
};

/// One satellite entry of a GSV sentence.
struct SatelliteInView {
  int prn = 0;
  int elevation_deg = 0;
  int azimuth_deg = 0;
  int snr_db = 0;  ///< 0 when not tracked.

  friend bool operator==(const SatelliteInView&, const SatelliteInView&) =
      default;
};

/// GSV — Satellites in view (one message of a sequence).
struct GsvSentence {
  int total_messages = 1;
  int message_number = 1;
  int satellites_in_view = 0;
  std::vector<SatelliteInView> satellites;  ///< Up to 4 per message.

  friend bool operator==(const GsvSentence&, const GsvSentence&) = default;
};

/// Discriminator for the sentence types the parser understands.
enum class SentenceType : std::uint8_t {
  kUnknown,
  kGga,
  kRmc,
  kGsa,
  kGsv,
};

/// A parsed sentence: exactly one of the optionals is engaged, matching
/// `type`. Unknown-but-well-formed sentences keep their raw body so custom
/// components can handle vendor sentences.
struct Sentence {
  SentenceType type = SentenceType::kUnknown;
  std::string talker = "GP";
  std::optional<GgaSentence> gga;
  std::optional<RmcSentence> rmc;
  std::optional<GsaSentence> gsa;
  std::optional<GsvSentence> gsv;
  std::string raw;  ///< The full sentence as received, without CRLF.
};

/// Human-readable sentence-type name ("GGA", "RMC", ...).
const char* to_string(SentenceType t) noexcept;

}  // namespace perpos::nmea
