#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "perpos/obs/metrics.hpp"
#include "perpos/obs/profiler.hpp"

/// \file introspection.hpp
/// Live introspection: the structured snapshot behind `perpos-top`. The
/// metrics registry answers "how much, ever"; an IntrospectionSnapshot
/// answers "what does the runtime look like *right now*" — lane queue
/// depths, worker utilization, per-component self-time top-K, provider
/// health — in one coherent struct an operator tool can diff between
/// refreshes to derive rates.

namespace perpos::obs {

/// One execution lane as seen at snapshot time.
struct LaneIntrospection {
  std::string name;
  std::uint64_t queue_depth = 0;  ///< Tasks pending right now.
  bool active = false;            ///< A worker is draining it.
  std::uint64_t tasks = 0;        ///< Executed on this lane, ever.
  double busy_us = 0.0;           ///< Wall time spent draining, ever.
  std::uint64_t queue_peak = 0;   ///< High-water depth, ever.
};

/// One pool worker (the last entry is the inline/caller slot).
struct WorkerIntrospection {
  std::uint64_t tasks = 0;
  double busy_us = 0.0;
  std::uint64_t drains = 0;
  std::uint64_t idle_wakeups = 0;
  double utilization = 0.0;  ///< busy / elapsed, in [0,1].
};

/// Per-component accumulated on_input self-time. on_input time *is* self
/// time in this runtime: nested emissions are queued, never run inline.
struct ComponentSelfTime {
  std::string kind;
  std::uint32_t component = 0;
  double total_us = 0.0;
  std::uint64_t count = 0;
};

/// One observed graph (or PositioningService deployment).
struct GraphIntrospection {
  std::string name;
  bool frozen = false;  ///< Executing a compiled plan (vs interpreted).
  std::uint64_t deliveries = 0;
  std::uint64_t rejections = 0;
  std::uint64_t components = 0;
  std::vector<ComponentSelfTime> top_self_time;  ///< Hottest first.
  std::vector<std::string> health;  ///< "provider=state" lines, if any.
};

/// The whole runtime at one instant.
struct IntrospectionSnapshot {
  double captured_us = 0.0;  ///< Steady-clock us (diffable across snaps).
  std::uint64_t tasks_posted = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t tasks_failed = 0;
  std::size_t workers = 0;  ///< Pool threads (0 = inline engine).
  std::vector<LaneIntrospection> lanes;
  std::vector<WorkerIntrospection> worker_stats;
  std::vector<GraphIntrospection> graphs;
};

/// Extract a graph's introspection from its metrics snapshot: deliveries,
/// component count, and the top-`top_k` components by accumulated
/// on_input self-time (requires the graph's timing knob; empty otherwise).
GraphIntrospection graph_introspection(std::string name,
                                       const MetricsSnapshot& metrics,
                                       std::size_t top_k = 5);

/// JSON encoding of a snapshot (machine half of perpos-top --json).
std::string to_json(const IntrospectionSnapshot& snapshot);

/// Render the human dashboard: a lanes × graphs text screen with queue
/// depths, drain rates, worker utilization and self-time top-K. `prev`
/// (the previous refresh) enables rate columns; pass nullptr on the
/// first frame.
std::string render_dashboard(const IntrospectionSnapshot& now,
                             const IntrospectionSnapshot* prev,
                             std::size_t top_k = 5);

}  // namespace perpos::obs
