#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

/// \file metrics.hpp
/// The observability substrate (perpos::obs): a registry of named,
/// labelled metrics — counters, gauges and fixed-bucket histograms — with
/// machine-readable exporters (Prometheus text exposition and JSON).
///
/// PerPos's thesis is that the internal positioning process should be
/// *inspectable*; this module is the runtime half of that promise. The
/// Process Structure Layer exposes structure (graph_dump), the registry
/// exposes behaviour: sample rates, rejection counts, hook costs and
/// on_input latencies.
///
/// Design points:
///  * Hot-path operations (Counter::inc, Histogram::observe) touch only
///    relaxed atomics — no locks, no allocation. The registry mutex is
///    taken only when a metric handle is first created or a snapshot is
///    taken.
///  * Handles returned by the registry are stable for the registry's
///    lifetime (metrics live in a deque), so callers cache raw pointers.
///  * Histograms use fixed upper-bound buckets (Prometheus style, +Inf
///    implicit) so observe() is a branchless-ish linear scan over a dozen
///    doubles — no per-sample allocation, bounded memory.

namespace perpos::obs {

/// Sorted (key, value) pairs identifying one time series of a metric.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  /// Atomic increment (negative `d` decrements) — used for values tracked
  /// from several threads at once, e.g. execution-engine queue depths.
  void add(double d) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram; bucket i counts observations <= bounds[i], with
/// an implicit +Inf bucket at the end. Also tracks sum/min/max.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  /// observe(), additionally stamping `exemplar` (a trace-span id) onto
  /// the bucket the observation lands in. The per-bucket last exemplar
  /// links the latency distribution back to one concrete trace: "a sample
  /// in the 2–5ms bucket? here is a span that took that long". Exemplar 0
  /// records nothing beyond the observation.
  void observe_with_exemplar(double v, std::uint64_t exemplar) noexcept;

  /// Last exemplar recorded for bucket `i`, or 0.
  std::uint64_t exemplar(std::size_t i) const noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::size_t bucket_for(double v) const noexcept;
  std::vector<double> bounds_;
  std::deque<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::deque<std::atomic<std::uint64_t>> exemplars_;  // Parallel to buckets_.
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Default latency buckets in microseconds: 0.5us .. ~8ms, log-spaced.
std::vector<double> default_latency_buckets_us();

// --- Snapshots ---------------------------------------------------------------

struct CounterSnapshot {
  std::string name;
  Labels labels;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  Labels labels;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  Labels labels;
  std::vector<double> bounds;          ///< Upper bounds, +Inf implicit.
  std::vector<std::uint64_t> buckets;  ///< Per-bucket (non-cumulative).
  std::vector<std::uint64_t> exemplars;  ///< Per-bucket last span id (0 = none).
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Bucket-interpolated quantile estimate, q in [0,1]. The error is
  /// bounded by the bucket width around the true value.
  double quantile(double q) const noexcept;
};

/// A point-in-time copy of every metric in a registry.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// First counter with this name (any labels), or nullptr.
  const CounterSnapshot* find_counter(std::string_view name) const noexcept;
  /// Counter with this name and a label equal to (key, value), or nullptr.
  const CounterSnapshot* find_counter(std::string_view name,
                                      std::string_view key,
                                      std::string_view value) const noexcept;
  const GaugeSnapshot* find_gauge(std::string_view name) const noexcept;
  const GaugeSnapshot* find_gauge(std::string_view name, std::string_view key,
                                  std::string_view value) const noexcept;
  const HistogramSnapshot* find_histogram(std::string_view name) const noexcept;
  const HistogramSnapshot* find_histogram(std::string_view name,
                                          std::string_view key,
                                          std::string_view value)
      const noexcept;
};

// --- Registry ----------------------------------------------------------------

/// Owner of all metrics of one observed subsystem (typically one
/// ProcessingGraph). Creation and snapshotting lock; increments do not.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. The returned pointer is valid for the registry's
  /// lifetime; repeated calls with the same (name, labels) return the same
  /// object.
  Counter* counter(const std::string& name, Labels labels = {});
  Gauge* gauge(const std::string& name, Labels labels = {});
  /// `upper_bounds` is only used on first creation; empty means
  /// default_latency_buckets_us().
  Histogram* histogram(const std::string& name, Labels labels = {},
                       std::vector<double> upper_bounds = {});

  MetricsSnapshot snapshot() const;

 private:
  struct Key {
    std::string name;
    Labels labels;
    bool operator<(const Key& o) const noexcept {
      if (name != o.name) return name < o.name;
      return labels < o.labels;
    }
  };

  mutable std::mutex mutex_;
  std::map<Key, Counter*> counter_index_;
  std::map<Key, Gauge*> gauge_index_;
  std::map<Key, Histogram*> histogram_index_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

// --- Exporters ---------------------------------------------------------------

/// Prometheus text exposition format (counters get a _total-preserving
/// name as given; histograms expand to _bucket/_sum/_count series).
std::string to_prometheus_text(const MetricsSnapshot& snapshot);

/// JSON object: {"counters":[...],"gauges":[...],"histograms":[...]}.
std::string to_json(const MetricsSnapshot& snapshot);

/// Escape a string for embedding in a JSON or Prometheus label value.
std::string escape_json(std::string_view s);

// --- Configuration -----------------------------------------------------------

/// What an observed graph records. All knobs independent so the overhead
/// can be dialled: `metrics` alone costs a few relaxed atomic increments
/// per sample; `timing` adds two steady_clock reads per hook/on_input;
/// `tracing` additionally retains flow spans (bounded by trace_capacity);
/// `latency` stamps wall-clock ingest time on root emissions and observes
/// end-to-end ingest→sink latency (with SLO deadline-miss counting when
/// latency_slo_us > 0); `recording` attaches a flight recorder ring of
/// recent structured events for black-box dumps.
struct ObservabilityConfig {
  bool metrics = true;
  bool timing = true;
  bool tracing = false;
  bool latency = false;
  bool recording = false;
  double latency_slo_us = 0.0;        ///< 0 = no deadline accounting.
  std::size_t trace_capacity = 4096;  ///< Completed spans retained (ring).
  std::size_t recorder_capacity = 1024;  ///< Flight events retained per lane.
};

}  // namespace perpos::obs
