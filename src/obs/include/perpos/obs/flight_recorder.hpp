#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

/// \file flight_recorder.hpp
/// The "black box" of a PerPos deployment: a bounded, lock-free, per-lane
/// ring of recent structured events (emissions, deliveries, mutations,
/// failovers, sanitizer findings, task failures). In steady state it costs
/// a handful of relaxed atomic stores per event and is never read; when
/// something goes wrong — a GraphSanitizer PPS rule fires, a worker task
/// throws, an operator asks — the recorder dumps a merged, time-ordered
/// snapshot of the last moments of every lane as JSON and as a Chrome
/// trace_event file.
///
/// Concurrency model: each ring has exactly ONE producer (the thread
/// driving that lane — the execution engine's at-most-one-worker-per-lane
/// drain protocol provides this for free), so record() needs no CAS loop.
/// Readers (dump paths) may run concurrently from any thread: every slot
/// is a per-slot seqlock whose payload is stored through relaxed atomic
/// words, so a torn read is detected and skipped rather than returned —
/// and the scheme is data-race-free under TSan.

namespace perpos::obs {

enum class FlightEventType : std::uint8_t {
  kMark = 0,          ///< Free-form annotation (detail = text).
  kEmit,              ///< Sample left a producer (component, a = sequence).
  kDeliver,           ///< Delivery accepted (component = consumer,
                      ///< a = producer, b = sequence).
  kMutation,          ///< Structural graph mutation (a = mutation kind).
  kFailover,          ///< PL failover transition (a = from sink, b = to
                      ///< sink, detail = target name).
  kSanitizerFinding,  ///< A PPS rule fired (detail = rule id).
  kTaskFailed,        ///< An engine task threw (detail = error message).
  kWatermark,         ///< Lane queue crossed its watermark (a = depth).
  kReconfig,          ///< Live-reconfiguration phase (component = victim,
                      ///< a = epoch, detail = phase: staged/committed/
                      ///< rejected/aborted/rolled_back/tee).
};

/// Name of an event type for exports ("emit", "deliver", ...).
std::string_view flight_event_type_name(FlightEventType type) noexcept;

/// One recorded event. Plain data, fixed size, no heap — the ring stores
/// these through atomic words. `detail` is a NUL-terminated, truncated
/// free-text field (rule id, error message, component kind).
struct FlightEvent {
  std::uint64_t t_ns = 0;  ///< Steady-clock ns since the recorder epoch.
                           ///< 0 at record() time = "stamp now".
  std::uint64_t a = 0;     ///< Type-specific (see FlightEventType).
  std::uint64_t b = 0;
  std::uint32_t lane = 0;  ///< Ring index; filled in by record().
  std::uint32_t graph = 0; ///< Graph tag (deployment-assigned).
  std::uint32_t component = 0xffffffffu;
  FlightEventType type = FlightEventType::kMark;
  std::uint8_t pad_[3] = {0, 0, 0};
  char detail[56] = {0};

  /// Truncating NUL-safe setter for `detail`.
  void set_detail(std::string_view text) noexcept {
    const std::size_t n = text.size() < sizeof(detail) - 1
                              ? text.size()
                              : sizeof(detail) - 1;
    std::memcpy(detail, text.data(), n);
    detail[n] = '\0';
  }
};
static_assert(sizeof(FlightEvent) % 8 == 0, "event must pack into words");

class FlightRecorder {
 public:
  /// `lane_capacity` events are retained per lane ring (rounded up to 1).
  explicit FlightRecorder(std::size_t lane_capacity = 1024);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Register a ring and return its index. Thread-safe; cold path. Ring
  /// addresses are stable for the recorder's lifetime.
  std::uint32_t add_lane(std::string name);

  std::size_t lane_count() const;
  std::string lane_name(std::uint32_t lane) const;
  std::size_t capacity() const noexcept { return capacity_; }

  /// Steady-clock ns since the recorder was constructed.
  std::uint64_t now_ns() const noexcept;

  /// Record `event` into `lane`'s ring. Lock-free, no allocation; safe
  /// against concurrent readers but assumes one producer per lane. An
  /// event with t_ns == 0 is stamped with now_ns() (tests pass explicit
  /// timestamps for determinism). Unknown lanes are dropped silently —
  /// the recorder must never take down the flight it is recording.
  void record(std::uint32_t lane, FlightEvent event) noexcept;

  /// Events overwritten (lost to ring wraparound) on `lane` so far.
  std::uint64_t dropped(std::uint32_t lane) const noexcept;
  /// Events ever recorded on `lane` (including overwritten ones).
  std::uint64_t recorded(std::uint32_t lane) const noexcept;

  // --- Dump ("black box" retrieval) ----------------------------------------

  /// All retained events of every lane, merged into one time-ordered
  /// stream (ties broken by lane id, then by in-lane order, so the merge
  /// is deterministic). Safe to call while lanes are recording; events
  /// being overwritten mid-read are skipped.
  std::vector<FlightEvent> merged_events() const;

  /// JSON dump: {"reason":..,"captured_ns":..,"lanes":[..],"events":[..]}
  /// with events merged time-ordered as in merged_events().
  std::string dump_json(std::string_view reason = {}) const;

  /// Chrome trace_event JSON: one instant event per recorded event,
  /// tid = lane, viewable in Perfetto / chrome://tracing next to the
  /// TraceRecorder flow spans.
  std::string dump_chrome_trace() const;

  // --- Triggers -------------------------------------------------------------

  using DumpHandler =
      std::function<void(const std::string& reason, const FlightRecorder&)>;

  /// Install the handler invoked by trigger(); typically writes
  /// dump_json() / dump_chrome_trace() to files. Replaces any previous
  /// handler; nullptr uninstalls.
  void set_dump_handler(DumpHandler handler);

  /// Fire the black-box dump: records a kMark event with the reason into
  /// lane 0 (if any), then invokes the dump handler. Never throws —
  /// handler exceptions are swallowed (the recorder must not add failures
  /// to the failure being recorded). Thread-safe.
  void trigger(std::string_view reason) noexcept;

  /// trigger() invocations so far.
  std::uint64_t triggers() const noexcept;

 private:
  struct Ring;

  /// Lanes beyond this are refused by add_lane (record() to them is a
  /// silent no-op). Bounds the lock-free lane table.
  static constexpr std::size_t kMaxLanes = 1024;

  Ring* ring(std::uint32_t lane) const noexcept;

  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex lanes_mutex_;
  std::vector<std::unique_ptr<Ring>> lanes_;
  /// Lock-free id→ring map for the hot path: slots are published with
  /// release order by add_lane and never change afterwards.
  std::unique_ptr<std::atomic<Ring*>[]> table_;
  std::atomic<std::size_t> lane_count_{0};
  mutable std::mutex handler_mutex_;
  DumpHandler handler_;
  std::atomic<std::uint64_t> triggers_{0};
};

}  // namespace perpos::obs
