#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "perpos/obs/metrics.hpp"

/// \file profiler.hpp
/// The engine profiler: low-overhead accumulators attributing wall time
/// per (lane, worker) inside the ExecutionEngine. PR 1's metrics layer
/// instruments the graph (hooks, on_input); this instruments the engine
/// around it — which lanes are hot, which workers are busy or starved,
/// where queue depth peaked and when. ROADMAP item 1 (fleet scale-out
/// with lane rebalancing) consumes exactly this: rebalancing needs
/// per-lane busy time and per-worker utilization to decide placement.
///
/// Cost model: every hot-path method is noexcept, allocation-free and
/// touches only relaxed atomics on a cacheline owned by the calling lane
/// or worker (slots are alignas(64), so two workers never false-share).
/// When no profiler is attached the engine pays a single null check.

namespace perpos::obs {

class EngineProfiler {
 public:
  /// Queue-depth high-water marks retained per lane (newest overwrite
  /// oldest): a timeline of when the lane's backlog grew, not just how
  /// high it got.
  static constexpr std::size_t kPeakTimeline = 8;

  /// `workers` pool threads plus one extra slot (index `workers`) for
  /// inline execution — the caller's thread drains lanes itself when the
  /// engine runs with zero workers.
  explicit EngineProfiler(std::size_t workers);
  ~EngineProfiler();

  EngineProfiler(const EngineProfiler&) = delete;
  EngineProfiler& operator=(const EngineProfiler&) = delete;

  /// Register a lane slot and return its index. Thread-safe; cold path.
  std::uint32_t add_lane(std::string name);

  std::size_t lane_count() const;
  std::size_t worker_count() const noexcept { return workers_.size(); }
  /// Slot index recording work done inline on the caller's thread.
  std::uint32_t inline_worker() const noexcept {
    return static_cast<std::uint32_t>(workers_.size() - 1);
  }

  /// Steady-clock ns since the profiler was constructed.
  std::uint64_t now_ns() const noexcept;

  // --- Hot path (relaxed atomics only, no locks, no allocation) -------------

  /// Account a drained batch: `tasks` tasks took `busy_ns` on `worker`
  /// while draining `lane`.
  void on_drain(std::uint32_t lane, std::uint32_t worker, std::uint64_t tasks,
                std::uint64_t busy_ns) noexcept;

  /// Track `lane`'s queue depth after an enqueue; records a new high-water
  /// mark (with timestamp) when `depth` exceeds the previous peak.
  void on_queue_depth(std::uint32_t lane, std::uint64_t depth) noexcept;

  /// A pool worker woke from its idle wait.
  void on_idle_wakeup(std::uint32_t worker) noexcept;

  // --- Snapshots / export ----------------------------------------------------

  struct QueuePeak {
    std::uint64_t t_ns = 0;
    std::uint64_t depth = 0;
  };

  struct LaneSnapshot {
    std::string name;
    std::uint64_t tasks = 0;
    std::uint64_t busy_ns = 0;
    std::uint64_t drains = 0;
    std::uint64_t queue_peak = 0;
    std::vector<QueuePeak> peaks;  ///< Retained timeline, oldest first.
  };

  struct WorkerSnapshot {
    std::uint64_t tasks = 0;
    std::uint64_t busy_ns = 0;
    std::uint64_t drains = 0;
    std::uint64_t idle_wakeups = 0;
    double utilization = 0.0;  ///< busy_ns / profiler elapsed, in [0,1].
  };

  struct Snapshot {
    std::uint64_t elapsed_ns = 0;
    std::vector<LaneSnapshot> lanes;
    std::vector<WorkerSnapshot> workers;
  };

  /// Consistent-enough point-in-time copy (individual values are relaxed
  /// loads; totals may straddle an in-flight drain by one batch).
  Snapshot snapshot() const;

  /// Publish the current accumulators as perpos_prof_* gauges/counters
  /// into `registry`. Cold path, idempotent (gauges are overwritten).
  void drain_into(MetricsRegistry& registry) const;

 private:
  struct LaneSlot;
  struct WorkerSlot;

  /// Bound on the lock-free lane table; add_lane beyond it is refused.
  static constexpr std::size_t kMaxLanes = 1024;

  LaneSlot* lane(std::uint32_t id) const noexcept;

  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex lanes_mutex_;
  std::vector<std::unique_ptr<LaneSlot>> lanes_;
  std::vector<std::string> lane_names_;
  /// Lock-free id→slot map (slots published once with release order).
  std::unique_ptr<std::atomic<LaneSlot*>[]> table_;
  std::atomic<std::size_t> lane_count_{0};
  std::vector<std::unique_ptr<WorkerSlot>> workers_;
};

}  // namespace perpos::obs
