#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "perpos/obs/metrics.hpp"

/// \file trace.hpp
/// Sample-flow tracing: spans recording one sample's journey through the
/// processing graph, source to sink, exportable as Chrome `trace_event`
/// JSON (viewable in Perfetto / chrome://tracing).
///
/// The recorder rides the graph's existing translucency machinery: every
/// sample already carries (producer, sequence) logical-time identity and
/// provenance links to the samples it was derived from. The graph opens a
/// span per on_input invocation, binds every sample emitted during that
/// invocation to the open span, and parents the next hop's span on the
/// binding of the sample it consumes — so the span tree of one delivery
/// mirrors the provenance chain of the delivered sample exactly.

namespace perpos::obs {

/// One completed unit of work. Times are microseconds since the recorder
/// was constructed (steady clock).
struct TraceSpan {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root (a source emission).
  std::string name;          ///< "NmeaParser.on_input", "GpsSensor.emit".
  std::uint32_t component = 0xffffffffu;
  std::uint32_t sample_producer = 0xffffffffu;  ///< Sample being processed.
  std::uint64_t sample_sequence = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

/// Records spans into a bounded ring; completed spans older than
/// `capacity` are discarded (newest are kept). Not thread-safe — the
/// graph's dispatch is synchronous and single-threaded by design.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 4096);

  /// Monotonic microseconds since construction.
  double now_us() const noexcept;

  /// Open a span; returns its id. `sample_*` identify the sample whose
  /// processing the span covers (the delivered sample for on_input spans).
  std::uint64_t open(std::string name, std::uint32_t component,
                     std::uint32_t sample_producer,
                     std::uint64_t sample_sequence, std::uint64_t parent);

  /// Close the span (records its duration and retires it to the ring).
  void close(std::uint64_t id);

  /// Associate the sample identified by (producer, sequence) with `span`:
  /// deliveries of that sample will parent their spans on it.
  void bind_sample(std::uint32_t producer, std::uint64_t sequence,
                   std::uint64_t span);

  /// Span bound to a sample, or 0 when unknown (e.g. evicted).
  std::uint64_t span_for_sample(std::uint32_t producer,
                                std::uint64_t sequence) const noexcept;

  /// Completed spans, oldest first.
  const std::deque<TraceSpan>& spans() const noexcept { return spans_; }

  /// The completed span with this id, or nullptr (searches the ring).
  const TraceSpan* find(std::uint64_t id) const noexcept;

  /// Chrome trace_event JSON ({"traceEvents":[...]}): one "X" (complete)
  /// event per span with args carrying span id, parent id and the sample's
  /// (producer, sequence) identity. Load in Perfetto or chrome://tracing.
  std::string to_chrome_trace_json() const;

  /// Completed spans evicted from the ring so far. Eviction used to be
  /// silent, which made an undersized trace_capacity look like missing
  /// instrumentation; now it is countable (and mirrored into the metrics
  /// counter below, so it shows up in exporters).
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Mirror ring evictions into `counter` (perpos_obs_spans_dropped_total
  /// when wired by the graph). nullptr unwires.
  void set_dropped_counter(Counter* counter) noexcept {
    dropped_counter_ = counter;
  }

  void clear();

 private:
  std::size_t capacity_;
  std::uint64_t next_id_ = 1;
  std::uint64_t dropped_ = 0;
  Counter* dropped_counter_ = nullptr;
  std::chrono::steady_clock::time_point epoch_;
  std::deque<TraceSpan> spans_;                    // Completed ring.
  std::vector<TraceSpan> open_;                    // Stack: dispatch nests.
  std::unordered_map<std::uint64_t, std::uint64_t> sample_spans_;
};

}  // namespace perpos::obs
