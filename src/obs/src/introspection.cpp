#include "perpos/obs/introspection.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace perpos::obs {

namespace {

const std::string* label_value(const Labels& labels, std::string_view key) {
  for (const auto& [k, v] : labels) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string fixed(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

/// Right-pad or truncate to `width` for dashboard columns.
std::string pad(std::string s, std::size_t width) {
  if (s.size() > width) {
    s.resize(width > 1 ? width - 1 : width);
    if (width > 1) s += "~";
  }
  while (s.size() < width) s += ' ';
  return s;
}

}  // namespace

GraphIntrospection graph_introspection(std::string name,
                                       const MetricsSnapshot& metrics,
                                       std::size_t top_k) {
  GraphIntrospection out;
  out.name = std::move(name);
  if (const CounterSnapshot* c =
          metrics.find_counter("perpos_graph_deliveries_total")) {
    out.deliveries = c->value;
  }
  if (const CounterSnapshot* c =
          metrics.find_counter("perpos_graph_rejections_total")) {
    out.rejections = c->value;
  }
  if (const GaugeSnapshot* g = metrics.find_gauge("perpos_graph_components")) {
    out.components = static_cast<std::uint64_t>(g->value);
  }
  for (const HistogramSnapshot& h : metrics.histograms) {
    if (h.name != "perpos_component_on_input_us" || h.count == 0) continue;
    ComponentSelfTime entry;
    if (const std::string* kind = label_value(h.labels, "kind")) {
      entry.kind = *kind;
    }
    if (const std::string* id = label_value(h.labels, "component")) {
      entry.component = static_cast<std::uint32_t>(std::stoul(*id));
    }
    entry.total_us = h.sum;
    entry.count = h.count;
    out.top_self_time.push_back(std::move(entry));
  }
  std::stable_sort(out.top_self_time.begin(), out.top_self_time.end(),
                   [](const ComponentSelfTime& a, const ComponentSelfTime& b) {
                     return a.total_us > b.total_us;
                   });
  if (out.top_self_time.size() > top_k) out.top_self_time.resize(top_k);
  return out;
}

std::string to_json(const IntrospectionSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"captured_us\":" << fixed(snapshot.captured_us, 3)
      << ",\"workers\":" << snapshot.workers
      << ",\"tasks_posted\":" << snapshot.tasks_posted
      << ",\"tasks_executed\":" << snapshot.tasks_executed
      << ",\"tasks_failed\":" << snapshot.tasks_failed << ",\"lanes\":[";
  for (std::size_t i = 0; i < snapshot.lanes.size(); ++i) {
    const LaneIntrospection& l = snapshot.lanes[i];
    if (i) out << ",";
    out << "{\"name\":\"" << escape_json(l.name)
        << "\",\"queue_depth\":" << l.queue_depth
        << ",\"active\":" << (l.active ? "true" : "false")
        << ",\"tasks\":" << l.tasks << ",\"busy_us\":" << fixed(l.busy_us, 1)
        << ",\"queue_peak\":" << l.queue_peak << "}";
  }
  out << "],\"worker_stats\":[";
  for (std::size_t i = 0; i < snapshot.worker_stats.size(); ++i) {
    const WorkerIntrospection& w = snapshot.worker_stats[i];
    if (i) out << ",";
    out << "{\"tasks\":" << w.tasks << ",\"busy_us\":" << fixed(w.busy_us, 1)
        << ",\"drains\":" << w.drains
        << ",\"idle_wakeups\":" << w.idle_wakeups
        << ",\"utilization\":" << fixed(w.utilization, 4) << "}";
  }
  out << "],\"graphs\":[";
  for (std::size_t i = 0; i < snapshot.graphs.size(); ++i) {
    const GraphIntrospection& g = snapshot.graphs[i];
    if (i) out << ",";
    out << "{\"name\":\"" << escape_json(g.name)
        << "\",\"frozen\":" << (g.frozen ? "true" : "false")
        << ",\"deliveries\":" << g.deliveries
        << ",\"rejections\":" << g.rejections
        << ",\"components\":" << g.components << ",\"top_self_time\":[";
    for (std::size_t k = 0; k < g.top_self_time.size(); ++k) {
      const ComponentSelfTime& c = g.top_self_time[k];
      if (k) out << ",";
      out << "{\"kind\":\"" << escape_json(c.kind)
          << "\",\"component\":" << c.component
          << ",\"total_us\":" << fixed(c.total_us, 1)
          << ",\"count\":" << c.count << "}";
    }
    out << "],\"health\":[";
    for (std::size_t k = 0; k < g.health.size(); ++k) {
      if (k) out << ",";
      out << "\"" << escape_json(g.health[k]) << "\"";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

std::string render_dashboard(const IntrospectionSnapshot& now,
                             const IntrospectionSnapshot* prev,
                             std::size_t top_k) {
  std::ostringstream out;
  const double dt_s =
      prev != nullptr && now.captured_us > prev->captured_us
          ? (now.captured_us - prev->captured_us) / 1e6
          : 0.0;

  out << "perpos-top — " << now.workers << " worker"
      << (now.workers == 1 ? "" : "s") << ", " << now.lanes.size() << " lane"
      << (now.lanes.size() == 1 ? "" : "s") << ", " << now.graphs.size()
      << " graph" << (now.graphs.size() == 1 ? "" : "s") << "\n";
  out << "tasks: posted " << now.tasks_posted << "  executed "
      << now.tasks_executed << "  failed " << now.tasks_failed;
  if (dt_s > 0.0 && now.tasks_executed >= prev->tasks_executed) {
    out << "  ("
        << fixed(static_cast<double>(now.tasks_executed -
                                     prev->tasks_executed) /
                     dt_s,
                 0)
        << "/s)";
  }
  out << "\n\n";

  out << pad("LANE", 18) << pad("DEPTH", 7) << pad("PEAK", 7)
      << pad("TASKS", 10) << pad("DRAIN/S", 9) << pad("BUSY_MS", 9)
      << "ACTIVE\n";
  for (const LaneIntrospection& l : now.lanes) {
    double rate = 0.0;
    if (dt_s > 0.0) {
      for (const LaneIntrospection& p : prev->lanes) {
        if (p.name == l.name && l.tasks >= p.tasks) {
          rate = static_cast<double>(l.tasks - p.tasks) / dt_s;
          break;
        }
      }
    }
    out << pad(l.name, 18) << pad(std::to_string(l.queue_depth), 7)
        << pad(std::to_string(l.queue_peak), 7)
        << pad(std::to_string(l.tasks), 10) << pad(fixed(rate, 0), 9)
        << pad(fixed(l.busy_us / 1000.0, 1), 9) << (l.active ? "*" : "-")
        << "\n";
  }

  if (!now.worker_stats.empty()) {
    out << "\n" << pad("WORKER", 10) << pad("TASKS", 10) << pad("BUSY_MS", 9)
        << pad("DRAINS", 9) << pad("WAKEUPS", 9) << "UTIL%\n";
    for (std::size_t i = 0; i < now.worker_stats.size(); ++i) {
      const WorkerIntrospection& w = now.worker_stats[i];
      const bool is_inline = i + 1 == now.worker_stats.size();
      if (is_inline && w.tasks == 0) continue;  // Unused inline slot.
      out << pad(is_inline ? "inline" : std::to_string(i), 10)
          << pad(std::to_string(w.tasks), 10)
          << pad(fixed(w.busy_us / 1000.0, 1), 9)
          << pad(std::to_string(w.drains), 9)
          << pad(std::to_string(w.idle_wakeups), 9)
          << fixed(w.utilization * 100.0, 1) << "\n";
    }
  }

  for (const GraphIntrospection& g : now.graphs) {
    out << "\n" << g.name << (g.frozen ? " [frozen]" : "") << ": "
        << g.components << " components, " << g.deliveries << " deliveries";
    if (dt_s > 0.0) {
      for (const GraphIntrospection& p : prev->graphs) {
        if (p.name == g.name && g.deliveries >= p.deliveries) {
          out << " ("
              << fixed(static_cast<double>(g.deliveries - p.deliveries) /
                           dt_s,
                       0)
              << "/s)";
          break;
        }
      }
    }
    if (g.rejections != 0) out << ", " << g.rejections << " rejected";
    out << "\n";
    for (const std::string& h : g.health) {
      out << "  health: " << h << "\n";
    }
    const std::size_t n = std::min(top_k, g.top_self_time.size());
    for (std::size_t k = 0; k < n; ++k) {
      const ComponentSelfTime& c = g.top_self_time[k];
      out << "  " << pad(c.kind + "#" + std::to_string(c.component), 24)
          << pad(fixed(c.total_us / 1000.0, 2) + "ms", 12) << c.count
          << " inputs\n";
    }
  }
  return out.str();
}

}  // namespace perpos::obs
