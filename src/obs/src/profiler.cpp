#include "perpos/obs/profiler.hpp"

namespace perpos::obs {

struct alignas(64) EngineProfiler::LaneSlot {
  std::atomic<std::uint64_t> tasks{0};
  std::atomic<std::uint64_t> busy_ns{0};
  std::atomic<std::uint64_t> drains{0};
  std::atomic<std::uint64_t> queue_peak{0};
  std::atomic<std::uint64_t> peak_count{0};
  std::atomic<std::uint64_t> peak_t_ns[kPeakTimeline] = {};
  std::atomic<std::uint64_t> peak_depth[kPeakTimeline] = {};
};

struct alignas(64) EngineProfiler::WorkerSlot {
  std::atomic<std::uint64_t> tasks{0};
  std::atomic<std::uint64_t> busy_ns{0};
  std::atomic<std::uint64_t> drains{0};
  std::atomic<std::uint64_t> idle_wakeups{0};
};

EngineProfiler::EngineProfiler(std::size_t workers)
    : epoch_(std::chrono::steady_clock::now()),
      table_(new std::atomic<LaneSlot*>[kMaxLanes]) {
  for (std::size_t i = 0; i < kMaxLanes; ++i) {
    table_[i].store(nullptr, std::memory_order_relaxed);
  }
  workers_.reserve(workers + 1);
  for (std::size_t i = 0; i < workers + 1; ++i) {
    workers_.push_back(std::make_unique<WorkerSlot>());
  }
}

EngineProfiler::~EngineProfiler() = default;

std::uint32_t EngineProfiler::add_lane(std::string name) {
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  if (lanes_.size() >= kMaxLanes) {
    return static_cast<std::uint32_t>(kMaxLanes);
  }
  lanes_.push_back(std::make_unique<LaneSlot>());
  lane_names_.push_back(std::move(name));
  const auto id = static_cast<std::uint32_t>(lanes_.size() - 1);
  table_[id].store(lanes_.back().get(), std::memory_order_release);
  lane_count_.store(lanes_.size(), std::memory_order_release);
  return id;
}

std::size_t EngineProfiler::lane_count() const {
  return lane_count_.load(std::memory_order_acquire);
}

EngineProfiler::LaneSlot* EngineProfiler::lane(
    std::uint32_t id) const noexcept {
  if (id >= kMaxLanes) return nullptr;
  return table_[id].load(std::memory_order_acquire);
}

std::uint64_t EngineProfiler::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void EngineProfiler::on_drain(std::uint32_t lane_id, std::uint32_t worker,
                              std::uint64_t tasks,
                              std::uint64_t busy_ns) noexcept {
  if (LaneSlot* l = lane(lane_id)) {
    l->tasks.fetch_add(tasks, std::memory_order_relaxed);
    l->busy_ns.fetch_add(busy_ns, std::memory_order_relaxed);
    l->drains.fetch_add(1, std::memory_order_relaxed);
  }
  if (worker < workers_.size()) {
    WorkerSlot& w = *workers_[worker];
    w.tasks.fetch_add(tasks, std::memory_order_relaxed);
    w.busy_ns.fetch_add(busy_ns, std::memory_order_relaxed);
    w.drains.fetch_add(1, std::memory_order_relaxed);
  }
}

void EngineProfiler::on_queue_depth(std::uint32_t lane_id,
                                    std::uint64_t depth) noexcept {
  LaneSlot* l = lane(lane_id);
  if (l == nullptr) return;
  std::uint64_t peak = l->queue_peak.load(std::memory_order_relaxed);
  while (depth > peak) {
    if (l->queue_peak.compare_exchange_weak(peak, depth,
                                            std::memory_order_relaxed)) {
      // New high-water mark: stamp it into the timeline ring. Writers to
      // one lane are serialized by the engine's lane mutex, so the ring
      // index never races; readers tolerate a torn (t, depth) pair — the
      // timeline is diagnostic, not transactional.
      const std::uint64_t idx =
          l->peak_count.fetch_add(1, std::memory_order_relaxed) %
          kPeakTimeline;
      l->peak_t_ns[idx].store(now_ns(), std::memory_order_relaxed);
      l->peak_depth[idx].store(depth, std::memory_order_relaxed);
      return;
    }
  }
}

void EngineProfiler::on_idle_wakeup(std::uint32_t worker) noexcept {
  if (worker < workers_.size()) {
    workers_[worker]->idle_wakeups.fetch_add(1, std::memory_order_relaxed);
  }
}

EngineProfiler::Snapshot EngineProfiler::snapshot() const {
  Snapshot out;
  out.elapsed_ns = now_ns();
  {
    std::lock_guard<std::mutex> lock(lanes_mutex_);
    out.lanes.reserve(lanes_.size());
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      const LaneSlot& l = *lanes_[i];
      LaneSnapshot s;
      s.name = lane_names_[i];
      s.tasks = l.tasks.load(std::memory_order_relaxed);
      s.busy_ns = l.busy_ns.load(std::memory_order_relaxed);
      s.drains = l.drains.load(std::memory_order_relaxed);
      s.queue_peak = l.queue_peak.load(std::memory_order_relaxed);
      const std::uint64_t n = l.peak_count.load(std::memory_order_relaxed);
      const std::uint64_t retained = n < kPeakTimeline ? n : kPeakTimeline;
      s.peaks.reserve(retained);
      for (std::uint64_t k = n - retained; k < n; ++k) {
        QueuePeak p;
        p.t_ns = l.peak_t_ns[k % kPeakTimeline].load(std::memory_order_relaxed);
        p.depth =
            l.peak_depth[k % kPeakTimeline].load(std::memory_order_relaxed);
        s.peaks.push_back(p);
      }
      out.lanes.push_back(std::move(s));
    }
  }
  out.workers.reserve(workers_.size());
  for (const auto& wptr : workers_) {
    const WorkerSlot& w = *wptr;
    WorkerSnapshot s;
    s.tasks = w.tasks.load(std::memory_order_relaxed);
    s.busy_ns = w.busy_ns.load(std::memory_order_relaxed);
    s.drains = w.drains.load(std::memory_order_relaxed);
    s.idle_wakeups = w.idle_wakeups.load(std::memory_order_relaxed);
    s.utilization = out.elapsed_ns == 0
                        ? 0.0
                        : static_cast<double>(s.busy_ns) /
                              static_cast<double>(out.elapsed_ns);
    out.workers.push_back(s);
  }
  return out;
}

void EngineProfiler::drain_into(MetricsRegistry& registry) const {
  const Snapshot snap = snapshot();
  for (const LaneSnapshot& l : snap.lanes) {
    const Labels labels{{"lane", l.name}};
    registry.gauge("perpos_prof_lane_tasks", labels)
        ->set(static_cast<double>(l.tasks));
    registry.gauge("perpos_prof_lane_busy_us", labels)
        ->set(static_cast<double>(l.busy_ns) / 1000.0);
    registry.gauge("perpos_prof_lane_drains", labels)
        ->set(static_cast<double>(l.drains));
    registry.gauge("perpos_prof_lane_queue_peak", labels)
        ->set(static_cast<double>(l.queue_peak));
  }
  for (std::size_t i = 0; i < snap.workers.size(); ++i) {
    const WorkerSnapshot& w = snap.workers[i];
    const bool is_inline = i + 1 == snap.workers.size();
    const Labels labels{{"worker", is_inline ? "inline" : std::to_string(i)}};
    registry.gauge("perpos_prof_worker_tasks", labels)
        ->set(static_cast<double>(w.tasks));
    registry.gauge("perpos_prof_worker_busy_us", labels)
        ->set(static_cast<double>(w.busy_ns) / 1000.0);
    registry.gauge("perpos_prof_worker_drains", labels)
        ->set(static_cast<double>(w.drains));
    registry.gauge("perpos_prof_worker_idle_wakeups", labels)
        ->set(static_cast<double>(w.idle_wakeups));
    registry.gauge("perpos_prof_worker_utilization", labels)
        ->set(w.utilization);
  }
}

}  // namespace perpos::obs
