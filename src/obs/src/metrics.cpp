#include "perpos/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace perpos::obs {

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_.resize(bounds_.size() + 1);  // atomics value-initialize to 0
  exemplars_.resize(bounds_.size() + 1);
}

std::size_t Histogram::bucket_for(double v) const noexcept {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  return i;
}

void Histogram::observe_with_exemplar(double v,
                                      std::uint64_t exemplar) noexcept {
  if (exemplar != 0) {
    exemplars_[bucket_for(v)].store(exemplar, std::memory_order_relaxed);
  }
  observe(v);
}

std::uint64_t Histogram::exemplar(std::size_t i) const noexcept {
  return i < exemplars_.size()
             ? exemplars_[i].load(std::memory_order_relaxed)
             : 0;
}

void Histogram::observe(double v) noexcept {
  const std::size_t i = bucket_for(v);
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Relaxed CAS loops; the graph dispatch is single-threaded so these
  // almost never retry, but remain correct if observers run concurrently.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed)) {
  }
  if (count_.load(std::memory_order_relaxed) == 1) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
    return;
  }
  double lo = min_.load(std::memory_order_relaxed);
  while (v < lo &&
         !min_.compare_exchange_weak(lo, v, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (v > hi &&
         !max_.compare_exchange_weak(hi, v, std::memory_order_relaxed)) {
  }
}

std::vector<double> default_latency_buckets_us() {
  return {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 4000, 8000};
}

// --- Snapshots ---------------------------------------------------------------

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= target && buckets[i] > 0) {
      // Interpolate within the bucket [lower, upper].
      const double lower = i == 0 ? std::min(min, bounds.empty() ? min : bounds[0])
                                  : bounds[i - 1];
      const double upper = i < bounds.size() ? bounds[i] : max;
      const double frac =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[i]);
      const double lo = std::max(lower, min);
      const double hi = std::min(std::max(upper, lo), max);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return max;
}

namespace {

template <typename Vec>
typename Vec::const_pointer find_by_name(const Vec& v, std::string_view name) {
  for (const auto& m : v) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

template <typename Vec>
typename Vec::const_pointer find_by_label(const Vec& v, std::string_view name,
                                          std::string_view key,
                                          std::string_view value) {
  for (const auto& m : v) {
    if (m.name != name) continue;
    for (const auto& [k, val] : m.labels) {
      if (k == key && val == value) return &m;
    }
  }
  return nullptr;
}

}  // namespace

const CounterSnapshot* MetricsSnapshot::find_counter(
    std::string_view name) const noexcept {
  return find_by_name(counters, name);
}

const CounterSnapshot* MetricsSnapshot::find_counter(
    std::string_view name, std::string_view key,
    std::string_view value) const noexcept {
  return find_by_label(counters, name, key, value);
}

const GaugeSnapshot* MetricsSnapshot::find_gauge(
    std::string_view name) const noexcept {
  return find_by_name(gauges, name);
}

const GaugeSnapshot* MetricsSnapshot::find_gauge(
    std::string_view name, std::string_view key,
    std::string_view value) const noexcept {
  return find_by_label(gauges, name, key, value);
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(
    std::string_view name) const noexcept {
  return find_by_name(histograms, name);
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(
    std::string_view name, std::string_view key,
    std::string_view value) const noexcept {
  return find_by_label(histograms, name, key, value);
}

// --- Registry ----------------------------------------------------------------

Counter* MetricsRegistry::counter(const std::string& name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  const std::lock_guard<std::mutex> lock(mutex_);
  Key key{name, std::move(labels)};
  if (const auto it = counter_index_.find(key); it != counter_index_.end()) {
    return it->second;
  }
  counters_.emplace_back();
  Counter* c = &counters_.back();
  counter_index_.emplace(std::move(key), c);
  return c;
}

Gauge* MetricsRegistry::gauge(const std::string& name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  const std::lock_guard<std::mutex> lock(mutex_);
  Key key{name, std::move(labels)};
  if (const auto it = gauge_index_.find(key); it != gauge_index_.end()) {
    return it->second;
  }
  gauges_.emplace_back();
  Gauge* g = &gauges_.back();
  gauge_index_.emplace(std::move(key), g);
  return g;
}

Histogram* MetricsRegistry::histogram(const std::string& name, Labels labels,
                                      std::vector<double> upper_bounds) {
  std::sort(labels.begin(), labels.end());
  const std::lock_guard<std::mutex> lock(mutex_);
  Key key{name, std::move(labels)};
  if (const auto it = histogram_index_.find(key);
      it != histogram_index_.end()) {
    return it->second;
  }
  if (upper_bounds.empty()) upper_bounds = default_latency_buckets_us();
  histograms_.emplace_back(std::move(upper_bounds));
  Histogram* h = &histograms_.back();
  histogram_index_.emplace(std::move(key), h);
  return h;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counter_index_.size());
  for (const auto& [key, c] : counter_index_) {
    out.counters.push_back(CounterSnapshot{key.name, key.labels, c->value()});
  }
  out.gauges.reserve(gauge_index_.size());
  for (const auto& [key, g] : gauge_index_) {
    out.gauges.push_back(GaugeSnapshot{key.name, key.labels, g->value()});
  }
  out.histograms.reserve(histogram_index_.size());
  for (const auto& [key, h] : histogram_index_) {
    HistogramSnapshot s;
    s.name = key.name;
    s.labels = key.labels;
    s.bounds = h->bounds_;
    s.buckets.reserve(h->buckets_.size());
    for (const auto& b : h->buckets_) {
      s.buckets.push_back(b.load(std::memory_order_relaxed));
    }
    s.exemplars.reserve(h->exemplars_.size());
    for (const auto& e : h->exemplars_) {
      s.exemplars.push_back(e.load(std::memory_order_relaxed));
    }
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min_.load(std::memory_order_relaxed);
    s.max = h->max_.load(std::memory_order_relaxed);
    out.histograms.push_back(std::move(s));
  }
  return out;
}

// --- Exporters ---------------------------------------------------------------

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string label_block(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + escape_json(v) + "\"";
  }
  out += "}";
  return out;
}

std::string labels_json(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + escape_json(k) + "\":\"" + escape_json(v) + "\"";
  }
  return out + "}";
}

std::string fmt_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string to_prometheus_text(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& c : snapshot.counters) {
    out << "# TYPE " << c.name << " counter\n";
    out << c.name << label_block(c.labels) << " " << c.value << "\n";
  }
  for (const auto& g : snapshot.gauges) {
    out << "# TYPE " << g.name << " gauge\n";
    out << g.name << label_block(g.labels) << " " << fmt_double(g.value)
        << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    out << "# TYPE " << h.name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      Labels with_le = h.labels;
      with_le.emplace_back(
          "le", i < h.bounds.size() ? fmt_double(h.bounds[i]) : "+Inf");
      out << h.name << "_bucket" << label_block(with_le) << " " << cumulative
          << "\n";
    }
    out << h.name << "_sum" << label_block(h.labels) << " "
        << fmt_double(h.sum) << "\n";
    out << h.name << "_count" << label_block(h.labels) << " " << h.count
        << "\n";
  }
  return out.str();
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"counters\":[";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    if (i) out << ",";
    out << "{\"name\":\"" << escape_json(c.name)
        << "\",\"labels\":" << labels_json(c.labels) << ",\"value\":" << c.value
        << "}";
  }
  out << "],\"gauges\":[";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    if (i) out << ",";
    out << "{\"name\":\"" << escape_json(g.name)
        << "\",\"labels\":" << labels_json(g.labels)
        << ",\"value\":" << fmt_double(g.value) << "}";
  }
  out << "],\"histograms\":[";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    if (i) out << ",";
    out << "{\"name\":\"" << escape_json(h.name)
        << "\",\"labels\":" << labels_json(h.labels) << ",\"bounds\":[";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b) out << ",";
      out << fmt_double(h.bounds[b]);
    }
    out << "],\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b) out << ",";
      out << h.buckets[b];
    }
    out << "]";
    bool any_exemplar = false;
    for (const std::uint64_t e : h.exemplars) any_exemplar |= e != 0;
    if (any_exemplar) {
      out << ",\"exemplars\":[";
      for (std::size_t b = 0; b < h.exemplars.size(); ++b) {
        if (b) out << ",";
        out << h.exemplars[b];
      }
      out << "]";
    }
    out << ",\"count\":" << h.count << ",\"sum\":" << fmt_double(h.sum)
        << ",\"min\":" << fmt_double(h.min) << ",\"max\":" << fmt_double(h.max)
        << ",\"p50\":" << fmt_double(h.quantile(0.50))
        << ",\"p95\":" << fmt_double(h.quantile(0.95)) << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace perpos::obs
