#include "perpos/obs/flight_recorder.hpp"

#include "perpos/obs/metrics.hpp"  // escape_json

#include <algorithm>
#include <sstream>
#include <type_traits>

namespace perpos::obs {

namespace {

constexpr std::size_t kEventWords = sizeof(FlightEvent) / 8;

/// Pack a FlightEvent into u64 words (and back) so ring slots can store
/// the payload through relaxed atomics — torn reads become detectable
/// seqlock retries instead of undefined behaviour.
void pack(const FlightEvent& event, std::uint64_t* words) noexcept {
  std::memcpy(words, &event, sizeof(FlightEvent));
}

void unpack(const std::uint64_t* words, FlightEvent& event) noexcept {
  static_assert(std::is_trivially_copyable_v<FlightEvent>);
  std::memcpy(static_cast<void*>(&event), words, sizeof(FlightEvent));
}

}  // namespace

std::string_view flight_event_type_name(FlightEventType type) noexcept {
  switch (type) {
    case FlightEventType::kMark: return "mark";
    case FlightEventType::kEmit: return "emit";
    case FlightEventType::kDeliver: return "deliver";
    case FlightEventType::kMutation: return "mutation";
    case FlightEventType::kFailover: return "failover";
    case FlightEventType::kSanitizerFinding: return "sanitizer_finding";
    case FlightEventType::kTaskFailed: return "task_failed";
    case FlightEventType::kWatermark: return "watermark";
    case FlightEventType::kReconfig: return "reconfig";
  }
  return "unknown";
}

/// One per-lane ring. `head` counts events ever written; slot i of event n
/// is n % capacity. Each slot carries a seqlock: the sequence is odd while
/// the (single) writer rewrites the payload words, and 2*(n+1) once event
/// n is stable — readers who see matching even sequences before and after
/// copying the words hold a consistent event.
struct FlightRecorder::Ring {
  explicit Ring(std::string n, std::size_t capacity)
      : name(std::move(n)), slots(capacity) {}

  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> words[kEventWords] = {};
  };

  const std::string name;
  std::vector<Slot> slots;
  std::atomic<std::uint64_t> head{0};

  void write(const FlightEvent& event) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    Slot& slot = slots[h % slots.size()];
    slot.seq.store(2 * h + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    std::uint64_t words[kEventWords];
    pack(event, words);
    for (std::size_t w = 0; w < kEventWords; ++w) {
      slot.words[w].store(words[w], std::memory_order_relaxed);
    }
    slot.seq.store(2 * (h + 1), std::memory_order_release);
    head.store(h + 1, std::memory_order_release);
  }

  /// Copy the retained events, oldest first, skipping slots caught
  /// mid-rewrite. `base` receives the index of the oldest returned event.
  std::vector<FlightEvent> read() const {
    std::vector<FlightEvent> out;
    const std::uint64_t h = head.load(std::memory_order_acquire);
    const std::uint64_t cap = slots.size();
    const std::uint64_t first = h > cap ? h - cap : 0;
    out.reserve(static_cast<std::size_t>(h - first));
    for (std::uint64_t n = first; n < h; ++n) {
      const Slot& slot = slots[n % cap];
      const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 != 2 * (n + 1)) continue;  // Overwritten or being rewritten.
      std::uint64_t words[kEventWords];
      for (std::size_t w = 0; w < kEventWords; ++w) {
        words[w] = slot.words[w].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s1) continue;
      FlightEvent event;
      unpack(words, event);
      out.push_back(event);
    }
    return out;
  }
};

FlightRecorder::FlightRecorder(std::size_t lane_capacity)
    : capacity_(lane_capacity == 0 ? 1 : lane_capacity),
      epoch_(std::chrono::steady_clock::now()),
      table_(new std::atomic<Ring*>[kMaxLanes]) {
  for (std::size_t i = 0; i < kMaxLanes; ++i) {
    table_[i].store(nullptr, std::memory_order_relaxed);
  }
}

FlightRecorder::~FlightRecorder() = default;

std::uint32_t FlightRecorder::add_lane(std::string name) {
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  if (lanes_.size() >= kMaxLanes) {
    // Refused lanes alias to an id record() treats as unknown.
    return static_cast<std::uint32_t>(kMaxLanes);
  }
  lanes_.push_back(std::make_unique<Ring>(std::move(name), capacity_));
  const auto id = static_cast<std::uint32_t>(lanes_.size() - 1);
  table_[id].store(lanes_.back().get(), std::memory_order_release);
  lane_count_.store(lanes_.size(), std::memory_order_release);
  return id;
}

std::size_t FlightRecorder::lane_count() const {
  return lane_count_.load(std::memory_order_acquire);
}

std::string FlightRecorder::lane_name(std::uint32_t lane) const {
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  return lane < lanes_.size() ? lanes_[lane]->name : std::string();
}

FlightRecorder::Ring* FlightRecorder::ring(std::uint32_t lane) const noexcept {
  // Lock-free: rings have stable addresses, and table_ slots go from
  // nullptr to their final value exactly once (published with release
  // order by add_lane).
  if (lane >= kMaxLanes) return nullptr;
  return table_[lane].load(std::memory_order_acquire);
}

std::uint64_t FlightRecorder::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void FlightRecorder::record(std::uint32_t lane, FlightEvent event) noexcept {
  Ring* r = ring(lane);
  if (r == nullptr) return;
  event.lane = lane;
  if (event.t_ns == 0) event.t_ns = now_ns();
  r->write(event);
}

std::uint64_t FlightRecorder::dropped(std::uint32_t lane) const noexcept {
  const Ring* r = ring(lane);
  if (r == nullptr) return 0;
  const std::uint64_t h = r->head.load(std::memory_order_acquire);
  return h > capacity_ ? h - capacity_ : 0;
}

std::uint64_t FlightRecorder::recorded(std::uint32_t lane) const noexcept {
  const Ring* r = ring(lane);
  return r == nullptr ? 0 : r->head.load(std::memory_order_acquire);
}

std::vector<FlightEvent> FlightRecorder::merged_events() const {
  std::vector<std::vector<FlightEvent>> per_lane;
  {
    std::lock_guard<std::mutex> lock(lanes_mutex_);
    per_lane.reserve(lanes_.size());
    for (const auto& r : lanes_) per_lane.push_back(r->read());
  }
  std::vector<FlightEvent> merged;
  std::size_t total = 0;
  for (const auto& v : per_lane) total += v.size();
  merged.reserve(total);
  for (const auto& v : per_lane) {
    merged.insert(merged.end(), v.begin(), v.end());
  }
  // Deterministic merge: time-ordered; ties by lane then by the in-lane
  // order the stable sort preserves.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const FlightEvent& x, const FlightEvent& y) {
                     if (x.t_ns != y.t_ns) return x.t_ns < y.t_ns;
                     return x.lane < y.lane;
                   });
  return merged;
}

std::string FlightRecorder::dump_json(std::string_view reason) const {
  const std::vector<FlightEvent> events = merged_events();
  std::ostringstream out;
  out << "{\"reason\":\"" << escape_json(reason) << "\",\"captured_ns\":"
      << now_ns() << ",\"lane_capacity\":" << capacity_ << ",\"lanes\":[";
  {
    std::lock_guard<std::mutex> lock(lanes_mutex_);
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      if (i) out << ",";
      const std::uint64_t head =
          lanes_[i]->head.load(std::memory_order_acquire);
      out << "{\"id\":" << i << ",\"name\":\"" << escape_json(lanes_[i]->name)
          << "\",\"recorded\":" << head << ",\"dropped\":"
          << (head > capacity_ ? head - capacity_ : 0) << "}";
    }
  }
  out << "],\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    if (i) out << ",";
    out << "{\"t_ns\":" << e.t_ns << ",\"lane\":" << e.lane << ",\"type\":\""
        << flight_event_type_name(e.type) << "\",\"graph\":" << e.graph
        << ",\"component\":";
    if (e.component == 0xffffffffu) {
      out << "null";
    } else {
      out << e.component;
    }
    out << ",\"a\":" << e.a << ",\"b\":" << e.b << ",\"detail\":\""
        << escape_json(e.detail) << "\"}";
  }
  out << "]}";
  return out.str();
}

std::string FlightRecorder::dump_chrome_trace() const {
  const std::vector<FlightEvent> events = merged_events();
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  {
    std::lock_guard<std::mutex> lock(lanes_mutex_);
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      if (!first) out << ",";
      first = false;
      out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << i
          << ",\"args\":{\"name\":\"lane " << escape_json(lanes_[i]->name)
          << "\"}}";
    }
  }
  for (const FlightEvent& e : events) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << flight_event_type_name(e.type);
    if (e.detail[0] != '\0') out << ": " << escape_json(e.detail);
    out << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << e.lane
        << ",\"ts\":" << static_cast<double>(e.t_ns) / 1000.0
        << ",\"args\":{\"graph\":" << e.graph << ",\"component\":"
        << e.component << ",\"a\":" << e.a << ",\"b\":" << e.b << "}}";
  }
  out << "]}";
  return out.str();
}

void FlightRecorder::set_dump_handler(DumpHandler handler) {
  std::lock_guard<std::mutex> lock(handler_mutex_);
  handler_ = std::move(handler);
}

void FlightRecorder::trigger(std::string_view reason) noexcept {
  triggers_.fetch_add(1, std::memory_order_relaxed);
  if (lane_count() > 0) {
    FlightEvent mark;
    mark.type = FlightEventType::kMark;
    mark.set_detail(reason);
    record(0, mark);
  }
  DumpHandler handler;
  {
    std::lock_guard<std::mutex> lock(handler_mutex_);
    handler = handler_;
  }
  if (!handler) return;
  try {
    handler(std::string(reason), *this);
  } catch (...) {
    // A failing dump must not escalate the failure being dumped.
  }
}

std::uint64_t FlightRecorder::triggers() const noexcept {
  return triggers_.load(std::memory_order_relaxed);
}

}  // namespace perpos::obs
