#include "perpos/obs/trace.hpp"

#include <algorithm>
#include <sstream>

namespace perpos::obs {

namespace {

std::uint64_t sample_key(std::uint32_t producer,
                         std::uint64_t sequence) noexcept {
  // Sequences are per-producer and realistically < 2^32 in any run we
  // record; fold the producer into the top bits for a single-word key.
  return (static_cast<std::uint64_t>(producer) << 32) ^ sequence;
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {}

double TraceRecorder::now_us() const noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint64_t TraceRecorder::open(std::string name, std::uint32_t component,
                                  std::uint32_t sample_producer,
                                  std::uint64_t sample_sequence,
                                  std::uint64_t parent) {
  TraceSpan span;
  span.id = next_id_++;
  span.parent = parent;
  span.name = std::move(name);
  span.component = component;
  span.sample_producer = sample_producer;
  span.sample_sequence = sample_sequence;
  span.ts_us = now_us();
  open_.push_back(std::move(span));
  return open_.back().id;
}

void TraceRecorder::close(std::uint64_t id) {
  // Dispatch is strictly nested, so the span is the top of the stack; the
  // loop tolerates exception-unwound frames that were never closed.
  while (!open_.empty()) {
    TraceSpan span = std::move(open_.back());
    open_.pop_back();
    const bool match = span.id == id;
    span.dur_us = now_us() - span.ts_us;
    spans_.push_back(std::move(span));
    while (spans_.size() > capacity_) {
      spans_.pop_front();
      ++dropped_;
      if (dropped_counter_ != nullptr) dropped_counter_->inc();
    }
    if (match) return;
  }
}

void TraceRecorder::bind_sample(std::uint32_t producer, std::uint64_t sequence,
                                std::uint64_t span) {
  // Bound memory: the binding table is transient routing state; once it
  // grows far past the span ring it only holds evicted history.
  if (sample_spans_.size() > capacity_ * 4) sample_spans_.clear();
  sample_spans_[sample_key(producer, sequence)] = span;
}

std::uint64_t TraceRecorder::span_for_sample(
    std::uint32_t producer, std::uint64_t sequence) const noexcept {
  const auto it = sample_spans_.find(sample_key(producer, sequence));
  return it == sample_spans_.end() ? 0 : it->second;
}

const TraceSpan* TraceRecorder::find(std::uint64_t id) const noexcept {
  for (const TraceSpan& s : spans_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

std::string TraceRecorder::to_chrome_trace_json() const {
  std::ostringstream out;
  out << "{\"droppedSpans\":" << dropped_ << ",\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& s : spans_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << s.name << "\",\"ph\":\"X\",\"pid\":1,\"tid\":1"
        << ",\"ts\":" << s.ts_us << ",\"dur\":" << s.dur_us << ",\"args\":{"
        << "\"span\":" << s.id << ",\"parent\":" << s.parent
        << ",\"component\":" << s.component << ",\"sample\":\""
        << s.sample_producer << ":" << s.sample_sequence << "\"}}";
  }
  out << "]}";
  return out.str();
}

void TraceRecorder::clear() {
  spans_.clear();
  open_.clear();
  sample_spans_.clear();
}

}  // namespace perpos::obs
