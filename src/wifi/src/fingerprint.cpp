#include "perpos/wifi/fingerprint.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace perpos::wifi {

FingerprintDatabase FingerprintDatabase::survey(const SignalModel& model,
                                                const Building& building,
                                                double grid_m,
                                                int surveys_per_point,
                                                perpos::sim::Random* random) {
  FingerprintDatabase db;
  db.set_frame_id(building.name());
  const geo::LocalBox& box = building.footprint();
  for (double y = box.min_y + grid_m / 2.0; y < box.max_y; y += grid_m) {
    for (double x = box.min_x + grid_m / 2.0; x < box.max_x; x += grid_m) {
      const LocalPoint p{x, y};
      if (!building.inside_footprint(p)) continue;

      Fingerprint fp;
      fp.position = p;
      if (surveys_per_point > 0 && random != nullptr) {
        // Average several noisy scans per point.
        std::map<std::string, std::pair<double, int>> acc;
        for (int s = 0; s < surveys_per_point; ++s) {
          const RssiScan scan =
              model.scan_at(p, *random, perpos::sim::SimTime::zero());
          for (const RssiReading& r : scan.readings) {
            auto& [sum, count] = acc[r.ap_id];
            sum += r.rssi_dbm;
            ++count;
          }
        }
        for (const auto& [ap, sc] : acc) {
          fp.readings.push_back(
              RssiReading{ap, sc.first / static_cast<double>(sc.second)});
        }
      } else {
        const RssiScan scan =
            model.ideal_scan_at(p, perpos::sim::SimTime::zero());
        fp.readings = scan.readings;
      }
      if (!fp.readings.empty()) db.add(std::move(fp));
    }
  }
  return db;
}

double FingerprintDatabase::signal_distance(
    const RssiScan& scan, const std::vector<RssiReading>& reference,
    double missing_rssi_dbm) {
  double sum_sq = 0.0;
  std::size_t dims = 0;

  for (const RssiReading& s : scan.readings) {
    double ref = missing_rssi_dbm;
    for (const RssiReading& r : reference) {
      if (r.ap_id == s.ap_id) {
        ref = r.rssi_dbm;
        break;
      }
    }
    const double d = s.rssi_dbm - ref;
    sum_sq += d * d;
    ++dims;
  }
  // APs present in the reference but missing from the scan.
  for (const RssiReading& r : reference) {
    if (scan.find(r.ap_id) != nullptr) continue;
    const double d = missing_rssi_dbm - r.rssi_dbm;
    sum_sq += d * d;
    ++dims;
  }
  return dims == 0 ? std::numeric_limits<double>::infinity()
                   : std::sqrt(sum_sq / static_cast<double>(dims));
}

std::optional<LocalPosition> FingerprintDatabase::estimate(
    const RssiScan& scan, const KnnConfig& config) const {
  if (scan.readings.empty() || fingerprints_.empty()) return std::nullopt;

  std::vector<std::pair<double, const Fingerprint*>> ranked;
  ranked.reserve(fingerprints_.size());
  for (const Fingerprint& fp : fingerprints_) {
    ranked.emplace_back(
        signal_distance(scan, fp.readings, config.missing_rssi_dbm), &fp);
  }
  const std::size_t k = std::min(config.k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end(),
                    [](const auto& a, const auto& b) {
                      return a.first < b.first;
                    });

  // Inverse-distance weighted centroid of the k nearest fingerprints.
  double wx = 0.0, wy = 0.0, wsum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w = 1.0 / (ranked[i].first + 0.1);
    wx += w * ranked[i].second->position.x;
    wy += w * ranked[i].second->position.y;
    wsum += w;
  }
  LocalPosition out;
  out.point = {wx / wsum, wy / wsum};
  out.timestamp = scan.timestamp;

  // Accuracy: RMS spread of the neighbours around the estimate.
  double spread_sq = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const LocalPoint& p = ranked[i].second->position;
    const double dx = p.x - out.point.x;
    const double dy = p.y - out.point.y;
    spread_sq += dx * dx + dy * dy;
  }
  out.accuracy_m = std::sqrt(spread_sq / static_cast<double>(k)) + 1.0;
  return out;
}

}  // namespace perpos::wifi
