#include "perpos/wifi/signal_model.hpp"

#include <algorithm>
#include <cmath>

namespace perpos::wifi {

double SignalModel::mean_rssi(const AccessPoint& ap,
                              const LocalPoint& p) const noexcept {
  const double d =
      std::max(1.0, std::hypot(p.x - ap.position.x, p.y - ap.position.y));
  double rssi =
      ap.tx_power_dbm - 10.0 * config_.path_loss_exponent * std::log10(d);
  if (building_ != nullptr) {
    rssi -= building_->wall_attenuation_db(ap.position, p);
  }
  return rssi;
}

RssiScan SignalModel::scan_at(const LocalPoint& p, perpos::sim::Random& random,
                              perpos::sim::SimTime timestamp) const {
  RssiScan scan;
  scan.timestamp = timestamp;
  for (const AccessPoint& ap : aps_) {
    if (!is_enabled(ap.id)) continue;
    const double rssi =
        mean_rssi(ap, p) + random.normal(0.0, config_.shadowing_sigma_db);
    if (rssi < config_.sensitivity_dbm) continue;
    if (!random.chance(config_.detection_floor_prob)) continue;
    scan.readings.push_back(RssiReading{ap.id, rssi});
  }
  return scan;
}

RssiScan SignalModel::ideal_scan_at(const LocalPoint& p,
                                    perpos::sim::SimTime timestamp) const {
  RssiScan scan;
  scan.timestamp = timestamp;
  for (const AccessPoint& ap : aps_) {
    if (!is_enabled(ap.id)) continue;
    const double rssi = mean_rssi(ap, p);
    if (rssi < config_.sensitivity_dbm) continue;
    scan.readings.push_back(RssiReading{ap.id, rssi});
  }
  return scan;
}

bool SignalModel::set_enabled(const std::string& ap_id, bool enabled) {
  const bool known = std::any_of(
      aps_.begin(), aps_.end(),
      [&](const AccessPoint& ap) { return ap.id == ap_id; });
  if (!known) return false;
  const auto it = std::find(disabled_.begin(), disabled_.end(), ap_id);
  if (enabled && it != disabled_.end()) {
    disabled_.erase(it);
  } else if (!enabled && it == disabled_.end()) {
    disabled_.push_back(ap_id);
  }
  return true;
}

bool SignalModel::is_enabled(const std::string& ap_id) const {
  return std::find(disabled_.begin(), disabled_.end(), ap_id) ==
         disabled_.end();
}

std::vector<AccessPoint> office_access_points() {
  return {
      {"AP-LOBBY", {2.0, 10.0}, -30.0},  {"AP-C12", {12.0, 10.0}, -30.0},
      {"AP-C24", {24.0, 10.0}, -30.0},   {"AP-LAB", {36.0, 10.0}, -30.0},
      {"AP-S", {16.0, 4.0}, -30.0},      {"AP-N", {16.0, 16.0}, -30.0},
  };
}

}  // namespace perpos::wifi
