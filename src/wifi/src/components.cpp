#include "perpos/wifi/components.hpp"

// Components are header-only; this translation unit anchors the library.

namespace perpos::wifi {}  // namespace perpos::wifi
