#pragma once

#include "perpos/core/component.hpp"
#include "perpos/core/data_types.hpp"
#include "perpos/wifi/fingerprint.hpp"

/// \file components.hpp
/// Processing components of the WiFi positioning pipeline (Fig. 1):
/// RssiScan -> WifiPositioner -> LocalPosition [-> LocalToGeoConverter ->
/// PositionFix]. The room Resolver lives in the locmodel module.

namespace perpos::wifi {

/// Estimates a building-local position from RSSI scans using a fingerprint
/// database.
class WifiPositioner final : public core::ProcessingComponent,
                             public core::FrameAware {
 public:
  /// Keeps a reference to `db`; the database must outlive the component.
  explicit WifiPositioner(const FingerprintDatabase& db, KnnConfig config = {})
      : db_(db), config_(config) {}

  std::string_view kind() const override { return "WifiPositioner"; }

  /// Emitted LocalPositions are in the surveyed building's frame.
  std::string output_frame() const override { return db_.frame_id(); }

  std::vector<core::InputRequirement> input_requirements() const override {
    return {core::require<RssiScan>()};
  }
  std::vector<core::DataSpec> output_capabilities() const override {
    return {core::provide<LocalPosition>()};
  }

  void on_input(const core::Sample& sample) override {
    const auto* scan = sample.payload.get<RssiScan>();
    if (scan == nullptr) return;
    if (const auto estimate = db_.estimate(*scan, config_)) {
      context().emit(core::Payload::make(*estimate));
    } else {
      ++failed_;
    }
  }

  /// Scans that produced no estimate (empty scan — a coverage seam).
  std::uint64_t failed() const noexcept { return failed_; }

 private:
  const FingerprintDatabase& db_;
  KnnConfig config_;
  std::uint64_t failed_ = 0;
};

/// Converts building-local estimates to technology-independent WGS84
/// fixes, so WiFi positions can be fused with GPS positions.
class LocalToGeoConverter final : public core::ProcessingComponent,
                                  public core::FrameAware {
 public:
  explicit LocalToGeoConverter(const Building& building)
      : building_(building) {}

  std::string_view kind() const override { return "LocalToGeo"; }

  /// Incoming LocalPositions are interpreted against this building's
  /// frame; the emitted PositionFix is WGS84 (frame-neutral).
  std::string input_frame() const override { return building_.name(); }

  std::vector<core::InputRequirement> input_requirements() const override {
    return {core::require<LocalPosition>()};
  }
  std::vector<core::DataSpec> output_capabilities() const override {
    return {core::provide<core::PositionFix>()};
  }

  void on_input(const core::Sample& sample) override {
    const auto* local = sample.payload.get<LocalPosition>();
    if (local == nullptr) return;
    core::PositionFix fix;
    fix.position = building_.frame().to_geodetic(local->point);
    fix.horizontal_accuracy_m = local->accuracy_m;
    fix.timestamp = local->timestamp;
    fix.technology = "WiFi";
    context().emit(core::Payload::make(std::move(fix)));
  }

 private:
  const Building& building_;
};

}  // namespace perpos::wifi
