#pragma once

#include "perpos/locmodel/resolver.hpp"
#include "perpos/wifi/signal_model.hpp"

#include <vector>

/// \file fingerprint.hpp
/// Fingerprint-based WiFi positioning: an offline database of reference
/// RSSI vectors on a grid, and a weighted k-nearest-neighbour estimator in
/// signal space. This is the reproduction of the "indoor WiFi positioning
/// system" the paper's Room Number Application queries.

namespace perpos::wifi {

using locmodel::LocalPosition;

/// One calibration point: where it was taken and the mean RSSI per AP.
struct Fingerprint {
  LocalPoint position;
  std::vector<RssiReading> readings;
};

struct KnnConfig {
  std::size_t k = 4;
  /// RSSI assumed for an AP present in one vector but not the other —
  /// treating "not heard" as a very weak signal.
  double missing_rssi_dbm = -95.0;
};

class FingerprintDatabase {
 public:
  /// Survey the building on a regular grid with spacing `grid_m`, storing
  /// the model's mean RSSI at each point inside the footprint. With
  /// `surveys_per_point` > 0 and a random source, noisy surveys are
  /// averaged instead (a more realistic offline phase).
  static FingerprintDatabase survey(const SignalModel& model,
                                    const Building& building, double grid_m,
                                    int surveys_per_point = 0,
                                    perpos::sim::Random* random = nullptr);

  void add(Fingerprint fp) { fingerprints_.push_back(std::move(fp)); }
  const std::vector<Fingerprint>& fingerprints() const noexcept {
    return fingerprints_;
  }
  std::size_t size() const noexcept { return fingerprints_.size(); }

  /// The coordinate frame the fingerprint positions are expressed in —
  /// the surveyed building's name. survey() sets it; hand-built databases
  /// may set it explicitly. Consumed by WifiPositioner::output_frame() so
  /// the static analyzer can catch cross-building datum mixups (PPV007).
  const std::string& frame_id() const noexcept { return frame_id_; }
  void set_frame_id(std::string frame_id) { frame_id_ = std::move(frame_id); }

  /// Weighted k-NN estimate in signal space. Returns nullopt for an empty
  /// scan or an empty database. `accuracy_m` of the result is the spread
  /// of the contributing neighbours.
  std::optional<LocalPosition> estimate(const RssiScan& scan,
                                        const KnnConfig& config = {}) const;

  /// Euclidean distance between RSSI vectors with missing-AP substitution.
  static double signal_distance(const RssiScan& scan,
                                const std::vector<RssiReading>& reference,
                                double missing_rssi_dbm);

 private:
  std::vector<Fingerprint> fingerprints_;
  std::string frame_id_;
};

}  // namespace perpos::wifi
