#pragma once

#include "perpos/core/type_info.hpp"
#include "perpos/sim/clock.hpp"

#include <string>
#include <vector>

/// \file scan.hpp
/// WiFi signal-strength observations — the raw data of the indoor
/// positioning pipeline (paper Fig. 1: "WiFi sensor -> Raw data (local
/// coordinate system)").

namespace perpos::wifi {

/// One received-signal-strength reading from one access point.
struct RssiReading {
  std::string ap_id;    ///< BSSID-like identifier.
  double rssi_dbm = -100.0;

  friend bool operator==(const RssiReading&, const RssiReading&) = default;
};

/// A full scan: readings from every audible access point at one instant.
struct RssiScan {
  std::vector<RssiReading> readings;
  perpos::sim::SimTime timestamp;

  /// The reading for `ap_id`, or nullptr if the AP was not heard.
  const RssiReading* find(const std::string& ap_id) const noexcept {
    for (const RssiReading& r : readings) {
      if (r.ap_id == ap_id) return &r;
    }
    return nullptr;
  }

  friend bool operator==(const RssiScan&, const RssiScan&) = default;
};

}  // namespace perpos::wifi

PERPOS_TYPE_NAME(perpos::wifi::RssiScan, "RssiScan");
