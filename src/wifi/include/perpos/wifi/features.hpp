#pragma once

#include "perpos/core/channel.hpp"
#include "perpos/wifi/scan.hpp"

#include <optional>
#include <string>
#include <vector>

/// \file features.hpp
/// Translucency features for the WiFi positioning channel — the WiFi-side
/// counterpart of the GPS channel's HDOP machinery, showing the feature
/// mechanisms generalize across technologies (paper Sec. 4: "to the extent
/// that sensors and processing elements contain information that may be
/// used to deduce for example, current coverage, accuracy, and signal
/// noise, this information ... can be used to expose the seams").

namespace perpos::wifi {

/// A Channel Feature exposing coverage quality for the most recent
/// position delivered by a WiFi channel: how many access points backed the
/// estimate and how strong they were. Applications use it to detect
/// coverage seams (too few APs => distrust the room fix).
class ScanQualityFeature final : public core::ChannelFeature {
 public:
  std::string_view name() const override { return "ScanQuality"; }

  void apply(const core::DataTree& tree) override {
    ap_count_ = 0;
    strongest_dbm_.reset();
    mean_dbm_.reset();
    // Any RssiScan in the data tree contributed to this output.
    for (const auto& [producer, scan] : tree.collect<RssiScan>()) {
      (void)producer;
      ap_count_ += scan->readings.size();
      double sum = 0.0;
      for (const RssiReading& r : scan->readings) {
        sum += r.rssi_dbm;
        if (!strongest_dbm_ || r.rssi_dbm > *strongest_dbm_) {
          strongest_dbm_ = r.rssi_dbm;
        }
      }
      if (!scan->readings.empty()) {
        mean_dbm_ = sum / static_cast<double>(scan->readings.size());
      }
    }
  }

  /// Access points heard in the scan(s) behind the current position.
  std::size_t ap_count() const noexcept { return ap_count_; }
  std::optional<double> strongest_dbm() const noexcept {
    return strongest_dbm_;
  }
  std::optional<double> mean_dbm() const noexcept { return mean_dbm_; }

  /// A simple coverage verdict: positions backed by fewer than `min_aps`
  /// access points are suspect.
  bool adequate_coverage(std::size_t min_aps = 3) const noexcept {
    return ap_count_ >= min_aps;
  }

 private:
  std::size_t ap_count_ = 0;
  std::optional<double> strongest_dbm_;
  std::optional<double> mean_dbm_;
};

}  // namespace perpos::wifi
