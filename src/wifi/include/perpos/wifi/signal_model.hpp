#pragma once

#include "perpos/locmodel/building.hpp"
#include "perpos/sim/random.hpp"
#include "perpos/wifi/scan.hpp"

#include <string>
#include <vector>

/// \file signal_model.hpp
/// Radio propagation model for the simulated WiFi infrastructure: log-
/// distance path loss with log-normal shadowing, plus per-wall attenuation
/// from the building model. This substitutes for the real WiFi positioning
/// deployment the paper interfaces with — the positioning pipeline only
/// ever sees RssiScan values, which this model produces with controllable
/// imperfection.

namespace perpos::wifi {

using locmodel::Building;
using locmodel::LocalPoint;

/// A deployed access point in building-local coordinates.
struct AccessPoint {
  std::string id;
  LocalPoint position;
  double tx_power_dbm = -30.0;  ///< RSSI at the 1 m reference distance.

  friend bool operator==(const AccessPoint&, const AccessPoint&) = default;
};

struct SignalModelConfig {
  double path_loss_exponent = 3.0;   ///< Indoor typical 2.7-4.0.
  double shadowing_sigma_db = 4.0;   ///< Log-normal shadowing std dev.
  double sensitivity_dbm = -92.0;    ///< Below this the AP is not heard.
  double detection_floor_prob = 0.95;  ///< P(hear AP) when above threshold.
};

/// Computes deterministic mean RSSI and draws noisy scans.
class SignalModel {
 public:
  /// `building` supplies wall attenuation; may be nullptr for free space.
  SignalModel(std::vector<AccessPoint> aps, SignalModelConfig config,
              const Building* building = nullptr)
      : aps_(std::move(aps)), config_(config), building_(building) {}

  const std::vector<AccessPoint>& access_points() const noexcept {
    return aps_;
  }
  const SignalModelConfig& config() const noexcept { return config_; }

  /// Mean (noise-free) RSSI of `ap` at `p`, including wall attenuation.
  double mean_rssi(const AccessPoint& ap, const LocalPoint& p) const noexcept;

  /// A noisy scan at `p`: per-AP shadowing noise, sensitivity cutoff and
  /// random detection failures.
  RssiScan scan_at(const LocalPoint& p, perpos::sim::Random& random,
                   perpos::sim::SimTime timestamp) const;

  /// A noise-free scan (used to build fingerprint databases).
  RssiScan ideal_scan_at(const LocalPoint& p,
                         perpos::sim::SimTime timestamp) const;

  /// Coverage seams: disable/enable an access point at runtime (an AP
  /// failure or maintenance window). Disabled APs vanish from scans while
  /// the fingerprint database still references them — the k-NN estimator
  /// must degrade gracefully. Returns false for unknown ids.
  bool set_enabled(const std::string& ap_id, bool enabled);
  bool is_enabled(const std::string& ap_id) const;

 private:
  std::vector<AccessPoint> aps_;
  SignalModelConfig config_;
  const Building* building_;
  std::vector<std::string> disabled_;
};

/// A standard 6-AP deployment for the office building fixture: APs in the
/// lobby, corridor (x=12, x=24), lab, and one in each office row.
std::vector<AccessPoint> office_access_points();

}  // namespace perpos::wifi
