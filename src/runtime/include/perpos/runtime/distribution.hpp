#pragma once

#include "perpos/core/component.hpp"
#include "perpos/core/failure_events.hpp"
#include "perpos/core/graph.hpp"
#include "perpos/runtime/payload_codec.hpp"
#include "perpos/sim/network.hpp"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

/// \file distribution.hpp
/// Transparent distribution of the processing graph over simulated hosts —
/// the stand-in for D-OSGi remoting (paper Sec. 3.3: "the processing graph
/// can span several hosts with little added configuration overhead").
///
/// Components are assigned to hosts; deploy() splices an egress/ingress
/// pair into every edge that crosses a host boundary, so data pays the
/// link's latency and is counted in the link's message/byte statistics —
/// the radio cost EnTracked minimizes. remote_call() provides the control
/// path (server-side Channel Feature commanding the device-side Power
/// Strategy) with the same accounting.

namespace perpos::runtime {

/// Device-side end of a remoted edge: consumes locally, transmits.
class RemoteEgress final : public core::ProcessingComponent {
 public:
  RemoteEgress(sim::Network& network, sim::HostId from, sim::HostId to,
               std::string pair_tag)
      : network_(network), from_(from), to_(to), tag_(std::move(pair_tag)) {}

  std::string_view kind() const override { return "RemoteEgress"; }
  std::vector<core::InputRequirement> input_requirements() const override {
    return {core::require_any()};
  }
  std::vector<core::DataSpec> output_capabilities() const override {
    return {};
  }
  void on_input(const core::Sample& sample) override {
    // After teardown the network may already be destroyed (a peer's
    // teardown hook can emit into us during graph destruction) — drop.
    if (torn_down_) return;
    if (!is_encodable(sample.payload)) return;
    network_.send(from_, to_, tag_ + " " + encode_payload(sample.payload));
    ++sent_;
  }
  void on_teardown() override { torn_down_ = true; }

  std::uint64_t sent() const noexcept { return sent_; }

 private:
  sim::Network& network_;
  sim::HostId from_;
  sim::HostId to_;
  std::string tag_;
  bool torn_down_ = false;
  std::uint64_t sent_ = 0;
};

/// Server-side end: emits what the network delivers, advertising the
/// original producer's capabilities so downstream requirements still
/// resolve.
class RemoteIngress final : public core::ProcessingComponent {
 public:
  explicit RemoteIngress(std::vector<core::DataSpec> capabilities)
      : capabilities_(std::move(capabilities)) {}

  std::string_view kind() const override { return "RemoteIngress"; }
  std::vector<core::InputRequirement> input_requirements() const override {
    return {};
  }
  std::vector<core::DataSpec> output_capabilities() const override {
    return capabilities_;
  }
  void on_input(const core::Sample&) override {}

  void deliver(const std::string& wire) {
    if (auto payload = decode_payload(wire)) {
      ++received_;
      context().emit(std::move(*payload));
    } else {
      // A payload that arrives but cannot be decoded (link corruption,
      // version skew) used to vanish silently — the worst failure mode
      // for a positioning system. Count it and surface it as a failure
      // event so watchdogs and dashboards see the link rot.
      ++decode_failures_;
      core::report_failure_event(context().graph(), kind(), context().id(),
                                 "decode_failed");
    }
  }

  std::uint64_t received() const noexcept { return received_; }
  std::uint64_t decode_failures() const noexcept { return decode_failures_; }

 private:
  std::vector<core::DataSpec> capabilities_;
  std::uint64_t received_ = 0;
  std::uint64_t decode_failures_ = 0;
};

/// The two components (plus delivery callbacks) a link factory returns for
/// one remoted edge. `deliver_at_to` runs on the consumer-side host when a
/// data message arrives; `deliver_at_from` runs on the producer-side host
/// for reverse-path traffic (e.g. acknowledgements) and may be null for
/// fire-and-forget transports.
struct RemoteLinkEndpoints {
  std::shared_ptr<core::ProcessingComponent> egress;
  std::shared_ptr<core::ProcessingComponent> ingress;
  std::function<void(const std::string& rest)> deliver_at_to;
  std::function<void(const std::string& rest)> deliver_at_from;
};

/// Pluggable transport seam: deploy() asks the factory for the egress /
/// ingress pair of every host-crossing edge. The default builds the
/// fire-and-forget RemoteEgress / RemoteIngress above; the health module
/// provides a reliable (ack + retransmit) factory without the runtime
/// depending on it.
using RemoteLinkFactory = std::function<RemoteLinkEndpoints(
    sim::Network& network, sim::HostId from, sim::HostId to, std::string tag,
    std::vector<core::DataSpec> capabilities)>;

class DistributedDeployment {
 public:
  /// The deployment creates its own hosts in `network` (named as given).
  DistributedDeployment(core::ProcessingGraph& graph, sim::Network& network);

  /// Create a deployment host; returns its network id.
  sim::HostId add_host(std::string name);

  /// Pin a component to a host. Unassigned components are local to
  /// whatever they connect to (edges to/from them are never remoted).
  void assign(core::ComponentId component, sim::HostId host);

  /// Install a transport factory used by subsequent deploy() calls (see
  /// RemoteLinkFactory). Pass nullptr to restore the default
  /// fire-and-forget transport. Already-deployed edges keep their links.
  void set_link_factory(RemoteLinkFactory factory) {
    link_factory_ = std::move(factory);
  }

  /// Strict mode (the default): deploy() consults the payload codec before
  /// cutting an edge and refuses — throws std::runtime_error naming the
  /// edge and the offending type — when any producer capability the
  /// consumer accepts cannot round-trip through the wire codec. Without
  /// the check such an edge deploys fine and then dies sample by sample at
  /// runtime (`decode_failed` on the ingress, or a silent drop on the
  /// egress). set_strict(false) restores the old deploy-anyway behaviour
  /// for embeddings that knowingly remote partially-codable edges.
  void set_strict(bool strict) noexcept { strict_ = strict; }
  bool strict() const noexcept { return strict_; }

  /// Splice egress/ingress pairs into every edge whose endpoints are
  /// assigned to different hosts. Call after the graph is assembled;
  /// idempotent for already-remoted edges. In strict mode (default),
  /// throws std::runtime_error if a crossing edge is not wire-codable
  /// (see set_strict) — the graph is left unmodified in that case.
  void deploy();

  /// Run `fn` on `to` after the link latency, counting one control
  /// message from `from` (the D-OSGi remote method call stand-in).
  void remote_call(sim::HostId from, sim::HostId to,
                   std::function<void()> fn);

  /// Execution-engine seam: route deliveries arriving at `host` (remoted
  /// data, acks, remote_call actions) through `executor` instead of
  /// running them on the caller. Pass the lane executor of the graph
  /// region living on that host (exec::ExecutionEngine::executor); the
  /// cross-host hop is then the *only* place a sample changes lanes, which
  /// is what keeps per-lane execution deterministic (and what verify rule
  /// PPV009 enforces statically). Pass nullptr to clear. The runtime layer
  /// depends only on std::function here, not on perpos::exec.
  void set_executor(sim::HostId host,
                    std::function<void(std::function<void()>)> executor);

  /// Data messages sent from `from` to `to` (egress traffic).
  std::uint64_t data_messages(sim::HostId from, sim::HostId to) const;
  /// Control messages issued via remote_call from `from` to `to`.
  std::uint64_t control_messages(sim::HostId from, sim::HostId to) const;

  sim::Network& network() noexcept { return network_; }
  const sim::Network& network() const noexcept { return network_; }

  /// The component -> host partition (for inspection and for the static
  /// analyzer's remoting-boundary rule).
  const std::map<core::ComponentId, sim::HostId>& assignments() const
      noexcept {
    return assignment_;
  }

 private:
  // Routing: pair tag -> the remoted edge's delivery callbacks. The shared
  // host handler dispatches on the tag prefix and the *sending* host:
  // messages from the producer side go to deliver_at_to (data), messages
  // from the consumer side go to deliver_at_from (acks).
  struct Route {
    sim::HostId from = 0;
    sim::HostId to = 0;
    std::function<void(const std::string& rest)> at_to;
    std::function<void(const std::string& rest)> at_from;
  };

  core::ProcessingGraph& graph_;
  sim::Network& network_;
  std::map<core::ComponentId, sim::HostId> assignment_;
  std::map<std::string, Route> routes_;
  std::map<sim::HostId, std::function<void(std::function<void()>)>>
      executors_;
  std::map<std::uint64_t, std::uint64_t> control_counts_;
  std::vector<sim::HostId> hosts_;
  std::uint64_t next_pair_ = 1;
  bool strict_ = true;
  RemoteLinkFactory link_factory_;

  void host_handler(sim::HostId from, const std::string& payload);
  void run_on_host(sim::HostId host,
                   const std::function<void(const std::string&)>& fn,
                   std::string rest);
};

}  // namespace perpos::runtime
