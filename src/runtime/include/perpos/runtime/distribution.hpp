#pragma once

#include "perpos/core/component.hpp"
#include "perpos/core/graph.hpp"
#include "perpos/runtime/payload_codec.hpp"
#include "perpos/sim/network.hpp"

#include <functional>
#include <map>
#include <string>
#include <vector>

/// \file distribution.hpp
/// Transparent distribution of the processing graph over simulated hosts —
/// the stand-in for D-OSGi remoting (paper Sec. 3.3: "the processing graph
/// can span several hosts with little added configuration overhead").
///
/// Components are assigned to hosts; deploy() splices an egress/ingress
/// pair into every edge that crosses a host boundary, so data pays the
/// link's latency and is counted in the link's message/byte statistics —
/// the radio cost EnTracked minimizes. remote_call() provides the control
/// path (server-side Channel Feature commanding the device-side Power
/// Strategy) with the same accounting.

namespace perpos::runtime {

/// Device-side end of a remoted edge: consumes locally, transmits.
class RemoteEgress final : public core::ProcessingComponent {
 public:
  RemoteEgress(sim::Network& network, sim::HostId from, sim::HostId to,
               std::string pair_tag)
      : network_(network), from_(from), to_(to), tag_(std::move(pair_tag)) {}

  std::string_view kind() const override { return "RemoteEgress"; }
  std::vector<core::InputRequirement> input_requirements() const override {
    return {core::require_any()};
  }
  std::vector<core::DataSpec> output_capabilities() const override {
    return {};
  }
  void on_input(const core::Sample& sample) override {
    if (!is_encodable(sample.payload)) return;
    network_.send(from_, to_, tag_ + " " + encode_payload(sample.payload));
    ++sent_;
  }

  std::uint64_t sent() const noexcept { return sent_; }

 private:
  sim::Network& network_;
  sim::HostId from_;
  sim::HostId to_;
  std::string tag_;
  std::uint64_t sent_ = 0;
};

/// Server-side end: emits what the network delivers, advertising the
/// original producer's capabilities so downstream requirements still
/// resolve.
class RemoteIngress final : public core::ProcessingComponent {
 public:
  explicit RemoteIngress(std::vector<core::DataSpec> capabilities)
      : capabilities_(std::move(capabilities)) {}

  std::string_view kind() const override { return "RemoteIngress"; }
  std::vector<core::InputRequirement> input_requirements() const override {
    return {};
  }
  std::vector<core::DataSpec> output_capabilities() const override {
    return capabilities_;
  }
  void on_input(const core::Sample&) override {}

  void deliver(const std::string& wire) {
    if (auto payload = decode_payload(wire)) {
      ++received_;
      context().emit(std::move(*payload));
    }
  }

  std::uint64_t received() const noexcept { return received_; }

 private:
  std::vector<core::DataSpec> capabilities_;
  std::uint64_t received_ = 0;
};

class DistributedDeployment {
 public:
  /// The deployment creates its own hosts in `network` (named as given).
  DistributedDeployment(core::ProcessingGraph& graph, sim::Network& network);

  /// Create a deployment host; returns its network id.
  sim::HostId add_host(std::string name);

  /// Pin a component to a host. Unassigned components are local to
  /// whatever they connect to (edges to/from them are never remoted).
  void assign(core::ComponentId component, sim::HostId host);

  /// Splice egress/ingress pairs into every edge whose endpoints are
  /// assigned to different hosts. Call after the graph is assembled;
  /// idempotent for already-remoted edges.
  void deploy();

  /// Run `fn` on `to` after the link latency, counting one control
  /// message from `from` (the D-OSGi remote method call stand-in).
  void remote_call(sim::HostId from, sim::HostId to,
                   std::function<void()> fn);

  /// Data messages sent from `from` to `to` (egress traffic).
  std::uint64_t data_messages(sim::HostId from, sim::HostId to) const;
  /// Control messages issued via remote_call from `from` to `to`.
  std::uint64_t control_messages(sim::HostId from, sim::HostId to) const;

  sim::Network& network() noexcept { return network_; }

 private:
  core::ProcessingGraph& graph_;
  sim::Network& network_;
  std::map<core::ComponentId, sim::HostId> assignment_;
  // Routing: pair tag -> ingress component. The shared host handler
  // dispatches on the tag prefix.
  std::map<std::string, RemoteIngress*> ingresses_;
  std::map<std::uint64_t, std::uint64_t> control_counts_;
  std::vector<sim::HostId> hosts_;
  std::uint64_t next_pair_ = 1;

  void host_handler(sim::HostId from, const std::string& payload);
};

}  // namespace perpos::runtime
