#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

/// \file registry.hpp
/// A minimal dynamic service registry — the C++ stand-in for the OSGi
/// service layer the Java PerPos is built on (paper Sec. 3: "realized ...
/// on top of the OSGi service platform ... the dynamic composition
/// mechanisms of OSGi is used for connecting the components").
///
/// Services are registered under an interface name with string properties;
/// lookups filter on properties; listeners observe (un)registrations so
/// components can react to services appearing dynamically.

namespace perpos::runtime {

using Properties = std::map<std::string, std::string>;
using ServiceId = std::uint64_t;

struct ServiceRef {
  ServiceId id = 0;
  std::string interface_name;
  Properties properties;
  std::shared_ptr<void> service;
};

enum class ServiceEvent { kRegistered, kUnregistering };

class ServiceRegistry {
 public:
  using Listener =
      std::function<void(ServiceEvent, const ServiceRef&)>;

  /// Register `service` under `interface_name`. Returns the service id.
  template <typename T>
  ServiceId register_service(std::string interface_name,
                             std::shared_ptr<T> service,
                             Properties properties = {}) {
    return register_erased(std::move(interface_name),
                           std::static_pointer_cast<void>(service),
                           std::move(properties));
  }

  /// Unregister; returns false for unknown ids.
  bool unregister(ServiceId id);

  /// All services registered under `interface_name` whose properties
  /// contain every (key, value) pair of `filter`.
  std::vector<ServiceRef> find(const std::string& interface_name,
                               const Properties& filter = {}) const;

  /// First matching service, cast to T; nullptr when none match.
  template <typename T>
  std::shared_ptr<T> get(const std::string& interface_name,
                         const Properties& filter = {}) const {
    const auto refs = find(interface_name, filter);
    if (refs.empty()) return nullptr;
    return std::static_pointer_cast<T>(refs.front().service);
  }

  /// Observe registrations/unregistrations. Returns a token.
  std::size_t add_listener(Listener listener);
  void remove_listener(std::size_t token);

  std::size_t size() const noexcept { return services_.size(); }

 private:
  ServiceId register_erased(std::string interface_name,
                            std::shared_ptr<void> service,
                            Properties properties);

  std::map<ServiceId, ServiceRef> services_;
  std::vector<std::pair<std::size_t, Listener>> listeners_;
  ServiceId next_id_ = 1;
  std::size_t next_listener_ = 1;
};

}  // namespace perpos::runtime
