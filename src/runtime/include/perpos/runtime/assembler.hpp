#pragma once

#include "perpos/core/graph.hpp"

#include <functional>
#include <memory>
#include <string>
#include <vector>

/// \file assembler.hpp
/// Dependency-resolving graph assembly (paper Sec. 2.1: connections are
/// established "through dynamic resolution of dependencies between
/// components. ... As custom components are added to the PerPos middleware
/// the dependencies are resolved and when satisfied the components are
/// added to the processing graph appropriately").
///
/// Components are contributed as descriptors (name + factory); resolve()
/// instantiates them, then connects every input requirement to the first
/// component whose output capabilities satisfy it, and reports what could
/// not be satisfied.

namespace perpos::runtime {

struct ComponentDescriptor {
  std::string name;
  std::function<std::shared_ptr<core::ProcessingComponent>()> factory;
};

struct AssemblyEdge {
  std::string producer;
  std::string consumer;
  core::ComponentId producer_id = core::kInvalidComponent;
  core::ComponentId consumer_id = core::kInvalidComponent;
  /// True when the edge was chosen by dependency resolution rather than
  /// declared explicitly. The analyzer's wildcard-ambiguity rule (PPV002)
  /// uses this: a resolver-chosen edge into a wildcard consumer depends on
  /// provider insertion order.
  bool resolved = false;
};

struct AssemblyReport {
  /// Descriptor name -> instantiated component id.
  std::vector<std::pair<std::string, core::ComponentId>> instantiated;
  std::vector<AssemblyEdge> edges;
  /// (component, description) for every unsatisfied mandatory requirement.
  std::vector<std::pair<std::string, std::string>> unsatisfied;

  bool ok() const noexcept { return unsatisfied.empty(); }
  core::ComponentId id_of(const std::string& name) const;
};

class GraphAssembler {
 public:
  explicit GraphAssembler(core::ProcessingGraph& graph) : graph_(graph) {}

  /// Contribute a descriptor. Names must be unique.
  void add(ComponentDescriptor descriptor);

  /// Convenience: contribute an already-created component.
  void add(std::string name, std::shared_ptr<core::ProcessingComponent> c);

  /// Instantiate everything contributed since the last resolve and wire
  /// requirements. Previously resolved components participate as providers
  /// for new consumers (and vice versa), so the graph can be extended
  /// incrementally without touching existing code — the paper's first
  /// requirement.
  AssemblyReport resolve();

  core::ProcessingGraph& graph() noexcept { return graph_; }

 private:
  struct Contributed {
    std::string name;
    std::function<std::shared_ptr<core::ProcessingComponent>()> factory;
    core::ComponentId id = core::kInvalidComponent;  // Set when instantiated.
  };

  core::ProcessingGraph& graph_;
  std::vector<Contributed> contributions_;
};

}  // namespace perpos::runtime
