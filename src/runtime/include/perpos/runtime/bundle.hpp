#pragma once

#include "perpos/runtime/registry.hpp"

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

/// \file bundle.hpp
/// Bundle lifecycle on top of the service registry — the module layer of
/// the mini service platform. Bundles package related components (a sensor
/// driver, the fusion subsystem, a building model) and are started/stopped
/// as units, registering services while active.

namespace perpos::runtime {

enum class BundleState { kInstalled, kActive, kStopped };

class BundleContext;

/// Base class for deployable modules.
class Bundle {
 public:
  explicit Bundle(std::string name) : name_(std::move(name)) {}
  virtual ~Bundle() = default;

  const std::string& name() const noexcept { return name_; }
  BundleState state() const noexcept { return state_; }

  /// Register services, create components. Called once per activation.
  virtual void start(BundleContext& context) = 0;
  /// Release resources. Services registered via the context are
  /// unregistered automatically after stop() returns.
  virtual void stop(BundleContext& context) { (void)context; }

 private:
  friend class Framework;
  std::string name_;
  BundleState state_ = BundleState::kInstalled;
};

/// Per-bundle view of the framework; tracks registrations for automatic
/// cleanup on stop.
class BundleContext {
 public:
  BundleContext(ServiceRegistry& registry, std::string bundle_name)
      : registry_(registry), bundle_name_(std::move(bundle_name)) {}

  template <typename T>
  ServiceId register_service(std::string interface_name,
                             std::shared_ptr<T> service,
                             Properties properties = {}) {
    properties.emplace("bundle", bundle_name_);
    const ServiceId id = registry_.register_service(
        std::move(interface_name), std::move(service), std::move(properties));
    registered_.push_back(id);
    return id;
  }

  template <typename T>
  std::shared_ptr<T> get_service(const std::string& interface_name,
                                 const Properties& filter = {}) const {
    return registry_.get<T>(interface_name, filter);
  }

  ServiceRegistry& registry() noexcept { return registry_; }
  const std::string& bundle_name() const noexcept { return bundle_name_; }

 private:
  friend class Framework;
  ServiceRegistry& registry_;
  std::string bundle_name_;
  std::vector<ServiceId> registered_;
};

/// Owns bundles and the shared registry; starts in install order, stops in
/// reverse.
class Framework {
 public:
  ServiceRegistry& registry() noexcept { return registry_; }

  /// Install a bundle (not started yet). Returns its index.
  std::size_t install(std::unique_ptr<Bundle> bundle);

  /// Start one bundle by name; throws for unknown names, no-op if active.
  void start(const std::string& name);
  /// Stop one bundle by name; unregisters its services.
  void stop(const std::string& name);

  void start_all();
  void stop_all();

  Bundle* find(const std::string& name);
  std::size_t size() const noexcept { return bundles_.size(); }

 private:
  struct Installed {
    std::unique_ptr<Bundle> bundle;
    std::unique_ptr<BundleContext> context;
  };
  Installed* find_installed(const std::string& name);
  void start_installed(Installed& entry);
  void stop_installed(Installed& entry);

  ServiceRegistry registry_;
  std::vector<Installed> bundles_;
};

}  // namespace perpos::runtime
