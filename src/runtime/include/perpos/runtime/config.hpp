#pragma once

#include "perpos/core/positioning.hpp"
#include "perpos/runtime/assembler.hpp"

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

/// \file config.hpp
/// Declarative, text-based graph configuration.
///
/// Paper Sec. 2.1: port connections "are established either by direct
/// calls to the graph manipulation API, based on explicitly defined system
/// level configurations or through dynamic resolution of dependencies".
/// This module is the second path: a line-oriented config declares named
/// component instances and explicit edges; a trailing `resolve` directive
/// optionally lets the dependency resolver wire anything left open.
///
/// Syntax (one statement per line, '#' starts a comment):
///   component <name> <kind> [arg...]
///   connect <producer-name> <consumer-name>
///   resolve
///   observe [metrics] [timing] [tracing] [latency] [recording]
///           [slo_us=<number>] [all]
///   health [key=value ...]
///   reconfig [key=value ...]
///   plan [key=value ...]
///   host <host-name> <component-name>...
///   budget <component-name> [rate=<hz>|<lo>..<hi>] [cost_us=<n>]
///          [min_rate=<hz>]
///   budget * [source_rate=<hz>] [burst=<n>] [watermark=<n>] [slo_us=<n>]
///   verify
///
/// `observe` enables graph observability (perpos::obs). With no flags it
/// turns on metrics and timing; `all` turns on everything. `latency`
/// stamps root emissions and observes end-to-end ingest→sink latency at
/// sinks (slo_us=N additionally counts deadline misses against an N-µs
/// SLO); `recording` attaches a flight recorder whose ring captures
/// recent emit/deliver/mutation events for black-box dumps.
///
/// `health` declares fault-tolerance thresholds (see HealthSettings). The
/// parser only records them in ConfigResult::health — wiring them into a
/// Watchdog / PositioningService / reliable links is the caller's choice,
/// keeping the config layer free of a dependency on perpos::health.
///
/// `reconfig` declares live-reconfiguration policy (see ReconfigSettings).
/// As with `health`, the parser only records the settings in
/// ConfigResult::reconfig — constructing a reconfig::LiveReconfigurator
/// from them is the caller's choice, keeping the config layer free of a
/// dependency on perpos::reconfig.
///
/// `plan` declares compiled-execution-plan policy (see PlanSettings). As
/// with `health` and `reconfig`, the parser only records the settings in
/// ConfigResult::plan — constructing a plan::GraphPlan and calling
/// freeze() is the caller's choice, keeping the config layer free of a
/// dependency on perpos::plan.
///
/// `host` declares the intended deployment partition: every named
/// component is pinned to the given host. The parser only records the
/// partition in ConfigResult::hosts — DistributedDeployment wiring stays
/// with the caller — but the static analyzer uses it to check that every
/// host-crossing edge carries wire-codable data (rule PPV008).
///
/// `lane` declares the intended execution-lane assignment: every named
/// component runs on the given exec::ExecutionEngine lane. As with
/// `host`, the parser only records the plan (ConfigResult::lanes) — lane
/// creation and posting stay with the caller — but the static analyzer
/// uses it for the lane-affinity rules (PPV009 cross-lane edges, PPV014
/// lane starvation).
///
/// `budget` annotates the quantitative rate/cost model the static
/// analyzer's PPQ rules and `perpos-verify --budget` consume. A component
/// form pins an emission rate (a number or a `lo..hi` interval), declares
/// a per-sample service cost, or a required minimum input rate; the `*`
/// form sets analysis-wide defaults — unannotated source rate, burst
/// size, the queue watermark the static bounds are checked against
/// (PPQ002) and the end-to-end latency SLO (PPQ003; `observe slo_us=` is
/// its runtime twin and seeds the same check when no `budget *` SLO is
/// given). As with `health`, the parser only records the annotations
/// (ConfigResult::budgets / budget_defaults) — the analyzer front end
/// copies them into verify::BudgetOptions, keeping this layer free of a
/// dependency on perpos::verify.
///
/// `verify` requests static analysis of the assembled graph. Like
/// `health`, the parser only records the request (ConfigResult::
/// verify_requested); running the analyzer is the caller's choice (see
/// perpos::verify::verify_config / assemble_verified), keeping this layer
/// free of a dependency on perpos::verify.

namespace perpos::runtime {

/// Maps component kind names to factories. Factories receive the extra
/// tokens of the `component` line.
class ComponentFactoryRegistry {
 public:
  using Factory = std::function<std::shared_ptr<core::ProcessingComponent>(
      const std::vector<std::string>& args)>;

  /// Register a factory; throws on duplicate kinds.
  void register_kind(std::string kind, Factory factory);

  bool has(const std::string& kind) const {
    return factories_.contains(kind);
  }

  /// Instantiate; throws std::invalid_argument for unknown kinds.
  std::shared_ptr<core::ProcessingComponent> create(
      const std::string& kind, const std::vector<std::string>& args) const;

  std::vector<std::string> kinds() const;

 private:
  std::map<std::string, Factory> factories_;
};

/// Fault-tolerance thresholds declared by a `health` config line. All
/// durations are seconds; defaults match core::FailoverConfig and the
/// health module's WatchdogConfig / ReliableLinkConfig.
struct HealthSettings {
  double degraded_after_s = 2.0;  ///< No samples for this long: kDegraded.
  double stale_after_s = 5.0;     ///< ...kStale (failover trigger).
  double dead_after_s = 15.0;     ///< ...kDead.
  double recovery_s = 2.0;   ///< Preferred provider fresh within this: ok.
  double hold_s = 5.0;       ///< Sustained recovery needed before fail-back.
  double check_interval_s = 1.0;  ///< Health evaluation cadence.
  int max_retries = 8;            ///< Reliable link retransmission budget.
  double ack_timeout_ms = 100.0;  ///< Reliable link initial ack timeout.

  friend bool operator==(const HealthSettings&,
                         const HealthSettings&) = default;

  /// The failover subset, ready for PositioningService::enable_failover.
  core::FailoverConfig failover() const {
    core::FailoverConfig cfg;
    cfg.degraded_after_s = degraded_after_s;
    cfg.stale_after_s = stale_after_s;
    cfg.dead_after_s = dead_after_s;
    cfg.recovery_s = recovery_s;
    cfg.hold_s = hold_s;
    cfg.check_interval = sim::SimTime::from_seconds(check_interval_s);
    return cfg;
  }
};

/// Live-reconfiguration policy declared by a `reconfig` config line.
/// Field-for-field mirror of reconfig::ReconfigOptions (kept as plain
/// numbers here so the config layer stays independent of perpos::reconfig;
/// the caller copies them across when building a LiveReconfigurator).
struct ReconfigSettings {
  bool verify = true;         ///< Gate swaps on incremental re-verification.
  std::size_t history = 8;    ///< Bounded undo history (committed epochs).
  std::size_t tee_samples = 0;       ///< A/B tee promotion quota (0 = off).
  std::size_t probation_checks = 0;  ///< Watchdog probation window (0 = off).

  friend bool operator==(const ReconfigSettings&,
                         const ReconfigSettings&) = default;
};

/// Compiled-execution-plan policy declared by a `plan` config line.
/// Mirror of plan::PlanOptions plus the freeze request itself (plain
/// bools keep the config layer independent of perpos::plan; the caller
/// builds a plan::GraphPlan from them and calls freeze() after assembly).
struct PlanSettings {
  bool freeze = true;         ///< Attempt verify-then-freeze after assembly.
  bool auto_refreeze = true;  ///< Re-freeze automatically after mutations.

  friend bool operator==(const PlanSettings&, const PlanSettings&) = default;
};

/// Per-component quantitative annotation from a `budget <name>` config
/// line. Field-for-field mirror of verify::BudgetAnnotation (plain
/// numbers keep the config layer independent of perpos::verify; the
/// analyzer front end copies them across, as ConfigResult::reconfig does
/// for reconfig::ReconfigOptions). Zero rates / negative cost = unset.
struct BudgetAnnotation {
  double rate_lo_hz = 0.0;  ///< Pinned emission-rate interval; 0/0 = unset.
  double rate_hi_hz = 0.0;
  double cost_us = -1.0;    ///< Per-sample service cost; < 0 = calibrated.
  double min_rate_hz = 0.0; ///< Required minimum input rate; 0 = none.

  friend bool operator==(const BudgetAnnotation&,
                         const BudgetAnnotation&) = default;
};

/// Analysis-wide quantitative defaults from a `budget *` config line;
/// mirror of the scalar half of verify::BudgetOptions.
struct BudgetDefaults {
  double source_rate_hz = 1.0;     ///< Rate of unannotated sources.
  double burst = 1.0;              ///< Samples per source emission event.
  std::size_t queue_watermark = 0; ///< Static queue-bound check; 0 = off.
  double latency_slo_us = 0.0;     ///< End-to-end latency SLO; 0 = none.

  friend bool operator==(const BudgetDefaults&,
                         const BudgetDefaults&) = default;
};

struct ConfigResult {
  /// Instantiated names and ids, explicit edges, resolver edges.
  AssemblyReport report;
  /// One entry per rejected line: "line N: message". Empty = success.
  std::vector<std::string> errors;
  /// Set when the config contained a (valid) `health` line.
  std::optional<HealthSettings> health;
  /// Set when the config contained a (valid) `reconfig` line.
  std::optional<ReconfigSettings> reconfig;
  /// Set when the config contained a (valid) `plan` line.
  std::optional<PlanSettings> plan;
  /// Component name -> host name, from `host` lines.
  std::map<std::string, std::string> hosts;
  /// Component name -> execution-lane name, from `lane` lines.
  std::map<std::string, std::string> lanes;
  /// Component name -> quantitative annotation, from `budget <name>` lines.
  std::map<std::string, BudgetAnnotation> budgets;
  /// Set when the config contained a (valid) `budget *` line.
  std::optional<BudgetDefaults> budget_defaults;
  /// True when the config contained a `verify` line.
  bool verify_requested = false;

  bool ok() const noexcept { return errors.empty() && report.ok(); }
};

/// Parse `text` and build the configuration into `graph`. Errors are
/// collected per line (the rest of the config still applies); connection
/// failures (unknown names, incompatible ports) are reported, not thrown.
ConfigResult assemble_from_config(const std::string& text,
                                  const ComponentFactoryRegistry& registry,
                                  core::ProcessingGraph& graph);

/// Render the current graph structure as a config (the inverse of
/// assemble_from_config, for snapshotting a live system). Component names
/// are "<kind>_<id>"; kinds are the components' kind() strings, so the
/// output re-assembles only against a registry that maps those kinds.
/// When `health` is non-null a `health` line with every setting is
/// appended, so settings round-trip through export and re-parse. When
/// `hosts` is non-null, `host` lines record the deployment partition
/// (component id -> host name; see DistributedDeployment::assignments),
/// so an exported snapshot carries enough for the static analyzer's
/// remoting-boundary rule. Likewise `lanes` (component id -> lane name)
/// becomes `lane` lines for the lane-affinity rules, and a non-null
/// `reconfig` appends a `reconfig` line with every setting. A non-null
/// `budgets` emits one `budget` line per component with any annotation
/// set, and a non-null `budget_defaults` a `budget *` line, so the
/// quantitative model round-trips through export and re-parse. A non-null
/// `plan` appends a `plan` line with every setting.
std::string export_config(const core::ProcessingGraph& graph,
                          const HealthSettings* health = nullptr,
                          const std::map<core::ComponentId, std::string>*
                              hosts = nullptr,
                          const std::map<core::ComponentId, std::string>*
                              lanes = nullptr,
                          const ReconfigSettings* reconfig = nullptr,
                          const std::map<core::ComponentId, BudgetAnnotation>*
                              budgets = nullptr,
                          const BudgetDefaults* budget_defaults = nullptr,
                          const PlanSettings* plan = nullptr);

}  // namespace perpos::runtime
