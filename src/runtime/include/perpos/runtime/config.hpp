#pragma once

#include "perpos/runtime/assembler.hpp"

#include <functional>
#include <map>
#include <string>
#include <vector>

/// \file config.hpp
/// Declarative, text-based graph configuration.
///
/// Paper Sec. 2.1: port connections "are established either by direct
/// calls to the graph manipulation API, based on explicitly defined system
/// level configurations or through dynamic resolution of dependencies".
/// This module is the second path: a line-oriented config declares named
/// component instances and explicit edges; a trailing `resolve` directive
/// optionally lets the dependency resolver wire anything left open.
///
/// Syntax (one statement per line, '#' starts a comment):
///   component <name> <kind> [arg...]
///   connect <producer-name> <consumer-name>
///   resolve
///   observe [metrics] [timing] [tracing] [all]
///
/// `observe` enables graph observability (perpos::obs). With no flags it
/// turns on metrics and timing; `all` adds flow tracing.

namespace perpos::runtime {

/// Maps component kind names to factories. Factories receive the extra
/// tokens of the `component` line.
class ComponentFactoryRegistry {
 public:
  using Factory = std::function<std::shared_ptr<core::ProcessingComponent>(
      const std::vector<std::string>& args)>;

  /// Register a factory; throws on duplicate kinds.
  void register_kind(std::string kind, Factory factory);

  bool has(const std::string& kind) const {
    return factories_.contains(kind);
  }

  /// Instantiate; throws std::invalid_argument for unknown kinds.
  std::shared_ptr<core::ProcessingComponent> create(
      const std::string& kind, const std::vector<std::string>& args) const;

  std::vector<std::string> kinds() const;

 private:
  std::map<std::string, Factory> factories_;
};

struct ConfigResult {
  /// Instantiated names and ids, explicit edges, resolver edges.
  AssemblyReport report;
  /// One entry per rejected line: "line N: message". Empty = success.
  std::vector<std::string> errors;

  bool ok() const noexcept { return errors.empty() && report.ok(); }
};

/// Parse `text` and build the configuration into `graph`. Errors are
/// collected per line (the rest of the config still applies); connection
/// failures (unknown names, incompatible ports) are reported, not thrown.
ConfigResult assemble_from_config(const std::string& text,
                                  const ComponentFactoryRegistry& registry,
                                  core::ProcessingGraph& graph);

/// Render the current graph structure as a config (the inverse of
/// assemble_from_config, for snapshotting a live system). Component names
/// are "<kind>_<id>"; kinds are the components' kind() strings, so the
/// output re-assembles only against a registry that maps those kinds.
std::string export_config(const core::ProcessingGraph& graph);

}  // namespace perpos::runtime
