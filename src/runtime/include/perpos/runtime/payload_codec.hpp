#pragma once

#include "perpos/core/component.hpp"
#include "perpos/core/payload.hpp"

#include <optional>
#include <string>

/// \file payload_codec.hpp
/// Wire encoding for payloads crossing simulated host boundaries. Supports
/// the data types that travel between hosts in the paper's deployments:
/// raw sensor fragments, WiFi scans, position fixes and room fixes. The
/// encoded size feeds the per-message byte accounting of the network.

namespace perpos::runtime {

/// Encode a payload as "<TYPE> <body>". Throws std::invalid_argument for
/// unsupported payload types (they cannot cross host boundaries).
std::string encode_payload(const core::Payload& payload);

/// Decode; returns nullopt for malformed input.
std::optional<core::Payload> decode_payload(const std::string& wire);

/// True if the payload's type can cross host boundaries.
bool is_encodable(const core::Payload& payload);

/// Type-level variant: true if data of `type` can round-trip through the
/// wire codec. This is what static checks use — DistributedDeployment's
/// fail-fast deploy() and the analyzer's remoting-boundary rule (PPV008)
/// ask it about every capability crossing a host cut, instead of waiting
/// for a sample to die at runtime with `decode_failed`.
bool is_encodable_type(const core::TypeInfo* type);

/// Spec-level convenience: feature-added data never crosses host
/// boundaries (the remote end has no matching feature context), so a spec
/// is codable only when it is component-produced and its type encodes.
bool is_encodable_spec(const core::DataSpec& spec);

}  // namespace perpos::runtime
