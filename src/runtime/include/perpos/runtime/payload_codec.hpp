#pragma once

#include "perpos/core/payload.hpp"

#include <optional>
#include <string>

/// \file payload_codec.hpp
/// Wire encoding for payloads crossing simulated host boundaries. Supports
/// the data types that travel between hosts in the paper's deployments:
/// raw sensor fragments, WiFi scans, position fixes and room fixes. The
/// encoded size feeds the per-message byte accounting of the network.

namespace perpos::runtime {

/// Encode a payload as "<TYPE> <body>". Throws std::invalid_argument for
/// unsupported payload types (they cannot cross host boundaries).
std::string encode_payload(const core::Payload& payload);

/// Decode; returns nullopt for malformed input.
std::optional<core::Payload> decode_payload(const std::string& wire);

/// True if the payload's type can cross host boundaries.
bool is_encodable(const core::Payload& payload);

}  // namespace perpos::runtime
