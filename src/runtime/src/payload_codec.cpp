#include "perpos/runtime/payload_codec.hpp"

#include "perpos/core/data_types.hpp"
#include "perpos/wifi/scan.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace perpos::runtime {

namespace {

std::string escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string unescape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 >= text.size()) {
      out.push_back(text[i]);
      continue;
    }
    ++i;
    switch (text[i]) {
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      default: out.push_back(text[i]);
    }
  }
  return out;
}

}  // namespace

bool is_encodable(const core::Payload& payload) {
  return payload.is<core::RawFragment>() || payload.is<wifi::RssiScan>() ||
         payload.is<core::PositionFix>() || payload.is<core::RoomFix>();
}

bool is_encodable_type(const core::TypeInfo* type) {
  return type == core::type_of<core::RawFragment>() ||
         type == core::type_of<wifi::RssiScan>() ||
         type == core::type_of<core::PositionFix>() ||
         type == core::type_of<core::RoomFix>();
}

bool is_encodable_spec(const core::DataSpec& spec) {
  return spec.feature_tag.empty() && is_encodable_type(spec.type);
}

std::string encode_payload(const core::Payload& payload) {
  char buf[256];
  if (const auto* raw = payload.get<core::RawFragment>()) {
    return "RAW " + escape(raw->bytes);
  }
  if (const auto* scan = payload.get<wifi::RssiScan>()) {
    std::string out = "RSSI " + std::to_string(scan->timestamp.ns);
    for (const wifi::RssiReading& r : scan->readings) {
      std::snprintf(buf, sizeof(buf), " %s:%.2f", r.ap_id.c_str(),
                    r.rssi_dbm);
      out += buf;
    }
    return out;
  }
  if (const auto* fix = payload.get<core::PositionFix>()) {
    std::snprintf(buf, sizeof(buf), "FIX %.9f %.9f %.3f %.3f %lld %s",
                  fix->position.latitude_deg, fix->position.longitude_deg,
                  fix->position.altitude_m, fix->horizontal_accuracy_m,
                  static_cast<long long>(fix->timestamp.ns),
                  fix->technology.c_str());
    return buf;
  }
  if (const auto* room = payload.get<core::RoomFix>()) {
    std::snprintf(buf, sizeof(buf), "ROOM %s %s %d %.3f %.3f %.3f %lld",
                  room->building.c_str(),
                  room->room.empty() ? "-" : room->room.c_str(), room->floor,
                  room->local.x, room->local.y, room->confidence,
                  static_cast<long long>(room->timestamp.ns));
    return buf;
  }
  throw std::invalid_argument(
      "encode_payload: unsupported type " +
      std::string(payload.type() != nullptr ? payload.type()->name()
                                            : "<empty>"));
}

std::optional<core::Payload> decode_payload(const std::string& wire) {
  const std::size_t space = wire.find(' ');
  if (space == std::string::npos) return std::nullopt;
  const std::string kind = wire.substr(0, space);
  const std::string body = wire.substr(space + 1);

  if (kind == "RAW") {
    return core::Payload::make(core::RawFragment{unescape(body)});
  }
  if (kind == "RSSI") {
    std::istringstream in(body);
    long long ns = 0;
    if (!(in >> ns)) return std::nullopt;
    wifi::RssiScan scan;
    scan.timestamp = sim::SimTime{ns};
    std::string item;
    while (in >> item) {
      const std::size_t colon = item.rfind(':');
      if (colon == std::string::npos) return std::nullopt;
      wifi::RssiReading r;
      r.ap_id = item.substr(0, colon);
      try {
        r.rssi_dbm = std::stod(item.substr(colon + 1));
      } catch (...) {
        return std::nullopt;
      }
      scan.readings.push_back(std::move(r));
    }
    return core::Payload::make(std::move(scan));
  }
  if (kind == "FIX") {
    std::istringstream in(body);
    core::PositionFix fix;
    long long ns = 0;
    if (!(in >> fix.position.latitude_deg >> fix.position.longitude_deg >>
          fix.position.altitude_m >> fix.horizontal_accuracy_m >> ns)) {
      return std::nullopt;
    }
    fix.timestamp = sim::SimTime{ns};
    in >> fix.technology;
    return core::Payload::make(std::move(fix));
  }
  if (kind == "ROOM") {
    std::istringstream in(body);
    core::RoomFix room;
    long long ns = 0;
    if (!(in >> room.building >> room.room >> room.floor >> room.local.x >>
          room.local.y >> room.confidence >> ns)) {
      return std::nullopt;
    }
    if (room.room == "-") room.room.clear();
    room.timestamp = sim::SimTime{ns};
    return core::Payload::make(std::move(room));
  }
  return std::nullopt;
}

}  // namespace perpos::runtime
