#include "perpos/runtime/assembler.hpp"

#include <algorithm>
#include <stdexcept>

namespace perpos::runtime {

core::ComponentId AssemblyReport::id_of(const std::string& name) const {
  for (const auto& [n, id] : instantiated) {
    if (n == name) return id;
  }
  return core::kInvalidComponent;
}

void GraphAssembler::add(ComponentDescriptor descriptor) {
  if (!descriptor.factory) {
    throw std::invalid_argument("descriptor '" + descriptor.name +
                                "' has no factory");
  }
  for (const Contributed& c : contributions_) {
    if (c.name == descriptor.name) {
      throw std::invalid_argument("duplicate descriptor name '" +
                                  descriptor.name + "'");
    }
  }
  contributions_.push_back(
      Contributed{std::move(descriptor.name), std::move(descriptor.factory)});
}

void GraphAssembler::add(std::string name,
                         std::shared_ptr<core::ProcessingComponent> c) {
  add(ComponentDescriptor{std::move(name),
                          [c]() mutable { return std::move(c); }});
}

AssemblyReport GraphAssembler::resolve() {
  AssemblyReport report;

  // Instantiate anything not yet in the graph.
  for (Contributed& c : contributions_) {
    if (c.id != core::kInvalidComponent) continue;
    auto component = c.factory();
    if (!component) {
      throw std::runtime_error("factory for '" + c.name +
                               "' returned nullptr");
    }
    c.id = graph_.add(std::move(component));
  }
  for (const Contributed& c : contributions_) {
    report.instantiated.emplace_back(c.name, c.id);
  }

  // Wire requirements: every contributed component's requirements are
  // (re)checked; new edges connect to the first satisfying provider in
  // contribution order.
  for (const Contributed& consumer : contributions_) {
    const auto requirements =
        graph_.component(consumer.id).input_requirements();
    for (const core::InputRequirement& req : requirements) {
      // Already satisfied by an existing edge?
      const auto info = graph_.info(consumer.id);
      const bool satisfied = std::any_of(
          info.producers.begin(), info.producers.end(),
          [&](core::ComponentId pid) {
            const auto caps = graph_.capabilities(pid);
            return std::any_of(caps.begin(), caps.end(),
                               [&](const core::DataSpec& cap) {
                                 return req.accepts(cap.type,
                                                    cap.feature_tag);
                               });
          });
      if (satisfied) continue;

      bool connected = false;
      for (const Contributed& provider : contributions_) {
        if (provider.id == consumer.id) continue;
        const auto caps = graph_.capabilities(provider.id);
        const bool provides = std::any_of(
            caps.begin(), caps.end(), [&](const core::DataSpec& cap) {
              return req.accepts(cap.type, cap.feature_tag);
            });
        if (!provides) continue;
        try {
          graph_.connect(provider.id, consumer.id);
        } catch (const std::invalid_argument&) {
          continue;  // Cycle or duplicate edge: try the next provider.
        }
        report.edges.push_back(AssemblyEdge{provider.name, consumer.name,
                                            provider.id, consumer.id});
        connected = true;
        break;
      }
      if (!connected && !req.optional) {
        std::string description = req.any_type
                                      ? std::string("<any>")
                                      : std::string(req.type->name());
        if (!req.feature_tag.empty()) description += "@" + req.feature_tag;
        report.unsatisfied.emplace_back(consumer.name, description);
      }
    }
  }
  return report;
}

}  // namespace perpos::runtime
