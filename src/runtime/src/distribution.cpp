#include "perpos/runtime/distribution.hpp"

#include <algorithm>
#include <stdexcept>

namespace perpos::runtime {

DistributedDeployment::DistributedDeployment(core::ProcessingGraph& graph,
                                             sim::Network& network)
    : graph_(graph), network_(network) {}

sim::HostId DistributedDeployment::add_host(std::string name) {
  const sim::HostId id = network_.add_host(
      std::move(name), [this](sim::HostId from, const std::string& payload) {
        host_handler(from, payload);
      });
  hosts_.push_back(id);
  return id;
}

void DistributedDeployment::assign(core::ComponentId component,
                                   sim::HostId host) {
  if (!graph_.has(component)) {
    throw std::invalid_argument("assign: unknown component");
  }
  assignment_[component] = host;
}

void DistributedDeployment::deploy() {
  // Collect crossing edges first; mutating while iterating is unsafe.
  struct Crossing {
    core::ComponentId producer;
    core::ComponentId consumer;
    sim::HostId from;
    sim::HostId to;
  };
  std::vector<Crossing> crossings;
  for (core::ComponentId id : graph_.components()) {
    const auto it = assignment_.find(id);
    if (it == assignment_.end()) continue;
    for (core::ComponentId consumer : graph_.info(id).consumers) {
      const auto jt = assignment_.find(consumer);
      if (jt == assignment_.end() || jt->second == it->second) continue;
      crossings.push_back(Crossing{id, consumer, it->second, jt->second});
    }
  }

  // Fail fast before mutating anything: a cut edge whose data the wire
  // codec cannot round-trip would otherwise deploy fine and die at runtime
  // (decode_failed / silent egress drops), the worst failure mode for a
  // positioning system. Checked per capability the consumer accepts —
  // capabilities the consumer ignores may legally be uncodable.
  if (strict_) {
    for (const Crossing& c : crossings) {
      const auto reqs = graph_.component(c.consumer).input_requirements();
      for (const core::DataSpec& cap : graph_.capabilities(c.producer)) {
        const bool needed = std::any_of(
            reqs.begin(), reqs.end(), [&](const core::InputRequirement& r) {
              return r.accepts(cap.type, cap.feature_tag);
            });
        if (needed && !is_encodable_spec(cap)) {
          throw std::runtime_error(
              "deploy: edge " + std::string(graph_.component(c.producer).kind()) +
              "#" + std::to_string(c.producer) + " -> " +
              std::string(graph_.component(c.consumer).kind()) + "#" +
              std::to_string(c.consumer) + " crosses hosts but '" +
              std::string(cap.type != nullptr ? cap.type->name() : "<null>") +
              (cap.feature_tag.empty() ? std::string()
                                       : "@" + cap.feature_tag) +
              "' has no payload_codec coverage (PPV008); keep both ends on "
              "one host, or move the cut past a codable stage");
        }
      }
    }
  }

  for (const Crossing& c : crossings) {
    const std::string tag = "#" + std::to_string(next_pair_++);
    RemoteLinkEndpoints link;
    if (link_factory_) {
      link = link_factory_(network_, c.from, c.to, tag,
                           graph_.capabilities(c.producer));
    } else {
      auto egress = std::make_shared<RemoteEgress>(network_, c.from, c.to, tag);
      auto ingress =
          std::make_shared<RemoteIngress>(graph_.capabilities(c.producer));
      RemoteIngress* ingress_ptr = ingress.get();
      link.egress = std::move(egress);
      link.ingress = std::move(ingress);
      link.deliver_at_to = [ingress_ptr](const std::string& rest) {
        ingress_ptr->deliver(rest);
      };
    }

    const core::ComponentId egress_id = graph_.add(std::move(link.egress));
    const core::ComponentId ingress_id = graph_.add(std::move(link.ingress));
    graph_.disconnect(c.producer, c.consumer);
    graph_.connect(c.producer, egress_id);
    graph_.connect(ingress_id, c.consumer);

    assignment_[egress_id] = c.from;
    assignment_[ingress_id] = c.to;
    routes_[tag] = Route{c.from, c.to, std::move(link.deliver_at_to),
                         std::move(link.deliver_at_from)};
  }
}

void DistributedDeployment::host_handler(sim::HostId from,
                                         const std::string& payload) {
  const std::size_t space = payload.find(' ');
  if (space == std::string::npos) return;
  const std::string tag = payload.substr(0, space);
  if (tag == "#CTL") {
    return;  // Control messages carry no payload to route.
  }
  const auto it = routes_.find(tag);
  if (it == routes_.end()) return;
  const Route& route = it->second;
  // Forward path (data) comes from the producer host; reverse path (acks)
  // from the consumer host. Anything else is misrouted and dropped.
  if (from == route.from) {
    if (route.at_to) run_on_host(route.to, route.at_to, payload.substr(space + 1));
  } else if (from == route.to) {
    if (route.at_from) {
      run_on_host(route.from, route.at_from, payload.substr(space + 1));
    }
  }
}

void DistributedDeployment::run_on_host(
    sim::HostId host, const std::function<void(const std::string&)>& fn,
    std::string rest) {
  // Delivery emits into the destination host's graph region; under an
  // execution engine that must happen on the destination lane, not on the
  // network thread. Without an executor, deliver inline (single-threaded
  // simulation — the previous behaviour).
  const auto it = executors_.find(host);
  if (it == executors_.end() || !it->second) {
    fn(rest);
    return;
  }
  it->second([fn, rest = std::move(rest)] { fn(rest); });
}

void DistributedDeployment::set_executor(
    sim::HostId host, std::function<void(std::function<void()>)> executor) {
  if (executor) {
    executors_[host] = std::move(executor);
  } else {
    executors_.erase(host);
  }
}

void DistributedDeployment::remote_call(sim::HostId from, sim::HostId to,
                                        std::function<void()> fn) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(from) << 32) | to;
  ++control_counts_[key];
  // The marker message pays the link's byte/message accounting (and may be
  // lost on lossy links — accounted, never routed). The control action
  // itself runs synchronously: sub-second link latency is negligible
  // against EnTracked's multi-second duty cycles, and synchronous execution
  // keeps runs deterministic.
  network_.send(from, to, "#CTL remote-call");
  // Control actions run on the destination host's lane when one is
  // configured, for the same reason as data deliveries above.
  const auto it = executors_.find(to);
  if (it != executors_.end() && it->second) {
    it->second(std::move(fn));
  } else {
    fn();
  }
}

std::uint64_t DistributedDeployment::data_messages(sim::HostId from,
                                                   sim::HostId to) const {
  std::uint64_t control = 0;
  const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
  if (const auto it = control_counts_.find(key); it != control_counts_.end()) {
    control = it->second;
  }
  const std::uint64_t total = network_.stats(from, to).messages_sent;
  return total >= control ? total - control : 0;
}

std::uint64_t DistributedDeployment::control_messages(sim::HostId from,
                                                      sim::HostId to) const {
  const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
  const auto it = control_counts_.find(key);
  return it == control_counts_.end() ? 0 : it->second;
}

}  // namespace perpos::runtime
