#include "perpos/runtime/config.hpp"

#include <sstream>
#include <stdexcept>

namespace perpos::runtime {

void ComponentFactoryRegistry::register_kind(std::string kind,
                                             Factory factory) {
  if (!factory) throw std::invalid_argument("null factory for " + kind);
  const auto [it, inserted] =
      factories_.emplace(std::move(kind), std::move(factory));
  if (!inserted) {
    throw std::invalid_argument("kind '" + it->first +
                                "' already registered");
  }
}

std::shared_ptr<core::ProcessingComponent> ComponentFactoryRegistry::create(
    const std::string& kind, const std::vector<std::string>& args) const {
  const auto it = factories_.find(kind);
  if (it == factories_.end()) {
    throw std::invalid_argument("unknown component kind '" + kind + "'");
  }
  return it->second(args);
}

std::vector<std::string> ComponentFactoryRegistry::kinds() const {
  std::vector<std::string> out;
  for (const auto& [kind, factory] : factories_) out.push_back(kind);
  return out;
}

ConfigResult assemble_from_config(const std::string& text,
                                  const ComponentFactoryRegistry& registry,
                                  core::ProcessingGraph& graph) {
  ConfigResult result;
  std::map<std::string, core::ComponentId> names;
  bool want_resolve = false;

  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  const auto fail = [&](const std::string& message) {
    result.errors.push_back("line " + std::to_string(line_no) + ": " +
                            message);
  };

  // Pass 1: instantiate components and record directives.
  struct Edge {
    std::size_t line = 0;
    std::string producer;
    std::string consumer;
  };
  std::vector<Edge> edges;
  // `host` and `lane` share one shape: a label plus the components pinned
  // to it, resolved after pass 1 so the line may precede its members.
  struct GroupDecl {
    std::size_t line = 0;
    std::string label;
    std::vector<std::string> members;
  };
  std::vector<GroupDecl> host_decls;
  std::vector<GroupDecl> lane_decls;
  // `budget <name>` annotations resolve against the full name set too, so
  // the line may precede its component. Key/value parsing (and its
  // errors) still happens at the declaring line.
  struct BudgetDecl {
    std::size_t line = 0;
    std::string name;
    BudgetAnnotation annotation;
  };
  std::vector<BudgetDecl> budget_decls;
  const auto parse_group = [&](std::istringstream& ls, const char* verb,
                               std::vector<GroupDecl>& out) {
    GroupDecl decl;
    decl.line = line_no;
    if (!(ls >> decl.label)) {
      fail(std::string(verb) + " needs <" + verb + "-name> <component-name>...");
      return;
    }
    std::string member;
    while (ls >> member) decl.members.push_back(std::move(member));
    if (decl.members.empty()) {
      fail(std::string(verb) + " '" + decl.label + "' names no components");
      return;
    }
    out.push_back(std::move(decl));
  };
  const auto resolve_groups = [&](const std::vector<GroupDecl>& decls,
                                  const char* verb,
                                  std::map<std::string, std::string>& out) {
    for (const GroupDecl& decl : decls) {
      line_no = decl.line;
      for (const std::string& member : decl.members) {
        if (!names.contains(member)) {
          fail(std::string(verb) + " '" + decl.label +
               "': unknown component '" + member + "'");
          continue;
        }
        const auto [it, inserted] = out.emplace(member, decl.label);
        if (!inserted && it->second != decl.label) {
          fail("component '" + member + "' assigned to both '" + it->second +
               "' and '" + decl.label + "'");
        }
      }
    }
  };

  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string verb;
    if (!(ls >> verb)) continue;  // Blank line.

    if (verb == "component") {
      std::string name, kind;
      if (!(ls >> name >> kind)) {
        fail("component needs <name> <kind>");
        continue;
      }
      if (names.contains(name)) {
        fail("duplicate component name '" + name + "'");
        continue;
      }
      std::vector<std::string> args;
      std::string arg;
      while (ls >> arg) args.push_back(std::move(arg));
      try {
        auto component = registry.create(kind, args);
        if (!component) {
          fail("factory for '" + kind + "' returned null");
          continue;
        }
        const core::ComponentId id = graph.add(std::move(component));
        names.emplace(name, id);
        result.report.instantiated.emplace_back(name, id);
      } catch (const std::exception& e) {
        fail(e.what());
      }
    } else if (verb == "connect") {
      std::string producer, consumer;
      if (!(ls >> producer >> consumer)) {
        fail("connect needs <producer> <consumer>");
        continue;
      }
      edges.push_back(Edge{line_no, producer, consumer});
    } else if (verb == "resolve") {
      want_resolve = true;
    } else if (verb == "verify") {
      result.verify_requested = true;
    } else if (verb == "host") {
      parse_group(ls, "host", host_decls);
    } else if (verb == "lane") {
      parse_group(ls, "lane", lane_decls);
    } else if (verb == "budget") {
      std::string target;
      if (!(ls >> target)) {
        fail("budget needs <component-name> or '*' plus key=value tokens");
        continue;
      }
      // Shared numeric parsing; `rate` additionally accepts lo..hi.
      const auto parse_number = [&](const std::string& key,
                                    const std::string& value, double& out) {
        try {
          std::size_t used = 0;
          out = std::stod(value, &used);
          if (used != value.size() || out < 0.0) {
            throw std::invalid_argument(value);
          }
          return true;
        } catch (const std::exception&) {
          fail("budget " + key + ": bad number '" + value + "'");
          return false;
        }
      };
      bool bad = false;
      if (target == "*") {
        BudgetDefaults defaults =
            result.budget_defaults.value_or(BudgetDefaults{});
        std::string token;
        while (ls >> token) {
          const std::size_t eq = token.find('=');
          if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
            fail("budget expects key=value tokens, got '" + token + "'");
            bad = true;
            break;
          }
          const std::string key = token.substr(0, eq);
          const std::string value = token.substr(eq + 1);
          double number = 0.0;
          if (!parse_number(key, value, number)) {
            bad = true;
            break;
          }
          if (key == "source_rate") {
            defaults.source_rate_hz = number;
          } else if (key == "burst") {
            defaults.burst = number;
          } else if (key == "watermark") {
            defaults.queue_watermark = static_cast<std::size_t>(number);
          } else if (key == "slo_us") {
            defaults.latency_slo_us = number;
          } else {
            fail("unknown budget * key '" + key + "'");
            bad = true;
            break;
          }
        }
        if (!bad) result.budget_defaults = defaults;
        continue;
      }
      BudgetDecl decl;
      decl.line = line_no;
      decl.name = target;
      std::string token;
      bool any = false;
      while (ls >> token) {
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
          fail("budget expects key=value tokens, got '" + token + "'");
          bad = true;
          break;
        }
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (key == "rate") {
          // A single rate or a lo..hi interval.
          const std::size_t dots = value.find("..");
          std::string lo = value, hi = value;
          if (dots != std::string::npos) {
            lo = value.substr(0, dots);
            hi = value.substr(dots + 2);
          }
          if (!parse_number(key, lo, decl.annotation.rate_lo_hz) ||
              !parse_number(key, hi, decl.annotation.rate_hi_hz)) {
            bad = true;
            break;
          }
          if (decl.annotation.rate_hi_hz < decl.annotation.rate_lo_hz ||
              decl.annotation.rate_hi_hz <= 0.0) {
            fail("budget rate: bad interval '" + value + "'");
            bad = true;
            break;
          }
        } else if (key == "cost_us") {
          if (!parse_number(key, value, decl.annotation.cost_us)) {
            bad = true;
            break;
          }
        } else if (key == "min_rate") {
          if (!parse_number(key, value, decl.annotation.min_rate_hz)) {
            bad = true;
            break;
          }
        } else {
          fail("unknown budget key '" + key + "'");
          bad = true;
          break;
        }
        any = true;
      }
      if (bad) continue;
      if (!any) {
        fail("budget '" + target + "' sets no annotation");
        continue;
      }
      budget_decls.push_back(std::move(decl));
    } else if (verb == "health") {
      HealthSettings settings = result.health.value_or(HealthSettings{});
      bool bad = false;
      std::string token;
      while (ls >> token) {
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
          fail("health expects key=value tokens, got '" + token + "'");
          bad = true;
          break;
        }
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        double number = 0.0;
        try {
          std::size_t used = 0;
          number = std::stod(value, &used);
          if (used != value.size()) throw std::invalid_argument(value);
        } catch (const std::exception&) {
          fail("health " + key + ": bad number '" + value + "'");
          bad = true;
          break;
        }
        if (key == "degraded_after_s") {
          settings.degraded_after_s = number;
        } else if (key == "stale_after_s") {
          settings.stale_after_s = number;
        } else if (key == "dead_after_s") {
          settings.dead_after_s = number;
        } else if (key == "recovery_s") {
          settings.recovery_s = number;
        } else if (key == "hold_s") {
          settings.hold_s = number;
        } else if (key == "check_interval_s") {
          settings.check_interval_s = number;
        } else if (key == "max_retries") {
          settings.max_retries = static_cast<int>(number);
        } else if (key == "ack_timeout_ms") {
          settings.ack_timeout_ms = number;
        } else {
          fail("unknown health key '" + key + "'");
          bad = true;
          break;
        }
      }
      if (!bad) result.health = settings;
    } else if (verb == "reconfig") {
      ReconfigSettings settings = result.reconfig.value_or(ReconfigSettings{});
      bool bad = false;
      std::string token;
      while (ls >> token) {
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
          fail("reconfig expects key=value tokens, got '" + token + "'");
          bad = true;
          break;
        }
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        double number = 0.0;
        try {
          std::size_t used = 0;
          number = std::stod(value, &used);
          if (used != value.size() || number < 0.0) {
            throw std::invalid_argument(value);
          }
        } catch (const std::exception&) {
          fail("reconfig " + key + ": bad number '" + value + "'");
          bad = true;
          break;
        }
        if (key == "verify") {
          settings.verify = number != 0.0;
        } else if (key == "history") {
          settings.history = static_cast<std::size_t>(number);
        } else if (key == "tee_samples") {
          settings.tee_samples = static_cast<std::size_t>(number);
        } else if (key == "probation_checks") {
          settings.probation_checks = static_cast<std::size_t>(number);
        } else {
          fail("unknown reconfig key '" + key + "'");
          bad = true;
          break;
        }
      }
      if (!bad) result.reconfig = settings;
    } else if (verb == "plan") {
      PlanSettings settings = result.plan.value_or(PlanSettings{});
      bool bad = false;
      std::string token;
      while (ls >> token) {
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
          fail("plan expects key=value tokens, got '" + token + "'");
          bad = true;
          break;
        }
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        double number = 0.0;
        try {
          std::size_t used = 0;
          number = std::stod(value, &used);
          if (used != value.size() || number < 0.0) {
            throw std::invalid_argument(value);
          }
        } catch (const std::exception&) {
          fail("plan " + key + ": bad number '" + value + "'");
          bad = true;
          break;
        }
        if (key == "freeze") {
          settings.freeze = number != 0.0;
        } else if (key == "auto_refreeze") {
          settings.auto_refreeze = number != 0.0;
        } else {
          fail("unknown plan key '" + key + "'");
          bad = true;
          break;
        }
      }
      if (!bad) result.plan = settings;
    } else if (verb == "observe") {
      obs::ObservabilityConfig cfg;
      cfg.metrics = cfg.timing = cfg.tracing = false;
      bool any = false, bad = false;
      std::string flag;
      while (ls >> flag) {
        any = true;
        if (flag == "metrics") {
          cfg.metrics = true;
        } else if (flag == "timing") {
          cfg.timing = true;
        } else if (flag == "tracing") {
          cfg.tracing = true;
        } else if (flag == "latency") {
          cfg.latency = true;
        } else if (flag == "recording") {
          cfg.recording = true;
        } else if (flag == "all") {
          cfg.metrics = cfg.timing = cfg.tracing = true;
          cfg.latency = cfg.recording = true;
        } else if (flag.rfind("slo_us=", 0) == 0) {
          const std::string value = flag.substr(7);
          try {
            std::size_t used = 0;
            cfg.latency_slo_us = std::stod(value, &used);
            if (used != value.size()) throw std::invalid_argument(value);
          } catch (const std::exception&) {
            fail("observe slo_us: bad number '" + value + "'");
            bad = true;
            break;
          }
        } else {
          fail("unknown observe flag '" + flag + "'");
          bad = true;
          break;
        }
      }
      if (!bad) {
        if (!any) cfg.metrics = cfg.timing = true;
        graph.enable_observability(cfg);
      }
    } else {
      fail("unknown directive '" + verb + "'");
    }
  }

  // Host / lane / budget assignments resolve against the full set of
  // component names, so the lines may precede the components they pin.
  resolve_groups(host_decls, "host", result.hosts);
  resolve_groups(lane_decls, "lane", result.lanes);
  for (const BudgetDecl& decl : budget_decls) {
    line_no = decl.line;
    if (!names.contains(decl.name)) {
      fail("budget: unknown component '" + decl.name + "'");
      continue;
    }
    // Later lines refine earlier ones field by field, matching the
    // annotation's own unset conventions.
    BudgetAnnotation& merged = result.budgets[decl.name];
    if (decl.annotation.rate_hi_hz > 0.0) {
      merged.rate_lo_hz = decl.annotation.rate_lo_hz;
      merged.rate_hi_hz = decl.annotation.rate_hi_hz;
    }
    if (decl.annotation.cost_us >= 0.0) {
      merged.cost_us = decl.annotation.cost_us;
    }
    if (decl.annotation.min_rate_hz > 0.0) {
      merged.min_rate_hz = decl.annotation.min_rate_hz;
    }
  }

  // Pass 2: explicit edges.
  for (const Edge& edge : edges) {
    line_no = edge.line;
    const auto p = names.find(edge.producer);
    const auto c = names.find(edge.consumer);
    if (p == names.end()) {
      fail("unknown component '" + edge.producer + "'");
      continue;
    }
    if (c == names.end()) {
      fail("unknown component '" + edge.consumer + "'");
      continue;
    }
    try {
      graph.connect(p->second, c->second);
      result.report.edges.push_back(
          AssemblyEdge{edge.producer, edge.consumer, p->second, c->second});
    } catch (const std::exception& e) {
      fail(e.what());
    }
  }

  // Pass 3: optional dependency resolution for anything left open. The
  // components are already in the graph, so the assembler's satisfaction
  // logic is run inline over the named instances.
  if (want_resolve) {
    for (const auto& [consumer_name, consumer_id] : names) {
      const auto requirements =
          graph.component(consumer_id).input_requirements();
      for (const core::InputRequirement& req : requirements) {
        const auto info = graph.info(consumer_id);
        const bool satisfied = [&] {
          for (core::ComponentId pid : info.producers) {
            for (const core::DataSpec& cap : graph.capabilities(pid)) {
              if (req.accepts(cap.type, cap.feature_tag)) return true;
            }
          }
          return false;
        }();
        if (satisfied) continue;
        bool connected = false;
        for (const auto& [provider_name, provider_id] : names) {
          if (provider_id == consumer_id) continue;
          const auto caps = graph.capabilities(provider_id);
          bool provides = false;
          for (const core::DataSpec& cap : caps) {
            if (req.accepts(cap.type, cap.feature_tag)) {
              provides = true;
              break;
            }
          }
          if (!provides) continue;
          try {
            graph.connect(provider_id, consumer_id);
          } catch (const std::invalid_argument&) {
            continue;
          }
          result.report.edges.push_back(AssemblyEdge{
              provider_name, consumer_name, provider_id, consumer_id,
              /*resolved=*/true});
          connected = true;
          break;
        }
        if (!connected && !req.optional) {
          std::string description =
              req.any_type ? std::string("<any>")
                           : std::string(req.type->name());
          if (!req.feature_tag.empty()) description += "@" + req.feature_tag;
          result.report.unsatisfied.emplace_back(consumer_name, description);
        }
      }
    }
  }
  return result;
}

std::string export_config(const core::ProcessingGraph& graph,
                          const HealthSettings* health,
                          const std::map<core::ComponentId, std::string>*
                              hosts,
                          const std::map<core::ComponentId, std::string>*
                              lanes,
                          const ReconfigSettings* reconfig,
                          const std::map<core::ComponentId, BudgetAnnotation>*
                              budgets,
                          const BudgetDefaults* budget_defaults,
                          const PlanSettings* plan) {
  std::ostringstream out;
  out << "# snapshot of a live PerPos processing graph\n";
  const auto ids = graph.components();
  const auto name_of = [&](core::ComponentId id) {
    return std::string(graph.component(id).kind()) + "_" +
           std::to_string(id);
  };
  for (core::ComponentId id : ids) {
    out << "component " << name_of(id) << " "
        << graph.component(id).kind() << "\n";
  }
  for (core::ComponentId id : ids) {
    for (core::ComponentId consumer : graph.info(id).consumers) {
      out << "connect " << name_of(id) << " " << name_of(consumer) << "\n";
    }
  }
  // One `host` / `lane` line per label, members in component-id order.
  const auto emit_groups =
      [&](const char* verb,
          const std::map<core::ComponentId, std::string>& assignment) {
        std::map<std::string, std::vector<core::ComponentId>> by_label;
        for (core::ComponentId id : ids) {
          if (const auto it = assignment.find(id); it != assignment.end()) {
            by_label[it->second].push_back(id);
          }
        }
        for (const auto& [label, members] : by_label) {
          out << verb << " " << label;
          for (core::ComponentId id : members) out << " " << name_of(id);
          out << "\n";
        }
      };
  if (hosts != nullptr) emit_groups("host", *hosts);
  if (lanes != nullptr) emit_groups("lane", *lanes);
  const auto number = [](double v) {
    std::ostringstream s;
    s << v;  // Default formatting drops trailing zeros; std::stod
             // re-parses it exactly for the values we deal in.
    return s.str();
  };
  if (budgets != nullptr) {
    for (core::ComponentId id : ids) {
      const auto it = budgets->find(id);
      if (it == budgets->end()) continue;
      const BudgetAnnotation& a = it->second;
      const bool has_rate = a.rate_hi_hz > 0.0;
      const bool has_cost = a.cost_us >= 0.0;
      const bool has_min = a.min_rate_hz > 0.0;
      if (!has_rate && !has_cost && !has_min) continue;
      out << "budget " << name_of(id);
      if (has_rate) {
        out << " rate=" << number(a.rate_lo_hz);
        if (a.rate_hi_hz != a.rate_lo_hz) out << ".." << number(a.rate_hi_hz);
      }
      if (has_cost) out << " cost_us=" << number(a.cost_us);
      if (has_min) out << " min_rate=" << number(a.min_rate_hz);
      out << "\n";
    }
  }
  if (budget_defaults != nullptr) {
    out << "budget * source_rate=" << number(budget_defaults->source_rate_hz)
        << " burst=" << number(budget_defaults->burst)
        << " watermark=" << budget_defaults->queue_watermark
        << " slo_us=" << number(budget_defaults->latency_slo_us) << "\n";
  }
  if (const obs::ObservabilityConfig* cfg = graph.observability_config()) {
    out << "observe";
    if (cfg->metrics) out << " metrics";
    if (cfg->timing) out << " timing";
    if (cfg->tracing) out << " tracing";
    if (cfg->latency) out << " latency";
    if (cfg->recording) out << " recording";
    if (cfg->latency_slo_us > 0.0) {
      std::ostringstream s;
      s << cfg->latency_slo_us;
      out << " slo_us=" << s.str();
    }
    out << "\n";
  }
  if (health != nullptr) {
    out << "health degraded_after_s=" << number(health->degraded_after_s)
        << " stale_after_s=" << number(health->stale_after_s)
        << " dead_after_s=" << number(health->dead_after_s)
        << " recovery_s=" << number(health->recovery_s)
        << " hold_s=" << number(health->hold_s)
        << " check_interval_s=" << number(health->check_interval_s)
        << " max_retries=" << health->max_retries
        << " ack_timeout_ms=" << number(health->ack_timeout_ms) << "\n";
  }
  if (reconfig != nullptr) {
    out << "reconfig verify=" << (reconfig->verify ? 1 : 0)
        << " history=" << reconfig->history
        << " tee_samples=" << reconfig->tee_samples
        << " probation_checks=" << reconfig->probation_checks << "\n";
  }
  if (plan != nullptr) {
    out << "plan freeze=" << (plan->freeze ? 1 : 0)
        << " auto_refreeze=" << (plan->auto_refreeze ? 1 : 0) << "\n";
  }
  return out.str();
}

}  // namespace perpos::runtime
