#include "perpos/runtime/bundle.hpp"

namespace perpos::runtime {

std::size_t Framework::install(std::unique_ptr<Bundle> bundle) {
  Installed entry;
  entry.context =
      std::make_unique<BundleContext>(registry_, bundle->name());
  entry.bundle = std::move(bundle);
  bundles_.push_back(std::move(entry));
  return bundles_.size() - 1;
}

Framework::Installed* Framework::find_installed(const std::string& name) {
  for (Installed& entry : bundles_) {
    if (entry.bundle->name() == name) return &entry;
  }
  return nullptr;
}

Bundle* Framework::find(const std::string& name) {
  Installed* entry = find_installed(name);
  return entry != nullptr ? entry->bundle.get() : nullptr;
}

void Framework::start_installed(Installed& entry) {
  if (entry.bundle->state_ == BundleState::kActive) return;
  entry.bundle->start(*entry.context);
  entry.bundle->state_ = BundleState::kActive;
}

void Framework::stop_installed(Installed& entry) {
  if (entry.bundle->state_ != BundleState::kActive) return;
  entry.bundle->stop(*entry.context);
  for (ServiceId id : entry.context->registered_) registry_.unregister(id);
  entry.context->registered_.clear();
  entry.bundle->state_ = BundleState::kStopped;
}

void Framework::start(const std::string& name) {
  Installed* entry = find_installed(name);
  if (entry == nullptr) throw std::invalid_argument("unknown bundle " + name);
  start_installed(*entry);
}

void Framework::stop(const std::string& name) {
  Installed* entry = find_installed(name);
  if (entry == nullptr) throw std::invalid_argument("unknown bundle " + name);
  stop_installed(*entry);
}

void Framework::start_all() {
  for (Installed& entry : bundles_) start_installed(entry);
}

void Framework::stop_all() {
  for (auto it = bundles_.rbegin(); it != bundles_.rend(); ++it) {
    stop_installed(*it);
  }
}

}  // namespace perpos::runtime
