#include "perpos/runtime/registry.hpp"

#include <algorithm>

namespace perpos::runtime {

ServiceId ServiceRegistry::register_erased(std::string interface_name,
                                           std::shared_ptr<void> service,
                                           Properties properties) {
  const ServiceId id = next_id_++;
  ServiceRef ref;
  ref.id = id;
  ref.interface_name = std::move(interface_name);
  ref.properties = std::move(properties);
  ref.service = std::move(service);
  const auto [it, inserted] = services_.emplace(id, std::move(ref));
  const auto snapshot = listeners_;
  for (const auto& [token, listener] : snapshot) {
    listener(ServiceEvent::kRegistered, it->second);
  }
  return id;
}

bool ServiceRegistry::unregister(ServiceId id) {
  const auto it = services_.find(id);
  if (it == services_.end()) return false;
  const auto snapshot = listeners_;
  for (const auto& [token, listener] : snapshot) {
    listener(ServiceEvent::kUnregistering, it->second);
  }
  services_.erase(it);
  return true;
}

std::vector<ServiceRef> ServiceRegistry::find(
    const std::string& interface_name, const Properties& filter) const {
  std::vector<ServiceRef> out;
  for (const auto& [id, ref] : services_) {
    if (ref.interface_name != interface_name) continue;
    const bool matches = std::all_of(
        filter.begin(), filter.end(), [&](const auto& kv) {
          const auto it = ref.properties.find(kv.first);
          return it != ref.properties.end() && it->second == kv.second;
        });
    if (matches) out.push_back(ref);
  }
  return out;
}

std::size_t ServiceRegistry::add_listener(Listener listener) {
  const std::size_t token = next_listener_++;
  listeners_.emplace_back(token, std::move(listener));
  return token;
}

void ServiceRegistry::remove_listener(std::size_t token) {
  listeners_.erase(
      std::remove_if(listeners_.begin(), listeners_.end(),
                     [&](const auto& p) { return p.first == token; }),
      listeners_.end());
}

}  // namespace perpos::runtime
