#include "perpos/baselines/posim.hpp"

// Header-only; anchors the library target.

namespace perpos::baselines {}  // namespace perpos::baselines
