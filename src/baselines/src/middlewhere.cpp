#include "perpos/baselines/middlewhere.hpp"

#include <algorithm>
#include <stdexcept>

namespace perpos::baselines {

void MiddleWhere::add_region(MwRegion region) {
  if (!region.parent.empty() && !regions_.contains(region.parent)) {
    throw std::invalid_argument("unknown parent region '" + region.parent +
                                "'");
  }
  const std::string name = region.name;
  if (!regions_.emplace(name, std::move(region)).second) {
    throw std::invalid_argument("region '" + name + "' already defined");
  }
}

const MwRegion* MiddleWhere::region(const std::string& name) const {
  const auto it = regions_.find(name);
  return it == regions_.end() ? nullptr : &it->second;
}

std::vector<std::string> MiddleWhere::region_names() const {
  std::vector<std::string> out;
  for (const auto& [name, r] : regions_) out.push_back(name);
  return out;
}

void MiddleWhere::update(const std::string& object_id, MwPositionInfo info) {
  objects_[object_id] = info;

  // Recompute direct memberships and fire edge-triggered events.
  std::vector<std::string> now;
  for (const auto& [name, region] : regions_) {
    if (region.contains(info.position)) now.push_back(name);
  }
  std::vector<std::string>& before = memberships_[object_id];

  for (const std::string& name : now) {
    if (std::find(before.begin(), before.end(), name) == before.end()) {
      for (const EventListener& l : listeners_) {
        l(MwEvent{object_id, name, true, info.timestamp});
      }
    }
  }
  for (const std::string& name : before) {
    if (std::find(now.begin(), now.end(), name) == now.end()) {
      for (const EventListener& l : listeners_) {
        l(MwEvent{object_id, name, false, info.timestamp});
      }
    }
  }
  before = std::move(now);
}

std::optional<MwPositionInfo> MiddleWhere::locate(
    const std::string& object_id) const {
  const auto it = objects_.find(object_id);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

bool MiddleWhere::contained_in(const std::string& object_id,
                               const std::string& region_name) const {
  const auto obj = objects_.find(object_id);
  const auto reg = regions_.find(region_name);
  if (obj == objects_.end() || reg == regions_.end()) return false;
  return reg->second.contains(obj->second.position);
}

std::vector<std::string> MiddleWhere::regions_of(
    const std::string& object_id) const {
  std::vector<std::string> out;
  const auto it = memberships_.find(object_id);
  if (it == memberships_.end()) return out;
  out = it->second;
  // Add ancestors of direct memberships.
  for (std::size_t i = 0; i < out.size(); ++i) {
    const MwRegion* r = region(out[i]);
    if (r != nullptr && !r->parent.empty() &&
        std::find(out.begin(), out.end(), r->parent) == out.end()) {
      out.push_back(r->parent);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool MiddleWhere::colocated(const std::string& a, const std::string& b,
                            double radius_m) const {
  const auto pa = objects_.find(a);
  const auto pb = objects_.find(b);
  if (pa == objects_.end() || pb == objects_.end()) return false;
  return geo::haversine_m(pa->second.position, pb->second.position) <=
         radius_m;
}

std::vector<std::pair<std::string, double>> MiddleWhere::nearest(
    const std::string& from, std::size_t k) const {
  std::vector<std::pair<std::string, double>> out;
  const auto it = objects_.find(from);
  if (it == objects_.end()) return out;
  for (const auto& [id, info] : objects_) {
    if (id == from) continue;
    out.emplace_back(id,
                     geo::haversine_m(it->second.position, info.position));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& x, const auto& y) { return x.second < y.second; });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace perpos::baselines
