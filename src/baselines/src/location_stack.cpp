#include "perpos/baselines/location_stack.hpp"

namespace perpos::baselines {

std::size_t measurement_bytes(const StackMeasurement& m) {
  // Geodetic position (3 doubles) + accuracy + timestamp + technology tag.
  return 3 * sizeof(double) + sizeof(double) + sizeof(std::int64_t) +
         m.technology.size();
}

std::size_t measurement_bytes(const ExtendedStackMeasurement& m) {
  return 3 * sizeof(double) + sizeof(double) + sizeof(std::int64_t) +
         m.technology.size() + sizeof(int) + sizeof(double);
}

}  // namespace perpos::baselines
