#pragma once

#include "perpos/geo/coordinates.hpp"
#include "perpos/sim/clock.hpp"

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

/// \file posim.hpp
/// A miniature PoSIM (Bellavista et al. 2008) — the translucent comparator
/// middleware of the paper's Sec. 3 discussion. PoSIM mediates access to
/// heterogeneous positioning systems through Sensor Wrappers that expose
/// *info* keys (readable values, e.g. "HDOP", "satellites") and *control*
/// keys (settable knobs, e.g. "power"), plus declarative policies
/// (condition over infos -> control actions) evaluated on each new datum.
///
/// The deliberate limitation reproduced here (paper Sec. 3.2): "when
/// questioned it will always return the latest HDOP value, which may
/// correspond to a new position" — info queries are latest-value only;
/// there is no association between a delivered position and the low-level
/// values that produced it, and no access to the processing between the
/// wrapper and the application.

namespace perpos::baselines {

/// A position as PoSIM delivers it.
struct PosimPosition {
  geo::GeoPoint position;
  double accuracy_m = 0.0;
  sim::SimTime timestamp;
  std::uint64_t epoch = 0;  ///< Internal production counter (test hook).
};

/// Base class for sensor wrappers.
class PosimSensorWrapper {
 public:
  explicit PosimSensorWrapper(std::string technology)
      : technology_(std::move(technology)) {}
  virtual ~PosimSensorWrapper() = default;

  const std::string& technology() const noexcept { return technology_; }

  /// Latest value of an info key, or nullopt when unsupported.
  std::optional<double> get_info(const std::string& key) const {
    const auto it = infos_.find(key);
    if (it == infos_.end()) return std::nullopt;
    return it->second;
  }
  std::vector<std::string> info_keys() const {
    std::vector<std::string> out;
    for (const auto& [k, v] : infos_) out.push_back(k);
    return out;
  }

  /// Set a control key; returns false when unsupported.
  virtual bool set_control(const std::string& key, const std::string& value) {
    controls_[key] = value;
    return true;
  }
  std::optional<std::string> get_control(const std::string& key) const {
    const auto it = controls_.find(key);
    if (it == controls_.end()) return std::nullopt;
    return it->second;
  }

 protected:
  /// Wrapper implementations publish the latest info values here.
  void publish_info(const std::string& key, double value) {
    infos_[key] = value;
  }

 private:
  std::string technology_;
  std::map<std::string, double> infos_;
  std::map<std::string, std::string> controls_;
};

/// A declarative policy: when `condition` holds over the wrapper's infos,
/// apply `action` to its controls.
struct PosimPolicy {
  std::string name;
  std::function<bool(const PosimSensorWrapper&)> condition;
  std::function<void(PosimSensorWrapper&)> action;
};

/// The PoSIM core: wrappers + policies + position delivery.
class Posim {
 public:
  using Listener = std::function<void(const PosimPosition&)>;

  /// Register a wrapper; PoSIM shares ownership.
  void add_wrapper(std::shared_ptr<PosimSensorWrapper> wrapper) {
    wrappers_.push_back(std::move(wrapper));
  }
  const std::vector<std::shared_ptr<PosimSensorWrapper>>& wrappers() const {
    return wrappers_;
  }
  PosimSensorWrapper* wrapper(const std::string& technology) const {
    for (const auto& w : wrappers_) {
      if (w->technology() == technology) return w.get();
    }
    return nullptr;
  }

  void add_policy(PosimPolicy policy) {
    policies_.push_back(std::move(policy));
  }

  /// Wrapper implementations deliver positions through this; policies are
  /// evaluated, then listeners run.
  void deliver(PosimSensorWrapper& from, PosimPosition position) {
    position.epoch = ++epoch_;
    last_ = position;
    for (const PosimPolicy& p : policies_) {
      if (p.condition && p.condition(from) && p.action) p.action(from);
    }
    for (const Listener& l : listeners_) l(position);
  }

  std::optional<PosimPosition> get_position() const { return last_; }
  void subscribe(Listener listener) {
    listeners_.push_back(std::move(listener));
  }

  /// Cross-wrapper info query — always the *latest* value (the seam the
  /// C1 benchmark measures).
  std::optional<double> get_info(const std::string& technology,
                                 const std::string& key) const {
    const PosimSensorWrapper* w = wrapper(technology);
    return w != nullptr ? w->get_info(key) : std::nullopt;
  }

 private:
  std::vector<std::shared_ptr<PosimSensorWrapper>> wrappers_;
  std::vector<PosimPolicy> policies_;
  std::vector<Listener> listeners_;
  std::optional<PosimPosition> last_;
  std::uint64_t epoch_ = 0;
};

}  // namespace perpos::baselines
