#pragma once

#include "perpos/geo/coordinates.hpp"
#include "perpos/sim/clock.hpp"

#include <cmath>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

/// \file location_stack.hpp
/// A miniature Location Stack (Hightower et al. 2002) — the layered
/// comparator middleware of the paper's Sec. 3 discussion. Three fixed
/// layers: Sensors produce measurements in a *common representation*,
/// the Measurements layer normalizes them, and a fixed Fusion layer merges
/// them. There is no access to the process between the layers and all
/// cross-layer information must be part of the common measurement format.
///
/// Two formats are provided to make the paper's point measurable:
///  * StackMeasurement — the original format. Satellite counts and HDOP do
///    not fit; example E1/E2 cannot be built on top of it at all.
///  * ExtendedStackMeasurement — the format after the source-level change
///    the paper describes ("adding the satellite information to the
///    position format used by the middleware"): every measurement of every
///    technology now carries GPS-specific fields, whether meaningful or
///    not. The C1 benchmark measures the carry-everywhere overhead.

namespace perpos::baselines {

/// The fixed common measurement format (version 1).
struct StackMeasurement {
  geo::GeoPoint position;
  double accuracy_m = 0.0;
  sim::SimTime timestamp;
  std::string technology;
};

/// The format after the middleware-source modification (version 2): GPS
/// details ride along on every measurement, for every technology.
struct ExtendedStackMeasurement {
  geo::GeoPoint position;
  double accuracy_m = 0.0;
  sim::SimTime timestamp;
  std::string technology;
  // --- fields added for one application's needs ---
  int satellites = -1;   ///< -1 for technologies without satellites.
  double hdop = -1.0;    ///< -1 for technologies without HDOP.
};

/// The fixed fusion policy: inverse-variance weighted average of the
/// freshest measurement per technology within a time window.
struct StackFusionConfig {
  sim::SimTime window = sim::SimTime::from_seconds(5.0);
};

/// The layered middleware over format V. V must provide position,
/// accuracy_m, timestamp, technology.
template <typename V>
class LocationStackT {
 public:
  using Listener = std::function<void(const V&)>;

  explicit LocationStackT(StackFusionConfig config = {}) : config_(config) {}

  /// Sensor layer entry point: a sensor pushes a measurement.
  void push_measurement(V measurement) {
    // Measurements layer: normalize (here: drop absurd accuracies).
    if (measurement.accuracy_m < 0.0) return;
    recent_.push_back(measurement);
    prune(measurement.timestamp);
    fused_ = fuse();
    for (const Listener& l : listeners_) l(*fused_);
  }

  /// Application API: the fused position. Nothing else is visible.
  std::optional<V> get_position() const { return fused_; }

  void subscribe(Listener listener) {
    listeners_.push_back(std::move(listener));
  }

  std::size_t window_size() const noexcept { return recent_.size(); }

 private:
  void prune(sim::SimTime now) {
    while (!recent_.empty() &&
           (now - recent_.front().timestamp) > config_.window) {
      recent_.pop_front();
    }
  }

  std::optional<V> fuse() const {
    if (recent_.empty()) return std::nullopt;
    double wsum = 0.0, lat = 0.0, lon = 0.0, alt = 0.0;
    for (const V& m : recent_) {
      const double sigma = m.accuracy_m > 0.1 ? m.accuracy_m : 0.1;
      const double w = 1.0 / (sigma * sigma);
      wsum += w;
      lat += w * m.position.latitude_deg;
      lon += w * m.position.longitude_deg;
      alt += w * m.position.altitude_m;
    }
    V out = recent_.back();
    out.position = geo::GeoPoint{lat / wsum, lon / wsum, alt / wsum};
    out.accuracy_m = 1.0 / std::sqrt(wsum);
    return out;
  }

  StackFusionConfig config_;
  std::deque<V> recent_;
  std::optional<V> fused_;
  std::vector<Listener> listeners_;
};

using LocationStack = LocationStackT<StackMeasurement>;
using ExtendedLocationStack = LocationStackT<ExtendedStackMeasurement>;

/// Approximate wire/in-memory size of one measurement — used by the C1
/// benchmark to quantify the carry-everywhere overhead of the extended
/// format.
std::size_t measurement_bytes(const StackMeasurement& m);
std::size_t measurement_bytes(const ExtendedStackMeasurement& m);

}  // namespace perpos::baselines
