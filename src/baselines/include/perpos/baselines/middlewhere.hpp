#pragma once

#include "perpos/geo/coordinates.hpp"
#include "perpos/geo/distance.hpp"
#include "perpos/sim/clock.hpp"

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

/// \file middlewhere.hpp
/// A miniature MiddleWhere (Ranganathan et al. 2004) — the third comparator
/// of the paper's Sec. 3/5 discussion. MiddleWhere keeps a *world model*:
/// a spatial database holding the current position of every located object
/// plus a hierarchy of regions; applications query the model through
/// location operators (containment, colocation, nearest) or subscribe to
/// location events. Position info carries confidence and freshness — but,
/// as the paper points out, the world model is the only interface: there
/// is no access to the process that produced a position, technology
/// details (satellites, HDOP) are not representable without changing the
/// middleware's position schema, and "this scenario [sensor control] does
/// not apply to their domain".

namespace perpos::baselines {

/// A region of the world model's spatial hierarchy (2D polygon-free model:
/// circles keep the comparator minimal while supporting the operators).
struct MwRegion {
  std::string name;
  std::string parent;  ///< Empty for roots.
  geo::GeoPoint center;
  double radius_m = 0.0;

  bool contains(const geo::GeoPoint& p) const {
    return geo::haversine_m(center, p) <= radius_m;
  }
};

/// The position record the world model stores per object — the fixed
/// schema every technology must map into.
struct MwPositionInfo {
  geo::GeoPoint position;
  double confidence = 1.0;       ///< 0..1 from the adapter.
  double resolution_m = 10.0;    ///< Technology granularity.
  sim::SimTime timestamp;
};

/// Location events delivered to subscribers.
struct MwEvent {
  std::string object_id;
  std::string region;  ///< Region entered/left.
  bool entered = true;
  sim::SimTime timestamp;
};

class MiddleWhere {
 public:
  using EventListener = std::function<void(const MwEvent&)>;

  /// Define a region; parent must exist or be empty.
  void add_region(MwRegion region);
  const MwRegion* region(const std::string& name) const;
  std::vector<std::string> region_names() const;

  /// Adapter entry point: a positioning technology reports an object's
  /// position into the world model (overwriting the previous record).
  /// Containment events fire for every region whose membership changed.
  void update(const std::string& object_id, MwPositionInfo info);

  /// The stored record, or nullopt for unknown objects. Note: the caller
  /// learns confidence and resolution, but nothing about *how* the
  /// position was produced.
  std::optional<MwPositionInfo> locate(const std::string& object_id) const;

  // --- Location operators ---------------------------------------------------

  /// Is the object's stored position inside the region?
  bool contained_in(const std::string& object_id,
                    const std::string& region_name) const;

  /// All regions (transitively including ancestors) containing the object.
  std::vector<std::string> regions_of(const std::string& object_id) const;

  /// Are two objects within `radius_m` of each other (by stored positions)?
  bool colocated(const std::string& a, const std::string& b,
                 double radius_m) const;

  /// Objects sorted by distance to `from`, nearest first, at most k.
  std::vector<std::pair<std::string, double>> nearest(
      const std::string& from, std::size_t k) const;

  void subscribe(EventListener listener) {
    listeners_.push_back(std::move(listener));
  }

  std::size_t object_count() const noexcept { return objects_.size(); }

 private:
  std::map<std::string, MwRegion> regions_;
  std::map<std::string, MwPositionInfo> objects_;
  std::map<std::string, std::vector<std::string>> memberships_;
  std::vector<EventListener> listeners_;
};

}  // namespace perpos::baselines
