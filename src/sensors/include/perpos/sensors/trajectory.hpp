#pragma once

#include "perpos/geo/local_frame.hpp"
#include "perpos/sim/clock.hpp"

#include <vector>

/// \file trajectory.hpp
/// Ground-truth movement of a tracked target: piecewise-linear waypoint
/// paths with per-leg speed and pauses, in building-local coordinates.
/// Every simulated sensor samples the same trajectory, which is also the
/// reference for error evaluation (Fig. 6) and the EnTracked movement
/// patterns (Fig. 7).

namespace perpos::sensors {

using geo::LocalPoint;

/// One leg of a trajectory: walk to `to` at `speed_mps`, then pause.
struct Leg {
  LocalPoint to;
  double speed_mps = 1.2;  ///< Typical indoor walking speed.
  double pause_s = 0.0;
};

class Trajectory {
 public:
  Trajectory(LocalPoint start, std::vector<Leg> legs);

  /// Position at simulation time `t` (clamped to the end point).
  LocalPoint position_at(sim::SimTime t) const noexcept;

  /// Instantaneous speed at `t` (0 during pauses and after the end).
  double speed_at(sim::SimTime t) const noexcept;

  /// Total duration from start to the end of the last pause.
  sim::SimTime duration() const noexcept { return duration_; }

  /// Total path length in metres.
  double length_m() const noexcept { return length_m_; }

  const LocalPoint& start() const noexcept { return start_; }
  LocalPoint end() const noexcept;

  /// Evenly time-sampled ground-truth points (inclusive of both ends).
  std::vector<LocalPoint> sample(sim::SimTime step) const;

 private:
  struct Phase {
    sim::SimTime begin;
    sim::SimTime end;
    LocalPoint from;
    LocalPoint to;      // == from during pauses
    double speed_mps;   // 0 during pauses
  };
  LocalPoint start_;
  std::vector<Phase> phases_;
  sim::SimTime duration_;
  double length_m_ = 0.0;
};

/// Builder with a fluent interface.
class TrajectoryBuilder {
 public:
  explicit TrajectoryBuilder(LocalPoint start) : start_(start) {}

  TrajectoryBuilder& walk_to(LocalPoint to, double speed_mps = 1.2) {
    legs_.push_back(Leg{to, speed_mps, 0.0});
    return *this;
  }
  TrajectoryBuilder& pause(double seconds) {
    if (legs_.empty()) {
      legs_.push_back(Leg{start_, 1.2, seconds});
    } else {
      legs_.back().pause_s += seconds;
    }
    return *this;
  }
  Trajectory build() { return Trajectory(start_, std::move(legs_)); }

 private:
  LocalPoint start_;
  std::vector<Leg> legs_;
};

/// The canonical indoor walk through the office building fixture: lobby ->
/// corridor -> office O-S2 (pause) -> corridor -> lab (pause) -> corridor ->
/// office O-N3. Roughly 90 m, ~2.5 minutes. Used by the Fig. 6 experiment.
Trajectory office_walk();

/// An outdoor straight-and-turns walk used by EnTracked scenarios
/// (constant speed, no pauses), starting outside the building footprint.
Trajectory outdoor_walk(double speed_mps = 1.4);

/// A stationary "trajectory" (EnTracked's best case).
Trajectory stationary(LocalPoint where, double duration_s);

}  // namespace perpos::sensors
