#pragma once

#include "perpos/core/component.hpp"
#include "perpos/sensors/trajectory.hpp"
#include "perpos/sim/scheduler.hpp"
#include "perpos/wifi/signal_model.hpp"

/// \file wifi_scanner.hpp
/// The simulated WiFi sensor — a source component emitting RssiScan values
/// sampled from the radio model along the ground-truth trajectory (paper
/// Fig. 1's "WiFi sensor").

namespace perpos::sensors {

class WifiScanner final : public core::ProcessingComponent {
 public:
  WifiScanner(sim::Scheduler& scheduler, sim::Random& random,
              const Trajectory& trajectory, const wifi::SignalModel& model,
              sim::SimTime scan_interval = sim::SimTime::from_seconds(2.0))
      : scheduler_(scheduler),
        random_(random),
        trajectory_(trajectory),
        model_(model),
        scan_interval_(scan_interval) {}

  std::string_view kind() const override { return "WiFi"; }
  std::vector<core::InputRequirement> input_requirements() const override {
    return {};
  }
  std::vector<core::DataSpec> output_capabilities() const override {
    return {core::provide<wifi::RssiScan>()};
  }
  void on_input(const core::Sample&) override {}

  /// One RssiScan per scan interval.
  double nominal_rate_hz() const override {
    const double seconds = scan_interval_.seconds();
    return seconds > 0.0 ? 1.0 / seconds : 0.0;
  }

  void start() {
    if (started_) return;
    started_ = true;
    tick_event_ = scheduler_.schedule_after(scan_interval_, [this] { tick(); });
  }
  void stop() {
    if (!started_) return;
    started_ = false;
    if (tick_event_ != 0) scheduler_.cancel(tick_event_);
    tick_event_ = 0;
  }

  std::uint64_t scans() const noexcept { return scans_; }

 private:
  void tick() {
    if (!started_) return;
    tick_event_ = scheduler_.schedule_after(scan_interval_, [this] { tick(); });
    const LocalPoint at = trajectory_.position_at(scheduler_.now());
    wifi::RssiScan scan = model_.scan_at(at, random_, scheduler_.now());
    ++scans_;
    context().emit(core::Payload::make(std::move(scan)));
  }

  sim::Scheduler& scheduler_;
  sim::Random& random_;
  const Trajectory& trajectory_;
  const wifi::SignalModel& model_;
  sim::SimTime scan_interval_;
  bool started_ = false;
  sim::Scheduler::EventId tick_event_ = 0;
  std::uint64_t scans_ = 0;
};

}  // namespace perpos::sensors
