#pragma once

#include "perpos/geo/local_frame.hpp"
#include "perpos/locmodel/building.hpp"
#include "perpos/sim/clock.hpp"
#include "perpos/sim/random.hpp"

#include <optional>
#include <vector>

/// \file gps_model.hpp
/// GPS receiver error model. Produces per-epoch measurement state — the
/// measured position, satellite count, HDOP and fix quality — from the
/// ground-truth position.
///
/// The model reproduces the seams the paper's examples exploit:
///  * positions wander (first-order Gauss-Markov bias + white noise),
///  * satellite visibility and HDOP fluctuate,
///  * indoors (or during scripted outages) the satellite count collapses
///    and errors blow up, *but the receiver keeps producing measurements* —
///    the behaviour that motivates the NumberOfSatellites filter (E1), and
///  * HDOP correlates with actual error — what makes the HDOP-based
///    likelihood of the particle filter (E2) informative.

namespace perpos::sensors {

struct GpsEpoch {
  sim::SimTime time;
  geo::GeoPoint truth;
  geo::GeoPoint measured;
  int satellites = 0;
  double hdop = 1.0;
  bool has_fix = true;
  double error_m = 0.0;  ///< Horizontal error of `measured` vs `truth`.
};

struct GpsModelConfig {
  double bias_sigma_m = 3.0;        ///< Stationary std-dev of the bias walk.
  double bias_tau_s = 60.0;         ///< Bias correlation time.
  double noise_sigma_m = 1.5;       ///< Per-epoch white noise (good sky).
  int satellites_open_sky = 9;      ///< Typical count with open sky.
  int satellites_degraded = 3;      ///< Typical count indoors/canyon.
  double hdop_open_sky = 1.0;
  double hdop_degraded = 8.0;
  /// Error multiplier applied per unit of HDOP above 1 (couples HDOP to
  /// actual error so HDOP-based likelihoods carry information).
  double error_per_hdop_m = 2.0;
  /// Probability of losing the fix entirely per degraded epoch.
  double degraded_fix_loss_prob = 0.35;
};

class GpsModel {
 public:
  GpsModel(GpsModelConfig config, sim::Random& random)
      : config_(config), random_(&random) {}

  /// Compute the measurement for an epoch. `degraded` marks indoor /
  /// urban-canyon conditions. The model is stateful (bias random walk);
  /// call with monotone times.
  GpsEpoch step(sim::SimTime time, const geo::GeoPoint& truth, bool degraded);

  /// Reset the bias state (e.g. after a long receiver-off interval, the
  /// bias decorrelates).
  void reset_bias() { bias_east_ = bias_north_ = 0.0; }

  const GpsModelConfig& config() const noexcept { return config_; }

 private:
  GpsModelConfig config_;
  sim::Random* random_;
  double bias_east_ = 0.0;
  double bias_north_ = 0.0;
  std::optional<sim::SimTime> last_time_;
};

}  // namespace perpos::sensors
