#pragma once

#include "perpos/core/component.hpp"
#include "perpos/core/data_types.hpp"
#include "perpos/locmodel/building.hpp"
#include "perpos/sensors/gps_model.hpp"
#include "perpos/sensors/trajectory.hpp"
#include "perpos/sim/scheduler.hpp"

#include <optional>
#include <utility>
#include <vector>

/// \file gps_sensor.hpp
/// The simulated GPS receiver — a source Processing Component that emits
/// raw NMEA byte fragments, exactly what the middleware would receive from
/// a real receiver over a serial link (paper Fig. 1: "GPS sensor ->
/// Raw Data (Strings)").
///
/// Sentences are deliberately split into several fragments per sentence so
/// the Parser exhibits the many-strings-to-one-sentence behaviour of the
/// Fig. 4 data tree. The sensor supports on/off control (the EnTracked
/// PowerStrategy drives it) and accounts its active time for energy
/// evaluation.

namespace perpos::sensors {

struct GpsSensorConfig {
  sim::SimTime epoch_interval = sim::SimTime::from_seconds(1.0);
  /// How many raw fragments each NMEA sentence is split into (>= 1).
  int fragments_per_sentence = 2;
  bool emit_gsa = true;   ///< Also emit GSA (DOP/satellites) each epoch.
  bool emit_rmc = false;  ///< Also emit RMC (speed/course) each epoch.
  GpsModelConfig model;
};

class GpsSensor final : public core::ProcessingComponent {
 public:
  /// `trajectory` gives ground truth in `frame`-local coordinates;
  /// `indoor` (optional) marks the region where reception degrades.
  /// All references must outlive the sensor.
  GpsSensor(sim::Scheduler& scheduler, sim::Random& random,
            const Trajectory& trajectory, const geo::LocalFrame& frame,
            GpsSensorConfig config = {},
            const locmodel::Building* indoor = nullptr);

  std::string_view kind() const override { return "GPS"; }
  std::vector<core::InputRequirement> input_requirements() const override {
    return {};
  }
  std::vector<core::DataSpec> output_capabilities() const override {
    return {core::provide<core::RawFragment>()};
  }
  void on_input(const core::Sample&) override {}

  /// Fragments per second at the configured epoch cadence: each epoch
  /// emits one GGA sentence plus the optional GSA/RMC extras, each split
  /// into fragments_per_sentence raw fragments.
  double nominal_rate_hz() const override {
    const double seconds = config_.epoch_interval.seconds();
    if (seconds <= 0.0) return 0.0;
    const int sentences =
        1 + (config_.emit_gsa ? 1 : 0) + (config_.emit_rmc ? 1 : 0);
    return sentences * config_.fragments_per_sentence / seconds;
  }

  /// Begin emitting epochs (the first after one epoch interval).
  void start();
  /// Stop emitting permanently (cancels the scheduled tick).
  void stop();

  /// Receiver power control: while inactive the receiver is off — no
  /// measurements are produced and no power is drawn. Reactivation
  /// decorrelates the error bias (cold-ish start).
  void set_active(bool active);
  bool active() const noexcept { return active_; }

  /// Accumulated receiver-on time (energy accounting).
  sim::SimTime active_time() const;

  /// Add a scripted outage window [from, to] during which reception is
  /// degraded regardless of position.
  void add_outage(sim::SimTime from, sim::SimTime to);

  /// Ground truth at a time (for error evaluation).
  geo::GeoPoint truth_at(sim::SimTime t) const;

  std::uint64_t epochs() const noexcept { return epochs_; }
  const std::optional<GpsEpoch>& last_epoch() const noexcept {
    return last_epoch_;
  }

  /// When enabled, every produced epoch is retained for later analysis.
  void set_record_epochs(bool record) { record_epochs_ = record; }
  const std::vector<GpsEpoch>& recorded_epochs() const noexcept {
    return recorded_epochs_;
  }

 private:
  void tick();
  void emit_sentence_fragments(const std::string& sentence);
  bool is_degraded(sim::SimTime t, const LocalPoint& local) const;

  sim::Scheduler& scheduler_;
  GpsModel model_;
  const Trajectory& trajectory_;
  const geo::LocalFrame& frame_;
  GpsSensorConfig config_;
  const locmodel::Building* indoor_;

  bool started_ = false;
  bool active_ = true;
  sim::Scheduler::EventId tick_event_ = 0;
  sim::SimTime active_accum_ = sim::SimTime::zero();
  sim::SimTime active_since_ = sim::SimTime::zero();
  std::vector<std::pair<sim::SimTime, sim::SimTime>> outages_;

  std::uint64_t epochs_ = 0;
  std::optional<GpsEpoch> last_epoch_;
  bool record_epochs_ = false;
  std::vector<GpsEpoch> recorded_epochs_;
};

}  // namespace perpos::sensors
