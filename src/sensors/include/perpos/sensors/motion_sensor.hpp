#pragma once

#include "perpos/core/component.hpp"
#include "perpos/sensors/trajectory.hpp"
#include "perpos/sim/random.hpp"
#include "perpos/sim/scheduler.hpp"

/// \file motion_sensor.hpp
/// A simulated accelerometer-based motion detector — the second sensor of
/// the EnTracked design (Kjærgaard et al. 2009): a cheap always-on sensor
/// whose binary moving/still verdict gates the expensive GPS receiver.
/// The detector samples the ground-truth trajectory's speed and adds
/// configurable false positives (vibration while still) and false
/// negatives (smooth motion missed).

namespace perpos::sensors {

/// One motion-detector verdict.
struct MotionSample {
  bool moving = false;
  double magnitude = 0.0;  ///< Activity level (pseudo-acceleration energy).
  sim::SimTime timestamp;

  friend bool operator==(const MotionSample&, const MotionSample&) = default;
};

struct MotionSensorConfig {
  sim::SimTime sample_interval = sim::SimTime::from_seconds(1.0);
  double moving_speed_threshold_mps = 0.3;
  double false_positive_prob = 0.02;  ///< Still reported as moving.
  double false_negative_prob = 0.02;  ///< Motion reported as still.
};

class MotionSensor final : public core::ProcessingComponent {
 public:
  MotionSensor(sim::Scheduler& scheduler, sim::Random& random,
               const Trajectory& trajectory, MotionSensorConfig config = {})
      : scheduler_(scheduler),
        random_(random),
        trajectory_(trajectory),
        config_(config) {}

  std::string_view kind() const override { return "MotionSensor"; }
  std::vector<core::InputRequirement> input_requirements() const override {
    return {};
  }
  std::vector<core::DataSpec> output_capabilities() const override {
    return {core::provide<MotionSample>()};
  }
  void on_input(const core::Sample&) override {}

  void start() {
    if (started_) return;
    started_ = true;
    tick_event_ =
        scheduler_.schedule_after(config_.sample_interval, [this] { tick(); });
  }
  void stop() {
    if (!started_) return;
    started_ = false;
    if (tick_event_ != 0) scheduler_.cancel(tick_event_);
    tick_event_ = 0;
  }

  std::uint64_t samples() const noexcept { return samples_; }

 private:
  void tick() {
    if (!started_) return;
    tick_event_ =
        scheduler_.schedule_after(config_.sample_interval, [this] { tick(); });
    const double speed = trajectory_.speed_at(scheduler_.now());
    bool moving = speed > config_.moving_speed_threshold_mps;
    if (moving && random_.chance(config_.false_negative_prob)) moving = false;
    if (!moving && random_.chance(config_.false_positive_prob)) moving = true;

    MotionSample sample;
    sample.moving = moving;
    sample.magnitude = moving ? speed + random_.normal(0.0, 0.2) : 0.05;
    sample.timestamp = scheduler_.now();
    ++samples_;
    context().emit(core::Payload::make(sample));
  }

  sim::Scheduler& scheduler_;
  sim::Random& random_;
  const Trajectory& trajectory_;
  MotionSensorConfig config_;
  bool started_ = false;
  sim::Scheduler::EventId tick_event_ = 0;
  std::uint64_t samples_ = 0;
};

}  // namespace perpos::sensors

PERPOS_TYPE_NAME(perpos::sensors::MotionSample, "MotionSample");
