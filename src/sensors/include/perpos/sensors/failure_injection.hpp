#pragma once

#include "perpos/core/component.hpp"
#include "perpos/core/data_types.hpp"
#include "perpos/core/failure_events.hpp"
#include "perpos/core/feature.hpp"
#include "perpos/core/graph.hpp"
#include "perpos/sim/random.hpp"

#include <string>
#include <vector>

/// \file failure_injection.hpp
/// Failure injection — exercising the seams of Sec. 4 ("positioning
/// technologies do not provide pervasive coverage ... positions delivered
/// can be erroneous due to signal noise, delays, or faulty system
/// calibration").
///
/// Two forms, matching the two extension mechanisms:
///  * FailureInjectionFeature — a Component Feature using the "changing
///    produced data" augmentation: drops or garbles RawFragment samples in
///    the produce hook of the component it is attached to.
///  * FlakyLinkComponent — a Processing Component modelling a lossy serial
///    link: drop, garble, duplicate and reorder, spliceable into any edge
///    with insert_between().
///
/// Property tests use both to show graceful degradation: the NMEA checksum
/// layer rejects garbled sentences and the pipeline never crashes or emits
/// corrupt positions.

namespace perpos::sensors {

struct FailureInjectionConfig {
  double drop_probability = 0.0;
  double garble_probability = 0.0;     ///< Flip one byte of the fragment.
  double duplicate_probability = 0.0;  ///< FlakyLinkComponent only.
  double reorder_probability = 0.0;    ///< FlakyLinkComponent only: hold one.
};

/// Flip one byte of `bytes` in place (the classic serial-noise model).
inline void garble_one_byte(std::string& bytes, sim::Random& random) {
  if (bytes.empty()) return;
  const auto index = static_cast<std::size_t>(
      random.uniform_int(0, static_cast<int>(bytes.size()) - 1));
  bytes[index] = static_cast<char>(bytes[index] ^ 0x20);
}

/// Failure events flow through the shared core helper so injectors,
/// remoting endpoints and reliable links all publish into one
/// `perpos_failure_events_total{injector=..., event=...}` family.
using core::report_failure_event;

/// Component Feature: drop/garble on the way OUT of the host component.
class FailureInjectionFeature final : public core::ComponentFeature {
 public:
  FailureInjectionFeature(FailureInjectionConfig config, sim::Random& random)
      : config_(config), random_(&random) {}

  std::string_view name() const override { return "FailureInjection"; }

  bool produce(core::Sample& sample) override {
    if (sample.feature_added()) return true;
    const auto* fragment = sample.payload.get<core::RawFragment>();
    if (fragment == nullptr) return true;

    if (random_->chance(config_.drop_probability)) {
      ++dropped_;
      report_failure_event(context().graph(), name(), context().host(),
                           "dropped");
      return false;
    }
    if (random_->chance(config_.garble_probability)) {
      core::RawFragment garbled = *fragment;
      garble_one_byte(garbled.bytes, *random_);
      sample.payload = core::Payload::make(std::move(garbled));
      ++garbled_;
      report_failure_event(context().graph(), name(), context().host(),
                           "garbled");
    }
    return true;
  }

  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t garbled() const noexcept { return garbled_; }

 private:
  FailureInjectionConfig config_;
  sim::Random* random_;
  std::uint64_t dropped_ = 0;
  std::uint64_t garbled_ = 0;
};

/// A lossy pass-through link for RawFragment data. Duplication and
/// reordering need a node of their own (features cannot emit untagged
/// data — by design), so this is a Processing Component.
class FlakyLinkComponent final : public core::ProcessingComponent {
 public:
  FlakyLinkComponent(FailureInjectionConfig config, sim::Random& random)
      : config_(config), random_(&random) {}

  std::string_view kind() const override { return "FlakyLink"; }
  std::vector<core::InputRequirement> input_requirements() const override {
    return {core::require<core::RawFragment>()};
  }
  std::vector<core::DataSpec> output_capabilities() const override {
    return {core::provide<core::RawFragment>()};
  }

  void on_input(const core::Sample& sample) override {
    const auto* fragment = sample.payload.get<core::RawFragment>();
    if (fragment == nullptr) return;
    ++received_;

    if (random_->chance(config_.drop_probability)) {
      ++dropped_;
      report_failure_event(context().graph(), kind(), context().id(),
                           "dropped");
      emit_held();
      return;
    }
    core::RawFragment out = *fragment;
    if (random_->chance(config_.garble_probability)) {
      garble_one_byte(out.bytes, *random_);
      ++garbled_;
      report_failure_event(context().graph(), kind(), context().id(),
                           "garbled");
    }
    if (!held_.empty()) {
      // A held fragment goes out after the current one: reordered.
      context().emit(core::Payload::make(out));
      emit_held();
    } else if (random_->chance(config_.reorder_probability)) {
      held_ = out.bytes;
      ++reordered_;
      report_failure_event(context().graph(), kind(), context().id(),
                           "reordered");
    } else {
      context().emit(core::Payload::make(out));
      if (random_->chance(config_.duplicate_probability)) {
        ++duplicated_;
        report_failure_event(context().graph(), kind(), context().id(),
                             "duplicated");
        context().emit(core::Payload::make(core::RawFragment{out.bytes}));
      }
    }
  }

  /// Emit any fragment held back for reordering. Without this, a fragment
  /// held when the stream ends is silently lost — violating conservation
  /// (in - dropped = out). Called automatically from on_teardown() when the
  /// link is removed from the graph or the graph is destroyed.
  void flush() {
    if (context().attached()) emit_held();
  }

  void on_teardown() override { flush(); }

  std::uint64_t received() const noexcept { return received_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t garbled() const noexcept { return garbled_; }
  std::uint64_t duplicated() const noexcept { return duplicated_; }
  std::uint64_t reordered() const noexcept { return reordered_; }
  /// True while a fragment is held back awaiting a later arrival.
  bool held_pending() const noexcept { return !held_.empty(); }

 private:
  void emit_held() {
    if (held_.empty()) return;
    core::RawFragment held;
    held.bytes = std::move(held_);
    held_.clear();
    context().emit(core::Payload::make(std::move(held)));
  }

  FailureInjectionConfig config_;
  sim::Random* random_;
  std::string held_;
  std::uint64_t received_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t garbled_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;
};

}  // namespace perpos::sensors
